// Objcache: typed object caches over the kernel allocator — the
// slab-style layer of DESIGN.md §12. A named cache hands out objects in
// constructed state: the constructor runs once per backing carve, and
// every warm Get/Put cycle after that skips it, because Put's contract
// is that objects come back constructed. The example builds a cache of
// small "request" structs, cycles it, and shows the ctor-skip ratio,
// the cache-line coloring, and what a memory-pressure trim sheds.
//
//	go run ./examples/objcache
package main

import (
	"fmt"
	"log"

	"kmem"
	"kmem/internal/allocif"
	"kmem/internal/arena"
	"kmem/internal/machine"
	"kmem/internal/objcache"
)

func main() {
	sys, err := kmem.NewSystem(kmem.Config{CPUs: 2})
	if err != nil {
		log.Fatal(err)
	}
	m, mem := sys.Machine(), sys.Machine().Mem()
	cpu0 := sys.CPU(0)

	// A 72-byte "request" object: the ctor presets a magic word and
	// zeroes the link field; the dtor checks the magic is intact when
	// the cache finally releases backing memory to the allocator.
	const magic = 0x7ec0ffee
	ctor := func(c *machine.CPU, mm *arena.Arena, obj arena.Addr) {
		mm.Store64(obj, magic) // header word
		mm.Store64(obj+8, 0)   // link, constructed empty
	}
	dtor := func(c *machine.CPU, mm *arena.Arena, obj arena.Addr) {
		if mm.Load64(obj) != magic {
			log.Fatalf("dtor saw a corrupted object at %#x", uint64(obj))
		}
	}
	cache, err := objcache.New(m, allocif.NewKMA{Allocator: sys.Allocator()},
		"example:request", 72, 8, ctor, dtor, objcache.Opts{ColorSpace: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache %q: %d-byte objects in %d-byte backing blocks, %d colors\n",
		cache.Name(), cache.ObjSize(), cache.Capacity(), cache.NumColors())

	// Cycle the cache. Every Get returns a constructed object — magic
	// set, link zeroed — so the hot path touches nothing but payload.
	// Callers restore constructed state before Put (here: re-zero the
	// link they used).
	for i := 0; i < 50000; i++ {
		obj, err := cache.Get(cpu0)
		if err != nil {
			log.Fatal(err)
		}
		if mem.Load64(obj) != magic {
			log.Fatalf("unconstructed object at %#x", uint64(obj))
		}
		mem.Store64(obj+8, uint64(obj)) // use the link...
		mem.Store64(obj+8, 0)           // ...and restore it
		cache.Put(cpu0, obj)
	}
	st := cache.Stats()
	fmt.Printf("50000 cycles: %d ctor runs, %d ctor skips (%.2f%% skipped)\n",
		st.CtorRuns, st.CtorSkips,
		float64(st.CtorSkips)/float64(st.CtorRuns+st.CtorSkips)*100)

	// Hold a few objects and show the coloring: successive carves start
	// on different cache lines inside their backing blocks.
	offsets := map[uint64]bool{}
	var held []arena.Addr
	for i := 0; i < 40; i++ {
		obj, err := cache.Get(cpu0)
		if err != nil {
			log.Fatal(err)
		}
		held = append(held, obj)
	}
	cache.ForEachCarved(func(obj, base arena.Addr) { offsets[uint64(obj-base)] = true })
	fmt.Printf("held objects use %d distinct color offsets across carves\n", len(offsets))
	for _, obj := range held {
		cache.Put(cpu0, obj)
	}

	// Under pressure the allocator asks registered caches to shed:
	// Trim empties the depot (constructed buffers the CPU magazines
	// don't need); a full drain releases everything, running the dtor
	// exactly once per released object.
	sys.Allocator().Trim(cpu0, 0)
	fmt.Printf("after trim:  %d shed, %d dtor runs\n", cache.Stats().Sheds, cache.Stats().DtorRuns)
	if live := cache.Destroy(cpu0); live != 0 {
		log.Fatalf("%d objects leaked", live)
	}
	st = cache.Stats()
	fmt.Printf("after destroy: carves %d == dtors %d == releases %d\n",
		st.Carves, st.DtorRuns, st.Releases)
}
