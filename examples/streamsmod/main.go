// Streamsmod: a STREAMS module pipeline with flow control — the kernel
// context the paper's allocb/freeb measurements come from. A fast driver
// writes packets into a three-module stream (checksum, rate-limited
// "wire", sink driver); the wire module is slower than the producer, so
// the hi/lo watermarks assert backpressure and the deferred messages
// drain through service procedures. Every message block, data block and
// buffer comes from the kernel allocator's 13-instruction fast paths.
//
//	go run ./examples/streamsmod
package main

import (
	"fmt"
	"log"

	"kmem"
	"kmem/internal/machine"
	"kmem/internal/streams"
)

func main() {
	sys, err := kmem.NewSystem(kmem.Config{CPUs: 2, PhysPages: 4096})
	if err != nil {
		log.Fatal(err)
	}
	s, err := streams.New(sys.Allocator())
	if err != nil {
		log.Fatal(err)
	}

	var (
		checksummed int
		transmitted int
		budget      int // wire capacity per service run
	)
	str, err := s.NewStream(
		streams.Module{Name: "head", Hiwat: 16 << 10, Lowat: 4 << 10},
		streams.Module{
			Name: "cksum",
			Put: func(c *machine.CPU, q *streams.ModQueue, m streams.Msg) {
				// Fold the payload into a checksum byte appended to the
				// message (naive IP-style module).
				var sum byte
				r, w := s.Rptr(c, m), s.Wptr(c, m)
				for _, b := range sys.Bytes(r, w-r) {
					sum += b
				}
				_ = s.Write(c, m, []byte{sum})
				checksummed++
				down := q.Down()
				if !down.Canput(c) {
					q.PutqMod(c, m)
					return
				}
				down.Put(c, m)
			},
		},
		streams.Module{
			Name:  "wire",
			Hiwat: 8 << 10, Lowat: 2 << 10,
			Put: func(c *machine.CPU, q *streams.ModQueue, m streams.Msg) {
				q.PutqMod(c, m) // always defer: transmission is async
			},
			Service: func(c *machine.CPU, q *streams.ModQueue) {
				// Rate limit: at most `budget` frames per service run.
				for i := 0; i < budget; i++ {
					m := q.GetqMod(c)
					if m == 0 {
						return
					}
					c.Work(6000) // serialization onto the wire
					transmitted++
					s.Freemsg(c, m)
				}
			},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	budget = 1
	const packets = 20000
	c0, c1 := sys.CPU(0), sys.CPU(1)
	sent, backpressured := 0, 0

	sys.Machine().Run(func(c *machine.CPU) bool {
		switch c.ID() {
		case 0: // producer
			if sent >= packets {
				return false
			}
			// Stream-head flow control: stall while the wire queue is
			// over its high watermark.
			if !str.Queue(2).Canput(c) {
				backpressured++
				c.Work(100) // wait for the window to reopen
				str.RunService(c, 1)
				return true
			}
			m, err := s.Allocb(c, 256)
			if err != nil {
				log.Fatalf("allocb: %v", err)
			}
			payload := []byte(fmt.Sprintf("frame-%06d", sent))
			_ = s.Write(c, m, payload)
			str.Write(c, m)
			sent++
			return true
		default: // interrupt side: run service procedures
			if str.RunService(c, 8) == 0 {
				c.Work(200) // idle
			}
			return transmitted < packets
		}
	})
	str.Drain(c0)

	fmt.Printf("packets: %d sent, %d checksummed, %d transmitted\n", sent, checksummed, transmitted)
	fmt.Printf("producer backpressured %d times by the watermarks\n", backpressured)
	ss := s.Stats()
	fmt.Printf("streams: %d allocb, %d freeb\n", ss.Allocbs, ss.Freebs)

	st := sys.Stats(c0)
	for _, cs := range st.Classes {
		if cs.Allocs == 0 {
			continue
		}
		fmt.Printf("class %4d: %6d allocs, per-CPU miss %.2f%%\n",
			cs.Size, cs.Allocs, cs.AllocMissRate()*100)
	}
	for i := 0; i < 2; i++ {
		fmt.Printf("CPU%d: %.1f virtual ms\n", i, sys.Machine().CyclesToSeconds(sys.CPU(i).Now())*1e3)
	}
	_ = c1

	sys.DrainAll(c0)
	if err := sys.CheckConsistency(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("consistency check: ok")
}
