// Quickstart: allocate and free kernel memory through both interfaces of
// the paper's allocator, then inspect the per-layer statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kmem"
)

func main() {
	// A 4-CPU simulated machine with the paper-calibrated cost model.
	sys, err := kmem.NewSystem(kmem.Config{CPUs: 4})
	if err != nil {
		log.Fatal(err)
	}
	cpu0 := sys.CPU(0)

	// Standard System V interface: kmem_alloc / kmem_free.
	buf, err := sys.Alloc(cpu0, 100) // rounded up to the 128-byte class
	if err != nil {
		log.Fatal(err)
	}
	copy(sys.Bytes(buf, 13), "hello, kernel")
	fmt.Printf("allocated %#x: %q\n", buf, sys.Bytes(buf, 13))
	sys.Free(cpu0, buf, 100)

	// Cookie interface: translate the size once (compile time in the
	// paper), then allocate and free in 13 simulated instructions each.
	cookie, err := sys.GetCookie(64)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		b, err := sys.AllocCookie(cpu0, cookie)
		if err != nil {
			log.Fatal(err)
		}
		sys.FreeCookie(cpu0, b, cookie)
	}

	// Allocating on one CPU and freeing on another flows through the
	// global layer — the case it exists for.
	cpu1 := sys.CPU(1)
	var blocks []kmem.Addr
	for i := 0; i < 1000; i++ {
		b, err := sys.AllocCookie(cpu0, cookie)
		if err != nil {
			log.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	for _, b := range blocks {
		sys.FreeCookie(cpu1, b, cookie)
	}

	// Large requests bypass the caching layers entirely.
	big, err := sys.Alloc(cpu0, 64<<10)
	if err != nil {
		log.Fatal(err)
	}
	sys.Free(cpu0, big, 64<<10)

	st := sys.Stats(cpu0)
	fmt.Printf("\n%-6s %9s %9s %12s %12s\n", "class", "allocs", "frees", "percpu-miss", "global-miss")
	for _, cs := range st.Classes {
		if cs.Allocs == 0 {
			continue
		}
		fmt.Printf("%-6d %9d %9d %11.2f%% %11.2f%%\n",
			cs.Size, cs.Allocs, cs.Frees, cs.AllocMissRate()*100, cs.GlobalGetMissRate()*100)
	}
	fmt.Printf("\nlarge allocs: %d, pages mapped: %d, vmblks created: %d\n",
		st.VM.LargeAllocs, st.Phys.Mapped, st.VM.VmblkCreates)
	fmt.Printf("CPU0 spent %d virtual cycles (%.2f virtual ms at 50 MHz)\n",
		cpu0.Now(), sys.Machine().CyclesToSeconds(cpu0.Now())*1e3)

	if err := func() error { sys.DrainAll(cpu0); return sys.CheckConsistency() }(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("consistency check: ok")
}
