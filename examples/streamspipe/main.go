// Streamspipe: a STREAMS message pipeline across simulated CPUs — the
// workload from the paper's Analysis section. A driver on CPU 0 allocates
// messages (allocb), writes packet payloads and queues them; a protocol
// module on CPU 1 consumes, duplicates some messages for retransmission
// tracking (dupb), and frees everything (freeb/freemsg). Buffers are thus
// allocated on one CPU and freed on another, the traffic pattern the
// allocator's global layer exists to absorb.
//
//	go run ./examples/streamspipe
package main

import (
	"fmt"
	"log"

	"kmem"
	"kmem/internal/machine"
	"kmem/internal/streams"
)

func main() {
	sys, err := kmem.NewSystem(kmem.Config{CPUs: 2, PhysPages: 4096})
	if err != nil {
		log.Fatal(err)
	}
	str, err := streams.New(sys.Allocator())
	if err != nil {
		log.Fatal(err)
	}
	q := str.NewQueue()

	const total = 50000
	sent, received, dups := 0, 0, 0
	var bytesMoved uint64

	sys.Machine().Run(func(c *machine.CPU) bool {
		switch c.ID() {
		case 0: // driver: produce packets
			if sent >= total {
				return false
			}
			msg, err := str.Allocb(c, 256)
			if err != nil {
				log.Fatalf("allocb: %v", err)
			}
			payload := []byte(fmt.Sprintf("packet-%06d", sent))
			if err := str.Write(c, msg, payload); err != nil {
				log.Fatal(err)
			}
			q.Putq(c, msg)
			sent++
			return true

		default: // protocol module: consume
			msg := q.Getq(c)
			if msg == 0 {
				c.Work(50) // idle poll
				return received < total
			}
			// Every 16th packet is retained for possible retransmission:
			// dupb bumps the data block's reference count.
			if received%16 == 0 {
				d, err := str.Dupb(c, msg)
				if err != nil {
					log.Fatal(err)
				}
				dups++
				str.Freeb(c, d) // retransmission acked immediately here
			}
			bytesMoved += str.Msgdsize(c, msg)
			str.Freemsg(c, msg)
			received++
			return received < total
		}
	})

	fmt.Printf("pipeline: %d sent, %d received, %d dup'd, %d data bytes\n",
		sent, received, dups, bytesMoved)
	ss := str.Stats()
	fmt.Printf("streams: %d allocb, %d freeb, %d dupb\n", ss.Allocbs, ss.Freebs, ss.Dupbs)

	st := sys.Stats(sys.CPU(0))
	fmt.Printf("\n%-6s %9s %9s %12s\n", "class", "allocs", "frees", "global-gets")
	for _, cs := range st.Classes {
		if cs.Allocs == 0 {
			continue
		}
		fmt.Printf("%-6d %9d %9d %12d\n", cs.Size, cs.Allocs, cs.Frees, cs.GlobalGets)
	}
	for i := 0; i < 2; i++ {
		c := sys.CPU(i)
		fmt.Printf("CPU%d: %.2f virtual ms\n", i, sys.Machine().CyclesToSeconds(c.Now())*1e3)
	}

	sys.DrainAll(sys.CPU(0))
	if err := sys.CheckConsistency(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("consistency check: ok")
}
