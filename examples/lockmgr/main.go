// Lockmgr: a four-node distributed lock manager cluster running OLTP
// lock traffic — the paper's realistic evaluation workload. Every
// resource block, lock block and cluster message is allocated with
// kmem_alloc; messages are freed by the receiving CPU, so the example
// reports the per-layer miss rates the paper uses to characterize
// real-world allocator overhead.
//
//	go run ./examples/lockmgr
package main

import (
	"fmt"
	"log"

	"kmem"
	"kmem/internal/arena"
	"kmem/internal/dlm"
	"kmem/internal/machine"
	"kmem/internal/workload"
)

func main() {
	const nodes = 4
	sys, err := kmem.NewSystem(kmem.Config{CPUs: nodes, PhysPages: 8192, MemBytes: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := dlm.NewCluster(sys.Allocator(), 128)
	if err != nil {
		log.Fatal(err)
	}

	type held struct {
		h   arena.Addr
		res uint64
	}
	type client struct {
		zipf    *workload.Zipf
		held    []held
		waiting map[arena.Addr]uint64
		issued  int
		done    bool
	}
	clients := make([]*client, nodes)
	for i := range clients {
		r := workload.NewRand(int64(100 + i))
		clients[i] = &client{
			zipf:    workload.NewZipf(r, 1.2, 500),
			waiting: map[arena.Addr]uint64{},
		}
	}
	const opsPerNode = 5000
	modes := []dlm.Mode{dlm.CR, dlm.CR, dlm.PR, dlm.PR, dlm.PW, dlm.EX}

	allDone := func() bool {
		for _, cl := range clients {
			if !cl.done || len(cl.held) > 0 || len(cl.waiting) > 0 {
				return false
			}
		}
		return true
	}
	idle := make([]int, nodes)
	sys.Machine().Run(func(c *machine.CPU) bool {
		id := c.ID()
		cl := clients[id]
		n := cluster.Node(id)
		processed := n.Step(c, 4)
		for _, comp := range n.TakeCompletions() {
			switch comp.Kind {
			case dlm.LockDone:
				if comp.St == dlm.Granted {
					cl.held = append(cl.held, held{comp.Handle, comp.ResID})
				} else if comp.St == dlm.Waiting {
					cl.waiting[comp.Handle] = comp.ResID
				}
			case dlm.GrantDelivered:
				if res, ok := cl.waiting[comp.Handle]; ok {
					delete(cl.waiting, comp.Handle)
					cl.held = append(cl.held, held{comp.Handle, res})
				}
			}
		}
		switch {
		case cl.issued < opsPerNode && len(cl.held)+len(cl.waiting) < 12:
			mode := modes[cl.issued%len(modes)]
			n.Lock(c, cl.zipf.Next(), mode)
			cl.issued++
		case len(cl.held) > 0:
			h := cl.held[len(cl.held)-1]
			cl.held = cl.held[:len(cl.held)-1]
			n.Unlock(c, h.h, h.res)
		case cl.issued >= opsPerNode && len(cl.waiting) == 0:
			cl.done = true
		default:
			c.Work(40)
		}
		if cl.done && len(cl.held) == 0 {
			if processed > 0 || !allDone() {
				idle[id] = 0
				return true
			}
			idle[id]++
			return idle[id] < 50
		}
		return true
	})

	ms := cluster.Manager().Stats()
	fmt.Printf("cluster: %d locks, %d unlocks, %d waits, %d resources created/freed\n",
		ms.Locks, ms.Unlocks, ms.Waits, ms.ResCreated)
	var msgs uint64
	for i := 0; i < nodes; i++ {
		msgs += cluster.Node(i).Stats().MsgsSent
	}
	fmt.Printf("messages between nodes: %d (allocated by sender, freed by receiver)\n\n", msgs)

	st := sys.Stats(sys.CPU(0))
	fmt.Printf("%-6s %9s %13s %13s %12s\n", "class", "allocs", "percpu-miss", "global-miss", "combined")
	for _, cs := range st.Classes {
		if cs.Allocs == 0 {
			continue
		}
		note := ""
		if cs.GlobalGets+cs.GlobalPuts < 100 {
			note = "  (cold: too little global traffic for a steady-state rate)"
		}
		fmt.Printf("%-6d %9d %12.2f%% %12.2f%% %11.4f%%%s\n",
			cs.Size, cs.Allocs,
			cs.AllocMissRate()*100, cs.GlobalGetMissRate()*100, cs.CombinedAllocMissRate()*100, note)
	}
	fmt.Println("\npaper bounds: per-CPU <= 1/target (10%), global <= 1/gbltarget (6.7%), combined <= 0.67%")

	sys.DrainAll(sys.CPU(0))
	if err := sys.CheckConsistency(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("consistency check: ok")
}
