// Native: the allocator as an ordinary concurrent Go library — no
// simulation, no cost model. Each worker goroutine owns one CPU handle
// (the per-CPU discipline from the paper becomes per-goroutine sharding)
// and allocations are offsets into one flat arena, invisible to Go's GC.
// The program times the cookie fast path against Go's own allocator on
// the same churn pattern.
//
//	go run ./examples/native
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"kmem"
)

func main() {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	sys, err := kmem.NewSystem(kmem.Config{
		Mode:      kmem.Native,
		CPUs:      workers,
		MemBytes:  256 << 20,
		PhysPages: 32768,
	})
	if err != nil {
		log.Fatal(err)
	}
	const perWorker = 500000
	const blockSize = 128

	// kmem: one goroutine per CPU handle, cookie fast path.
	cookie, err := sys.GetCookie(blockSize)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(c *kmem.CPU) {
			defer wg.Done()
			// A small FIFO working set, as kernel subsystems hold.
			var ring [64]kmem.Addr
			for i := 0; i < perWorker; i++ {
				if old := ring[i%len(ring)]; old != 0 {
					sys.FreeCookie(c, old, cookie)
				}
				b, err := sys.AllocCookie(c, cookie)
				if err != nil {
					log.Fatal(err)
				}
				sys.Bytes(b, 8)[0] = byte(i)
				ring[i%len(ring)] = b
			}
			for _, b := range ring {
				if b != 0 {
					sys.FreeCookie(c, b, cookie)
				}
			}
		}(sys.CPU(w))
	}
	wg.Wait()
	kmemDur := time.Since(start)

	// The same pattern through Go's allocator.
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var ring [64][]byte
			for i := 0; i < perWorker; i++ {
				b := make([]byte, blockSize)
				b[0] = byte(i)
				ring[i%len(ring)] = b
			}
			runtime.KeepAlive(ring)
		}(w)
	}
	wg.Wait()
	goDur := time.Since(start)

	total := workers * perWorker
	fmt.Printf("%d workers x %d ops of %dB blocks\n", workers, perWorker, blockSize)
	fmt.Printf("kmem (cookie fast path): %8.1f ns/op\n", float64(kmemDur.Nanoseconds())/float64(total))
	fmt.Printf("Go runtime allocator:    %8.1f ns/op (GC included)\n", float64(goDur.Nanoseconds())/float64(total))

	st := sys.Stats(sys.CPU(0))
	cls := st.Classes[3] // 128-byte class
	fmt.Printf("per-CPU miss rate: %.3f%% (bound %.1f%%)\n",
		cls.AllocMissRate()*100, 100.0/float64(cls.Target))

	sys.DrainAll(sys.CPU(0))
	if err := sys.CheckConsistency(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("consistency check: ok")
}
