// Cyclic: the paper's commercial day/night workload. During the "day"
// the machine runs OLTP — huge numbers of small blocks tracking database
// locking; at "night" it runs backups and reorganization — massive
// amounts of memory in large blocks. The allocator must coalesce the
// day's fragmented small-block pages back into whole pages and free
// spans so the night phase can use the same physical memory, "without
// reboots [or] delays of any sort".
//
//	go run ./examples/cyclic
package main

import (
	"fmt"
	"log"

	"kmem"
	"kmem/internal/workload"
)

func main() {
	// Tight physical memory makes the point: the phases only fit if
	// memory moves between size classes.
	sys, err := kmem.NewSystem(kmem.Config{CPUs: 1, PhysPages: 192, MemBytes: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	c := sys.CPU(0)
	rng := workload.NewRand(42)

	type block struct {
		addr kmem.Addr
		size uint64
	}

	runPhase := func(day int, ph workload.Phase) {
		var live []block
		allocs, failures := 0, 0
		for op := 0; op < ph.Ops; op++ {
			if len(live) < ph.WorkingSet {
				size := ph.Sizes.Next(rng)
				b, err := sys.Alloc(c, size)
				if err != nil {
					failures++
					continue
				}
				allocs++
				live = append(live, block{b, size})
			} else {
				i := rng.Intn(len(live))
				sys.Free(c, live[i].addr, live[i].size)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, b := range live {
			sys.Free(c, b.addr, b.size)
		}
		st := sys.Stats(c)
		fmt.Printf("cycle %d %-12s: %7d allocs, %3d failures, phys high-water %4d/%4d pages, %5.1f virtual ms\n",
			day, ph.Name, allocs, failures, st.Phys.HighWater, st.Phys.Capacity,
			sys.Machine().CyclesToSeconds(c.Now())*1e3)
		if failures > allocs/100 {
			log.Fatalf("phase %q failed %d times: coalescing is not keeping up", ph.Name, failures)
		}
	}

	phases := workload.Cyclic(20000, 2000)
	for day := 1; day <= 3; day++ {
		for _, ph := range phases {
			runPhase(day, ph)
		}
	}

	st := sys.Stats(c)
	var released uint64
	for _, cs := range st.Classes {
		released += cs.PageFrees
	}
	fmt.Printf("\npages released back to the system by coalescing: %d\n", released)
	fmt.Printf("large-span allocations served: %d (after small-block churn fragmented the heap)\n",
		st.VM.LargeAllocs)
	fmt.Printf("low-memory reclaims: %d\n", st.Reclaims)

	sys.DrainAll(c)
	if err := sys.CheckConsistency(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("consistency check: ok — three day/night cycles, no reboot, no pauses")
}
