package main

import (
	"os"
	"path/filepath"
	"testing"

	"kmem/internal/workload"
)

func TestParseDist(t *testing.T) {
	cases := []struct {
		spec string
		max  uint64
	}{
		{"fixed:128", 128},
		{"uniform:16:4096", 4096},
		{"choice:32,64,256", 256},
	}
	for _, tc := range cases {
		d, err := parseDist(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if d.Max() != tc.max {
			t.Fatalf("%s: Max = %d, want %d", tc.spec, d.Max(), tc.max)
		}
	}
	for _, bad := range []string{"", "fixed", "fixed:x", "uniform:1", "uniform:9:3", "uniform:0:5", "choice:", "zipf:2"} {
		if _, err := parseDist(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestRunSynthesizeAndReplay(t *testing.T) {
	if err := run("cookie", 2, 2000, 50, "fixed:64", 1, 2048, "", "", false, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecordThenReplayFile(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.kmtr")
	if err := run("cookie", 2, 1000, 40, "choice:32,64", 7, 2048, trace, "", false, 1, 0); err != nil {
		t.Fatalf("record: %v", err)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := run("newkma", 0, 0, 0, "", 0, 2048, "", trace, true, 2, 0); err != nil {
		t.Fatalf("replay: %v", err)
	}
}
