// Command kmemsim drives arbitrary allocation workloads through any of
// the repository's allocators on the simulated multiprocessor. It can
// synthesize a workload from a size distribution, record it to a trace
// file, replay a previously recorded trace, and dump the allocator's
// internal state afterwards — the moral equivalent of the paper's
// syscall_kma/syscall_kmf benchmark scripting.
//
// Examples:
//
//	kmemsim -alloc cookie -cpus 8 -ops 200000 -dist uniform:16:4096
//	kmemsim -alloc cookie -cpus 8 -nodes 4 -ops 200000 -dist fixed:128
//	kmemsim -alloc all -cpus 4 -ops 100000 -dist fixed:128
//	kmemsim -record trace.kmtr -cpus 4 -ops 50000 -dist choice:32,64,256
//	kmemsim -replay trace.kmtr -alloc all
//	kmemsim -alloc newkma -ops 50000 -dump
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kmem/internal/bench"
	"kmem/internal/core"
	"kmem/internal/machine"
	"kmem/internal/workload"
)

func main() {
	var (
		allocName  = flag.String("alloc", "cookie", "allocator: cookie|newkma|mk|oldkma|lazybuddy|all")
		cpus       = flag.Int("cpus", 4, "number of simulated CPUs")
		ops        = flag.Int("ops", 100000, "operations to run")
		workingSet = flag.Int("workingset", 200, "live blocks at steady state")
		distSpec   = flag.String("dist", "uniform:16:4096", "size distribution: fixed:N | uniform:LO:HI | choice:A,B,C")
		seed       = flag.Int64("seed", 1, "workload seed")
		pages      = flag.Int64("pages", 8192, "physical pages")
		record     = flag.String("record", "", "write the synthesized trace to this file and exit")
		replay     = flag.String("replay", "", "replay a trace file instead of synthesizing")
		dump       = flag.Bool("dump", false, "dump allocator state after the run (kmem allocators only)")
		nodes      = flag.Int("nodes", 1, "NUMA nodes (1 = the classic single-bus machine)")
		interconn  = flag.Int64("interconnect", 0, "interconnect occupancy cycles per remote transaction (0 = default)")
	)
	flag.Parse()

	if err := run(*allocName, *cpus, *ops, *workingSet, *distSpec, *seed, *pages, *record, *replay, *dump, *nodes, *interconn); err != nil {
		fmt.Fprintf(os.Stderr, "kmemsim: %v\n", err)
		os.Exit(1)
	}
}

func parseDist(spec string) (workload.SizeDist, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "fixed":
		if len(parts) != 2 {
			return nil, fmt.Errorf("fixed:N")
		}
		n, err := strconv.ParseUint(parts[1], 10, 32)
		if err != nil {
			return nil, err
		}
		return workload.Fixed(n), nil
	case "uniform":
		if len(parts) != 3 {
			return nil, fmt.Errorf("uniform:LO:HI")
		}
		lo, err := strconv.ParseUint(parts[1], 10, 32)
		if err != nil {
			return nil, err
		}
		hi, err := strconv.ParseUint(parts[2], 10, 32)
		if err != nil {
			return nil, err
		}
		if lo == 0 || hi < lo {
			return nil, fmt.Errorf("uniform: need 0 < LO <= HI")
		}
		return workload.Uniform{Lo: lo, Hi: hi}, nil
	case "choice":
		if len(parts) != 2 {
			return nil, fmt.Errorf("choice:A,B,C")
		}
		var sizes []uint64
		var weights []int
		for _, s := range strings.Split(parts[1], ",") {
			n, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				return nil, err
			}
			sizes = append(sizes, n)
			weights = append(weights, 1)
		}
		return workload.NewChoice(sizes, weights), nil
	}
	return nil, fmt.Errorf("unknown distribution %q", parts[0])
}

func run(allocName string, cpus, ops, workingSet int, distSpec string, seed, pages int64, record, replay string, dump bool, nodes int, interconnect int64) error {
	mutate := func(cfg *machine.Config) {
		if nodes > 1 {
			cfg.Nodes = nodes
		}
		if interconnect > 0 {
			cfg.InterconnectCycles = interconnect
		}
	}
	var tr *workload.Trace
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return err
		}
		defer f.Close()
		if tr, err = workload.ReadTrace(f); err != nil {
			return err
		}
		fmt.Printf("replaying %s: %d events\n", replay, len(tr.Events))
	} else {
		dist, err := parseDist(distSpec)
		if err != nil {
			return err
		}
		tr = workload.Synthesize(seed, cpus, ops, workingSet, dist)
		fmt.Printf("synthesized %d events (%s, working set %d, %d CPUs, seed %d)\n",
			len(tr.Events), distSpec, workingSet, cpus, seed)
	}

	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		if _, err := tr.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", record)
		return nil
	}

	// Replays size their CPU count from the trace.
	maxCPU := 0
	for _, e := range tr.Events {
		if int(e.CPU) > maxCPU {
			maxCPU = int(e.CPU)
		}
	}
	ncpu := maxCPU + 1

	names := []string{allocName}
	if allocName == "all" {
		names = append(append([]string{}, bench.AllocatorNames...), "lazybuddy")
	}
	var results []*bench.ReplayResult
	for _, name := range names {
		res, err := bench.ReplayCfg(tr, name, ncpu, pages, mutate)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		results = append(results, res)
	}
	bench.ReplayTable(results).Fprint(os.Stdout)

	if dump {
		// Re-run the first kmem-family allocator and dump its state with
		// the trace's live blocks still allocated.
		fmt.Println()
		mc := bench.MachineFor(ncpu, 64<<20, pages)
		mutate(&mc)
		m := machine.New(mc)
		al, err := core.New(m, core.Params{RadixSort: true})
		if err != nil {
			return err
		}
		if err := dumpAfterTrace(m, al, tr); err != nil {
			return err
		}
	}
	return nil
}

// dumpAfterTrace replays tr's events sequentially on the kmem allocator
// (ignoring failures) and dumps the resulting state.
func dumpAfterTrace(m *machine.Machine, al *core.Allocator, tr *workload.Trace) error {
	type slot struct {
		addr uint64
		size uint32
	}
	slots := map[uint32]slot{}
	for _, e := range tr.Events {
		c := m.CPU(int(e.CPU))
		switch e.Kind {
		case workload.EvAlloc:
			if b, err := al.Alloc(c, uint64(e.Size)); err == nil {
				slots[e.Handle] = slot{b, e.Size}
			}
		case workload.EvFree:
			if s, ok := slots[e.Handle]; ok {
				al.Free(c, s.addr, uint64(s.size))
				delete(slots, e.Handle)
			}
		}
	}
	al.Dump(os.Stdout)
	return nil
}
