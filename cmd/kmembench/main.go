// Command kmembench regenerates every experiment of McKenney &
// Slingwine's 1993 USENIX paper on the simulated shared-memory
// multiprocessor. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for measured-vs-paper results.
//
// Usage:
//
//	kmembench bestcase  [-cpus 1,2,...] [-seconds 0.05] [-size 128] [-log]
//	kmembench worstcase [-sizes 16,...,16384] [-pages 2048]
//	kmembench dlm       [-cpus 4] [-ops 20000] [-resources 2000] [-skew 1.1]
//	kmembench insns
//	kmembench analysis  [-ops 128]
//	kmembench ablate    [-param target|split|radix|lazybuddy|all]
//	kmembench adaptive  [-bursts 400] [-burst 400] [-size 128] [-json]
//	kmembench topology  [-cpus 8] [-nodes 1,2,4] [-pairing near|cross] [-seconds 0.02]
//	kmembench scaling   [-cpus 2,4,8] [-nodes 1,2,4] [-seconds 0.005] [-size 128] [-json]
//	kmembench pressure  [-cpus 4] [-nodes 1,2,4] [-pages 96,64,48,32] [-rounds 400]
//	kmembench frag      [-cycles 3] [-pages 4096]
//	kmembench objcache  [-sizes 64,256,1024] [-pairs 2000]
//	kmembench harden    [-sizes 64,256,1024] [-pairs 2000]
//	kmembench all
//
// Every subcommand accepts -json to emit its result rows as one JSON
// object instead of rendered tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kmem/internal/bench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "bestcase":
		err = cmdBestCase(args)
	case "worstcase":
		err = cmdWorstCase(args)
	case "dlm":
		err = cmdDLM(args)
	case "insns":
		err = cmdInsns(args)
	case "analysis":
		err = cmdAnalysis(args)
	case "ablate":
		err = cmdAblate(args)
	case "adaptive":
		err = cmdAdaptive(args)
	case "topology":
		err = cmdTopology(args)
	case "scaling":
		err = cmdScaling(args)
	case "cyclic":
		err = cmdCyclic(args)
	case "pressure":
		err = cmdPressure(args)
	case "frag":
		err = cmdFrag(args)
	case "objcache":
		err = cmdObjCache(args)
	case "harden":
		err = cmdHarden(args)
	case "projection":
		err = cmdProjection(args)
	case "serve":
		err = cmdServe(args)
	case "all":
		err = cmdAll()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "kmembench: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kmembench %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `kmembench regenerates the paper's evaluation:
  bestcase   Figures 7 and 8: alloc/free pairs/s vs CPUs, four allocators
  worstcase  Figure 9: exhaust-free-repeat sweep over block sizes
  dlm        distributed-lock-manager per-layer miss rates
  insns      instruction-count table (cookie 13/13, standard 35/32)
  analysis   allocb/freeb off-chip access study (Analysis section)
  ablate     design-choice ablations (A1-A5 in DESIGN.md)
  adaptive   adaptive target controller vs the paper's fixed heuristic
  topology   NUMA sweep: producer/consumer cross-CPU frees vs node count
  scaling    CPUs x nodes sweep, remote-free shards on/off, lock cycle accounting
  cyclic     the day/night commercial workload (design goal 6)
  pressure   memory-pressure sweep: fail-fast Alloc vs blocking AllocWait under shrinking pools
  frag       fragmentation triple (reserved/resident/live) over churn cycles, eager vs lazy backing
  objcache   STREAMS triple pair over named object caches vs the plain cookie path (ctor-skip win)
  harden     corruption-hardening overhead: alloc/free pair with redzones+poison off vs on
  projection scaling under a widening CPU/memory gap (the paper's closing claim)
  serve      serving simulation: session traces with per-phase alloc/free latency quantiles
  all        everything above with default settings`)
}

// emitJSON writes v as one JSON object on stdout through the shared
// bench.Emit envelope — every subcommand's -json flag funnels through
// it, so each output carries "Schema": "kmembench/<name>" and
// "SchemaVersion" for CI and the committed BENCH_*.json baselines.
func emitJSON(name string, v any) error {
	return bench.Emit(os.Stdout, name, v)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseSizes(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func cmdBestCase(args []string) error {
	fs := flag.NewFlagSet("bestcase", flag.ExitOnError)
	cpus := fs.String("cpus", "1,2,4,8,12,16,20,25", "comma-separated CPU counts")
	seconds := fs.Float64("seconds", 0.05, "virtual seconds per point")
	size := fs.Uint64("size", 128, "block size")
	logY := fs.Bool("log", false, "semilog plot (Figure 8)")
	csv := fs.String("csv", "", "also write the series data as CSV to this file")
	allocs := fs.String("allocators", strings.Join(bench.AllocatorNames, ","), "allocators to run")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	counts, err := parseInts(*cpus)
	if err != nil {
		return err
	}
	names := strings.Split(*allocs, ",")
	res, err := bench.RunBestCase(names, counts, *size, *seconds)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("bestcase", res)
	}
	res.Figure(*logY).Fprint(os.Stdout)
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			return err
		}
		if err := res.Figure(*logY).WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("(series written to %s)\n", *csv)
	}
	fmt.Println()
	res.SpeedupTable().Fprint(os.Stdout)
	if r, err := res.Ratio("cookie", "oldkma", 0); err == nil {
		fmt.Printf("\ncookie/oldkma at %d CPU(s): %.1fx (paper: 15x)\n", counts[0], r)
	}
	if r, err := res.Ratio("cookie", "oldkma", len(counts)-1); err == nil {
		fmt.Printf("cookie/oldkma at %d CPUs: %.0fx (paper: >1000x)\n", counts[len(counts)-1], r)
	}
	return nil
}

func cmdWorstCase(args []string) error {
	fs := flag.NewFlagSet("worstcase", flag.ExitOnError)
	sizes := fs.String("sizes", "16,32,64,128,256,512,1024,2048,4096,8192,16384", "block sizes")
	pages := fs.Int64("pages", 2048, "physical pages")
	csv := fs.String("csv", "", "also write the series data as CSV to this file")
	alloc := fs.String("allocator", "newkma", "allocator to run (mk demonstrates the wedge)")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	szs, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	if *alloc != "newkma" && *alloc != "cookie" {
		rows, err := bench.RunWorstCaseAny(*alloc, szs, *pages)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emitJSON("worstcase", rows)
		}
		bench.WorstCaseAnyTable(*alloc, rows).Fprint(os.Stdout)
		return nil
	}
	res, err := bench.RunWorstCase(szs, *pages)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("worstcase", res)
	}
	res.Figure().Fprint(os.Stdout)
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			return err
		}
		if err := res.Figure().WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("(series written to %s)\n", *csv)
	}
	fmt.Println("\nNote: the whole sweep ran on one system with no reboot and no sleeps —")
	fmt.Println("each size reused memory the previous size had fragmented (online coalescing).")
	return nil
}

func cmdDLM(args []string) error {
	fs := flag.NewFlagSet("dlm", flag.ExitOnError)
	cfg := bench.DefaultDLMConfig()
	fs.IntVar(&cfg.CPUs, "cpus", cfg.CPUs, "cluster nodes (one per CPU)")
	fs.IntVar(&cfg.OpsPerNode, "ops", cfg.OpsPerNode, "lock requests per node")
	res := fs.Uint64("resources", cfg.Resources, "resource id space")
	skew := fs.Float64("skew", cfg.ZipfSkew, "resource Zipf skew")
	seed := fs.Int64("seed", cfg.Seed, "workload seed")
	scale := fs.Bool("scale", false, "also sweep cluster sizes 1..8")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg.Resources, cfg.ZipfSkew, cfg.Seed = *res, *skew, *seed
	out, err := bench.RunDLM(cfg)
	if err != nil {
		return err
	}
	var scaling []bench.DLMScaleRow
	if *scale {
		if scaling, err = bench.RunDLMScaling([]int{1, 2, 4, 8}, cfg.OpsPerNode/2); err != nil {
			return err
		}
	}
	if *jsonOut {
		return emitJSON("dlm", struct {
			Result  *bench.DLMResult
			Scaling []bench.DLMScaleRow `json:",omitempty"`
		}{out, scaling})
	}
	out.Table().Fprint(os.Stdout)
	fmt.Println("\nPaper (4-CPU DLM): per-CPU miss 2.1-7.8%, global miss 1.2-3.0%, combined 0.02-0.14%.")
	if scaling != nil {
		fmt.Println()
		bench.DLMScaleTable(scaling).Fprint(os.Stdout)
	}
	return nil
}

func cmdInsns(args []string) error {
	fs := flag.NewFlagSet("insns", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := bench.RunInsnCounts()
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("insns", rows)
	}
	bench.InsnTable(rows).Fprint(os.Stdout)
	return nil
}

func cmdAnalysis(args []string) error {
	fs := flag.NewFlagSet("analysis", flag.ExitOnError)
	ops := fs.Int("ops", 128, "operations to trace")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	old, new_, err := bench.RunAnalysis(*ops)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("analysis", struct {
			Old      []bench.AnalysisResult
			New      []bench.AnalysisResult
			HotLines []bench.HotLine
		}{old, new_, bench.HotLines()})
	}
	bench.AnalysisTable(old, new_).Fprint(os.Stdout)
	fmt.Println()
	bench.HotLineTable().Fprint(os.Stdout)
	return nil
}

func cmdAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	param := fs.String("param", "all", "target|split|radix|lazybuddy|tlb|all")
	jsonOut := fs.Bool("json", false, "emit the results as one JSON object keyed by parameter")
	if err := fs.Parse(args); err != nil {
		return err
	}
	collected := map[string]any{}
	run := func(p string) error {
		var rows any
		var tbl *bench.Table
		switch p {
		case "target":
			r, err := bench.AblateTarget([]int{1, 2, 5, 10, 20, 40}, 0.05)
			if err != nil {
				return err
			}
			rows, tbl = r, bench.TargetTable(r)
		case "split":
			r, err := bench.AblateSplitFreelist(0.05)
			if err != nil {
				return err
			}
			rows, tbl = r, bench.SplitTable(r)
		case "radix":
			r, err := bench.AblateRadix(40)
			if err != nil {
				return err
			}
			rows, tbl = r, bench.RadixTable(r)
		case "lazybuddy":
			r, err := bench.AblateLazyBuddy(0.05)
			if err != nil {
				return err
			}
			rows, tbl = r, bench.LazyTable(r)
		case "tlb":
			r, err := bench.AblateTLB(0.05)
			if err != nil {
				return err
			}
			rows, tbl = r, bench.TLBTable(r)
		default:
			return fmt.Errorf("unknown ablation %q", p)
		}
		if *jsonOut {
			collected[p] = rows
			return nil
		}
		tbl.Fprint(os.Stdout)
		fmt.Println()
		return nil
	}
	params := []string{*param}
	if *param == "all" {
		params = []string{"target", "split", "radix", "lazybuddy", "tlb"}
	}
	for _, p := range params {
		if err := run(p); err != nil {
			return err
		}
	}
	if *jsonOut {
		return emitJSON("ablate", collected)
	}
	return nil
}

func cmdAdaptive(args []string) error {
	fs := flag.NewFlagSet("adaptive", flag.ExitOnError)
	bursts := fs.Int("bursts", 400, "alloc/free bursts to run")
	burst := fs.Int("burst", 400, "allocations per burst (oscillation amplitude)")
	size := fs.Uint64("size", 128, "block size")
	jsonOut := fs.Bool("json", false, "emit the results and final Stats snapshots as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunAdaptive(*bursts, *burst, *size)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("adaptive", res)
	}
	res.Table().Fprint(os.Stdout)
	fmt.Println("\nThe fixed run is pinned to the paper's compile-time target; the adaptive run")
	fmt.Println("grows target until the burst amplitude fits the per-CPU cache, driving the")
	fmt.Println("miss rate toward the controller's setpoint (see DESIGN.md, adaptive targets).")
	return nil
}

func cmdCyclic(args []string) error {
	fs := flag.NewFlagSet("cyclic", flag.ExitOnError)
	cycles := fs.Int("cycles", 3, "day/night cycles to run")
	pages := fs.Int64("pages", 192, "physical pages (tight on purpose)")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunCyclic(*cycles, *pages)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("cyclic", res)
	}
	res.Table().Fprint(os.Stdout)
	fmt.Println("\nAn allocator without online coalescing cannot complete this cycle without")
	fmt.Println("a reboot between phases (see internal/mk's TestNoCoalescingAcrossSizes).")
	return nil
}

func cmdPressure(args []string) error {
	fs := flag.NewFlagSet("pressure", flag.ExitOnError)
	cpus := fs.Int("cpus", 4, "CPUs")
	nodes := fs.String("nodes", "1,2,4", "comma-separated node counts to sweep")
	pages := fs.String("pages", "96,64,48,32", "comma-separated physical pool sizes to sweep")
	rounds := fs.Int("rounds", 400, "allocation rounds per point")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nodeCounts, err := parseInts(*nodes)
	if err != nil {
		return err
	}
	pagesRaw, err := parseSizes(*pages)
	if err != nil {
		return err
	}
	pageCounts := make([]int64, len(pagesRaw))
	for i, p := range pagesRaw {
		pageCounts[i] = int64(p)
	}
	res, err := bench.RunPressure(*cpus, nodeCounts, pageCounts, *rounds)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("pressure", res)
	}
	res.Table().Fprint(os.Stdout)
	fmt.Println("\nEach point runs the same oversubscribed churn twice: \"nosleep\" counts every")
	fmt.Println("transient exhaustion as a failure; \"wait\" parks on the per-class wait queue")
	fmt.Println("and is woken by frees and reclaim progress (failures only after the bound).")
	return nil
}

func cmdFrag(args []string) error {
	fs := flag.NewFlagSet("frag", flag.ExitOnError)
	cycles := fs.Int("cycles", 3, "grow/churn/shrink/trim cycles per mode")
	pages := fs.Int64("pages", 4096, "physical pages")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := bench.RunFrag(*cycles, *pages)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("frag", res)
	}
	res.Table().Fprint(os.Stdout)
	fmt.Println("\nEager backing unmaps as spans coalesce, so resident tracks live; lazy backing")
	fmt.Println("keeps freed spans' frames for reuse until a trim strips them, trading a larger")
	fmt.Println("transient footprint for commit-free reallocation (see DESIGN.md, virtual spans).")
	return nil
}

func cmdObjCache(args []string) error {
	fs := flag.NewFlagSet("objcache", flag.ExitOnError)
	sizes := fs.String("sizes", "64,256,1024", "comma-separated buffer sizes")
	pairs := fs.Int("pairs", 2000, "steady-state Allocb/Freeb pairs per point")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	szs, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	res, err := bench.RunObjCache(szs, *pairs)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("objcache", res)
	}
	res.Table().Fprint(os.Stdout)
	fmt.Println("\nThe cookie baseline re-initializes the triple on every allocb (the paper's")
	fmt.Println("\"nearly fixed code sequence\"); the named caches hand back the triple in the")
	fmt.Println("shape the last freeb left it, so the constructor — and the re-linking — are")
	fmt.Println("skipped on every warm Get (see DESIGN.md, typed object caches).")
	return nil
}

func cmdHarden(args []string) error {
	fs := flag.NewFlagSet("harden", flag.ExitOnError)
	sizes := fs.String("sizes", "64,256,1024", "comma-separated block sizes")
	pairs := fs.Int("pairs", 2000, "steady-state alloc/free pairs per point")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	szs, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	res, err := bench.RunHarden(szs, *pairs)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("harden", res)
	}
	res.Table().Fprint(os.Stdout)
	fmt.Println()
	res.StreamsTable().Fprint(os.Stdout)
	fmt.Println("\nThe hardened pair pays for canary writes, poison fills and verify-on-alloc;")
	fmt.Println("with Params.Harden nil every hook is a nil check and the pair is cycle-identical")
	fmt.Println("to the unhardened allocator (the STREAMS table is CI-gated against BENCH_7).")
	return nil
}

func cmdProjection(args []string) error {
	fs := flag.NewFlagSet("projection", flag.ExitOnError)
	seconds := fs.Float64("seconds", 0.05, "virtual seconds per point")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := bench.RunProjection(*seconds)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("projection", rows)
	}
	bench.ProjectionTable(rows).Fprint(os.Stdout)
	return nil
}

func cmdTopology(args []string) error {
	fs := flag.NewFlagSet("topology", flag.ExitOnError)
	cpus := fs.Int("cpus", 8, "total CPUs (held fixed across the sweep; must be even)")
	nodes := fs.String("nodes", "1,2,4", "comma-separated node counts to sweep")
	seconds := fs.Float64("seconds", 0.02, "virtual seconds per point")
	size := fs.Uint64("size", 128, "block size")
	pairing := fs.String("pairing", "near", "near (producer and consumer adjacent) or cross (always another node)")
	interconnect := fs.Int64("interconnect", 0, "interconnect occupancy cycles per remote transaction (0 = default)")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	counts, err := parseInts(*nodes)
	if err != nil {
		return err
	}
	res, err := bench.RunTopology(*cpus, counts, *size, *seconds, *pairing, *interconnect)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("topology", res)
	}
	res.Table().Fprint(os.Stdout)
	fmt.Println("\nPartitioning the machine into nodes splits both the bus bandwidth and the")
	fmt.Println("slow-path pool locks; frees of remote blocks route home over the interconnect")
	fmt.Println("(remote frees), and dry home pools steal cached lists cross-node (steals).")
	return nil
}

func cmdScaling(args []string) error {
	fs := flag.NewFlagSet("scaling", flag.ExitOnError)
	cpus := fs.String("cpus", "2,4,8", "comma-separated CPU counts (each even)")
	nodes := fs.String("nodes", "1,2,4", "comma-separated node counts (sweep skips counts that do not divide the CPUs)")
	seconds := fs.Float64("seconds", 0.005, "virtual seconds per point")
	size := fs.Uint64("size", 128, "block size")
	lockFree := fs.Bool("lockfree", false, "sweep the optimistic axis instead: locked vs rseq+CAS fast paths, shards on")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cpuCounts, err := parseInts(*cpus)
	if err != nil {
		return err
	}
	nodeCounts, err := parseInts(*nodes)
	if err != nil {
		return err
	}
	if *lockFree {
		res, err := bench.RunScalingLockFree(cpuCounts, nodeCounts, *size, *seconds)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emitJSON("scaling-lockfree", res)
		}
		res.LockFreeTable().Fprint(os.Stdout)
		if lk, lf := res.PointLF(8, 4, "prodcons", false), res.PointLF(8, 4, "prodcons", true); lk != nil && lf != nil && lk.LockWaitCycles > 0 {
			wait := fmt.Sprintf("cut lock wait %.1fx (%d -> %d cycles)",
				float64(lk.LockWaitCycles)/float64(lf.LockWaitCycles), lk.LockWaitCycles, lf.LockWaitCycles)
			if lf.LockWaitCycles == 0 {
				wait = fmt.Sprintf("eliminated lock wait (%d -> 0 cycles)", lk.LockWaitCycles)
			}
			fmt.Printf("\n8 CPUs / 4 nodes, prodcons: lock-free paths %s and gained %.0f%% throughput\n",
				wait, 100*(lf.PairsPerSec/lk.PairsPerSec-1))
		}
		fmt.Println("\nBoth runs keep remote-free shards on; \"lockfree on\" swaps the per-CPU")
		fmt.Println("interrupt-masked paths for restartable sequences and the global freelists for")
		fmt.Println("CAS commits (restarts/retries are the cycles the optimism paid back).")
		return nil
	}
	res, err := bench.RunScaling(cpuCounts, nodeCounts, *size, *seconds)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("scaling", res)
	}
	res.Table().Fprint(os.Stdout)
	if routed, sharded := res.Point(8, 4, "prodcons", false), res.Point(8, 4, "prodcons", true); routed != nil && sharded != nil &&
		routed.Pairs > 0 && sharded.Pairs > 0 && sharded.RemotePuts > 0 {
		ratio := (float64(routed.RemotePuts) / float64(routed.Pairs)) /
			(float64(sharded.RemotePuts) / float64(sharded.Pairs))
		fmt.Printf("\n8 CPUs / 4 nodes, prodcons: shards cut remote putList trips %.1fx per pair\n", ratio)
	}
	fmt.Println("\nEach configuration runs with remote-free shards off (per-spill routing) and on")
	fmt.Println("(per-CPU staging, one batched putList per flush); \"lock wait\" and \"lock hold\"")
	fmt.Println("are the pool locks' spin and hold cycles from the EvLockWait accounting.")
	return nil
}

func cmdAll() error {
	fmt.Println("=== Figures 7 & 8: best-case scaling =================================")
	if err := cmdBestCase(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Figure 9: worst-case sweep =======================================")
	if err := cmdWorstCase(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Instruction counts ===============================================")
	if err := cmdInsns(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Analysis: allocb/freeb ===========================================")
	if err := cmdAnalysis(nil); err != nil {
		return err
	}
	fmt.Println("\n=== DLM miss rates ===================================================")
	if err := cmdDLM(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Cyclic day/night workload ========================================")
	if err := cmdCyclic(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Memory-pressure sweep ============================================")
	if err := cmdPressure(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Fragmentation triple: eager vs lazy backing ======================")
	if err := cmdFrag(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Typed object caches: ctor-skip win ===============================")
	if err := cmdObjCache(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Corruption-hardening overhead ====================================")
	if err := cmdHarden(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Projection: widening CPU/memory gap ==============================")
	if err := cmdProjection(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Ablations ========================================================")
	if err := cmdAblate(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Adaptive targets vs fixed heuristic ==============================")
	if err := cmdAdaptive(nil); err != nil {
		return err
	}
	fmt.Println("\n=== NUMA topology sweep ==============================================")
	if err := cmdTopology(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Scaling sweep: remote-free shards and lock accounting ============")
	if err := cmdScaling(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Serving simulation: per-phase tail latency =======================")
	return cmdServe(nil)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	cfg := bench.ServeDefaults()
	seed := fs.Uint64("seed", cfg.Seed, "trace seed")
	cpus := fs.Int("cpus", cfg.CPUs, "CPU count of the trace and the machines")
	sessions := fs.Int("sessions", cfg.Sessions, "steady-state open-session target")
	ops := fs.Int("ops", cfg.OpsPerPhase, "operations per phase")
	nodes := fs.String("nodes", "1,2,4", "comma-separated node counts")
	jsonOut := fs.Bool("json", false, "emit the result as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg.Seed = *seed
	cfg.CPUs = *cpus
	cfg.Sessions = *sessions
	cfg.OpsPerPhase = *ops
	nodeCounts, err := parseInts(*nodes)
	if err != nil {
		return err
	}
	res, err := bench.RunServe(cfg, nodeCounts)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("serve", res)
	}
	res.Table().Fprint(os.Stdout)
	return nil
}
