package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,25")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 25 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad int accepted")
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("16,4096, 16384")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 16384 {
		t.Fatalf("parseSizes = %v", got)
	}
	if _, err := parseSizes("-1"); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestSubcommandsRunSmall(t *testing.T) {
	// Tiny parameterizations of each subcommand: the full pipelines must
	// execute end to end.
	if err := cmdBestCase([]string{"-cpus", "1,2", "-seconds", "0.002"}); err != nil {
		t.Fatalf("bestcase: %v", err)
	}
	if err := cmdWorstCase([]string{"-sizes", "64,4096", "-pages", "64"}); err != nil {
		t.Fatalf("worstcase: %v", err)
	}
	if err := cmdDLM([]string{"-ops", "300"}); err != nil {
		t.Fatalf("dlm: %v", err)
	}
	if err := cmdInsns(nil); err != nil {
		t.Fatalf("insns: %v", err)
	}
	if err := cmdAnalysis([]string{"-ops", "8"}); err != nil {
		t.Fatalf("analysis: %v", err)
	}
	if err := cmdAblate([]string{"-param", "split"}); err != nil {
		t.Fatalf("ablate: %v", err)
	}
	if err := cmdAblate([]string{"-param", "nope"}); err == nil {
		t.Fatal("unknown ablation accepted")
	}
	if err := cmdTopology([]string{"-cpus", "4", "-nodes", "1,2", "-seconds", "0.002"}); err != nil {
		t.Fatalf("topology: %v", err)
	}
	if err := cmdTopology([]string{"-cpus", "4", "-nodes", "1,4", "-seconds", "0.002", "-pairing", "cross", "-json"}); err != nil {
		t.Fatalf("topology cross json: %v", err)
	}
	if err := cmdTopology([]string{"-cpus", "3"}); err == nil {
		t.Fatal("odd CPU count accepted")
	}
	if err := cmdScaling([]string{"-cpus", "2,4", "-nodes", "1,2", "-seconds", "0.002"}); err != nil {
		t.Fatalf("scaling: %v", err)
	}
	if err := cmdScaling([]string{"-cpus", "4", "-nodes", "2", "-seconds", "0.002", "-json"}); err != nil {
		t.Fatalf("scaling json: %v", err)
	}
	if err := cmdScaling([]string{"-cpus", "5"}); err == nil {
		t.Fatal("odd CPU count accepted by scaling")
	}
	if err := cmdObjCache([]string{"-sizes", "64", "-pairs", "100"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTopology([]string{"-pairing", "diag"}); err == nil {
		t.Fatal("unknown pairing accepted")
	}
}
