// Command kmemtorture drives the deterministic torture harness
// (internal/torture) from the command line: single seeded runs, the
// config matrix for CI smoke and nightly soak jobs, replay of committed
// repro artifacts, and corpus emission for the fuzz targets.
//
// Usage:
//
//	kmemtorture [-ops N] [-seed S] [-jitterseed J] [-seeds K]
//	            [-cpus N] [-nodes N] [-pages N]
//	            [-pressure] [-faults] [-adaptive] [-noshards]
//	            [-matrix small|full] [-shrink] [-out dir]
//	            [-replay file.json] [-emit-corpus dir]
//	            [-plant shardflush|rightmerge] [-v]
//
// With -matrix, every config in the matrix runs under -seeds jitter
// seeds (J, J+1, ...). On failure the run's repro — shrunk first when
// -shrink is set — is written to -out and the exit status is 1, so a CI
// job can upload the artifact directory and a developer replays it with
// -replay.
//
// -plant arms one of the deliberately planted mutation bugs; it only
// has an effect in binaries built with -tags torturecheck and is how
// the committed repro artifacts under internal/torture/testdata were
// generated.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kmem/internal/core"
	"kmem/internal/torture"
)

func main() {
	var (
		ops        = flag.Int("ops", 2000, "operations per run")
		seed       = flag.Uint64("seed", 1, "workload seed")
		jitterSeed = flag.Uint64("jitterseed", 0, "schedule-jitter seed (0 = conservative schedule)")
		seeds      = flag.Int("seeds", 1, "number of consecutive jitter seeds to run per config")
		cpus       = flag.Int("cpus", 4, "simulated CPUs")
		nodes      = flag.Int("nodes", 1, "NUMA nodes")
		pages      = flag.Int64("pages", 0, "physical pages (0 = config default)")
		pressure   = flag.Bool("pressure", false, "enable the watermark/reclaim model")
		faults     = flag.Bool("faults", false, "arm probabilistic fault injection")
		adaptive   = flag.Bool("adaptive", false, "enable the adaptive target controller")
		noShards   = flag.Bool("noshards", false, "disable per-CPU remote-free shards")
		matrix     = flag.String("matrix", "", "run a config matrix: small or full")
		shrink     = flag.Bool("shrink", false, "delta-debug failing runs to minimal repros")
		outDir     = flag.String("out", "torture-failures", "directory for failing repro artifacts")
		replay     = flag.String("replay", "", "replay a saved repro file instead of generating a run")
		emitCorpus = flag.String("emit-corpus", "", "write fuzz-corpus files for the run(s) into this directory")
		plant      = flag.String("plant", "", "arm a planted bug (torturecheck builds): shardflush or rightmerge")
		verbose    = flag.Bool("v", false, "log every run, not just failures")
	)
	flag.Parse()

	if *plant != "" {
		bug, ok := bugByName(*plant)
		if !ok {
			fmt.Fprintf(os.Stderr, "kmemtorture: unknown -plant %q (want shardflush or rightmerge)\n", *plant)
			os.Exit(2)
		}
		if !core.TortureBugsAvailable {
			fmt.Fprintln(os.Stderr, "kmemtorture: -plant requires a binary built with -tags torturecheck")
			os.Exit(2)
		}
		core.SetTortureBug(bug, true)
		defer core.SetTortureBug(bug, false)
	}

	d := driver{shrink: *shrink, outDir: *outDir, corpusDir: *emitCorpus, verbose: *verbose}

	switch {
	case *replay != "":
		r, err := torture.LoadRepro(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kmemtorture: %v\n", err)
			os.Exit(2)
		}
		d.replay(r)
	case *matrix != "":
		var cfgs []torture.Config
		switch *matrix {
		case "small":
			cfgs = torture.MatrixSmall()
		case "full":
			cfgs = torture.MatrixFull()
		default:
			fmt.Fprintf(os.Stderr, "kmemtorture: unknown -matrix %q (want small or full)\n", *matrix)
			os.Exit(2)
		}
		for _, cfg := range cfgs {
			cfg.Ops = *ops
			cfg.Seed = *seed
			for s := 0; s < *seeds; s++ {
				cfg.JitterSeed = jitterAt(*jitterSeed, s)
				d.run(cfg)
			}
		}
	default:
		cfg := torture.Config{
			CPUs: *cpus, Nodes: *nodes, PhysPages: *pages,
			Ops: *ops, Seed: *seed,
			Pressure: *pressure, Faults: *faults,
			Adaptive: *adaptive, DisableShards: *noShards,
		}
		for s := 0; s < *seeds; s++ {
			cfg.JitterSeed = jitterAt(*jitterSeed, s)
			d.run(cfg)
		}
	}

	fmt.Printf("kmemtorture: %d run(s), %d failure(s)\n", d.runs, d.failures)
	if d.failures > 0 {
		os.Exit(1)
	}
}

// bugByName maps a -plant flag value to its core planted-bug index.
func bugByName(name string) (int, bool) {
	switch name {
	case "shardflush":
		return core.TortureBugSkipShardFlush, true
	case "rightmerge":
		return core.TortureBugDropRightMerge, true
	}
	return 0, false
}

// jitterAt derives the s'th jitter seed from the base: seed 0 stays 0
// (the conservative schedule) only in slot 0; later slots perturb.
func jitterAt(base uint64, s int) uint64 {
	if base == 0 && s == 0 {
		return 0
	}
	return base + uint64(s)
}

type driver struct {
	shrink    bool
	outDir    string
	corpusDir string
	verbose   bool

	runs     int
	failures int
}

// artifactName is the filename a failing run's repro is saved under.
func artifactName(cfg torture.Config) string {
	return fmt.Sprintf("%s-seed%d-j%d.torture.json", cfg.Name(), cfg.Seed, cfg.JitterSeed)
}

func (d *driver) run(cfg torture.Config) {
	d.finish(torture.New(cfg))
}

func (d *driver) replay(r torture.Repro) {
	d.finish(r.Runner())
}

func (d *driver) finish(run *torture.Runner) {
	d.runs++
	cfg := run.Config()
	rep, err := run.Run()
	if err == nil {
		if d.verbose {
			fmt.Printf("PASS %s seed=%d jitter=%d ops=%d allocs=%d fails=%d sched=%016x\n",
				cfg.Name(), cfg.Seed, cfg.JitterSeed, rep.OpsExecuted, rep.Allocs, rep.AllocFails, rep.SchedHash)
		}
		d.emit(torture.ReproOf(run))
		return
	}

	d.failures++
	fmt.Printf("FAIL %s seed=%d jitter=%d: %v\n", cfg.Name(), cfg.Seed, cfg.JitterSeed, err)
	repro := torture.ReproOf(run)
	if d.shrink {
		repro = torture.ShrinkFailure(repro)
		fmt.Printf("     shrunk to %d op(s)\n", len(repro.Ops))
	}
	path := filepath.Join(d.outDir, artifactName(repro.Config))
	if err := os.MkdirAll(d.outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "kmemtorture: %v\n", err)
		return
	}
	if err := repro.Save(path); err != nil {
		fmt.Fprintf(os.Stderr, "kmemtorture: %v\n", err)
		return
	}
	fmt.Printf("     repro: %s (replay with: kmemtorture -replay %s)\n", path, path)
	d.emit(repro)
}

// emit writes the run's fuzz-corpus encodings when -emit-corpus is set.
func (d *driver) emit(r torture.Repro) {
	if d.corpusDir == "" {
		return
	}
	tag := fmt.Sprintf("torture-%s-seed%d-j%d", r.Config.Name(), r.Config.Seed, r.Config.JitterSeed)
	ops := filepath.Join(d.corpusDir, "FuzzAllocatorOps", tag)
	if err := torture.WriteGoFuzzCorpusFile(ops, r.FuzzAllocatorOpsBytes()); err != nil {
		fmt.Fprintf(os.Stderr, "kmemtorture: %v\n", err)
		return
	}
	trace, err := r.TraceBytes()
	if err != nil {
		fmt.Fprintf(os.Stderr, "kmemtorture: trace encode: %v\n", err)
		return
	}
	tr := filepath.Join(d.corpusDir, "FuzzReadTrace", tag)
	if err := torture.WriteGoFuzzCorpusFile(tr, trace); err != nil {
		fmt.Fprintf(os.Stderr, "kmemtorture: %v\n", err)
		return
	}
	if d.verbose {
		fmt.Printf("     corpus: %s, %s\n", ops, tr)
	}
}
