package main

import (
	"testing"

	"kmem/internal/torture"
)

func TestBugByName(t *testing.T) {
	if _, ok := bugByName("shardflush"); !ok {
		t.Fatal("shardflush not recognized")
	}
	if _, ok := bugByName("rightmerge"); !ok {
		t.Fatal("rightmerge not recognized")
	}
	if _, ok := bugByName("nosuchbug"); ok {
		t.Fatal("unknown bug accepted")
	}
}

func TestJitterAt(t *testing.T) {
	// Base 0 keeps the conservative schedule in slot 0 only; every later
	// slot must actually perturb.
	if got := jitterAt(0, 0); got != 0 {
		t.Fatalf("jitterAt(0,0) = %d, want 0", got)
	}
	if got := jitterAt(0, 1); got == 0 {
		t.Fatal("jitterAt(0,1) = 0: slot 1 did not perturb")
	}
	if got := jitterAt(41, 1); got != 42 {
		t.Fatalf("jitterAt(41,1) = %d, want 42", got)
	}
}

func TestArtifactName(t *testing.T) {
	cfg := torture.Config{CPUs: 4, Nodes: 2, Seed: 7, JitterSeed: 3, Pressure: true}
	got := artifactName(cfg)
	want := "c4n2-pressure-seed7-j3.torture.json"
	if got != want {
		t.Fatalf("artifactName = %q, want %q", got, want)
	}
}

func TestDriverRunsCleanConfig(t *testing.T) {
	d := driver{outDir: t.TempDir()}
	d.run(torture.Config{CPUs: 2, Nodes: 1, Ops: 300, Seed: 11, JitterSeed: 5})
	if d.runs != 1 || d.failures != 0 {
		t.Fatalf("runs=%d failures=%d, want 1/0", d.runs, d.failures)
	}
}
