package kmem_test

import (
	"fmt"
	"log"

	"kmem"
)

// The standard System V interface: kmem_alloc rounds the request up to a
// size class; kmem_free takes the address and the original size.
func ExampleSystem_standardInterface() {
	sys, err := kmem.NewSystem(kmem.Config{CPUs: 1})
	if err != nil {
		log.Fatal(err)
	}
	cpu := sys.CPU(0)

	b, err := sys.Alloc(cpu, 100) // served by the 128-byte class
	if err != nil {
		log.Fatal(err)
	}
	copy(sys.Bytes(b, 12), "hello kernel")
	fmt.Printf("%s\n", sys.Bytes(b, 12))
	sys.Free(cpu, b, 100)

	fmt.Println(sys.CheckConsistency() == nil)
	// Output:
	// hello kernel
	// true
}

// The cookie interface translates a size once — at compile time in the
// paper — and then allocates and frees in 13 simulated instructions.
func ExampleSystem_cookieInterface() {
	sys, err := kmem.NewSystem(kmem.Config{CPUs: 1})
	if err != nil {
		log.Fatal(err)
	}
	cpu := sys.CPU(0)

	cookie, err := sys.GetCookie(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("class size:", cookie.Size())

	b, err := sys.AllocCookie(cpu, cookie)
	if err != nil {
		log.Fatal(err)
	}
	sys.FreeCookie(cpu, b, cookie)
	// Output:
	// class size: 64
}

// Per-layer statistics expose the miss rates the paper's evaluation is
// built on: a warmed alloc/free loop never leaves the per-CPU cache.
func ExampleSystem_stats() {
	sys, err := kmem.NewSystem(kmem.Config{CPUs: 1})
	if err != nil {
		log.Fatal(err)
	}
	cpu := sys.CPU(0)
	cookie, _ := sys.GetCookie(64)

	// Warm up, then run the paper's best-case loop.
	b, _ := sys.AllocCookie(cpu, cookie)
	sys.FreeCookie(cpu, b, cookie)
	for i := 0; i < 1000; i++ {
		b, _ := sys.AllocCookie(cpu, cookie)
		sys.FreeCookie(cpu, b, cookie)
	}

	for _, cs := range sys.Stats(cpu).Classes {
		if cs.Allocs == 0 {
			continue
		}
		fmt.Printf("size %d: %d allocs, miss rate %.1f%% (bound %.1f%%)\n",
			cs.Size, cs.Allocs, cs.AllocMissRate()*100, 100.0/float64(cs.Target))
	}
	// Output:
	// size 64: 1001 allocs, miss rate 0.1% (bound 10.0%)
}

// Large requests bypass the caching layers and are served as page spans
// by the coalesce-to-vmblk layer.
func ExampleSystem_largeAllocation() {
	sys, err := kmem.NewSystem(kmem.Config{CPUs: 1})
	if err != nil {
		log.Fatal(err)
	}
	cpu := sys.CPU(0)

	big, err := sys.Alloc(cpu, 64<<10) // 16 pages
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats(cpu)
	fmt.Println("large allocations:", st.VM.LargeAllocs)
	sys.Free(cpu, big, 64<<10)
	// Output:
	// large allocations: 1
}
