// Package objcache provides typed object caches — the slab-style layer
// above the kernel memory allocator's cookie path. A cache holds
// *constructed* objects of one type: the constructor runs once when a
// buffer is first carved from its backing allocation, the destructor
// runs only when the cache releases the buffer back to the allocator
// under reclaim or Trim pressure, and every Get/Put in between reuses
// the constructed state for free. This is the observation (Bonwick's)
// that object initialization often costs more than allocation itself:
// once a message block's header fields or a lock block's queue pointers
// are set up, handing the same buffer back out skips that work.
//
// The common Get/Put case is served from a per-CPU pair of magazines
// (loaded + previous) under the CPU's interrupt lock — the same
// synchronization, and the same 13-instruction charge, as the cookie
// fast path it sits above. When both magazines are empty (or both full
// on Put) the cache exchanges a magazine with a spin-locked central
// depot; only when the depot too is exhausted does it carve a new
// buffer from the backing allocator and run the constructor.
//
// Each cache also colors its buffers: successive carves offset the
// object within its backing block by increasing multiples of the cache
// line size, consuming the slack the backing size class leaves over.
// Caches whose objects would otherwise start at identical offsets in
// identical classes (the "all headers on line 0" hot-spot the paper's
// power-of-two critics point at) instead spread their hot first lines
// across the associativity sets. The starting color is derived from the
// cache's name, so two caches of the same shape are offset from each
// other deterministically.
package objcache

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"kmem/internal/allocif"
	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/harden"
	"kmem/internal/machine"
)

// Fast-path instruction parity with the cookie path: intr-disable pair
// (2) + magazine line read (1) + slot access (1) + line write (1) +
// residual bookkeeping (8) = 13, matching core's cookie alloc. The win
// over the cookie path is therefore never in the Get itself — it is the
// constructor work a warm Get skips.
const (
	insnGetResidual = 8  // residual fast-path bookkeeping on Get
	insnPutResidual = 8  // residual fast-path bookkeeping on Put
	insnSlot        = 1  // load/store of the magazine slot
	insnMagSwap     = 2  // exchange loaded and previous magazines
	insnDepot       = 12 // depot list manipulation under its spin lock
	insnCarve       = 10 // color selection + bookkeeping on a fresh carve
	insnRelease     = 6  // bookkeeping when a buffer is released
)

// Ctor initializes a freshly carved buffer to its constructed state.
// It runs at most once per buffer lifetime in the cache; Get returns
// buffers in this state, and Put must receive them back in it.
type Ctor func(c *machine.CPU, mem *arena.Arena, obj arena.Addr)

// Dtor tears a constructed buffer down before its backing memory is
// returned to the allocator (reclaim, Trim, or Destroy).
type Dtor func(c *machine.CPU, mem *arena.Arena, obj arena.Addr)

// Opts tunes a cache. The zero value selects defaults.
type Opts struct {
	// MagSize is the number of objects per magazine (default 8).
	MagSize int
	// DepotMags bounds the full magazines the depot retains; overflow
	// magazines are destructed and released immediately (default 8).
	DepotMags int
	// MinBackSize sets a floor on the backing allocation request, for
	// subsystems whose on-disk/paper layout fixes the block size (DLM's
	// 512-byte resource blocks) while the live object is smaller. The
	// slack becomes coloring room.
	MinBackSize uint64
	// ColorSpace asks for this many extra bytes of backing purely for
	// coloring, when the natural class slack is too small to spread
	// objects (e.g. an exact-fit size class).
	ColorSpace uint64
	// Harden, when non-nil, enables per-cache corruption hardening: a
	// redzone canary immediately after the object (verified on every
	// Put), and — unless NoPoison is set — poison-on-put with
	// verify-on-get. Poisoning sacrifices the constructed-state reuse
	// win: a poisoned object must be destructed on Put and
	// re-constructed on Get, so caches that want hardening without
	// losing ctor skips set NoPoison. Detections follow Config.Policy;
	// quarantined objects are pinned (never magazined, never released)
	// and counted in Stats.Quarantined.
	Harden *harden.Config

	// Rseq replaces the magazine fast path's interrupt-disable pair with
	// a restartable per-CPU sequence (machine.Rseq), mirroring core's
	// Params.Rseq: the Get/Put common case commits with a single store
	// and is restarted, not blocked, when a cross-CPU drain interferes.
	// Same instruction count, IntrCycles-CommitCycles fewer cycles.
	Rseq bool

	// Adaptive, when non-nil, wires magazine capacity to a windowed
	// depot-contention controller: sustained contention on a node depot's
	// lock grows the capacity of newly built magazines (halving the depot
	// trip rate per doubling), and sustained calm shrinks it back toward
	// the configured MagSize, which is the ratchet floor no shrink passes.
	Adaptive *MagTune
}

// MagTune configures the magazine-capacity controller (Opts.Adaptive).
// The signal is the fraction of depot exchanges whose lock acquisition
// had to spin (Sim mode's LastWait; Native depots rarely contend long
// enough to matter and simply stay at the configured size). The zero
// value of every field selects a default.
type MagTune struct {
	// Window is the number of depot exchanges per evaluation window
	// (default 32).
	Window int
	// GrowPct grows capacity (doubling, bounded by MaxMag) when the
	// window's contended percentage reaches it (default 25).
	GrowPct int
	// ShrinkPct marks a window calm when the contended percentage is at
	// or below it (default 5); Holdoff consecutive calm windows shrink
	// capacity one halving step, never below the configured MagSize —
	// the ratchet floor (default Holdoff 4).
	ShrinkPct int
	Holdoff   int
	// MaxMag bounds the capacity (default 16 * MagSize).
	MaxMag int
}

func (t *MagTune) withDefaults(magSize int) MagTune {
	out := *t
	if out.Window <= 0 {
		out.Window = 32
	}
	if out.GrowPct <= 0 {
		out.GrowPct = 25
	}
	if out.ShrinkPct <= 0 {
		out.ShrinkPct = 5
	}
	if out.Holdoff <= 0 {
		out.Holdoff = 4
	}
	if out.MaxMag <= 0 {
		out.MaxMag = 16 * magSize
	}
	if out.MaxMag < magSize {
		out.MaxMag = magSize
	}
	return out
}

// cookieBacking is the fast-path interface of the paper's allocator:
// pre-resolved size-class cookies. Probed dynamically so objcache works
// — degraded to plain Alloc/Free — over any allocif.Allocator.
type cookieBacking interface {
	GetCookie(size uint64) (core.Cookie, error)
	AllocCookie(c *machine.CPU, ck core.Cookie) (arena.Addr, error)
	FreeCookie(c *machine.CPU, addr arena.Addr, ck core.Cookie)
}

// shedBacking lets the cache register with the allocator's reclaim and
// pressure machinery.
type shedBacking interface {
	RegisterCacheShed(fn core.CacheShedFunc) func()
}

// eventBacking routes cache events through the allocator's event spine.
type eventBacking interface {
	EmitCacheEvent(ev core.LayerEvent, n int)
}

// sizeBacking reports the true capacity a request rounds up to, so
// coloring can use the full slack even without a cookie.
type sizeBacking interface {
	RoundedSize(size uint64) uint64
}

// cpuMags is one CPU's magazine pair. loaded serves the fast path; prev
// is its reserve, kept either full or empty so one swap always helps.
// The trailing pad keeps native-mode locks of adjacent CPUs off shared
// cache lines, mirroring core's paddedIntrLock.
type cpuMags struct {
	il     machine.IntrLock
	rs     *machine.Rseq // non-nil under Opts.Rseq; replaces il on every path
	line   machine.Line  // synthetic metadata line for the pair
	loaded []arena.Addr
	prev   []arena.Addr
	_      [64]byte
}

// depot is one node's magazine depot: full magazines awaiting a CPU on
// that node, plus the bounded recycled-empty pool. One depot per node
// (rather than one per cache) keeps magazine exchanges node-local — the
// single-depot design serialized every node's slow path on one lock and
// bounced its line across the interconnect. The lock and metadata line
// are placed on the depot's home node.
type depot struct {
	lk    *machine.SpinLock
	ln    machine.Line
	full  [][]arena.Addr
	empty [][]arena.Addr // recycled empty magazines (bounded)
}

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	Gets      uint64 // objects handed out
	Puts      uint64 // objects handed back
	CtorRuns  uint64 // constructors executed (fresh carves)
	CtorSkips uint64 // Gets served from constructed buffers
	DtorRuns  uint64 // destructors executed (releases)
	Carves    uint64 // buffers carved from the backing allocator
	Releases  uint64 // buffers returned to the backing allocator
	Sheds     uint64 // shed passes that released at least one buffer
	Live      uint64 // buffers currently carved (in magazines, depot, or in use)
	DepotFull int    // full magazines currently retained, summed over node depots
	Colors    int    // distinct colors the backing slack allows

	// Optimistic fast path and depot contention.
	RseqRestarts    uint64 // magazine sequences restarted (zero with Opts.Rseq off)
	DepotWaitCycles uint64 // cycles spent spinning on depot locks

	// Magazine-capacity controller (static MagSize with Opts.Adaptive nil).
	MagCap     int    // capacity newly built magazines currently get
	MagGrows   uint64 // controller grow steps taken
	MagShrinks uint64 // controller shrink steps taken

	// Hardening (all zero with Opts.Harden nil).
	Detections  uint64 // corruption reports filed by this cache
	Quarantined uint64 // objects pinned after a detection
}

// Cache is a typed object cache over a backing allocator.
type Cache struct {
	name  string
	m     *machine.Machine
	mem   *arena.Arena
	back  allocif.Allocator
	ctor  Ctor
	dtor  Dtor
	size  uint64 // object size
	align uint64 // object alignment (power of two, >= 8)

	// Backing geometry, fixed at New.
	backReq  uint64 // size requested from the backing allocator
	capacity uint64 // bytes the backing actually provides per carve
	cookie   core.Cookie
	hasCk    bool
	sizer    sizeBacking
	events   eventBacking
	magSize  int
	depotCap int

	// Coloring.
	colorInc  uint64 // one cache line
	nColors   int
	colorBase int

	mags []cpuMags

	// Per-node magazine depots. The carve bookkeeping is kept under a
	// separate lock (objMu) so sheds can walk carves without contending
	// with magazine exchanges. depotFull mirrors the summed retained
	// full-magazine count for CPU-less Stats reads.
	depots    []depot
	depotFull atomic.Int32

	// Magazine-capacity controller state (tune nil when Opts.Adaptive
	// is). magCap is the capacity newly built magazines get; existing
	// magazines retire through the depot at their birth capacity and the
	// recycle pool drops stale-sized empties, so a capacity change
	// propagates within a few exchanges.
	tune       *MagTune
	magCap     atomic.Int32
	tuneMu     sync.Mutex
	tuneOps    int // depot exchanges in the current window
	tuneHits   int // of those, how many found the depot lock contended
	tuneCalm   int // consecutive calm windows
	magGrows   atomic.Uint64
	magShrinks atomic.Uint64

	rseqRestarts atomic.Uint64 // magazine sequences restarted (Opts.Rseq)
	depotWait    atomic.Uint64 // cycles spent spinning on depot locks

	// obj -> backing base, for releases. Bookkeeping memory (a kernel
	// would keep this in the slab header); uncharged, slow-path only.
	objMu    sync.Mutex
	objs     map[arena.Addr]arena.Addr
	carveSeq int

	gets      atomic.Uint64
	puts      atomic.Uint64
	ctorRuns  atomic.Uint64
	ctorSkips atomic.Uint64
	skipsPub  atomic.Uint64 // ctorSkips already published to the event spine
	dtorRuns  atomic.Uint64
	carves    atomic.Uint64
	releases  atomic.Uint64
	sheds     atomic.Uint64

	unregister func()
	destroyed  atomic.Bool

	// Corruption hardening (nil with Opts.Harden nil).
	hd *cacheHarden
}

// cacheHarden is one cache's hardening state: the canary/poison
// geometry, per-object owner records, and the quarantine set. The
// bookkeeping lock is an uncharged host mutex like objMu — a kernel
// would keep these fields in the slab header.
type cacheHarden struct {
	cfg *harden.Config
	rz  uint64 // canary bytes after the object

	mu      sync.Mutex
	seq     uint64
	state   map[arena.Addr]*objOwner
	quar    map[arena.Addr]bool
	reports []harden.Report

	detections  atomic.Uint64
	quarantined atomic.Uint64
}

// objOwner tracks one carved object's whereabouts and last-owner
// provenance.
type objOwner struct {
	out     bool // handed to a caller (vs resting in a magazine/depot)
	lastGet harden.Record
	lastPut harden.Record
}

// cacheHardenMaxReports bounds the retained per-cache report buffer.
const cacheHardenMaxReports = 64

// poisonMode reports whether objects at rest are poisoned (hardening on
// and NoPoison unset) — the mode that trades ctor skips for
// use-after-free detection.
func (k *Cache) poisonMode() bool {
	return k.hd != nil && !k.hd.cfg.NoPoison
}

// ErrDestroyed is returned by Get on a destroyed cache.
var ErrDestroyed = errors.New("objcache: cache destroyed")

// New creates a named cache of size-byte objects aligned to align
// (0 selects 8) over back. ctor and dtor may be nil. The cache
// registers with back's reclaim machinery when back supports it.
func New(m *machine.Machine, back allocif.Allocator, name string, size, align uint64, ctor Ctor, dtor Dtor, o Opts) (*Cache, error) {
	if size == 0 {
		return nil, errors.New("objcache: zero object size")
	}
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		return nil, fmt.Errorf("objcache: alignment %d not a power of two", align)
	}
	if o.MagSize <= 0 {
		o.MagSize = 8
	}
	if o.DepotMags <= 0 {
		o.DepotMags = 8
	}

	k := &Cache{
		name:     name,
		m:        m,
		mem:      m.Mem(),
		back:     back,
		ctor:     ctor,
		dtor:     dtor,
		size:     size,
		align:    align,
		magSize:  o.MagSize,
		depotCap: o.DepotMags,
		colorInc: uint64(1) << m.Config().LineShift,
		objs:     make(map[arena.Addr]arena.Addr),
	}
	k.magCap.Store(int32(o.MagSize))
	if o.Adaptive != nil {
		t := o.Adaptive.withDefaults(o.MagSize)
		k.tune = &t
	}
	k.depots = make([]depot, m.NumNodes())
	for n := range k.depots {
		k.depots[n].lk = machine.NewSpinLockOn(m, n)
		k.depots[n].ln = m.NewMetaLineOn(n)
	}

	// Backing request: the object, worst-case alignment pad (backing
	// blocks are at least 8-byte aligned), the hardening redzone (the
	// canary lives immediately after the object, where an overrun lands
	// first), any explicit color space, and the subsystem's block-size
	// floor.
	var pad uint64
	if align > 8 {
		pad = align - 8
	}
	var rz uint64
	if o.Harden != nil {
		rz = o.Harden.RedzoneBytes()
		k.hd = &cacheHarden{
			cfg:   o.Harden,
			rz:    rz,
			state: make(map[arena.Addr]*objOwner),
			quar:  make(map[arena.Addr]bool),
		}
	}
	k.backReq = size + pad + rz + o.ColorSpace
	if k.backReq < o.MinBackSize {
		k.backReq = o.MinBackSize
	}

	// Resolve the backing capacity: a cookie pins both the class and
	// its true block size; otherwise RoundedSize, when offered, reports
	// the slack the allocator would leave anyway.
	if cb, ok := back.(cookieBacking); ok {
		if ck, err := cb.GetCookie(k.backReq); err == nil {
			k.cookie, k.hasCk = ck, true
			k.capacity = uint64(ck.Size())
		}
	}
	if !k.hasCk {
		if sz, ok := back.(sizeBacking); ok {
			k.sizer = sz
			k.capacity = sz.RoundedSize(k.backReq)
		}
		if k.capacity < k.backReq {
			k.capacity = k.backReq
		}
	}

	// Coloring: one color per cache line of slack, starting at a
	// name-derived offset so same-shaped caches interleave. The redzone
	// is not slack — the canary must fit after the object at every
	// color.
	slack := k.capacity - size - pad - rz
	k.nColors = int(slack/k.colorInc) + 1
	h := fnv.New32a()
	h.Write([]byte(name))
	k.colorBase = int(h.Sum32()) % k.nColors
	if k.colorBase < 0 {
		k.colorBase += k.nColors
	}

	k.mags = make([]cpuMags, m.NumCPUs())
	for i := range k.mags {
		k.mags[i].line = m.NewMetaLineOn(m.NodeOf(i))
		k.mags[i].loaded = make([]arena.Addr, 0, k.magSize)
		k.mags[i].prev = make([]arena.Addr, 0, k.magSize)
		if o.Rseq {
			k.mags[i].rs = machine.NewRseqOn(m, m.NodeOf(i))
		}
	}
	if eb, ok := back.(eventBacking); ok {
		k.events = eb
	}
	if sb, ok := back.(shedBacking); ok {
		k.unregister = sb.RegisterCacheShed(k.shed)
	}
	return k, nil
}

// Name returns the cache's name.
func (k *Cache) Name() string { return k.name }

// ObjSize returns the constructed object size.
func (k *Cache) ObjSize() uint64 { return k.size }

// Capacity returns the backing bytes each carve consumes.
func (k *Cache) Capacity() uint64 { return k.capacity }

// NumColors returns how many distinct line offsets the cache cycles
// through.
func (k *Cache) NumColors() int { return k.nColors }

// ColorInc returns the coloring step (the machine's cache line size).
func (k *Cache) ColorInc() uint64 { return k.colorInc }

// magRun executes body as CPU c's magazine critical section: a
// restartable sequence under Opts.Rseq (commit-store discipline, aborted
// and restarted on interference), the interrupt-disable pair otherwise.
// The restart tally is safe outside the sequence — it is this cache's
// own atomic, not state the sequence protects.
func (k *Cache) magRun(c *machine.CPU, pc *cpuMags, body func()) {
	if pc.rs != nil {
		if n := pc.rs.Run(c, func(int) { body() }); n > 0 {
			k.rseqRestarts.Add(uint64(n))
		}
		return
	}
	pc.il.Acquire(c)
	body()
	pc.il.Release(c)
}

// magInterfere executes body as a cross-CPU access to pc's magazines
// (drains), aborting the owner's in-flight sequence under Opts.Rseq.
func (k *Cache) magInterfere(c *machine.CPU, pc *cpuMags, body func()) {
	if pc.rs != nil {
		pc.rs.Interfere(c, body)
		return
	}
	pc.il.Acquire(c)
	body()
	pc.il.Release(c)
}

// depotOf returns the calling CPU's node depot.
func (k *Cache) depotOf(c *machine.CPU) *depot { return &k.depots[c.Node()] }

// noteDepotLock accounts the spin the Acquire immediately preceding it
// paid for d's lock: the cycles surface through the allocator's event
// spine (EvLockWait, like every charged lock in core) and feed the
// magazine-capacity controller's contention signal. Returns whether the
// acquire was contended.
func (k *Cache) noteDepotLock(d *depot) bool {
	w := d.lk.LastWait()
	if w > 0 {
		k.depotWait.Add(uint64(w))
		if k.events != nil {
			k.events.EmitCacheEvent(core.EvLockWait, int(w))
		}
	}
	return w > 0
}

// curMagCap returns the capacity newly built magazines get.
func (k *Cache) curMagCap() int { return int(k.magCap.Load()) }

// noteExchange feeds one depot exchange into the capacity controller:
// every Window exchanges the contended fraction either grows capacity
// (doubling toward MaxMag), counts toward a shrink (Holdoff calm windows
// halve it, floored at the configured MagSize — the ratchet floor), or
// resets the calm streak.
func (k *Cache) noteExchange(contended bool) {
	if k.tune == nil {
		return
	}
	k.tuneMu.Lock()
	k.tuneOps++
	if contended {
		k.tuneHits++
	}
	if k.tuneOps >= k.tune.Window {
		pct := 100 * k.tuneHits / k.tuneOps
		k.tuneOps, k.tuneHits = 0, 0
		cur := int(k.magCap.Load())
		switch {
		case pct >= k.tune.GrowPct && cur < k.tune.MaxMag:
			nc := cur * 2
			if nc > k.tune.MaxMag {
				nc = k.tune.MaxMag
			}
			k.magCap.Store(int32(nc))
			k.tuneCalm = 0
			k.magGrows.Add(1)
		case pct <= k.tune.ShrinkPct:
			k.tuneCalm++
			if k.tuneCalm >= k.tune.Holdoff {
				if cur > k.magSize {
					nc := cur / 2
					if nc < k.magSize {
						nc = k.magSize
					}
					k.magCap.Store(int32(nc))
					k.magShrinks.Add(1)
				}
				k.tuneCalm = 0
			}
		default:
			k.tuneCalm = 0
		}
	}
	k.tuneMu.Unlock()
}

// Get returns a constructed object. The common case pops the CPU's
// loaded magazine under its interrupt lock (or as a restartable sequence
// under Opts.Rseq) — no shared locks, and instruction-for-instruction
// the cost of a cookie alloc. Misses fall through to the node's depot
// and finally to a fresh carve (the only point the constructor runs).
func (k *Cache) Get(c *machine.CPU) (arena.Addr, error) {
	if k.destroyed.Load() {
		return arena.NilAddr, ErrDestroyed
	}
	pc := &k.mags[c.ID()]
	var obj arena.Addr
	var ok bool
	k.magRun(c, pc, func() { obj, ok = k.getFast(c, pc) })
	if ok {
		return obj, nil
	}
	return k.getSlow(c, pc)
}

// getFast pops from the magazine pair. Caller is inside the magazine
// critical section (magRun/magInterfere).
func (k *Cache) getFast(c *machine.CPU, pc *cpuMags) (arena.Addr, bool) {
	c.Read(pc.line)
	for {
		if len(pc.loaded) == 0 {
			if len(pc.prev) == 0 {
				return arena.NilAddr, false
			}
			pc.loaded, pc.prev = pc.prev, pc.loaded
			c.Work(insnMagSwap)
		}
		obj := pc.loaded[len(pc.loaded)-1]
		pc.loaded = pc.loaded[:len(pc.loaded)-1]
		c.Work(insnSlot)
		c.Write(pc.line)
		c.Work(insnGetResidual)
		if k.hd != nil && !k.hardenGet(c, obj) {
			continue // object quarantined; try the next one
		}
		k.gets.Add(1)
		if k.poisonMode() {
			// The object was destructed and poisoned when it was Put;
			// rebuild the constructed state — the price verify-on-get
			// pays for catching late writes.
			if k.ctor != nil {
				k.ctor(c, k.mem, obj)
			}
			k.ctorRuns.Add(1)
		} else {
			k.ctorSkips.Add(1)
		}
		return obj, true
	}
}

// getSlow refills from the calling CPU's node depot, or carves and
// constructs a fresh buffer. Runs with no cache locks held across
// backing-allocator calls, so a carve that triggers reclaim may re-enter
// this cache's shed.
func (k *Cache) getSlow(c *machine.CPU, pc *cpuMags) (arena.Addr, error) {
	// Try to exchange the empty loaded magazine for a full one.
	d := k.depotOf(c)
	d.lk.Acquire(c)
	contended := k.noteDepotLock(d)
	c.Read(d.ln)
	var full []arena.Addr
	if n := len(d.full); n > 0 {
		full = d.full[n-1]
		d.full = d.full[:n-1]
		k.depotFull.Add(-1)
		c.Write(d.ln)
	}
	c.Work(insnDepot)
	d.lk.Release(c)
	k.noteExchange(contended)

	if full != nil {
		var obj arena.Addr
		var ok bool
		k.magRun(c, pc, func() {
			// A Put may have refilled the pair while the depot lock was
			// held; prefer the magazines and return the depot's magazine.
			if obj, ok = k.getFast(c, pc); ok {
				return
			}
			// Install the full magazine; the empty loaded becomes spare.
			spare := pc.prev
			pc.prev = pc.loaded
			pc.loaded = full
			full = spare
			obj, _ = k.getFast(c, pc)
		})
		if ok {
			k.putDepotFull(c, full)
		} else {
			k.recycleEmpty(c, full)
		}
		return obj, nil
	}

	// Depot dry: carve a new buffer and construct it.
	obj, err := k.carve(c)
	if err != nil {
		return arena.NilAddr, err
	}
	k.gets.Add(1)
	return obj, nil
}

// carve allocates one backing block, picks its color, and runs the
// constructor. The buffer is born "in use" — it does not pass through
// a magazine.
func (k *Cache) carve(c *machine.CPU) (arena.Addr, error) {
	var base arena.Addr
	var err error
	if k.hasCk {
		base, err = k.back.(cookieBacking).AllocCookie(c, k.cookie)
	} else {
		base, err = k.back.Alloc(c, k.backReq)
	}
	if err != nil {
		return arena.NilAddr, err
	}
	c.Work(insnCarve)

	k.objMu.Lock()
	color := uint64((k.colorBase+k.carveSeq)%k.nColors) * k.colorInc
	k.carveSeq++
	obj := (base + arena.Addr(k.align) - 1) &^ (arena.Addr(k.align) - 1)
	obj += arena.Addr(color)
	k.objs[obj] = base
	k.objMu.Unlock()

	if k.ctor != nil {
		k.ctor(c, k.mem, obj)
	}
	if k.hd != nil {
		k.mem.Fill(obj+arena.Addr(k.size), k.hd.rz, harden.CanaryByte)
		k.hd.mu.Lock()
		o := &objOwner{out: true}
		o.lastGet = k.hd.record(c, harden.OpAlloc, obj)
		k.hd.state[obj] = o
		k.hd.mu.Unlock()
	}
	k.carves.Add(1)
	k.ctorRuns.Add(1)
	if k.events != nil {
		k.events.EmitCacheEvent(core.EvCtorRun, 1)
		k.publishSkips()
	}
	return obj, nil
}

// Put returns a constructed object to the cache. The object must be in
// constructed state (Put callers undo their modifications, which is
// still far cheaper than a full re-construction). The common case
// pushes onto the loaded magazine under the CPU's interrupt lock.
func (k *Cache) Put(c *machine.CPU, obj arena.Addr) {
	if k.hd != nil && !k.hardenPut(c, obj) {
		return // swallowed: double put, or quarantined after an overrun
	}
	if k.destroyed.Load() {
		// Late Put on a destroyed cache: release directly.
		k.puts.Add(1)
		k.releaseObj(c, obj, !k.poisonMode())
		return
	}
	pc := &k.mags[c.ID()]
	var ok bool
	k.magRun(c, pc, func() { ok = k.putFast(c, pc, obj) })
	if ok {
		return
	}
	k.putSlow(c, pc, obj)
}

// putFast pushes onto the magazine pair. Caller is inside the magazine
// critical section (magRun/magInterfere).
func (k *Cache) putFast(c *machine.CPU, pc *cpuMags, obj arena.Addr) bool {
	c.Read(pc.line)
	if len(pc.loaded) == cap(pc.loaded) {
		if len(pc.prev) != 0 {
			return false
		}
		pc.loaded, pc.prev = pc.prev, pc.loaded
		c.Work(insnMagSwap)
	}
	pc.loaded = append(pc.loaded, obj)
	c.Work(insnSlot)
	c.Write(pc.line)
	c.Work(insnPutResidual)
	k.puts.Add(1)
	return true
}

// putSlow moves a full magazine to the depot to make room. If the cache
// has been destroyed meanwhile, the object is released instead.
func (k *Cache) putSlow(c *machine.CPU, pc *cpuMags, obj arena.Addr) {
	if k.destroyed.Load() {
		k.puts.Add(1)
		k.releaseObj(c, obj, !k.poisonMode())
		return
	}
	// Take an empty magazine (recycled or fresh), then swap it in for
	// the older full one.
	d := k.depotOf(c)
	d.lk.Acquire(c)
	contended := k.noteDepotLock(d)
	c.Read(d.ln)
	var empty []arena.Addr
	if n := len(d.empty); n > 0 {
		empty = d.empty[n-1]
		d.empty = d.empty[:n-1]
	}
	c.Work(insnDepot)
	d.lk.Release(c)
	k.noteExchange(contended)
	if empty == nil {
		empty = make([]arena.Addr, 0, k.curMagCap())
	}

	var full []arena.Addr
	k.magRun(c, pc, func() {
		full = nil
		if k.putFast(c, pc, obj) { // raced: room appeared
			return
		}
		full = pc.prev
		pc.prev = pc.loaded
		pc.loaded = empty
		k.putFast(c, pc, obj)
	})
	if full == nil {
		k.recycleEmpty(c, empty)
		return
	}
	k.putDepotFull(c, full)
}

// putDepotFull deposits a full magazine in the calling CPU's node depot,
// releasing the oldest one when the depot exceeds its bound (the cache's
// per-node working-set limit).
func (k *Cache) putDepotFull(c *machine.CPU, full []arena.Addr) {
	var victim []arena.Addr
	d := k.depotOf(c)
	d.lk.Acquire(c)
	contended := k.noteDepotLock(d)
	c.Read(d.ln)
	d.full = append(d.full, full)
	if len(d.full) > k.depotCap {
		victim = d.full[0]
		d.full = d.full[1:]
	} else {
		k.depotFull.Add(1)
	}
	c.Write(d.ln)
	c.Work(insnDepot)
	d.lk.Release(c)
	k.noteExchange(contended)
	if victim != nil {
		n := k.releaseMag(c, victim)
		k.noteShed(n)
	}
}

// recycleEmpty returns an empty magazine to the node depot's bounded
// spare pool. Magazines whose capacity no longer matches the
// controller's current choice are dropped, so a capacity change
// propagates instead of old sizes circulating forever.
func (k *Cache) recycleEmpty(c *machine.CPU, mag []arena.Addr) {
	if mag == nil || len(mag) != 0 || cap(mag) != k.curMagCap() {
		return
	}
	d := k.depotOf(c)
	d.lk.Acquire(c)
	k.noteDepotLock(d)
	if len(d.empty) < k.depotCap {
		d.empty = append(d.empty, mag)
	}
	d.lk.Release(c)
}

// releaseMag destructs and releases every object in mag; returns the
// count. The emptied magazine is recycled. In poison mode the resting
// objects were already destructed (and poisoned) on Put, so the
// destructor must not run again.
func (k *Cache) releaseMag(c *machine.CPU, mag []arena.Addr) int {
	n := len(mag)
	runDtor := !k.poisonMode()
	for _, obj := range mag {
		k.releaseObj(c, obj, runDtor)
	}
	k.recycleEmpty(c, mag[:0])
	return n
}

// releaseObj returns the backing block to the allocator — the only path
// on which a buffer leaves the cache. runDtor tears down constructed
// state; callers pass false when the object was already destructed on
// Put (poison mode).
func (k *Cache) releaseObj(c *machine.CPU, obj arena.Addr, runDtor bool) {
	if runDtor {
		if k.dtor != nil {
			k.dtor(c, k.mem, obj)
		}
		k.dtorRuns.Add(1)
	}
	if k.hd != nil {
		k.hd.mu.Lock()
		delete(k.hd.state, obj)
		k.hd.mu.Unlock()
	}
	k.objMu.Lock()
	base, ok := k.objs[obj]
	delete(k.objs, obj)
	k.objMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("objcache %q: release of unknown object %#x", k.name, uint64(obj)))
	}
	c.Work(insnRelease)
	if k.hasCk {
		k.back.(cookieBacking).FreeCookie(c, base, k.cookie)
	} else {
		k.back.Free(c, base, k.backReq)
	}
	k.releases.Add(1)
}

// shed is the allocator's reclaim callback: non-aggressive shrinks the
// depot (cold magazines), aggressive also flushes every CPU's pair.
// Runs with no allocator locks held.
func (k *Cache) shed(c *machine.CPU, aggressive bool) int {
	n := k.shrinkDepot(c)
	if aggressive {
		n += k.drainMags(c)
	}
	k.noteShed(n)
	return n
}

// noteShed accounts one shed pass releasing n buffers.
func (k *Cache) noteShed(n int) {
	if n == 0 {
		return
	}
	k.sheds.Add(1)
	if k.events != nil {
		k.events.EmitCacheEvent(core.EvCacheShed, n)
		k.publishSkips()
	}
}

// publishSkips pushes the ctor-skip tally accumulated on fast paths to
// the event spine in arrears — the spine only sees slow-path emissions,
// so the fast path stays emission-free like core's EvAlloc policy.
func (k *Cache) publishSkips() {
	skips := k.ctorSkips.Load()
	pub := k.skipsPub.Load()
	if skips > pub && k.skipsPub.CompareAndSwap(pub, skips) {
		k.events.EmitCacheEvent(core.EvCtorSkip, int(skips-pub))
	}
}

// shrinkDepot releases every full magazine in every node depot.
func (k *Cache) shrinkDepot(c *machine.CPU) int {
	var n int
	for di := range k.depots {
		d := &k.depots[di]
		for {
			d.lk.Acquire(c)
			k.noteDepotLock(d)
			c.Read(d.ln)
			var mag []arena.Addr
			if l := len(d.full); l > 0 {
				mag = d.full[l-1]
				d.full = d.full[:l-1]
				k.depotFull.Add(-1)
				c.Write(d.ln)
			}
			c.Work(insnDepot)
			d.lk.Release(c)
			if mag == nil {
				break
			}
			n += k.releaseMag(c, mag)
		}
	}
	return n
}

// drainMags flushes every CPU's magazine pair. Under Opts.Rseq the swap
// runs as an interference on the owner CPU — its in-flight sequence, if
// any, restarts rather than observing the half-drained pair.
func (k *Cache) drainMags(c *machine.CPU) int {
	var n int
	for i := range k.mags {
		pc := &k.mags[i]
		var loaded, prev []arena.Addr
		k.magInterfere(c, pc, func() {
			loaded, prev = pc.loaded, pc.prev
			pc.loaded = make([]arena.Addr, 0, k.curMagCap())
			pc.prev = make([]arena.Addr, 0, k.curMagCap())
		})
		runDtor := !k.poisonMode()
		for _, obj := range loaded {
			k.releaseObj(c, obj, runDtor)
			n++
		}
		for _, obj := range prev {
			k.releaseObj(c, obj, runDtor)
			n++
		}
	}
	return n
}

// Drain flushes the depot and every magazine, releasing all idle
// constructed buffers. Objects currently handed out are unaffected.
func (k *Cache) Drain(c *machine.CPU) int {
	n := k.shrinkDepot(c) + k.drainMags(c)
	k.noteShed(n)
	return n
}

// Destroy drains the cache, unregisters it from the allocator's reclaim
// machinery, and returns how many buffers remain live (still held by
// callers — their memory stays allocated until Put, which will then
// release it directly).
func (k *Cache) Destroy(c *machine.CPU) int {
	if k.destroyed.Swap(true) {
		return 0
	}
	if k.unregister != nil {
		k.unregister()
		k.unregister = nil
	}
	k.Drain(c)
	k.objMu.Lock()
	live := len(k.objs)
	k.objMu.Unlock()
	return live
}

// ForEachCarved calls f for every currently carved buffer with its
// backing base address. Test/audit hook; holds the bookkeeping lock.
func (k *Cache) ForEachCarved(f func(obj, base arena.Addr)) {
	k.objMu.Lock()
	defer k.objMu.Unlock()
	for obj, base := range k.objs {
		f(obj, base)
	}
}

// Stats returns a snapshot of the cache's counters.
func (k *Cache) Stats() Stats {
	k.objMu.Lock()
	live := len(k.objs)
	k.objMu.Unlock()
	s := Stats{
		Gets:      k.gets.Load(),
		Puts:      k.puts.Load(),
		CtorRuns:  k.ctorRuns.Load(),
		CtorSkips: k.ctorSkips.Load(),
		DtorRuns:  k.dtorRuns.Load(),
		Carves:    k.carves.Load(),
		Releases:  k.releases.Load(),
		Sheds:     k.sheds.Load(),
		Live:      uint64(live),
		DepotFull: int(k.depotFull.Load()),
		Colors:    k.nColors,

		RseqRestarts:    k.rseqRestarts.Load(),
		DepotWaitCycles: k.depotWait.Load(),

		MagCap:     int(k.magCap.Load()),
		MagGrows:   k.magGrows.Load(),
		MagShrinks: k.magShrinks.Load(),
	}
	if k.hd != nil {
		s.Detections = k.hd.detections.Load()
		s.Quarantined = k.hd.quarantined.Load()
	}
	return s
}

// record stamps a fresh provenance record. Caller holds hd.mu.
func (h *cacheHarden) record(c *machine.CPU, op harden.Op, obj arena.Addr) harden.Record {
	h.seq++
	return harden.Record{
		Op:    op,
		Addr:  uint64(obj),
		Site:  "", // caches attribute by cache name, not call site
		CPU:   c.ID(),
		Node:  c.Node(),
		Cycle: c.Now(),
		Seq:   h.seq,
	}
}

// hardenReport files a corruption report. Caller holds hd.mu; the
// returned report is for the caller to act on (event, panic) after
// releasing the lock.
func (k *Cache) hardenReport(c *machine.CPU, kind harden.Kind, obj arena.Addr, off uint64, expected, got byte, o *objOwner) harden.Report {
	h := k.hd
	rep := harden.Report{
		Kind:     kind,
		Cache:    k.name,
		Addr:     uint64(obj),
		Class:    -1, // cache objects are not size-class blocks
		Size:     k.size,
		Offset:   off,
		Expected: expected,
		Got:      got,
		CPU:      c.ID(),
		Node:     c.Node(),
		Cycle:    c.Now(),
	}
	if o != nil {
		rep.LastAlloc = o.lastGet
		rep.LastFree = o.lastPut
	}
	h.detections.Add(1)
	h.reports = append(h.reports, rep)
	if len(h.reports) > cacheHardenMaxReports {
		h.reports = h.reports[len(h.reports)-cacheHardenMaxReports:]
	}
	if h.cfg.OnReport != nil {
		h.cfg.OnReport(rep)
	}
	return rep
}

// hardenDetected finishes a detection once hd.mu is released: event,
// then policy. PolicyPanic aborts with the full report.
func (k *Cache) hardenDetected(rep *harden.Report) {
	if k.events != nil {
		k.events.EmitCacheEvent(core.EvCorruption, 1)
	}
	if k.hd.cfg.Policy == harden.PolicyPanic {
		panic(rep.String())
	}
}

// quarantineObj pins obj: it stays in k.objs (so its backing is never
// released) and in hd.quar (so no magazine will serve it again). Caller
// holds hd.mu.
func (k *Cache) quarantineObj(obj arena.Addr) {
	h := k.hd
	if !h.quar[obj] {
		h.quar[obj] = true
		h.quarantined.Add(1)
	}
}

// hardenGet verifies a magazine-served object before handing it out: a
// quarantined object is skipped, and in poison mode the at-rest poison
// must be intact — a flipped byte is a late write through a stale
// pointer (use-after-free). Returns false when the caller must pick
// another object.
func (k *Cache) hardenGet(c *machine.CPU, obj arena.Addr) bool {
	h := k.hd
	h.mu.Lock()
	if h.quar[obj] {
		// A stale magazine slot can still name a quarantined object;
		// drop it silently — the detection was already reported.
		h.mu.Unlock()
		return false
	}
	o := h.state[obj]
	if k.poisonMode() {
		if off, ok := k.mem.CheckFill(obj, k.size, harden.PoisonByte); !ok {
			got := k.mem.Bytes(obj+arena.Addr(off), 1)[0]
			rep := k.hardenReport(c, harden.KindUseAfterFree, obj, off, harden.PoisonByte, got, o)
			pol := h.cfg.Policy
			if pol == harden.PolicyQuarantine {
				k.quarantineObj(obj)
			}
			h.mu.Unlock()
			k.hardenDetected(&rep)
			if pol == harden.PolicyQuarantine {
				if k.events != nil {
					k.events.EmitCacheEvent(core.EvQuarantine, 1)
				}
				return false
			}
			h.mu.Lock() // log-only: serve it anyway
		}
	}
	if o != nil {
		o.out = true
		o.lastGet = h.record(c, harden.OpAlloc, obj)
	}
	h.mu.Unlock()
	return true
}

// hardenPut runs the put-side checks: a put of an object that is not
// currently out is a double put (always swallowed — magazining it twice
// would corrupt the cache), the canary after the object is verified,
// and in poison mode the object is destructed and poisoned before it
// rests. Returns false when the Put was swallowed.
func (k *Cache) hardenPut(c *machine.CPU, obj arena.Addr) bool {
	h := k.hd
	h.mu.Lock()
	o := h.state[obj]
	if o == nil || !o.out {
		rep := k.hardenReport(c, harden.KindDoubleFree, obj, 0, 0, 0, o)
		h.mu.Unlock()
		k.hardenDetected(&rep)
		return false
	}
	if off, ok := k.mem.CheckFill(obj+arena.Addr(k.size), h.rz, harden.CanaryByte); !ok {
		boff := k.size + off
		got := k.mem.Bytes(obj+arena.Addr(boff), 1)[0]
		rep := k.hardenReport(c, harden.KindOverrun, obj, boff, harden.CanaryByte, got, o)
		o.out = false
		o.lastPut = h.record(c, harden.OpFree, obj)
		pol := h.cfg.Policy
		if pol == harden.PolicyQuarantine {
			k.quarantineObj(obj)
		}
		h.mu.Unlock()
		k.hardenDetected(&rep)
		if pol == harden.PolicyQuarantine {
			if k.events != nil {
				k.events.EmitCacheEvent(core.EvQuarantine, 1)
			}
			return false
		}
		h.mu.Lock() // log-only: heal the canary and rest it as usual
		k.mem.Fill(obj+arena.Addr(k.size), h.rz, harden.CanaryByte)
	} else {
		o.out = false
		o.lastPut = h.record(c, harden.OpFree, obj)
	}
	if k.poisonMode() {
		if k.dtor != nil {
			k.dtor(c, k.mem, obj)
		}
		k.dtorRuns.Add(1)
		k.mem.Fill(obj, k.size, harden.PoisonByte)
	}
	h.mu.Unlock()
	return true
}

// HardenReports returns the cache's retained corruption reports (oldest
// first, bounded). Empty when hardening is off.
func (k *Cache) HardenReports() []harden.Report {
	if k.hd == nil {
		return nil
	}
	k.hd.mu.Lock()
	defer k.hd.mu.Unlock()
	out := make([]harden.Report, len(k.hd.reports))
	copy(out, k.hd.reports)
	return out
}
