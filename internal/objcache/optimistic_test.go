package objcache_test

import (
	"testing"

	"kmem/internal/allocif"
	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/machine"
	"kmem/internal/objcache"
)

func newNodedKMA(t *testing.T, ncpu, nodes int) (*machine.Machine, allocif.Allocator) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = ncpu
	cfg.Nodes = nodes
	cfg.MemBytes = 16 << 20
	m := machine.New(cfg)
	a, err := core.New(m, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return m, allocif.NewKMA{Allocator: a}
}

// TestPerNodeDepots: magazine exchanges stay node-local. A CPU filling
// its node's depot leaves other nodes' depots empty, so a first Get on
// another node carves instead of raiding a remote depot — and the
// remote depot's stock is untouched afterwards.
func TestPerNodeDepots(t *testing.T) {
	m, kma := newNodedKMA(t, 4, 2)
	const size = 64
	k, err := objcache.New(m, kma, "test:depots", size, 8, nil, nil, objcache.Opts{MagSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	c0 := m.CPU(0) // node 0
	var c1 *machine.CPU
	for i := 0; i < m.NumCPUs(); i++ {
		if m.NodeOf(i) != c0.Node() {
			c1 = m.CPU(i)
			break
		}
	}
	if c1 == nil {
		t.Fatal("no second node")
	}

	// Fill node 0's depot: get a working set, put it all back so full
	// magazines retire into the depot.
	var held []arena.Addr
	for i := 0; i < 64; i++ {
		obj, err := k.Get(c0)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, obj)
	}
	for _, obj := range held {
		k.Put(c0, obj)
	}
	stocked := k.Stats().DepotFull
	if stocked == 0 {
		t.Fatal("put burst retired no full magazines into the depot")
	}
	carves := k.Stats().Carves

	// Node 1's Gets must not consume node 0's stock.
	held = held[:0]
	for i := 0; i < 16; i++ {
		obj, err := k.Get(c1)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, obj)
	}
	st := k.Stats()
	if st.DepotFull != stocked {
		t.Errorf("node 1 Gets drained the remote depot: %d -> %d full magazines", stocked, st.DepotFull)
	}
	if st.Carves == carves {
		t.Error("node 1 Gets carved nothing despite an empty home depot")
	}
	for _, obj := range held {
		k.Put(c1, obj)
	}

	// A node-0 CPU still enjoys the stock: its next misses exchange, not
	// carve.
	carves = k.Stats().Carves
	for i := 0; i < 16; i++ {
		obj, err := k.Get(c0)
		if err != nil {
			t.Fatal(err)
		}
		held[i] = obj
	}
	if got := k.Stats().Carves; got != carves {
		t.Errorf("node 0 Gets carved %d buffers despite %d stocked magazines", got-carves, stocked)
	}
	for _, obj := range held {
		k.Put(c0, obj)
	}
}

// cacheChurn drives every CPU through Get/Put churn with a small held
// window, forcing regular depot exchanges.
func cacheChurn(t *testing.T, m *machine.Machine, k *objcache.Cache, opsPerCPU int) {
	t.Helper()
	ncpu := m.NumCPUs()
	held := make([][]arena.Addr, ncpu)
	ops := make([]int, ncpu)
	m.Run(func(c *machine.CPU) bool {
		id := c.ID()
		if ops[id] >= opsPerCPU {
			for _, obj := range held[id] {
				k.Put(c, obj)
			}
			held[id] = nil
			return false
		}
		ops[id]++
		obj, err := k.Get(c)
		if err != nil {
			t.Fatalf("cpu %d: %v", id, err)
		}
		held[id] = append(held[id], obj)
		if len(held[id]) > 6 {
			k.Put(c, held[id][0])
			held[id] = held[id][1:]
		}
		return true
	})
}

// TestCacheRseqRestarts: under Opts.Rseq with aggressive restart jitter
// the magazine sequences observably restart, the cache stays coherent
// (every Get still returns a constructed object), and cross-CPU drains
// ride the interference path.
func TestCacheRseqRestarts(t *testing.T) {
	m, kma := newNodedKMA(t, 4, 1)
	m.SetScheduleJitter(&machine.JitterConfig{Seed: 11, RestartEvery: 3})
	const size = 96
	k, err := objcache.New(m, kma, "test:rseq", size, 8, patternCtor(size), nil,
		objcache.Opts{MagSize: 4, Rseq: true})
	if err != nil {
		t.Fatal(err)
	}
	cacheChurn(t, m, k, 500)
	st := k.Stats()
	if st.RseqRestarts == 0 {
		t.Fatal("no magazine sequence restarts under RestartEvery=3 jitter")
	}
	// The interference path: a drain aborts in-flight sequences rather
	// than deadlocking or tearing the pair.
	k.Drain(m.CPU(0))
	obj, err := k.Get(m.CPU(0))
	if err != nil {
		t.Fatal(err)
	}
	checkConstructed(t, m.Mem(), obj, size)
	k.Put(m.CPU(0), obj)
	if got, want := k.Stats().Gets, st.Gets+1; got != want {
		t.Errorf("gets = %d, want %d", got, want)
	}
}

// TestMagTuneConvergence mirrors the PR 1 ratchet-floor test for the
// magazine-capacity controller: a depot-contended phase must grow
// capacity (cutting depot trips per object), a calm phase must shrink it
// back exactly to the configured MagSize — the ratchet floor — and hold
// there without limit-cycling.
func TestMagTuneConvergence(t *testing.T) {
	m, kma := newNodedKMA(t, 4, 1)
	const size = 64
	tune := &objcache.MagTune{Window: 16, GrowPct: 10, ShrinkPct: 5, Holdoff: 2, MaxMag: 16}
	k, err := objcache.New(m, kma, "test:tune", size, 8, nil, nil,
		objcache.Opts{MagSize: 2, Adaptive: tune})
	if err != nil {
		t.Fatal(err)
	}

	// Contended phase: four CPUs exchanging two-object magazines hammer
	// the single node depot.
	cacheChurn(t, m, k, 2000)
	st := k.Stats()
	if st.DepotWaitCycles == 0 {
		t.Fatal("churn produced no depot lock contention; the signal is dead")
	}
	if st.MagGrows == 0 {
		t.Fatal("controller never grew magazine capacity under sustained depot contention")
	}
	if st.MagCap <= 2 || st.MagCap > tune.MaxMag {
		t.Fatalf("grown capacity %d not in (2, %d]", st.MagCap, tune.MaxMag)
	}

	// Calm phase: one CPU alone cannot contend the depot, but its bursts
	// still exchange magazines — uncontended windows that must walk
	// capacity back down to the floor and stop.
	c := m.CPU(0)
	calmBurst := func(rounds int) {
		held := make([]arena.Addr, 0, 48)
		for r := 0; r < rounds; r++ {
			for i := 0; i < 48; i++ {
				obj, err := k.Get(c)
				if err != nil {
					t.Fatal(err)
				}
				held = append(held, obj)
			}
			for _, obj := range held {
				k.Put(c, obj)
			}
			held = held[:0]
		}
	}
	calmBurst(600)
	st = k.Stats()
	if st.MagShrinks == 0 {
		t.Fatal("controller never shrank capacity through a long calm phase")
	}
	if st.MagCap != 2 {
		t.Fatalf("calm capacity = %d, want the ratchet floor %d", st.MagCap, 2)
	}

	// Floor stability: more calm churn moves nothing.
	shrinks := st.MagShrinks
	calmBurst(100)
	st = k.Stats()
	if st.MagCap != 2 || st.MagShrinks != shrinks {
		t.Fatalf("controller still moving at the floor: cap=%d shrinks=%d->%d",
			st.MagCap, shrinks, st.MagShrinks)
	}
}
