package objcache_test

import (
	"errors"
	"testing"

	"kmem/internal/allocif"
	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/machine"
	"kmem/internal/objcache"
)

const testPattern = 0xc7

func newKMA(t *testing.T, ncpu int) (*machine.Machine, *core.Allocator, allocif.Allocator) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = ncpu
	cfg.MemBytes = 16 << 20
	m := machine.New(cfg)
	a, err := core.New(m, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return m, a, allocif.NewKMA{Allocator: a}
}

func patternCtor(size uint64) objcache.Ctor {
	return func(c *machine.CPU, mem *arena.Arena, obj arena.Addr) {
		mem.Fill(obj, size, testPattern)
	}
}

func checkConstructed(t *testing.T, mem *arena.Arena, obj arena.Addr, size uint64) {
	t.Helper()
	if off, ok := mem.CheckFill(obj, size, testPattern); !ok {
		t.Fatalf("object %#x not in constructed state at offset %d", uint64(obj), off)
	}
}

// TestCtorOnceAndReuse is the heart of the layer: the constructor runs
// exactly once per carved buffer, and every warm Get sees the
// constructed state without re-running it.
func TestCtorOnceAndReuse(t *testing.T) {
	m, _, kma := newKMA(t, 1)
	const size = 96
	k, err := objcache.New(m, kma, "test:obj", size, 8, patternCtor(size), nil, objcache.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	for round := 0; round < 50; round++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		checkConstructed(t, m.Mem(), obj, size)
		// Dirty the object, then restore constructed state before Put —
		// the cache contract.
		m.Mem().Store64(obj, 0xdeadbeef)
		m.Mem().Fill(obj, size, testPattern)
		k.Put(c, obj)
	}
	st := k.Stats()
	if st.CtorRuns != 1 {
		t.Fatalf("ctor ran %d times for one recycled buffer, want 1", st.CtorRuns)
	}
	if st.CtorSkips != 49 {
		t.Fatalf("ctor skips = %d, want 49", st.CtorSkips)
	}
	if st.Gets != 50 || st.Puts != 50 {
		t.Fatalf("gets/puts = %d/%d, want 50/50", st.Gets, st.Puts)
	}
}

// TestColoring verifies carves cycle through distinct line-offset
// colors, all objects stay aligned, and every object fits inside its
// backing block's capacity.
func TestColoring(t *testing.T) {
	m, _, kma := newKMA(t, 1)
	const size, align = 40, 16
	k, err := objcache.New(m, kma, "test:color", size, align, nil, nil,
		objcache.Opts{MinBackSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if k.NumColors() < 2 {
		t.Fatalf("256-byte backing of %d-byte objects allows %d colors, want >= 2", size, k.NumColors())
	}
	c := m.CPU(0)
	held := make([]arena.Addr, 0, 32)
	for i := 0; i < 32; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, obj)
	}
	offsets := map[uint64]bool{}
	k.ForEachCarved(func(obj, base arena.Addr) {
		off := uint64(obj - base)
		offsets[off] = true
		if uint64(obj)%align != 0 {
			t.Errorf("object %#x not %d-aligned", uint64(obj), align)
		}
		if off+size > k.Capacity() {
			t.Errorf("object at offset %d overruns %d-byte capacity", off, k.Capacity())
		}
	})
	if len(offsets) < 2 {
		t.Fatalf("32 carves produced %d distinct color offsets, want >= 2", len(offsets))
	}
	for _, obj := range held {
		k.Put(c, obj)
	}
}

// TestNameBaseColor: two same-shaped caches start at different colors
// (deterministically, from the name hash), so their hot first lines do
// not stack on the same associativity sets.
func TestNameBaseColor(t *testing.T) {
	m, _, kma := newKMA(t, 1)
	c := m.CPU(0)
	firstOffset := func(name string) uint64 {
		k, err := objcache.New(m, kma, name, 40, 8, nil, nil, objcache.Opts{MinBackSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		var off uint64
		k.ForEachCarved(func(o, base arena.Addr) { off = uint64(o - base) })
		k.Put(c, obj)
		k.Destroy(c)
		return off
	}
	// Names chosen to hash to different residues mod the color count.
	a := firstOffset("test:alpha")
	b := firstOffset("test:bravo2")
	if a == b {
		t.Fatalf("caches %q and %q share first-carve offset %d; want distinct base colors", "test:alpha", "test:bravo2", a)
	}
}

// TestDtorBeforeRelease: every buffer the cache gives back to the
// allocator is destructed first, and only then; draining a quiescent
// cache releases everything it carved.
func TestDtorBeforeRelease(t *testing.T) {
	m, a, kma := newKMA(t, 1)
	const size = 64
	dtors := 0
	dtor := func(c *machine.CPU, mem *arena.Arena, obj arena.Addr) {
		// The destructor must see constructed state: nothing may free
		// the buffer behind the cache's back.
		if off, ok := mem.CheckFill(obj, size, testPattern); !ok {
			t.Errorf("dtor saw unconstructed state at offset %d", off)
		}
		dtors++
	}
	k, err := objcache.New(m, kma, "test:dtor", size, 8, patternCtor(size), dtor, objcache.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	objs := make([]arena.Addr, 0, 40)
	for i := 0; i < 40; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	for _, obj := range objs {
		k.Put(c, obj)
	}
	st := k.Stats()
	if st.DtorRuns != st.Releases {
		t.Fatalf("dtors %d != releases %d before drain", st.DtorRuns, st.Releases)
	}
	k.Drain(c)
	st = k.Stats()
	if st.Live != 0 {
		t.Fatalf("%d buffers live after drain of quiescent cache", st.Live)
	}
	if st.DtorRuns != st.Carves || st.Releases != st.Carves {
		t.Fatalf("carves %d, dtors %d, releases %d; want all equal after drain",
			st.Carves, st.DtorRuns, st.Releases)
	}
	if dtors != int(st.DtorRuns) {
		t.Fatalf("observed %d dtor calls, stats say %d", dtors, st.DtorRuns)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathParity: a warm Get charges exactly the cookie alloc's 13
// instructions, and a warm Put the same — the constructed-state win
// must not come from undercounting the cache itself.
func TestFastPathParity(t *testing.T) {
	m, _, kma := newKMA(t, 1)
	k, err := objcache.New(m, kma, "test:insn", 64, 8, nil, nil, objcache.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	// Warm one buffer and the magazine line.
	obj, err := k.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	k.Put(c, obj)
	obj, _ = k.Get(c)
	k.Put(c, obj)

	before := c.Stats().Instructions
	obj, _ = k.Get(c)
	getInsns := c.Stats().Instructions - before
	before = c.Stats().Instructions
	k.Put(c, obj)
	putInsns := c.Stats().Instructions - before
	if getInsns != 13 {
		t.Errorf("warm Get charged %d instructions, want 13 (cookie-path parity)", getInsns)
	}
	if putInsns != 13 {
		t.Errorf("warm Put charged %d instructions, want 13 (cookie-path parity)", putInsns)
	}
}

// TestShedUnderReclaim: a full drain of the allocator sheds the cache's
// idle constructed buffers, and the allocator's own audit then sees no
// leaked blocks.
func TestShedUnderReclaim(t *testing.T) {
	m, a, kma := newKMA(t, 1)
	const size = 128
	k, err := objcache.New(m, kma, "test:shed", size, 8, patternCtor(size), nil, objcache.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	objs := make([]arena.Addr, 0, 64)
	for i := 0; i < 64; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	for _, obj := range objs {
		k.Put(c, obj)
	}
	// DrainAll is the aggressive shed path: depot and magazines empty.
	a.DrainAll(c)
	st := k.Stats()
	if st.Live != 0 {
		t.Fatalf("%d buffers live after allocator DrainAll", st.Live)
	}
	if st.Sheds == 0 {
		t.Fatal("no shed recorded on the aggressive reclaim path")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// And the cache still works afterwards.
	obj, err := k.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	checkConstructed(t, m.Mem(), obj, size)
	k.Put(c, obj)
}

// TestTrimShedsDepotOnly: the non-aggressive path gives back the cold
// depot but leaves the hot per-CPU magazines loaded.
func TestTrimShedsDepotOnly(t *testing.T) {
	m, a, kma := newKMA(t, 1)
	k, err := objcache.New(m, kma, "test:trim", 64, 8, nil, nil,
		objcache.Opts{MagSize: 4, DepotMags: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	objs := make([]arena.Addr, 0, 32)
	for i := 0; i < 32; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	for _, obj := range objs {
		k.Put(c, obj)
	}
	st := k.Stats()
	if st.DepotFull == 0 {
		t.Fatal("expected full magazines in the depot after 32 puts with MagSize 4")
	}
	a.Trim(c, -1)
	st = k.Stats()
	if st.DepotFull != 0 {
		t.Fatalf("depot still holds %d full magazines after Trim", st.DepotFull)
	}
	if st.Live == 0 {
		t.Fatal("Trim flushed the per-CPU magazines; non-aggressive shed must not")
	}
}

// TestDestroyWithOutstanding: a destroyed cache releases late Puts
// directly and refuses new Gets.
func TestDestroyWithOutstanding(t *testing.T) {
	m, a, kma := newKMA(t, 1)
	dtors := 0
	dtor := func(c *machine.CPU, mem *arena.Arena, obj arena.Addr) { dtors++ }
	k, err := objcache.New(m, kma, "test:destroy", 64, 8, nil, dtor, objcache.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	obj, err := k.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	if live := k.Destroy(c); live != 1 {
		t.Fatalf("Destroy reported %d live buffers, want 1", live)
	}
	if _, err := k.Get(c); !errors.Is(err, objcache.ErrDestroyed) {
		t.Fatalf("Get on destroyed cache: %v, want ErrDestroyed", err)
	}
	k.Put(c, obj)
	if st := k.Stats(); st.Live != 0 {
		t.Fatalf("%d live after final Put on destroyed cache", st.Live)
	}
	if dtors != 1 {
		t.Fatalf("dtor ran %d times, want 1", dtors)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// rawAllocator exposes only Alloc/Free — no cookies, no shed registry,
// no event spine — to prove the cache degrades to the generic path.
type rawAllocator struct{ inner allocif.Allocator }

func (r rawAllocator) Name() string { return "raw" }
func (r rawAllocator) Alloc(c *machine.CPU, size uint64) (arena.Addr, error) {
	return r.inner.Alloc(c, size)
}
func (r rawAllocator) Free(c *machine.CPU, addr arena.Addr, size uint64) {
	r.inner.Free(c, addr, size)
}

// TestGenericBacking: the cache works over a bare Alloc/Free allocator,
// with coloring from explicit ColorSpace.
func TestGenericBacking(t *testing.T) {
	m, _, kma := newKMA(t, 1)
	const size = 80
	k, err := objcache.New(m, rawAllocator{inner: kma}, "test:raw", size, 8,
		patternCtor(size), nil, objcache.Opts{ColorSpace: 64})
	if err != nil {
		t.Fatal(err)
	}
	if k.NumColors() < 2 {
		t.Fatalf("ColorSpace 64 gave %d colors, want >= 2", k.NumColors())
	}
	c := m.CPU(0)
	for i := 0; i < 20; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		checkConstructed(t, m.Mem(), obj, size)
		k.Put(c, obj)
	}
	if st := k.Stats(); st.CtorRuns != 1 {
		t.Fatalf("ctor ran %d times, want 1", st.CtorRuns)
	}
	k.Drain(c)
}

// TestEventSpine: EvCtorRun / EvCtorSkip / EvCacheShed reach the
// allocator's hook with consistent tallies.
func TestEventSpine(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 1
	cfg.MemBytes = 16 << 20
	m := machine.New(cfg)
	var ec core.EventCounter
	a, err := core.New(m, core.Params{Hook: ec.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	kma := allocif.NewKMA{Allocator: a}
	k, err := objcache.New(m, kma, "test:events", 64, 8, nil, nil, objcache.Opts{MagSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	objs := make([]arena.Addr, 0, 16)
	for i := 0; i < 16; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	for _, obj := range objs {
		k.Put(c, obj)
	}
	for i := 0; i < 16; i++ { // warm round: all skips
		obj, _ := k.Get(c)
		objs[i] = obj
	}
	for _, obj := range objs {
		k.Put(c, obj)
	}
	k.Drain(c)
	st := k.Stats()
	if got := ec.Count(core.EvCtorRun); got != st.CtorRuns {
		t.Errorf("spine saw %d ctor-runs, cache counted %d", got, st.CtorRuns)
	}
	if got := ec.Count(core.EvCtorSkip); got != st.CtorSkips {
		t.Errorf("spine saw %d ctor-skips, cache counted %d (published in arrears)", got, st.CtorSkips)
	}
	if ec.Count(core.EvCacheShed) == 0 {
		t.Error("no cache-shed events reached the spine")
	}
}
