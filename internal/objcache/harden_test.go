package objcache_test

import (
	"strings"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/harden"
	"kmem/internal/machine"
	"kmem/internal/objcache"
)

func newHardenCache(t *testing.T, size uint64, hcfg *harden.Config, ctor objcache.Ctor, dtor objcache.Dtor) (*machine.Machine, *objcache.Cache, *[]harden.Report) {
	t.Helper()
	var reports []harden.Report
	hcfg.OnReport = func(r harden.Report) { reports = append(reports, r) }
	m, _, kma := newKMA(t, 1)
	k, err := objcache.New(m, kma, "test:hard", size, 8, ctor, dtor, objcache.Opts{Harden: hcfg})
	if err != nil {
		t.Fatal(err)
	}
	return m, k, &reports
}

// TestCacheHardenOverrun writes past the object and asserts Put detects
// the smashed canary, quarantines the object (pinned, never served
// again), and the cache keeps working.
func TestCacheHardenOverrun(t *testing.T) {
	const size = 96
	m, k, reports := newHardenCache(t, size, &harden.Config{}, patternCtor(size), nil)
	c := m.CPU(0)

	obj, err := k.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	m.Mem().Fill(obj+size, 1, 0x41) // one byte past the object
	k.Put(c, obj)

	if len(*reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(*reports))
	}
	rep := (*reports)[0]
	if rep.Kind != harden.KindOverrun || rep.Addr != uint64(obj) {
		t.Errorf("report = %v at %#x, want overrun at %#x", rep.Kind, rep.Addr, uint64(obj))
	}
	if rep.Cache != "test:hard" {
		t.Errorf("report cache = %q, want test:hard", rep.Cache)
	}
	if rep.Offset != size || rep.Got != 0x41 || rep.Expected != harden.CanaryByte {
		t.Errorf("report bytes = offset %d got %#x expected %#x", rep.Offset, rep.Got, rep.Expected)
	}
	st := k.Stats()
	if st.Detections != 1 || st.Quarantined != 1 {
		t.Errorf("stats = %d detections %d quarantined, want 1/1", st.Detections, st.Quarantined)
	}
	// The quarantined object is pinned live and never handed out again.
	for i := 0; i < 50; i++ {
		nb, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		if nb == obj {
			t.Fatalf("cache served quarantined object %#x", uint64(obj))
		}
		k.Put(c, nb)
	}
	if live := k.Destroy(c); live != 1 {
		t.Errorf("Destroy reported %d live, want 1 (the pinned object)", live)
	}
}

// TestCacheHardenDoublePut puts the same object twice; the second Put
// must be detected and swallowed without corrupting the magazines.
func TestCacheHardenDoublePut(t *testing.T) {
	const size = 64
	m, k, reports := newHardenCache(t, size, &harden.Config{NoPoison: true}, patternCtor(size), nil)
	c := m.CPU(0)

	obj, err := k.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	k.Put(c, obj)
	k.Put(c, obj)

	if len(*reports) != 1 || (*reports)[0].Kind != harden.KindDoubleFree {
		t.Fatalf("reports = %v, want one double put", *reports)
	}
	// Only one instance of obj circulates: two Gets must return obj at
	// most once.
	a, _ := k.Get(c)
	b, err := k.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("double put duplicated object %#x in the magazines", uint64(a))
	}
	if st := k.Stats(); st.Puts != 1 {
		t.Errorf("puts = %d, want 1 (the swallowed put must not count)", st.Puts)
	}
}

// TestCacheHardenUseAfterFree writes through a stale pointer while the
// object rests poisoned in a magazine; the next Get of it must detect
// the flip, quarantine it, and serve another object.
func TestCacheHardenUseAfterFree(t *testing.T) {
	const size = 96
	m, k, reports := newHardenCache(t, size, &harden.Config{}, patternCtor(size), nil)
	c := m.CPU(0)

	obj, err := k.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	k.Put(c, obj)                // destructed + poisoned at rest
	m.Mem().Fill(obj+8, 1, 0x77) // late write through the stale pointer

	nb, err := k.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	if nb == obj {
		t.Fatalf("cache served the corrupted object %#x", uint64(obj))
	}
	if len(*reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(*reports))
	}
	rep := (*reports)[0]
	if rep.Kind != harden.KindUseAfterFree || rep.Addr != uint64(obj) || rep.Offset != 8 {
		t.Errorf("report = %v at %#x+%d, want use-after-free at %#x+8",
			rep.Kind, rep.Addr, rep.Offset, uint64(obj))
	}
	// The served object is fully constructed despite having been
	// poisoned at rest.
	checkConstructed(t, m.Mem(), nb, size)
}

// TestCacheHardenPoisonModeReconstructs verifies the documented poison
// trade-off: every warm Get re-runs the constructor (no ctor skips),
// and the object always arrives constructed.
func TestCacheHardenPoisonModeReconstructs(t *testing.T) {
	const size = 80
	m, k, _ := newHardenCache(t, size, &harden.Config{}, patternCtor(size), nil)
	c := m.CPU(0)
	for i := 0; i < 20; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		checkConstructed(t, m.Mem(), obj, size)
		k.Put(c, obj)
	}
	st := k.Stats()
	if st.CtorSkips != 0 {
		t.Errorf("poison mode skipped %d ctors; poisoned objects must be reconstructed", st.CtorSkips)
	}
	if st.CtorRuns != 20 {
		t.Errorf("ctor runs = %d, want 20 (1 carve + 19 warm gets)", st.CtorRuns)
	}
	if st.DtorRuns != 20 {
		t.Errorf("dtor runs = %d, want 20 (each put destructs)", st.DtorRuns)
	}
}

// TestCacheHardenNoPoisonKeepsCtorSkips verifies NoPoison preserves the
// layer's reason to exist — constructed-state reuse — while still
// catching overruns.
func TestCacheHardenNoPoisonKeepsCtorSkips(t *testing.T) {
	const size = 80
	m, k, reports := newHardenCache(t, size, &harden.Config{NoPoison: true}, patternCtor(size), nil)
	c := m.CPU(0)
	for i := 0; i < 20; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		checkConstructed(t, m.Mem(), obj, size)
		k.Put(c, obj)
	}
	st := k.Stats()
	if st.CtorRuns != 1 || st.CtorSkips != 19 {
		t.Errorf("ctor runs/skips = %d/%d, want 1/19 under NoPoison", st.CtorRuns, st.CtorSkips)
	}
	// Overrun detection still works.
	obj, _ := k.Get(c)
	m.Mem().Fill(obj+size, 1, 0x41)
	k.Put(c, obj)
	if len(*reports) != 1 || (*reports)[0].Kind != harden.KindOverrun {
		t.Fatalf("reports = %v, want one overrun", *reports)
	}
}

// TestCacheHardenPanicPolicy asserts PolicyPanic aborts with the report.
func TestCacheHardenPanicPolicy(t *testing.T) {
	const size = 64
	m, k, _ := newHardenCache(t, size, &harden.Config{Policy: harden.PolicyPanic}, nil, nil)
	c := m.CPU(0)
	obj, err := k.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	m.Mem().Fill(obj+size, 1, 0x41)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("overrun under PolicyPanic did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "overrun") {
			t.Errorf("panic value %v does not carry the report", r)
		}
	}()
	k.Put(c, obj)
}

// TestCacheHardenReleaseClean verifies hardened objects flow back to the
// backing allocator cleanly under Drain — no double destruction, no
// release of quarantined objects.
func TestCacheHardenReleaseClean(t *testing.T) {
	const size = 96
	var dtors int
	dtor := func(c *machine.CPU, mem *arena.Arena, obj arena.Addr) { dtors++ }
	m, k, _ := newHardenCache(t, size, &harden.Config{}, patternCtor(size), dtor)
	c := m.CPU(0)

	var objs []arena.Addr
	for i := 0; i < 30; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	for _, obj := range objs {
		k.Put(c, obj)
	}
	k.Drain(c)
	st := k.Stats()
	if st.Live != 0 {
		t.Errorf("live = %d after drain, want 0", st.Live)
	}
	if int(st.DtorRuns) != dtors {
		t.Errorf("dtor counter %d != dtor calls %d", st.DtorRuns, dtors)
	}
	if dtors != 30 {
		t.Errorf("dtor ran %d times for 30 puts in poison mode, want 30", dtors)
	}
	if st.Releases != 30 {
		t.Errorf("releases = %d, want 30", st.Releases)
	}
}
