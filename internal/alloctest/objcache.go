package alloctest

import (
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
	"kmem/internal/objcache"
)

// RunObjCache executes the typed object-cache lifecycle suite over an
// allocator: the cache contract (ctor exactly once per carve,
// constructed state visible across Get/Put, dtor before every release,
// coloring inside the backing capacity) must hold whether the backing
// allocator offers cookies and shed registration (the paper's
// allocator) or only plain Alloc/Free (the baselines).
func RunObjCache(t *testing.T, f Factory) {
	t.Run("ObjCacheCtorOnce", func(t *testing.T) { testObjCacheCtorOnce(t, f) })
	t.Run("ObjCacheConstructedState", func(t *testing.T) { testObjCacheConstructed(t, f) })
	t.Run("ObjCacheDtorBeforeRelease", func(t *testing.T) { testObjCacheDtor(t, f) })
	t.Run("ObjCacheColorBounds", func(t *testing.T) { testObjCacheColors(t, f) })
}

const (
	ocSize    = 72
	ocPattern = 0x5e
)

func ocCtor(c *machine.CPU, mem *arena.Arena, obj arena.Addr) {
	mem.Fill(obj, ocSize, ocPattern)
}

func newObjCache(t *testing.T, inst Instance, name string, dtor objcache.Dtor) *objcache.Cache {
	t.Helper()
	k, err := objcache.New(inst.M, inst.A, name, ocSize, 8, ocCtor, dtor,
		objcache.Opts{ColorSpace: 64})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// testObjCacheCtorOnce: a single buffer cycled many times is constructed
// exactly once.
func testObjCacheCtorOnce(t *testing.T, f Factory) {
	inst := f(t, 1, 2048)
	k := newObjCache(t, inst, "alloctest:once", nil)
	c := inst.M.CPU(0)
	for i := 0; i < 100; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		k.Put(c, obj)
	}
	st := k.Stats()
	if st.CtorRuns != 1 {
		t.Fatalf("ctor ran %d times cycling one buffer, want 1", st.CtorRuns)
	}
	if st.CtorSkips != 99 {
		t.Fatalf("ctor skips = %d, want 99", st.CtorSkips)
	}
}

// testObjCacheConstructed: every Get observes the constructed pattern,
// including Gets served through the depot, and dirtying + restoring
// before Put preserves the contract.
func testObjCacheConstructed(t *testing.T, f Factory) {
	inst := f(t, 1, 2048)
	k := newObjCache(t, inst, "alloctest:state", nil)
	c := inst.M.CPU(0)
	mem := inst.M.Mem()
	for round := 0; round < 4; round++ {
		objs := make([]arena.Addr, 0, 40)
		for i := 0; i < 40; i++ { // deep enough to cycle magazines + depot
			obj, err := k.Get(c)
			if err != nil {
				t.Fatal(err)
			}
			if off, ok := mem.CheckFill(obj, ocSize, ocPattern); !ok {
				t.Fatalf("round %d: object %#x unconstructed at offset %d", round, uint64(obj), off)
			}
			mem.Fill(obj, ocSize, byte(round)) // dirty
			objs = append(objs, obj)
		}
		for _, obj := range objs {
			mem.Fill(obj, ocSize, ocPattern) // restore before Put
			k.Put(c, obj)
		}
	}
}

// testObjCacheDtor: the destructor runs for every buffer the cache
// releases, sees constructed state, and total dtors equal total
// releases equal total carves once the cache is destroyed.
func testObjCacheDtor(t *testing.T, f Factory) {
	inst := f(t, 1, 2048)
	mem := inst.M.Mem()
	dtors := 0
	dtor := func(c *machine.CPU, mm *arena.Arena, obj arena.Addr) {
		if off, ok := mem.CheckFill(obj, ocSize, ocPattern); !ok {
			t.Errorf("dtor saw unconstructed buffer %#x at offset %d", uint64(obj), off)
		}
		dtors++
	}
	k := newObjCache(t, inst, "alloctest:dtor", dtor)
	c := inst.M.CPU(0)
	objs := make([]arena.Addr, 0, 60)
	for i := 0; i < 60; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	for _, obj := range objs {
		k.Put(c, obj)
	}
	if live := k.Destroy(c); live != 0 {
		t.Fatalf("%d buffers live after quiescent destroy", live)
	}
	st := k.Stats()
	if st.DtorRuns != st.Carves || st.Releases != st.Carves {
		t.Fatalf("carves %d, dtors %d, releases %d; want all equal", st.Carves, st.DtorRuns, st.Releases)
	}
	if dtors != int(st.DtorRuns) {
		t.Fatalf("observed %d dtor calls, stats say %d", dtors, st.DtorRuns)
	}
	if inst.Check != nil {
		if err := inst.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

// testObjCacheColors: held objects stay inside their backing block's
// capacity at line-granular offsets, and the slack yields more than one
// color.
func testObjCacheColors(t *testing.T, f Factory) {
	inst := f(t, 1, 2048)
	k := newObjCache(t, inst, "alloctest:color", nil)
	c := inst.M.CPU(0)
	if k.NumColors() < 2 {
		t.Fatalf("ColorSpace 64 yields %d colors, want >= 2", k.NumColors())
	}
	objs := make([]arena.Addr, 0, 24)
	for i := 0; i < 24; i++ {
		obj, err := k.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	offsets := map[uint64]bool{}
	k.ForEachCarved(func(obj, base arena.Addr) {
		off := uint64(obj - base)
		if off+ocSize > k.Capacity() {
			t.Errorf("object offset %d + size %d overruns capacity %d", off, ocSize, k.Capacity())
		}
		if offPastAlign := off % 8; offPastAlign != 0 {
			t.Errorf("object %#x misaligned", uint64(obj))
		}
		offsets[off] = true
	})
	if len(offsets) < 2 {
		t.Fatalf("24 carves used %d distinct offsets, want >= 2", len(offsets))
	}
	for _, obj := range objs {
		k.Put(c, obj)
	}
	k.Destroy(c)
}
