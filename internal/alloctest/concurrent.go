package alloctest

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"kmem/internal/allocif"
	"kmem/internal/arena"
	"kmem/internal/machine"
)

// RunConcurrentGetPut hammers Alloc/Free from every CPU at once and
// checks a shadow oracle the whole way: each block is filled with a
// pattern derived from the issuing CPU and op index at allocation and
// verified intact at free, so a double-issued block, a lost lock-free
// update, or a torn restartable-sequence commit surfaces as a pattern
// mismatch or a duplicate live address rather than silent reuse.
//
// On a simulated machine the suite arms aggressive restart jitter
// (preemption at every third opportunity), so allocators built on
// restartable sequences and CAS retry loops exercise their abort and
// retry paths constantly; consistency is audited mid-run. On a Native
// machine the CPUs are real goroutines — run it under -race — and the
// audit happens after the barrier, where it cannot add synchronization
// edges that would mask allocator races.
func RunConcurrentGetPut(t *testing.T, f Factory) {
	const (
		ncpu      = 8
		opsPerCPU = 3000
		window    = 32
	)
	in := f(t, ncpu, 4096)
	sim := in.M.Config().Mode == machine.Sim
	if sim {
		in.M.SetScheduleJitter(&machine.JitterConfig{Seed: 1789, RestartEvery: 3})
	}

	type rec struct {
		b    arena.Addr
		size uint64
		pat  byte
	}
	held := make([][]rec, ncpu)
	rngs := make([]*rand.Rand, ncpu)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(3*i + 1)))
	}
	ops := make([]int, ncpu)
	// The distinct-address oracle: every live block's address maps to its
	// owner. Sim runs ops to completion on one goroutine, so the map is
	// safe there; in Native it would be a synchronization point hiding
	// real races, so the pattern checks alone carry that mode.
	var live map[arena.Addr]int
	if sim {
		live = make(map[arena.Addr]int)
	}
	drainer, canDrain := in.A.(allocif.Coalescer)
	var failed atomic.Bool
	sizes := []uint64{16, 32, 48, 96, 128, 256, 600, 1024}

	in.M.Run(func(c *machine.CPU) bool {
		id := c.ID()
		if failed.Load() || ops[id] >= opsPerCPU {
			return false
		}
		ops[id]++
		rng := rngs[id]
		h := held[id]
		// Cross-CPU interference: an occasional full drain aborts other
		// CPUs' in-flight sequences and churns the global layer.
		if canDrain && ops[id]%977 == 0 {
			drainer.DrainAll(c)
		}
		if len(h) == 0 || (rng.Intn(5) < 3 && len(h) < window) {
			size := sizes[rng.Intn(len(sizes))]
			if size > in.MaxSize {
				size = in.MaxSize
			}
			b, err := in.A.Alloc(c, size)
			if err != nil {
				return true // exhaustion under stress is legal
			}
			if live != nil {
				if owner, dup := live[b]; dup {
					t.Errorf("cpu %d: block %#x issued while live on cpu %d", id, b, owner)
					failed.Store(true)
					return false
				}
				live[b] = id
			}
			pat := byte(id*31+ops[id]*7) | 1
			in.M.Mem().Fill(b, size, pat)
			held[id] = append(h, rec{b, size, pat})
		} else {
			i := rng.Intn(len(h))
			r := h[i]
			if off, ok := in.M.Mem().CheckFill(r.b, r.size, r.pat); !ok {
				t.Errorf("cpu %d: block %#x size %d corrupted at +%d", id, r.b, r.size, off)
				failed.Store(true)
				return false
			}
			if live != nil {
				delete(live, r.b)
			}
			in.A.Free(c, r.b, r.size)
			h[i] = h[len(h)-1]
			held[id] = h[:len(h)-1]
		}
		if sim && id == 0 && ops[0]%1000 == 0 {
			check(t, in)
		}
		return true
	})
	if failed.Load() {
		t.FailNow()
	}

	// Everything still held must read back intact, then free cleanly.
	for id, h := range held {
		c := in.M.CPU(id)
		for _, r := range h {
			if off, ok := in.M.Mem().CheckFill(r.b, r.size, r.pat); !ok {
				t.Fatalf("cpu %d: surviving block %#x size %d corrupted at +%d", id, r.b, r.size, off)
			}
			in.A.Free(c, r.b, r.size)
		}
	}
	if canDrain {
		drainer.DrainAll(in.M.CPU(0))
	}
	check(t, in)
}
