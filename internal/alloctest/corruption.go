package alloctest

import (
	"testing"

	"kmem/internal/harden"
)

// RunCorruption executes the corruption conformance suite: a planted
// double free and a planted write-after-free. Instances whose factory
// sets Reports (a hardened allocator) must detect both plants and keep
// serving; instances without a detection layer get the weaker,
// documented-UB contract — the plant may corrupt state or panic, but
// nothing may hang, which the suite checks by completing a bounded
// follow-up workload.
func RunCorruption(t *testing.T, f Factory) {
	t.Run("DoubleFree", func(t *testing.T) { testDoubleFree(t, f) })
	t.Run("WriteAfterFree", func(t *testing.T) { testWriteAfterFree(t, f) })
}

// plantOp runs fn tolerating a panic: allocators without a detection
// layer may legally fail fast on a planted corruption, they just must
// not hang.
func plantOp(fn func()) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	fn()
	return false
}

func testDoubleFree(t *testing.T, f Factory) {
	in := f(t, 1, 1024)
	c := in.M.CPU(0)
	const size = 128

	b, err := in.A.Alloc(c, size)
	if err != nil {
		t.Fatal(err)
	}
	in.A.Free(c, b, size)
	panicked := plantOp(func() { in.A.Free(c, b, size) })

	if in.Reports == nil {
		// No detection layer: the double free is documented UB. The
		// process did not hang (we are here); nothing else is promised.
		t.Logf("%s: unhardened double free completed (panicked=%v)", in.A.Name(), panicked)
		return
	}

	if panicked {
		t.Fatalf("%s: hardened double free panicked instead of quarantining", in.A.Name())
	}
	reps := in.Reports()
	if len(reps) == 0 {
		t.Fatalf("%s: double free not detected", in.A.Name())
	}
	last := reps[len(reps)-1]
	if last.Kind != harden.KindDoubleFree {
		t.Errorf("%s: detection kind = %v, want double-free", in.A.Name(), last.Kind)
	}
	if last.Addr != uint64(b) {
		t.Errorf("%s: detection addr = %#x, want %#x", in.A.Name(), last.Addr, uint64(b))
	}

	// Quarantine-and-continue: the allocator must keep serving and stay
	// consistent.
	for i := 0; i < 200; i++ {
		nb, err := in.A.Alloc(c, size)
		if err != nil {
			t.Fatalf("%s: alloc %d after contained double free: %v", in.A.Name(), i, err)
		}
		if nb == b {
			t.Fatalf("%s: doubly-freed block %#x re-issued", in.A.Name(), uint64(nb))
		}
		in.A.Free(c, nb, size)
	}
	check(t, in)
}

func testWriteAfterFree(t *testing.T, f Factory) {
	in := f(t, 1, 1024)
	c := in.M.CPU(0)
	const size = 128

	b, err := in.A.Alloc(c, size)
	if err != nil {
		t.Fatal(err)
	}
	in.A.Free(c, b, size)
	// The late write lands past any freelist link or header word an
	// allocator might keep in the first 16 bytes of a free block.
	in.M.Mem().Fill(b+16, 4, 0x77)

	if in.Reports == nil {
		// Documented UB without hardening: follow-up operations must not
		// hang; block contents and identity are not promised.
		plantOp(func() {
			for i := 0; i < 200; i++ {
				nb, err := in.A.Alloc(c, size)
				if err != nil {
					return
				}
				in.A.Free(c, nb, size)
			}
		})
		return
	}

	// Hardened: reallocation churn must surface the destroyed poison as
	// a use-after-free before the block is ever served again.
	for i := 0; i < 200 && len(in.Reports()) == 0; i++ {
		nb, err := in.A.Alloc(c, size)
		if err != nil {
			t.Fatal(err)
		}
		if nb == b {
			t.Fatalf("%s: corrupted block %#x served to a caller", in.A.Name(), uint64(nb))
		}
		in.A.Free(c, nb, size)
	}
	reps := in.Reports()
	if len(reps) == 0 {
		t.Fatalf("%s: write-after-free never detected across realloc churn", in.A.Name())
	}
	rep := reps[0]
	if rep.Kind != harden.KindUseAfterFree {
		t.Errorf("%s: detection kind = %v, want use-after-free", in.A.Name(), rep.Kind)
	}
	if rep.Addr != uint64(b) {
		t.Errorf("%s: detection addr = %#x, want %#x", in.A.Name(), rep.Addr, uint64(b))
	}
	check(t, in)
}
