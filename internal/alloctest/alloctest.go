// Package alloctest is a conformance suite run against every allocator in
// the repository — the paper's allocator (standard and cookie interfaces)
// and all three baselines — so that correctness claims hold uniformly
// before performance is compared.
package alloctest

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"kmem/internal/allocif"
	"kmem/internal/arena"
	"kmem/internal/harden"
	"kmem/internal/machine"
	"kmem/internal/physmem"
)

// Instance is one allocator under test plus its capabilities.
type Instance struct {
	A allocif.Allocator
	M *machine.Machine
	// MaxSize is the largest request the allocator accepts.
	MaxSize uint64
	// Coalesces is true when memory exhausted by one size can serve a
	// different size afterwards (the paper's design goal 6; MK fails it).
	Coalesces bool
	// Check audits internal consistency; may be nil.
	Check func() error
	// Reports, when non-nil, returns the corruption reports a hardened
	// allocator has filed so far. Nil means the instance has no
	// detection layer, and the corruption suite only asserts the
	// documented-UB-but-no-hang contract.
	Reports func() []harden.Report
}

// Factory builds a fresh Instance on a machine with the given shape.
type Factory func(t *testing.T, ncpu int, physPages int64) Instance

// Run executes the full conformance suite.
func Run(t *testing.T, f Factory) {
	t.Run("RoundTrip", func(t *testing.T) { testRoundTrip(t, f) })
	t.Run("DistinctBlocks", func(t *testing.T) { testDistinct(t, f) })
	t.Run("WriteIntegrity", func(t *testing.T) { testWriteIntegrity(t, f) })
	t.Run("RandomStress", func(t *testing.T) { testRandomStress(t, f) })
	t.Run("ExhaustRecoverSameSize", func(t *testing.T) { testExhaustRecover(t, f) })
	t.Run("CrossSizeReuse", func(t *testing.T) { testCrossSizeReuse(t, f) })
	t.Run("MultiCPU", func(t *testing.T) { testMultiCPU(t, f) })
	t.Run("QuickProperties", func(t *testing.T) { testQuickProperties(t, f) })
	t.Run("AllocWaitExhaustRecover", func(t *testing.T) { testAllocWait(t, f) })
	t.Run("FaultInjectionRecovery", func(t *testing.T) { testFaultInjection(t, f) })
	t.Run("AllocDuringDecommit", func(t *testing.T) { testAllocDuringDecommit(t, f) })
}

// testAllocWait is the KM_SLEEP contract, for every allocator exposing a
// blocking path (the paper's allocator natively; baselines through the
// allocif.RetryWait polyfill): AllocWait succeeds while memory is
// available, returns a typed error after bounded waits on a genuinely
// exhausted heap — it must not hang — and succeeds again once memory is
// freed.
func testAllocWait(t *testing.T, f Factory) {
	in := f(t, 1, 128)
	w, ok := in.A.(allocif.Waiter)
	if !ok {
		t.Skipf("%s has no blocking allocation path", in.A.Name())
	}
	c := in.M.CPU(0)
	size := uint64(1024)

	b, err := w.AllocWait(c, size)
	if err != nil {
		t.Fatalf("AllocWait(%d) with free memory: %v", size, err)
	}
	in.A.Free(c, b, size)

	// Exhaust the heap non-blockingly, then the blocking path must fail
	// in bounded time rather than sleep forever.
	var bs []arena.Addr
	for {
		b, err := in.A.Alloc(c, size)
		if err != nil {
			break
		}
		bs = append(bs, b)
		if len(bs) > 1<<20 {
			t.Fatal("allocator never reported exhaustion")
		}
	}
	if _, err := w.AllocWait(c, size); err == nil {
		t.Fatal("AllocWait succeeded on an exhausted heap with no concurrent frees")
	}

	for _, b := range bs {
		in.A.Free(c, b, size)
	}
	b, err = w.AllocWait(c, size)
	if err != nil {
		t.Fatalf("AllocWait(%d) after recovery: %v", size, err)
	}
	in.A.Free(c, b, size)
	check(t, in)
}

// testFaultInjection is the exhaustion-unwind contract: with the
// physical pool's map hook vetoing every page map (the generic seam all
// allocators share), allocation pressure must surface a clean error —
// injected mid-run for allocators that map lazily, natural exhaustion
// for those that pre-map their heap — while the allocator stays
// consistent; after the hook is disarmed and memory freed, normal
// service resumes.
func testFaultInjection(t *testing.T, f Factory) {
	in := f(t, 1, 512)
	c := in.M.CPU(0)
	type rec struct {
		b    arena.Addr
		size uint64
	}

	// Warm up so per-CPU and global caches hold state to unwind around.
	var live []rec
	sizes := []uint64{32, 128, 1024, 4000}
	for i := 0; i < 64; i++ {
		size := sizes[i%len(sizes)]
		b, err := in.A.Alloc(c, size)
		if err != nil {
			t.Fatalf("warmup alloc(%d): %v", size, err)
		}
		live = append(live, rec{b, size})
	}

	armed := true
	injected := 0
	in.M.Phys().SetMapHook(func(n int64) error {
		if armed {
			injected++
			return physmem.ErrNoPages
		}
		return nil
	})
	defer in.M.Phys().SetMapHook(nil)

	sawErr := false
	for i := 0; !sawErr; i++ {
		size := sizes[i%len(sizes)]
		b, err := in.A.Alloc(c, size)
		if err != nil {
			sawErr = true
			break
		}
		live = append(live, rec{b, size})
		if i > 1<<20 {
			t.Fatal("no allocation failure surfaced while the map hook was armed")
		}
	}
	check(t, in) // the failed operation must have unwound cleanly

	// Disarm, free everything: full service must resume.
	armed = false
	for _, r := range live {
		in.A.Free(c, r.b, r.size)
	}
	for _, size := range sizes {
		b, err := in.A.Alloc(c, size)
		if err != nil {
			t.Fatalf("alloc(%d) after disarm and full free: %v", size, err)
		}
		in.A.Free(c, b, size)
	}
	check(t, in)
}

// testAllocDuringDecommit is the decommit-in-progress contract: with the
// physical pool's commit seam vetoing every other page commit — what a
// kernel sees when memory is being returned to the hypervisor while
// allocations continue — every request must either complete with truly
// backed pages or fail with a clean error, leaving the allocator
// consistent. Allocators exposing Trim (the lazy virtual-span model)
// additionally run real decommits between allocations, so
// recommit-after-decommit races the injected commit failures.
func testAllocDuringDecommit(t *testing.T, f Factory) {
	in := f(t, 1, 512)
	c := in.M.CPU(0)
	type rec struct {
		b    arena.Addr
		size uint64
		pat  byte
	}
	sizes := []uint64{32, 128, 1024, 4000, 3 * in.M.Config().PageBytes}

	// Warm up, then free every other block: the survivors interleave with
	// free spans, so trims below have backing to strip right next to live
	// data.
	var warm []rec
	for i := 0; i < 60; i++ {
		size := sizes[i%len(sizes)]
		if size > in.MaxSize {
			size = in.MaxSize
		}
		b, err := in.A.Alloc(c, size)
		if err != nil {
			t.Fatalf("warmup alloc(%d): %v", size, err)
		}
		pat := byte(i*11 + 3)
		in.M.Mem().Fill(b, size, pat)
		warm = append(warm, rec{b, size, pat})
	}
	var kept []rec
	for i, r := range warm {
		if i%2 == 0 {
			in.A.Free(c, r.b, r.size)
		} else {
			kept = append(kept, r)
		}
	}

	// Every other commit fails while armed. An allocator with a
	// decommit-then-retry fallback exercises it constantly; one without
	// must surface each vetoed commit as a clean caller error.
	armed := true
	vetoes := 0
	in.M.Phys().SetMapHook(func(n int64) error {
		if armed {
			vetoes++
			if vetoes%2 == 1 {
				return physmem.ErrNoPages
			}
		}
		return nil
	})
	defer in.M.Phys().SetMapHook(nil)

	tr, canTrim := in.A.(allocif.Trimmer)
	failures := 0
	for i := 0; i < 300; i++ {
		if canTrim && i%8 == 0 {
			tr.Trim(c, 16)
		}
		size := sizes[i%len(sizes)]
		if size > in.MaxSize {
			size = in.MaxSize
		}
		b, err := in.A.Alloc(c, size)
		if err != nil {
			failures++ // legal: a vetoed commit surfaced cleanly
			continue
		}
		pat := byte(i*7 + 5)
		in.M.Mem().Fill(b, size, pat)
		kept = append(kept, rec{b, size, pat})
		if len(kept) > 48 {
			h := kept[0]
			kept = kept[1:]
			if off, ok := in.M.Mem().CheckFill(h.b, h.size, h.pat); !ok {
				t.Fatalf("block %#x size %d corrupted at +%d during decommit churn",
					h.b, h.size, off)
			}
			in.A.Free(c, h.b, h.size)
		}
	}
	check(t, in) // every vetoed commit must have unwound cleanly

	// Disarm and release everything: contents must have survived the
	// decommit storm, and full service must resume.
	armed = false
	for _, r := range kept {
		if off, ok := in.M.Mem().CheckFill(r.b, r.size, r.pat); !ok {
			t.Fatalf("block %#x size %d corrupted at +%d", r.b, r.size, off)
		}
		in.A.Free(c, r.b, r.size)
	}
	if canTrim {
		tr.Trim(c, -1)
	}
	for _, size := range sizes {
		if size > in.MaxSize {
			size = in.MaxSize
		}
		b, err := in.A.Alloc(c, size)
		if err != nil {
			t.Fatalf("alloc(%d) after disarm and full free: %v", size, err)
		}
		in.A.Free(c, b, size)
	}
	check(t, in)
}

// testQuickProperties property-tests the allocator contract: for any op
// sequence, live blocks never overlap and their contents survive.
func testQuickProperties(t *testing.T, f Factory) {
	in := f(t, 1, 2048)
	c := in.M.CPU(0)
	type rec struct {
		b    arena.Addr
		size uint64
		pat  byte
	}
	var live []rec
	prop := func(sizes []uint16, frees []uint8) bool {
		for i, s := range sizes {
			size := uint64(s)%in.MaxSize + 1
			b, err := in.A.Alloc(c, size)
			if err != nil {
				continue
			}
			pat := byte(i*13 + 7)
			in.M.Mem().Fill(b, size, pat)
			live = append(live, rec{b, size, pat})
		}
		// Overlap check against every other live block.
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.b < b.b+arena.Addr(b.size) && b.b < a.b+arena.Addr(a.size) {
					t.Logf("overlap: [%#x,+%d) and [%#x,+%d)", a.b, a.size, b.b, b.size)
					return false
				}
			}
		}
		// Content check, then free a random subset.
		for _, fi := range frees {
			if len(live) == 0 {
				break
			}
			i := int(fi) % len(live)
			r := live[i]
			if off, ok := in.M.Mem().CheckFill(r.b, r.size, r.pat); !ok {
				t.Logf("block %#x corrupted at +%d", r.b, off)
				return false
			}
			in.A.Free(c, r.b, r.size)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
	for _, r := range live {
		in.A.Free(c, r.b, r.size)
	}
	check(t, in)
}

func check(t *testing.T, in Instance) {
	t.Helper()
	if in.Check != nil {
		if err := in.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func testRoundTrip(t *testing.T, f Factory) {
	in := f(t, 1, 1024)
	c := in.M.CPU(0)
	for _, size := range []uint64{1, 16, 17, 100, 1000, in.MaxSize} {
		b, err := in.A.Alloc(c, size)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", size, err)
		}
		in.M.Mem().Fill(b, size, 0x3c)
		if off, ok := in.M.Mem().CheckFill(b, size, 0x3c); !ok {
			t.Fatalf("size %d: payload readback failed at %d", size, off)
		}
		in.A.Free(c, b, size)
	}
	check(t, in)
}

func testDistinct(t *testing.T, f Factory) {
	in := f(t, 1, 1024)
	c := in.M.CPU(0)
	seen := map[arena.Addr]bool{}
	var bs []arena.Addr
	for i := 0; i < 500; i++ {
		b, err := in.A.Alloc(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[b] {
			t.Fatalf("block %#x issued twice", b)
		}
		seen[b] = true
		bs = append(bs, b)
	}
	for _, b := range bs {
		in.A.Free(c, b, 64)
	}
	check(t, in)
}

func testWriteIntegrity(t *testing.T, f Factory) {
	in := f(t, 1, 2048)
	c := in.M.CPU(0)
	type rec struct {
		b    arena.Addr
		size uint64
		pat  byte
	}
	var live []rec
	sizes := []uint64{16, 33, 64, 129, 500, 1024, 4000}
	for i := 0; i < 400; i++ {
		size := sizes[i%len(sizes)]
		if size > in.MaxSize {
			size = in.MaxSize
		}
		b, err := in.A.Alloc(c, size)
		if err != nil {
			t.Fatal(err)
		}
		pat := byte(i*7 + 1)
		in.M.Mem().Fill(b, size, pat)
		live = append(live, rec{b, size, pat})
	}
	for _, r := range live {
		if off, ok := in.M.Mem().CheckFill(r.b, r.size, r.pat); !ok {
			t.Fatalf("block %#x size %d corrupted at +%d", r.b, r.size, off)
		}
		in.A.Free(c, r.b, r.size)
	}
	check(t, in)
}

func testRandomStress(t *testing.T, f Factory) {
	in := f(t, 1, 2048)
	c := in.M.CPU(0)
	rng := rand.New(rand.NewSource(12345))
	type rec struct {
		b    arena.Addr
		size uint64
	}
	var live []rec
	for op := 0; op < 20000; op++ {
		if len(live) == 0 || (rng.Intn(5) < 3 && len(live) < 400) {
			size := uint64(rng.Intn(int(in.MaxSize))) + 1
			b, err := in.A.Alloc(c, size)
			if err != nil {
				if errors.Is(err, nil) {
					t.Fatal("nil error with failed alloc")
				}
				continue // exhaustion under stress is legal
			}
			live = append(live, rec{b, size})
		} else {
			i := rng.Intn(len(live))
			in.A.Free(c, live[i].b, live[i].size)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%5000 == 0 {
			check(t, in)
		}
	}
	for _, r := range live {
		in.A.Free(c, r.b, r.size)
	}
	check(t, in)
}

func testExhaustRecover(t *testing.T, f Factory) {
	in := f(t, 1, 128)
	c := in.M.CPU(0)
	size := uint64(1024)
	var bs []arena.Addr
	for {
		b, err := in.A.Alloc(c, size)
		if err != nil {
			break
		}
		bs = append(bs, b)
		if len(bs) > 1<<20 {
			t.Fatal("allocator never reported exhaustion")
		}
	}
	if len(bs) == 0 {
		t.Fatal("nothing allocated before exhaustion")
	}
	for _, b := range bs {
		in.A.Free(c, b, size)
	}
	// The same size must be fully allocatable again.
	for i := 0; i < len(bs); i++ {
		b, err := in.A.Alloc(c, size)
		if err != nil {
			t.Fatalf("allocation %d/%d failed after recovery: %v", i, len(bs), err)
		}
		defer in.A.Free(c, b, size)
	}
	check(t, in)
}

func testCrossSizeReuse(t *testing.T, f Factory) {
	in := f(t, 1, 128)
	if !in.Coalesces {
		t.Skip("allocator does not coalesce (the paper's point about MK)")
	}
	c := in.M.CPU(0)
	// Phase 1: exhaust with small blocks.
	var bs []arena.Addr
	for {
		b, err := in.A.Alloc(c, 32)
		if err != nil {
			break
		}
		bs = append(bs, b)
	}
	for _, b := range bs {
		in.A.Free(c, b, 32)
	}
	if d, ok := in.A.(allocif.Coalescer); ok {
		d.DrainAll(c)
	}
	// Phase 2: a large-block workload must find the memory again. Cap
	// the block size well under total physical memory so several fit.
	size := in.MaxSize
	if cap := 16 * in.M.Config().PageBytes; size > cap {
		size = cap
	}
	got := 0
	var big []arena.Addr
	for {
		b, err := in.A.Alloc(c, size)
		if err != nil {
			break
		}
		big = append(big, b)
		got++
	}
	if got < 4 {
		t.Fatalf("only %d blocks of %d after size shift; coalescing failed", got, size)
	}
	for _, b := range big {
		in.A.Free(c, b, size)
	}
	check(t, in)
}

func testMultiCPU(t *testing.T, f Factory) {
	in := f(t, 4, 2048)
	type rec struct {
		b    arena.Addr
		size uint64
	}
	held := make([][]rec, 4)
	rngs := make([]*rand.Rand, 4)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i + 1)))
	}
	ops := make([]int, 4)
	in.M.Run(func(c *machine.CPU) bool {
		id := c.ID()
		if ops[id] >= 3000 {
			return false
		}
		ops[id]++
		rng := rngs[id]
		h := held[id]
		if len(h) == 0 || (rng.Intn(2) == 0 && len(h) < 50) {
			size := uint64(16 << rng.Intn(6))
			b, err := in.A.Alloc(c, size)
			if err == nil {
				held[id] = append(h, rec{b, size})
			}
		} else {
			i := rng.Intn(len(h))
			in.A.Free(c, h[i].b, h[i].size)
			h[i] = h[len(h)-1]
			held[id] = h[:len(h)-1]
		}
		return true
	})
	for id, h := range held {
		for _, r := range h {
			in.A.Free(in.M.CPU(id), r.b, r.size)
		}
	}
	check(t, in)
}
