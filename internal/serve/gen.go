package serve

// Seeded trace generation. A trace is a pure function of its GenConfig:
// the generator uses one xorshift64* stream and no host state, so the
// same config always produces the same bytes — the basis of the
// byte-reproducibility contract (TestServeDeterministic) and of
// committed benchmark baselines.

// rng is the same xorshift64* generator the torture harness uses; its
// constants are frozen because committed traces and baselines replay
// against it.
type rng struct{ x uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{x: seed}
}

func (r *rng) next() uint64 {
	x := r.x
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.x = x
	return x * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// GenConfig parameterizes trace generation.
type GenConfig struct {
	// Seed selects the trace; zero picks a fixed default stream.
	Seed uint64
	// CPUs is the machine width the trace targets.
	CPUs int
	// Sessions is the steady-state open-session target; the spike phase
	// overshoots to roughly twice this.
	Sessions int
	// OpsPerPhase is the record count of each of the three phases.
	OpsPerPhase int
}

// Message and payload size tables. Values stay within the allocator's
// small classes so every operation exercises the latency-sampled class
// path; the pressure phase skews large to press the physical-memory
// watermarks.
var (
	paySizes      = []uint32{96, 160, 256, 384, 512}
	msgSizes      = []uint32{64, 96, 128, 256, 512}
	holdSizes     = []uint32{64, 128, 256, 512}
	pressureHolds = []uint32{1024, 2048, 3072, 4096}
)

// genState is the generator's view of the live session population.
type genState struct {
	r      *rng
	cfg    GenConfig
	next   uint32   // next fresh session id
	open   []uint32 // open session ids, in open order
	pos    []int32  // session id -> index in open, -1 when closed
	home   []uint8  // session id -> home CPU
	held   []uint16 // session id -> held-buffer count
	inHold bool     // pressure phase: bias churn toward holds
}

func (g *genState) isOpen(s uint32) bool { return g.pos[s] >= 0 }

func (g *genState) openOp(sizes []uint32) Op {
	s := g.next
	g.next++
	g.pos = append(g.pos, int32(len(g.open)))
	g.home = append(g.home, uint8(g.r.intn(g.cfg.CPUs)))
	g.held = append(g.held, 0)
	g.open = append(g.open, s)
	return Op{Kind: OpOpen, CPU: g.home[s], Sess: s, Arg: sizes[g.r.intn(len(sizes))]}
}

func (g *genState) closeOp() Op {
	i := g.r.intn(len(g.open))
	s := g.open[i]
	last := len(g.open) - 1
	g.open[i] = g.open[last]
	g.pos[g.open[i]] = int32(i)
	g.open = g.open[:last]
	g.pos[s] = -1
	// Three in four sessions close where they opened; the rest close on
	// another CPU, pushing their frees through the cross-CPU drain and
	// shard paths.
	cpu := g.home[s]
	if g.r.intn(4) == 0 {
		cpu = uint8(g.r.intn(g.cfg.CPUs))
	}
	return Op{Kind: OpClose, CPU: cpu, Sess: s}
}

func (g *genState) churnOp() Op {
	s := g.open[g.r.intn(len(g.open))]
	cpu := g.home[s]
	if g.r.intn(8) == 0 {
		cpu = uint8(g.r.intn(g.cfg.CPUs))
	}
	w := g.r.intn(16)
	if g.inHold {
		// Pressure wave: holds crowd out messages, releases are rare.
		switch {
		case w < 8:
			if g.held[s] < 1<<15 {
				g.held[s]++
			}
			return Op{Kind: OpHold, CPU: cpu, Sess: s, Arg: pressureHolds[g.r.intn(len(pressureHolds))]}
		case w < 10 && g.held[s] > 0:
			g.held[s]--
			return Op{Kind: OpRelease, CPU: cpu, Sess: s}
		case w < 12:
			return Op{Kind: OpLockX, CPU: cpu, Sess: s}
		default:
			return Op{Kind: OpMsg, CPU: cpu, Sess: s, Arg: msgSizes[g.r.intn(len(msgSizes))]}
		}
	}
	switch {
	case w < 9:
		return Op{Kind: OpMsg, CPU: cpu, Sess: s, Arg: msgSizes[g.r.intn(len(msgSizes))]}
	case w < 12:
		if g.held[s] < 1<<15 {
			g.held[s]++
		}
		return Op{Kind: OpHold, CPU: cpu, Sess: s, Arg: holdSizes[g.r.intn(len(holdSizes))]}
	case w < 14 && g.held[s] > 0:
		g.held[s]--
		return Op{Kind: OpRelease, CPU: cpu, Sess: s}
	case w < 15:
		return Op{Kind: OpLockX, CPU: cpu, Sess: s}
	default:
		return Op{Kind: OpMsg, CPU: cpu, Sess: s, Arg: msgSizes[g.r.intn(len(msgSizes))]}
	}
}

// target returns the open-session target at step i of n for the phase.
func target(kind PhaseKind, i, n, sessions int) int {
	switch kind {
	case PhaseSteady:
		// Two day/night cycles: a triangle wave between 55% and 100%.
		pos := i * 4 % (2 * n) // 0..2n over half a cycle
		frac := pos
		if frac > n {
			frac = 2*n - frac // descend
		}
		return sessions*55/100 + sessions*45/100*frac/n
	case PhaseSpike:
		// Flash crowd: ramp to 200% over the first 40%, hold briefly,
		// then a mass exodus down to 30%.
		switch {
		case i < n*4/10:
			return sessions*60/100 + (sessions*140/100)*i/(n*4/10)
		case i < n*5/10:
			return sessions * 2
		default:
			lo, span := sessions*30/100, sessions*170/100
			left := n - i
			return lo + span*left/(n*5/10)
		}
	case PhasePressure:
		// Constant population; the wave is in what the churn holds.
		return sessions * 80 / 100
	}
	return sessions
}

// Generate produces the three-phase serving trace for cfg. The result
// is deterministic in cfg alone.
func Generate(cfg GenConfig) *Trace {
	if cfg.CPUs < 1 {
		cfg.CPUs = 1
	}
	if cfg.Sessions < 8 {
		cfg.Sessions = 8
	}
	if cfg.OpsPerPhase < 1 {
		cfg.OpsPerPhase = 1
	}
	g := &genState{r: newRng(cfg.Seed), cfg: cfg}
	t := &Trace{NCPU: cfg.CPUs}
	for _, kind := range []PhaseKind{PhaseSteady, PhaseSpike, PhasePressure} {
		g.inHold = false
		ops := make([]Op, 0, cfg.OpsPerPhase)
		n := cfg.OpsPerPhase
		for i := 0; i < n; i++ {
			if kind == PhasePressure {
				// The wave: hold-heavy for the first 70%, then drain.
				g.inHold = i < n*7/10
			}
			paySz := paySizes
			if kind == PhasePressure {
				paySz = holdSizes
			}
			tgt := target(kind, i, n, cfg.Sessions)
			switch {
			case len(g.open) < tgt:
				ops = append(ops, g.openOp(paySz))
			case len(g.open) > tgt && len(g.open) > 1:
				ops = append(ops, g.closeOp())
			case !g.inHold && g.r.intn(4) == 0 && len(g.open) > 1:
				// Session turnover: a quarter of steady traffic is a close
				// whose slot the target logic refills next op, so the
				// cumulative session count dwarfs the concurrent target —
				// most sessions are short-lived, as serving traffic is.
				// Suspended during the hold wave, which needs sessions to
				// live long enough for their holds to press the watermarks.
				ops = append(ops, g.closeOp())
			default:
				ops = append(ops, g.churnOp())
			}
		}
		t.Phases = append(t.Phases, Phase{Kind: kind, Ops: ops})
	}
	return t
}
