package serve

import (
	"bytes"
	"testing"
)

// FuzzServeTrace hardens the trace decoder: arbitrary input must
// either be rejected with an error or decode to a trace that
// re-encodes and re-decodes to the same value. It must never panic,
// and the fixed allocation caps mean hostile length fields cannot
// balloon memory.
func FuzzServeTrace(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteTrace(&valid, Generate(GenConfig{Seed: 11, CPUs: 2, Sessions: 8, OpsPerPhase: 48})); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("KMSV"))
	bad := append([]byte(nil), valid.Bytes()...)
	bad[0] ^= 0xff // magic
	f.Add(bad)
	trunc := append([]byte(nil), valid.Bytes()[:len(valid.Bytes())/2]...)
	f.Add(trunc)
	dup := append([]byte(nil), valid.Bytes()...)
	if len(dup) > headerBytes+3*phaseHeaderBytes+2*recordBytes {
		// Duplicate the first record over the second: usually a
		// duplicate-open discipline violation.
		off := headerBytes + 3*phaseHeaderBytes
		copy(dup[off+recordBytes:off+2*recordBytes], dup[off:off+recordBytes])
		f.Add(dup)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		var out2 bytes.Buffer
		if err := WriteTrace(&out2, tr2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("accepted trace did not round-trip byte-identically")
		}
	})
}
