package serve

import (
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/dlm"
	"kmem/internal/machine"
	"kmem/internal/streams"
)

// PhaseResult is one phase's latency window and throughput, extracted
// from the difference of allocator-wide histogram snapshots taken at
// the phase barriers.
type PhaseResult struct {
	Phase string
	Ops   int
	Opens int
	Drops int

	Cycles    int64
	OpsPerSec float64

	AllocCount uint64
	FreeCount  uint64
	AllocP50   int64
	AllocP99   int64
	AllocP999  int64
	FreeP50    int64
	FreeP99    int64
	FreeP999   int64

	AllocBuckets []uint64
	FreeBuckets  []uint64
}

// Result is a full serving run: per-phase windows plus whole-run
// identity (the schedule hash) and totals.
type Result struct {
	SchedHash uint64
	TotalOps  int
	TotalOpen int
	Drops     int
	Phases    []PhaseResult
}

// heldBlock is one OpHold allocation a session still owns.
type heldBlock struct {
	addr arena.Addr
	size uint64
}

// session is the runner's per-session state.
type session struct {
	open    bool
	payload arena.Addr
	paySize uint64
	pipe    streams.Msg
	lock    arena.Addr
	held    []heldBlock
}

// runner executes a validated trace against one allocator.
type runner struct {
	m   *machine.Machine
	a   *core.Allocator
	st  *streams.Subsystem
	dm  *dlm.Manager
	s   []session
	pat []byte
	buf []byte
}

// resID maps a session id to its DLM resource id (nonzero, unique).
func resID(sess uint32) uint64 { return uint64(sess) + 1 }

// Run executes the trace on machine m against allocator a, which should
// have been built with Params.Latency so per-phase quantiles are
// populated (a run without the recorder still executes, with empty
// histograms). The machine must have at least tr.NCPU CPUs. In Sim mode
// the run is deterministic: same trace, same machine configuration,
// same allocator parameters — byte-identical Result.
func Run(m *machine.Machine, a *core.Allocator, tr *Trace) (*Result, error) {
	if m.NumCPUs() < tr.NCPU {
		return nil, fmt.Errorf("serve: trace wants %d CPUs, machine has %d", tr.NCPU, m.NumCPUs())
	}
	maxSess := tr.MaxSession()
	r := &runner{
		m:   m,
		a:   a,
		s:   make([]session, maxSess+1),
		pat: make([]byte, 4096),
		buf: make([]byte, 4096),
	}
	for i := range r.pat {
		r.pat[i] = byte(i*131 + 17)
	}
	var err error
	if r.st, err = streams.New(a); err != nil {
		return nil, fmt.Errorf("serve: streams: %w", err)
	}
	if r.dm, err = dlm.NewManager(a, 256); err != nil {
		return nil, fmt.Errorf("serve: dlm: %w", err)
	}

	res := &Result{}
	prev := a.LatencyStats()
	for pi := range tr.Phases {
		ph := &tr.Phases[pi]
		start := m.SyncClocks()
		opens, drops := r.runPhase(ph)
		end := m.SyncClocks()

		cur := a.LatencyStats()
		win := core.LatencyStats{
			Alloc: cur.Alloc.Sub(prev.Alloc),
			Free:  cur.Free.Sub(prev.Free),
		}
		prev = cur

		cycles := end - start
		pr := PhaseResult{
			Phase:        ph.Kind.String(),
			Ops:          len(ph.Ops),
			Opens:        opens,
			Drops:        drops,
			Cycles:       cycles,
			AllocCount:   win.Alloc.Count(),
			FreeCount:    win.Free.Count(),
			AllocP50:     win.Alloc.P50(),
			AllocP99:     win.Alloc.P99(),
			AllocP999:    win.Alloc.P999(),
			FreeP50:      win.Free.P50(),
			FreeP99:      win.Free.P99(),
			FreeP999:     win.Free.P999(),
			AllocBuckets: append([]uint64(nil), win.Alloc.Buckets[:]...),
			FreeBuckets:  append([]uint64(nil), win.Free.Buckets[:]...),
		}
		if sec := m.CyclesToSeconds(cycles); sec > 0 {
			pr.OpsPerSec = float64(len(ph.Ops)) / sec
		}
		res.TotalOps += pr.Ops
		res.TotalOpen += opens
		res.Drops += drops
		res.Phases = append(res.Phases, pr)
	}
	res.SchedHash = m.SchedHash()

	// Teardown happens after the last snapshot so it never pollutes a
	// measured window: close leftover sessions in id order on CPU 0,
	// then drain the caching layers so leak audits see a quiet heap.
	c := m.CPU(0)
	for id := range r.s {
		if r.s[id].open {
			r.closeSession(c, uint32(id))
		}
	}
	r.a.DrainAll(c)
	return res, nil
}

// runPhase drives one phase through the machine scheduler. Trace order
// is program order: a single cursor walks the records, each executing
// on its record's CPU; other CPUs idle forward until the owner's clock
// lets it run. The schedule — and with it the hash — is a pure function
// of the trace and the machine.
func (r *runner) runPhase(ph *Phase) (opens, drops int) {
	cursor := 0
	remaining := make([]int, r.m.NumCPUs())
	for i := range ph.Ops {
		remaining[ph.Ops[i].CPU]++
	}
	r.m.Run(func(c *machine.CPU) bool {
		id := c.ID()
		if remaining[id] == 0 {
			return false
		}
		if cursor >= len(ph.Ops) || int(ph.Ops[cursor].CPU) != id {
			// Not this CPU's turn: idle a beat and retry. The step is a
			// fixed cost, so the interleaving stays deterministic.
			c.Idle(64)
			return true
		}
		op := ph.Ops[cursor]
		cursor++
		remaining[id]--
		opened, dropped := r.exec(c, op)
		if opened {
			opens++
		}
		if dropped {
			drops++
		}
		return remaining[id] > 0
	})
	return opens, drops
}

// exec runs one record. A drop is an operation abandoned because an
// allocation failed (or because the session it targets failed to open
// earlier); drops are deterministic outcomes, not errors.
func (r *runner) exec(c *machine.CPU, op Op) (opened, dropped bool) {
	s := &r.s[op.Sess]
	switch op.Kind {
	case OpOpen:
		payload, err := r.a.Alloc(c, uint64(op.Arg))
		if err != nil {
			return false, true
		}
		pipe, err := r.st.Allocb(c, 128)
		if err != nil {
			r.a.Free(c, payload, uint64(op.Arg))
			return false, true
		}
		lk, status, err := r.dm.Lock(c, resID(op.Sess), dlm.PR, c.ID())
		if err != nil || status != dlm.Granted {
			r.st.Freemsg(c, pipe)
			r.a.Free(c, payload, uint64(op.Arg))
			return false, true
		}
		*s = session{open: true, payload: payload, paySize: uint64(op.Arg), pipe: pipe, lock: lk}
		return true, false

	case OpClose:
		if !s.open {
			return false, true
		}
		r.closeSession(c, op.Sess)
		return false, false

	case OpMsg:
		if !s.open {
			return false, true
		}
		mb, err := r.st.Allocb(c, uint64(op.Arg))
		if err != nil {
			return false, true
		}
		n := int(op.Arg)
		if n > len(r.pat) {
			n = len(r.pat)
		}
		if err := r.st.Write(c, mb, r.pat[:n]); err == nil {
			r.st.Read(c, mb, r.buf[:n])
		}
		r.st.Freemsg(c, mb)
		return false, false

	case OpHold:
		if !s.open {
			return false, true
		}
		b, err := r.a.Alloc(c, uint64(op.Arg))
		if err != nil {
			return false, true
		}
		s.held = append(s.held, heldBlock{b, uint64(op.Arg)})
		return false, false

	case OpRelease:
		if !s.open {
			return false, true
		}
		if len(s.held) > 0 {
			h := s.held[0]
			s.held = s.held[1:]
			r.a.Free(c, h.addr, h.size)
		}
		return false, false

	case OpLockX:
		if !s.open {
			return false, true
		}
		status, _ := r.dm.Convert(c, s.lock, dlm.EX, nil)
		if status == dlm.Granted {
			r.dm.Convert(c, s.lock, dlm.PR, nil)
		}
		return false, false
	}
	return false, false
}

// closeSession releases everything session id owns.
func (r *runner) closeSession(c *machine.CPU, id uint32) {
	s := &r.s[id]
	for _, h := range s.held {
		r.a.Free(c, h.addr, h.size)
	}
	s.held = nil
	r.st.Freemsg(c, s.pipe)
	r.dm.Unlock(c, s.lock, nil)
	r.a.Free(c, s.payload, s.paySize)
	s.open = false
}
