// Package serve is the deterministic serving simulation: hundreds of
// thousands of sessions — each owning a STREAMS pipe, a DLM lock, and
// allocator-backed payload and held buffers — open, churn, and close
// under a generated trace with day/night cycles, flash-crowd spikes,
// and pressure waves. Per-op alloc/free latency is surfaced through the
// core event spine as log-scale cycle histograms, windowed per phase,
// so tail-latency SLOs (p50/p99/p999) can be gated in CI.
//
// A trace is byte-reproducible from its seed, and a run over a trace is
// deterministic: same trace, same machine shape, same options — same
// histograms and the same schedule hash.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format (all fields little-endian):
//
//	header:  magic u32 ("KMSV"), version u8, ncpu u8, nphases u16, nops u32
//	phases:  nphases × (kind u8, opcount u32)
//	records: nops × (kind u8, cpu u8, sess u32, arg u32), phase by phase
const (
	traceMagic   = 0x4b4d5356 // "KMSV"
	traceVersion = 1

	headerBytes      = 12
	phaseHeaderBytes = 5
	recordBytes      = 10

	// maxSessionID bounds the runner's per-session state table, so a
	// hostile trace cannot make the decoder's caller allocate
	// arbitrarily much host memory.
	maxSessionID = 1 << 24
	maxPhases    = 64
	maxOps       = 1 << 26
)

// OpKind is one session operation in a trace.
type OpKind uint8

const (
	// OpOpen opens a session: allocates its payload (arg = size bytes),
	// a STREAMS pipe message, and takes its DLM lock in PR mode.
	OpOpen OpKind = 1 + iota
	// OpClose closes a session: frees held buffers and payload, frees
	// the pipe, and releases the DLM lock.
	OpClose
	// OpMsg round-trips one message through the session's subsystem:
	// Allocb(arg bytes), Write, Read, Freemsg.
	OpMsg
	// OpHold allocates a buffer (arg = size bytes) the session keeps
	// until OpRelease or OpClose — the lifetime skew that drives
	// pressure waves.
	OpHold
	// OpRelease frees the session's oldest held buffer (no-op when
	// nothing is held).
	OpRelease
	// OpLockX converts the session's DLM lock to EX and back to PR.
	OpLockX

	numOpKinds = OpLockX
)

// PhaseKind labels a trace phase; the runner reports one latency window
// per phase.
type PhaseKind uint8

const (
	// PhaseSteady is diurnal steady-state: the open-session target
	// oscillates between day and night levels.
	PhaseSteady PhaseKind = 1 + iota
	// PhaseSpike is a flash crowd: a fast ramp to roughly twice the
	// steady target, then a mass exodus.
	PhaseSpike
	// PhasePressure is a pressure wave: hold-heavy churn with larger
	// buffers pressing the physical-memory watermarks, then a drain.
	PhasePressure

	numPhaseKinds = PhasePressure
)

// String returns the phase name used in results and CI gates.
func (k PhaseKind) String() string {
	switch k {
	case PhaseSteady:
		return "steady"
	case PhaseSpike:
		return "spike"
	case PhasePressure:
		return "pressure"
	}
	return fmt.Sprintf("phase(%d)", uint8(k))
}

// Op is one decoded trace record.
type Op struct {
	Kind OpKind
	CPU  uint8
	Sess uint32
	Arg  uint32
}

// Phase is one decoded trace phase.
type Phase struct {
	Kind PhaseKind
	Ops  []Op
}

// Trace is a decoded serving trace.
type Trace struct {
	NCPU   int
	Phases []Phase
}

// NumOps returns the total record count across phases.
func (t *Trace) NumOps() int {
	n := 0
	for i := range t.Phases {
		n += len(t.Phases[i].Ops)
	}
	return n
}

// MaxSession returns the largest session id referenced, or -1 for an
// empty trace.
func (t *Trace) MaxSession() int {
	max := -1
	for i := range t.Phases {
		for _, op := range t.Phases[i].Ops {
			if int(op.Sess) > max {
				max = int(op.Sess)
			}
		}
	}
	return max
}

// Decoder errors. All decode failures wrap one of these; none panic.
var (
	ErrBadMagic   = errors.New("serve: bad trace magic")
	ErrBadVersion = errors.New("serve: unsupported trace version")
	ErrBadHeader  = errors.New("serve: malformed trace header")
	ErrBadOp      = errors.New("serve: malformed trace record")
	ErrSession    = errors.New("serve: session discipline violation")
	ErrTruncated  = errors.New("serve: truncated trace")
)

// sizedOp reports whether kind carries a size in Arg that must be a
// nonzero small-class size.
func sizedOp(kind OpKind) bool {
	return kind == OpOpen || kind == OpMsg || kind == OpHold
}

// WriteTrace encodes t in the binary trace format.
func WriteTrace(w io.Writer, t *Trace) error {
	if t.NCPU < 1 || t.NCPU > 255 {
		return fmt.Errorf("%w: ncpu %d", ErrBadHeader, t.NCPU)
	}
	if len(t.Phases) == 0 || len(t.Phases) > maxPhases {
		return fmt.Errorf("%w: %d phases", ErrBadHeader, len(t.Phases))
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	hdr[4] = traceVersion
	hdr[5] = uint8(t.NCPU)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(len(t.Phases)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.NumOps()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var ph [phaseHeaderBytes]byte
	for i := range t.Phases {
		ph[0] = uint8(t.Phases[i].Kind)
		binary.LittleEndian.PutUint32(ph[1:], uint32(len(t.Phases[i].Ops)))
		if _, err := w.Write(ph[:]); err != nil {
			return err
		}
	}
	var rec [recordBytes]byte
	for i := range t.Phases {
		for _, op := range t.Phases[i].Ops {
			rec[0] = uint8(op.Kind)
			rec[1] = op.CPU
			binary.LittleEndian.PutUint32(rec[2:], op.Sess)
			binary.LittleEndian.PutUint32(rec[6:], op.Arg)
			if _, err := w.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadTrace decodes and fully validates a binary trace: header sanity,
// record kinds, CPU bounds, size fields, and session discipline (no
// duplicate opens, no operation on a session that is not open). A
// malformed or truncated input returns an error; it never panics and
// never allocates proportionally to a hostile length field beyond fixed
// caps.
func ReadTrace(r io.Reader) (*Trace, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, ErrBadMagic
	}
	if hdr[4] != traceVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	ncpu := int(hdr[5])
	if ncpu < 1 {
		return nil, fmt.Errorf("%w: ncpu 0", ErrBadHeader)
	}
	nphases := int(binary.LittleEndian.Uint16(hdr[6:]))
	if nphases < 1 || nphases > maxPhases {
		return nil, fmt.Errorf("%w: %d phases", ErrBadHeader, nphases)
	}
	nops := int(binary.LittleEndian.Uint32(hdr[8:]))
	if nops > maxOps {
		return nil, fmt.Errorf("%w: %d ops", ErrBadHeader, nops)
	}

	t := &Trace{NCPU: ncpu, Phases: make([]Phase, nphases)}
	var ph [phaseHeaderBytes]byte
	counts := make([]int, nphases)
	sum := 0
	for i := range t.Phases {
		if _, err := io.ReadFull(r, ph[:]); err != nil {
			return nil, fmt.Errorf("%w: phase header %d: %v", ErrTruncated, i, err)
		}
		kind := PhaseKind(ph[0])
		if kind < 1 || kind > numPhaseKinds {
			return nil, fmt.Errorf("%w: phase %d kind %d", ErrBadHeader, i, ph[0])
		}
		counts[i] = int(binary.LittleEndian.Uint32(ph[1:]))
		if counts[i] > nops-sum {
			return nil, fmt.Errorf("%w: phase op counts exceed declared total %d", ErrBadHeader, nops)
		}
		sum += counts[i]
		t.Phases[i].Kind = kind
	}
	if sum != nops {
		return nil, fmt.Errorf("%w: phase op counts sum to %d, header says %d", ErrBadHeader, sum, nops)
	}

	open := make(map[uint32]bool)
	var rec [recordBytes]byte
	for i := range t.Phases {
		// Append only after each record's bytes are actually read, so a
		// hostile length field cannot balloon memory past the input size
		// and a truncated input fails at the missing byte, not at make().
		t.Phases[i].Ops = make([]Op, 0, min(counts[i], 1<<12))
		for j := 0; j < counts[i]; j++ {
			if _, err := io.ReadFull(r, rec[:]); err != nil {
				return nil, fmt.Errorf("%w: phase %d record %d: %v", ErrTruncated, i, j, err)
			}
			op := Op{
				Kind: OpKind(rec[0]),
				CPU:  rec[1],
				Sess: binary.LittleEndian.Uint32(rec[2:]),
				Arg:  binary.LittleEndian.Uint32(rec[6:]),
			}
			if op.Kind < 1 || op.Kind > numOpKinds {
				return nil, fmt.Errorf("%w: kind %d", ErrBadOp, rec[0])
			}
			if int(op.CPU) >= ncpu {
				return nil, fmt.Errorf("%w: cpu %d on a %d-CPU trace", ErrBadOp, op.CPU, ncpu)
			}
			if op.Sess >= maxSessionID {
				return nil, fmt.Errorf("%w: session id %d too large", ErrBadOp, op.Sess)
			}
			if sizedOp(op.Kind) && op.Arg == 0 {
				return nil, fmt.Errorf("%w: zero size on kind %d", ErrBadOp, op.Kind)
			}
			switch op.Kind {
			case OpOpen:
				if open[op.Sess] {
					return nil, fmt.Errorf("%w: duplicate open of session %d", ErrSession, op.Sess)
				}
				open[op.Sess] = true
			case OpClose:
				if !open[op.Sess] {
					return nil, fmt.Errorf("%w: close of unopened session %d", ErrSession, op.Sess)
				}
				delete(open, op.Sess)
			default:
				if !open[op.Sess] {
					return nil, fmt.Errorf("%w: op %d on unopened session %d", ErrSession, op.Kind, op.Sess)
				}
			}
			t.Phases[i].Ops = append(t.Phases[i].Ops, op)
		}
	}
	// Trailing garbage after the declared records is a malformed trace.
	var extra [1]byte
	if n, _ := r.Read(extra[:]); n != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after %d records", ErrBadHeader, nops)
	}
	return t, nil
}
