package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kmem/internal/core"
	"kmem/internal/machine"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testGen() GenConfig {
	return GenConfig{Seed: 7, CPUs: 4, Sessions: 192, OpsPerPhase: 3000}
}

func runOnce(t *testing.T, cfg GenConfig, tr *Trace) *Result {
	t.Helper()
	mcfg := machine.DefaultConfig()
	mcfg.NumCPUs = cfg.CPUs
	mcfg.Nodes = 2
	m := machine.New(mcfg)
	m.EnableSchedHash()
	a, err := core.New(m, core.Params{RadixSort: true, Latency: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, a, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServeDeterministic is the reproducibility contract: two fresh
// runs of the same seed produce identical histograms and the same
// schedule hash, and the run replays the committed golden
// byte-identically — any schedule or codec drift fails loudly.
func TestServeDeterministic(t *testing.T) {
	cfg := testGen()
	tr := Generate(cfg)

	// The trace itself is byte-reproducible.
	var b1, b2 bytes.Buffer
	if err := WriteTrace(&b1, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b2, Generate(cfg)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same seed generated different trace bytes")
	}

	r1 := runOnce(t, cfg, tr)
	r2 := runOnce(t, cfg, tr)
	if r1.SchedHash != r2.SchedHash {
		t.Errorf("schedule hash differs across fresh runs: %#x vs %#x", r1.SchedHash, r2.SchedHash)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("results differ across fresh runs")
	}

	got, err := json.MarshalIndent(r1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "golden_serve.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("run diverged from committed golden %s (re-run with -update if intended)", golden)
	}
}

// TestServeRunShape checks the functional contract of a run: every
// trace op executes, drops stay rare outside the pressure wave, the
// latency windows are populated, and quantiles are ordered.
func TestServeRunShape(t *testing.T) {
	cfg := testGen()
	tr := Generate(cfg)
	res := runOnce(t, cfg, tr)

	if res.TotalOps != tr.NumOps() {
		t.Errorf("ran %d ops, trace has %d", res.TotalOps, tr.NumOps())
	}
	if res.TotalOpen == 0 {
		t.Error("no sessions opened")
	}
	if len(res.Phases) != 3 {
		t.Fatalf("got %d phases", len(res.Phases))
	}
	names := []string{"steady", "spike", "pressure"}
	for i, pr := range res.Phases {
		if pr.Phase != names[i] {
			t.Errorf("phase %d named %q, want %q", i, pr.Phase, names[i])
		}
		if pr.AllocCount == 0 || pr.FreeCount == 0 {
			t.Errorf("phase %s: empty latency window (%d allocs, %d frees)", pr.Phase, pr.AllocCount, pr.FreeCount)
		}
		if pr.AllocP50 > pr.AllocP99 || pr.AllocP99 > pr.AllocP999 {
			t.Errorf("phase %s: alloc quantiles not ordered: %d/%d/%d", pr.Phase, pr.AllocP50, pr.AllocP99, pr.AllocP999)
		}
		if pr.FreeP50 > pr.FreeP99 || pr.FreeP99 > pr.FreeP999 {
			t.Errorf("phase %s: free quantiles not ordered: %d/%d/%d", pr.Phase, pr.FreeP50, pr.FreeP99, pr.FreeP999)
		}
		if pr.Cycles <= 0 || pr.OpsPerSec <= 0 {
			t.Errorf("phase %s: cycles %d ops/sec %f", pr.Phase, pr.Cycles, pr.OpsPerSec)
		}
		if i < 2 && pr.Drops > pr.Ops/100 {
			t.Errorf("phase %s: %d drops in %d ops before the pressure wave", pr.Phase, pr.Drops, pr.Ops)
		}
	}
}

// TestServeTeardownBalances verifies the post-run teardown returns
// every block: after Run (which closes leftover sessions and drains),
// class allocs and frees balance exactly except for blocks pinned in
// the STREAMS and DLM object caches.
func TestServeTeardownBalances(t *testing.T) {
	cfg := testGen()
	tr := Generate(cfg)
	mcfg := machine.DefaultConfig()
	mcfg.NumCPUs = cfg.CPUs
	m := machine.New(mcfg)
	a, err := core.New(m, core.Params{RadixSort: true, Latency: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, a, tr); err != nil {
		t.Fatal(err)
	}
	st := a.Stats(m.CPU(0))
	var allocs, frees uint64
	for _, cs := range st.Classes {
		allocs += cs.Allocs
		frees += cs.Frees
	}
	if allocs == 0 {
		t.Fatal("no class allocations recorded")
	}
	outstanding := allocs - frees
	// Object caches (streams mblks/dblks, dlm locks/resources) retain
	// constructed objects; everything else must have come back.
	if outstanding > allocs/4 {
		t.Errorf("%d of %d class blocks outstanding after teardown", outstanding, allocs)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := Generate(GenConfig{Seed: 3, CPUs: 3, Sessions: 32, OpsPerPhase: 400})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("trace did not round-trip")
	}
}

// TestReadTraceRejects covers the decoder's validation: every
// malformed shape errors with the right sentinel and never panics.
func TestReadTraceRejects(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		tr := Generate(GenConfig{Seed: 1, CPUs: 2, Sessions: 8, OpsPerPhase: 64})
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad magic", append([]byte{0, 0, 0, 0}, valid()[4:]...), ErrBadMagic},
		{"bad version", func() []byte { b := valid(); b[4] = 99; return b }(), ErrBadVersion},
		{"zero cpus", func() []byte { b := valid(); b[5] = 0; return b }(), ErrBadHeader},
		{"truncated records", valid()[:headerBytes+3*phaseHeaderBytes+4], ErrTruncated},
		{"trailing bytes", append(valid(), 0xff), ErrBadHeader},
		{"bad op kind", func() []byte {
			b := valid()
			b[headerBytes+3*phaseHeaderBytes] = 200
			return b
		}(), ErrBadOp},
		{"cpu out of range", func() []byte {
			b := valid()
			b[headerBytes+3*phaseHeaderBytes+1] = 7
			return b
		}(), ErrBadOp},
	}
	for _, tc := range cases {
		if _, err := ReadTrace(bytes.NewReader(tc.data)); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// Session discipline: duplicate open, op on unopened, close of
	// unopened — each must be rejected.
	mk := func(ops []Op) []byte {
		var buf bytes.Buffer
		if err := WriteTrace(&buf, &Trace{NCPU: 2, Phases: []Phase{{Kind: PhaseSteady, Ops: ops}}}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	bad := [][]Op{
		{{Kind: OpOpen, Sess: 1, Arg: 64}, {Kind: OpOpen, Sess: 1, Arg: 64}},
		{{Kind: OpMsg, Sess: 1, Arg: 64}},
		{{Kind: OpClose, Sess: 1}},
		{{Kind: OpOpen, Sess: 1, Arg: 64}, {Kind: OpClose, Sess: 1}, {Kind: OpHold, Sess: 1, Arg: 64}},
	}
	for i, ops := range bad {
		if _, err := ReadTrace(bytes.NewReader(mk(ops))); !errors.Is(err, ErrSession) {
			t.Errorf("session case %d: got %v, want ErrSession", i, err)
		}
	}
}
