package mk

import (
	"errors"
	"testing"

	"kmem/internal/allocif"
	"kmem/internal/alloctest"
	"kmem/internal/arena"
	"kmem/internal/machine"
)

func newTest(t *testing.T, ncpu int, physPages int64) (*Allocator, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = ncpu
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = physPages
	m := machine.New(cfg)
	a, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(t *testing.T, ncpu int, physPages int64) alloctest.Instance {
		a, m := newTest(t, ncpu, physPages)
		return alloctest.Instance{
			// RetryWait adds the KM_SLEEP polyfill so the blocking-path
			// conformance case covers this baseline too.
			A:         allocif.RetryWait{Allocator: a},
			M:         m,
			MaxSize:   a.MaxSize(),
			Coalesces: false, // the point of the paper's goal-6 critique
			Check:     a.CheckConsistency,
		}
	})
}

// The concurrent conformance suite over the power-of-two freelists:
// the shadow oracle must hold under all-CPU churn with jitter.
func TestConcurrentGetPut(t *testing.T) {
	alloctest.RunConcurrentGetPut(t, func(t *testing.T, ncpu int, physPages int64) alloctest.Instance {
		a, m := newTest(t, ncpu, physPages)
		return alloctest.Instance{
			A:         allocif.RetryWait{Allocator: a},
			M:         m,
			MaxSize:   a.MaxSize(),
			Coalesces: false,
			Check:     a.CheckConsistency,
		}
	})
}

// The typed object-cache layer must degrade gracefully over this
// baseline's plain Alloc/Free: no cookies, no shed registration, no
// event spine — the lifecycle contract holds regardless.
func TestObjCacheLifecycle(t *testing.T) {
	alloctest.RunObjCache(t, func(t *testing.T, ncpu int, physPages int64) alloctest.Instance {
		a, m := newTest(t, ncpu, physPages)
		return alloctest.Instance{
			A:       allocif.RetryWait{Allocator: a},
			M:       m,
			MaxSize: a.MaxSize(),
			Check:   a.CheckConsistency,
		}
	})
}

// This baseline has no hardening layer; the corruption suite checks the
// documented-UB contract only — planted corruptions must not hang it.
func TestCorruption(t *testing.T) {
	alloctest.RunCorruption(t, func(t *testing.T, ncpu int, physPages int64) alloctest.Instance {
		a, m := newTest(t, ncpu, physPages)
		return alloctest.Instance{
			A:       allocif.RetryWait{Allocator: a},
			M:       m,
			MaxSize: a.MaxSize(),
			Check:   a.CheckConsistency,
		}
	})
}

func TestBucketFor(t *testing.T) {
	cases := map[uint64]int{
		1: 4, 16: 4, 17: 5, 32: 5, 33: 6,
		64: 6, 100: 7, 2049: 12, 4096: 12,
	}
	for size, want := range cases {
		if got := bucketFor(size); got != want {
			t.Errorf("bucketFor(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestNoCoalescingAcrossSizes(t *testing.T) {
	// The defining MK failure the worst-case benchmark exposes: exhaust
	// memory with small blocks, free them all, and large requests still
	// fail — the pages are permanently dedicated to the small bucket.
	a, m := newTest(t, 1, 64)
	c := m.CPU(0)
	var bs []arena.Addr
	for {
		b, err := a.Alloc(c, 32)
		if err != nil {
			break
		}
		bs = append(bs, b)
	}
	for _, b := range bs {
		a.Free(c, b, 32)
	}
	if _, err := a.Alloc(c, 4096); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("large alloc after small-block churn: err = %v, want ErrNoMemory", err)
	}
	// Yet the small size itself is fully recoverable.
	b, err := a.Alloc(c, 32)
	if err != nil {
		t.Fatalf("same-size realloc failed: %v", err)
	}
	a.Free(c, b, 32)
}

func TestSameSizeRecycling(t *testing.T) {
	a, m := newTest(t, 1, 8)
	c := m.CPU(0)
	before := a.Stats().PageCarves
	for i := 0; i < 10000; i++ {
		b, err := a.Alloc(c, 256)
		if err != nil {
			t.Fatal(err)
		}
		a.Free(c, b, 256)
	}
	carves := a.Stats().PageCarves - before
	if carves > 1 {
		t.Fatalf("steady-state loop carved %d pages", carves)
	}
}

func TestFreeWrongSizePanics(t *testing.T) {
	a, m := newTest(t, 1, 64)
	c := m.CPU(0)
	b, _ := a.Alloc(c, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size free not detected")
		}
	}()
	a.Free(c, b, 1024)
}

func TestInvalidSizes(t *testing.T) {
	a, m := newTest(t, 1, 64)
	c := m.CPU(0)
	if _, err := a.Alloc(c, 0); err == nil {
		t.Fatal("Alloc(0) accepted")
	}
	if _, err := a.Alloc(c, a.MaxSize()+1); err == nil {
		t.Fatal("oversized alloc accepted")
	}
}

func TestGlobalLockContention(t *testing.T) {
	a, m := newTest(t, 8, 1024)
	ops := 0
	m.Run(func(c *machine.CPU) bool {
		if ops >= 800 {
			return false
		}
		ops++
		b, err := a.Alloc(c, 64)
		if err == nil {
			a.Free(c, b, 64)
		}
		return true
	})
	st := a.Stats()
	if st.Lock.Contended == 0 {
		t.Fatal("naive parallelization produced no contention")
	}
}
