// Package mk reimplements the McKusick–Karels 4.3BSD kernel memory
// allocator (McKusick & Karels 1988) with the "naive parallelization" the
// paper benchmarks against: the uniprocessor algorithm wrapped in a
// single global spinlock.
//
// MK keeps a freelist per power-of-two bucket and a kmemsizes[] array
// recording each page's bucket, so free() can find the bucket from the
// address. Pages are carved on demand and — the property the paper's
// worst-case benchmark punishes — never coalesced or returned: "As
// presented, the MK algorithm also fails to meet goal 6 [coalescing]".
// Once a page is carved for one size it belongs to that size forever.
package mk

import (
	"errors"
	"fmt"
	"math/bits"

	"kmem/internal/arena"
	"kmem/internal/blocklist"
	"kmem/internal/machine"
)

// ErrNoMemory is returned when the page pool is exhausted and the
// requested bucket's freelist is empty. Because MK cannot coalesce,
// this state is permanent until blocks of that very size are freed.
var ErrNoMemory = errors.New("mk: out of memory")

const (
	minShift = 4  // 16-byte minimum, matching the paper's class list
	maxShift = 12 // one page
)

// Allocator is the naive parallel MK baseline.
type Allocator struct {
	m   *machine.Machine
	mem *arena.Arena
	lk  *machine.SpinLock

	buckets   []blocklist.List
	bktLines  []machine.Line
	sizesLine machine.Line

	// kmemsizes: bucket index per page, -1 for virgin pages.
	kmemsizes []int8

	nextPage int64 // bump page allocator
	maxPages int64
	pageZero arena.Addr

	allocs, frees, failures, pageCarves uint64
}

// New builds the allocator over machine m. Like the 4.3BSD kernel map,
// the page pool is a fixed region sized by available physical memory.
func New(m *machine.Machine) (*Allocator, error) {
	cfg := m.Config()
	pageBytes := cfg.PageBytes
	maxPages := int64((cfg.MemBytes - pageBytes) / pageBytes)
	if maxPages > cfg.PhysPages {
		maxPages = cfg.PhysPages
	}
	if maxPages < 1 {
		return nil, fmt.Errorf("mk: no memory to manage")
	}
	a := &Allocator{
		m:         m,
		mem:       m.Mem(),
		lk:        machine.NewSpinLock(m),
		buckets:   make([]blocklist.List, maxShift+1),
		bktLines:  make([]machine.Line, maxShift+1),
		sizesLine: m.NewMetaLine(),
		kmemsizes: make([]int8, maxPages),
		maxPages:  maxPages,
		pageZero:  arena.Addr(pageBytes),
	}
	for i := range a.kmemsizes {
		a.kmemsizes[i] = -1
	}
	for i := range a.bktLines {
		a.bktLines[i] = m.NewMetaLine()
	}
	return a, nil
}

// Name implements allocif.Allocator.
func (a *Allocator) Name() string { return "mk" }

// bucketFor returns the power-of-two bucket index for a request. The
// original is a fully inlined binary search — the source of the pipeline
// stalls the paper discusses; the simulator charges its instruction cost
// in Alloc.
func bucketFor(size uint64) int {
	if size <= 1<<minShift {
		return minShift
	}
	return 64 - bits.LeadingZeros64(size-1)
}

// MaxSize is the largest request MK serves (one page; the 4.3BSD
// allocator forwards bigger requests to the VM system, which none of the
// paper's benchmarks exercise).
func (a *Allocator) MaxSize() uint64 { return 1 << maxShift }

// Alloc implements allocif.Allocator.
func (a *Allocator) Alloc(c *machine.CPU, size uint64) (arena.Addr, error) {
	if size == 0 || size > a.MaxSize() {
		return arena.NilAddr, fmt.Errorf("mk: invalid size %d", size)
	}
	bkt := bucketFor(size)

	a.lk.Acquire(c)
	// The MK fast path is 16 VAX instructions; the inlined binary search
	// on a run-time size costs a couple of mispredicted branches.
	c.Work(16)
	c.Read(a.bktLines[bkt])
	l := &a.buckets[bkt]
	if l.Empty() {
		if err := a.carvePage(c, bkt); err != nil {
			a.failures++
			a.lk.Release(c)
			return arena.NilAddr, err
		}
	}
	b := l.Pop(c, a.mem)
	a.allocs++
	c.Write(a.bktLines[bkt])
	a.lk.Release(c)
	return b, nil
}

// carvePage takes a virgin page from the bump pool and splits it into
// bucket blocks, recording the bucket in kmemsizes.
func (a *Allocator) carvePage(c *machine.CPU, bkt int) error {
	if a.nextPage >= a.maxPages {
		return ErrNoMemory
	}
	if err := a.m.Phys().Map(1); err != nil {
		return ErrNoMemory
	}
	cfg := a.m.Config()
	c.Idle(cfg.PageMapCycles + cfg.PageZeroCycles)
	c.Work(20)
	pg := a.nextPage
	a.nextPage++
	a.kmemsizes[pg] = int8(bkt)
	c.Write(a.sizesLine)
	a.pageCarves++

	base := a.pageZero + arena.Addr(pg)*arena.Addr(cfg.PageBytes)
	bsize := arena.Addr(1) << bkt
	n := arena.Addr(cfg.PageBytes) / bsize
	for i := n; i > 0; i-- {
		a.buckets[bkt].Push(c, a.mem, base+(i-1)*bsize)
	}
	return nil
}

// Free implements allocif.Allocator. The original looks the bucket up in
// kmemsizes by page; the size argument only cross-checks.
func (a *Allocator) Free(c *machine.CPU, addr arena.Addr, size uint64) {
	a.lk.Acquire(c)
	c.Work(16)
	c.Read(a.sizesLine)
	pg := int64((addr - a.pageZero) / arena.Addr(a.m.Config().PageBytes))
	if pg < 0 || pg >= a.maxPages || a.kmemsizes[pg] < 0 {
		panic(fmt.Sprintf("mk: free of unmanaged address %#x", addr))
	}
	bkt := int(a.kmemsizes[pg])
	if want := bucketFor(size); want != bkt {
		panic(fmt.Sprintf("mk: free size %d (bucket %d) but page is bucket %d", size, want, bkt))
	}
	c.Read(a.bktLines[bkt])
	a.buckets[bkt].Push(c, a.mem, addr)
	a.frees++
	c.Write(a.bktLines[bkt])
	a.lk.Release(c)
}

// Stats reports operation and contention counters.
type Stats struct {
	Allocs     uint64
	Frees      uint64
	Failures   uint64
	PageCarves uint64
	Lock       machine.LockStats
}

// Stats returns a snapshot (quiesce first or tolerate skew).
func (a *Allocator) Stats() Stats {
	return Stats{
		Allocs:     a.allocs,
		Frees:      a.frees,
		Failures:   a.failures,
		PageCarves: a.pageCarves,
		Lock:       a.lk.Stats(),
	}
}

// CheckConsistency verifies each bucket's freelist blocks lie in pages
// carved for that bucket.
func (a *Allocator) CheckConsistency() error {
	pageBytes := arena.Addr(a.m.Config().PageBytes)
	for bkt := minShift; bkt <= maxShift; bkt++ {
		count := 0
		for b := a.buckets[bkt].Head(); b != arena.NilAddr; b = a.mem.Load64(b) {
			pg := int64((b - a.pageZero) / pageBytes)
			if pg < 0 || pg >= a.nextPage {
				return fmt.Errorf("mk: bucket %d holds block %#x outside carved pages", bkt, b)
			}
			if int(a.kmemsizes[pg]) != bkt {
				return fmt.Errorf("mk: bucket %d holds block %#x in bucket-%d page", bkt, b, a.kmemsizes[pg])
			}
			if (b-a.pageZero)%(1<<bkt) != 0 {
				return fmt.Errorf("mk: misaligned block %#x in bucket %d", b, bkt)
			}
			count++
			if count > int(pageBytes)*int(a.nextPage) {
				return fmt.Errorf("mk: bucket %d freelist cycle", bkt)
			}
		}
		if count != a.buckets[bkt].Len() {
			return fmt.Errorf("mk: bucket %d length %d, walked %d", bkt, a.buckets[bkt].Len(), count)
		}
	}
	return nil
}
