// Package blocklist implements the singly-linked freelists the allocators
// thread through free blocks themselves.
//
// A free block's first 8 bytes hold the arena address of the next free
// block (NilAddr terminates the list), exactly as in the kernel the paper
// describes. A List is only a (head, count) pair, so moving an entire list
// — the "target-sized groups" the per-CPU and global layers exchange — is
// a constant-time structure copy with no per-block linked-list operations,
// which is the point of the paper's split-freelist design.
package blocklist

import (
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// List is an intrusive singly-linked list of free blocks. The zero value
// is an empty list.
type List struct {
	head arena.Addr
	n    int
}

// Empty reports whether the list has no blocks.
func (l *List) Empty() bool { return l.n == 0 }

// Len returns the number of blocks on the list.
func (l *List) Len() int { return l.n }

// Head returns the address of the first block (NilAddr when empty).
func (l *List) Head() arena.Addr { return l.head }

// Reset empties the list without touching the blocks.
func (l *List) Reset() { l.head, l.n = arena.NilAddr, 0 }

// Push prepends block b. It writes the link word inside the block and
// charges the store to c.
func (l *List) Push(c *machine.CPU, a *arena.Arena, b arena.Addr) {
	if b == arena.NilAddr {
		panic("blocklist: push of nil block")
	}
	a.Store64(b, l.head)
	c.WriteAddr(b)
	l.head = b
	l.n++
}

// Pop removes and returns the first block. It reads the link word inside
// the block and charges the load to c. Pop panics on an empty list; the
// caller checks Empty first, as the real fast path does.
func (l *List) Pop(c *machine.CPU, a *arena.Arena) arena.Addr {
	if l.n == 0 {
		panic("blocklist: pop from empty list")
	}
	b := l.head
	l.head = a.Load64(b)
	c.ReadAddr(b)
	l.n--
	if l.n == 0 && l.head != arena.NilAddr {
		panic(fmt.Sprintf("blocklist: count reached 0 with non-nil head %#x", l.head))
	}
	return b
}

// Take removes all blocks from l and returns them as a new list — the
// constant-time whole-list move used when main is exchanged with aux or a
// target-sized group is handed to the global layer.
func (l *List) Take() List {
	out := *l
	l.Reset()
	return out
}

// SplitOff removes exactly n blocks from the front of l and returns them
// as a new list. Unlike Take, this must walk n-1 links (charged to c); the
// global layer's bucket list pays this cost when regrouping odd-sized
// lists into target-sized ones.
func (l *List) SplitOff(c *machine.CPU, a *arena.Arena, n int) List {
	if n <= 0 || n > l.n {
		panic(fmt.Sprintf("blocklist: SplitOff(%d) from list of %d", n, l.n))
	}
	if n == l.n {
		return l.Take()
	}
	tail := l.head
	for i := 0; i < n-1; i++ {
		tail = a.Load64(tail)
		c.ReadAddr(tail)
	}
	out := List{head: l.head, n: n}
	l.head = a.Load64(tail)
	c.ReadAddr(tail)
	l.n -= n
	a.Store64(tail, arena.NilAddr)
	c.WriteAddr(tail)
	return out
}

// Append moves every block of other onto l by walking other and pushing
// each block. It is used only on infrequent paths (bucket regrouping,
// cache drains); the per-block cost is charged to c.
func (l *List) Append(c *machine.CPU, a *arena.Arena, other List) {
	for !other.Empty() {
		l.Push(c, a, other.Pop(c, a))
	}
}

// Validate walks the list and panics if the link count disagrees with n
// or a link escapes the arena. Tests and debug checks use it; it charges
// nothing.
func (l *List) Validate(a *arena.Arena) {
	count := 0
	for b := l.head; b != arena.NilAddr; b = a.Load64(b) {
		count++
		if count > l.n {
			panic(fmt.Sprintf("blocklist: list longer than declared length %d", l.n))
		}
	}
	if count != l.n {
		panic(fmt.Sprintf("blocklist: declared length %d but walked %d", l.n, count))
	}
}
