package blocklist

import (
	"testing"
	"testing/quick"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

func testCPU(t *testing.T) (*machine.CPU, *arena.Arena) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.MemBytes = 1 << 20
	cfg.PhysPages = 16
	m := machine.New(cfg)
	return m.CPU(0), m.Mem()
}

// blocks returns n block addresses spaced size bytes apart from base.
func blocks(base arena.Addr, n int, size uint64) []arena.Addr {
	out := make([]arena.Addr, n)
	for i := range out {
		out[i] = base + arena.Addr(i)*arena.Addr(size)
	}
	return out
}

func TestPushPopLIFO(t *testing.T) {
	c, a := testCPU(t)
	var l List
	bs := blocks(64, 5, 32)
	for _, b := range bs {
		l.Push(c, a, b)
	}
	if l.Len() != 5 {
		t.Fatalf("len = %d", l.Len())
	}
	l.Validate(a)
	for i := 4; i >= 0; i-- {
		if got := l.Pop(c, a); got != bs[i] {
			t.Fatalf("pop %d = %#x, want %#x", i, got, bs[i])
		}
	}
	if !l.Empty() {
		t.Fatal("not empty")
	}
}

func TestTakeIsConstantTimeMove(t *testing.T) {
	c, a := testCPU(t)
	var l List
	for _, b := range blocks(64, 3, 32) {
		l.Push(c, a, b)
	}
	m := l.Take()
	if !l.Empty() || m.Len() != 3 {
		t.Fatalf("take: src %d dst %d", l.Len(), m.Len())
	}
	m.Validate(a)
}

func TestSplitOff(t *testing.T) {
	c, a := testCPU(t)
	var l List
	bs := blocks(64, 10, 32)
	for _, b := range bs {
		l.Push(c, a, b)
	}
	front := l.SplitOff(c, a, 4)
	if front.Len() != 4 || l.Len() != 6 {
		t.Fatalf("split: front %d rest %d", front.Len(), l.Len())
	}
	front.Validate(a)
	l.Validate(a)
	// Front must hold the four most recently pushed blocks.
	for i := 9; i >= 6; i-- {
		if got := front.Pop(c, a); got != bs[i] {
			t.Fatalf("front pop = %#x, want %#x", got, bs[i])
		}
	}
}

func TestSplitOffAll(t *testing.T) {
	c, a := testCPU(t)
	var l List
	for _, b := range blocks(64, 3, 32) {
		l.Push(c, a, b)
	}
	out := l.SplitOff(c, a, 3)
	if out.Len() != 3 || !l.Empty() {
		t.Fatal("SplitOff(all) wrong")
	}
	out.Validate(a)
}

func TestAppend(t *testing.T) {
	c, a := testCPU(t)
	var l, m List
	for _, b := range blocks(64, 3, 32) {
		l.Push(c, a, b)
	}
	for _, b := range blocks(1024, 4, 32) {
		m.Push(c, a, b)
	}
	l.Append(c, a, m)
	if l.Len() != 7 {
		t.Fatalf("len = %d", l.Len())
	}
	l.Validate(a)
}

func TestPanics(t *testing.T) {
	c, a := testCPU(t)
	var l List
	for name, f := range map[string]func(){
		"pop empty":     func() { (&List{}).Pop(c, a) },
		"push nil":      func() { l.Push(c, a, arena.NilAddr) },
		"split zero":    func() { (&List{}).SplitOff(c, a, 0) },
		"split toolong": func() { l2 := List{}; l2.Push(c, a, 64); l2.SplitOff(c, a, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestQuickPushPopSequences property-tests that any interleaving of
// pushes and pops behaves like a stack of addresses.
func TestQuickPushPopSequences(t *testing.T) {
	c, a := testCPU(t)
	f := func(ops []bool) bool {
		var l List
		var ref []arena.Addr
		next := arena.Addr(64)
		for _, push := range ops {
			if push || len(ref) == 0 {
				l.Push(c, a, next)
				ref = append(ref, next)
				next += 32
			} else {
				want := ref[len(ref)-1]
				ref = ref[:len(ref)-1]
				if l.Pop(c, a) != want {
					return false
				}
			}
			if l.Len() != len(ref) {
				return false
			}
		}
		l.Validate(a)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSplitOffPreservesBlocks property-tests that SplitOff never
// loses or duplicates a block.
func TestQuickSplitOffPreservesBlocks(t *testing.T) {
	c, a := testCPU(t)
	f := func(n uint8, k uint8) bool {
		total := int(n%40) + 1
		cut := int(k)%total + 1
		var l List
		want := map[arena.Addr]bool{}
		for i := 0; i < total; i++ {
			b := arena.Addr(64 + i*32)
			l.Push(c, a, b)
			want[b] = true
		}
		front := l.SplitOff(c, a, cut)
		got := map[arena.Addr]bool{}
		for !front.Empty() {
			got[front.Pop(c, a)] = true
		}
		for !l.Empty() {
			got[l.Pop(c, a)] = true
		}
		if len(got) != total {
			return false
		}
		for b := range want {
			if !got[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
