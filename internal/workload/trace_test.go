package workload

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRecorderHandles(t *testing.T) {
	r := NewRecorder()
	h1 := r.Alloc(0, 64)
	h2 := r.Alloc(1, 128)
	if h1 == h2 {
		t.Fatal("handles collide")
	}
	r.Free(0, h1)
	h3 := r.Alloc(0, 32)
	if h3 != h1 {
		t.Fatalf("freed handle not reused: got %d want %d", h3, h1)
	}
	r.Free(1, h2)
	r.Free(0, h3)
	if err := r.Trace().Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := Synthesize(7, 4, 5000, 100, Uniform{Lo: 16, Hi: 4096})
	if err := tr.Validate(4); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count %d vs %d", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Valid header claiming one event, but truncated body.
	var buf bytes.Buffer
	tr := &Trace{Events: []Event{{Kind: EvAlloc, Size: 16, Handle: 0}}}
	_, _ = tr.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated body accepted")
	}
	// Corrupt kind byte.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[8] = 99
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestValidateCatchesMisuse(t *testing.T) {
	bad := []Trace{
		{Events: []Event{{Kind: EvFree, Handle: 0}}},                                // free before alloc
		{Events: []Event{{Kind: EvAlloc, Size: 0, Handle: 0}}},                      // zero size
		{Events: []Event{{Kind: EvAlloc, Size: 8, Handle: 0, CPU: 9}}},              // bad cpu
		{Events: []Event{{Kind: EvAlloc, Size: 8}, {Kind: EvAlloc, Size: 8}}},       // live reuse
		{Events: []Event{{Kind: EvAlloc, Size: 8}, {Kind: EvFree}, {Kind: EvFree}}}, // double free
	}
	for i, tr := range bad {
		if err := tr.Validate(4); err == nil {
			t.Errorf("trace %d accepted", i)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(11, 2, 1000, 50, Fixed(64))
	b := Synthesize(11, 2, 1000, 50, Fixed(64))
	if len(a.Events) != len(b.Events) {
		t.Fatal("lengths differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestLive(t *testing.T) {
	r := NewRecorder()
	h1 := r.Alloc(0, 16)
	h2 := r.Alloc(0, 16)
	r.Free(0, h1)
	live := r.Trace().Live()
	if len(live) != 1 || live[0] != h2 {
		t.Fatalf("live = %v", live)
	}
}

// TestQuickTraceSerialization property-tests the binary format on
// arbitrary well-formed traces.
func TestQuickTraceSerialization(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		tr := Synthesize(seed, 3, int(ops%2000)+1, 40, Uniform{Lo: 1, Hi: 9000})
		if err := tr.Validate(3); err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range got.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
