// Package workload generates the deterministic allocation workloads the
// experiments replay: fixed and mixed size distributions, Zipf-skewed
// resource popularity for the DLM benchmark, and the paper's cyclic
// commercial day/night pattern ("the machine might be used for data entry
// and queries as part of a distributed database during the day, and for
// backups and database reorganization at night").
package workload

import (
	"fmt"
	"math/rand"
)

// NewRand returns a deterministic PRNG for the given seed; every
// experiment seeds its streams explicitly so figures regenerate
// bit-identically.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SizeDist produces allocation request sizes.
type SizeDist interface {
	// Next returns the next request size in bytes.
	Next(r *rand.Rand) uint64
	// Max returns the largest size the distribution can produce.
	Max() uint64
	// String describes the distribution for reports.
	String() string
}

// Fixed returns size every time — the best-case benchmark's shape.
type Fixed uint64

// Next implements SizeDist.
func (f Fixed) Next(*rand.Rand) uint64 { return uint64(f) }

// Max implements SizeDist.
func (f Fixed) Max() uint64 { return uint64(f) }

// String implements SizeDist.
func (f Fixed) String() string { return fmt.Sprintf("fixed(%d)", uint64(f)) }

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi uint64 }

// Next implements SizeDist.
func (u Uniform) Next(r *rand.Rand) uint64 {
	return u.Lo + uint64(r.Int63n(int64(u.Hi-u.Lo+1)))
}

// Max implements SizeDist.
func (u Uniform) Max() uint64 { return u.Hi }

// String implements SizeDist.
func (u Uniform) String() string { return fmt.Sprintf("uniform(%d,%d)", u.Lo, u.Hi) }

// Choice draws from a weighted set of sizes — e.g. a kernel's mix of
// small control blocks with occasional big buffers.
type Choice struct {
	Sizes   []uint64
	Weights []int
	total   int
}

// NewChoice builds a weighted choice distribution.
func NewChoice(sizes []uint64, weights []int) *Choice {
	if len(sizes) != len(weights) || len(sizes) == 0 {
		panic("workload: sizes and weights must match and be non-empty")
	}
	c := &Choice{Sizes: sizes, Weights: weights}
	for _, w := range weights {
		if w <= 0 {
			panic("workload: non-positive weight")
		}
		c.total += w
	}
	return c
}

// Next implements SizeDist.
func (c *Choice) Next(r *rand.Rand) uint64 {
	n := r.Intn(c.total)
	for i, w := range c.Weights {
		if n < w {
			return c.Sizes[i]
		}
		n -= w
	}
	return c.Sizes[len(c.Sizes)-1]
}

// Max implements SizeDist.
func (c *Choice) Max() uint64 {
	var m uint64
	for _, s := range c.Sizes {
		if s > m {
			m = s
		}
	}
	return m
}

// String implements SizeDist.
func (c *Choice) String() string { return fmt.Sprintf("choice(%v)", c.Sizes) }

// Zipf draws skewed resource identifiers in [0, N): a few hot resources
// take most of the traffic, as OLTP lock traffic does.
type Zipf struct {
	N uint64
	S float64 // skew, > 1
	z *rand.Zipf
}

// NewZipf builds a Zipf distribution bound to r's stream.
func NewZipf(r *rand.Rand, s float64, n uint64) *Zipf {
	return &Zipf{N: n, S: s, z: rand.NewZipf(r, s, 1, n-1)}
}

// Next returns the next resource id.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// Phase is one leg of a cyclic workload.
type Phase struct {
	Name string
	// Sizes generates the phase's request sizes.
	Sizes SizeDist
	// WorkingSet is the number of blocks held live at steady state.
	WorkingSet int
	// Ops is the number of allocate/free steps in the phase.
	Ops int
}

// Cyclic is the paper's commercial day/night workload: the day phase
// churns huge numbers of small blocks (database locking), the night phase
// wants massive amounts of memory in large blocks (backup/reorg buffers).
// An allocator without online coalescing cannot run it without reboots.
func Cyclic(daysOps, nightOps int) []Phase {
	return []Phase{
		{
			Name:       "day-oltp",
			Sizes:      NewChoice([]uint64{32, 64, 128, 256}, []int{4, 3, 2, 1}),
			WorkingSet: 400,
			Ops:        daysOps,
		},
		{
			Name:       "night-batch",
			Sizes:      NewChoice([]uint64{8192, 16384, 65536}, []int{3, 2, 1}),
			WorkingSet: 24,
			Ops:        nightOps,
		},
	}
}
