package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace recording and replay: a workload can be captured once (for
// example from the DLM benchmark or a production-like driver) and
// replayed against any allocator, giving an apples-to-apples comparison
// on identical operation sequences — the moral equivalent of the paper's
// syscall_kma/syscall_kmf scripting interface.

// EventKind tags a trace event.
type EventKind uint8

// Event kinds.
const (
	// EvAlloc allocates Size bytes on CPU and names the result Handle.
	EvAlloc EventKind = iota + 1
	// EvFree frees the block named Handle on CPU.
	EvFree
)

// Event is one allocation or free in a trace. Handles are small integers
// assigned by the recorder; the replayer maps them to real addresses.
type Event struct {
	Kind   EventKind
	CPU    uint8
	Size   uint32 // EvAlloc only
	Handle uint32
}

// Trace is a replayable operation sequence.
type Trace struct {
	Events []Event
}

// Recorder builds a Trace while a workload runs.
type Recorder struct {
	tr      Trace
	nextID  uint32
	freeIDs []uint32
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Alloc records an allocation and returns the handle the matching Free
// must use.
func (r *Recorder) Alloc(cpu int, size uint64) uint32 {
	var h uint32
	if n := len(r.freeIDs); n > 0 {
		h = r.freeIDs[n-1]
		r.freeIDs = r.freeIDs[:n-1]
	} else {
		h = r.nextID
		r.nextID++
	}
	r.tr.Events = append(r.tr.Events, Event{Kind: EvAlloc, CPU: uint8(cpu), Size: uint32(size), Handle: h})
	return h
}

// Free records a free of a previously recorded allocation.
func (r *Recorder) Free(cpu int, handle uint32) {
	r.tr.Events = append(r.tr.Events, Event{Kind: EvFree, CPU: uint8(cpu), Handle: handle})
	r.freeIDs = append(r.freeIDs, handle)
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return &r.tr }

// traceMagic identifies the binary trace format.
const traceMagic = 0x4b4d5452 // "KMTR"

// WriteTo serializes the trace in a compact binary format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(t.Events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return n, err
	}
	n += 8
	var rec [10]byte
	for _, e := range t.Events {
		rec[0] = byte(e.Kind)
		rec[1] = e.CPU
		binary.LittleEndian.PutUint32(rec[2:], e.Size)
		binary.LittleEndian.PutUint32(rec[6:], e.Handle)
		if _, err := bw.Write(rec[:]); err != nil {
			return n, err
		}
		n += int64(len(rec))
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("workload: not a trace file")
	}
	count := binary.LittleEndian.Uint32(hdr[4:])
	t := &Trace{Events: make([]Event, 0, count)}
	var rec [10]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("workload: trace event %d: %w", i, err)
		}
		e := Event{
			Kind:   EventKind(rec[0]),
			CPU:    rec[1],
			Size:   binary.LittleEndian.Uint32(rec[2:]),
			Handle: binary.LittleEndian.Uint32(rec[6:]),
		}
		if e.Kind != EvAlloc && e.Kind != EvFree {
			return nil, fmt.Errorf("workload: trace event %d: bad kind %d", i, rec[0])
		}
		t.Events = append(t.Events, e)
	}
	return t, nil
}

// Validate checks that the trace is well-formed: every free names a
// handle that is currently allocated, and CPU indices fit ncpu.
func (t *Trace) Validate(ncpu int) error {
	live := map[uint32]bool{}
	for i, e := range t.Events {
		if int(e.CPU) >= ncpu {
			return fmt.Errorf("workload: event %d uses CPU %d of %d", i, e.CPU, ncpu)
		}
		switch e.Kind {
		case EvAlloc:
			if e.Size == 0 {
				return fmt.Errorf("workload: event %d allocates 0 bytes", i)
			}
			if live[e.Handle] {
				return fmt.Errorf("workload: event %d reuses live handle %d", i, e.Handle)
			}
			live[e.Handle] = true
		case EvFree:
			if !live[e.Handle] {
				return fmt.Errorf("workload: event %d frees dead handle %d", i, e.Handle)
			}
			delete(live, e.Handle)
		}
	}
	return nil
}

// Live returns the handles still allocated at the end of the trace.
func (t *Trace) Live() []uint32 {
	live := map[uint32]bool{}
	for _, e := range t.Events {
		if e.Kind == EvAlloc {
			live[e.Handle] = true
		} else {
			delete(live, e.Handle)
		}
	}
	out := make([]uint32, 0, len(live))
	for h := range live {
		out = append(out, h)
	}
	return out
}

// Synthesize builds a trace from a size distribution: on each step one
// CPU (round-robin) either allocates (while below workingSet) or frees a
// pseudo-randomly chosen live block. The result is deterministic for a
// given seed.
func Synthesize(seed int64, ncpu, ops, workingSet int, sizes SizeDist) *Trace {
	r := NewRand(seed)
	rec := NewRecorder()
	type live struct {
		h   uint32
		cpu int
	}
	var held []live
	for i := 0; i < ops; i++ {
		cpu := i % ncpu
		if len(held) == 0 || (len(held) < workingSet && r.Intn(5) < 3) {
			h := rec.Alloc(cpu, sizes.Next(r))
			held = append(held, live{h, cpu})
		} else {
			j := r.Intn(len(held))
			// Half the frees happen on the allocating CPU, half on the
			// next one over — a blend of local and cross-CPU traffic.
			fcpu := held[j].cpu
			if r.Intn(2) == 0 {
				fcpu = (fcpu + 1) % ncpu
			}
			rec.Free(fcpu, held[j].h)
			held[j] = held[len(held)-1]
			held = held[:len(held)-1]
		}
	}
	return rec.Trace()
}
