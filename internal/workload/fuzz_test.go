package workload

import (
	"bytes"
	"testing"
)

// FuzzReadTrace feeds arbitrary bytes to the trace parser: it must reject
// or accept, never panic, and anything accepted must round-trip.
func FuzzReadTrace(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	var buf bytes.Buffer
	tr := Synthesize(1, 2, 50, 10, Fixed(64))
	_, _ = tr.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("KMTRgarbage"))
	mut := append([]byte(nil), buf.Bytes()...)
	if len(mut) > 12 {
		mut[10] ^= 0xff
	}
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: must serialize back to an equivalent trace.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		back, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		if len(back.Events) != len(got.Events) {
			t.Fatalf("round trip changed event count")
		}
		for i := range back.Events {
			if back.Events[i] != got.Events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}
