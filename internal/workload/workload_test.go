package workload

import (
	"testing"
	"testing/quick"
)

func TestFixed(t *testing.T) {
	r := NewRand(1)
	f := Fixed(128)
	for i := 0; i < 10; i++ {
		if f.Next(r) != 128 {
			t.Fatal("Fixed not fixed")
		}
	}
	if f.Max() != 128 {
		t.Fatal("Max wrong")
	}
}

func TestUniformInRange(t *testing.T) {
	r := NewRand(2)
	u := Uniform{Lo: 10, Hi: 20}
	seen := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		v := u.Next(r)
		if v < 10 || v > 20 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 11 {
		t.Fatalf("only %d distinct values", len(seen))
	}
}

func TestChoiceWeights(t *testing.T) {
	r := NewRand(3)
	c := NewChoice([]uint64{16, 4096}, []int{9, 1})
	small := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if c.Next(r) == 16 {
			small++
		}
	}
	if small < 8500 || small > 9500 {
		t.Fatalf("weight skew wrong: %d/%d small", small, n)
	}
	if c.Max() != 4096 {
		t.Fatal("Max wrong")
	}
}

func TestChoicePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mismatch": func() { NewChoice([]uint64{1}, []int{1, 2}) },
		"empty":    func() { NewChoice(nil, nil) },
		"zero":     func() { NewChoice([]uint64{1}, []int{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(4)
	z := NewZipf(r, 1.2, 1000)
	counts := map[uint64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// The hottest id must dominate: far more than uniform share.
	if counts[0] < n/100 {
		t.Fatalf("no skew: id 0 drawn %d times", counts[0])
	}
}

func TestDeterminism(t *testing.T) {
	gen := func() []uint64 {
		r := NewRand(99)
		u := Uniform{Lo: 1, Hi: 1 << 20}
		out := make([]uint64, 50)
		for i := range out {
			out[i] = u.Next(r)
		}
		return out
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestCyclicPhases(t *testing.T) {
	ph := Cyclic(1000, 100)
	if len(ph) != 2 {
		t.Fatalf("%d phases", len(ph))
	}
	if ph[0].Sizes.Max() >= 4096 || ph[1].Sizes.Max() < 8192 {
		t.Fatal("day/night size separation wrong")
	}
}

func TestQuickUniformBounds(t *testing.T) {
	r := NewRand(7)
	f := func(lo uint16, span uint16) bool {
		u := Uniform{Lo: uint64(lo), Hi: uint64(lo) + uint64(span)}
		v := u.Next(r)
		return v >= u.Lo && v <= u.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
