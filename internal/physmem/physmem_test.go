package physmem

import (
	"errors"
	"sync"
	"testing"
)

func TestMapUnmap(t *testing.T) {
	p := NewPool(10)
	if err := p.Map(4); err != nil {
		t.Fatal(err)
	}
	if got := p.Mapped(); got != 4 {
		t.Fatalf("Mapped = %d", got)
	}
	if got := p.Available(); got != 6 {
		t.Fatalf("Available = %d", got)
	}
	p.Unmap(3)
	if got := p.Mapped(); got != 1 {
		t.Fatalf("Mapped after unmap = %d", got)
	}
}

func TestExhaustion(t *testing.T) {
	p := NewPool(5)
	if err := p.Map(5); err != nil {
		t.Fatal(err)
	}
	err := p.Map(1)
	if !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want ErrNoPages", err)
	}
	// All-or-nothing: a partial map must not consume pages.
	p.Unmap(2)
	if err := p.Map(3); !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want ErrNoPages (3 > 2 available)", err)
	}
	if err := p.Map(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Map(1); !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want ErrNoPages", err)
	}
}

func TestStats(t *testing.T) {
	p := NewPool(8)
	_ = p.Map(6)
	p.Unmap(2)
	_ = p.Map(1)
	_ = p.Map(100) // fails
	s := p.Stats()
	if s.Capacity != 8 || s.Mapped != 5 || s.HighWater != 6 ||
		s.MapOps != 7 || s.UnmapOps != 2 || s.Failures != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPanics(t *testing.T) {
	p := NewPool(4)
	for name, f := range map[string]func(){
		"zero capacity": func() { NewPool(0) },
		"map zero":      func() { _ = p.Map(0) },
		"unmap zero":    func() { p.Unmap(0) },
		"unmap excess":  func() { p.Unmap(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestConcurrentMapUnmap(t *testing.T) {
	p := NewPool(1000)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if err := p.Map(2); err == nil {
					p.Unmap(2)
				}
			}
		}()
	}
	wg.Wait()
	if got := p.Mapped(); got != 0 {
		t.Fatalf("Mapped = %d after balanced ops", got)
	}
}
