package physmem

import (
	"errors"
	"sync"
	"testing"
)

func TestMapUnmap(t *testing.T) {
	p := NewPool(10)
	if err := p.Map(4); err != nil {
		t.Fatal(err)
	}
	if got := p.Mapped(); got != 4 {
		t.Fatalf("Mapped = %d", got)
	}
	if got := p.Available(); got != 6 {
		t.Fatalf("Available = %d", got)
	}
	p.Unmap(3)
	if got := p.Mapped(); got != 1 {
		t.Fatalf("Mapped after unmap = %d", got)
	}
}

func TestExhaustion(t *testing.T) {
	p := NewPool(5)
	if err := p.Map(5); err != nil {
		t.Fatal(err)
	}
	err := p.Map(1)
	if !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want ErrNoPages", err)
	}
	// All-or-nothing: a partial map must not consume pages.
	p.Unmap(2)
	if err := p.Map(3); !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want ErrNoPages (3 > 2 available)", err)
	}
	if err := p.Map(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Map(1); !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want ErrNoPages", err)
	}
}

func TestStats(t *testing.T) {
	p := NewPool(8)
	_ = p.Map(6)
	p.Unmap(2)
	_ = p.Map(1)
	_ = p.Map(100) // fails
	s := p.Stats()
	if s.Capacity != 8 || s.Mapped != 5 || s.HighWater != 6 ||
		s.MapOps != 7 || s.UnmapOps != 2 || s.Failures != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPanics(t *testing.T) {
	p := NewPool(4)
	for name, f := range map[string]func(){
		"zero capacity": func() { NewPool(0) },
		"unmap excess":  func() { _ = p.Unmap(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBadCountErrors(t *testing.T) {
	p := NewPool(4)
	for name, err := range map[string]error{
		"map zero":     p.Map(0),
		"map negative": p.Map(-3),
		"unmap zero":   p.Unmap(0),
		"unmap neg":    p.Unmap(-1),
	} {
		if !errors.Is(err, ErrBadCount) {
			t.Errorf("%s: err = %v, want ErrBadCount", name, err)
		}
	}
	// None of those may have touched the accounting.
	if s := p.Stats(); s.Mapped != 0 || s.MapOps != 0 || s.UnmapOps != 0 {
		t.Fatalf("bad-count calls changed accounting: %+v", s)
	}
}

func TestWatermarksAndPressure(t *testing.T) {
	p := NewPool(100)
	if p.Pressure() != PressureOK {
		t.Fatal("pressure model active without watermarks")
	}
	if err := p.SetWatermarks(20, 5); err != nil {
		t.Fatal(err)
	}
	var transitions []string
	p.SetPressureFunc(func(old, new PressureLevel) {
		transitions = append(transitions, old.String()+">"+new.String())
	})
	_ = p.Map(70) // free 30: ok
	if p.Pressure() != PressureOK {
		t.Fatalf("pressure at free=30 = %v", p.Pressure())
	}
	_ = p.Map(15) // free 15: low
	if p.Pressure() != PressureLow {
		t.Fatalf("pressure at free=15 = %v", p.Pressure())
	}
	_ = p.Map(12) // free 3: critical
	if p.Pressure() != PressureCritical {
		t.Fatalf("pressure at free=3 = %v", p.Pressure())
	}
	_ = p.Unmap(95) // free 98: back to ok
	want := []string{"ok>low", "low>critical", "critical>ok"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
	s := p.Stats()
	if s.LowWater != 20 || s.MinWater != 5 || s.Pressure != PressureOK ||
		s.Transitions != 3 || s.Free != 98 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSetWatermarksValidation(t *testing.T) {
	p := NewPool(10)
	for name, pair := range map[string][2]int64{
		"min negative":   {5, -1},
		"low below min":  {2, 5},
		"low > capacity": {11, 1},
	} {
		if err := p.SetWatermarks(pair[0], pair[1]); err == nil {
			t.Errorf("%s: SetWatermarks(%d, %d) accepted", name, pair[0], pair[1])
		}
	}
	if err := p.SetWatermarks(0, 0); err != nil {
		t.Fatalf("disabling watermarks: %v", err)
	}
}

func TestMapHook(t *testing.T) {
	p := NewPool(10)
	fail := errors.New("injected")
	var seen []int64
	p.SetMapHook(func(n int64) error {
		seen = append(seen, n)
		if len(seen) == 2 {
			return fail
		}
		return nil
	})
	if err := p.Map(3); err != nil {
		t.Fatal(err)
	}
	if err := p.Map(4); !errors.Is(err, fail) {
		t.Fatalf("err = %v, want injected", err)
	}
	if got := p.Mapped(); got != 3 {
		t.Fatalf("vetoed Map claimed pages: Mapped = %d", got)
	}
	if s := p.Stats(); s.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", s.Failures)
	}
	if len(seen) != 2 || seen[0] != 3 || seen[1] != 4 {
		t.Fatalf("hook saw %v", seen)
	}
	p.SetMapHook(nil)
	if err := p.Map(1); err != nil {
		t.Fatal(err)
	}
}

func TestReserveCommitSplit(t *testing.T) {
	p := NewPool(8)
	// Reservations are VA-only: they exceed physical capacity freely.
	if err := p.Reserve(100); err != nil {
		t.Fatal(err)
	}
	if got := p.Reserved(); got != 100 {
		t.Fatalf("Reserved = %d", got)
	}
	if got := p.Mapped(); got != 0 {
		t.Fatalf("reservation consumed frames: Mapped = %d", got)
	}
	// Commit consumes physical capacity, bounded by it.
	if err := p.Commit(6); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(3); !errors.Is(err, ErrNoPages) {
		t.Fatalf("Commit past capacity: err = %v, want ErrNoPages", err)
	}
	// Decommit frees frames but keeps the reservation.
	if err := p.Decommit(4); err != nil {
		t.Fatal(err)
	}
	if got := p.Mapped(); got != 2 {
		t.Fatalf("Mapped after decommit = %d", got)
	}
	if got := p.Reserved(); got != 100 {
		t.Fatalf("decommit shrank the reservation: Reserved = %d", got)
	}
	if err := p.Commit(6); err != nil {
		t.Fatal(err)
	}
	p.Decommit(8)
	if err := p.Unreserve(100); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Reserved != 0 || s.Mapped != 0 || s.ReserveOps != 100 || s.UnreserveOps != 100 ||
		s.MapOps != 12 || s.UnmapOps != 12 || s.HighWater != 8 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestVAQuota(t *testing.T) {
	p := NewPool(8)
	if err := p.SetVAQuota(10); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(8); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(3); !errors.Is(err, ErrNoVA) {
		t.Fatalf("Reserve past quota: err = %v, want ErrNoVA", err)
	}
	if s := p.Stats(); s.Failures != 1 || s.Reserved != 8 || s.VAQuota != 10 {
		t.Fatalf("stats = %+v", s)
	}
	// Quota cannot undercut live reservations.
	if err := p.SetVAQuota(4); err == nil {
		t.Fatal("SetVAQuota below reserved accepted")
	}
	if err := p.SetVAQuota(0); err != nil { // unlimited again
		t.Fatal(err)
	}
	if err := p.Reserve(1000); err != nil {
		t.Fatal(err)
	}
}

func TestCommitUnreservePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"commit beyond reservation": func() {
			p := NewPool(8)
			_ = p.Reserve(2)
			_ = p.Commit(3)
		},
		"unreserve below resident": func() {
			p := NewPool(8)
			_ = p.Map(4)
			_ = p.Unreserve(1) // all 4 reserved pages still resident
		},
		"decommit excess": func() {
			p := NewPool(8)
			_ = p.Map(2)
			_ = p.Decommit(3)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestMapHookUnwindRestoresPressure is the regression test for the
// hook-failure unwind: a vetoed commit that provisionally crossed a
// watermark must restore the prior pressure level and fire the
// compensating transition, leaving observers with a symmetric
// raise/restore pair rather than a phantom elevated level.
func TestMapHookUnwindRestoresPressure(t *testing.T) {
	p := NewPool(100)
	if err := p.SetWatermarks(20, 5); err != nil {
		t.Fatal(err)
	}
	var transitions []string
	p.SetPressureFunc(func(old, new PressureLevel) {
		transitions = append(transitions, old.String()+">"+new.String())
	})
	if err := p.Map(70); err != nil { // free 30: ok
		t.Fatal(err)
	}
	fail := errors.New("injected")
	p.SetMapHook(func(n int64) error { return fail })
	// This map would drop free pages to 10 (low) — the hook vetoes it, so
	// the level must come back to ok and the accounting to 70 resident.
	if err := p.Map(20); !errors.Is(err, fail) {
		t.Fatalf("err = %v, want injected", err)
	}
	if got := p.Pressure(); got != PressureOK {
		t.Fatalf("pressure after vetoed map = %v, want ok", got)
	}
	if got := p.Mapped(); got != 70 {
		t.Fatalf("Mapped after vetoed map = %d, want 70", got)
	}
	if got := p.Reserved(); got != 70 {
		t.Fatalf("Reserved after vetoed map = %d, want 70", got)
	}
	want := []string{"ok>low", "low>ok"}
	if len(transitions) != len(want) || transitions[0] != want[0] || transitions[1] != want[1] {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	s := p.Stats()
	if s.Failures != 1 || s.Transitions != 2 || s.MapOps != 70 {
		t.Fatalf("stats = %+v", s)
	}
	// Disarmed, the same map succeeds and lands at low.
	p.SetMapHook(nil)
	if err := p.Map(20); err != nil {
		t.Fatal(err)
	}
	if got := p.Pressure(); got != PressureLow {
		t.Fatalf("pressure = %v, want low", got)
	}
}

func TestConcurrentMapUnmap(t *testing.T) {
	p := NewPool(1000)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if err := p.Map(2); err == nil {
					p.Unmap(2)
				}
			}
		}()
	}
	wg.Wait()
	if got := p.Mapped(); got != 0 {
		t.Fatalf("Mapped = %d after balanced ops", got)
	}
}
