package physmem

import (
	"errors"
	"sync"
	"testing"
)

func TestMapUnmap(t *testing.T) {
	p := NewPool(10)
	if err := p.Map(4); err != nil {
		t.Fatal(err)
	}
	if got := p.Mapped(); got != 4 {
		t.Fatalf("Mapped = %d", got)
	}
	if got := p.Available(); got != 6 {
		t.Fatalf("Available = %d", got)
	}
	p.Unmap(3)
	if got := p.Mapped(); got != 1 {
		t.Fatalf("Mapped after unmap = %d", got)
	}
}

func TestExhaustion(t *testing.T) {
	p := NewPool(5)
	if err := p.Map(5); err != nil {
		t.Fatal(err)
	}
	err := p.Map(1)
	if !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want ErrNoPages", err)
	}
	// All-or-nothing: a partial map must not consume pages.
	p.Unmap(2)
	if err := p.Map(3); !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want ErrNoPages (3 > 2 available)", err)
	}
	if err := p.Map(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Map(1); !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want ErrNoPages", err)
	}
}

func TestStats(t *testing.T) {
	p := NewPool(8)
	_ = p.Map(6)
	p.Unmap(2)
	_ = p.Map(1)
	_ = p.Map(100) // fails
	s := p.Stats()
	if s.Capacity != 8 || s.Mapped != 5 || s.HighWater != 6 ||
		s.MapOps != 7 || s.UnmapOps != 2 || s.Failures != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPanics(t *testing.T) {
	p := NewPool(4)
	for name, f := range map[string]func(){
		"zero capacity": func() { NewPool(0) },
		"unmap excess":  func() { _ = p.Unmap(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBadCountErrors(t *testing.T) {
	p := NewPool(4)
	for name, err := range map[string]error{
		"map zero":     p.Map(0),
		"map negative": p.Map(-3),
		"unmap zero":   p.Unmap(0),
		"unmap neg":    p.Unmap(-1),
	} {
		if !errors.Is(err, ErrBadCount) {
			t.Errorf("%s: err = %v, want ErrBadCount", name, err)
		}
	}
	// None of those may have touched the accounting.
	if s := p.Stats(); s.Mapped != 0 || s.MapOps != 0 || s.UnmapOps != 0 {
		t.Fatalf("bad-count calls changed accounting: %+v", s)
	}
}

func TestWatermarksAndPressure(t *testing.T) {
	p := NewPool(100)
	if p.Pressure() != PressureOK {
		t.Fatal("pressure model active without watermarks")
	}
	if err := p.SetWatermarks(20, 5); err != nil {
		t.Fatal(err)
	}
	var transitions []string
	p.SetPressureFunc(func(old, new PressureLevel) {
		transitions = append(transitions, old.String()+">"+new.String())
	})
	_ = p.Map(70) // free 30: ok
	if p.Pressure() != PressureOK {
		t.Fatalf("pressure at free=30 = %v", p.Pressure())
	}
	_ = p.Map(15) // free 15: low
	if p.Pressure() != PressureLow {
		t.Fatalf("pressure at free=15 = %v", p.Pressure())
	}
	_ = p.Map(12) // free 3: critical
	if p.Pressure() != PressureCritical {
		t.Fatalf("pressure at free=3 = %v", p.Pressure())
	}
	_ = p.Unmap(95) // free 98: back to ok
	want := []string{"ok>low", "low>critical", "critical>ok"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
	s := p.Stats()
	if s.LowWater != 20 || s.MinWater != 5 || s.Pressure != PressureOK ||
		s.Transitions != 3 || s.Free != 98 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSetWatermarksValidation(t *testing.T) {
	p := NewPool(10)
	for name, pair := range map[string][2]int64{
		"min negative":   {5, -1},
		"low below min":  {2, 5},
		"low > capacity": {11, 1},
	} {
		if err := p.SetWatermarks(pair[0], pair[1]); err == nil {
			t.Errorf("%s: SetWatermarks(%d, %d) accepted", name, pair[0], pair[1])
		}
	}
	if err := p.SetWatermarks(0, 0); err != nil {
		t.Fatalf("disabling watermarks: %v", err)
	}
}

func TestMapHook(t *testing.T) {
	p := NewPool(10)
	fail := errors.New("injected")
	var seen []int64
	p.SetMapHook(func(n int64) error {
		seen = append(seen, n)
		if len(seen) == 2 {
			return fail
		}
		return nil
	})
	if err := p.Map(3); err != nil {
		t.Fatal(err)
	}
	if err := p.Map(4); !errors.Is(err, fail) {
		t.Fatalf("err = %v, want injected", err)
	}
	if got := p.Mapped(); got != 3 {
		t.Fatalf("vetoed Map claimed pages: Mapped = %d", got)
	}
	if s := p.Stats(); s.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", s.Failures)
	}
	if len(seen) != 2 || seen[0] != 3 || seen[1] != 4 {
		t.Fatalf("hook saw %v", seen)
	}
	p.SetMapHook(nil)
	if err := p.Map(1); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMapUnmap(t *testing.T) {
	p := NewPool(1000)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if err := p.Map(2); err == nil {
					p.Unmap(2)
				}
			}
		}()
	}
	wg.Wait()
	if got := p.Mapped(); got != 0 {
		t.Fatalf("Mapped = %d after balanced ops", got)
	}
}
