// Package physmem simulates the physical-memory side of the kernel VM
// system.
//
// The paper stresses that kernel-level allocators, unlike user-level ones,
// "must manage the virtual address space and physical memory explicitly
// and separately": when the coalesce-to-page layer frees the last block in
// a page, the physical page is returned to the system while the virtual
// page is retained and coalesced. This package is that "system": a finite
// pool of physical pages with map/unmap accounting. Exhaustion of the pool
// is what drives the allocator's low-memory path and the worst-case
// benchmark (Figure 9), and the map/unmap operation counts are what make
// large-block allocation measurably dearer in that figure.
//
// The pool also carries the machine's memory-pressure model: optional
// low/min free-page watermarks divide its state into ok / low / critical
// pressure levels, and a registered pressure function observes every
// level transition. With watermarks unset (the default) the pool reports
// PressureOK forever and behaves exactly as before.
package physmem

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoPages is returned by Map when physical memory is exhausted.
var ErrNoPages = errors.New("physmem: out of physical pages")

// ErrBadCount is returned by Map and Unmap for a non-positive page
// count — a caller bug, but an unwindable one: no accounting has been
// touched, so the caller may recover. Panics are reserved for states
// where the accounting itself is provably corrupt (unmapping more pages
// than are mapped).
var ErrBadCount = errors.New("physmem: non-positive page count")

// PressureLevel classifies how close the pool is to exhaustion.
type PressureLevel int32

const (
	// PressureOK: free pages above the low watermark (or no watermarks).
	PressureOK PressureLevel = iota
	// PressureLow: free pages at or below the low watermark.
	PressureLow
	// PressureCritical: free pages at or below the min watermark.
	PressureCritical
)

// String returns the level's conventional name.
func (l PressureLevel) String() string {
	switch l {
	case PressureOK:
		return "ok"
	case PressureLow:
		return "low"
	case PressureCritical:
		return "critical"
	}
	return fmt.Sprintf("PressureLevel(%d)", int32(l))
}

// Pool is a finite pool of physical pages. It is safe for concurrent use.
type Pool struct {
	mu        sync.Mutex
	capacity  int64
	mapped    int64
	highWater int64
	mapOps    uint64
	unmapOps  uint64
	failures  uint64

	// Watermarks over *free* pages (capacity - mapped); 0 disables the
	// pressure model.
	lowWater    int64
	minWater    int64
	transitions uint64

	// onPressure observes level transitions; called outside mu, in the
	// order the transitions occurred.
	onPressure func(old, new PressureLevel)

	// mapHook, when set, may veto a Map before any page is claimed —
	// the fault-injection seam for tests and kmembench pressure.
	mapHook func(n int64) error
}

// NewPool returns a pool holding capacity physical pages and no
// watermarks (pressure model disabled).
func NewPool(capacity int64) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("physmem: invalid capacity %d", capacity))
	}
	return &Pool{capacity: capacity}
}

// SetWatermarks enables the pressure model: the pool is at PressureLow
// when free pages drop to low or below, and PressureCritical at min or
// below. Setting both to 0 disables the model. Watermarks must satisfy
// 0 <= min <= low <= capacity.
func (p *Pool) SetWatermarks(low, min int64) error {
	if min < 0 || low < min || low > p.capacity {
		return fmt.Errorf("physmem: watermarks low=%d min=%d invalid for capacity %d",
			low, min, p.capacity)
	}
	p.mu.Lock()
	p.lowWater, p.minWater = low, min
	p.mu.Unlock()
	return nil
}

// SetPressureFunc registers f to observe every pressure-level transition.
// f runs outside the pool's lock, after the transition is visible, in
// transition order; it must be safe for concurrent use and must not call
// back into the pool.
func (p *Pool) SetPressureFunc(f func(old, new PressureLevel)) {
	p.mu.Lock()
	p.onPressure = f
	p.mu.Unlock()
}

// SetMapHook registers f to run at the top of every Map call with the
// requested page count. A non-nil return fails the Map (counted as a
// failure) before any page is claimed — the deterministic seam fault
// injection uses to force the exhaustion paths.
func (p *Pool) SetMapHook(f func(n int64) error) {
	p.mu.Lock()
	p.mapHook = f
	p.mu.Unlock()
}

// levelLocked computes the pressure level; caller holds mu.
func (p *Pool) levelLocked() PressureLevel {
	free := p.capacity - p.mapped
	switch {
	case p.minWater > 0 && free <= p.minWater:
		return PressureCritical
	case p.lowWater > 0 && free <= p.lowWater:
		return PressureLow
	}
	return PressureOK
}

// Map claims n physical pages, backing freshly allocated virtual pages.
// It claims all n or none, returning ErrNoPages when fewer than n pages
// remain and ErrBadCount for a non-positive n.
func (p *Pool) Map(n int64) error {
	if n <= 0 {
		return fmt.Errorf("%w: Map(%d)", ErrBadCount, n)
	}
	p.mu.Lock()
	hook := p.mapHook
	p.mu.Unlock()
	if hook != nil {
		if err := hook(n); err != nil {
			p.mu.Lock()
			p.failures++
			p.mu.Unlock()
			return err
		}
	}
	p.mu.Lock()
	if p.mapped+n > p.capacity {
		p.failures++
		p.mu.Unlock()
		return ErrNoPages
	}
	before := p.levelLocked()
	p.mapped += n
	p.mapOps += uint64(n)
	if p.mapped > p.highWater {
		p.highWater = p.mapped
	}
	after := p.levelLocked()
	var f func(old, new PressureLevel)
	if after != before {
		p.transitions++
		f = p.onPressure
	}
	p.mu.Unlock()
	if f != nil {
		f(before, after)
	}
	return nil
}

// Unmap returns n physical pages to the system. A non-positive n returns
// ErrBadCount with no accounting change; unmapping more pages than are
// mapped panics — at that point the caller's accounting is corrupt and
// there is nothing sound to unwind to.
func (p *Pool) Unmap(n int64) error {
	if n <= 0 {
		return fmt.Errorf("%w: Unmap(%d)", ErrBadCount, n)
	}
	p.mu.Lock()
	if p.mapped < n {
		p.mu.Unlock()
		panic(fmt.Sprintf("physmem: Unmap(%d) with only %d mapped", n, p.mapped))
	}
	before := p.levelLocked()
	p.mapped -= n
	p.unmapOps += uint64(n)
	after := p.levelLocked()
	var f func(old, new PressureLevel)
	if after != before {
		p.transitions++
		f = p.onPressure
	}
	p.mu.Unlock()
	if f != nil {
		f(before, after)
	}
	return nil
}

// Stats is a snapshot of pool accounting.
type Stats struct {
	Capacity  int64  // total physical pages
	Mapped    int64  // pages currently mapped
	Free      int64  // pages still available (Capacity - Mapped)
	HighWater int64  // maximum pages ever simultaneously mapped
	MapOps    uint64 // cumulative pages mapped
	UnmapOps  uint64 // cumulative pages unmapped
	Failures  uint64 // Map calls refused (exhaustion or injected fault)

	// Pressure model (zero watermarks = model disabled, Pressure ok).
	LowWater    int64         // free-page low watermark
	MinWater    int64         // free-page min (critical) watermark
	Pressure    PressureLevel // current level
	Transitions uint64        // level changes since construction
}

// Stats returns a consistent snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Capacity:    p.capacity,
		Mapped:      p.mapped,
		Free:        p.capacity - p.mapped,
		HighWater:   p.highWater,
		MapOps:      p.mapOps,
		UnmapOps:    p.unmapOps,
		Failures:    p.failures,
		LowWater:    p.lowWater,
		MinWater:    p.minWater,
		Pressure:    p.levelLocked(),
		Transitions: p.transitions,
	}
}

// Pressure returns the current pressure level.
func (p *Pool) Pressure() PressureLevel {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.levelLocked()
}

// Mapped returns the number of pages currently mapped.
func (p *Pool) Mapped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mapped
}

// Available returns the number of pages that could still be mapped.
func (p *Pool) Available() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity - p.mapped
}
