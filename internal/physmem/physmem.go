// Package physmem simulates the physical-memory side of the kernel VM
// system.
//
// The paper stresses that kernel-level allocators, unlike user-level ones,
// "must manage the virtual address space and physical memory explicitly
// and separately": when the coalesce-to-page layer frees the last block in
// a page, the physical page is returned to the system while the virtual
// page is retained and coalesced. This package is that "system": a finite
// pool of physical pages with map/unmap accounting. Exhaustion of the pool
// is what drives the allocator's low-memory path and the worst-case
// benchmark (Figure 9), and the map/unmap operation counts are what make
// large-block allocation measurably dearer in that figure.
package physmem

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoPages is returned by Map when physical memory is exhausted.
var ErrNoPages = errors.New("physmem: out of physical pages")

// Pool is a finite pool of physical pages. It is safe for concurrent use.
type Pool struct {
	mu        sync.Mutex
	capacity  int64
	mapped    int64
	highWater int64
	mapOps    uint64
	unmapOps  uint64
	failures  uint64
}

// NewPool returns a pool holding capacity physical pages.
func NewPool(capacity int64) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("physmem: invalid capacity %d", capacity))
	}
	return &Pool{capacity: capacity}
}

// Map claims n physical pages, backing freshly allocated virtual pages.
// It claims all n or none, returning ErrNoPages when fewer than n pages
// remain.
func (p *Pool) Map(n int64) error {
	if n <= 0 {
		panic(fmt.Sprintf("physmem: Map(%d)", n))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mapped+n > p.capacity {
		p.failures++
		return ErrNoPages
	}
	p.mapped += n
	p.mapOps += uint64(n)
	if p.mapped > p.highWater {
		p.highWater = p.mapped
	}
	return nil
}

// Unmap returns n physical pages to the system.
func (p *Pool) Unmap(n int64) {
	if n <= 0 {
		panic(fmt.Sprintf("physmem: Unmap(%d)", n))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mapped < n {
		panic(fmt.Sprintf("physmem: Unmap(%d) with only %d mapped", n, p.mapped))
	}
	p.mapped -= n
	p.unmapOps += uint64(n)
}

// Stats is a snapshot of pool accounting.
type Stats struct {
	Capacity  int64  // total physical pages
	Mapped    int64  // pages currently mapped
	HighWater int64  // maximum pages ever simultaneously mapped
	MapOps    uint64 // cumulative pages mapped
	UnmapOps  uint64 // cumulative pages unmapped
	Failures  uint64 // Map calls refused for lack of pages
}

// Stats returns a consistent snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Capacity:  p.capacity,
		Mapped:    p.mapped,
		HighWater: p.highWater,
		MapOps:    p.mapOps,
		UnmapOps:  p.unmapOps,
		Failures:  p.failures,
	}
}

// Mapped returns the number of pages currently mapped.
func (p *Pool) Mapped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mapped
}

// Available returns the number of pages that could still be mapped.
func (p *Pool) Available() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity - p.mapped
}
