// Package physmem simulates the physical-memory side of the kernel VM
// system.
//
// The paper stresses that kernel-level allocators, unlike user-level ones,
// "must manage the virtual address space and physical memory explicitly
// and separately": when the coalesce-to-page layer frees the last block in
// a page, the physical page is returned to the system while the virtual
// page is retained and coalesced. This package is that "system", split —
// as the kernel splits it — into two resources with independent budgets:
//
//   - Reserve / Unreserve move pages of *virtual* quota: address space a
//     client has claimed but that costs no physical frames. Reservations
//     are bounded only by the optional VA quota (SetVAQuota).
//   - Commit / Decommit move pages between reserved and *resident*:
//     committed pages consume physical frames out of the pool's capacity
//     and must lie within an existing reservation (resident <= reserved
//     always). Decommit releases the frames but keeps the reservation —
//     the madvise(DONTNEED) of this simulation.
//
// Map and Unmap remain as the fused legacy operations (reserve+commit,
// decommit+unreserve) for allocators that never separate the two.
// Exhaustion of physical capacity is what drives the allocator's
// low-memory path and the worst-case benchmark (Figure 9), and the
// commit/decommit operation counts are what make large-block allocation
// measurably dearer in that figure.
//
// The pool also carries the machine's memory-pressure model: optional
// low/min free-page watermarks divide its state into ok / low / critical
// pressure levels over free *physical* pages (capacity - resident; VA
// reservations do not move the needle), and a registered pressure
// function observes every level transition. With watermarks unset (the
// default) the pool reports PressureOK forever and behaves exactly as
// before.
package physmem

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoPages is returned by Commit (and Map) when physical memory is
// exhausted.
var ErrNoPages = errors.New("physmem: out of physical pages")

// ErrNoVA is returned by Reserve (and Map) when the optional virtual
// quota is exhausted. No amount of decommit helps: address space and
// physical frames are separate budgets.
var ErrNoVA = errors.New("physmem: virtual address quota exhausted")

// ErrBadCount is returned by every pool operation for a non-positive page
// count — a caller bug, but an unwindable one: no accounting has been
// touched, so the caller may recover. Panics are reserved for states
// where the accounting itself is provably corrupt (decommitting more
// pages than are resident, unreserving pages that are still resident).
var ErrBadCount = errors.New("physmem: non-positive page count")

// PressureLevel classifies how close the pool is to exhaustion.
type PressureLevel int32

const (
	// PressureOK: free pages above the low watermark (or no watermarks).
	PressureOK PressureLevel = iota
	// PressureLow: free pages at or below the low watermark.
	PressureLow
	// PressureCritical: free pages at or below the min watermark.
	PressureCritical
)

// String returns the level's conventional name.
func (l PressureLevel) String() string {
	switch l {
	case PressureOK:
		return "ok"
	case PressureLow:
		return "low"
	case PressureCritical:
		return "critical"
	}
	return fmt.Sprintf("PressureLevel(%d)", int32(l))
}

// Pool is a finite pool of physical pages plus a ledger of virtual
// reservations over them. It is safe for concurrent use.
type Pool struct {
	mu        sync.Mutex
	capacity  int64
	reserved  int64 // VA pages claimed (resident <= reserved)
	resident  int64 // pages physically committed
	vaQuota   int64 // cap on reserved; 0 = unlimited
	highWater int64 // max resident ever

	reserveOps   uint64
	unreserveOps uint64
	mapOps       uint64 // cumulative pages committed
	unmapOps     uint64 // cumulative pages decommitted
	failures     uint64
	quarantined  int64 // resident pages pinned for post-mortem (hardening)

	// Watermarks over *free* physical pages (capacity - resident); 0
	// disables the pressure model.
	lowWater    int64
	minWater    int64
	transitions uint64

	// onPressure observes level transitions; called outside mu, in the
	// order the transitions occurred.
	onPressure func(old, new PressureLevel)

	// mapHook, when set, may veto a Commit (and therefore a Map) — the
	// fault-injection seam for tests and kmembench pressure.
	mapHook func(n int64) error
}

// NewPool returns a pool holding capacity physical pages, no VA quota,
// and no watermarks (pressure model disabled).
func NewPool(capacity int64) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("physmem: invalid capacity %d", capacity))
	}
	return &Pool{capacity: capacity}
}

// SetVAQuota caps the total reserved pages; 0 removes the cap. The quota
// cannot be set below what is already reserved.
func (p *Pool) SetVAQuota(pages int64) error {
	if pages < 0 {
		return fmt.Errorf("physmem: negative VA quota %d", pages)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if pages != 0 && pages < p.reserved {
		return fmt.Errorf("physmem: VA quota %d below %d already reserved", pages, p.reserved)
	}
	p.vaQuota = pages
	return nil
}

// SetWatermarks enables the pressure model: the pool is at PressureLow
// when free pages drop to low or below, and PressureCritical at min or
// below. Setting both to 0 disables the model. Watermarks must satisfy
// 0 <= min <= low <= capacity.
func (p *Pool) SetWatermarks(low, min int64) error {
	if min < 0 || low < min || low > p.capacity {
		return fmt.Errorf("physmem: watermarks low=%d min=%d invalid for capacity %d",
			low, min, p.capacity)
	}
	p.mu.Lock()
	p.lowWater, p.minWater = low, min
	p.mu.Unlock()
	return nil
}

// SetPressureFunc registers f to observe every pressure-level transition.
// f runs outside the pool's lock, after the transition is visible, in
// transition order; it must be safe for concurrent use and must not call
// back into the pool.
func (p *Pool) SetPressureFunc(f func(old, new PressureLevel)) {
	p.mu.Lock()
	p.onPressure = f
	p.mu.Unlock()
}

// SetMapHook registers f to run during every Commit (and therefore every
// legacy Map) with the requested page count. A non-nil return fails the
// operation (counted as a failure) with every side effect unwound: the
// pages are released and the pressure level — including any transition
// the provisional claim fired — is restored before the error returns.
// This is the deterministic seam fault injection uses to force the
// exhaustion paths.
func (p *Pool) SetMapHook(f func(n int64) error) {
	p.mu.Lock()
	p.mapHook = f
	p.mu.Unlock()
}

// levelLocked computes the pressure level; caller holds mu.
func (p *Pool) levelLocked() PressureLevel {
	free := p.capacity - p.resident
	switch {
	case p.minWater > 0 && free <= p.minWater:
		return PressureCritical
	case p.lowWater > 0 && free <= p.lowWater:
		return PressureLow
	}
	return PressureOK
}

// Reserve claims n pages of virtual quota. Reservations consume no
// physical frames and never move the pressure level; they fail only
// against the optional VA quota (ErrNoVA), all or nothing.
func (p *Pool) Reserve(n int64) error {
	if n <= 0 {
		return fmt.Errorf("%w: Reserve(%d)", ErrBadCount, n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.vaQuota != 0 && p.reserved+n > p.vaQuota {
		p.failures++
		return ErrNoVA
	}
	p.reserved += n
	p.reserveOps += uint64(n)
	return nil
}

// Unreserve returns n pages of virtual quota. Unreserving below the
// resident count panics: committed pages must be decommitted first, and
// a violation means the caller's accounting is corrupt.
func (p *Pool) Unreserve(n int64) error {
	if n <= 0 {
		return fmt.Errorf("%w: Unreserve(%d)", ErrBadCount, n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.reserved-n < p.resident {
		panic(fmt.Sprintf("physmem: Unreserve(%d) with %d reserved and %d resident",
			n, p.reserved, p.resident))
	}
	p.reserved -= n
	p.unreserveOps += uint64(n)
	return nil
}

// Commit backs n reserved pages with physical frames, all or nothing:
// ErrNoPages when fewer than n frames remain. Committing beyond the
// reservation panics — the caller's reserve/commit accounting is corrupt.
//
// The map hook, if set, runs after the frames are provisionally claimed;
// a hook veto unwinds the claim completely, restoring the prior resident
// count and pressure level (firing the compensating transition so
// observers see symmetric raise/restore callbacks).
func (p *Pool) Commit(n int64) error {
	if n <= 0 {
		return fmt.Errorf("%w: Commit(%d)", ErrBadCount, n)
	}
	p.mu.Lock()
	if p.resident+n > p.reserved {
		reserved, resident := p.reserved, p.resident
		p.mu.Unlock()
		panic(fmt.Sprintf("physmem: Commit(%d) with %d reserved and %d resident",
			n, reserved, resident))
	}
	if p.resident+n > p.capacity {
		p.failures++
		p.mu.Unlock()
		return ErrNoPages
	}
	before := p.levelLocked()
	p.resident += n
	p.mapOps += uint64(n)
	if p.resident > p.highWater {
		p.highWater = p.resident
	}
	after := p.levelLocked()
	var f func(old, new PressureLevel)
	if after != before {
		p.transitions++
		f = p.onPressure
	}
	hook := p.mapHook
	p.mu.Unlock()
	if f != nil {
		f(before, after)
	}
	if hook == nil {
		return nil
	}
	err := hook(n)
	if err == nil {
		return nil
	}
	// Hook veto: unwind the provisional claim so the failed operation
	// leaves no trace — resident back down, the pages' cost uncounted,
	// and the pressure level restored via the compensating transition.
	p.mu.Lock()
	prev := p.levelLocked()
	p.resident -= n
	p.mapOps -= uint64(n)
	p.failures++
	now := p.levelLocked()
	var g func(old, new PressureLevel)
	if now != prev {
		p.transitions++
		g = p.onPressure
	}
	p.mu.Unlock()
	if g != nil {
		g(prev, now)
	}
	return err
}

// Decommit releases n resident pages' physical frames while keeping
// their reservation. A non-positive n returns ErrBadCount with no
// accounting change; decommitting more pages than are resident panics —
// at that point the caller's accounting is corrupt and there is nothing
// sound to unwind to.
func (p *Pool) Decommit(n int64) error {
	if n <= 0 {
		return fmt.Errorf("%w: Decommit(%d)", ErrBadCount, n)
	}
	p.mu.Lock()
	if p.resident < n {
		resident := p.resident
		p.mu.Unlock()
		panic(fmt.Sprintf("physmem: Decommit(%d) with only %d resident", n, resident))
	}
	before := p.levelLocked()
	p.resident -= n
	p.unmapOps += uint64(n)
	after := p.levelLocked()
	var f func(old, new PressureLevel)
	if after != before {
		p.transitions++
		f = p.onPressure
	}
	p.mu.Unlock()
	if f != nil {
		f(before, after)
	}
	return nil
}

// Map is the fused legacy operation: reserve n pages and commit them in
// one call, claiming all n or none. Allocators that never separate
// address space from residency (the baselines) use this and Unmap; for
// them reserved always equals resident.
func (p *Pool) Map(n int64) error {
	if n <= 0 {
		return fmt.Errorf("%w: Map(%d)", ErrBadCount, n)
	}
	if err := p.Reserve(n); err != nil {
		return err
	}
	if err := p.Commit(n); err != nil {
		if uerr := p.Unreserve(n); uerr != nil {
			panic(fmt.Sprintf("physmem: Map unwind: %v", uerr))
		}
		return err
	}
	return nil
}

// Unmap is the fused legacy operation: decommit n pages and release
// their reservation.
func (p *Pool) Unmap(n int64) error {
	if n <= 0 {
		return fmt.Errorf("%w: Unmap(%d)", ErrBadCount, n)
	}
	if err := p.Decommit(n); err != nil {
		return err
	}
	if err := p.Unreserve(n); err != nil {
		panic(fmt.Sprintf("physmem: Unmap unwind: %v", err))
	}
	return nil
}

// Quarantine records n resident pages as quarantined: still committed
// (they count against capacity and the pressure model exactly as
// before — that is the cost of keeping corrupt memory mapped for
// post-mortem) but pinned, never to be decommitted. It is bookkeeping
// only, called by the allocator's hardening layer on each containment;
// a negative n would indicate a caller bug and panics.
func (p *Pool) Quarantine(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("physmem: Quarantine(%d)", n))
	}
	p.mu.Lock()
	p.quarantined += n
	if p.quarantined > p.resident {
		q, r := p.quarantined, p.resident
		p.mu.Unlock()
		panic(fmt.Sprintf("physmem: %d pages quarantined with only %d resident", q, r))
	}
	p.mu.Unlock()
}

// Quarantined returns the number of pages pinned by Quarantine.
func (p *Pool) Quarantined() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quarantined
}

// Stats is a snapshot of pool accounting.
type Stats struct {
	Capacity     int64  // total physical pages
	Reserved     int64  // VA pages currently reserved
	Mapped       int64  // pages currently resident (committed)
	Free         int64  // physical pages still available (Capacity - Mapped)
	VAQuota      int64  // reserved-page cap (0 = unlimited)
	HighWater    int64  // maximum pages ever simultaneously resident
	MapOps       uint64 // cumulative pages committed
	UnmapOps     uint64 // cumulative pages decommitted
	ReserveOps   uint64 // cumulative pages reserved
	UnreserveOps uint64 // cumulative pages unreserved
	Failures     uint64 // commits/reserves refused (exhaustion or injected fault)
	Quarantined  int64  // resident pages pinned for post-mortem by the hardening layer

	// Pressure model (zero watermarks = model disabled, Pressure ok).
	LowWater    int64         // free-page low watermark
	MinWater    int64         // free-page min (critical) watermark
	Pressure    PressureLevel // current level
	Transitions uint64        // level changes since construction
}

// Stats returns a consistent snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Capacity:     p.capacity,
		Reserved:     p.reserved,
		Mapped:       p.resident,
		Free:         p.capacity - p.resident,
		VAQuota:      p.vaQuota,
		HighWater:    p.highWater,
		MapOps:       p.mapOps,
		UnmapOps:     p.unmapOps,
		ReserveOps:   p.reserveOps,
		UnreserveOps: p.unreserveOps,
		Failures:     p.failures,
		Quarantined:  p.quarantined,
		LowWater:     p.lowWater,
		MinWater:     p.minWater,
		Pressure:     p.levelLocked(),
		Transitions:  p.transitions,
	}
}

// Pressure returns the current pressure level.
func (p *Pool) Pressure() PressureLevel {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.levelLocked()
}

// Mapped returns the number of pages currently resident.
func (p *Pool) Mapped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resident
}

// Reserved returns the number of VA pages currently reserved.
func (p *Pool) Reserved() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reserved
}

// Available returns the number of pages that could still be committed.
func (p *Pool) Available() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity - p.resident
}
