package core

import (
	"testing"

	"kmem/internal/machine"
)

// newShedAlloc builds a minimal allocator for driving the shed rotation
// directly.
func newShedAlloc(t *testing.T) (*machine.Machine, *Allocator) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 2
	cfg.MemBytes = 16 << 20
	m := machine.New(cfg)
	a, err := New(m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	return m, a
}

// TestShedRotationAdversarialChurn is the regression test for the
// position-modulo cursor bug: between every rotation step an adversary
// unregisters and re-registers one cache, reshuffling slice positions so
// that position-based selection lands on the churned cache every time
// and starves its stable neighbor forever. The id-based cursor must
// visit the stable cache once per sweep regardless.
func TestShedRotationAdversarialChurn(t *testing.T) {
	m, a := newShedAlloc(t)
	c := m.CPU(0)

	var stableVisits, churnVisits int
	churnFn := func(*machine.CPU, bool) int { churnVisits++; return 0 }
	stableFn := func(*machine.CPU, bool) int { stableVisits++; return 0 }

	unregChurn := a.RegisterCacheShed(churnFn)
	unregStable := a.RegisterCacheShed(stableFn)
	defer unregStable()

	const steps = 40
	for i := 0; i < steps; i++ {
		// The adversary re-registers the churn cache before every step;
		// with position-modulo selection this kept the churned entry
		// under the cursor's position each step.
		unregChurn()
		unregChurn = a.RegisterCacheShed(churnFn)
		a.shedOne(c)
	}
	unregChurn()

	// Two registered caches: a fair rotation visits each on every other
	// step. Allow slack for sweep alignment but not starvation.
	if stableVisits < steps/2-1 {
		t.Fatalf("stable cache visited %d times in %d steps (churned cache: %d) — starved",
			stableVisits, steps, churnVisits)
	}
}

// TestShedRotationFullSweep checks the core guarantee: with N registered
// caches and no churn, N consecutive rotation increments visit every
// cache exactly once, in registration order, and the sweep wraps.
func TestShedRotationFullSweep(t *testing.T) {
	m, a := newShedAlloc(t)
	c := m.CPU(0)

	const n = 5
	visits := make([]int, n)
	var order []int
	for i := 0; i < n; i++ {
		i := i
		defer a.RegisterCacheShed(func(*machine.CPU, bool) int {
			visits[i]++
			order = append(order, i)
			return 0
		})()
	}
	for s := 0; s < 2*n; s++ {
		a.shedOne(c)
	}
	for i, v := range visits {
		if v != 2 {
			t.Errorf("cache %d visited %d times over two sweeps, want 2", i, v)
		}
	}
	for s := 0; s < 2*n; s++ {
		if order[s] != s%n {
			t.Fatalf("visit order %v: step %d hit cache %d, want %d", order, s, order[s], s%n)
		}
	}
}

// TestShedRotationMidSweepUnregister unregisters the cache the cursor
// would visit next; the sweep must skip to its successor without
// revisiting earlier caches or missing later ones.
func TestShedRotationMidSweepUnregister(t *testing.T) {
	m, a := newShedAlloc(t)
	c := m.CPU(0)

	visits := make(map[string]int)
	reg := func(name string) func() {
		return a.RegisterCacheShed(func(*machine.CPU, bool) int {
			visits[name]++
			return 0
		})
	}
	unregA := reg("a")
	unregB := reg("b")
	unregC := reg("c")
	defer unregA()
	defer unregC()

	a.shedOne(c) // visits a
	unregB()     // the cursor's next stop vanishes
	a.shedOne(c) // must visit c, not wrap to a
	a.shedOne(c) // wraps to a

	if visits["a"] != 2 || visits["b"] != 0 || visits["c"] != 1 {
		t.Fatalf("visits = %v, want a:2 b:0 c:1", visits)
	}
}

// TestReclaimStepShedsCaches drives the incremental reclaim rotation end
// to end (the PressureCritical path) and asserts registered caches are
// reached through it, including under churn.
func TestReclaimStepShedsCaches(t *testing.T) {
	m, a := newShedAlloc(t)
	c := m.CPU(0)

	var v1, v2 int
	unreg1 := a.RegisterCacheShed(func(*machine.CPU, bool) int { v1++; return 0 })
	defer unreg1()
	unreg2 := a.RegisterCacheShed(func(*machine.CPU, bool) int { v2++; return 0 })

	// Two full rotations, churning cache 2 mid-flight.
	steps := 2 * a.reclaimSteps()
	for i := 0; i < steps; i++ {
		if i == steps/2 {
			unreg2()
			unreg2 = a.RegisterCacheShed(func(*machine.CPU, bool) int { v2++; return 0 })
		}
		a.reclaimStep(c)
	}
	defer unreg2()

	if v1 == 0 {
		t.Error("cache 1 never shed through the reclaimStep rotation")
	}
	if v2 == 0 {
		t.Error("cache 2 never shed through the reclaimStep rotation")
	}
	if got := a.ReclaimStepsDone(); got != uint64(steps) {
		t.Errorf("ReclaimStepsDone = %d, want %d", got, steps)
	}
}
