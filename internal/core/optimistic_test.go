package core

import (
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// TestOptimisticOffCycleIdentity pins the opt-in contract of the
// optimistic fast paths: with Params.Rseq and Params.LockFree both off,
// the allocator replays the pre-optimistic cycle goldens byte for byte.
// pcpuRun/pcpuInterfere degenerate to the exact Acquire/body/Release
// sequences they replaced, and no lock-free charge is reachable.
func TestOptimisticOffCycleIdentity(t *testing.T) {
	assertGolden(t, "nodes=1 rseq/lockfree off",
		shardGoldenCycles(t, 1, Params{RadixSort: true, Rseq: false, LockFree: false}),
		goldenCyclesNodes1)
	assertGolden(t, "nodes=4 rseq/lockfree off",
		shardGoldenCycles(t, 4, Params{RadixSort: true, Rseq: false, LockFree: false, DisableRemoteShards: true}),
		goldenCyclesNodes4Routing)
}

// optimisticChurn drives every CPU through an alloc/hold/free churn of
// one size class and returns the allocator's stats snapshot.
func optimisticChurn(t *testing.T, m *machine.Machine, a *Allocator, opsPerCPU int) Stats {
	t.Helper()
	ncpu := m.NumCPUs()
	held := make([][]arena.Addr, ncpu)
	ops := make([]int, ncpu)
	m.Run(func(c *machine.CPU) bool {
		id := c.ID()
		if ops[id] >= opsPerCPU {
			for _, b := range held[id] {
				a.Free(c, b, 256)
			}
			held[id] = nil
			return false
		}
		ops[id]++
		b, err := a.Alloc(c, 256)
		if err != nil {
			t.Fatalf("cpu %d: %v", id, err)
		}
		held[id] = append(held[id], b)
		if len(held[id]) > 24 {
			a.Free(c, held[id][0], 256)
			held[id] = held[id][1:]
		}
		return true
	})
	return a.Stats(m.CPU(0))
}

func sumClassStats(st Stats) (restarts, casRetries, lockWait uint64) {
	for _, cs := range st.Classes {
		restarts += cs.RseqRestarts
		casRetries += cs.CASRetries
		lockWait += cs.LockWaitCycles
	}
	return
}

// TestRseqRestartsUnderJitter arms preemption jitter with an aggressive
// restart rate and checks that (a) sequences actually restart, (b) the
// allocator survives them — every critical section re-executes from the
// top, so the oracle invariants hold — and (c) the run is deterministic.
func TestRseqRestartsUnderJitter(t *testing.T) {
	run := func() (Stats, *Allocator, *machine.Machine) {
		cfg := machine.DefaultConfig()
		cfg.NumCPUs = 4
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = 1024
		m := machine.New(cfg)
		m.SetScheduleJitter(&machine.JitterConfig{Seed: 7, RestartEvery: 3})
		a, err := New(m, Params{RadixSort: true, Rseq: true})
		if err != nil {
			t.Fatal(err)
		}
		st := optimisticChurn(t, m, a, 800)
		return st, a, m
	}
	st, a, m := run()
	restarts, _, _ := sumClassStats(st)
	if restarts == 0 {
		t.Fatal("no rseq restarts under RestartEvery=3 jitter; the abort hook is not wired")
	}
	if mst := m.CPU(0).Stats(); mst.Restarts == 0 {
		t.Fatal("machine-level restart counter untouched")
	}
	checkOK(t, a)

	st2, _, _ := run()
	restarts2, _, _ := sumClassStats(st2)
	if restarts != restarts2 {
		t.Fatalf("restart count not deterministic: %d vs %d", restarts, restarts2)
	}
}

// TestRseqOffNoRestarts proves the jitter stream's restart dimension is
// only consumed inside Rseq.Run: with Rseq off the same jittered
// workload records zero restarts.
func TestRseqOffNoRestarts(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 4
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 1024
	m := machine.New(cfg)
	m.SetScheduleJitter(&machine.JitterConfig{Seed: 7, RestartEvery: 3})
	a, err := New(m, Params{RadixSort: true})
	if err != nil {
		t.Fatal(err)
	}
	st := optimisticChurn(t, m, a, 800)
	restarts, casRetries, _ := sumClassStats(st)
	if restarts != 0 || casRetries != 0 {
		t.Fatalf("optimistic counters moved with features off: restarts=%d casRetries=%d",
			restarts, casRetries)
	}
	checkOK(t, a)
}

// TestLockFreeCutsGlobalLockWait runs the same contended multi-CPU churn
// with the lock-based and the CAS-based global layer and checks the
// lock-free run (a) spends strictly fewer cycles spinning on locks,
// (b) stays consistent, and (c) still drains to the header-pages floor —
// parked pages included.
func TestLockFreeCutsGlobalLockWait(t *testing.T) {
	run := func(lockFree bool) (Stats, *Allocator, *machine.Machine) {
		cfg := machine.DefaultConfig()
		cfg.NumCPUs = 8
		cfg.Nodes = 2
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = 1024
		m := machine.New(cfg)
		a, err := New(m, Params{RadixSort: true, LockFree: lockFree})
		if err != nil {
			t.Fatal(err)
		}
		st := optimisticChurn(t, m, a, 1200)
		return st, a, m
	}
	lockedSt, _, _ := run(false)
	lfSt, a, m := run(true)
	_, _, lockedWait := sumClassStats(lockedSt)
	_, lfRetries, lfWait := sumClassStats(lfSt)
	if lockedWait == 0 {
		t.Fatal("locked baseline saw no lock contention; widen the churn")
	}
	if lfWait >= lockedWait {
		t.Errorf("lock-free global layer did not cut lock wait: %d >= %d cycles", lfWait, lockedWait)
	}
	_ = lfRetries // zero is legal: CAS conflicts need overlapping commits

	checkOK(t, a)
	c := m.CPU(0)
	a.DrainAll(c)
	checkOK(t, a)
	for _, cs := range a.classes {
		for _, pp := range cs.pages {
			pp.lk.Acquire(c)
			if n := len(pp.stk); n != 0 {
				t.Errorf("class %d: %d pages still parked after DrainAll", cs.size, n)
			}
			pp.lk.Release(c)
		}
	}
	if got := m.Phys().Mapped(); got != a.HeaderPages() {
		t.Fatalf("mapped = %d after DrainAll, want header floor %d", got, a.HeaderPages())
	}
}

// TestLockFreeParkedPageReuse checks the refill fast path actually
// consumes the per-node parked-page stack: overflowing a class's global
// capacity parks fully-free pages instead of unmapping them, and the
// next refill wave pops them back without a page carve.
func TestLockFreeParkedPageReuse(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 1
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 1024
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, LockFree: true})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	cls := a.classFor(256)

	parked := func() int {
		n := 0
		for _, pp := range a.classes[cls].pages {
			pp.lk.Acquire(c)
			n += len(pp.stk)
			pp.lk.Release(c)
		}
		return n
	}
	pageAllocs := func() uint64 { return a.Stats(c).Classes[cls].PageAllocs }

	const burst = 600
	held := make([]arena.Addr, 0, burst)
	for i := 0; i < burst; i++ {
		b, err := a.Alloc(c, 256)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, b)
	}
	for _, b := range held {
		a.Free(c, b, 256)
	}
	parkedStock := parked()
	if parkedStock == 0 {
		t.Fatal("freeing the burst parked no pages; the park branch is unreachable")
	}
	round1Carves := pageAllocs()

	for i := 0; i < burst; i++ {
		b, err := a.Alloc(c, 256)
		if err != nil {
			t.Fatal(err)
		}
		held[i] = b
	}
	if parked() != 0 {
		t.Errorf("%d pages still parked after realloc burst; refill is not popping the stack", parked())
	}
	// Every parked page popped is a page carve (map + zero + split) the
	// realloc burst did not pay for.
	round2Carves := pageAllocs() - round1Carves
	if round2Carves > round1Carves-uint64(parkedStock) {
		t.Errorf("realloc burst carved %d pages; parked stock of %d should cap it at %d",
			round2Carves, parkedStock, round1Carves-uint64(parkedStock))
	}
	for _, b := range held {
		a.Free(c, b, 256)
	}
	a.DrainAll(c)
	checkOK(t, a)
	if got := m.Phys().Mapped(); got != a.HeaderPages() {
		t.Fatalf("mapped = %d after DrainAll, want header floor %d", got, a.HeaderPages())
	}
}
