package core

import "kmem/internal/machine"

// This file is the allocator side of the typed object-cache layer
// (internal/objcache): caches of constructed objects sit above the
// cookie path and hold buffers the allocator considers allocated. Two
// hooks connect the layers without core importing objcache:
//
//   - RegisterCacheShed lets a cache participate in the reclaim and
//     pressure machinery: when the allocator needs memory back, it asks
//     every registered cache to shed constructed buffers (destructing
//     them and freeing their backing blocks) before — and in addition
//     to — its own drains.
//   - EmitCacheEvent routes the caches' slow-path events (EvCtorRun,
//     EvCacheShed) through the allocator's Hook so the event spine stays
//     the single observation point.
//
// With no caches registered every branch below is a nil/len-0 check on
// slow paths only, so the allocator remains cycle-identical to the
// pre-objcache goldens.

// CacheShedFunc is one cache's reclaim callback. A non-aggressive call
// asks for the cheap give-back — the cache's depot of full magazines is
// shrunk, destructing those cold constructed buffers and freeing their
// backing — while an aggressive call (the stop-the-world reclaim and
// DrainAll paths) also flushes the per-CPU magazines. It returns the
// number of buffers released to the allocator. The callback runs with no
// allocator locks held and may call Free/FreeCookie.
type CacheShedFunc func(c *machine.CPU, aggressive bool) int

type cacheShedEntry struct {
	id int
	fn CacheShedFunc
}

// RegisterCacheShed registers a cache shed callback with the reclaim and
// pressure layers and returns a function that unregisters it. Sheds run
// in registration order: on the stop-the-world reclaim path and DrainAll
// (aggressive), before Trim's decommit pass (non-aggressive, so depot
// buffers coalesce into trimmable spans), and as extra steps in the
// incremental reclaimStep rotation under PressureCritical.
func (a *Allocator) RegisterCacheShed(fn CacheShedFunc) func() {
	a.shedMu.Lock()
	a.shedSeq++
	id := a.shedSeq
	a.shedFns = append(a.shedFns, cacheShedEntry{id: id, fn: fn})
	a.shedMu.Unlock()
	return func() {
		a.shedMu.Lock()
		for i := range a.shedFns {
			if a.shedFns[i].id == id {
				a.shedFns = append(a.shedFns[:i], a.shedFns[i+1:]...)
				break
			}
		}
		a.shedMu.Unlock()
	}
}

// shedSnapshot returns the current shed callbacks (nil when no caches
// are registered — the common case, one uncharged mutex on slow paths).
func (a *Allocator) shedSnapshot() []cacheShedEntry {
	a.shedMu.Lock()
	fns := a.shedFns
	a.shedMu.Unlock()
	return fns
}

// shedCaches asks every registered cache to shed; returns buffers freed.
func (a *Allocator) shedCaches(c *machine.CPU, aggressive bool) int {
	var n int
	for _, e := range a.shedSnapshot() {
		n += e.fn(c, aggressive)
	}
	return n
}

// numShedders reports the registered cache count, for the reclaimStep
// rotation.
func (a *Allocator) numShedders() int {
	a.shedMu.Lock()
	n := len(a.shedFns)
	a.shedMu.Unlock()
	return n
}

// shedOne runs the i'th registered cache's non-aggressive shed — one
// increment of the reclaimStep rotation. Registration order can shift
// between steps; the cursor just needs every cache visited over a sweep.
func (a *Allocator) shedOne(c *machine.CPU, i int) {
	fns := a.shedSnapshot()
	if len(fns) == 0 {
		return
	}
	fns[i%len(fns)].fn(c, false)
}

// EmitCacheEvent pushes an object-cache event (EvCtorRun, EvCacheShed)
// through the allocator's Hook on behalf of the objcache layer. Cache
// events are classless (-1): a cache's backing class is its own affair.
// Like every Hook emission this must only be called on slow paths.
func (a *Allocator) EmitCacheEvent(ev LayerEvent, n int) {
	a.emit(-1, ev, n)
}
