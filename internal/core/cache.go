package core

import "kmem/internal/machine"

// This file is the allocator side of the typed object-cache layer
// (internal/objcache): caches of constructed objects sit above the
// cookie path and hold buffers the allocator considers allocated. Two
// hooks connect the layers without core importing objcache:
//
//   - RegisterCacheShed lets a cache participate in the reclaim and
//     pressure machinery: when the allocator needs memory back, it asks
//     every registered cache to shed constructed buffers (destructing
//     them and freeing their backing blocks) before — and in addition
//     to — its own drains.
//   - EmitCacheEvent routes the caches' slow-path events (EvCtorRun,
//     EvCacheShed) through the allocator's Hook so the event spine stays
//     the single observation point.
//
// With no caches registered every branch below is a nil/len-0 check on
// slow paths only, so the allocator remains cycle-identical to the
// pre-objcache goldens.

// CacheShedFunc is one cache's reclaim callback. A non-aggressive call
// asks for the cheap give-back — the cache's depot of full magazines is
// shrunk, destructing those cold constructed buffers and freeing their
// backing — while an aggressive call (the stop-the-world reclaim and
// DrainAll paths) also flushes the per-CPU magazines. It returns the
// number of buffers released to the allocator. The callback runs with no
// allocator locks held and may call Free/FreeCookie.
type CacheShedFunc func(c *machine.CPU, aggressive bool) int

type cacheShedEntry struct {
	id int
	fn CacheShedFunc
}

// RegisterCacheShed registers a cache shed callback with the reclaim and
// pressure layers and returns a function that unregisters it. Sheds run
// in registration order: on the stop-the-world reclaim path and DrainAll
// (aggressive), before Trim's decommit pass (non-aggressive, so depot
// buffers coalesce into trimmable spans), and as extra steps in the
// incremental reclaimStep rotation under PressureCritical.
func (a *Allocator) RegisterCacheShed(fn CacheShedFunc) func() {
	a.shedMu.Lock()
	a.shedSeq++
	id := a.shedSeq
	a.shedFns = append(a.shedFns, cacheShedEntry{id: id, fn: fn})
	a.shedMu.Unlock()
	return func() {
		a.shedMu.Lock()
		for i := range a.shedFns {
			if a.shedFns[i].id == id {
				a.shedFns = append(a.shedFns[:i], a.shedFns[i+1:]...)
				break
			}
		}
		a.shedMu.Unlock()
	}
}

// shedSnapshot returns the current shed callbacks (nil when no caches
// are registered — the common case, one uncharged mutex on slow paths).
func (a *Allocator) shedSnapshot() []cacheShedEntry {
	a.shedMu.Lock()
	fns := a.shedFns
	a.shedMu.Unlock()
	return fns
}

// shedCaches asks every registered cache to shed; returns buffers freed.
func (a *Allocator) shedCaches(c *machine.CPU, aggressive bool) int {
	var n int
	for _, e := range a.shedSnapshot() {
		n += e.fn(c, aggressive)
	}
	return n
}

// numShedders reports the registered cache count, for the reclaimStep
// rotation.
func (a *Allocator) numShedders() int {
	a.shedMu.Lock()
	n := len(a.shedFns)
	a.shedMu.Unlock()
	return n
}

// shedOne runs one registered cache's non-aggressive shed — one
// increment of the reclaimStep rotation. The rotation works a sweep
// queue of registration ids, snapshotted whenever the previous sweep is
// exhausted: every cache registered at sweep start (and still registered
// at its turn) is visited exactly once per sweep, and ids popped for
// caches that unregistered mid-sweep are skipped. Ids are stable under
// churn, so no amount of unregister/re-register reshuffling between
// steps can starve a cache that stays registered — the position-modulo
// selection this replaces could land on the same slot every step while a
// neighbor was never visited.
func (a *Allocator) shedOne(c *machine.CPU) {
	a.shedMu.Lock()
	var fn CacheShedFunc
	for fn == nil {
		if len(a.shedQueue) == 0 {
			if len(a.shedFns) == 0 {
				a.shedMu.Unlock()
				return
			}
			for _, e := range a.shedFns {
				a.shedQueue = append(a.shedQueue, e.id)
			}
		}
		id := a.shedQueue[0]
		a.shedQueue = a.shedQueue[1:]
		for _, e := range a.shedFns {
			if e.id == id {
				fn = e.fn
				break
			}
		}
	}
	a.shedMu.Unlock()
	fn(c, false)
}

// EmitCacheEvent pushes an object-cache event (EvCtorRun, EvCacheShed)
// through the allocator's Hook on behalf of the objcache layer. Cache
// events are classless (-1): a cache's backing class is its own affair.
// Like every Hook emission this must only be called on slow paths.
func (a *Allocator) EmitCacheEvent(ev LayerEvent, n int) {
	a.emit(-1, ev, n)
}
