package core

import (
	"math/rand"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
	"kmem/internal/workload"
)

// TestSimStressMixedSizes drives 8 simulated CPUs through 200k mixed
// operations with periodic full audits and block-conservation checks:
// for every class, blocks handed out by the page layer must equal blocks
// returned plus blocks cached plus blocks live.
func TestSimStressMixedSizes(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 8
	cfg.MemBytes = 64 << 20
	cfg.PhysPages = 8192
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, Poison: true})
	if err != nil {
		t.Fatal(err)
	}

	type held struct {
		b    arena.Addr
		size uint64
	}
	liveByCPU := make([][]held, 8)
	liveCount := make([]map[int]int, 8) // per-CPU, per-class live blocks
	for i := range liveCount {
		liveCount[i] = map[int]int{}
	}
	rngs := make([]*workloadRand, 8)
	for i := range rngs {
		rngs[i] = &workloadRand{r: workload.NewRand(int64(i + 77))}
	}
	dist := workload.NewChoice(
		[]uint64{16, 40, 64, 100, 256, 700, 1024, 3000, 4096, 9000},
		[]int{8, 6, 6, 5, 4, 3, 3, 2, 2, 1})

	ops := make([]int, 8)
	audit := 0
	m.Run(func(c *machine.CPU) bool {
		id := c.ID()
		if ops[id] >= 25000 {
			return false
		}
		ops[id]++
		rng := rngs[id]
		live := liveByCPU[id]
		if len(live) == 0 || (rng.intn(7) < 4 && len(live) < 200) {
			size := dist.Next(rng.r)
			b, err := a.Alloc(c, size)
			if err != nil {
				return true // transient exhaustion is legal
			}
			if size <= uint64(a.MaxSmall()) {
				liveCount[id][a.classFor(size)]++
			}
			liveByCPU[id] = append(live, held{b, size})
		} else {
			i := rng.intn(len(live))
			h := live[i]
			// A third of the frees happen on the next CPU over — but in
			// the deterministic sim a CPU may only touch its own handle,
			// so model it by handing the block to that CPU's list and
			// letting it free later. Free locally here.
			a.Free(c, h.b, h.size)
			if h.size <= uint64(a.MaxSmall()) {
				liveCount[id][a.classFor(h.size)]--
			}
			live[i] = live[len(live)-1]
			liveByCPU[id] = live[:len(live)-1]
		}
		// Periodic audits from CPU 0's perspective; the sim is
		// single-goroutine so this is safe mid-run.
		if id == 0 && ops[0]%5000 == 0 {
			audit++
			if err := a.CheckConsistency(); err != nil {
				t.Fatalf("audit %d: %v", audit, err)
			}
			assertConservation(t, a, m, liveCount)
		}
		return true
	})
	if audit == 0 {
		t.Fatal("no audits ran")
	}

	for id, live := range liveByCPU {
		c := m.CPU(id)
		for _, h := range live {
			a.Free(c, h.b, h.size)
		}
	}
	a.DrainAll(m.CPU(0))
	checkOK(t, a)
	st := a.Stats(m.CPU(0))
	if st.Phys.Mapped != int64(8*st.VM.VmblkCreates) {
		t.Fatalf("leak after full free: %d mapped, %d vmblks", st.Phys.Mapped, st.VM.VmblkCreates)
	}
}

// assertConservation checks per-class block conservation:
// pageGets - pagePuts == cached + live.
func assertConservation(t *testing.T, a *Allocator, m *machine.Machine, liveCount []map[int]int) {
	t.Helper()
	st := a.Stats(m.CPU(0))
	for cls, cs := range st.Classes {
		live := 0
		for _, lc := range liveCount {
			live += lc[cls]
		}
		outstanding := int(cs.BlockGets) - int(cs.BlockPuts)
		cached := cs.HeldPerCPU + cs.HeldGlobal
		if outstanding != cached+live {
			t.Fatalf("class %d (size %d): %d outstanding from page layer != %d cached + %d live",
				cls, cs.Size, outstanding, cached, live)
		}
	}
}

// workloadRand is a tiny wrapper so the closure reads naturally.
type workloadRand struct{ r *rand.Rand }

func (w *workloadRand) intn(n int) int { return w.r.Intn(n) }
