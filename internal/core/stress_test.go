package core

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
	"kmem/internal/workload"
)

// TestSimStressMixedSizes drives 8 simulated CPUs through 200k mixed
// operations with periodic full audits and block-conservation checks:
// for every class, blocks handed out by the page layer must equal blocks
// returned plus blocks cached plus blocks live.
func TestSimStressMixedSizes(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 8
	cfg.MemBytes = 64 << 20
	cfg.PhysPages = 8192
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, Poison: true})
	if err != nil {
		t.Fatal(err)
	}

	type held struct {
		b    arena.Addr
		size uint64
	}
	liveByCPU := make([][]held, 8)
	liveCount := make([]map[int]int, 8) // per-CPU, per-class live blocks
	for i := range liveCount {
		liveCount[i] = map[int]int{}
	}
	rngs := make([]*workloadRand, 8)
	for i := range rngs {
		rngs[i] = &workloadRand{r: workload.NewRand(int64(i + 77))}
	}
	dist := workload.NewChoice(
		[]uint64{16, 40, 64, 100, 256, 700, 1024, 3000, 4096, 9000},
		[]int{8, 6, 6, 5, 4, 3, 3, 2, 2, 1})

	ops := make([]int, 8)
	audit := 0
	m.Run(func(c *machine.CPU) bool {
		id := c.ID()
		if ops[id] >= 25000 {
			return false
		}
		ops[id]++
		rng := rngs[id]
		live := liveByCPU[id]
		if len(live) == 0 || (rng.intn(7) < 4 && len(live) < 200) {
			size := dist.Next(rng.r)
			b, err := a.Alloc(c, size)
			if err != nil {
				return true // transient exhaustion is legal
			}
			if size <= uint64(a.MaxSmall()) {
				liveCount[id][a.classFor(size)]++
			}
			liveByCPU[id] = append(live, held{b, size})
		} else {
			i := rng.intn(len(live))
			h := live[i]
			// A third of the frees happen on the next CPU over — but in
			// the deterministic sim a CPU may only touch its own handle,
			// so model it by handing the block to that CPU's list and
			// letting it free later. Free locally here.
			a.Free(c, h.b, h.size)
			if h.size <= uint64(a.MaxSmall()) {
				liveCount[id][a.classFor(h.size)]--
			}
			live[i] = live[len(live)-1]
			liveByCPU[id] = live[:len(live)-1]
		}
		// Periodic audits from CPU 0's perspective; the sim is
		// single-goroutine so this is safe mid-run.
		if id == 0 && ops[0]%5000 == 0 {
			audit++
			if err := a.CheckConsistency(); err != nil {
				t.Fatalf("audit %d: %v", audit, err)
			}
			assertConservation(t, a, m, liveCount)
		}
		return true
	})
	if audit == 0 {
		t.Fatal("no audits ran")
	}

	for id, live := range liveByCPU {
		c := m.CPU(id)
		for _, h := range live {
			a.Free(c, h.b, h.size)
		}
	}
	a.DrainAll(m.CPU(0))
	checkOK(t, a)
	st := a.Stats(m.CPU(0))
	if st.Phys.Mapped != int64(8*st.VM.VmblkCreates) {
		t.Fatalf("leak after full free: %d mapped, %d vmblks", st.Phys.Mapped, st.VM.VmblkCreates)
	}
}

// assertConservation checks per-class block conservation:
// pageGets - pagePuts == cached + live.
func assertConservation(t *testing.T, a *Allocator, m *machine.Machine, liveCount []map[int]int) {
	t.Helper()
	st := a.Stats(m.CPU(0))
	for cls, cs := range st.Classes {
		live := 0
		for _, lc := range liveCount {
			live += lc[cls]
		}
		outstanding := int(cs.BlockGets) - int(cs.BlockPuts)
		cached := cs.HeldPerCPU + cs.HeldGlobal
		if outstanding != cached+live {
			t.Fatalf("class %d (size %d): %d outstanding from page layer != %d cached + %d live",
				cls, cs.Size, outstanding, cached, live)
		}
	}
}

// workloadRand is a tiny wrapper so the closure reads naturally.
type workloadRand struct{ r *rand.Rand }

func (w *workloadRand) intn(n int) int { return w.r.Intn(n) }

// classCounters extracts the monotonically-nondecreasing counters from a
// ClassStats (everything except the gauges Target/GblTarget/Held* and
// the lock statistics).
func classCounters(cs ClassStats) [16]uint64 {
	return [16]uint64{
		cs.Allocs, cs.Frees, cs.AllocRefills, cs.FreeSpills,
		cs.GlobalGets, cs.GlobalPuts, cs.GlobalRefills, cs.GlobalSpills,
		cs.BlockGets, cs.BlockPuts, cs.PageAllocs, cs.PageFrees,
		cs.TargetGrows, cs.TargetShrinks, cs.GblTargetGrows, cs.GblTargetShrinks,
	}
}

// TestStatsRelaxedSnapshotInvariants asserts the documented semantics of
// Allocator.Stats under concurrency (see the Stats doc comment): the
// snapshot is relaxed — not one atomic cut across layers — but every
// counter is monotonically nondecreasing between successive snapshots,
// and a quiescent snapshot is exact. Runs in Native mode with the
// adaptive controller on, so the race detector also sweeps the
// controller and the spine.
func TestStatsRelaxedSnapshotInvariants(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.Native
	cfg.NumCPUs = 4
	cfg.MemBytes = 32 << 20
	cfg.PhysPages = 4096
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, Adaptive: &AdaptiveConfig{}})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	done := make(chan struct{}, 3)
	for i := 1; i < 4; i++ {
		go func(c *machine.CPU) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(c.ID())))
			var held []arena.Addr
			var sizes []uint64
			for {
				select {
				case <-stop:
					for j, b := range held {
						a.Free(c, b, sizes[j])
					}
					return
				default:
				}
				if len(held) < 64 && rng.Intn(3) != 0 {
					sz := uint64(16 << rng.Intn(6))
					b, err := a.Alloc(c, sz)
					if err != nil {
						t.Errorf("alloc: %v", err)
						return
					}
					held = append(held, b)
					sizes = append(sizes, sz)
				} else if len(held) > 0 {
					j := rng.Intn(len(held))
					a.Free(c, held[j], sizes[j])
					held[j] = held[len(held)-1]
					sizes[j] = sizes[len(sizes)-1]
					held = held[:len(held)-1]
					sizes = sizes[:len(sizes)-1]
				}
			}
		}(m.CPU(i))
	}

	c0 := m.CPU(0)
	prev := a.Stats(c0)
	for iter := 0; iter < 300; iter++ {
		cur := a.Stats(c0)
		if len(cur.Classes) != len(prev.Classes) {
			t.Fatalf("class count changed: %d -> %d", len(prev.Classes), len(cur.Classes))
		}
		for cls := range cur.Classes {
			p, q := classCounters(prev.Classes[cls]), classCounters(cur.Classes[cls])
			for f := range q {
				if q[f] < p[f] {
					t.Fatalf("iter %d class %d: counter %d went backwards: %d -> %d",
						iter, cls, f, p[f], q[f])
				}
			}
		}
		pv, qv := prev.VM, cur.VM
		for _, pair := range [][2]uint64{
			{pv.SpanAllocs, qv.SpanAllocs}, {pv.SpanFrees, qv.SpanFrees},
			{pv.VmblkCreates, qv.VmblkCreates}, {pv.LargeAllocs, qv.LargeAllocs},
			{pv.LargeFrees, qv.LargeFrees}, {pv.PagesMapped, qv.PagesMapped},
			{pv.PagesUnmap, qv.PagesUnmap}, {pv.MapFailures, qv.MapFailures},
		} {
			if pair[1] < pair[0] {
				t.Fatalf("iter %d: VM counter went backwards: %d -> %d", iter, pair[0], pair[1])
			}
		}
		if cur.Reclaims < prev.Reclaims {
			t.Fatalf("iter %d: reclaims went backwards", iter)
		}
		prev = cur
	}
	close(stop)
	for i := 0; i < 3; i++ {
		<-done
	}

	// Quiescent: the snapshot is exact — per-class conservation with no
	// live blocks, and everything drains back to the page layer.
	a.DrainAll(c0)
	st := a.Stats(c0)
	for cls, cs := range st.Classes {
		if cs.Allocs != cs.Frees {
			t.Errorf("class %d: %d allocs != %d frees at quiescence", cls, cs.Allocs, cs.Frees)
		}
		if cs.BlockGets != cs.BlockPuts {
			t.Errorf("class %d: %d block gets != %d block puts after drain", cls, cs.BlockGets, cs.BlockPuts)
		}
		if cs.HeldPerCPU != 0 || cs.HeldGlobal != 0 {
			t.Errorf("class %d: blocks still cached after drain: %d percpu, %d global",
				cls, cs.HeldPerCPU, cs.HeldGlobal)
		}
	}
	checkOK(t, a)
}

// TestNativeReclaimAtExhaustion runs several goroutines allocating at
// arena exhaustion while the low-memory reclaim path drains caches
// underneath them. It verifies the paper's design goal 5 under real
// concurrency: no block is ever lost, and ErrNoMemory comes back only
// when physical memory is truly exhausted — i.e. when the blocks live at
// the callers account for (nearly) every mappable page.
func TestNativeReclaimAtExhaustion(t *testing.T) {
	const (
		cpus      = 4
		physPages = 96
		blockSize = 256
		holdMax   = 600 // per goroutine; 4*600 >> capacity, forcing exhaustion
	)
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.Native
	cfg.NumCPUs = cpus
	cfg.MemBytes = 32 << 20
	cfg.PhysPages = physPages
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true})
	if err != nil {
		t.Fatal(err)
	}

	var live atomic.Int64             // blocks currently held by the goroutines
	observed := make([][]int64, cpus) // live count at each ErrNoMemory, per CPU
	held := make([][]arena.Addr, cpus)

	// phase runs f concurrently on every CPU and barriers. The barriers
	// matter: without them the Go scheduler can serialize fast goroutine
	// bodies, and four goroutines that each hold up to holdMax blocks in
	// turn never exceed capacity together.
	phase := func(f func(id int, c *machine.CPU)) {
		var wg sync.WaitGroup
		for i := 0; i < cpus; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				f(id, m.CPU(id))
			}(i)
		}
		wg.Wait()
	}
	tryAlloc := func(id int, c *machine.CPU) bool {
		b, err := a.Alloc(c, blockSize)
		if err == nil {
			held[id] = append(held[id], b)
			live.Add(1)
			return true
		}
		if !errors.Is(err, ErrNoMemory) {
			t.Errorf("unexpected error: %v", err)
		}
		observed[id] = append(observed[id], live.Load())
		return false
	}
	freeOne := func(id int, c *machine.CPU, j int) {
		h := held[id]
		a.Free(c, h[j], blockSize)
		live.Add(-1)
		h[j] = h[len(h)-1]
		held[id] = h[:len(h)-1]
	}

	// Phase 1 — ramp: everyone allocates toward holdMax at once. Combined
	// demand (4*600) far exceeds capacity (~1408 blocks), so the slowest
	// rampers must hit ErrNoMemory while the others hold their blocks.
	phase(func(id int, c *machine.CPU) {
		for len(held[id]) < holdMax {
			if !tryAlloc(id, c) {
				return
			}
		}
	})

	// Phase 2 — churn at the wall: frees and allocations race with the
	// reclaim path at full memory pressure.
	phase(func(id int, c *machine.CPU) {
		rng := rand.New(rand.NewSource(int64(1000 + id)))
		for op := 0; op < 3000; op++ {
			if n := len(held[id]); n > 0 && rng.Intn(2) == 0 {
				freeOne(id, c, rng.Intn(n))
			} else {
				tryAlloc(id, c)
			}
		}
	})

	// Phase 3 — release everything.
	phase(func(id int, c *machine.CPU) {
		for len(held[id]) > 0 {
			freeOne(id, c, len(held[id])-1)
		}
	})

	a.DrainAll(m.CPU(0))
	checkOK(t, a)
	st := a.Stats(m.CPU(0))

	// The workload must actually have hit the wall, or the test proves
	// nothing.
	total := 0
	for _, obs := range observed {
		total += len(obs)
	}
	if total == 0 {
		t.Fatal("workload never exhausted memory; tighten physPages")
	}
	if st.Reclaims == 0 {
		t.Fatal("exhaustion never triggered the reclaim path")
	}

	// ErrNoMemory only when truly empty: at each failure, caller-held
	// blocks must account for nearly every mappable page. Each vmblk
	// spends 8 pages on headers; the slack absorbs blocks in flight on
	// other CPUs (frees not yet counted, caches refilled between the
	// failing CPU's reclaim and its final retry).
	blocksPerPage := int64(m.Config().PageBytes / blockSize)
	capacity := (physPages - 8*int64(st.VM.VmblkCreates)) * blocksPerPage
	const slack = 384
	for cpu, obs := range observed {
		for _, liveSeen := range obs {
			if liveSeen < capacity-slack {
				t.Errorf("cpu %d: ErrNoMemory with only %d live blocks (capacity %d): blocks were lost or stranded",
					cpu, liveSeen, capacity)
			}
		}
	}

	// No lost blocks: everything freed, drained, and unmapped except the
	// vmblk headers.
	if live.Load() != 0 {
		t.Fatalf("accounting bug in test: %d live", live.Load())
	}
	if st.Phys.Mapped != 8*int64(st.VM.VmblkCreates) {
		t.Fatalf("leak after full free: %d pages mapped, %d vmblks", st.Phys.Mapped, st.VM.VmblkCreates)
	}
}
