package core

import (
	"bytes"
	"strings"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// runOscillation drives one simulated CPU through bursts of burst
// allocations followed by burst frees of 128-byte blocks — the
// oscillating worst case for a cache sized by a static target — and
// returns the 128-byte class index plus per-burst samples of the
// class's (target, gbltarget).
func runOscillation(t *testing.T, a *Allocator, m *machine.Machine, bursts, burst int) (int, [][2]int) {
	t.Helper()
	ck, err := a.GetCookie(128)
	if err != nil {
		t.Fatal(err)
	}
	cls := a.classFor(128)
	c := m.CPU(0)
	held := make([]arena.Addr, 0, burst)
	samples := make([][2]int, 0, bursts)
	for b := 0; b < bursts; b++ {
		for i := 0; i < burst; i++ {
			blk, err := a.AllocCookie(c, ck)
			if err != nil {
				t.Fatalf("burst %d: %v", b, err)
			}
			held = append(held, blk)
		}
		for _, blk := range held {
			a.FreeCookie(c, blk, ck)
		}
		held = held[:0]
		samples = append(samples, [2]int{a.Target(cls), a.GblTarget(cls)})
	}
	return cls, samples
}

// TestAdaptiveConvergesOnOscillation is the deterministic-sim acceptance
// test for the adaptive controller: on a steady oscillating workload
// whose amplitude exceeds the static configuration's entire cached
// capacity, the controller must (a) beat the fixed heuristic's combined
// miss rate, and (b) converge — the targets stop moving rather than
// limit-cycling (the ratchet floor guarantees this; see adaptive.go).
func TestAdaptiveConvergesOnOscillation(t *testing.T) {
	const bursts, burst = 600, 400

	newSim := func(p Params) (*Allocator, *machine.Machine) {
		cfg := machine.DefaultConfig()
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = 2048
		m := machine.New(cfg)
		p.RadixSort = true
		a, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		return a, m
	}

	fixedA, fixedM := newSim(Params{})
	fixedCls, fixedSamples := runOscillation(t, fixedA, fixedM, bursts, burst)
	fixed := fixedA.Stats(fixedM.CPU(0)).Classes[fixedCls]

	adA, adM := newSim(Params{Adaptive: &AdaptiveConfig{}})
	adCls, adSamples := runOscillation(t, adA, adM, bursts, burst)
	ad := adA.Stats(adM.CPU(0)).Classes[adCls]

	// The fixed heuristic must genuinely be in trouble here, or the
	// comparison is vacuous: every burst overruns its caches into the
	// coalesce-to-page layer.
	if fixed.CombinedAllocMissRate() == 0 {
		t.Fatal("workload does not stress the fixed configuration; widen the burst")
	}
	for _, s := range fixedSamples {
		if s != fixedSamples[0] {
			t.Fatalf("fixed targets moved: %v -> %v", fixedSamples[0], s)
		}
	}

	// (a) Combined miss rate well below the fixed baseline (ISSUE
	// acceptance: "lower combined miss rate"). The probe runs show ~40x;
	// require 4x so the assertion is robust to tuning.
	if ad.CombinedAllocMissRate() >= fixed.CombinedAllocMissRate()/4 {
		t.Errorf("combined alloc miss rate: adaptive %.5f not well below fixed %.5f",
			ad.CombinedAllocMissRate(), fixed.CombinedAllocMissRate())
	}
	if ad.CombinedFreeMissRate() >= fixed.CombinedFreeMissRate()/4 {
		t.Errorf("combined free miss rate: adaptive %.5f not well below fixed %.5f",
			ad.CombinedFreeMissRate(), fixed.CombinedFreeMissRate())
	}
	// The per-CPU layer benefits too: the grown target bounds its miss
	// rate lower than the static guess achieves.
	if ad.AllocMissRate() >= fixed.AllocMissRate() {
		t.Errorf("per-CPU miss rate: adaptive %.4f not below fixed %.4f",
			ad.AllocMissRate(), fixed.AllocMissRate())
	}

	// The controller actually acted, and grew within bounds.
	if ad.TargetGrows == 0 {
		t.Error("controller never grew target on a workload that demands it")
	}
	defaults := AdaptiveConfig{}.withDefaults()
	if ad.Target <= fixed.Target || ad.Target > defaults.MaxTarget {
		t.Errorf("final target %d not in (%d, %d]", ad.Target, fixed.Target, defaults.MaxTarget)
	}

	// (b) Convergence: over the last quarter of the run both knobs are
	// pinned — the same workload no longer produces decisions. The grow
	// ratchet (floor) is what makes this a guarantee rather than a hope.
	tail := adSamples[len(adSamples)*3/4:]
	for _, s := range tail {
		if s != tail[0] {
			t.Fatalf("controller still oscillating in final quarter: %v -> %v", tail[0], s)
		}
	}
	if tail[0][0] != ad.Target || tail[0][1] != ad.GblTarget {
		t.Fatalf("final stats targets %d/%d disagree with converged samples %v",
			ad.Target, ad.GblTarget, tail[0])
	}

	// Determinism: an identical run reproduces the identical trajectory.
	adA2, adM2 := newSim(Params{Adaptive: &AdaptiveConfig{}})
	_, adSamples2 := runOscillation(t, adA2, adM2, bursts, burst)
	for i := range adSamples {
		if adSamples[i] != adSamples2[i] {
			t.Fatalf("burst %d: trajectory not deterministic: %v vs %v",
				i, adSamples[i], adSamples2[i])
		}
	}

	checkOK(t, adA)
}

// TestAdaptiveRespectsBounds pins both knobs with Min==Max and checks
// the controller never moves them even under heavy miss pressure.
func TestAdaptiveRespectsBounds(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 2048
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, Adaptive: &AdaptiveConfig{
		MinTarget: 5, MaxTarget: 5, MinGblTarget: 4, MaxGblTarget: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}
	cls, samples := runOscillation(t, a, m, 100, 400)
	for _, s := range samples {
		if s != [2]int{5, 4} {
			t.Fatalf("pinned targets moved: %v", s)
		}
	}
	st := a.Stats(m.CPU(0)).Classes[cls]
	if st.TargetGrows+st.TargetShrinks+st.GblTargetGrows+st.GblTargetShrinks != 0 {
		t.Fatalf("decisions recorded despite pinned bounds: %+v", st)
	}
}

// TestEventSpineMatchesStats checks that a Hook observes exactly the
// totals Stats assembles from the per-structure counters — the two
// consumers see the same spine. Events emitted once per operation must
// match operation counters; events that carry block counts (EvBlockGet,
// EvBlockPut) must match block counters.
func TestEventSpineMatchesStats(t *testing.T) {
	var events EventCounter
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 2
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 64 // tight enough to force a reclaim
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, Hook: events.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)

	var held []arena.Addr
	for i := 0; i < 4000; i++ {
		b, err := a.Alloc(c, 256)
		if err != nil {
			break // exhaustion after reclaim is fine; it exercises EvReclaim
		}
		held = append(held, b)
		if len(held) > 48 && i%3 == 0 {
			a.Free(c, held[0], 256)
			held = held[1:]
		}
	}
	for _, b := range held {
		a.Free(c, b, 256)
	}
	a.DrainAll(c)

	st := a.Stats(c)
	var sum ClassStats
	for _, cs := range st.Classes {
		sum.AllocRefills += cs.AllocRefills
		sum.FreeSpills += cs.FreeSpills
		sum.GlobalGets += cs.GlobalGets
		sum.GlobalPuts += cs.GlobalPuts
		sum.BlockGets += cs.BlockGets
		sum.BlockPuts += cs.BlockPuts
		sum.PageAllocs += cs.PageAllocs
		sum.PageFrees += cs.PageFrees
	}
	check := func(name string, hook, stats uint64) {
		t.Helper()
		if hook != stats {
			t.Errorf("%s: hook saw %d, stats says %d", name, hook, stats)
		}
	}
	check("global gets", events.Count(EvGlobalGet), sum.GlobalGets)
	check("global puts", events.Count(EvGlobalPut), sum.GlobalPuts)
	check("block gets", events.Count(EvBlockGet), sum.BlockGets)
	check("block puts", events.Count(EvBlockPut), sum.BlockPuts)
	check("page carves", events.Count(EvPageCarve), sum.PageAllocs)
	check("page frees", events.Count(EvPageFree), sum.PageFrees)
	check("vmblk creates", events.Count(EvVmblkCreate), st.VM.VmblkCreates)
	check("span allocs", events.Count(EvSpanAlloc), st.VM.SpanAllocs)
	check("span frees", events.Count(EvSpanFree), st.VM.SpanFrees)
	check("pages mapped", events.Count(EvPagesMap), st.VM.PagesMapped)
	check("pages unmapped", events.Count(EvPagesUnmap), st.VM.PagesUnmap)
	check("map failures", events.Count(EvMapFail), st.VM.MapFailures)
	check("reclaims", events.Count(EvReclaim), st.Reclaims)
	if st.Reclaims == 0 {
		t.Error("workload never triggered reclaim; spine coverage incomplete")
	}

	// EvAlloc/EvFree are tallied in Stats but deliberately never emitted:
	// the fast path must not pay for observation.
	if events.Count(EvAlloc) != 0 || events.Count(EvFree) != 0 {
		t.Errorf("fast-path events leaked through the hook: %d allocs, %d frees",
			events.Count(EvAlloc), events.Count(EvFree))
	}
	// Refill/spill events carry list lengths; the hook total is blocks,
	// the stats counter is events, so blocks >= events.
	if events.Count(EvCPURefill) < sum.AllocRefills {
		t.Errorf("refill blocks %d < refill events %d", events.Count(EvCPURefill), sum.AllocRefills)
	}
	if events.Count(EvCPUSpill) < sum.FreeSpills {
		t.Errorf("spill blocks %d < spill events %d", events.Count(EvCPUSpill), sum.FreeSpills)
	}
}

// TestHookObservationIsFree verifies a Hook is pure observation in the
// cost model: the same workload with and without a hook runs in exactly
// the same number of simulated cycles and returns the same addresses.
func TestHookObservationIsFree(t *testing.T) {
	run := func(p Params) (int64, []arena.Addr) {
		cfg := machine.DefaultConfig()
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = 1024
		m := machine.New(cfg)
		a, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		c := m.CPU(0)
		var addrs []arena.Addr
		var held []arena.Addr
		for i := 0; i < 3000; i++ {
			b, err := a.Alloc(c, 64)
			if err != nil {
				t.Fatal(err)
			}
			addrs = append(addrs, b)
			held = append(held, b)
			if len(held) > 30 {
				a.Free(c, held[0], 64)
				held = held[1:]
			}
		}
		for _, b := range held {
			a.Free(c, b, 64)
		}
		return c.Now(), addrs
	}
	var events EventCounter
	bareCycles, bareAddrs := run(Params{RadixSort: true})
	hookCycles, hookAddrs := run(Params{RadixSort: true, Hook: events.Hook()})
	if bareCycles != hookCycles {
		t.Errorf("hook changed the cost model: %d cycles bare, %d hooked", bareCycles, hookCycles)
	}
	for i := range bareAddrs {
		if bareAddrs[i] != hookAddrs[i] {
			t.Fatalf("hook changed allocation %d: %#x vs %#x", i, bareAddrs[i], hookAddrs[i])
		}
	}
	if events.Count(EvCPURefill) == 0 {
		t.Error("hook observed nothing")
	}
}

// TestTraceHook smoke-tests the tracing consumer of the spine.
func TestTraceHook(t *testing.T) {
	var buf bytes.Buffer
	cfg := machine.DefaultConfig()
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 1024
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, Hook: TraceHook(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	var held []arena.Addr
	for i := 0; i < 200; i++ {
		b, err := a.Alloc(c, 128)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, b)
	}
	for _, b := range held {
		a.Free(c, b, 128)
	}
	out := buf.String()
	for _, want := range []string{"ev=vmblk-create", "ev=page-carve", "ev=cpu-refill", "ev=global-get"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q; got:\n%s", want, out)
		}
	}
}
