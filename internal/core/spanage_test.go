package core_test

import (
	"testing"

	"kmem/internal/core"
	"kmem/internal/machine"
)

func newLazyAged(t *testing.T, age uint64) (*machine.Machine, *core.Allocator) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 1
	cfg.MemBytes = 16 << 20
	m := machine.New(cfg)
	a, err := core.New(m, core.Params{LazySpans: true, SpanAgeTicks: age})
	if err != nil {
		t.Fatal(err)
	}
	return m, a
}

// TestSpanAgingDelaysTrim: with SpanAgeTicks = N, a freed span keeps its
// physical backing through the first N-1 voluntary decommit passes and
// loses it on the Nth — the burst-reuse window the aging knob buys.
func TestSpanAgingDelaysTrim(t *testing.T) {
	m, a := newLazyAged(t, 3)
	c := m.CPU(0)
	const big = 256 << 10
	addr, err := a.Alloc(c, big)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(c, addr, big)

	if n := a.Trim(c, -1); n != 0 {
		t.Fatalf("tick 1 released %d pages; span aged 1 < 3 ticks must be kept", n)
	}
	if n := a.Trim(c, -1); n != 0 {
		t.Fatalf("tick 2 released %d pages; span aged 2 < 3 ticks must be kept", n)
	}
	if n := a.Trim(c, -1); n == 0 {
		t.Fatal("tick 3 released nothing; span reached SpanAgeTicks and must be stripped")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanAgingDefaultImmediate: SpanAgeTicks 0 (the default) preserves
// the pre-aging behavior — the first Trim strips a freed span.
func TestSpanAgingDefaultImmediate(t *testing.T) {
	m, a := newLazyAged(t, 0)
	c := m.CPU(0)
	const big = 256 << 10
	addr, err := a.Alloc(c, big)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(c, addr, big)
	if n := a.Trim(c, -1); n == 0 {
		t.Fatal("default (no aging) Trim released nothing")
	}
}

// TestSpanAgingReuseKeepsBacking: an allocation landing inside the aging
// window recommits nothing — the span's frames were never given back.
func TestSpanAgingReuseKeepsBacking(t *testing.T) {
	m, a := newLazyAged(t, 8)
	c := m.CPU(0)
	const big = 256 << 10
	addr, err := a.Alloc(c, big)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(c, addr, big)
	a.Trim(c, -1) // voluntary pass inside the window: keeps backing
	maps := m.Phys().Stats().MapOps
	if _, err := a.Alloc(c, big); err != nil {
		t.Fatal(err)
	}
	if got := m.Phys().Stats().MapOps; got != maps {
		t.Fatalf("reuse inside the aging window committed %d pages; want 0", got-maps)
	}
}

// TestSpanAgingReclaimIsAgeBlind: the stop-the-world reclaim and
// DrainAll paths strip backing regardless of span age — a caller about
// to fail its allocation outranks burst-reuse protection.
func TestSpanAgingReclaimIsAgeBlind(t *testing.T) {
	m, a := newLazyAged(t, 1<<40) // effectively "never trim voluntarily"
	c := m.CPU(0)
	const big = 256 << 10
	addr, err := a.Alloc(c, big)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(c, addr, big)
	if n := a.Trim(c, -1); n != 0 {
		t.Fatalf("voluntary Trim released %d pages under an unreachable age", n)
	}
	unmaps := m.Phys().Stats().UnmapOps
	a.DrainAll(c)
	if got := m.Phys().Stats().UnmapOps; got == unmaps {
		t.Fatal("DrainAll decommitted nothing; the forced path must ignore span age")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
