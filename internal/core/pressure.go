package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"kmem/internal/arena"
	"kmem/internal/machine"
	"kmem/internal/physmem"
)

// This file is the memory-pressure resilience layer: watermark-driven
// graceful degradation, incremental reclaim, and blocking (KM_SLEEP-style)
// allocation. All of it is opt-in — with Params.Pressure nil the
// allocator's pressure level is permanently PressureOK, every branch
// below resolves to the pre-pressure behavior, and the simulator's cycle
// counts are unchanged (the level checks are plain atomic loads, which
// charge nothing).

// PressureLevel re-exports the physmem pressure classification.
type PressureLevel = physmem.PressureLevel

// Pressure levels, in increasing severity.
const (
	PressureOK       = physmem.PressureOK
	PressureLow      = physmem.PressureLow
	PressureCritical = physmem.PressureCritical
)

// pressureLevel returns the allocator's view of the physmem pool's
// pressure level, maintained by the transition callback registered in
// initPressure. A plain atomic load: safe on fast paths, free in the
// simulator.
func (a *Allocator) pressureLevel() PressureLevel {
	return PressureLevel(a.pressure.Load())
}

// Pressure returns the current memory-pressure level.
func (a *Allocator) Pressure() PressureLevel { return a.pressureLevel() }

// effTarget degrades a per-CPU cache target under pressure: at
// PressureLow and above, targets are halved (minimum 1), so caches
// retain less and frees spill sooner. With the pressure model off it is
// the identity. The remote-free shards use the same clamped value as
// their flush threshold, so under pressure staged remote blocks also
// reach their home pools (and from there the coalescing layer) in half
// the time.
func (a *Allocator) effTarget(t int) int {
	if a.pressure.Load() == 0 {
		return t
	}
	t /= 2
	if t < 1 {
		t = 1
	}
	return t
}

// initPressure wires the opt-in pressure model: watermarks on the
// physmem pool, the level-mirroring transition callback, and the
// fault-injection map hook. Called once from New.
func (a *Allocator) initPressure() error {
	phys := a.m.Phys()
	if pc := a.params.Pressure; pc != nil {
		low, min := pc.watermarks(phys.Stats().Capacity)
		if err := phys.SetWatermarks(low, min); err != nil {
			return err
		}
		phys.SetPressureFunc(func(old, new physmem.PressureLevel) {
			a.pressure.Store(int32(new))
			a.pressureTransitions.Add(1)
			a.emit(-1, EvPressure, int(new)+1)
			if new < old {
				// Easing pressure means pages came free; release waiters.
				a.wakeAll()
			}
		})
	}
	if f := a.params.Faults; f != nil {
		phys.SetMapHook(func(n int64) error {
			if f.Should(FaultPhysMap) {
				a.noteFault()
				return physmem.ErrNoPages
			}
			if f.Should(FaultPhysCommit) {
				a.noteFault()
				return physmem.ErrNoPages
			}
			return nil
		})
	}
	return nil
}

// noteFault records one injected fault firing.
func (a *Allocator) noteFault() {
	a.faultsInjected.Add(1)
	a.emit(-1, EvFaultInjected, 1)
}

// exhaustErr maps a slow-path failure to the facade's typed exhaustion
// errors: virtual address-space exhaustion stays distinguishable from a
// physical-frame shortage instead of collapsing into ErrNoMemory.
func exhaustErr(err error) error {
	if errors.Is(err, ErrNoVA) {
		return ErrNoVA
	}
	return ErrNoMemory
}

// --- incremental reclaim -------------------------------------------------

// reclaimSteps is the number of incremental steps that together cover
// what one stop-the-world reclaim covers: every CPU cache plus every
// per-node global pool of every class — plus, with lazy spans, one
// decommit step that strips physical backing from free spans, plus one
// depot-shrink step per registered object cache (zero extra steps, and
// an unchanged rotation, when no caches exist).
func (a *Allocator) reclaimSteps() int {
	n := len(a.percpu) + len(a.classes)*a.nodes + a.numShedders()
	if a.params.LazySpans {
		n++
	}
	return n
}

// reclaimStep performs one increment of the reclaim sweep — flush one
// CPU's caches, or drain one global pool — chosen round-robin by a
// shared cursor so concurrent critical-path callers divide the sweep
// instead of each repeating it. The caller is charged insnReclaimStep
// (versus insnReclaim for the stop-the-world path), which is how
// PressureCritical converts one caller's long stall into short bounded
// stalls spread across allocating CPUs.
func (a *Allocator) reclaimStep(c *machine.CPU) {
	c.Work(insnReclaimStep)
	i := int((a.reclaimCursor.Add(1) - 1) % uint32(a.reclaimSteps()))
	a.reclaimStepsDone.Add(1)
	a.emit(-1, EvReclaimStep, 1)
	if i < len(a.percpu) {
		a.DrainCPU(c, i)
	} else if i -= len(a.percpu); i < len(a.classes)*a.nodes {
		a.classes[i/a.nodes].globals[i%a.nodes].drainAll(c)
	} else if i -= len(a.classes) * a.nodes; a.params.LazySpans && i == 0 {
		a.vm.decommitFree(c, trimStepPages)
	} else {
		// One object cache's depot shrink — the incremental form of the
		// cache shed the stop-the-world reclaim performs in full. Only
		// reached when caches are registered; shedOne keeps its own
		// id-based cursor, so the rotation position only decides *when*
		// a shed step runs, not which cache it lands on.
		a.shedOne(c)
	}
	a.wakeAll()
}

// ReclaimStepsDone reports how many incremental reclaim steps have run.
func (a *Allocator) ReclaimStepsDone() uint64 { return a.reclaimStepsDone.Load() }

// --- wait queues and AllocWait -------------------------------------------

// waitq parks native-mode AllocWait callers for one size class (the last
// queue serves large requests). Wakeups use closed-channel broadcast: a
// waiter takes the current gate channel and registers *before* its
// allocation attempt, and wake closes that same channel — so any free
// published after a failed attempt is guaranteed to release the waiter.
// The nwait fast path keeps the free/reclaim side at one atomic load
// when nobody waits; the simulator never parks (it charges idle cycles
// instead), so nwait stays 0 there and wakeups are no-ops.
type waitq struct {
	mu    sync.Mutex
	ch    chan struct{}
	nwait atomic.Int32
}

// gate returns the channel the next wake will close, creating it lazily.
func (w *waitq) gate() chan struct{} {
	w.mu.Lock()
	if w.ch == nil {
		w.ch = make(chan struct{})
	}
	ch := w.ch
	w.mu.Unlock()
	return ch
}

// wake broadcasts to every parked waiter; returns how many were
// registered. Cheap (one atomic load) when the queue is empty.
func (w *waitq) wake() int {
	if w.nwait.Load() == 0 {
		return 0
	}
	w.mu.Lock()
	n := int(w.nwait.Load())
	if w.ch != nil {
		close(w.ch)
		w.ch = nil
	}
	w.mu.Unlock()
	return n
}

// wakeClass releases waiters of one size class after its blocks became
// available.
func (a *Allocator) wakeClass(cls int) {
	if n := a.waitqs[cls].wake(); n > 0 {
		a.wakes.Add(uint64(n))
		a.emit(cls, EvWake, n)
	}
}

// wakeAll releases every waiter — pages were unmapped or reclaim made
// progress, so any class (and the large path) may now succeed.
func (a *Allocator) wakeAll() {
	if a.waitqs == nil {
		return
	}
	for i := range a.waitqs {
		if n := a.waitqs[i].wake(); n > 0 {
			a.wakes.Add(uint64(n))
			cls := i
			if cls == len(a.classes) {
				cls = -1 // the large-request queue
			}
			a.emit(cls, EvWake, n)
		}
	}
}

// AllocWait is the blocking (DYNIX KM_SLEEP-style) allocation: on
// exhaustion it parks on the size class's wait queue with bounded
// exponential backoff and retries when frees or reclaim progress wake
// it, failing with the typed exhaustion error only after
// WaitConfig.MaxWaits rounds. In the simulator the park is a charged
// idle period (deterministic: other simulated CPUs run and may free
// memory); in native mode it is a real wait with an early wakeup on the
// class's gate channel and a backoff timer as backstop.
func (a *Allocator) AllocWait(c *machine.CPU, size uint64) (arena.Addr, error) {
	if size == 0 {
		return arena.NilAddr, ErrBadSize
	}
	cls := -1
	qi := len(a.classes) // large requests share the final queue
	if size <= uint64(a.maxSmall) {
		cls = a.classFor(size)
		qi = cls
	}
	wq := &a.waitqs[qi]
	sim := a.m.Config().Mode == machine.Sim
	backoffCycles := a.waitCfg.BaseBackoffCycles
	backoff := a.waitCfg.BaseBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		var ch chan struct{}
		if !sim {
			// Register before the attempt: a free that lands after this
			// point closes ch, so a failure below cannot miss it.
			ch = wq.gate()
			wq.nwait.Add(1)
		}
		addr, err := a.Alloc(c, size)
		if err == nil {
			if !sim {
				wq.nwait.Add(-1)
			}
			return addr, nil
		}
		lastErr = err
		if attempt >= a.waitCfg.MaxWaits {
			if !sim {
				wq.nwait.Add(-1)
			}
			return arena.NilAddr, lastErr
		}
		a.waits.Add(1)
		a.emit(cls, EvWait, 1)
		if sim {
			c.Idle(backoffCycles)
			backoffCycles *= 2
			if backoffCycles > a.waitCfg.MaxBackoffCycles {
				backoffCycles = a.waitCfg.MaxBackoffCycles
			}
		} else {
			t := time.NewTimer(backoff)
			select {
			case <-ch:
				t.Stop()
			case <-t.C:
			}
			wq.nwait.Add(-1)
			backoff *= 2
			if backoff > a.waitCfg.MaxBackoff {
				backoff = a.waitCfg.MaxBackoff
			}
		}
	}
}
