package core

import (
	"sync"
	"sync/atomic"

	"kmem/internal/machine"
)

// AdaptiveConfig tunes the per-class adaptive target controller. The
// paper fixes `target` and `gbltarget` by a static heuristic and proves
// the per-CPU and global miss rates are bounded by 1/target and
// 1/(target*gbltarget); the controller closes that loop online, growing
// or shrinking each class's targets within configured bounds so the
// observed miss rates hold near a setpoint instead of wherever the
// static guess lands for the actual workload.
//
// The zero value of every field selects a sensible default.
type AdaptiveConfig struct {
	// Window is the number of per-CPU-layer operations (fast-path allocs
	// plus frees, summed over CPUs) folded into one miss-rate estimate
	// before the controller considers an adjustment. Default 512.
	Window int

	// Setpoint is the per-CPU-layer miss rate the controller steers
	// toward (the paper's bound for this rate is 1/target). Default 0.02.
	Setpoint float64

	// GblSetpoint is the global-layer miss-rate setpoint (the paper's
	// bound is 1/gbltarget). Default 0.05.
	GblSetpoint float64

	// Hysteresis is the relative deadband around each setpoint: no
	// adjustment happens while the observed rate stays within
	// [Setpoint*(1-Hysteresis), Setpoint*(1+Hysteresis)]. The deadband is
	// what keeps the split-freelist exchange sizes stable once the
	// controller has converged. Default 0.5.
	Hysteresis float64

	// MinTarget and MaxTarget bound the per-CPU cache target. Defaults 2
	// and 64. The memory a class can strand per CPU is bounded by
	// 2*MaxTarget blocks.
	MinTarget, MaxTarget int

	// MinGblTarget and MaxGblTarget bound the global-layer capacity
	// parameter. Defaults 2 and 64.
	MinGblTarget, MaxGblTarget int

	// ShrinkHoldoff is the number of completed windows that must pass
	// after a grow before the controller may shrink the same knob —
	// hysteresis in time, preventing grow/shrink limit cycles on steady
	// workloads. Default 8.
	ShrinkHoldoff int
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Window <= 0 {
		c.Window = 512
	}
	if c.Setpoint <= 0 {
		c.Setpoint = 0.02
	}
	if c.GblSetpoint <= 0 {
		c.GblSetpoint = 0.05
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.5
	}
	if c.MinTarget <= 0 {
		c.MinTarget = 2
	}
	if c.MaxTarget <= 0 {
		c.MaxTarget = 64
	}
	if c.MinGblTarget <= 0 {
		c.MinGblTarget = 2
	}
	if c.MaxGblTarget <= 0 {
		c.MaxGblTarget = 64
	}
	if c.ShrinkHoldoff <= 0 {
		c.ShrinkHoldoff = 8
	}
	return c
}

// classController holds one size class's current targets and, when
// adaptation is enabled, the windowed miss-rate estimators that steer
// them. Every class has a controller even with adaptation off: the
// atomics then simply hold the static targets forever, so readers need
// no enabled-check. Per-CPU caches re-read the target lazily on their
// next refill, spill or drain; the global pool re-reads it on every
// list exchange. Nothing on the alloc/free fast path touches this
// structure.
type classController struct {
	enabled bool
	cfg     AdaptiveConfig

	// Current knob values. Readers use atomic loads; only adjust()
	// writes, under mu.
	target    atomic.Int64
	gbltarget atomic.Int64

	// Windowed estimator feeds. Per-CPU ops are reported in deltas at
	// refill/spill time (the reporting CPU batches all fast-path ops
	// since its previous report), so the fast path itself never touches
	// these. A reset may race with a concurrent Add and drop a few ops;
	// the estimator tolerates that.
	winOps   atomic.Uint64
	winMiss  atomic.Uint64
	gwinOps  atomic.Uint64
	gwinMiss atomic.Uint64

	// Decision totals, readable without mu.
	grows, shrinks       atomic.Uint64
	gblGrows, gblShrinks atomic.Uint64

	mu sync.Mutex // serializes adjustments (uncontended in the single-goroutine sim)
	// Controller state, under mu. floor is a ratchet: when a grow fires,
	// the value that proved too small becomes a floor the controller will
	// never shrink back to, so a steady workload cannot drive a
	// grow/shrink limit cycle — the controller converges instead.
	window, lastGrow   uint64
	floor              int
	gwindow, gLastGrow uint64
	gblFloor           int
}

func newClassController(p *Params, target, gbltarget int) *classController {
	ctl := &classController{enabled: p.Adaptive != nil}
	if ctl.enabled {
		ctl.cfg = p.Adaptive.withDefaults()
		if target < ctl.cfg.MinTarget {
			target = ctl.cfg.MinTarget
		}
		if target > ctl.cfg.MaxTarget {
			target = ctl.cfg.MaxTarget
		}
		if gbltarget < ctl.cfg.MinGblTarget {
			gbltarget = ctl.cfg.MinGblTarget
		}
		if gbltarget > ctl.cfg.MaxGblTarget {
			gbltarget = ctl.cfg.MaxGblTarget
		}
		ctl.floor = ctl.cfg.MinTarget
		ctl.gblFloor = ctl.cfg.MinGblTarget
	}
	ctl.target.Store(int64(target))
	ctl.gbltarget.Store(int64(gbltarget))
	return ctl
}

// curTarget and curGblTarget return the current knob values.
func (ctl *classController) curTarget() int    { return int(ctl.target.Load()) }
func (ctl *classController) curGblTarget() int { return int(ctl.gbltarget.Load()) }

// Controller bookkeeping cost, charged in the simulator only when
// adaptation is enabled (the paper's static allocator charges nothing).
const (
	insnAdaptNote   = 4  // folding one report into the window estimator
	insnAdaptAdjust = 16 // closing a window and moving a knob
)

// noteCPU feeds the per-CPU-layer estimator: ops fast-path operations
// since the reporting CPU's previous report, of which misses crossed the
// per-CPU/global boundary. Called only on refill/spill slow paths with
// no allocator locks held.
func (ctl *classController) noteCPU(a *Allocator, c *machine.CPU, cls int, ops, misses uint64) {
	c.Work(insnAdaptNote)
	o := ctl.winOps.Add(ops)
	m := ctl.winMiss.Add(misses)
	if o+m < uint64(ctl.cfg.Window) {
		return
	}
	ctl.adjustCPU(a, c, cls)
}

func (ctl *classController) adjustCPU(a *Allocator, c *machine.CPU, cls int) {
	ctl.mu.Lock()
	o, m := ctl.winOps.Load(), ctl.winMiss.Load()
	if o+m < uint64(ctl.cfg.Window) {
		// Another CPU closed this window first.
		ctl.mu.Unlock()
		return
	}
	ctl.winOps.Store(0)
	ctl.winMiss.Store(0)
	c.Work(insnAdaptAdjust)
	ctl.window++
	rate := float64(m) / float64(o+m)
	cur := int(ctl.target.Load())
	next, ev := ctl.step(rate, ctl.cfg.Setpoint, cur,
		ctl.cfg.MinTarget, ctl.cfg.MaxTarget, &ctl.floor,
		ctl.window, &ctl.lastGrow, EvTargetGrow, EvTargetShrink)
	if next != cur {
		ctl.target.Store(int64(next))
		if ev == EvTargetGrow {
			ctl.grows.Add(1)
		} else {
			ctl.shrinks.Add(1)
		}
	}
	ctl.mu.Unlock()
	if next != cur {
		a.emit(cls, ev, next)
	}
}

// noteGbl feeds the global-layer estimator: ops global get/put
// operations, of which misses crossed the global/coalesce-to-page
// boundary. Called from the global pool's slow paths after its lock is
// released.
func (ctl *classController) noteGbl(a *Allocator, c *machine.CPU, cls int, ops, misses uint64) {
	c.Work(insnAdaptNote)
	o := ctl.gwinOps.Add(ops)
	m := ctl.gwinMiss.Add(misses)
	// Global operations are roughly 1/target as frequent as fast-path
	// ops; scale the window down so this estimator also converges in
	// reasonable time.
	win := uint64(ctl.cfg.Window / 8)
	if win < 16 {
		win = 16
	}
	if o+m < win {
		return
	}
	ctl.mu.Lock()
	o, m = ctl.gwinOps.Load(), ctl.gwinMiss.Load()
	if o+m < win {
		ctl.mu.Unlock()
		return
	}
	ctl.gwinOps.Store(0)
	ctl.gwinMiss.Store(0)
	c.Work(insnAdaptAdjust)
	ctl.gwindow++
	rate := float64(m) / float64(o+m)
	cur := int(ctl.gbltarget.Load())
	next, ev := ctl.step(rate, ctl.cfg.GblSetpoint, cur,
		ctl.cfg.MinGblTarget, ctl.cfg.MaxGblTarget, &ctl.gblFloor,
		ctl.gwindow, &ctl.gLastGrow, EvGblTargetGrow, EvGblTargetShrink)
	if next != cur {
		ctl.gbltarget.Store(int64(next))
		if ev == EvGblTargetGrow {
			ctl.gblGrows.Add(1)
		} else {
			ctl.gblShrinks.Add(1)
		}
	}
	ctl.mu.Unlock()
	if next != cur {
		a.emit(cls, ev, next)
	}
}

// step applies the shared control rule to one knob and returns the next
// value (== cur to hold) plus the decision event. Grow is multiplicative
// (fast escape from an undersized cache) and ratchets the floor to
// cur+1: a value observed to miss above the deadband is never returned
// to. Shrink is additive and gated behind the holdoff, releasing memory
// slowly when the workload genuinely quiets down.
func (ctl *classController) step(rate, setpoint float64, cur, min, max int, floor *int,
	window uint64, lastGrow *uint64, growEv, shrinkEv LayerEvent) (int, LayerEvent) {
	hi := setpoint * (1 + ctl.cfg.Hysteresis)
	lo := setpoint * (1 - ctl.cfg.Hysteresis)
	switch {
	case rate > hi && cur < max:
		if f := cur + 1; f > *floor {
			*floor = f
		}
		*lastGrow = window
		next := cur + cur/2 + 1
		if next > max {
			next = max
		}
		return next, growEv
	case rate < lo && window-*lastGrow >= uint64(ctl.cfg.ShrinkHoldoff):
		bound := min
		if *floor > bound {
			bound = *floor
		}
		if cur > bound {
			return cur - 1, shrinkEv
		}
	}
	return cur, 0
}
