package core

import "kmem/internal/machine"

// cacheLineBytes is the padding granularity for per-CPU structures that
// live adjacent in one slice. It matches the 64-byte coherence line of
// every machine the Native backend runs on (and the simulator's default
// LineBytes).
const cacheLineBytes = 64

// paddedIntrLock pads each per-CPU IntrLock out to its own cache line.
//
// In Sim mode IntrLock is costless (interrupt disable, no shared word),
// but in Native mode it is a real sync.Mutex — 8 bytes — and the
// allocator keeps one per CPU in a single slice. Unpadded, eight CPUs'
// locks share one 64-byte line, so every fast-path alloc/free on one CPU
// invalidates the line holding its seven neighbours' locks: textbook
// false sharing on the hottest lock in the system. The padding trades
// 56 bytes per CPU for private lines. BenchmarkIntrLockFalseSharing
// measures the delta.
type paddedIntrLock struct {
	machine.IntrLock
	_ [cacheLineBytes - 8]byte
}
