package core

import (
	"fmt"

	"kmem/internal/arena"
)

// CheckConsistency audits every data structure of the allocator and
// returns the first inconsistency found (nil when sound):
//
//   - vmblk page maps partition cleanly into header pages, free spans
//     with matching boundary tags, allocated spans, and split pages;
//   - every split page's freelist length matches its descriptor's free
//     count, with every link inside the page and block-aligned;
//   - no block appears on two freelists (page, global or per-CPU) —
//     a double free or list corruption would trip this;
//   - cached blocks belong to split pages of the correct class;
//   - every page's residency flags match its state: header, allocated
//     and split pages are resident; free-span pages are unbacked in
//     eager mode, and in lazy mode are resident, scrubbed (with the
//     scrub fill verified byte-for-byte), or never committed;
//   - physical-page accounting agrees with the flags: resident pages
//     sum to physmem's Mapped, vmblk spans to its Reserved.
//
// CheckConsistency must only be called on a quiescent allocator (no
// concurrent operations); it takes no locks and charges no simulated
// cycles.
func (a *Allocator) CheckConsistency() error {
	pageBytes := a.m.Config().PageBytes
	seen := make(map[arena.Addr]string)
	note := func(b arena.Addr, where string) error {
		if prev, dup := seen[b]; dup {
			return fmt.Errorf("kmem: block %#x on both %s and %s", b, prev, where)
		}
		seen[b] = where
		return nil
	}

	var residentPages, reservedPages int64
	splitByClass := make(map[int32]int, 64) // page -> class for cache validation

	for _, vb := range a.vm.dope {
		if vb == nil {
			continue
		}
		reservedPages += int64(vb.pages)
		for j := int32(0); j < vb.headerPages; j++ {
			if f := vb.pds[j].flags; f != pdfResident {
				return fmt.Errorf("kmem: header page %d has flags %#x, want resident", vb.firstPage+j, f)
			}
		}
		residentPages += int64(vb.headerPages)
		i := vb.dataStart()
		prevFree := false
		for i < vb.end() {
			pd := &vb.pds[i-vb.firstPage]
			if pd.state != pdFreeHead {
				prevFree = false
			}
			switch pd.state {
			case pdFreeHead:
				n := int32(pd.spanPages)
				if n < 1 || i+n > vb.end() {
					return fmt.Errorf("kmem: free span at page %d has bad length %d", i, n)
				}
				// Coalescing invariant: two free spans must never touch —
				// freePages merges both directions, so an adjacent pair
				// means a boundary-tag merge was missed.
				if prevFree {
					return fmt.Errorf("kmem: free span at page %d adjoins the previous free span (missed coalesce)", i)
				}
				prevFree = true
				if n > 1 {
					tail := &vb.pds[i+n-1-vb.firstPage]
					if tail.state != pdFreeTail || tail.spanPages != uint32(n) {
						return fmt.Errorf("kmem: free span at page %d length %d: tail tag %s/%d",
							i, n, pdStateName(tail.state), tail.spanPages)
					}
				}
				for j := int32(0); j < n; j++ {
					switch f := vb.pds[i+j-vb.firstPage].flags; f {
					case 0:
						// Unbacked: eager free pages, or a lazy page never
						// committed since its vmblk was carved.
					case pdfResident:
						if !a.params.LazySpans {
							return fmt.Errorf("kmem: eager free page %d still flagged resident", i+j)
						}
						residentPages++
					case pdfScrubbed:
						if !a.params.LazySpans {
							return fmt.Errorf("kmem: eager free page %d flagged scrubbed", i+j)
						}
						if off, ok := a.mem.CheckFill(a.vm.pageAddr(i+j), pageBytes, decommitScrub); !ok {
							return fmt.Errorf("kmem: decommitted page %d dirty at offset %d", i+j, off)
						}
					default:
						return fmt.Errorf("kmem: free page %d has bad flags %#x", i+j, f)
					}
				}
				i += n
			case pdAllocHead:
				n := int32(pd.spanPages)
				if n < 1 || i+n > vb.end() {
					return fmt.Errorf("kmem: alloc span at page %d has bad length %d", i, n)
				}
				for j := int32(0); j < n; j++ {
					pp := &vb.pds[i+j-vb.firstPage]
					if j > 0 && pp.state != pdAllocMid {
						return fmt.Errorf("kmem: alloc span at page %d: interior page %d is %s",
							i, i+j, pdStateName(pp.state))
					}
					if pp.flags != pdfResident {
						return fmt.Errorf("kmem: alloc page %d has flags %#x, want resident", i+j, pp.flags)
					}
				}
				residentPages += int64(n)
				i += n
			case pdSplit:
				cls := int(pd.class)
				if cls < 0 || cls >= len(a.classes) {
					return fmt.Errorf("kmem: split page %d has bad class %d", i, pd.class)
				}
				size := uint64(a.classes[cls].size)
				perPage := pageBytes / size
				if uint64(pd.nFree) > perPage {
					return fmt.Errorf("kmem: split page %d has %d free of %d", i, pd.nFree, perPage)
				}
				base := a.vm.pageAddr(i)
				count := uint64(0)
				for b := pd.freeHead; b != arena.NilAddr; b = a.mem.Load64(b) {
					if b < base || b >= base+pageBytes || (b-base)%size != 0 {
						return fmt.Errorf("kmem: split page %d freelist link %#x outside page", i, b)
					}
					if err := note(b, fmt.Sprintf("page %d freelist", i)); err != nil {
						return err
					}
					count++
					if count > perPage {
						return fmt.Errorf("kmem: split page %d freelist longer than page", i)
					}
				}
				if count != uint64(pd.nFree) {
					return fmt.Errorf("kmem: split page %d freelist has %d blocks, descriptor says %d",
						i, count, pd.nFree)
				}
				if pd.flags&^pdfQuarantined != pdfResident {
					return fmt.Errorf("kmem: split page %d has flags %#x, want resident", i, pd.flags)
				}
				splitByClass[i] = cls
				residentPages++
				i++
			default:
				return fmt.Errorf("kmem: page %d in unexpected state %s", i, pdStateName(pd.state))
			}
		}
	}

	// Radix buckets: each filed page must be split, with the matching
	// free count, in this class — and homed on the pool's own node.
	for cls := range a.classes {
		for _, p := range a.classes[cls].pages {
			checkList := func(l *pdList, wantFree int) error {
				for pg := l.head; pg != -1; {
					pd := a.vm.pdOf(pg)
					if pd.state != pdSplit || int(pd.class) != cls {
						return fmt.Errorf("kmem: class %d bucket holds page %d (%s class %d)",
							cls, pg, pdStateName(pd.state), pd.class)
					}
					if wantFree >= 0 && int(pd.nFree) != wantFree {
						return fmt.Errorf("kmem: class %d bucket %d holds page %d with %d free",
							cls, wantFree, pg, pd.nFree)
					}
					if pd.nFree == 0 {
						return fmt.Errorf("kmem: class %d list holds empty page %d", cls, pg)
					}
					if pd.flags&pdfQuarantined != 0 {
						return fmt.Errorf("kmem: class %d list holds quarantined page %d", cls, pg)
					}
					if home := a.vm.nodeOfPage(pg); home != p.node {
						return fmt.Errorf("kmem: class %d node %d pool holds page %d homed on node %d",
							cls, p.node, pg, home)
					}
					pg = pd.next
				}
				return nil
			}
			if a.params.RadixSort {
				for k := 1; k < len(p.buckets); k++ {
					if err := checkList(&p.buckets[k], k); err != nil {
						return err
					}
				}
			} else {
				if err := checkList(&p.fifo, -1); err != nil {
					return err
				}
			}
		}
	}

	// Cached blocks at the global and per-CPU layers: each must sit in a
	// split page of its class and appear only once anywhere.
	checkCached := func(head arena.Addr, n int, cls int, where string) error {
		count := 0
		for b := head; b != arena.NilAddr; b = a.mem.Load64(b) {
			pg := int32(b >> a.pageShift)
			pcls, ok := splitByClass[pg]
			if !ok || pcls != cls {
				return fmt.Errorf("kmem: %s holds block %#x not in a class-%d split page", where, b, cls)
			}
			if err := note(b, where); err != nil {
				return err
			}
			count++
			if count > n {
				return fmt.Errorf("kmem: %s longer than declared %d", where, n)
			}
		}
		if count != n {
			return fmt.Errorf("kmem: %s has %d blocks, declared %d", where, count, n)
		}
		return nil
	}
	for cls := range a.classes {
		for _, g := range a.classes[cls].globals {
			for li, l := range g.lists {
				if err := checkCached(l.Head(), l.Len(), cls, fmt.Sprintf("class %d node %d global list %d", cls, g.node, li)); err != nil {
					return err
				}
				// Home-node invariant: every block a global pool caches
				// is homed on the pool's node.
				for b := l.Head(); b != arena.NilAddr; b = a.mem.Load64(b) {
					if home := a.vm.nodeOfPage(int32(b >> a.pageShift)); home != g.node {
						return fmt.Errorf("kmem: class %d node %d global pool holds block %#x homed on node %d",
							cls, g.node, b, home)
					}
				}
			}
			if err := checkCached(g.bucket.Head(), g.bucket.Len(), cls, fmt.Sprintf("class %d node %d global bucket", cls, g.node)); err != nil {
				return err
			}
			for b := g.bucket.Head(); b != arena.NilAddr; b = a.mem.Load64(b) {
				if home := a.vm.nodeOfPage(int32(b >> a.pageShift)); home != g.node {
					return fmt.Errorf("kmem: class %d node %d global bucket holds block %#x homed on node %d",
						cls, g.node, b, home)
				}
			}
		}
		for cpu := range a.percpu {
			pc := &a.percpu[cpu][cls]
			if err := checkCached(pc.main.Head(), pc.main.Len(), cls, fmt.Sprintf("cpu %d class %d main", cpu, cls)); err != nil {
				return err
			}
			if err := checkCached(pc.aux.Head(), pc.aux.Len(), cls, fmt.Sprintf("cpu %d class %d aux", cpu, cls)); err != nil {
				return err
			}
			// Remote shards: every staged block must be homed on the
			// shard's node (by construction the sharded free path never
			// stages a local block, and shard k only ever receives
			// node-k-homed blocks).
			for node := range pc.remote {
				sh := &pc.remote[node]
				if err := checkCached(sh.Head(), sh.Len(), cls, fmt.Sprintf("cpu %d class %d shard %d", cpu, cls, node)); err != nil {
					return err
				}
				if node == a.m.NodeOf(cpu) && !sh.Empty() {
					return fmt.Errorf("kmem: cpu %d class %d stages local blocks in its own node-%d shard", cpu, cls, node)
				}
				for b := sh.Head(); b != arena.NilAddr; b = a.mem.Load64(b) {
					if home := a.vm.nodeOfPage(int32(b >> a.pageShift)); home != node {
						return fmt.Errorf("kmem: cpu %d class %d shard %d holds block %#x homed on node %d",
							cpu, cls, node, b, home)
					}
				}
			}
		}
	}

	if got := a.m.Phys().Mapped(); got != residentPages {
		return fmt.Errorf("kmem: physmem reports %d resident pages, structures account for %d",
			got, residentPages)
	}
	if got := a.m.Phys().Reserved(); got != reservedPages {
		return fmt.Errorf("kmem: physmem reports %d reserved pages, vmblk spans total %d",
			got, reservedPages)
	}
	return nil
}

// HomeOf returns the NUMA home node of the page holding address b (0 on
// a single-node machine). Uncharged and lock-free: intended for oracles
// and tests inspecting a quiescent allocator, where the torture
// harness's shadow model checks each block's home against the dope
// vector after every operation.
func (a *Allocator) HomeOf(b arena.Addr) int {
	return a.vm.nodeOfPage(int32(b >> a.pageShift))
}

// RoundedSize returns the size the allocator actually reserves for a
// request: the size class's block size for small requests, the
// page-rounded size for large ones. Uncharged; used by shadow oracles to
// compute the true extent of a live block when checking for overlap.
// With hardening on the redzone is part of the reserved footprint, so
// the usable rounded size is the class (or page-rounded) size minus the
// redzone; usable extents of distinct blocks still never overlap.
func (a *Allocator) RoundedSize(size uint64) uint64 {
	if size == 0 {
		return 0
	}
	eff := size
	var rz uint64
	if a.hd != nil {
		rz = a.hd.rz
		eff += rz
	}
	if eff <= uint64(a.maxSmall) {
		return uint64(a.classes[a.classFor(eff)].size) - rz
	}
	pb := a.m.Config().PageBytes
	return (eff+pb-1)/pb*pb - rz
}

// HeaderPages returns the total header pages of every vmblk created so
// far — the mapped-page floor a fully freed, fully drained allocator
// settles at ("the physical memory is returned to the system; the
// virtual memory is retained"). Uncharged; the torture harness's leak
// check compares physmem's Mapped against exactly this number at the end
// of a run.
func (a *Allocator) HeaderPages() int64 {
	var n int64
	for _, vb := range a.vm.dope {
		if vb != nil {
			n += int64(vb.headerPages)
		}
	}
	return n
}
