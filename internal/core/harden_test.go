package core

import (
	"strings"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/harden"
	"kmem/internal/machine"
)

// newHardenAlloc builds a small machine and an allocator with the given
// hardening config, collecting every report into the returned slice.
func newHardenAlloc(t *testing.T, hcfg *harden.Config) (*machine.Machine, *Allocator, *[]harden.Report) {
	t.Helper()
	var reports []harden.Report
	prev := hcfg.OnReport
	hcfg.OnReport = func(r harden.Report) {
		reports = append(reports, r)
		if prev != nil {
			prev(r)
		}
	}
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 2
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 1024
	m := machine.New(cfg)
	a, err := New(m, Params{Harden: hcfg})
	if err != nil {
		t.Fatal(err)
	}
	return m, a, &reports
}

// TestHardenOffCycleIdentity proves hardening is opt-out-clean: with
// Params.Harden nil the golden mixed workload replays the recorded
// per-CPU cycle counts bit for bit, on one node and on four.
func TestHardenOffCycleIdentity(t *testing.T) {
	assertGolden(t, "nodes=1",
		shardGoldenCycles(t, 1, Params{RadixSort: true}), goldenCyclesNodes1)
	assertGolden(t, "nodes=4",
		shardGoldenCycles(t, 4, Params{RadixSort: true, DisableRemoteShards: true}),
		goldenCyclesNodes4Routing)
}

// TestHardenNoFalsePositives runs the full golden mixed workload —
// standard and cookie churn, cross-CPU frees, the large path, drains —
// under PolicyPanic. Any false detection panics the test.
func TestHardenNoFalsePositives(t *testing.T) {
	for _, nodes := range []int{1, 4} {
		shardGoldenCycles(t, nodes, Params{Harden: &harden.Config{Policy: harden.PolicyPanic}})
	}
}

// TestHardenOverrun plants an out-of-band write past the usable size and
// asserts it is detected at free, attributed to the planting site, and
// contained by quarantining the page without breaking the allocator.
func TestHardenOverrun(t *testing.T) {
	m, a, reports := newHardenAlloc(t, &harden.Config{})
	c := m.CPU(0)
	usable := a.RoundedSize(64)

	a.SetHardenSite(c, "test:victim")
	b, err := a.Alloc(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	a.SetHardenSite(c, "test:other")

	// The canary starts right past the usable bytes; smash its first byte.
	m.Mem().Fill(b+arena.Addr(usable), 1, 0x41)
	a.Free(c, b, 64)

	if len(*reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(*reports))
	}
	rep := (*reports)[0]
	if rep.Kind != harden.KindOverrun {
		t.Errorf("kind = %v, want overrun", rep.Kind)
	}
	if rep.Addr != uint64(b) {
		t.Errorf("addr = %#x, want %#x", rep.Addr, uint64(b))
	}
	if rep.Offset != usable {
		t.Errorf("offset = %d, want %d", rep.Offset, usable)
	}
	if rep.Got != 0x41 || rep.Expected != harden.CanaryByte {
		t.Errorf("bytes = got %#x want-expected %#x", rep.Got, rep.Expected)
	}
	if rep.LastAlloc.Site != "test:victim" {
		t.Errorf("last alloc site = %q, want test:victim", rep.LastAlloc.Site)
	}
	if !strings.Contains(rep.String(), "overrun") {
		t.Errorf("report string %q does not name the kind", rep.String())
	}

	st := a.Stats(c)
	if st.Quarantine.Overruns != 1 || st.Quarantine.Detections != 1 {
		t.Errorf("quarantine stats = %+v, want 1 overrun", st.Quarantine)
	}
	if st.Quarantine.Pages != 1 {
		t.Errorf("quarantined pages = %d, want 1", st.Quarantine.Pages)
	}
	if got := m.Phys().Stats().Quarantined; got != 1 {
		t.Errorf("physmem quarantined = %d, want 1", got)
	}

	// The allocator keeps serving, and never hands out the quarantined
	// page again even under churn and drains.
	pageOf := func(x arena.Addr) arena.Addr { return x &^ (arena.Addr(m.Config().PageBytes) - 1) }
	qpg := pageOf(b)
	for i := 0; i < 500; i++ {
		nb, err := a.Alloc(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		if pageOf(nb) == qpg {
			t.Fatalf("alloc %d returned block %#x on quarantined page", i, uint64(nb))
		}
		a.Free(c, nb, 64)
	}
	a.DrainAll(c)
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency after quarantine: %v", err)
	}
}

// TestHardenDoubleFree frees the same block twice: the second free must
// be detected, swallowed (no freelist corruption), and survive a full
// consistency check.
func TestHardenDoubleFree(t *testing.T) {
	m, a, reports := newHardenAlloc(t, &harden.Config{})
	c := m.CPU(0)

	b, err := a.Alloc(c, 128)
	if err != nil {
		t.Fatal(err)
	}
	a.SetHardenSite(c, "test:first-free")
	a.Free(c, b, 128)
	a.SetHardenSite(c, "test:second-free")
	a.Free(c, b, 128)

	if len(*reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(*reports))
	}
	rep := (*reports)[0]
	if rep.Kind != harden.KindDoubleFree {
		t.Errorf("kind = %v, want double free", rep.Kind)
	}
	if rep.LastFree.Site != "test:first-free" {
		t.Errorf("last free site = %q, want test:first-free", rep.LastFree.Site)
	}
	if rep.Site != "test:second-free" {
		t.Errorf("detection site = %q, want test:second-free", rep.Site)
	}
	st := a.Stats(c)
	if st.Quarantine.DoubleFrees != 1 {
		t.Errorf("double frees = %d, want 1", st.Quarantine.DoubleFrees)
	}
	a.DrainAll(c)
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency after double free: %v", err)
	}
}

// TestHardenUseAfterFree writes through a stale pointer after free and
// asserts verify-on-alloc catches the destroyed poison before the block
// is handed back out.
func TestHardenUseAfterFree(t *testing.T) {
	m, a, reports := newHardenAlloc(t, &harden.Config{})
	c := m.CPU(0)

	a.SetHardenSite(c, "test:victim")
	b, err := a.Alloc(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(c, b, 64)
	a.SetHardenSite(c, "test:innocent")

	// Late write through the stale pointer, past the freelist link word.
	m.Mem().Fill(b+16, 1, 0x77)

	// The per-CPU cache is LIFO, so the next same-size alloc would serve
	// the corrupted block; verify-on-alloc must park it and serve another.
	nb, err := a.Alloc(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	if nb == b {
		t.Fatalf("allocator served the corrupted block %#x", uint64(b))
	}
	if len(*reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(*reports))
	}
	rep := (*reports)[0]
	if rep.Kind != harden.KindUseAfterFree {
		t.Errorf("kind = %v, want use-after-free", rep.Kind)
	}
	if rep.Addr != uint64(b) {
		t.Errorf("addr = %#x, want %#x", rep.Addr, uint64(b))
	}
	if rep.Offset != 16 {
		t.Errorf("offset = %d, want 16", rep.Offset)
	}
	if rep.LastAlloc.Site != "test:victim" || rep.LastFree.Site != "test:victim" {
		t.Errorf("provenance sites = alloc %q free %q, want test:victim",
			rep.LastAlloc.Site, rep.LastFree.Site)
	}
	st := a.Stats(c)
	if st.Quarantine.UseAfterFrees != 1 || st.Quarantine.Pages != 1 {
		t.Errorf("quarantine stats = %+v, want 1 UAF, 1 page", st.Quarantine)
	}
	a.Free(c, nb, 64)
	a.DrainAll(c)
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency after UAF quarantine: %v", err)
	}
}

// TestHardenAuditSweep smashes a live block's canary and asserts the
// reclaim-time sweep finds the dormant corruption without the block ever
// being freed.
func TestHardenAuditSweep(t *testing.T) {
	m, a, reports := newHardenAlloc(t, &harden.Config{})
	c := m.CPU(0)
	usable := a.RoundedSize(256)

	b, err := a.Alloc(c, 256)
	if err != nil {
		t.Fatal(err)
	}
	m.Mem().Fill(b+arena.Addr(usable), 2, 0x42)

	reps := a.AuditSweep(c)
	if len(reps) != 1 || len(*reports) != 1 {
		t.Fatalf("sweep filed %d reports (callback %d), want 1", len(reps), len(*reports))
	}
	if reps[0].Kind != harden.KindOverrun || reps[0].Addr != uint64(b) {
		t.Errorf("sweep report = %v at %#x, want overrun at %#x",
			reps[0].Kind, reps[0].Addr, uint64(b))
	}
	if st := a.Stats(c); st.Quarantine.Pages != 1 {
		t.Errorf("quarantined pages = %d, want 1", st.Quarantine.Pages)
	}
	// A second sweep must not re-report the already-quarantined page.
	if reps := a.AuditSweep(c); len(reps) != 0 {
		t.Errorf("second sweep re-reported %d findings", len(reps))
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestHardenLargeOverrun plants a write past a large span's usable bytes
// and asserts free-time detection quarantines the whole span.
func TestHardenLargeOverrun(t *testing.T) {
	m, a, reports := newHardenAlloc(t, &harden.Config{})
	c := m.CPU(0)
	size := 3*m.Config().PageBytes + 100
	usable := a.RoundedSize(size)

	b, err := a.Alloc(c, size)
	if err != nil {
		t.Fatal(err)
	}
	m.Mem().Fill(b+arena.Addr(usable), 1, 0x43)
	a.Free(c, b, size)

	if len(*reports) != 1 || (*reports)[0].Kind != harden.KindOverrun {
		t.Fatalf("reports = %v, want one overrun", *reports)
	}
	st := a.Stats(c)
	if st.Quarantine.Pages != 4 {
		t.Errorf("quarantined pages = %d, want 4 (the whole span)", st.Quarantine.Pages)
	}
	if got := m.Phys().Stats().Quarantined; got != 4 {
		t.Errorf("physmem quarantined = %d, want 4", got)
	}
	// Double free of the quarantined span is itself detected and swallowed.
	a.Free(c, b, size)
	if n := len(*reports); n != 2 || (*reports)[1].Kind != harden.KindDoubleFree {
		t.Fatalf("after re-free: %d reports, want double-free second", n)
	}
	a.DrainAll(c)
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestHardenPolicyPanic asserts PolicyPanic aborts with the report text.
func TestHardenPolicyPanic(t *testing.T) {
	m, a, _ := newHardenAlloc(t, &harden.Config{Policy: harden.PolicyPanic})
	c := m.CPU(0)
	b, err := a.Alloc(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(c, b, 64)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double free under PolicyPanic did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "double-free") {
			t.Errorf("panic value %v does not carry the report", r)
		}
	}()
	a.Free(c, b, 64)
}

// TestHardenPolicyLog asserts log-only mode reports but never contains:
// no quarantined pages, and the free proceeds.
func TestHardenPolicyLog(t *testing.T) {
	m, a, reports := newHardenAlloc(t, &harden.Config{Policy: harden.PolicyLog})
	c := m.CPU(0)
	usable := a.RoundedSize(64)
	b, err := a.Alloc(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	m.Mem().Fill(b+arena.Addr(usable), 1, 0x44)
	a.Free(c, b, 64)
	if len(*reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(*reports))
	}
	st := a.Stats(c)
	if st.Quarantine.Pages != 0 || st.Quarantine.Objects != 0 {
		t.Errorf("log-only quarantined %+v, want none", st.Quarantine)
	}
	a.DrainAll(c)
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestHardenEventsAndReports asserts HardenReports retains the filed
// reports and the corruption/quarantine events reach the event spine.
func TestHardenEventsAndReports(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 2
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 1024
	m := machine.New(cfg)
	var ec EventCounter
	a, err := New(m, Params{Harden: &harden.Config{}, Hook: ec.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	b, _ := a.Alloc(c, 64)
	a.Free(c, b, 64)
	a.Free(c, b, 64) // double free

	reps := a.HardenReports(c)
	if len(reps) != 1 || reps[0].Kind != harden.KindDoubleFree {
		t.Fatalf("HardenReports = %v, want one double free", reps)
	}
	if got := ec.Count(EvCorruption); got != 1 {
		t.Errorf("EvCorruption count = %d, want 1", got)
	}
	if got := ec.Count(EvQuarantine); got != 1 {
		t.Errorf("EvQuarantine count = %d, want 1", got)
	}
	if len(reps[0].Recent) == 0 {
		t.Error("report carries no audit-ring history")
	}
}

// TestHardenRoundedSize asserts the hardened allocator reports usable
// capacities (footprint minus redzone), so clients sizing to
// RoundedSize never touch the canary.
func TestHardenRoundedSize(t *testing.T) {
	m, a, _ := newHardenAlloc(t, &harden.Config{})
	plainM := machine.New(machine.DefaultConfig())
	plain, err := New(plainM, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sz := range []uint64{8, 16, 64, 100, 1024, 5000} {
		hr, pr := a.RoundedSize(sz), plain.RoundedSize(sz)
		if hr < sz {
			t.Errorf("RoundedSize(%d) = %d < request", sz, hr)
		}
		// The redzone can push the request into a larger class, so the
		// hardened usable capacity may exceed the plain one — but the
		// footprint (usable + redzone) must stay a real class/page size.
		if prf := plain.RoundedSize(hr + 16); prf != hr+16 {
			t.Errorf("RoundedSize(%d) = %d: footprint %d is not a class size (plain rounds to %d)",
				sz, hr, hr+16, prf)
		}
		_ = pr
	}
	c := m.CPU(0)
	// The full usable capacity is writable without tripping the canary.
	b, err := a.Alloc(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	m.Mem().Fill(b, a.RoundedSize(100), 0x55)
	a.Free(c, b, 100)
	if reps := a.HardenReports(c); len(reps) != 0 {
		t.Fatalf("writing the usable capacity tripped %d reports", len(reps))
	}
}
