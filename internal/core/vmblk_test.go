package core

import (
	"errors"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// vmblk-layer unit tests: span arithmetic, boundary tags, dope vector,
// vmblk growth and virtual-address exhaustion.

func TestMultipleVmblkGrowth(t *testing.T) {
	// One vmblk holds 1016 data pages (1024 minus 8 header pages); force
	// allocation of several vmblks with large spans.
	a, m := testAllocator(t, 1, 4096, Params{RadixSort: true})
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes

	var spans []arena.Addr
	spanSize := 500 * pageBytes
	for i := 0; i < 6; i++ {
		b, err := a.Alloc(c, spanSize)
		if err != nil {
			t.Fatalf("span %d: %v", i, err)
		}
		spans = append(spans, b)
	}
	st := a.Stats(c)
	if st.VM.VmblkCreates < 3 {
		t.Fatalf("only %d vmblks for 3000 pages of spans", st.VM.VmblkCreates)
	}
	checkOK(t, a)
	for _, b := range spans {
		a.Free(c, b, spanSize)
	}
	checkOK(t, a)
}

func TestVirtualAddressExhaustion(t *testing.T) {
	// Arena sized to exactly one vmblk: VA runs out before physical
	// memory, and the allocator must report the typed ErrNoVA (distinct
	// from the ErrNoMemory frame shortage), not wedge.
	cfg := machine.DefaultConfig()
	cfg.MemBytes = 4 << 20 // one vmblk
	cfg.PhysPages = 1 << 20
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	var held []arena.Addr
	size := uint64(16 * 4096)
	for {
		b, err := a.Alloc(c, size)
		if err != nil {
			if !errors.Is(err, ErrNoVA) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		held = append(held, b)
	}
	// 1016 data pages / 16 pages per span = 63 spans.
	if len(held) != 63 {
		t.Fatalf("allocated %d spans, want 63", len(held))
	}
	for _, b := range held {
		a.Free(c, b, size)
	}
	checkOK(t, a)
}

func TestSpanFirstFitPrefersSmallest(t *testing.T) {
	a, m := testAllocator(t, 1, 4096, Params{RadixSort: true})
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes

	// Carve the data area into alternating allocated/free spans of
	// growing sizes, then allocate a small span: it must come from the
	// smallest adequate hole, not split the big one.
	var anchors []arena.Addr
	var holes []arena.Addr
	for _, n := range []uint64{2, 4, 8, 16} {
		h, err := a.Alloc(c, n*pageBytes) // future hole
		if err != nil {
			t.Fatal(err)
		}
		holes = append(holes, h)
		anch, err := a.Alloc(c, 1*pageBytes+1) // 2-page separator kept live
		if err != nil {
			t.Fatal(err)
		}
		anchors = append(anchors, anch)
	}
	sizes := []uint64{2, 4, 8, 16}
	for i, h := range holes {
		a.Free(c, h, sizes[i]*pageBytes)
	}
	// A 3-page request must reuse the 4-page hole (smallest fit >= 3).
	b, err := a.Alloc(c, 3*pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	if b != holes[1] {
		t.Fatalf("3-page span at %#x, want the 4-page hole at %#x", b, holes[1])
	}
	a.Free(c, b, 3*pageBytes)
	for i, anch := range anchors {
		_ = i
		a.Free(c, anch, 1*pageBytes+1)
	}
	checkOK(t, a)
}

func TestHugeSpanBucketWalk(t *testing.T) {
	// Spans >= 64 pages share the final bucket and are found first-fit.
	a, m := testAllocator(t, 1, 8192, Params{RadixSort: true})
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes

	b1, err := a.Alloc(c, 100*pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := a.Alloc(c, pageBytes) // live anchor: keeps the holes apart
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.Alloc(c, 200*pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := a.Alloc(c, pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(c, b1, 100*pageBytes)
	a.Free(c, b2, 200*pageBytes)
	// 150 pages fits only the 200-page hole (b2's), not b1's 100.
	b3, err := a.Alloc(c, 150*pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	if b3 != b2 {
		t.Fatalf("150-page span at %#x, want %#x", b3, b2)
	}
	a.Free(c, b3, 150*pageBytes)
	a.Free(c, a1, pageBytes)
	a.Free(c, a2, pageBytes)
	checkOK(t, a)
}

func TestLookupUnmanagedAddressPanics(t *testing.T) {
	a, m := testAllocator(t, 1, 256, Params{RadixSort: true})
	c := m.CPU(0)
	// Force one vmblk to exist.
	b, _ := a.Alloc(c, 64)
	defer a.Free(c, b, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("lookup of unmanaged address did not panic")
		}
	}()
	// An address in a vmblk slot that was never created.
	a.vm.lookup(c, 10<<22)
}

func TestFreeByAddrOnSpanInteriorPanics(t *testing.T) {
	a, m := testAllocator(t, 1, 1024, Params{RadixSort: true})
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes
	b, err := a.Alloc(c, 4*pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Free(c, b, 4*pageBytes)
	defer func() {
		if recover() == nil {
			t.Fatal("FreeByAddr of span interior did not panic")
		}
	}()
	a.FreeByAddr(c, b+arena.Addr(pageBytes)) // interior page, state pdAllocMid
}

func TestBoundaryTagMergeAllDirections(t *testing.T) {
	a, m := testAllocator(t, 1, 4096, Params{RadixSort: true})
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes
	one := func() arena.Addr {
		b, err := a.Alloc(c, 2*pageBytes)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// Allocate five adjacent 2-page spans; free in an order that
	// exercises merge-left, merge-right, and merge-both.
	s := []arena.Addr{one(), one(), one(), one(), one()}
	a.Free(c, s[0], 2*pageBytes) // no merge (left neighbour is... free span from carving)
	a.Free(c, s[2], 2*pageBytes) // isolated
	a.Free(c, s[1], 2*pageBytes) // merges both sides
	a.Free(c, s[4], 2*pageBytes) // merges right into the trailing space
	a.Free(c, s[3], 2*pageBytes) // merges everything
	checkOK(t, a)
	// All ten pages (plus the rest of the vmblk) must form one span: a
	// 10-page allocation must land exactly at s[0].
	b, err := a.Alloc(c, 10*pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	if b != s[0] {
		t.Fatalf("coalesced span at %#x, want %#x", b, s[0])
	}
	a.Free(c, b, 10*pageBytes)
	checkOK(t, a)
}

func TestHeaderPagesAccounted(t *testing.T) {
	a, m := testAllocator(t, 1, 1024, Params{RadixSort: true})
	c := m.CPU(0)
	before := m.Phys().Mapped()
	if before != 0 {
		t.Fatalf("pages mapped before first use: %d", before)
	}
	b, _ := a.Alloc(c, 64)
	// First allocation creates a vmblk (8 header pages) and refills the
	// whole chain: gbltarget lists of target 64-byte blocks.
	cls := a.classFor(64)
	refillBytes := uint64(a.classes[cls].gbltarget*a.classes[cls].target) * 64
	wantData := int64((refillBytes + m.Config().PageBytes - 1) / m.Config().PageBytes)
	if got := m.Phys().Mapped(); got != 8+wantData {
		t.Fatalf("mapped %d pages after first alloc, want %d (8 header + %d data)",
			got, 8+wantData, wantData)
	}
	a.Free(c, b, 64)
	a.DrainAll(c)
	// Data page released; headers stay (the vmblk persists).
	if got := m.Phys().Mapped(); got != 8 {
		t.Fatalf("mapped %d pages after drain, want 8", got)
	}
	checkOK(t, a)
}

func TestPageDescriptorLinesInsideHeader(t *testing.T) {
	// Page descriptors must live in the vmblk's reserved header VA, so
	// their cache lines are real arena lines.
	a, m := testAllocator(t, 1, 1024, Params{RadixSort: true})
	c := m.CPU(0)
	b, _ := a.Alloc(c, 64)
	defer a.Free(c, b, 64)
	vb := a.vm.dope[0]
	if vb == nil {
		t.Fatal("no vmblk")
	}
	hdrLines := uint64(vb.headerPages) * m.Config().PageBytes >> m.Config().LineShift
	for i := range vb.pds {
		l := uint64(vb.pds[i].line)
		base := uint64(vb.base) >> m.Config().LineShift
		if l < base || l >= base+hdrLines {
			t.Fatalf("pd %d line %#x outside header [%#x, %#x)", i, l, base, base+hdrLines)
		}
	}
}
