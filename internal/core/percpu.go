package core

import (
	"kmem/internal/arena"
	"kmem/internal/blocklist"
	"kmem/internal/machine"
)

// pcpu is one per-CPU, per-size-class cache: the split freelist of the
// paper's Figure 2. Blocks are normally allocated from and freed to main;
// aux holds a full target-sized list so that exchanges with the global
// layer move whole lists rather than individual blocks. A CPU never
// touches another CPU's caches on the common path, "removing the need for
// any synchronization primitives (other than the disabling of
// interrupts)".
type pcpu struct {
	main blocklist.List
	aux  blocklist.List
	line machine.Line // the cache line holding this cache's state

	// target is this cache's copy of the class target. With adaptation
	// off it never changes; with adaptation on it is requoted from the
	// class controller lazily — on refill, spill and drain — so the fast
	// path stays lock-free and never reads shared controller state.
	target int

	// ev tallies this cache's slice of the event spine (EvAlloc, EvFree,
	// EvCPURefill, EvCPUSpill), written only under the owner's IntrLock.
	ev eventCounts

	// notedOps is the EvAlloc+EvFree total as of this cache's last
	// report to the adaptive controller; the delta batches fast-path
	// operations into the controller's window at refill/spill time.
	notedOps uint64

	// remote[n] is this cache's remote-free shard for node n: frees of
	// blocks homed on node n != the CPU's own node stage here under the
	// IntrLock alone, and the shard flushes to node n's global pool in
	// one batched putList when it reaches target blocks — one remote
	// lock trip per target remote frees instead of one per spill
	// partition. nil on single-node machines and under
	// Params.DisableRemoteShards; the owner CPU's shard for its own node
	// is never used (home frees go through main).
	remote []blocklist.List

	// memoVmblk/memoHome are the 1-entry home-lookup memo: the vmblk
	// index of the last block this cache classified on the sharded free
	// path and that vmblk's home node. A block's 4 MB vmblk determines
	// its home and a vmblk's home never changes, so consecutive frees
	// within one vmblk answer "local or remote?" with a compare
	// (insnHomeMemo) instead of a charged dope-vector lookup.
	// memoVmblk is -1 until the first miss fills it.
	memoVmblk int64
	memoHome  int8
}

// ops returns the fast-path operation count; caller holds the IntrLock.
func (pc *pcpu) ops() uint64 { return pc.ev[EvAlloc] + pc.ev[EvFree] }

// allocFast attempts the common-case allocation: pop from main, moving
// aux to main if main is empty. The caller holds the CPU's IntrLock.
// Instruction accounting (cookie interface totals 13, per the paper):
// cli/sti = 2, read cache state = 1, pop link = 1, write cache state = 1,
// residual straight-line work = 8.
func (a *Allocator) allocFast(c *machine.CPU, pc *pcpu) (arena.Addr, bool) {
	c.Read(pc.line)
	if pc.main.Empty() {
		if pc.aux.Empty() {
			return arena.NilAddr, false
		}
		// Constant-time whole-list move: main <- aux.
		pc.main = pc.aux.Take()
		c.Work(2)
	}
	b := pc.main.Pop(c, a.mem)
	pc.ev[EvAlloc]++
	c.Write(pc.line)
	c.Work(insnCookieAllocResidual)
	return b, true
}

// freeFast performs the common-case free: push onto main; when main is
// full, spill aux (if any) for return to the global layer and rotate
// main into aux. The returned list, when non-empty, must be handed to the
// global layer by the caller after releasing the IntrLock. The caller
// holds the CPU's IntrLock.
func (a *Allocator) freeFast(c *machine.CPU, pc *pcpu, target int, b arena.Addr) blocklist.List {
	c.Read(pc.line)
	var spill blocklist.List
	if pc.main.Len() >= target {
		if !pc.aux.Empty() {
			spill = pc.aux.Take()
			pc.ev[EvCPUSpill]++
		}
		pc.aux = pc.main.Take()
		c.Work(2)
	}
	pc.main.Push(c, a.mem, b)
	pc.ev[EvFree]++
	c.Write(pc.line)
	c.Work(insnCookieFreeResidual)
	return spill
}

// allocFastSingle and freeFastSingle implement ablation A2: the same
// cache capacity but a single freelist exchanging blocks with the global
// layer one at a time. Without the split-list hysteresis, a workload
// oscillating at the cache-size boundary hits the global lock on nearly
// every operation.
func (a *Allocator) allocFastSingle(c *machine.CPU, pc *pcpu) (arena.Addr, bool) {
	c.Read(pc.line)
	if pc.main.Empty() {
		return arena.NilAddr, false
	}
	b := pc.main.Pop(c, a.mem)
	pc.ev[EvAlloc]++
	c.Write(pc.line)
	c.Work(insnCookieAllocResidual)
	return b, true
}

func (a *Allocator) freeFastSingle(c *machine.CPU, pc *pcpu, target int, b arena.Addr) blocklist.List {
	c.Read(pc.line)
	var spill blocklist.List
	if pc.main.Len() >= 2*target {
		// Return a single block to the global layer.
		spill.Push(c, a.mem, pc.main.Pop(c, a.mem))
		pc.ev[EvCPUSpill]++
	}
	pc.main.Push(c, a.mem, b)
	pc.ev[EvFree]++
	c.Write(pc.line)
	c.Work(insnCookieFreeResidual)
	return spill
}

// freeShard is the sharded remote-free path: push block b (homed on node
// home, not the executing CPU's node) onto the per-node shard. When the
// shard reaches target blocks it is taken whole for the caller to flush
// to node home's global pool in one batched putList after releasing the
// IntrLock. Charging mirrors freeFast: read cache state, push link,
// write cache state, residual straight-line work, plus the constant-time
// whole-list take on a flush. The caller holds the CPU's IntrLock.
func (a *Allocator) freeShard(c *machine.CPU, pc *pcpu, target int, home int, b arena.Addr) blocklist.List {
	c.Read(pc.line)
	sh := &pc.remote[home]
	sh.Push(c, a.mem, b)
	pc.ev[EvFree]++
	c.Write(pc.line)
	c.Work(insnCookieFreeResidual)
	var flush blocklist.List
	if sh.Len() >= target {
		flush = sh.Take()
		pc.ev[EvShardFlush]++
		c.Work(2)
	}
	return flush
}

// takeAll empties both halves of the cache, returning the blocks for the
// global layer. Used by cache drains; caller holds the IntrLock.
func (pc *pcpu) takeAll(c *machine.CPU) (blocklist.List, blocklist.List) {
	c.Read(pc.line)
	m := pc.main.Take()
	x := pc.aux.Take()
	c.Write(pc.line)
	return m, x
}

// takeShards empties every remote shard, returning the staged lists
// indexed by home node (nil when the cache has no shards or nothing is
// staged). Each returned list is already partitioned by home, so drains
// hand them straight to the home pools without routeSpill's per-block
// lookups. Caller holds the IntrLock.
func (pc *pcpu) takeShards(c *machine.CPU) []blocklist.List {
	var out []blocklist.List
	for n := range pc.remote {
		if pc.remote[n].Empty() {
			continue
		}
		if out == nil {
			out = make([]blocklist.List, len(pc.remote))
		}
		out[n] = pc.remote[n].Take()
		pc.ev[EvShardFlush]++
		c.Work(2)
	}
	if out != nil {
		c.Write(pc.line)
	}
	return out
}

// held reports the number of blocks cached, including blocks staged in
// remote shards; caller holds the IntrLock.
func (pc *pcpu) held() int {
	n := pc.main.Len() + pc.aux.Len()
	for i := range pc.remote {
		n += pc.remote[i].Len()
	}
	return n
}
