package core

import (
	"kmem/internal/arena"
	"kmem/internal/blocklist"
	"kmem/internal/machine"
)

// pcpu is one per-CPU, per-size-class cache: the split freelist of the
// paper's Figure 2. Blocks are normally allocated from and freed to main;
// aux holds a full target-sized list so that exchanges with the global
// layer move whole lists rather than individual blocks. A CPU never
// touches another CPU's caches on the common path, "removing the need for
// any synchronization primitives (other than the disabling of
// interrupts)".
type pcpu struct {
	main blocklist.List
	aux  blocklist.List
	line machine.Line // the cache line holding this cache's state

	// target is this cache's copy of the class target. With adaptation
	// off it never changes; with adaptation on it is requoted from the
	// class controller lazily — on refill, spill and drain — so the fast
	// path stays lock-free and never reads shared controller state.
	target int

	// ev tallies this cache's slice of the event spine (EvAlloc, EvFree,
	// EvCPURefill, EvCPUSpill), written only under the owner's IntrLock.
	ev eventCounts

	// notedOps is the EvAlloc+EvFree total as of this cache's last
	// report to the adaptive controller; the delta batches fast-path
	// operations into the controller's window at refill/spill time.
	notedOps uint64
}

// ops returns the fast-path operation count; caller holds the IntrLock.
func (pc *pcpu) ops() uint64 { return pc.ev[EvAlloc] + pc.ev[EvFree] }

// allocFast attempts the common-case allocation: pop from main, moving
// aux to main if main is empty. The caller holds the CPU's IntrLock.
// Instruction accounting (cookie interface totals 13, per the paper):
// cli/sti = 2, read cache state = 1, pop link = 1, write cache state = 1,
// residual straight-line work = 8.
func (a *Allocator) allocFast(c *machine.CPU, pc *pcpu) (arena.Addr, bool) {
	c.Read(pc.line)
	if pc.main.Empty() {
		if pc.aux.Empty() {
			return arena.NilAddr, false
		}
		// Constant-time whole-list move: main <- aux.
		pc.main = pc.aux.Take()
		c.Work(2)
	}
	b := pc.main.Pop(c, a.mem)
	pc.ev[EvAlloc]++
	c.Write(pc.line)
	c.Work(insnCookieAllocResidual)
	return b, true
}

// freeFast performs the common-case free: push onto main; when main is
// full, spill aux (if any) for return to the global layer and rotate
// main into aux. The returned list, when non-empty, must be handed to the
// global layer by the caller after releasing the IntrLock. The caller
// holds the CPU's IntrLock.
func (a *Allocator) freeFast(c *machine.CPU, pc *pcpu, target int, b arena.Addr) blocklist.List {
	c.Read(pc.line)
	var spill blocklist.List
	if pc.main.Len() >= target {
		if !pc.aux.Empty() {
			spill = pc.aux.Take()
			pc.ev[EvCPUSpill]++
		}
		pc.aux = pc.main.Take()
		c.Work(2)
	}
	pc.main.Push(c, a.mem, b)
	pc.ev[EvFree]++
	c.Write(pc.line)
	c.Work(insnCookieFreeResidual)
	return spill
}

// allocFastSingle and freeFastSingle implement ablation A2: the same
// cache capacity but a single freelist exchanging blocks with the global
// layer one at a time. Without the split-list hysteresis, a workload
// oscillating at the cache-size boundary hits the global lock on nearly
// every operation.
func (a *Allocator) allocFastSingle(c *machine.CPU, pc *pcpu) (arena.Addr, bool) {
	c.Read(pc.line)
	if pc.main.Empty() {
		return arena.NilAddr, false
	}
	b := pc.main.Pop(c, a.mem)
	pc.ev[EvAlloc]++
	c.Write(pc.line)
	c.Work(insnCookieAllocResidual)
	return b, true
}

func (a *Allocator) freeFastSingle(c *machine.CPU, pc *pcpu, target int, b arena.Addr) blocklist.List {
	c.Read(pc.line)
	var spill blocklist.List
	if pc.main.Len() >= 2*target {
		// Return a single block to the global layer.
		spill.Push(c, a.mem, pc.main.Pop(c, a.mem))
		pc.ev[EvCPUSpill]++
	}
	pc.main.Push(c, a.mem, b)
	pc.ev[EvFree]++
	c.Write(pc.line)
	c.Work(insnCookieFreeResidual)
	return spill
}

// takeAll empties both halves of the cache, returning the blocks for the
// global layer. Used by cache drains; caller holds the IntrLock.
func (pc *pcpu) takeAll(c *machine.CPU) (blocklist.List, blocklist.List) {
	c.Read(pc.line)
	m := pc.main.Take()
	x := pc.aux.Take()
	c.Write(pc.line)
	return m, x
}

// held reports the number of blocks cached; caller holds the IntrLock.
func (pc *pcpu) held() int { return pc.main.Len() + pc.aux.Len() }
