package core

import (
	"errors"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/blocklist"
)

// Unit tests for globalPool paths not covered by the integration tests.

func TestGetOnePrefersBucket(t *testing.T) {
	a, m := testAllocator(t, 1, 1024, Params{RadixSort: true, DisableSplitFreelist: true})
	c := m.CPU(0)
	cls := a.classFor(64)
	g := a.classes[cls].globals[0]

	// Prime the global layer through normal traffic.
	var bs []arena.Addr
	for i := 0; i < 60; i++ {
		b, err := a.Alloc(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	for _, b := range bs {
		a.Free(c, b, 64)
	}
	a.DrainCPU(c, 0)

	// Inject an odd-sized list into the bucket via a partial drain: the
	// pool now has full lists and possibly bucket remainder. getOne must
	// return exactly one block regardless.
	held := g.blocksHeld(c)
	if held == 0 {
		t.Fatal("nothing in global pool")
	}
	lst, err := g.getOne(c)
	if err != nil {
		t.Fatal(err)
	}
	if lst.Len() != 1 {
		t.Fatalf("getOne returned %d blocks", lst.Len())
	}
	if got := g.blocksHeld(c); got != held-1 {
		t.Fatalf("pool went from %d to %d", held, got)
	}
	// Return the block.
	b := lst.Pop(c, a.mem)
	a.Free(c, b, 64)
	checkOK(t, a)
}

func TestGetOneRefillsWhenEmpty(t *testing.T) {
	a, m := testAllocator(t, 1, 1024, Params{RadixSort: true, DisableSplitFreelist: true})
	c := m.CPU(0)
	cls := a.classFor(64)
	g := a.classes[cls].globals[0]
	if g.blocksHeld(c) != 0 {
		t.Fatal("pool not empty at start")
	}
	lst, err := g.getOne(c)
	if err != nil {
		t.Fatal(err)
	}
	if lst.Len() != 1 {
		t.Fatalf("getOne returned %d blocks", lst.Len())
	}
	st := a.Stats(c).Classes[cls]
	if st.GlobalRefills != 1 {
		t.Fatalf("refills = %d", st.GlobalRefills)
	}
	b := lst.Pop(c, a.mem)
	a.Free(c, b, 64)
	checkOK(t, a)
}

func TestGetOneExhausted(t *testing.T) {
	a, m := testAllocator(t, 1, 8, Params{RadixSort: true, DisableSplitFreelist: true}) // header only
	c := m.CPU(0)
	cls := a.classFor(64)
	g := a.classes[cls].globals[0]
	if _, err := g.getOne(c); err == nil {
		t.Fatal("getOne on starved machine succeeded")
	} else if !errors.Is(err, ErrNoMemory) && !errors.Is(err, ErrNoVA) {
		// physmem error is also acceptable; what matters is failure.
		t.Logf("error: %v", err)
	}
}

func TestPutListOddSizesRegroup(t *testing.T) {
	a, m := testAllocator(t, 1, 1024, Params{RadixSort: true})
	c := m.CPU(0)
	cls := a.classFor(32)
	g := a.classes[cls].globals[0]
	target := a.classes[cls].target

	// Hand the pool several odd-sized lists directly.
	mkList := func(n int) (l blocklist.List) {
		for i := 0; i < n; i++ {
			b, err := a.Alloc(c, 32)
			if err != nil {
				t.Fatal(err)
			}
			l.Push(c, a.mem, b)
		}
		return l
	}
	a.DrainCPU(c, 0) // keep the per-CPU cache out of the picture
	l1 := mkList(target - 1)
	l2 := mkList(target + 3)
	a.DrainCPU(c, 0)
	before := g.blocksHeld(c)
	g.putList(c, l1)
	g.putList(c, l2)
	after := g.blocksHeld(c)
	if after-before != 2*target+2 {
		t.Fatalf("pool grew by %d, want %d", after-before, 2*target+2)
	}
	g.lk.Acquire(c)
	for i, lst := range g.lists {
		if lst.Len() != target {
			t.Fatalf("list %d has %d blocks", i, lst.Len())
		}
	}
	g.lk.Release(c)
	a.DrainAll(c)
	checkOK(t, a)
}

func TestDumpFIFOMode(t *testing.T) {
	a, m := testAllocator(t, 1, 1024, Params{RadixSort: false})
	c := m.CPU(0)
	b, _ := a.Alloc(c, 256)
	var sb dumpBuilder
	a.Dump(&sb)
	a.Free(c, b, 256)
	if len(sb.data) == 0 {
		t.Fatal("empty dump")
	}
}

// dumpBuilder is a minimal io.Writer.
type dumpBuilder struct{ data []byte }

func (d *dumpBuilder) Write(p []byte) (int, error) {
	d.data = append(d.data, p...)
	return len(p), nil
}
