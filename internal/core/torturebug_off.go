//go:build !torturecheck

package core

// TortureBugsAvailable reports whether this binary was built with the
// torturecheck tag and can arm planted bugs.
const TortureBugsAvailable = false

// tortureBug reports whether planted bug b is armed. Without the
// torturecheck tag it is constant false and the guarded branches
// disappear at compile time, so production builds carry no mutation
// hooks at all.
func tortureBug(b int) bool { return false }

// SetTortureBug is a no-op without the torturecheck build tag.
func SetTortureBug(b int, on bool) {}
