package core

import (
	"testing"
	"testing/quick"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// TestQuickRandomOpSequences property-tests the whole allocator: any
// sequence of allocations and frees (random sizes, random free order,
// random CPUs) must leave every invariant intact and never hand out
// overlapping blocks.
func TestQuickRandomOpSequences(t *testing.T) {
	type op struct {
		Alloc bool
		Size  uint16
		CPU   uint8
		Which uint8
	}
	f := func(ops []op) bool {
		cfg := machine.DefaultConfig()
		cfg.NumCPUs = 3
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = 512
		m := machine.New(cfg)
		a, err := New(m, Params{RadixSort: true, Poison: true})
		if err != nil {
			t.Fatal(err)
		}
		type held struct {
			addr arena.Addr
			size uint64
		}
		var live []held
		for _, o := range ops {
			c := m.CPU(int(o.CPU) % 3)
			if o.Alloc || len(live) == 0 {
				size := uint64(o.Size)%6000 + 1
				b, err := a.Alloc(c, size)
				if err != nil {
					continue // low memory is legal; invariants still checked below
				}
				live = append(live, held{b, size})
			} else {
				i := int(o.Which) % len(live)
				a.Free(c, live[i].addr, live[i].size)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, h := range live {
			a.Free(m.CPU(0), h.addr, h.size)
		}
		a.DrainAll(m.CPU(0))
		if err := a.CheckConsistency(); err != nil {
			t.Log(err)
			return false
		}
		// Everything freed and drained: only vmblk headers stay mapped.
		st := a.Stats(m.CPU(0))
		return st.Phys.Mapped == int64(8*st.VM.VmblkCreates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNoOverlap verifies allocations never overlap for arbitrary
// size mixes while live.
func TestQuickNoOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		cfg := machine.DefaultConfig()
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = 1024
		m := machine.New(cfg)
		a, err := New(m, Params{RadixSort: true})
		if err != nil {
			t.Fatal(err)
		}
		c := m.CPU(0)
		type iv struct{ lo, hi arena.Addr }
		var ivs []iv
		for _, s := range sizes {
			size := uint64(s)%8192 + 1
			b, err := a.Alloc(c, size)
			if err != nil {
				continue
			}
			// The allocator must round up; the usable extent is the
			// requested size at minimum.
			ivs = append(ivs, iv{b, b + size})
		}
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
					t.Logf("overlap: [%#x,%#x) and [%#x,%#x)", ivs[i].lo, ivs[i].hi, ivs[j].lo, ivs[j].hi)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCyclicSizeShifts models the paper's cyclic commercial
// workload: phases that each allocate a different size distribution must
// always be satisfiable because coalescing returns the previous phase's
// memory.
func TestQuickCyclicSizeShifts(t *testing.T) {
	f := func(phaseSizes []uint16) bool {
		if len(phaseSizes) == 0 {
			return true
		}
		if len(phaseSizes) > 12 {
			phaseSizes = phaseSizes[:12]
		}
		cfg := machine.DefaultConfig()
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = 300
		m := machine.New(cfg)
		a, err := New(m, Params{RadixSort: true})
		if err != nil {
			t.Fatal(err)
		}
		c := m.CPU(0)
		for _, ps := range phaseSizes {
			size := uint64(ps)%4080 + 16
			var bs []arena.Addr
			// Fill most of memory with this size...
			for i := 0; i < 200; i++ {
				b, err := a.Alloc(c, size)
				if err != nil {
					break
				}
				bs = append(bs, b)
			}
			if len(bs) == 0 {
				t.Logf("phase size %d: nothing allocatable", size)
				return false
			}
			// ...then free it all; the next phase must find it again.
			for _, b := range bs {
				a.Free(c, b, size)
			}
		}
		a.DrainAll(c)
		return a.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
