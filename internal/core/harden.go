package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"kmem/internal/arena"
	"kmem/internal/harden"
	"kmem/internal/machine"
)

// This file is the allocator side of the corruption-hardening layer
// (Params.Harden; the shared vocabulary lives in internal/harden). The
// layer threads through four places:
//
//   - alloc.go maps hardened requests to the class serving size+redzone
//     and calls hardenAlloc/hardenFree at the two choke points every
//     small block passes through;
//   - pagepool.go parks blocks returning to quarantined pages instead
//     of refiling them (putBlockLocked) and drops stale owner slots
//     when a page is freed or re-carved;
//   - vmblk.go contributes the pdfQuarantined residency flag, which
//     keeps quarantined pages out of span coalescing and decommit;
//   - physmem records quarantined frames so the pinned-but-unusable
//     memory is visible at the bottom layer too.
//
// Locking: the hardening state has one spinlock (hd.lk) guarding the
// owner slots, audit rings, site tags and report buffer. The only
// nesting ever used is pagePool.lk -> hd.lk (forgetPage from carve and
// page-free); no path acquires a pool lock while holding hd.lk, so the
// order cannot cycle. Counters that page-pool code bumps are atomics.

// hardenMaxReports bounds the retained CorruptionReport buffer; older
// reports are dropped (they were already delivered to OnReport).
const hardenMaxReports = 128

// Owner-slot states. slotUnknown marks a block the layer has not seen
// change hands yet (freshly carved, still on its page freelist).
const (
	slotUnknown uint8 = iota
	slotAllocated
	slotFree
)

// ownerSlot is one block's extension of the dope vector: last-owner
// provenance plus the allocated/free state the double-free and
// verify-on-alloc checks key off.
type ownerSlot struct {
	state     uint8
	lastAlloc harden.Record
	lastFree  harden.Record
}

// hardenPage holds the owner slots of one split page, indexed by block
// number within the page.
type hardenPage struct {
	cls   int
	slots []ownerSlot
}

// largeSlot tracks one large span: owner provenance plus the span
// footprint the end-of-span canary check needs.
type largeSlot struct {
	ownerSlot
	bytes       uint64 // span footprint (pages * page size)
	pages       int32
	quarantined bool
}

type hardenState struct {
	cfg *harden.Config
	rz  uint64 // effective redzone width (multiple of 8)

	lk *machine.SpinLock

	// Everything below lives under lk.
	seq     uint64
	rings   []*harden.Ring // per CPU
	sites   []string       // per CPU current site tag
	pages   map[int32]*hardenPage
	large   map[arena.Addr]*largeSlot
	qpages  map[int32]bool // quarantined split pages
	reports []harden.Report

	// Counters bumped from page-pool paths that do not hold lk.
	qPagesN    atomic.Uint64 // pages quarantined (split + large)
	qObjects   atomic.Uint64 // blocks/spans parked or swallowed
	qBytes     atomic.Uint64
	detections [3]atomic.Uint64 // by harden.Kind
}

func newHardenState(a *Allocator) *hardenState {
	cfg := a.params.Harden
	hd := &hardenState{
		cfg:    cfg,
		rz:     cfg.RedzoneBytes(),
		lk:     machine.NewSpinLock(a.m),
		pages:  make(map[int32]*hardenPage),
		large:  make(map[arena.Addr]*largeSlot),
		qpages: make(map[int32]bool),
	}
	n := a.m.NumCPUs()
	hd.rings = make([]*harden.Ring, n)
	hd.sites = make([]string, n)
	for i := range hd.rings {
		hd.rings[i] = harden.NewRing(cfg.RingCap())
	}
	return hd
}

// recordLocked stamps a provenance record for an event on CPU c and
// pushes it onto c's audit ring. Caller holds hd.lk.
func (hd *hardenState) recordLocked(c *machine.CPU, op harden.Op, addr arena.Addr) harden.Record {
	hd.seq++
	r := harden.Record{
		Op:    op,
		Addr:  uint64(addr),
		Site:  hd.sites[c.ID()],
		CPU:   c.ID(),
		Node:  c.Node(),
		Cycle: c.Now(),
		Seq:   hd.seq,
	}
	hd.rings[c.ID()].Push(r)
	return r
}

// pageSlotsLocked returns (creating on first touch) page pg's owner
// slots for class cls. Caller holds hd.lk.
func (hd *hardenState) pageSlotsLocked(a *Allocator, pg int32, cls int) *hardenPage {
	hp := hd.pages[pg]
	if hp == nil || hp.cls != cls {
		size := uint64(a.classes[cls].size)
		hp = &hardenPage{
			cls:   cls,
			slots: make([]ownerSlot, a.m.Config().PageBytes/size),
		}
		hd.pages[pg] = hp
	}
	return hp
}

// forgetPage drops page pg's owner slots — called (under the owning
// page pool's lock) when the page is freed back to the vmblk layer or
// re-carved, so stale provenance never survives a page's reuse.
func (hd *hardenState) forgetPage(c *machine.CPU, pg int32) {
	hd.lk.Acquire(c)
	delete(hd.pages, pg)
	hd.lk.Release(c)
}

// reportLocked builds and files one CorruptionReport: counters, the
// bounded report buffer, and the OnReport callback. Caller holds hd.lk
// and afterwards (with hd.lk released) must call hardenDetected to emit
// the spine event and apply PolicyPanic.
func (hd *hardenState) reportLocked(a *Allocator, c *machine.CPU, kind harden.Kind,
	addr arena.Addr, cls int, size, off uint64, got byte, slot *ownerSlot) harden.Report {
	rep := harden.Report{
		Kind:   kind,
		Addr:   uint64(addr),
		Class:  cls,
		Size:   size,
		Offset: off,
		Got:    got,
		CPU:    c.ID(),
		Node:   c.Node(),
		Cycle:  c.Now(),
		Site:   hd.sites[c.ID()],
		Recent: hd.rings[c.ID()].Snapshot(),
	}
	switch kind {
	case harden.KindOverrun:
		rep.Expected = harden.CanaryByte
	case harden.KindUseAfterFree:
		rep.Expected = harden.PoisonByte
	}
	if slot != nil {
		rep.LastAlloc = slot.lastAlloc
		rep.LastFree = slot.lastFree
	}
	hd.detections[kind].Add(1)
	hd.reports = append(hd.reports, rep)
	if len(hd.reports) > hardenMaxReports {
		hd.reports = hd.reports[len(hd.reports)-hardenMaxReports:]
	}
	if hd.cfg.OnReport != nil {
		hd.cfg.OnReport(rep)
	}
	return rep
}

// hardenDetected finishes a detection after hd.lk is released: the
// EvCorruption spine event, then PolicyPanic if selected.
func (a *Allocator) hardenDetected(c *machine.CPU, cls int, rep *harden.Report) {
	a.emit(cls, EvCorruption, 1)
	if a.hd.cfg.Policy == harden.PolicyPanic {
		panic(rep.String())
	}
}

// --- small-block hooks ----------------------------------------------------

// hardenAlloc runs verify-on-alloc for the block the fast path just
// handed out: blocks of quarantined pages are parked instead of served,
// the free-poison is verified (a destroyed poison byte is a late write
// through a stale pointer — use-after-free), and the redzone canary is
// laid down for the new owner. It returns false when the block was
// swallowed and allocClass must retry.
func (a *Allocator) hardenAlloc(c *machine.CPU, cls int, b arena.Addr) bool {
	hd := a.hd
	size := uint64(a.classes[cls].size)
	_, pg := a.vm.lookup(c, b)
	hd.lk.Acquire(c)
	if hd.qpages[pg] {
		// The page was quarantined while this block sat in a cache:
		// park it for post-mortem and let the caller retry.
		hd.lk.Release(c)
		a.parkQuarantined(c, cls, b)
		return false
	}
	hp := hd.pageSlotsLocked(a, pg, cls)
	slot := &hp.slots[uint64(b-a.vm.pageAddr(pg))/size]
	if !hd.cfg.NoPoison && slot.state == slotFree && size > 8 {
		if off, ok := a.mem.CheckFill(b+8, size-8, harden.PoisonByte); !ok {
			off += 8
			got := a.mem.Bytes(b+arena.Addr(off), 1)[0]
			rep := hd.reportLocked(a, c, harden.KindUseAfterFree, b, cls, size, off, got, slot)
			pol := hd.cfg.Policy
			hd.lk.Release(c)
			a.hardenDetected(c, cls, &rep)
			if pol == harden.PolicyQuarantine {
				a.quarantinePage(c, cls, pg)
				a.parkQuarantined(c, cls, b)
				return false
			}
			// Log-only: hand the block out anyway.
			hd.lk.Acquire(c)
		}
	}
	a.mem.Fill(b+arena.Addr(size-hd.rz), hd.rz, harden.CanaryByte)
	slot.state = slotAllocated
	slot.lastAlloc = hd.recordLocked(c, harden.OpAlloc, b)
	hd.lk.Release(c)
	return true
}

// hardenFree runs the free-side checks: wrong-class/misaligned frees
// panic (interface bugs, as in the legacy Poison mode), double frees
// and redzone overruns file reports, and legitimate frees are poisoned
// and recorded. It returns false when the free was swallowed — a double
// free, a free into a quarantined page, or a detection under
// PolicyQuarantine — and freeClass must not thread the block.
func (a *Allocator) hardenFree(c *machine.CPU, cls int, addr arena.Addr) bool {
	hd := a.hd
	size := uint64(a.classes[cls].size)
	pd, pg := a.vm.lookup(c, addr)
	if pd.state != pdSplit || int(pd.class) != cls {
		panic(fmt.Sprintf("kmem: free of %#x as class %d (size %d) but page is %s/class %d",
			addr, cls, size, pdStateName(pd.state), pd.class))
	}
	off := uint64(addr - a.vm.pageAddr(pg))
	if off%size != 0 {
		panic(fmt.Sprintf("kmem: free of %#x not on a class-%d block boundary", addr, cls))
	}
	hd.lk.Acquire(c)
	hp := hd.pageSlotsLocked(a, pg, cls)
	slot := &hp.slots[off/size]

	if slot.state != slotAllocated {
		// Freeing a block the layer does not believe is allocated: a
		// double free (state free) or a free of a never-allocated
		// pointer (state unknown). Always swallowed — threading the
		// block twice would corrupt the freelists even in log mode.
		rep := hd.reportLocked(a, c, harden.KindDoubleFree, addr, cls, size, 0, 0, slot)
		pol := hd.cfg.Policy
		hd.lk.Release(c)
		a.hardenDetected(c, cls, &rep)
		if pol == harden.PolicyQuarantine {
			a.quarantinePage(c, cls, pg)
		}
		return false
	}

	if hd.qpages[pg] {
		// A legitimate free into an already-quarantined page: record it
		// and park the block, keeping the page out of circulation.
		slot.state = slotFree
		slot.lastFree = hd.recordLocked(c, harden.OpFree, addr)
		if !hd.cfg.NoPoison && size > 8 {
			a.mem.Fill(addr+8, size-8, harden.PoisonByte)
		}
		hd.lk.Release(c)
		a.parkQuarantined(c, cls, addr)
		return false
	}

	if coff, ok := a.mem.CheckFill(addr+arena.Addr(size-hd.rz), hd.rz, harden.CanaryByte); !ok {
		boff := size - hd.rz + coff
		got := a.mem.Bytes(addr+arena.Addr(boff), 1)[0]
		rep := hd.reportLocked(a, c, harden.KindOverrun, addr, cls, size, boff, got, slot)
		slot.state = slotFree
		slot.lastFree = hd.recordLocked(c, harden.OpFree, addr)
		pol := hd.cfg.Policy
		if pol != harden.PolicyQuarantine && !hd.cfg.NoPoison && size > 8 {
			// Log-only: the free proceeds normally, so poison as usual.
			a.mem.Fill(addr+8, size-8, harden.PoisonByte)
		}
		hd.lk.Release(c)
		a.hardenDetected(c, cls, &rep)
		if pol == harden.PolicyQuarantine {
			a.quarantinePage(c, cls, pg)
			a.parkQuarantined(c, cls, addr)
			return false
		}
		return true
	}

	slot.state = slotFree
	slot.lastFree = hd.recordLocked(c, harden.OpFree, addr)
	if !hd.cfg.NoPoison && size > 8 {
		a.mem.Fill(addr+8, size-8, harden.PoisonByte)
	}
	hd.lk.Release(c)
	return true
}

// --- quarantine -----------------------------------------------------------

// quarantinePage pulls split page pg from circulation: flagged
// pdfQuarantined under the page pool's lock and filed out of the radix
// buckets, it is never refiled, never coalesced into a free span, and
// never decommitted — the frames stay mapped for post-mortem. Blocks of
// the page still out in caches are parked as they come home
// (putBlockLocked, hardenAlloc). Idempotent.
func (a *Allocator) quarantinePage(c *machine.CPU, cls int, pg int32) {
	pp := a.classes[cls].pages[a.vm.nodeOfPage(pg)]
	pp.lk.Acquire(c)
	pd := a.vm.pdOf(pg)
	already := pd.flags&pdfQuarantined != 0
	if !already {
		pd.flags |= pdfQuarantined
		if pd.nFree > 0 {
			pp.fileOut(c, pg, int(pd.nFree))
		}
	}
	pp.lk.Release(c)
	if already {
		return
	}
	hd := a.hd
	hd.lk.Acquire(c)
	hd.qpages[pg] = true
	hd.lk.Release(c)
	hd.qPagesN.Add(1)
	a.m.Phys().Quarantine(1)
	a.emit(cls, EvQuarantine, 1)
}

// parkQuarantined threads a block onto its quarantined page's own
// freelist. The page is off every pool list, so a parked block can
// never circulate again; the per-page freelist keeps CheckConsistency's
// freelist-length == nFree invariant intact for post-mortem walks.
func (a *Allocator) parkQuarantined(c *machine.CPU, cls int, b arena.Addr) {
	pp := a.classes[cls].pages[a.vm.nodeOfPage(int32(uint64(b)>>a.pageShift))]
	pp.lk.Acquire(c)
	c.Work(insnPageOp)
	pd, _ := a.vm.lookup(c, b)
	a.mem.Store64(b, pd.freeHead)
	c.WriteAddr(b)
	pd.freeHead = b
	pd.nFree++
	c.Write(pd.line)
	pp.lk.Release(c)
	a.hd.qObjects.Add(1)
	a.hd.qBytes.Add(uint64(a.classes[cls].size))
}

// --- large-path hooks -----------------------------------------------------

// vmAllocLarge is the large-path allocation with hardening applied:
// the span is sized up by the redzone and the canary laid down at the
// far end, where a sequential overrun lands first.
func (a *Allocator) vmAllocLarge(c *machine.CPU, size uint64) (arena.Addr, error) {
	if a.hd == nil {
		return a.vm.allocLarge(c, size)
	}
	hd := a.hd
	b, err := a.vm.allocLarge(c, size+hd.rz)
	if err != nil {
		return b, err
	}
	pd, _ := a.vm.lookup(c, b)
	bytes := uint64(pd.spanPages) * a.m.Config().PageBytes
	a.mem.Fill(b+arena.Addr(bytes-hd.rz), hd.rz, harden.CanaryByte)
	hd.lk.Acquire(c)
	ls := &largeSlot{bytes: bytes, pages: int32(pd.spanPages)}
	ls.state = slotAllocated
	ls.lastAlloc = hd.recordLocked(c, harden.OpAlloc, b)
	hd.large[b] = ls
	hd.lk.Release(c)
	return b, nil
}

// vmFreeLarge is the large-path free with hardening applied. A
// swallowed free (double free, or an overrun under PolicyQuarantine)
// leaves the span allocated and mapped forever — the large-path
// quarantine.
func (a *Allocator) vmFreeLarge(c *machine.CPU, addr arena.Addr) {
	if a.hd != nil && !a.hardenFreeLarge(c, addr) {
		return
	}
	a.vm.freeLarge(c, addr)
}

func (a *Allocator) hardenFreeLarge(c *machine.CPU, addr arena.Addr) bool {
	hd := a.hd
	hd.lk.Acquire(c)
	ls := hd.large[addr]
	if ls == nil || ls.state != slotAllocated {
		var slot *ownerSlot
		if ls != nil {
			slot = &ls.ownerSlot
		}
		rep := hd.reportLocked(a, c, harden.KindDoubleFree, addr, -1, 0, 0, 0, slot)
		hd.lk.Release(c)
		a.hardenDetected(c, -1, &rep)
		return false
	}
	if coff, ok := a.mem.CheckFill(addr+arena.Addr(ls.bytes-hd.rz), hd.rz, harden.CanaryByte); !ok {
		boff := ls.bytes - hd.rz + coff
		got := a.mem.Bytes(addr+arena.Addr(boff), 1)[0]
		rep := hd.reportLocked(a, c, harden.KindOverrun, addr, -1, ls.bytes, boff, got, &ls.ownerSlot)
		ls.state = slotFree
		ls.lastFree = hd.recordLocked(c, harden.OpFree, addr)
		pol := hd.cfg.Policy
		pages := ls.pages
		bytes := ls.bytes
		if pol == harden.PolicyQuarantine {
			ls.quarantined = true
		}
		hd.lk.Release(c)
		a.hardenDetected(c, -1, &rep)
		if pol == harden.PolicyQuarantine {
			hd.qPagesN.Add(uint64(pages))
			hd.qObjects.Add(1)
			hd.qBytes.Add(bytes)
			a.m.Phys().Quarantine(int64(pages))
			a.emit(-1, EvQuarantine, int(pages))
			return false
		}
		return true
	}
	ls.state = slotFree
	ls.lastFree = hd.recordLocked(c, harden.OpFree, addr)
	hd.lk.Release(c)
	return true
}

// --- audit sweep and introspection ----------------------------------------

// AuditSweep verifies every tracked block's at-rest invariants —
// allocated blocks must carry intact canaries, free blocks intact
// poison — and files a report for each violation, applying the
// configured policy. The reclaim path runs a sweep on every invocation,
// so dormant corruption is found even if the corrupt block is never
// freed or reallocated. Returns the reports filed by this sweep; nil
// with hardening off.
func (a *Allocator) AuditSweep(c *machine.CPU) []harden.Report {
	if a.hd == nil {
		return nil
	}
	hd := a.hd
	type finding struct {
		rep harden.Report
		cls int
		pg  int32
	}
	var found []finding

	hd.lk.Acquire(c)
	pgs := make([]int32, 0, len(hd.pages))
	for pg := range hd.pages {
		pgs = append(pgs, pg)
	}
	sort.Slice(pgs, func(i, j int) bool { return pgs[i] < pgs[j] })
	for _, pg := range pgs {
		if hd.qpages[pg] {
			continue // already contained and reported
		}
		hp := hd.pages[pg]
		size := uint64(a.classes[hp.cls].size)
		base := a.vm.pageAddr(pg)
		for i := range hp.slots {
			slot := &hp.slots[i]
			b := base + arena.Addr(uint64(i)*size)
			switch slot.state {
			case slotAllocated:
				if off, ok := a.mem.CheckFill(b+arena.Addr(size-hd.rz), hd.rz, harden.CanaryByte); !ok {
					boff := size - hd.rz + off
					got := a.mem.Bytes(b+arena.Addr(boff), 1)[0]
					rep := hd.reportLocked(a, c, harden.KindOverrun, b, hp.cls, size, boff, got, slot)
					found = append(found, finding{rep, hp.cls, pg})
				}
			case slotFree:
				if hd.cfg.NoPoison || size <= 8 {
					continue
				}
				if off, ok := a.mem.CheckFill(b+8, size-8, harden.PoisonByte); !ok {
					boff := off + 8
					got := a.mem.Bytes(b+arena.Addr(boff), 1)[0]
					rep := hd.reportLocked(a, c, harden.KindUseAfterFree, b, hp.cls, size, boff, got, slot)
					found = append(found, finding{rep, hp.cls, pg})
				}
			}
		}
	}
	addrs := make([]arena.Addr, 0, len(hd.large))
	for b := range hd.large {
		addrs = append(addrs, b)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, b := range addrs {
		ls := hd.large[b]
		if ls.state != slotAllocated {
			continue
		}
		if off, ok := a.mem.CheckFill(b+arena.Addr(ls.bytes-hd.rz), hd.rz, harden.CanaryByte); !ok {
			boff := ls.bytes - hd.rz + off
			got := a.mem.Bytes(b+arena.Addr(boff), 1)[0]
			rep := hd.reportLocked(a, c, harden.KindOverrun, b, -1, ls.bytes, boff, got, &ls.ownerSlot)
			found = append(found, finding{rep, -1, -1})
		}
	}
	hd.lk.Release(c)

	reps := make([]harden.Report, 0, len(found))
	for i := range found {
		reps = append(reps, found[i].rep)
		a.emit(found[i].cls, EvCorruption, 1)
	}
	if len(found) > 0 && hd.cfg.Policy == harden.PolicyPanic {
		panic(found[0].rep.String())
	}
	if hd.cfg.Policy == harden.PolicyQuarantine {
		for i := range found {
			if found[i].pg >= 0 {
				a.quarantinePage(c, found[i].cls, found[i].pg)
			}
			// Large spans found corrupt at rest are left allocated; the
			// overrun will be re-confirmed and contained at their free.
		}
	}
	return reps
}

// SetHardenSite tags subsequent provenance records made on CPU c with
// site — typically a short "file:line" or subsystem string — until the
// next call. No-op with hardening off.
func (a *Allocator) SetHardenSite(c *machine.CPU, site string) {
	if a.hd == nil {
		return
	}
	a.hd.lk.Acquire(c)
	a.hd.sites[c.ID()] = site
	a.hd.lk.Release(c)
}

// HardenReports returns a copy of the retained corruption reports,
// oldest first (bounded at hardenMaxReports; OnReport sees every report
// regardless). Nil with hardening off.
func (a *Allocator) HardenReports(c *machine.CPU) []harden.Report {
	if a.hd == nil {
		return nil
	}
	a.hd.lk.Acquire(c)
	out := make([]harden.Report, len(a.hd.reports))
	copy(out, a.hd.reports)
	a.hd.lk.Release(c)
	return out
}

// quarantineStats assembles the hardening layer's Stats contribution.
func (hd *hardenState) quarantineStats() QuarantineStats {
	if hd == nil {
		return QuarantineStats{}
	}
	q := QuarantineStats{
		Overruns:      hd.detections[harden.KindOverrun].Load(),
		DoubleFrees:   hd.detections[harden.KindDoubleFree].Load(),
		UseAfterFrees: hd.detections[harden.KindUseAfterFree].Load(),
		Pages:         hd.qPagesN.Load(),
		Objects:       hd.qObjects.Load(),
		Bytes:         hd.qBytes.Load(),
	}
	q.Detections = q.Overruns + q.DoubleFrees + q.UseAfterFrees
	return q
}
