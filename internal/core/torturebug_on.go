//go:build torturecheck

package core

import "sync/atomic"

// TortureBugsAvailable reports whether this binary was built with the
// torturecheck tag and can arm planted bugs.
const TortureBugsAvailable = true

// tortureBugs holds the armed state of each planted bug. Atomic so the
// Native-mode tests may arm/disarm around concurrent phases.
var tortureBugs [numTortureBugs]atomic.Bool

// tortureBug reports whether planted bug b is armed.
func tortureBug(b int) bool { return tortureBugs[b].Load() }

// SetTortureBug arms or disarms planted bug b. Global (the hooks sit on
// paths without an Allocator receiver handy), so tests arming bugs must
// not run in parallel with other allocator tests.
func SetTortureBug(b int, on bool) { tortureBugs[b].Store(on) }
