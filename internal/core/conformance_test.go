package core_test

import (
	"testing"

	"kmem/internal/allocif"
	"kmem/internal/alloctest"
	"kmem/internal/core"
	"kmem/internal/harden"
	"kmem/internal/machine"
)

func factory(cookie, lazy bool) alloctest.Factory {
	return func(t *testing.T, ncpu int, physPages int64) alloctest.Instance {
		cfg := machine.DefaultConfig()
		cfg.NumCPUs = ncpu
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = physPages
		m := machine.New(cfg)
		a, err := core.New(m, core.Params{RadixSort: true, LazySpans: lazy})
		if err != nil {
			t.Fatal(err)
		}
		var iface allocif.Allocator
		if cookie {
			iface = allocif.NewCookieKMA(a)
		} else {
			iface = allocif.NewKMA{Allocator: a}
		}
		return alloctest.Instance{
			A:         iface,
			M:         m,
			MaxSize:   1 << 20, // the large path serves beyond the classes
			Coalesces: true,
			Check:     a.CheckConsistency,
		}
	}
}

func TestConformanceStandard(t *testing.T) {
	alloctest.Run(t, factory(false, false))
}

func TestConformanceCookie(t *testing.T) {
	alloctest.Run(t, factory(true, false))
}

// The lazy virtual-span mode must satisfy the identical external
// contract: over-reservation, commit-on-carve, and decommit under
// pressure are invisible to callers.
func TestConformanceStandardLazy(t *testing.T) {
	alloctest.Run(t, factory(false, true))
}

func TestConformanceCookieLazy(t *testing.T) {
	alloctest.Run(t, factory(true, true))
}

// The typed object-cache lifecycle must hold over both adapters: NewKMA
// (cookie + shed probes resolve) and CookieKMA (through its forwarders).
func TestObjCacheLifecycle(t *testing.T) {
	alloctest.RunObjCache(t, factory(false, false))
}

func TestObjCacheLifecycleCookie(t *testing.T) {
	alloctest.RunObjCache(t, factory(true, false))
}

func TestObjCacheLifecycleLazy(t *testing.T) {
	alloctest.RunObjCache(t, factory(false, true))
}

// optFactory builds the allocator with the optimistic fast paths
// configured, for the concurrent conformance suite: restartable
// per-CPU sequences, the CAS-based global layer, or both, in either
// machine mode. (Native keeps the locked global layer — LockFree is a
// Sim-only commit model — but the rseq path is live in both.)
func optFactory(rseq, lockFree bool, mode machine.Mode) alloctest.Factory {
	return func(t *testing.T, ncpu int, physPages int64) alloctest.Instance {
		cfg := machine.DefaultConfig()
		cfg.Mode = mode
		cfg.NumCPUs = ncpu
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = physPages
		m := machine.New(cfg)
		a, err := core.New(m, core.Params{RadixSort: true, Rseq: rseq, LockFree: lockFree})
		if err != nil {
			t.Fatal(err)
		}
		return alloctest.Instance{
			A:         allocif.NewKMA{Allocator: a},
			M:         m,
			MaxSize:   1 << 20,
			Coalesces: true,
			Check:     a.CheckConsistency,
		}
	}
}

// The concurrent conformance suite: all-CPU Alloc/Free under aggressive
// restart jitter, shadow oracle plus consistency audits, across every
// fast-path configuration. The Native variant runs real goroutines and
// is the -race coverage for the rseq interference path.
func TestConcurrentGetPut(t *testing.T) {
	alloctest.RunConcurrentGetPut(t, factory(false, false))
}

func TestConcurrentGetPutRseq(t *testing.T) {
	alloctest.RunConcurrentGetPut(t, optFactory(true, false, machine.Sim))
}

func TestConcurrentGetPutLockFree(t *testing.T) {
	alloctest.RunConcurrentGetPut(t, optFactory(false, true, machine.Sim))
}

func TestConcurrentGetPutOptimistic(t *testing.T) {
	alloctest.RunConcurrentGetPut(t, optFactory(true, true, machine.Sim))
}

func TestConcurrentGetPutNative(t *testing.T) {
	alloctest.RunConcurrentGetPut(t, optFactory(true, true, machine.Native))
}

// hardenedFactory builds the allocator with the corruption-hardening
// layer on (quarantine-and-continue policy) and exposes its report log,
// so the corruption suite asserts detection rather than just survival.
func hardenedFactory() alloctest.Factory {
	return func(t *testing.T, ncpu int, physPages int64) alloctest.Instance {
		cfg := machine.DefaultConfig()
		cfg.NumCPUs = ncpu
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = physPages
		m := machine.New(cfg)
		a, err := core.New(m, core.Params{RadixSort: true, Harden: &harden.Config{}})
		if err != nil {
			t.Fatal(err)
		}
		return alloctest.Instance{
			A:         allocif.NewKMA{Allocator: a},
			M:         m,
			MaxSize:   1 << 20,
			Coalesces: true,
			Check:     a.CheckConsistency,
			Reports:   func() []harden.Report { return a.HardenReports(m.CPU(0)) },
		}
	}
}

// The hardened allocator must pass the full conformance suite unchanged
// — redzones and poison shift block geometry but not the contract.
func TestConformanceHardened(t *testing.T) {
	alloctest.Run(t, hardenedFactory())
}

func TestCorruptionHardened(t *testing.T) {
	alloctest.RunCorruption(t, hardenedFactory())
}

// Without hardening the same plants are documented UB: the suite only
// demands that nothing hangs.
func TestCorruptionUnhardened(t *testing.T) {
	alloctest.RunCorruption(t, factory(false, false))
}
