package core

import (
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// FuzzAllocatorOps drives the whole allocator with a byte-coded operation
// sequence: every reachable state must preserve every invariant. Run with
// `go test -fuzz=FuzzAllocatorOps ./internal/core` to explore; plain
// `go test` replays the seed corpus.
func FuzzAllocatorOps(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x80, 0xff, 0x10})
	f.Add([]byte("alloc-free-alloc-free"))
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255, 128, 64, 32, 16})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048]
		}
		cfg := machine.DefaultConfig()
		cfg.NumCPUs = 2
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = 256
		m := machine.New(cfg)
		a, err := New(m, Params{RadixSort: true, Poison: true})
		if err != nil {
			t.Fatal(err)
		}
		type held struct {
			b    arena.Addr
			size uint64
		}
		var live []held
		for i := 0; i+1 < len(ops); i += 2 {
			c := m.CPU(int(ops[i]) % 2)
			switch {
			case ops[i]&0x80 == 0 || len(live) == 0:
				// Size spans small classes and the large path.
				size := uint64(ops[i+1])*40 + 1
				b, err := a.Alloc(c, size)
				if err != nil {
					continue // low memory is a legal outcome
				}
				live = append(live, held{b, size})
			default:
				j := int(ops[i+1]) % len(live)
				a.Free(c, live[j].b, live[j].size)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, h := range live {
			a.Free(m.CPU(0), h.b, h.size)
		}
		a.DrainAll(m.CPU(0))
		if err := a.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
		st := a.Stats(m.CPU(0))
		if st.Phys.Mapped != int64(8*st.VM.VmblkCreates) {
			t.Fatalf("leak: %d pages mapped with %d vmblks after full free",
				st.Phys.Mapped, st.VM.VmblkCreates)
		}
	})
}
