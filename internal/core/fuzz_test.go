package core

import (
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// FuzzSizeToClass checks the size-to-class rounding invariants for every
// reachable request size: in-range sizes map to the smallest class that
// fits, out-of-range sizes are rejected, and the cookie translation
// agrees with the table.
func FuzzSizeToClass(f *testing.F) {
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 1
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 64
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true})
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(16))
	f.Add(uint64(17))
	f.Add(uint64(a.maxSmall))
	f.Add(uint64(a.maxSmall) + 1)
	f.Add(^uint64(0))

	f.Fuzz(func(t *testing.T, size uint64) {
		ck, err := a.GetCookie(size)
		if size == 0 || size > uint64(a.maxSmall) {
			if err == nil {
				t.Fatalf("GetCookie(%d) accepted an out-of-range size", size)
			}
			return
		}
		if err != nil {
			t.Fatalf("GetCookie(%d): %v", size, err)
		}
		cls := a.classFor(size)
		if got := uint64(a.classes[cls].size); got < size {
			t.Fatalf("class %d size %d cannot hold request %d", cls, got, size)
		}
		if cls > 0 && uint64(a.classes[cls-1].size) >= size {
			t.Fatalf("size %d mapped to class %d but class %d already fits", size, cls, cls-1)
		}
		if uint64(ck.Size()) != uint64(a.classes[cls].size) {
			t.Fatalf("cookie size %d disagrees with class size %d", ck.Size(), a.classes[cls].size)
		}
	})
}

// FuzzAllocatorOps drives the whole allocator with a byte-coded operation
// sequence: every reachable state must preserve every invariant. Run with
// `go test -fuzz=FuzzAllocatorOps ./internal/core` to explore; plain
// `go test` replays the seed corpus.
func FuzzAllocatorOps(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x80, 0xff, 0x10})
	f.Add([]byte("alloc-free-alloc-free"))
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255, 128, 64, 32, 16})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048]
		}
		cfg := machine.DefaultConfig()
		cfg.NumCPUs = 2
		cfg.MemBytes = 16 << 20
		cfg.PhysPages = 256
		m := machine.New(cfg)
		a, err := New(m, Params{RadixSort: true, Poison: true})
		if err != nil {
			t.Fatal(err)
		}
		type held struct {
			b    arena.Addr
			size uint64
		}
		var live []held
		for i := 0; i+1 < len(ops); i += 2 {
			c := m.CPU(int(ops[i]) % 2)
			switch {
			case ops[i]&0x80 == 0 || len(live) == 0:
				// Size spans small classes and the large path.
				size := uint64(ops[i+1])*40 + 1
				b, err := a.Alloc(c, size)
				if err != nil {
					continue // low memory is a legal outcome
				}
				live = append(live, held{b, size})
			default:
				j := int(ops[i+1]) % len(live)
				a.Free(c, live[j].b, live[j].size)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, h := range live {
			a.Free(m.CPU(0), h.b, h.size)
		}
		a.DrainAll(m.CPU(0))
		if err := a.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
		st := a.Stats(m.CPU(0))
		if st.Phys.Mapped != int64(8*st.VM.VmblkCreates) {
			t.Fatalf("leak: %d pages mapped with %d vmblks after full free",
				st.Phys.Mapped, st.VM.VmblkCreates)
		}
	})
}
