package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// LayerEvent identifies one kind of layer-boundary crossing inside the
// allocator. Every counter the allocator keeps — and everything a Hook
// observes — is expressed in terms of these events: the per-layer
// structures each hold an eventCounts array indexed by LayerEvent, Stats
// is assembled from those arrays, and the optional Params.Hook sees the
// same events as they happen. Stats, tracing (TraceHook) and the bench
// harness (EventCounter) are all consumers of this one spine.
type LayerEvent uint8

const (
	// Per-CPU caching layer (layer 1). EvAlloc and EvFree count the
	// fast-path operations themselves; they are tallied in the per-CPU
	// counters but never pushed through a Hook, so the 13-instruction
	// cookie path does no extra work. EvCPURefill/EvCPUSpill are the
	// boundary crossings into the global layer.
	EvAlloc LayerEvent = iota
	EvFree
	EvCPURefill // allocation missed the cache; a list arrived from the global layer
	EvCPUSpill  // free overflowed the cache; a list departed to the global layer

	// Global layer (layer 2).
	EvGlobalGet
	EvGlobalPut
	EvGlobalRefill // get missed; blocks arrived from the coalesce-to-page layer
	EvGlobalSpill  // put overflowed; blocks departed to the coalesce-to-page layer

	// Coalesce-to-page layer (layer 3).
	EvBlockGet  // blocks handed up to the global layer
	EvBlockPut  // blocks returned from the global layer
	EvPageCarve // a fresh page obtained from the vmblk layer and split
	EvPageFree  // a fully-free page released back to the vmblk layer

	// Coalesce-to-vmblk layer (layer 4). These carry class -1: the vmblk
	// layer serves every class and the large path alike.
	EvSpanAlloc
	EvSpanFree
	EvVmblkCreate
	EvLargeAlloc
	EvLargeFree
	EvPagesMap   // physical pages mapped (n = pages)
	EvPagesUnmap // physical pages unmapped (n = pages)
	EvMapFail    // a physical-memory map request was refused

	// Allocator-wide events (class -1).
	EvReclaim // the low-memory reclaim path ran

	// Adaptive-controller decisions (per class; n = the new value).
	EvTargetGrow
	EvTargetShrink
	EvGblTargetGrow
	EvGblTargetShrink

	// Node-crossing events (NUMA topologies; all zero on a single-node
	// machine).
	EvRemoteFree   // a spilled list was routed to another node's global pool (n = blocks)
	EvNodeSteal    // a dry home pool stole cached blocks from another node (n = blocks)
	EvInterconnect // a slow-path pool operation crossed the interconnect (n = crossings)

	// Memory-pressure events (class -1 except EvWait/EvWake, which carry
	// the waiting class or -1 for large requests). EvPressure reports a
	// level transition with n = new level + 1 (1 = ok, 2 = low,
	// 3 = critical; the offset keeps n nonzero so Hooks see every
	// transition). EvReclaimStep counts incremental-reclaim steps.
	EvPressure
	EvWait          // an AllocWait caller parked (n = 1)
	EvWake          // parked waiters were released (n = waiters woken)
	EvFaultInjected // an armed fault point fired (n = 1)
	EvReclaimStep   // one incremental reclaim step ran (n = 1)

	// Remote-free shard events (NUMA topologies with shards enabled; all
	// zero otherwise). EvHomeMemoHit counts sharded frees whose home was
	// answered by the per-CPU vmblk memo instead of a charged dope-vector
	// lookup; like EvAlloc/EvFree it is tallied per CPU but never pushed
	// through a Hook, keeping the free fast path hook-free.
	EvShardFlush  // a full remote shard was flushed home in one batched putList (n = blocks)
	EvHomeMemoHit // a sharded free's home lookup hit the per-CPU vmblk memo (n = 1)

	// Lock-contention accounting (Sim mode). EvRemotePut counts slow-path
	// putList calls that acquired another node's pool lock — the remote
	// lock trips the shards exist to batch away. EvLockWait carries the
	// cycles an acquire spent spinning on a contended pool lock
	// (n = wait cycles), attributed to the pool's class (-1 for the
	// vmblk layer's lock).
	EvRemotePut
	EvLockWait

	// Virtual-span residency events (class -1). EvPagesReserve counts VA
	// pages reserved when a vmblk's span is carved out of the arena (both
	// backing modes — reservation costs no physical frames).
	// EvPagesCommit and EvPagesDecommit count pages moved between
	// reserved and resident by the lazy-backing paths: commit-on-first-
	// carve and the scrubbing decommit pass. Both are zero in eager mode,
	// which reports EvPagesMap/EvPagesUnmap instead.
	EvPagesReserve
	EvPagesCommit
	EvPagesDecommit

	// Typed object-cache events (the objcache layer over the cookie
	// path). EvCtorRun counts constructors executed when a buffer is
	// first carved from its backing class; EvCacheShed counts constructed
	// buffers a cache destructed and released back to the allocator under
	// reclaim/Trim pressure (n = buffers). EvCtorSkip counts Gets served
	// a still-constructed buffer — like EvAlloc/EvFree it is tallied in
	// per-cache counters but never pushed through a Hook, keeping the
	// magazine fast path hook-free. All three are zero when no caches
	// exist; the allocator itself never emits them.
	EvCtorRun
	EvCtorSkip
	EvCacheShed

	// Corruption-hardening events (Params.Harden / hardened object
	// caches; all zero with hardening off). EvCorruption counts
	// detections (n = 1, class of the corrupt block or -1); EvQuarantine
	// counts pages pulled from circulation for post-mortem (n = pages).
	EvCorruption
	EvQuarantine

	// Optimistic-concurrency events (Params.Rseq / Params.LockFree; all
	// zero with both off). EvRseqRestart counts restartable-sequence
	// attempts aborted by preemption/interference (n = aborts);
	// EvCASRetry counts lock-free commit attempts that lost their CAS to
	// a concurrent commit and re-ran (n = retries). Both are tallied in
	// the owning structure's counters on the paths where they occur;
	// EvRseqRestart on the fast path is tallied per CPU but never pushed
	// through a Hook, like EvAlloc/EvFree.
	EvRseqRestart
	EvCASRetry

	numLayerEvents
)

var layerEventNames = [numLayerEvents]string{
	EvAlloc:           "alloc",
	EvFree:            "free",
	EvCPURefill:       "cpu-refill",
	EvCPUSpill:        "cpu-spill",
	EvGlobalGet:       "global-get",
	EvGlobalPut:       "global-put",
	EvGlobalRefill:    "global-refill",
	EvGlobalSpill:     "global-spill",
	EvBlockGet:        "block-get",
	EvBlockPut:        "block-put",
	EvPageCarve:       "page-carve",
	EvPageFree:        "page-free",
	EvSpanAlloc:       "span-alloc",
	EvSpanFree:        "span-free",
	EvVmblkCreate:     "vmblk-create",
	EvLargeAlloc:      "large-alloc",
	EvLargeFree:       "large-free",
	EvPagesMap:        "pages-map",
	EvPagesUnmap:      "pages-unmap",
	EvMapFail:         "map-fail",
	EvReclaim:         "reclaim",
	EvTargetGrow:      "target-grow",
	EvTargetShrink:    "target-shrink",
	EvGblTargetGrow:   "gbltarget-grow",
	EvGblTargetShrink: "gbltarget-shrink",
	EvRemoteFree:      "remote-free",
	EvNodeSteal:       "node-steal",
	EvInterconnect:    "interconnect",
	EvPressure:        "pressure",
	EvWait:            "wait",
	EvWake:            "wake",
	EvFaultInjected:   "fault-injected",
	EvReclaimStep:     "reclaim-step",
	EvShardFlush:      "shard-flush",
	EvHomeMemoHit:     "home-memo-hit",
	EvRemotePut:       "remote-put",
	EvLockWait:        "lock-wait",
	EvPagesReserve:    "pages-reserve",
	EvPagesCommit:     "pages-commit",
	EvPagesDecommit:   "pages-decommit",
	EvCtorRun:         "ctor-run",
	EvCtorSkip:        "ctor-skip",
	EvCacheShed:       "cache-shed",
	EvCorruption:      "corruption",
	EvQuarantine:      "quarantine",
	EvRseqRestart:     "rseq-restart",
	EvCASRetry:        "cas-retry",
}

// NumLayerEvents is the number of distinct layer events.
const NumLayerEvents = int(numLayerEvents)

func (e LayerEvent) String() string {
	if int(e) < len(layerEventNames) {
		return layerEventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Hook is an optional per-allocator event sink. It is called with the
// size class the event belongs to (-1 for classless events: the vmblk
// layer and reclaim), the event, and the batch size n (blocks for
// block-moving events, pages for page events, 1 for plain operations,
// the new value for adaptive-controller decisions).
//
// Hooks fire only on slow paths — never on a fast-path alloc or free —
// and may be invoked while allocator-internal locks are held, so a Hook
// must be fast, must not call back into the allocator, and must be safe
// for concurrent use from multiple CPUs in Native mode. A nil Hook costs
// one predictable branch on the slow paths and nothing on the fast path.
type Hook func(cls int, ev LayerEvent, n int)

// eventCounts is one structure's slice of the event spine: a fixed array
// of per-event counters, written under whatever lock protects the
// structure. Stats sums these arrays; no layer keeps ad-hoc named
// counters outside the spine.
type eventCounts [numLayerEvents]uint64

// emit pushes one event to the allocator's Hook, if any. It is never
// called on the alloc/free fast path.
func (a *Allocator) emit(cls int, ev LayerEvent, n int) {
	if h := a.params.Hook; h != nil && n != 0 {
		h(cls, ev, n)
	}
}

// TraceHook returns a Hook that writes one line per event to w — the
// tracing consumer of the event spine. Lines are serialized by an
// internal mutex so concurrent CPUs do not interleave output.
func TraceHook(w io.Writer) Hook {
	var mu sync.Mutex
	return func(cls int, ev LayerEvent, n int) {
		mu.Lock()
		fmt.Fprintf(w, "kmem: cls=%d ev=%s n=%d\n", cls, ev, n)
		mu.Unlock()
	}
}

// EventCounter is a Hook sink that tallies events across all classes —
// the aggregating consumer of the spine used by the bench harness and
// tests. Safe for concurrent use.
type EventCounter struct {
	n [numLayerEvents]atomic.Uint64
}

// Hook returns the Hook that feeds this counter.
func (e *EventCounter) Hook() Hook {
	return func(cls int, ev LayerEvent, n int) {
		e.n[ev].Add(uint64(n))
	}
}

// Count returns the accumulated n for one event.
func (e *EventCounter) Count(ev LayerEvent) uint64 { return e.n[ev].Load() }

// Snapshot returns all per-event totals indexed by LayerEvent.
func (e *EventCounter) Snapshot() [NumLayerEvents]uint64 {
	var out [NumLayerEvents]uint64
	for i := range out {
		out[i] = e.n[i].Load()
	}
	return out
}
