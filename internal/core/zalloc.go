package core

import (
	"kmem/internal/arena"
	"kmem/internal/machine"
)

// AllocZeroed is kmem_zalloc: an allocation whose payload is cleared
// before it is returned. The zeroing cost is charged per cache line
// written, so large zeroed requests are visibly dearer than plain ones —
// the paper's observation that "the overhead of initializing large blocks
// of memory typically overshadows the virtual-memory system's overhead".
func (a *Allocator) AllocZeroed(c *machine.CPU, size uint64) (arena.Addr, error) {
	b, err := a.Alloc(c, size)
	if err != nil {
		return arena.NilAddr, err
	}
	a.zero(c, b, size)
	return b, nil
}

// AllocCookieZeroed is the cookie-interface variant of AllocZeroed.
func (a *Allocator) AllocCookieZeroed(c *machine.CPU, ck Cookie) (arena.Addr, error) {
	b, err := a.AllocCookie(c, ck)
	if err != nil {
		return arena.NilAddr, err
	}
	a.zero(c, b, uint64(ck.size))
	return b, nil
}

// zero clears [b, b+size) and charges one store per cache line plus the
// loop instructions (a rep stos-style sequence).
func (a *Allocator) zero(c *machine.CPU, b arena.Addr, size uint64) {
	a.mem.Fill(b, size, 0)
	lineBytes := uint64(1) << a.m.Config().LineShift
	for off := uint64(0); off < size; off += lineBytes {
		c.WriteAddr(b + off)
		c.Work(3)
	}
}
