package core

import (
	"errors"
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// ErrNoMemory is returned when an allocation cannot be satisfied even
// after the low-memory reclaim path has drained every cache.
var ErrNoMemory = errors.New("kmem: out of memory")

// ErrNoVA is returned when the kernel virtual address space (the arena's
// supply of vmblks) is exhausted — a failure mode distinct from physical
// frame shortage (ErrNoMemory): no amount of reclaim creates more
// address space, so callers should not retry through the blocking path.
var ErrNoVA = errors.New("kmem: kernel virtual address space exhausted")

// pdSize is the virtual-address footprint of one page descriptor inside a
// vmblk's header, as laid out in Figure 6 of the paper ("a group of page
// descriptors followed by the corresponding data pages").
const pdSize = 32

// Page descriptor states.
const (
	pdHeader    uint8 = iota // header page holding the page descriptors
	pdFreeHead               // first page of a free span (physical memory unmapped)
	pdFreeTail               // last page of a free span (boundary tag)
	pdAllocHead              // first page of an allocated span
	pdAllocMid               // interior page of an allocated span
	pdSplit                  // page carved into blocks by the coalesce-to-page layer
)

func pdStateName(s uint8) string {
	switch s {
	case pdHeader:
		return "header"
	case pdFreeHead:
		return "free-head"
	case pdFreeTail:
		return "free-tail"
	case pdAllocHead:
		return "alloc-head"
	case pdAllocMid:
		return "alloc-mid"
	case pdSplit:
		return "split"
	}
	return fmt.Sprintf("state(%d)", s)
}

// Residency flags carried by every page descriptor. In eager mode
// pdfResident tracks exactly "page belongs to a mapped span"; with lazy
// spans it is the real residency bit — free-span pages may keep their
// backing — and pdfScrubbed marks a page whose frames were returned by
// the decommit pass, its bytes overwritten with decommitScrub so a dirty
// read-back is detectable when the page is recommitted.
const (
	pdfResident uint8 = 1 << 0 // page is physically committed
	pdfScrubbed uint8 = 1 << 1 // decommitted and scrub-filled (lazy mode)
	// pdfQuarantined marks a split page the hardening layer pulled from
	// circulation after a corruption detection: it is filed out of every
	// radix bucket, its blocks are parked on its own freelist as their
	// frees arrive, and it is never carved from, coalesced back into a
	// free span, or decommitted — the page stays resident for
	// post-mortem inspection. Set and read under the owning page pool's
	// lock (harden.go).
	pdfQuarantined uint8 = 1 << 2
)

// decommitScrub is the fill byte the decommit pass writes over a page's
// payload. Recommit verifies it intact before zero-filling: a mismatch
// means something read or wrote a page whose physical backing was gone.
const decommitScrub = 0xdc

// trimStepPages bounds one incremental reclaim step's decommit batch, so
// a PressureCritical caller pays for a slice of the sweep, not all of it.
const trimStepPages = 64

// pageDesc is the paper's per-page auxiliary data structure. For split
// pages it holds "the block size, a freelist pointer, and the number of
// free blocks"; for spans it holds "the boundary-tag information and
// free-list pointers needed to allocate and coalesce large blocks".
type pageDesc struct {
	state     uint8
	flags     uint8  // pdfResident / pdfScrubbed residency bits
	class     int8   // size class, for pdSplit pages
	nFree     uint16 // free blocks in this page, for pdSplit pages
	spanPages uint32 // span length in pages, for span head/tail descriptors
	freeHead  arena.Addr
	prev      int32 // page-number links for whichever pdList holds this PD
	next      int32
	line      machine.Line // cache line of this PD's slot in the vmblk header

	// freedTick is the layer's ageTick when this span head was filed on
	// its freelist (span aging, Params.SpanAgeTicks): voluntary decommit
	// passes skip spans younger than the configured age. Only meaningful
	// on pdFreeHead descriptors; bookkeeping only, never charged.
	freedTick uint64
}

// vmblk is one 4 MB (by default) block of kernel virtual address space:
// header pages holding the page descriptors, then the data pages. Every
// vmblk has a home NUMA node: all of its pages are homed there, and
// blocks carved from them always return to that node's pools.
type vmblk struct {
	base        arena.Addr
	firstPage   int32 // global page number of base
	headerPages int32
	pages       int32 // total pages including the header
	home        int8  // owning NUMA node (0 on single-node machines)
	pds         []pageDesc
}

func (vb *vmblk) dataStart() int32 { return vb.firstPage + vb.headerPages }
func (vb *vmblk) end() int32       { return vb.firstPage + vb.pages }

// pdList is a doubly-linked list of page descriptors, linked by global
// page number. The radix-sorted page freelists and the span freelists are
// pdLists.
type pdList struct{ head int32 }

func newPdList() pdList { return pdList{head: -1} }

func (l *pdList) empty() bool { return l.head == -1 }

// maxSpanBucket: spans of 1..maxSpanBucket-1 pages live in exact-length
// buckets; longer spans share the final bucket and are searched first-fit.
const maxSpanBucket = 64

func spanBucket(n int32) int {
	if n >= maxSpanBucket {
		return maxSpanBucket
	}
	return int(n)
}

// vmblkLayer is layer 4: it manages vmblks of virtual address space,
// coalesces adjacent free page spans with boundary tags, maps and unmaps
// physical memory, and serves multi-page ("large") requests directly.
type vmblkLayer struct {
	al *Allocator
	lk *machine.SpinLock

	// dope is the paper's dope vector: "the upper bits of the block's
	// address are used to index into a dope vector, which contains the
	// address of the vmblk containing that block".
	dope     []*vmblk
	dopeLine machine.Line

	next int // index of the next vmblk slot to create

	// spans[node] holds the free-span freelists of the vmblks homed on
	// that node, so page allocations stay node-local (one table on a
	// single-node machine).
	spans []nodeSpans

	// lazy caches Params.LazySpans: true selects the virtual-span
	// backing model (commit on first carve, decommit under pressure),
	// false the paper's eager map/unmap per span.
	lazy bool

	// largeLivePages counts pages currently handed out through the large
	// path, maintained under lk — the large-block contribution to the
	// fragmentation triple's live bytes.
	largeLivePages int64

	// Span aging (Params.SpanAgeTicks). ageTick advances once per
	// voluntary decommit pass; a free span's head records the tick it was
	// filed at, and voluntary passes skip spans younger than spanAge
	// ticks. Both maintained under lk; with spanAge 0 every span always
	// qualifies and the decommit pass is unchanged.
	ageTick uint64
	spanAge uint64

	// ev tallies this layer's slice of the event spine (EvSpanAlloc,
	// EvSpanFree, EvVmblkCreate, EvLargeAlloc, EvLargeFree, EvPagesMap,
	// EvPagesUnmap, EvMapFail, EvPagesReserve, EvPagesCommit,
	// EvPagesDecommit), written under lk. Hook emissions for these events
	// carry class -1: the layer serves every class.
	ev eventCounts
}

// nodeSpans is one node's span freelists, indexed by span bucket.
type nodeSpans [maxSpanBucket + 1]pdList

func newVmblkLayer(a *Allocator) *vmblkLayer {
	v := &vmblkLayer{
		al:       a,
		lk:       machine.NewSpinLock(a.m),
		dope:     make([]*vmblk, a.m.Config().MemBytes>>a.vmblkShift),
		dopeLine: a.m.NewMetaLine(),
		lazy:     a.params.LazySpans,
		spanAge:  a.params.SpanAgeTicks,
	}
	v.spans = make([]nodeSpans, a.m.NumNodes())
	for n := range v.spans {
		for i := range v.spans[n] {
			v.spans[n][i] = newPdList()
		}
	}
	return v
}

// noteLockWait attributes the just-completed Acquire's spin cycles on
// the layer lock to the event spine (EvLockWait, class -1); see
// globalPool.noteLockWait.
func (v *vmblkLayer) noteLockWait() {
	if w := v.lk.LastWait(); w > 0 {
		v.ev[EvLockWait] += uint64(w)
		v.al.emit(-1, EvLockWait, int(w))
	}
}

// pdOf resolves a global page number to its descriptor. The caller must
// know the page belongs to an existing vmblk.
func (v *vmblkLayer) pdOf(pg int32) *pageDesc {
	vb := v.dope[uint32(pg)>>v.al.pagesPerVmblkShift]
	if vb == nil {
		panic(fmt.Sprintf("kmem: page %d has no vmblk", pg))
	}
	return &vb.pds[pg-vb.firstPage]
}

// vmblkOf returns the vmblk containing page pg, or nil.
func (v *vmblkLayer) vmblkOf(pg int32) *vmblk {
	idx := uint32(pg) >> v.al.pagesPerVmblkShift
	if int(idx) >= len(v.dope) {
		return nil
	}
	return v.dope[idx]
}

// lookup implements the paper's two-level translation from a block
// address to its page descriptor: dope-vector index from the upper
// address bits, then the page index within the vmblk minus the header
// pages. It charges the dope and descriptor reads to c.
func (v *vmblkLayer) lookup(c *machine.CPU, addr arena.Addr) (*pageDesc, int32) {
	c.Work(insnDopeLook)
	c.Read(v.dopeLine)
	vb := v.dope[addr>>v.al.vmblkShift]
	if vb == nil {
		panic(fmt.Sprintf("kmem: address %#x not managed by allocator", addr))
	}
	pg := int32(addr >> v.al.pageShift)
	pd := &vb.pds[pg-vb.firstPage]
	c.Read(pd.line)
	return pd, pg
}

// pageAddr returns the base address of global page pg.
func (v *vmblkLayer) pageAddr(pg int32) arena.Addr {
	return arena.Addr(pg) << v.al.pageShift
}

// nodeOfPage returns the home node of page pg (no cost charges; use
// homeOf for the charged dope-vector answer).
func (v *vmblkLayer) nodeOfPage(pg int32) int {
	vb := v.vmblkOf(pg)
	if vb == nil {
		panic(fmt.Sprintf("kmem: page %d has no vmblk", pg))
	}
	return int(vb.home)
}

// homeOf answers "which node owns this block" from the dope vector
// alone: the home is a per-vmblk property, so no page-descriptor access
// is needed. This is the charged lookup the cross-node free path uses to
// route every spilled block back to its home node.
func (v *vmblkLayer) homeOf(c *machine.CPU, addr arena.Addr) int {
	c.Work(insnDopeLook)
	c.Read(v.dopeLine)
	vb := v.dope[addr>>v.al.vmblkShift]
	if vb == nil {
		panic(fmt.Sprintf("kmem: address %#x not managed by allocator", addr))
	}
	return int(vb.home)
}

// --- pdList operations ------------------------------------------------

func (v *vmblkLayer) pdPush(c *machine.CPU, l *pdList, pg int32) {
	pd := v.pdOf(pg)
	pd.prev = -1
	pd.next = l.head
	c.Write(pd.line)
	if l.head != -1 {
		h := v.pdOf(l.head)
		h.prev = pg
		c.Write(h.line)
	}
	l.head = pg
}

func (v *vmblkLayer) pdRemove(c *machine.CPU, l *pdList, pg int32) {
	pd := v.pdOf(pg)
	c.Read(pd.line)
	if pd.prev != -1 {
		p := v.pdOf(pd.prev)
		p.next = pd.next
		c.Write(p.line)
	} else {
		if l.head != pg {
			panic(fmt.Sprintf("kmem: page %d not at head of its list", pg))
		}
		l.head = pd.next
	}
	if pd.next != -1 {
		n := v.pdOf(pd.next)
		n.prev = pd.prev
		c.Write(n.line)
	}
	pd.prev, pd.next = -1, -1
}

// --- span management ---------------------------------------------------

func (v *vmblkLayer) isFreeTail(pd *pageDesc) bool {
	return pd.state == pdFreeTail || (pd.state == pdFreeHead && pd.spanPages == 1)
}

// insertSpan marks [pg, pg+n) as a free span and files it on its home
// node's span freelist. Only the head and tail descriptors carry span
// state (boundary tags); interior descriptors are never consulted.
func (v *vmblkLayer) insertSpan(c *machine.CPU, pg, n int32) {
	head := v.pdOf(pg)
	head.state = pdFreeHead
	head.spanPages = uint32(n)
	head.class = -1
	head.nFree = 0
	head.freeHead = arena.NilAddr
	head.freedTick = v.ageTick
	c.Write(head.line)
	if n > 1 {
		tail := v.pdOf(pg + n - 1)
		tail.state = pdFreeTail
		tail.spanPages = uint32(n)
		c.Write(tail.line)
	}
	v.pdPush(c, &v.spans[v.nodeOfPage(pg)][spanBucket(n)], pg)
}

// removeSpan unlinks the free span headed at pg from its freelist.
func (v *vmblkLayer) removeSpan(c *machine.CPU, pg int32, n int32) {
	v.pdRemove(c, &v.spans[v.nodeOfPage(pg)][spanBucket(n)], pg)
}

// findSpan locates a free span of at least n pages homed on the given
// node (first fit, smallest bucket first) and returns its head page and
// length, or -1.
func (v *vmblkLayer) findSpan(c *machine.CPU, n int32, node int) (int32, int32) {
	spans := &v.spans[node]
	for b := spanBucket(n); b <= maxSpanBucket; b++ {
		c.Work(1)
		if spans[b].empty() {
			continue
		}
		if b < maxSpanBucket {
			pg := spans[b].head
			return pg, int32(b)
		}
		// Final bucket: lengths vary; walk first-fit.
		for pg := spans[b].head; pg != -1; {
			pd := v.pdOf(pg)
			c.Read(pd.line)
			if int32(pd.spanPages) >= n {
				return pg, int32(pd.spanPages)
			}
			pg = pd.next
		}
	}
	return -1, 0
}

// newVmblk carves the next vmblk out of the arena with the given home
// node: the whole span's virtual address space is reserved up front
// (VA-only — no frames), physical pages are committed for its
// page-descriptor header, its pages' home is registered with the
// machine, and its data pages are donated as one big free span on the
// node's span freelist. Returns ErrNoVA when the arena (or the pool's VA
// quota) is exhausted and a physmem error when the header cannot be
// backed — in which case the reservation is unwound.
func (v *vmblkLayer) newVmblk(c *machine.CPU, node int) error {
	m := v.al.m
	if v.al.params.Faults.Should(FaultVmblkCarve) {
		v.al.noteFault()
		return ErrNoVA
	}
	vmblkBytes := uint64(1) << v.al.vmblkShift
	base := uint64(v.next) * vmblkBytes
	if base+vmblkBytes > m.Config().MemBytes {
		return ErrNoVA
	}
	pageBytes := m.Config().PageBytes
	pagesPer := int32(vmblkBytes / pageBytes)
	hdrBytes := uint64(pagesPer) * pdSize
	hdrPages := int32((hdrBytes + pageBytes - 1) / pageBytes)

	if err := m.Phys().Reserve(int64(pagesPer)); err != nil {
		return ErrNoVA
	}
	v.ev[EvPagesReserve] += uint64(pagesPer)
	v.al.emit(-1, EvPagesReserve, int(pagesPer))
	hdrEv := EvPagesMap
	if v.lazy {
		hdrEv = EvPagesCommit
	}
	if err := v.commitPhys(c, int64(hdrPages), hdrEv); err != nil {
		if uerr := m.Phys().Unreserve(int64(pagesPer)); uerr != nil {
			panic(fmt.Sprintf("kmem: newVmblk unwind: %v", uerr))
		}
		return err
	}

	vb := &vmblk{
		base:        base,
		firstPage:   int32(base >> v.al.pageShift),
		headerPages: hdrPages,
		pages:       pagesPer,
		home:        int8(node),
		pds:         make([]pageDesc, pagesPer),
	}
	m.SetPageHomeRange(int64(vb.firstPage), int64(pagesPer), node)
	for i := range vb.pds {
		pd := &vb.pds[i]
		pd.prev, pd.next = -1, -1
		pd.class = -1
		pd.line = m.LineOf(base + uint64(i)*pdSize)
		if int32(i) < hdrPages {
			pd.state = pdHeader
			pd.flags = pdfResident
		}
	}
	v.dope[v.next] = vb
	v.next++
	v.ev[EvVmblkCreate]++
	v.al.emit(-1, EvVmblkCreate, 1)
	c.Write(v.dopeLine)
	c.Work(insnSpanOp)

	v.insertSpan(c, vb.dataStart(), pagesPer-hdrPages)
	return nil
}

// commitPhys claims n physical frames within the layer's reservation and
// charges the VM-system cost of committing and zeroing them. ev selects
// the spine event: EvPagesMap on the eager-backing paths, EvPagesCommit
// for lazy on-demand backing.
func (v *vmblkLayer) commitPhys(c *machine.CPU, n int64, ev LayerEvent) error {
	if err := v.al.m.Phys().Commit(n); err != nil {
		v.ev[EvMapFail]++
		v.al.emit(-1, EvMapFail, 1)
		return err
	}
	v.ev[ev] += uint64(n)
	v.al.emit(-1, ev, int(n))
	cfg := v.al.m.Config()
	c.Idle(n * (cfg.PageMapCycles + cfg.PageZeroCycles))
	return nil
}

// releasePhys returns n physical frames to the system — keeping their
// reservation, so the VA span survives — and charges the unmap cost. ev
// is EvPagesUnmap on the eager free path, EvPagesDecommit from the lazy
// decommit pass. Pages coming free is the machine-level progress signal,
// so every release also wakes any parked AllocWait callers.
func (v *vmblkLayer) releasePhys(c *machine.CPU, n int64, ev LayerEvent) {
	if err := v.al.m.Phys().Decommit(n); err != nil {
		// The span bookkeeping guarantees n > 0; an error here means the
		// layer's own accounting is broken.
		panic(fmt.Sprintf("kmem: releasePhys(%d): %v", n, err))
	}
	v.ev[ev] += uint64(n)
	v.al.emit(-1, ev, int(n))
	c.Idle(n * v.al.m.Config().PageMapCycles)
	v.al.wakeAll()
}

// commitSpan backs the not-yet-resident pages of [pg, pg+n) — the lazy
// mode's first-carve commit. Each newly committed page is verified still
// scrub-filled (nothing touched it while its frames were gone), then
// zero-filled as the VM system would hand back fresh frames. On physical
// exhaustion the pass decommits other free spans' resident pages and
// retries once before failing; the caller unwinds on error (no page
// state has changed).
func (v *vmblkLayer) commitSpan(c *machine.CPU, pg, n int32) error {
	var need int64
	for i := pg; i < pg+n; i++ {
		if v.pdOf(i).flags&pdfResident == 0 {
			need++
		}
	}
	if need == 0 {
		return nil
	}
	if err := v.commitPhys(c, need, EvPagesCommit); err != nil {
		// Emergency pass: an allocation is about to fail for frames, so
		// span aging does not apply (minAge 0).
		if v.decommitFreeLocked(c, need, 0) == 0 {
			return err
		}
		if err := v.commitPhys(c, need, EvPagesCommit); err != nil {
			return err
		}
	}
	pageBytes := v.al.m.Config().PageBytes
	for i := pg; i < pg+n; i++ {
		pd := v.pdOf(i)
		if pd.flags&pdfResident != 0 {
			continue
		}
		addr := v.pageAddr(i)
		if pd.flags&pdfScrubbed != 0 {
			if off, ok := v.al.mem.CheckFill(addr, pageBytes, decommitScrub); !ok {
				panic(fmt.Sprintf("kmem: decommitted page %d dirtied at offset %d before recommit", i, off))
			}
		}
		v.al.mem.Fill(addr, pageBytes, 0)
		pd.flags = pdfResident
	}
	return nil
}

// decommitFreeLocked scrubs and releases the physical backing of free
// spans' resident pages, up to want pages (want < 0 releases all) — the
// madvise-style reclaim of the lazy model. The spans stay exactly where
// they are: freelists, boundary tags, and homes untouched; only the
// pdfResident bit moves. Spans free for fewer than minAge ticks are
// skipped (span aging; 0 considers every span). Returns the pages
// released. Caller holds lk.
func (v *vmblkLayer) decommitFreeLocked(c *machine.CPU, want int64, minAge uint64) int64 {
	if !v.lazy {
		return 0
	}
	pageBytes := v.al.m.Config().PageBytes
	var done int64
	for node := range v.spans {
		for b := 1; b <= maxSpanBucket; b++ {
			for pg := v.spans[node][b].head; pg != -1; pg = v.pdOf(pg).next {
				length := int32(v.pdOf(pg).spanPages)
				if minAge > 0 && v.ageTick-v.pdOf(pg).freedTick < minAge {
					continue // too recently freed; keep its backing warm
				}
				for i := pg; i < pg+length; i++ {
					if want >= 0 && done >= want {
						break
					}
					pd := v.pdOf(i)
					if pd.flags&pdfResident == 0 {
						continue
					}
					v.al.mem.Fill(v.pageAddr(i), pageBytes, decommitScrub)
					pd.flags = pdfScrubbed
					done++
				}
				if want >= 0 && done >= want {
					break
				}
			}
			if want >= 0 && done >= want {
				break
			}
		}
		if want >= 0 && done >= want {
			break
		}
	}
	if done > 0 {
		v.releasePhys(c, done, EvPagesDecommit)
	}
	return done
}

// decommitFree is the locked entry to the voluntary decommit pass (Trim
// and incremental reclaim steps): it advances the span-age tick and
// respects Params.SpanAgeTicks. No-op (0) with lazy spans off, since
// eager backing never leaves a free page resident.
func (v *vmblkLayer) decommitFree(c *machine.CPU, want int64) int64 {
	if !v.lazy {
		return 0
	}
	v.lk.Acquire(c)
	v.noteLockWait()
	v.ageTick++
	n := v.decommitFreeLocked(c, want, v.spanAge)
	v.lk.Release(c)
	return n
}

// decommitFreeForce is the age-blind entry used when frames are needed
// now: stop-the-world reclaim and DrainAll. It still advances the tick
// (it is a reclaim pass) but strips young spans too.
func (v *vmblkLayer) decommitFreeForce(c *machine.CPU, want int64) int64 {
	if !v.lazy {
		return 0
	}
	v.lk.Acquire(c)
	v.noteLockWait()
	v.ageTick++
	n := v.decommitFreeLocked(c, want, 0)
	v.lk.Release(c)
	return n
}

// allocPages allocates a span of n virtual pages homed on the given
// node, backed by freshly mapped physical memory. The head descriptor
// records the span length so the span can later be freed given only its
// address.
func (v *vmblkLayer) allocPages(c *machine.CPU, n int32, node int) (int32, error) {
	if n <= 0 {
		panic(fmt.Sprintf("kmem: allocPages(%d)", n))
	}
	v.lk.Acquire(c)
	v.noteLockWait()
	defer v.lk.Release(c)
	return v.allocPagesLocked(c, n, node)
}

func (v *vmblkLayer) allocPagesLocked(c *machine.CPU, n int32, node int) (int32, error) {
	c.Work(insnSpanOp)
	pg, length := v.findSpan(c, n, node)
	if pg == -1 {
		if err := v.newVmblk(c, node); err != nil {
			return -1, err
		}
		pg, length = v.findSpan(c, n, node)
		if pg == -1 {
			// A fresh vmblk's data span is smaller than n.
			return -1, ErrNoVA
		}
	}
	if v.lazy {
		// The chosen span comes off its freelist before the commit so the
		// decommit fallback inside commitSpan cannot cannibalize it; a
		// commit failure re-inserts it untouched.
		v.removeSpan(c, pg, length)
		if err := v.commitSpan(c, pg, n); err != nil {
			v.insertSpan(c, pg, length)
			return -1, err
		}
	} else {
		// Eager backing keeps the original charge order (findSpan →
		// map → span surgery), pinning LazySpans=false cycle-identical
		// to the pre-virtual-span allocator.
		if err := v.commitPhys(c, int64(n), EvPagesMap); err != nil {
			return -1, err
		}
		v.removeSpan(c, pg, length)
	}
	if length > n {
		v.insertSpan(c, pg+n, length-n)
	}
	head := v.pdOf(pg)
	head.state = pdAllocHead
	head.flags = pdfResident
	head.spanPages = uint32(n)
	head.freeHead = arena.NilAddr
	head.nFree = 0
	c.Write(head.line)
	for i := int32(1); i < n; i++ {
		mid := v.pdOf(pg + i)
		mid.state = pdAllocMid
		mid.flags = pdfResident
		mid.spanPages = uint32(n)
		c.Write(mid.line)
	}
	v.ev[EvSpanAlloc]++
	v.al.emit(-1, EvSpanAlloc, int(n))
	return pg, nil
}

// freePages returns the span [pg, pg+n) to the layer and coalesces it
// with free neighbors via the boundary tags. In eager mode physical
// memory is unmapped immediately ("the physical memory is returned to
// the system; the virtual memory is retained"); with lazy spans the
// frames stay resident on the free span until the decommit pass claims
// them under pressure.
func (v *vmblkLayer) freePages(c *machine.CPU, pg, n int32) {
	v.lk.Acquire(c)
	v.noteLockWait()
	v.freePagesLocked(c, pg, n)
	v.lk.Release(c)
}

func (v *vmblkLayer) freePagesLocked(c *machine.CPU, pg, n int32) {
	c.Work(insnSpanOp)
	vb := v.vmblkOf(pg)
	if vb == nil {
		panic(fmt.Sprintf("kmem: freePages of unmanaged page %d", pg))
	}
	if !v.lazy {
		v.releasePhys(c, int64(n), EvPagesUnmap)
		for i := pg; i < pg+n; i++ {
			v.pdOf(i).flags = 0
		}
	}

	start, length := pg, n
	// Coalesce left: the page just below must be the tail of a free span
	// (or be allocated/header). Boundary tag gives the span length.
	if start-1 >= vb.dataStart() {
		left := v.pdOf(start - 1)
		c.Read(left.line)
		if v.isFreeTail(left) {
			llen := int32(left.spanPages)
			lhead := start - llen
			v.removeSpan(c, lhead, llen)
			start = lhead
			length += llen
		}
	}
	// Coalesce right: the page just past the original span.
	if pg+n < vb.end() && !tortureBug(TortureBugDropRightMerge) {
		right := v.pdOf(pg + n)
		c.Read(right.line)
		if right.state == pdFreeHead {
			rlen := int32(right.spanPages)
			v.removeSpan(c, pg+n, rlen)
			length += rlen
		}
	}
	v.insertSpan(c, start, length)
	v.ev[EvSpanFree]++
	v.al.emit(-1, EvSpanFree, int(n))
}

// --- large (multi-page) requests ----------------------------------------

// pagesFor returns the number of pages needed for a large request.
func (v *vmblkLayer) pagesFor(size uint64) int32 {
	pageBytes := v.al.m.Config().PageBytes
	return int32((size + pageBytes - 1) / pageBytes)
}

// allocLarge serves a request bigger than one page. Per the paper, such
// requests "bypass layers 1 through 3 and are handled directly by the
// coalesce-to-vmblk layer".
func (v *vmblkLayer) allocLarge(c *machine.CPU, size uint64) (arena.Addr, error) {
	c.Work(insnLargeOp)
	n := v.pagesFor(size)
	v.lk.Acquire(c)
	v.noteLockWait()
	defer v.lk.Release(c)
	pg, err := v.allocPagesLocked(c, n, c.Node())
	if err != nil {
		return arena.NilAddr, err
	}
	v.largeLivePages += int64(n)
	v.ev[EvLargeAlloc]++
	v.al.emit(-1, EvLargeAlloc, int(n))
	return v.pageAddr(pg), nil
}

// freeLarge frees a large allocation by address, using the descriptor's
// recorded span length.
func (v *vmblkLayer) freeLarge(c *machine.CPU, addr arena.Addr) {
	c.Work(insnLargeOp)
	v.lk.Acquire(c)
	v.noteLockWait()
	pd, pg := v.lookup(c, addr)
	if pd.state != pdAllocHead {
		panic(fmt.Sprintf("kmem: freeLarge(%#x) of %s page", addr, pdStateName(pd.state)))
	}
	n := int32(pd.spanPages)
	v.freePagesLocked(c, pg, n)
	v.largeLivePages -= int64(n)
	v.ev[EvLargeFree]++
	v.al.emit(-1, EvLargeFree, int(n))
	v.lk.Release(c)
}
