package core

import (
	"errors"
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// ErrNoMemory is returned when an allocation cannot be satisfied even
// after the low-memory reclaim path has drained every cache.
var ErrNoMemory = errors.New("kmem: out of memory")

// ErrNoVA is returned when the kernel virtual address space (the arena's
// supply of vmblks) is exhausted — a failure mode distinct from physical
// frame shortage (ErrNoMemory): no amount of reclaim creates more
// address space, so callers should not retry through the blocking path.
var ErrNoVA = errors.New("kmem: kernel virtual address space exhausted")

// pdSize is the virtual-address footprint of one page descriptor inside a
// vmblk's header, as laid out in Figure 6 of the paper ("a group of page
// descriptors followed by the corresponding data pages").
const pdSize = 32

// Page descriptor states.
const (
	pdHeader    uint8 = iota // header page holding the page descriptors
	pdFreeHead               // first page of a free span (physical memory unmapped)
	pdFreeTail               // last page of a free span (boundary tag)
	pdAllocHead              // first page of an allocated span
	pdAllocMid               // interior page of an allocated span
	pdSplit                  // page carved into blocks by the coalesce-to-page layer
)

func pdStateName(s uint8) string {
	switch s {
	case pdHeader:
		return "header"
	case pdFreeHead:
		return "free-head"
	case pdFreeTail:
		return "free-tail"
	case pdAllocHead:
		return "alloc-head"
	case pdAllocMid:
		return "alloc-mid"
	case pdSplit:
		return "split"
	}
	return fmt.Sprintf("state(%d)", s)
}

// pageDesc is the paper's per-page auxiliary data structure. For split
// pages it holds "the block size, a freelist pointer, and the number of
// free blocks"; for spans it holds "the boundary-tag information and
// free-list pointers needed to allocate and coalesce large blocks".
type pageDesc struct {
	state     uint8
	class     int8   // size class, for pdSplit pages
	nFree     uint16 // free blocks in this page, for pdSplit pages
	spanPages uint32 // span length in pages, for span head/tail descriptors
	freeHead  arena.Addr
	prev      int32 // page-number links for whichever pdList holds this PD
	next      int32
	line      machine.Line // cache line of this PD's slot in the vmblk header
}

// vmblk is one 4 MB (by default) block of kernel virtual address space:
// header pages holding the page descriptors, then the data pages. Every
// vmblk has a home NUMA node: all of its pages are homed there, and
// blocks carved from them always return to that node's pools.
type vmblk struct {
	base        arena.Addr
	firstPage   int32 // global page number of base
	headerPages int32
	pages       int32 // total pages including the header
	home        int8  // owning NUMA node (0 on single-node machines)
	pds         []pageDesc
}

func (vb *vmblk) dataStart() int32 { return vb.firstPage + vb.headerPages }
func (vb *vmblk) end() int32       { return vb.firstPage + vb.pages }

// pdList is a doubly-linked list of page descriptors, linked by global
// page number. The radix-sorted page freelists and the span freelists are
// pdLists.
type pdList struct{ head int32 }

func newPdList() pdList { return pdList{head: -1} }

func (l *pdList) empty() bool { return l.head == -1 }

// maxSpanBucket: spans of 1..maxSpanBucket-1 pages live in exact-length
// buckets; longer spans share the final bucket and are searched first-fit.
const maxSpanBucket = 64

func spanBucket(n int32) int {
	if n >= maxSpanBucket {
		return maxSpanBucket
	}
	return int(n)
}

// vmblkLayer is layer 4: it manages vmblks of virtual address space,
// coalesces adjacent free page spans with boundary tags, maps and unmaps
// physical memory, and serves multi-page ("large") requests directly.
type vmblkLayer struct {
	al *Allocator
	lk *machine.SpinLock

	// dope is the paper's dope vector: "the upper bits of the block's
	// address are used to index into a dope vector, which contains the
	// address of the vmblk containing that block".
	dope     []*vmblk
	dopeLine machine.Line

	next int // index of the next vmblk slot to create

	// spans[node] holds the free-span freelists of the vmblks homed on
	// that node, so page allocations stay node-local (one table on a
	// single-node machine).
	spans []nodeSpans

	// ev tallies this layer's slice of the event spine (EvSpanAlloc,
	// EvSpanFree, EvVmblkCreate, EvLargeAlloc, EvLargeFree, EvPagesMap,
	// EvPagesUnmap, EvMapFail), written under lk. Hook emissions for
	// these events carry class -1: the layer serves every class.
	ev eventCounts
}

// nodeSpans is one node's span freelists, indexed by span bucket.
type nodeSpans [maxSpanBucket + 1]pdList

func newVmblkLayer(a *Allocator) *vmblkLayer {
	v := &vmblkLayer{
		al:       a,
		lk:       machine.NewSpinLock(a.m),
		dope:     make([]*vmblk, a.m.Config().MemBytes>>a.vmblkShift),
		dopeLine: a.m.NewMetaLine(),
	}
	v.spans = make([]nodeSpans, a.m.NumNodes())
	for n := range v.spans {
		for i := range v.spans[n] {
			v.spans[n][i] = newPdList()
		}
	}
	return v
}

// noteLockWait attributes the just-completed Acquire's spin cycles on
// the layer lock to the event spine (EvLockWait, class -1); see
// globalPool.noteLockWait.
func (v *vmblkLayer) noteLockWait() {
	if w := v.lk.LastWait(); w > 0 {
		v.ev[EvLockWait] += uint64(w)
		v.al.emit(-1, EvLockWait, int(w))
	}
}

// pdOf resolves a global page number to its descriptor. The caller must
// know the page belongs to an existing vmblk.
func (v *vmblkLayer) pdOf(pg int32) *pageDesc {
	vb := v.dope[uint32(pg)>>v.al.pagesPerVmblkShift]
	if vb == nil {
		panic(fmt.Sprintf("kmem: page %d has no vmblk", pg))
	}
	return &vb.pds[pg-vb.firstPage]
}

// vmblkOf returns the vmblk containing page pg, or nil.
func (v *vmblkLayer) vmblkOf(pg int32) *vmblk {
	idx := uint32(pg) >> v.al.pagesPerVmblkShift
	if int(idx) >= len(v.dope) {
		return nil
	}
	return v.dope[idx]
}

// lookup implements the paper's two-level translation from a block
// address to its page descriptor: dope-vector index from the upper
// address bits, then the page index within the vmblk minus the header
// pages. It charges the dope and descriptor reads to c.
func (v *vmblkLayer) lookup(c *machine.CPU, addr arena.Addr) (*pageDesc, int32) {
	c.Work(insnDopeLook)
	c.Read(v.dopeLine)
	vb := v.dope[addr>>v.al.vmblkShift]
	if vb == nil {
		panic(fmt.Sprintf("kmem: address %#x not managed by allocator", addr))
	}
	pg := int32(addr >> v.al.pageShift)
	pd := &vb.pds[pg-vb.firstPage]
	c.Read(pd.line)
	return pd, pg
}

// pageAddr returns the base address of global page pg.
func (v *vmblkLayer) pageAddr(pg int32) arena.Addr {
	return arena.Addr(pg) << v.al.pageShift
}

// nodeOfPage returns the home node of page pg (no cost charges; use
// homeOf for the charged dope-vector answer).
func (v *vmblkLayer) nodeOfPage(pg int32) int {
	vb := v.vmblkOf(pg)
	if vb == nil {
		panic(fmt.Sprintf("kmem: page %d has no vmblk", pg))
	}
	return int(vb.home)
}

// homeOf answers "which node owns this block" from the dope vector
// alone: the home is a per-vmblk property, so no page-descriptor access
// is needed. This is the charged lookup the cross-node free path uses to
// route every spilled block back to its home node.
func (v *vmblkLayer) homeOf(c *machine.CPU, addr arena.Addr) int {
	c.Work(insnDopeLook)
	c.Read(v.dopeLine)
	vb := v.dope[addr>>v.al.vmblkShift]
	if vb == nil {
		panic(fmt.Sprintf("kmem: address %#x not managed by allocator", addr))
	}
	return int(vb.home)
}

// --- pdList operations ------------------------------------------------

func (v *vmblkLayer) pdPush(c *machine.CPU, l *pdList, pg int32) {
	pd := v.pdOf(pg)
	pd.prev = -1
	pd.next = l.head
	c.Write(pd.line)
	if l.head != -1 {
		h := v.pdOf(l.head)
		h.prev = pg
		c.Write(h.line)
	}
	l.head = pg
}

func (v *vmblkLayer) pdRemove(c *machine.CPU, l *pdList, pg int32) {
	pd := v.pdOf(pg)
	c.Read(pd.line)
	if pd.prev != -1 {
		p := v.pdOf(pd.prev)
		p.next = pd.next
		c.Write(p.line)
	} else {
		if l.head != pg {
			panic(fmt.Sprintf("kmem: page %d not at head of its list", pg))
		}
		l.head = pd.next
	}
	if pd.next != -1 {
		n := v.pdOf(pd.next)
		n.prev = pd.prev
		c.Write(n.line)
	}
	pd.prev, pd.next = -1, -1
}

// --- span management ---------------------------------------------------

func (v *vmblkLayer) isFreeTail(pd *pageDesc) bool {
	return pd.state == pdFreeTail || (pd.state == pdFreeHead && pd.spanPages == 1)
}

// insertSpan marks [pg, pg+n) as a free span and files it on its home
// node's span freelist. Only the head and tail descriptors carry span
// state (boundary tags); interior descriptors are never consulted.
func (v *vmblkLayer) insertSpan(c *machine.CPU, pg, n int32) {
	head := v.pdOf(pg)
	head.state = pdFreeHead
	head.spanPages = uint32(n)
	head.class = -1
	head.nFree = 0
	head.freeHead = arena.NilAddr
	c.Write(head.line)
	if n > 1 {
		tail := v.pdOf(pg + n - 1)
		tail.state = pdFreeTail
		tail.spanPages = uint32(n)
		c.Write(tail.line)
	}
	v.pdPush(c, &v.spans[v.nodeOfPage(pg)][spanBucket(n)], pg)
}

// removeSpan unlinks the free span headed at pg from its freelist.
func (v *vmblkLayer) removeSpan(c *machine.CPU, pg int32, n int32) {
	v.pdRemove(c, &v.spans[v.nodeOfPage(pg)][spanBucket(n)], pg)
}

// findSpan locates a free span of at least n pages homed on the given
// node (first fit, smallest bucket first) and returns its head page and
// length, or -1.
func (v *vmblkLayer) findSpan(c *machine.CPU, n int32, node int) (int32, int32) {
	spans := &v.spans[node]
	for b := spanBucket(n); b <= maxSpanBucket; b++ {
		c.Work(1)
		if spans[b].empty() {
			continue
		}
		if b < maxSpanBucket {
			pg := spans[b].head
			return pg, int32(b)
		}
		// Final bucket: lengths vary; walk first-fit.
		for pg := spans[b].head; pg != -1; {
			pd := v.pdOf(pg)
			c.Read(pd.line)
			if int32(pd.spanPages) >= n {
				return pg, int32(pd.spanPages)
			}
			pg = pd.next
		}
	}
	return -1, 0
}

// newVmblk carves the next vmblk out of the arena with the given home
// node, maps physical pages for its page-descriptor header, registers
// its pages' home with the machine, and donates its data pages as one
// big free span on the node's span freelist. Returns ErrNoVA when the
// arena is exhausted and a physmem error when the header cannot be
// backed.
func (v *vmblkLayer) newVmblk(c *machine.CPU, node int) error {
	m := v.al.m
	if v.al.params.Faults.Should(FaultVmblkCarve) {
		v.al.noteFault()
		return ErrNoVA
	}
	vmblkBytes := uint64(1) << v.al.vmblkShift
	base := uint64(v.next) * vmblkBytes
	if base+vmblkBytes > m.Config().MemBytes {
		return ErrNoVA
	}
	pageBytes := m.Config().PageBytes
	pagesPer := int32(vmblkBytes / pageBytes)
	hdrBytes := uint64(pagesPer) * pdSize
	hdrPages := int32((hdrBytes + pageBytes - 1) / pageBytes)

	if err := v.mapPhys(c, int64(hdrPages)); err != nil {
		return err
	}

	vb := &vmblk{
		base:        base,
		firstPage:   int32(base >> v.al.pageShift),
		headerPages: hdrPages,
		pages:       pagesPer,
		home:        int8(node),
		pds:         make([]pageDesc, pagesPer),
	}
	m.SetPageHomeRange(int64(vb.firstPage), int64(pagesPer), node)
	for i := range vb.pds {
		pd := &vb.pds[i]
		pd.prev, pd.next = -1, -1
		pd.class = -1
		pd.line = m.LineOf(base + uint64(i)*pdSize)
		if int32(i) < hdrPages {
			pd.state = pdHeader
		}
	}
	v.dope[v.next] = vb
	v.next++
	v.ev[EvVmblkCreate]++
	v.al.emit(-1, EvVmblkCreate, 1)
	c.Write(v.dopeLine)
	c.Work(insnSpanOp)

	v.insertSpan(c, vb.dataStart(), pagesPer-hdrPages)
	return nil
}

// mapPhys claims n physical pages and charges the VM-system cost of
// mapping and zeroing them.
func (v *vmblkLayer) mapPhys(c *machine.CPU, n int64) error {
	if err := v.al.m.Phys().Map(n); err != nil {
		v.ev[EvMapFail]++
		v.al.emit(-1, EvMapFail, 1)
		return err
	}
	v.ev[EvPagesMap] += uint64(n)
	v.al.emit(-1, EvPagesMap, int(n))
	cfg := v.al.m.Config()
	c.Idle(n * (cfg.PageMapCycles + cfg.PageZeroCycles))
	return nil
}

// unmapPhys returns n physical pages and charges the unmap cost. Pages
// coming free is the machine-level progress signal, so every unmap also
// releases any parked AllocWait callers.
func (v *vmblkLayer) unmapPhys(c *machine.CPU, n int64) {
	if err := v.al.m.Phys().Unmap(n); err != nil {
		// The span bookkeeping guarantees n > 0; an error here means the
		// layer's own accounting is broken.
		panic(fmt.Sprintf("kmem: unmapPhys(%d): %v", n, err))
	}
	v.ev[EvPagesUnmap] += uint64(n)
	v.al.emit(-1, EvPagesUnmap, int(n))
	c.Idle(n * v.al.m.Config().PageMapCycles)
	v.al.wakeAll()
}

// allocPages allocates a span of n virtual pages homed on the given
// node, backed by freshly mapped physical memory. The head descriptor
// records the span length so the span can later be freed given only its
// address.
func (v *vmblkLayer) allocPages(c *machine.CPU, n int32, node int) (int32, error) {
	if n <= 0 {
		panic(fmt.Sprintf("kmem: allocPages(%d)", n))
	}
	v.lk.Acquire(c)
	v.noteLockWait()
	defer v.lk.Release(c)
	return v.allocPagesLocked(c, n, node)
}

func (v *vmblkLayer) allocPagesLocked(c *machine.CPU, n int32, node int) (int32, error) {
	c.Work(insnSpanOp)
	pg, length := v.findSpan(c, n, node)
	if pg == -1 {
		if err := v.newVmblk(c, node); err != nil {
			return -1, err
		}
		pg, length = v.findSpan(c, n, node)
		if pg == -1 {
			// A fresh vmblk's data span is smaller than n.
			return -1, ErrNoVA
		}
	}
	if err := v.mapPhys(c, int64(n)); err != nil {
		return -1, err
	}
	v.removeSpan(c, pg, length)
	if length > n {
		v.insertSpan(c, pg+n, length-n)
	}
	head := v.pdOf(pg)
	head.state = pdAllocHead
	head.spanPages = uint32(n)
	head.freeHead = arena.NilAddr
	head.nFree = 0
	c.Write(head.line)
	for i := int32(1); i < n; i++ {
		mid := v.pdOf(pg + i)
		mid.state = pdAllocMid
		mid.spanPages = uint32(n)
		c.Write(mid.line)
	}
	v.ev[EvSpanAlloc]++
	v.al.emit(-1, EvSpanAlloc, int(n))
	return pg, nil
}

// freePages returns the span [pg, pg+n) to the layer: physical memory is
// unmapped immediately ("the physical memory is returned to the system;
// the virtual memory is retained") and the span is coalesced with free
// neighbors via the boundary tags.
func (v *vmblkLayer) freePages(c *machine.CPU, pg, n int32) {
	v.lk.Acquire(c)
	v.noteLockWait()
	v.freePagesLocked(c, pg, n)
	v.lk.Release(c)
}

func (v *vmblkLayer) freePagesLocked(c *machine.CPU, pg, n int32) {
	c.Work(insnSpanOp)
	vb := v.vmblkOf(pg)
	if vb == nil {
		panic(fmt.Sprintf("kmem: freePages of unmanaged page %d", pg))
	}
	v.unmapPhys(c, int64(n))

	start, length := pg, n
	// Coalesce left: the page just below must be the tail of a free span
	// (or be allocated/header). Boundary tag gives the span length.
	if start-1 >= vb.dataStart() {
		left := v.pdOf(start - 1)
		c.Read(left.line)
		if v.isFreeTail(left) {
			llen := int32(left.spanPages)
			lhead := start - llen
			v.removeSpan(c, lhead, llen)
			start = lhead
			length += llen
		}
	}
	// Coalesce right: the page just past the original span.
	if pg+n < vb.end() && !tortureBug(TortureBugDropRightMerge) {
		right := v.pdOf(pg + n)
		c.Read(right.line)
		if right.state == pdFreeHead {
			rlen := int32(right.spanPages)
			v.removeSpan(c, pg+n, rlen)
			length += rlen
		}
	}
	v.insertSpan(c, start, length)
	v.ev[EvSpanFree]++
	v.al.emit(-1, EvSpanFree, int(n))
}

// --- large (multi-page) requests ----------------------------------------

// pagesFor returns the number of pages needed for a large request.
func (v *vmblkLayer) pagesFor(size uint64) int32 {
	pageBytes := v.al.m.Config().PageBytes
	return int32((size + pageBytes - 1) / pageBytes)
}

// allocLarge serves a request bigger than one page. Per the paper, such
// requests "bypass layers 1 through 3 and are handled directly by the
// coalesce-to-vmblk layer".
func (v *vmblkLayer) allocLarge(c *machine.CPU, size uint64) (arena.Addr, error) {
	c.Work(insnLargeOp)
	n := v.pagesFor(size)
	v.lk.Acquire(c)
	v.noteLockWait()
	defer v.lk.Release(c)
	pg, err := v.allocPagesLocked(c, n, c.Node())
	if err != nil {
		return arena.NilAddr, err
	}
	v.ev[EvLargeAlloc]++
	v.al.emit(-1, EvLargeAlloc, int(n))
	return v.pageAddr(pg), nil
}

// freeLarge frees a large allocation by address, using the descriptor's
// recorded span length.
func (v *vmblkLayer) freeLarge(c *machine.CPU, addr arena.Addr) {
	c.Work(insnLargeOp)
	v.lk.Acquire(c)
	v.noteLockWait()
	pd, pg := v.lookup(c, addr)
	if pd.state != pdAllocHead {
		panic(fmt.Sprintf("kmem: freeLarge(%#x) of %s page", addr, pdStateName(pd.state)))
	}
	n := int32(pd.spanPages)
	v.freePagesLocked(c, pg, n)
	v.ev[EvLargeFree]++
	v.al.emit(-1, EvLargeFree, int(n))
	v.lk.Release(c)
}
