package core

import (
	"kmem/internal/blocklist"
	"kmem/internal/machine"
)

// reclaim is the low-memory path behind design goal 5: it must be
// possible for "any given CPU ... to allocate the last remaining buffer,
// although the allocator is permitted to incur more overhead in this
// hopefully infrequent low-memory situation".
//
// Blocks can be stranded in two kinds of cache: other CPUs' per-CPU
// caches (up to 2*target blocks per CPU per class) and the global pools
// (up to 2*gbltarget lists per class). Reclaim flushes both, all the way
// down to the coalesce-to-page layer, so that fully-free pages are
// released and the physical memory becomes available to whichever size
// class (or large request) is starving.
//
// In a real kernel the per-CPU flushes would be requested by IPI; in this
// reproduction the requesting CPU performs each flush directly under the
// owner's IntrLock (a real mutex in native mode, an interrupt-disable
// cost charge in the deterministic simulator) and is charged the work.
func (a *Allocator) reclaim(c *machine.CPU) {
	c.Work(insnReclaim)
	a.reclaims.Add(1)
	a.emit(-1, EvReclaim, 1)

	// With hardening on, reclaim doubles as the audit sweep: every
	// tracked block's canary/poison is re-verified, so dormant
	// corruption is caught even if the corrupt block is never freed or
	// reallocated. Runs before the drains so corrupt pages are
	// quarantined rather than coalesced.
	if a.hd != nil {
		a.AuditSweep(c)
	}

	// Typed object caches shed first: their constructed buffers are
	// allocated blocks from this allocator's point of view, so
	// destructing and freeing them is what lets the drains below
	// coalesce those pages. No-op when no caches are registered.
	a.shedCaches(c, true)

	// Flush every CPU's caches for every class into the global pools.
	for cpu := range a.percpu {
		a.DrainCPU(c, cpu)
	}

	// Push every global pool's contents down to the coalesce-to-page
	// layer; pages whose blocks are all free are released immediately,
	// returning physical memory to the system.
	for cls := range a.classes {
		for _, g := range a.classes[cls].globals {
			g.drainAll(c)
		}
	}

	// With lazy spans, coalesced free spans still hold their physical
	// frames; the starving caller needs those frames, so strip them all —
	// regardless of Params.SpanAgeTicks: aging protects bursty reuse, not
	// a caller about to fail its allocation.
	a.vm.decommitFreeForce(c, -1)
	a.wakeAll()
}

// Reclaims reports how many times the low-memory path has run.
func (a *Allocator) Reclaims() uint64 { return a.reclaims.Load() }

// DrainCPU flushes CPU cpu's caches for every class into the global
// layer. Callers use it to return cached memory when a CPU goes idle;
// tests use it to reach deterministic states. A drain also requotes the
// cache's target from the class controller: a drained cache must not
// resume exchanging stale-sized lists after an adaptive retune.
func (a *Allocator) DrainCPU(c *machine.CPU, cpu int) {
	for cls := range a.classes {
		ctl := a.classes[cls].ctl
		pc := &a.percpu[cpu][cls]
		var main, aux blocklist.List
		var shards []blocklist.List
		// The drain interferes with the victim CPU's fast path: under
		// Params.Rseq it bumps the victim's epoch (aborting any sequence
		// in flight there) instead of taking its IntrLock.
		a.pcpuInterfere(c, cpu, func() {
			main, aux = pc.takeAll(c)
			if !tortureBug(TortureBugSkipShardFlush) {
				shards = pc.takeShards(c)
			}
			if ctl.enabled {
				pc.target = ctl.curTarget()
			}
		})
		if a.nodes == 1 {
			if !main.Empty() {
				a.classes[cls].globals[0].putList(c, main)
			}
			if !aux.Empty() {
				a.classes[cls].globals[0].putList(c, aux)
			}
		} else {
			// Drained caches may hold blocks from several nodes
			// (steals); route each block to its home pool.
			if !main.Empty() {
				a.routeSpill(c, cls, main)
			}
			if !aux.Empty() {
				a.routeSpill(c, cls, aux)
			}
		}
		// Partial remote shards go straight to their home pools: each
		// shard is wholly owned by one node already, so no routing pass
		// is needed. (shards is nil on single-node machines, under
		// DisableRemoteShards, and when nothing is staged.)
		for node := range shards {
			if !shards[node].Empty() {
				n := shards[node].Len()
				a.classes[cls].globals[node].putList(c, shards[node])
				a.emit(cls, EvShardFlush, n)
			}
		}
	}
}

// DrainAll flushes every cache at every layer, leaving all free memory
// coalesced into pages and free spans. After DrainAll on a quiescent
// allocator with no outstanding blocks, every page is returned to the
// system and physical usage drops to the vmblk headers alone.
func (a *Allocator) DrainAll(c *machine.CPU) {
	a.shedCaches(c, true)
	for cpu := range a.percpu {
		a.DrainCPU(c, cpu)
	}
	for cls := range a.classes {
		for _, g := range a.classes[cls].globals {
			g.drainAll(c)
		}
	}
	a.vm.decommitFreeForce(c, -1)
}

// Trim releases the physical backing of up to maxPages free-span pages
// (negative releases all) — the kernel's "give memory back to the
// hypervisor / page cache" entry point for the lazy-span model. The
// spans' virtual addresses, boundary tags, and homes are untouched, so
// subsequent allocations recommit in place. Registered object caches
// shrink their depots first (the non-aggressive shed), so cold
// constructed buffers coalesce into spans the decommit pass can strip.
// Returns the pages released; always 0 with Params.LazySpans off, where
// free spans hold no backing. Free spans younger than Params.SpanAgeTicks
// reclaim ticks keep their backing (span aging).
func (a *Allocator) Trim(c *machine.CPU, maxPages int64) int64 {
	a.shedCaches(c, false)
	return a.vm.decommitFree(c, maxPages)
}
