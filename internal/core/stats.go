package core

import (
	"kmem/internal/machine"
	"kmem/internal/physmem"
)

// ClassStats reports one size class's per-layer activity. The miss rates
// the paper's DLM evaluation uses are derived from these counters: the
// per-CPU layer's miss rate is the fraction of its accesses that require
// the global layer, and the global layer's miss rate is the fraction of
// its accesses that require the coalesce-to-page layer.
type ClassStats struct {
	Size      uint32
	Target    int
	GblTarget int

	// Per-CPU layer, summed over CPUs.
	Allocs       uint64
	Frees        uint64
	AllocRefills uint64 // allocations that visited the global layer
	FreeSpills   uint64 // frees that pushed a list to the global layer

	// Global layer.
	GlobalGets    uint64
	GlobalPuts    uint64
	GlobalRefills uint64 // gets that reached the coalesce-to-page layer
	GlobalSpills  uint64 // puts that reached the coalesce-to-page layer
	GlobalLock    machine.LockStats

	// Coalesce-to-page layer.
	BlockGets  uint64
	BlockPuts  uint64
	PageAllocs uint64
	PageFrees  uint64

	// Blocks currently cached at each level.
	HeldPerCPU int
	HeldGlobal int
}

// AllocMissRate returns the fraction of allocations that missed the
// per-CPU cache (bounded by 1/target).
func (s ClassStats) AllocMissRate() float64 {
	if s.Allocs == 0 {
		return 0
	}
	return float64(s.AllocRefills) / float64(s.Allocs)
}

// FreeMissRate returns the fraction of frees that spilled to the global
// layer (bounded by 1/target).
func (s ClassStats) FreeMissRate() float64 {
	if s.Frees == 0 {
		return 0
	}
	return float64(s.FreeSpills) / float64(s.Frees)
}

// GlobalGetMissRate returns the fraction of global-layer gets that
// required the coalescing layer (bounded by 1/gbltarget).
func (s ClassStats) GlobalGetMissRate() float64 {
	if s.GlobalGets == 0 {
		return 0
	}
	return float64(s.GlobalRefills) / float64(s.GlobalGets)
}

// GlobalPutMissRate returns the fraction of global-layer puts that
// spilled to the coalescing layer.
func (s ClassStats) GlobalPutMissRate() float64 {
	if s.GlobalPuts == 0 {
		return 0
	}
	return float64(s.GlobalSpills) / float64(s.GlobalPuts)
}

// CombinedAllocMissRate returns the fraction of all allocations that
// reached the coalesce-to-page layer (bounded by 1/(target*gbltarget)).
func (s ClassStats) CombinedAllocMissRate() float64 {
	if s.Allocs == 0 {
		return 0
	}
	return float64(s.GlobalRefills) / float64(s.Allocs)
}

// CombinedFreeMissRate returns the fraction of all frees whose blocks
// reached the coalesce-to-page layer.
func (s ClassStats) CombinedFreeMissRate() float64 {
	if s.Frees == 0 {
		return 0
	}
	return float64(s.GlobalSpills) / float64(s.Frees)
}

// VMStats reports coalesce-to-vmblk layer activity.
type VMStats struct {
	SpanAllocs   uint64
	SpanFrees    uint64
	VmblkCreates uint64
	LargeAllocs  uint64
	LargeFrees   uint64
	PagesMapped  uint64
	PagesUnmap   uint64
	MapFailures  uint64
}

// Stats is a full snapshot of the allocator.
type Stats struct {
	Classes  []ClassStats
	VM       VMStats
	Phys     physmem.Stats
	Reclaims uint64
}

// Stats gathers a snapshot. It takes the relevant locks briefly; pass the
// calling CPU's handle as everywhere else.
func (a *Allocator) Stats(c *machine.CPU) Stats {
	out := Stats{Reclaims: a.reclaims.Load()}
	out.Classes = make([]ClassStats, len(a.classes))
	for i := range a.classes {
		cs := &a.classes[i]
		st := ClassStats{
			Size:      cs.size,
			Target:    cs.target,
			GblTarget: cs.gbltarget,
		}
		for cpu := range a.percpu {
			il := &a.intr[cpu]
			il.Acquire(c)
			pc := &a.percpu[cpu][i]
			st.Allocs += pc.allocs
			st.Frees += pc.frees
			st.AllocRefills += pc.allocRefills
			st.FreeSpills += pc.freeSpills
			st.HeldPerCPU += pc.held()
			il.Release(c)
		}
		g := cs.global
		g.lk.Acquire(c)
		st.GlobalGets = g.gets
		st.GlobalPuts = g.puts
		st.GlobalRefills = g.refills
		st.GlobalSpills = g.spills
		st.HeldGlobal = g.bucket.Len()
		for _, l := range g.lists {
			st.HeldGlobal += l.Len()
		}
		g.lk.Release(c)
		st.GlobalLock = g.lk.Stats()

		p := cs.pages
		p.lk.Acquire(c)
		st.BlockGets = p.blockGets
		st.BlockPuts = p.blockPuts
		st.PageAllocs = p.pageAllocs
		st.PageFrees = p.pageFrees
		p.lk.Release(c)

		out.Classes[i] = st
	}
	a.vm.lk.Acquire(c)
	out.VM = VMStats{
		SpanAllocs:   a.vm.spanAllocs,
		SpanFrees:    a.vm.spanFrees,
		VmblkCreates: a.vm.vmblkCreates,
		LargeAllocs:  a.vm.largeAllocs,
		LargeFrees:   a.vm.largeFrees,
		PagesMapped:  a.vm.pagesMapped,
		PagesUnmap:   a.vm.pagesUnmap,
		MapFailures:  a.vm.mapFailures,
	}
	a.vm.lk.Release(c)
	out.Phys = a.m.Phys().Stats()
	return out
}
