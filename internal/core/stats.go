package core

import (
	"math"
	"math/bits"

	"kmem/internal/machine"
	"kmem/internal/physmem"
)

// ClassStats reports one size class's per-layer activity, assembled from
// the event spine (each layer structure's eventCounts array). The miss
// rates the paper's DLM evaluation uses are derived from these counters:
// the per-CPU layer's miss rate is the fraction of its accesses that
// require the global layer, and the global layer's miss rate is the
// fraction of its accesses that require the coalesce-to-page layer.
type ClassStats struct {
	Size      uint32
	Target    int // current per-CPU cache target (adaptive or configured)
	GblTarget int // current global-layer capacity parameter

	// Per-CPU layer, summed over CPUs.
	Allocs       uint64
	Frees        uint64
	AllocRefills uint64 // allocations that visited the global layer
	FreeSpills   uint64 // frees that pushed a list to the global layer

	// Global layer (summed over the per-node pools on NUMA machines).
	GlobalGets    uint64
	GlobalPuts    uint64
	GlobalRefills uint64 // gets that reached the coalesce-to-page layer
	GlobalSpills  uint64 // puts that reached the coalesce-to-page layer
	GlobalLock    machine.LockStats
	PageLock      machine.LockStats // the coalesce-to-page pools' locks

	// Node-crossing traffic (zero on single-node machines).
	RemoteFrees  uint64 // blocks routed to a non-local node's global pool
	RemotePuts   uint64 // putList lock trips taken against a non-local pool
	NodeSteals   uint64 // blocks stolen from other nodes' pools by dry refills
	Interconnect uint64 // slow-path pool operations that crossed the interconnect

	// Remote-free shard activity (zero with shards off).
	ShardFlushes uint64 // remote shards flushed home in one batched putList
	HomeMemoHits uint64 // sharded frees answered by the per-CPU home memo

	// Lock-contention cycles attributed to this class's pools (Sim mode):
	// cycles CPUs spent spinning on the global and page-pool locks, from
	// the event spine (EvLockWait).
	LockWaitCycles uint64

	// Optimistic-concurrency activity (zero with Rseq/LockFree off).
	RseqRestarts uint64 // per-CPU sequences aborted and re-run
	CASRetries   uint64 // lock-free commits that lost their CAS and re-ran

	// Coalesce-to-page layer.
	BlockGets  uint64
	BlockPuts  uint64
	PageAllocs uint64
	PageFrees  uint64

	// Blocks currently cached at each level.
	HeldPerCPU int
	HeldGlobal int

	// LiveBytes is the class's outstanding memory — blocks allocated and
	// not yet freed, at the class's rounded block size. Exact on a
	// quiescent allocator; transiently approximate while CPUs run (the
	// snapshot is relaxed, see Stats).
	LiveBytes uint64

	// Adaptive-controller decisions (zero with adaptation off).
	TargetGrows      uint64
	TargetShrinks    uint64
	GblTargetGrows   uint64
	GblTargetShrinks uint64
}

// AllocMissRate returns the fraction of allocations that missed the
// per-CPU cache (bounded by 1/target).
func (s ClassStats) AllocMissRate() float64 {
	if s.Allocs == 0 {
		return 0
	}
	return float64(s.AllocRefills) / float64(s.Allocs)
}

// FreeMissRate returns the fraction of frees that spilled to the global
// layer (bounded by 1/target).
func (s ClassStats) FreeMissRate() float64 {
	if s.Frees == 0 {
		return 0
	}
	return float64(s.FreeSpills) / float64(s.Frees)
}

// GlobalGetMissRate returns the fraction of global-layer gets that
// required the coalescing layer (bounded by 1/gbltarget).
func (s ClassStats) GlobalGetMissRate() float64 {
	if s.GlobalGets == 0 {
		return 0
	}
	return float64(s.GlobalRefills) / float64(s.GlobalGets)
}

// GlobalPutMissRate returns the fraction of global-layer puts that
// spilled to the coalescing layer.
func (s ClassStats) GlobalPutMissRate() float64 {
	if s.GlobalPuts == 0 {
		return 0
	}
	return float64(s.GlobalSpills) / float64(s.GlobalPuts)
}

// CombinedAllocMissRate returns the fraction of all allocations that
// reached the coalesce-to-page layer (bounded by 1/(target*gbltarget)).
func (s ClassStats) CombinedAllocMissRate() float64 {
	if s.Allocs == 0 {
		return 0
	}
	return float64(s.GlobalRefills) / float64(s.Allocs)
}

// CombinedFreeMissRate returns the fraction of all frees whose blocks
// reached the coalesce-to-page layer.
func (s ClassStats) CombinedFreeMissRate() float64 {
	if s.Frees == 0 {
		return 0
	}
	return float64(s.GlobalSpills) / float64(s.Frees)
}

// VMStats reports coalesce-to-vmblk layer activity.
type VMStats struct {
	SpanAllocs   uint64
	SpanFrees    uint64
	VmblkCreates uint64
	LargeAllocs  uint64
	LargeFrees   uint64
	PagesMapped  uint64
	PagesUnmap   uint64
	MapFailures  uint64

	// Virtual-span residency traffic. PagesReserved counts VA pages
	// reserved at vmblk creation (both backing modes); PagesCommit and
	// PagesDecommit count the lazy mode's on-demand commits and
	// free-span decommits (zero in eager mode, which moves frames
	// through PagesMapped/PagesUnmap instead).
	PagesReserved  uint64
	PagesCommit    uint64
	PagesDecommit  uint64
	LargeLivePages int64 // pages currently held by large allocations

	// Lock is the layer lock's contention snapshot; LockWaitCycles is the
	// same spin time as attributed through the event spine (EvLockWait).
	Lock           machine.LockStats
	LockWaitCycles uint64
}

// PressureStats reports the memory-pressure machinery's activity. All
// zero when Params.Pressure is nil, no AllocWait caller ever parked, and
// no fault was injected.
type PressureStats struct {
	Level          PressureLevel // current level (mirrors Phys.Pressure)
	Transitions    uint64        // level changes observed by the allocator
	Waits          uint64        // AllocWait park/backoff rounds
	Wakes          uint64        // parked waiters released
	FaultsInjected uint64        // armed fault points that fired
	ReclaimSteps   uint64        // incremental reclaim steps run
}

// QuarantineStats reports the corruption-hardening layer's detections
// and containment (all zero with Params.Harden nil). Quarantined memory
// stays mapped — it counts in Phys.Mapped and Phys.Quarantined — but is
// permanently out of circulation.
type QuarantineStats struct {
	Detections    uint64 // total corruption reports filed
	Overruns      uint64 // redzone canaries destroyed
	DoubleFrees   uint64 // frees of blocks not currently allocated
	UseAfterFrees uint64 // free-poison destroyed by a late write

	Pages   uint64 // pages pulled from circulation (split pages + large spans)
	Objects uint64 // blocks and spans parked or swallowed
	Bytes   uint64 // bytes of parked blocks/spans (rounded sizes)
}

// FragStats is the fragmentation triple: the three nested footprints of
// the virtual-span model, Reserved ≥ Resident ≥ Live. The gap between
// Resident and Live is internal + caching fragmentation (memory the
// allocator holds but no caller owns); the gap between Reserved and
// Resident is address space held at zero physical cost. In eager mode
// Resident tracks the allocator's mapped footprint, so the triple stays
// meaningful across both backing models.
type FragStats struct {
	ReservedBytes uint64 // virtual address space claimed by vmblk spans
	ResidentBytes uint64 // physically committed pages
	LiveBytes     uint64 // bytes outstanding to callers (rounded sizes)
}

// ResidentRatio returns ResidentBytes/ReservedBytes — the fraction of
// the claimed address space that costs physical memory (0 when nothing
// is reserved).
func (f FragStats) ResidentRatio() float64 {
	if f.ReservedBytes == 0 {
		return 0
	}
	return float64(f.ResidentBytes) / float64(f.ReservedBytes)
}

// Utilization returns LiveBytes/ResidentBytes — the fraction of
// committed memory actually owned by callers (0 when nothing is
// resident).
func (f FragStats) Utilization() float64 {
	if f.ResidentBytes == 0 {
		return 0
	}
	return float64(f.LiveBytes) / float64(f.ResidentBytes)
}

// LatencyBuckets is the number of fixed log-scale buckets in a
// LatencyHist. Bucket 0 holds zero-cycle samples; bucket i (i >= 1)
// holds samples in [2^(i-1), 2^i) cycles. The top bucket absorbs
// everything from 2^(LatencyBuckets-2) cycles up — about 1.3 virtual
// seconds at the default 50 MHz, far beyond any single allocator
// operation — so no sample is ever dropped.
const LatencyBuckets = 28

// LatencyHist is a fixed-bucket log-scale cycle histogram of per-op
// latency. Fixed buckets make merging, windowing (Sub of two snapshots
// of a monotonically growing histogram) and quantile extraction exact
// and deterministic: the same run always yields byte-identical buckets,
// and a reported quantile is the upper bound of the bucket holding the
// rank — resolution is a factor of two, which is what a tail-latency
// gate needs (a regression that matters crosses a power of two; one
// that does not is noise the gate should ignore). Log scale fits an
// allocator whose operations span 13-instruction warm hits to reclaim
// storms five decimal orders slower; linear buckets would waste their
// range on one regime or the other.
type LatencyHist struct {
	Buckets [LatencyBuckets]uint64
}

// latencyBucket maps a cycle count to its bucket index.
func latencyBucket(cycles int64) int {
	if cycles <= 0 {
		return 0
	}
	b := bits.Len64(uint64(cycles)) // cycles in [2^(b-1), 2^b)
	if b > LatencyBuckets-1 {
		b = LatencyBuckets - 1
	}
	return b
}

// Record adds one sample.
func (h *LatencyHist) Record(cycles int64) { h.Buckets[latencyBucket(cycles)]++ }

// Count returns the total number of samples.
func (h *LatencyHist) Count() uint64 {
	var n uint64
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

// Add accumulates o into h bucket-wise.
func (h *LatencyHist) Add(o *LatencyHist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Sub returns h minus o bucket-wise: the activity window between two
// snapshots of the same monotonically growing histogram (o must be the
// earlier snapshot).
func (h LatencyHist) Sub(o LatencyHist) LatencyHist {
	out := h
	for i := range out.Buckets {
		out.Buckets[i] -= o.Buckets[i]
	}
	return out
}

// BucketUpper returns bucket i's inclusive upper bound in cycles — the
// value Quantile reports for samples landing in it (0 for the
// zero-cycle bucket).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	return (int64(1) << uint(i)) - 1
}

// Quantile returns the latency at quantile q (0 < q <= 1) by the
// nearest-rank rule, reported as the holding bucket's upper bound.
// Returns 0 on an empty histogram.
func (h *LatencyHist) Quantile(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(LatencyBuckets - 1)
}

// P50 returns the median latency in cycles.
func (h *LatencyHist) P50() int64 { return h.Quantile(0.50) }

// P99 returns the 99th-percentile latency in cycles.
func (h *LatencyHist) P99() int64 { return h.Quantile(0.99) }

// P999 returns the 99.9th-percentile latency in cycles.
func (h *LatencyHist) P999() int64 { return h.Quantile(0.999) }

// LatencyStats is one merged snapshot of the per-op latency recorder
// (zero-valued unless Params.Latency armed it).
type LatencyStats struct {
	Alloc LatencyHist // successful small-block class allocations
	Free  LatencyHist // small-block class frees
}

// Stats is a full snapshot of the allocator.
type Stats struct {
	Classes    []ClassStats
	VM         VMStats
	Phys       physmem.Stats
	Frag       FragStats
	Reclaims   uint64
	Pressure   PressureStats
	Quarantine QuarantineStats
}

// Stats gathers a snapshot; pass the calling CPU's handle as everywhere
// else.
//
// Snapshot semantics are deliberately relaxed rather than stop-the-world:
// each CPU's caches are read under a single IntrLock acquisition (so one
// CPU's counters are mutually consistent across every class and every
// event), and each global pool and page pool is read under its own lock —
// but the snapshot as a whole is not one atomic cut across layers. While
// other CPUs run, cross-layer totals may disagree transiently (e.g. a
// spilled list may be counted by the per-CPU layer before the global
// layer has received it). The invariants that DO hold, asserted by
// TestStatsRelaxedSnapshotInvariants: every counter is monotonically
// nondecreasing between successive snapshots, and on a quiescent
// allocator the snapshot is exact (block conservation holds per class).
func (a *Allocator) Stats(c *machine.CPU) Stats {
	out := Stats{Reclaims: a.reclaims.Load()}
	out.Classes = make([]ClassStats, len(a.classes))
	for i := range a.classes {
		cs := &a.classes[i]
		out.Classes[i] = ClassStats{
			Size:             cs.size,
			Target:           cs.ctl.curTarget(),
			GblTarget:        cs.ctl.curGblTarget(),
			TargetGrows:      cs.ctl.grows.Load(),
			TargetShrinks:    cs.ctl.shrinks.Load(),
			GblTargetGrows:   cs.ctl.gblGrows.Load(),
			GblTargetShrinks: cs.ctl.gblShrinks.Load(),
		}
	}

	// One IntrLock acquisition per CPU, covering every class: a CPU's
	// per-class counters are read as one consistent unit instead of the
	// per-class lock/unlock sequence that let classes skew against each
	// other mid-run.
	for cpu := range a.percpu {
		a.pcpuInterfere(c, cpu, func() {
			for i := range a.classes {
				pc := &a.percpu[cpu][i]
				st := &out.Classes[i]
				st.Allocs += pc.ev[EvAlloc]
				st.Frees += pc.ev[EvFree]
				st.AllocRefills += pc.ev[EvCPURefill]
				st.FreeSpills += pc.ev[EvCPUSpill]
				st.ShardFlushes += pc.ev[EvShardFlush]
				st.HomeMemoHits += pc.ev[EvHomeMemoHit]
				st.RseqRestarts += pc.ev[EvRseqRestart]
				st.HeldPerCPU += pc.held()
			}
		})
	}

	for i := range a.classes {
		cs := &a.classes[i]
		st := &out.Classes[i]

		for _, g := range cs.globals {
			g.lk.Acquire(c)
			st.GlobalGets += g.ev[EvGlobalGet]
			st.GlobalPuts += g.ev[EvGlobalPut]
			st.GlobalRefills += g.ev[EvGlobalRefill]
			st.GlobalSpills += g.ev[EvGlobalSpill]
			st.RemoteFrees += g.ev[EvRemoteFree]
			st.RemotePuts += g.ev[EvRemotePut]
			st.NodeSteals += g.ev[EvNodeSteal]
			st.Interconnect += g.ev[EvInterconnect]
			st.LockWaitCycles += g.ev[EvLockWait]
			st.CASRetries += g.ev[EvCASRetry]
			st.HeldGlobal += g.bucket.Len()
			for _, l := range g.lists {
				st.HeldGlobal += l.Len()
			}
			g.lk.Release(c)
			ls := g.lk.Stats()
			st.GlobalLock.Acquisitions += ls.Acquisitions
			st.GlobalLock.Contended += ls.Contended
			st.GlobalLock.SpinCycles += ls.SpinCycles
			st.GlobalLock.HoldCycles += ls.HoldCycles
		}

		for _, p := range cs.pages {
			p.lk.Acquire(c)
			st.BlockGets += p.ev[EvBlockGet]
			st.BlockPuts += p.ev[EvBlockPut]
			st.PageAllocs += p.ev[EvPageCarve]
			st.PageFrees += p.ev[EvPageFree]
			st.LockWaitCycles += p.ev[EvLockWait]
			st.CASRetries += p.ev[EvCASRetry]
			p.lk.Release(c)
			ls := p.lk.Stats()
			st.PageLock.Acquisitions += ls.Acquisitions
			st.PageLock.Contended += ls.Contended
			st.PageLock.SpinCycles += ls.SpinCycles
			st.PageLock.HoldCycles += ls.HoldCycles
		}
	}

	a.vm.lk.Acquire(c)
	out.VM = VMStats{
		SpanAllocs:     a.vm.ev[EvSpanAlloc],
		SpanFrees:      a.vm.ev[EvSpanFree],
		VmblkCreates:   a.vm.ev[EvVmblkCreate],
		LargeAllocs:    a.vm.ev[EvLargeAlloc],
		LargeFrees:     a.vm.ev[EvLargeFree],
		PagesMapped:    a.vm.ev[EvPagesMap],
		PagesUnmap:     a.vm.ev[EvPagesUnmap],
		MapFailures:    a.vm.ev[EvMapFail],
		PagesReserved:  a.vm.ev[EvPagesReserve],
		PagesCommit:    a.vm.ev[EvPagesCommit],
		PagesDecommit:  a.vm.ev[EvPagesDecommit],
		LargeLivePages: a.vm.largeLivePages,
		LockWaitCycles: a.vm.ev[EvLockWait],
	}
	a.vm.lk.Release(c)
	out.VM.Lock = a.vm.lk.Stats()
	out.Phys = a.m.Phys().Stats()

	// The fragmentation triple, from the same snapshot: reserved VA and
	// resident frames from physmem, live bytes from per-class outstanding
	// blocks plus the large path's held pages.
	pageBytes := a.m.Config().PageBytes
	var live uint64
	for i := range out.Classes {
		st := &out.Classes[i]
		if st.Allocs > st.Frees {
			st.LiveBytes = (st.Allocs - st.Frees) * uint64(st.Size)
		}
		live += st.LiveBytes
	}
	live += uint64(out.VM.LargeLivePages) * pageBytes
	out.Frag = FragStats{
		ReservedBytes: uint64(out.Phys.Reserved) * pageBytes,
		ResidentBytes: uint64(out.Phys.Mapped) * pageBytes,
		LiveBytes:     live,
	}
	out.Pressure = PressureStats{
		Level:          a.pressureLevel(),
		Transitions:    a.pressureTransitions.Load(),
		Waits:          a.waits.Load(),
		Wakes:          a.wakes.Load(),
		FaultsInjected: a.faultsInjected.Load(),
		ReclaimSteps:   a.reclaimStepsDone.Load(),
	}
	out.Quarantine = a.hd.quarantineStats()
	return out
}
