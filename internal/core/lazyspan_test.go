package core

import (
	"errors"
	"strings"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// TestLazySpansOffCycleIdentity is the virtual-span redesign's
// conformance gate: with Params.LazySpans false (the default) the
// allocator must execute the pre-virtual-span code instruction for
// instruction, so the shard-era cycle goldens still hold exactly. The
// reserve/commit split changes physmem's internal accounting, but the
// eager path's charge order — findSpan, map, span surgery — is pinned.
func TestLazySpansOffCycleIdentity(t *testing.T) {
	got := shardGoldenCycles(t, 1, Params{RadixSort: true, LazySpans: false})
	assertGolden(t, "nodes=1 lazy-off", got, goldenCyclesNodes1)
	got = shardGoldenCycles(t, 4, Params{RadixSort: true, LazySpans: false, DisableRemoteShards: true})
	assertGolden(t, "nodes=4 lazy-off", got, goldenCyclesNodes4Routing)
}

// lazyMachine builds a small machine with lazy spans on: a 4 MB arena
// over only 64 physical pages, so the virtual span (the whole arena,
// 1024 pages) over-reserves physical memory 16x.
func lazyMachine(t *testing.T, physPages int64) (*machine.Machine, *Allocator) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 1
	cfg.MemBytes = 4 << 20
	cfg.PhysPages = physPages
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, LazySpans: true})
	if err != nil {
		t.Fatal(err)
	}
	return m, a
}

// TestLazyDefaultVmblkShift checks the lazy default span size: 64 MB,
// clamped down to the arena.
func TestLazyDefaultVmblkShift(t *testing.T) {
	cfg := machine.DefaultConfig() // 64 MB arena
	m := machine.New(cfg)
	a, err := New(m, Params{LazySpans: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.vmblkShift != 26 {
		t.Fatalf("vmblkShift = %d, want 26 on a 64 MB arena", a.vmblkShift)
	}
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 1024
	m = machine.New(cfg)
	if a, err = New(m, Params{LazySpans: true}); err != nil {
		t.Fatal(err)
	}
	if a.vmblkShift != 24 {
		t.Fatalf("vmblkShift = %d, want 24 on a 16 MB arena", a.vmblkShift)
	}
	// Eager default is untouched.
	if a, err = New(m, Params{}); err != nil {
		t.Fatal(err)
	}
	if a.vmblkShift != 22 {
		t.Fatalf("eager vmblkShift = %d, want 22", a.vmblkShift)
	}
}

// TestLazyOverReservation proves the heart of the model: a vmblk's span
// reserves far more virtual address space than the machine has physical
// pages, and only touched pages are committed.
func TestLazyOverReservation(t *testing.T) {
	m, a := lazyMachine(t, 64)
	c := m.CPU(0)
	b, err := a.Alloc(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	phys := m.Phys()
	if got := phys.Reserved(); got != 1024 {
		t.Fatalf("Reserved = %d, want the whole 1024-page span", got)
	}
	// Header (8 pages) + the split pages the first refill carved — the
	// same count TestHeaderPagesAccounted pins for eager mode.
	cls := a.classFor(64)
	refillBytes := uint64(a.classes[cls].gbltarget*a.classes[cls].target) * 64
	wantData := int64((refillBytes + m.Config().PageBytes - 1) / m.Config().PageBytes)
	if got := phys.Mapped(); got != 8+wantData {
		t.Fatalf("Mapped = %d, want %d (header + refill)", got, 8+wantData)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	a.Free(c, b, 64)
	a.DrainAll(c)
	if got := phys.Mapped(); got != a.HeaderPages() {
		t.Fatalf("Mapped after DrainAll = %d, want header floor %d", got, a.HeaderPages())
	}
	if got := phys.Reserved(); got != 1024 {
		t.Fatalf("DrainAll shrank the reservation: Reserved = %d", got)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestLazyFreeKeepsBacking checks the deferred-unmap behavior and the
// Trim entry point: freeing a large span keeps its frames resident for
// cheap reuse; Trim scrubs and releases them while the span's virtual
// address, boundary tags, and home survive.
func TestLazyFreeKeepsBacking(t *testing.T) {
	m, a := lazyMachine(t, 256)
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes

	b, err := a.Alloc(c, 40*pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	phys := m.Phys()
	base := phys.Mapped() // header + 40
	a.Free(c, b, 40*pageBytes)
	if got := phys.Mapped(); got != base {
		t.Fatalf("free changed residency: Mapped = %d, want %d", got, base)
	}
	st := a.Stats(c)
	if st.VM.PagesDecommit != 0 || st.VM.PagesUnmap != 0 {
		t.Fatalf("free decommitted: %+v", st.VM)
	}

	// Trim a slice, then the rest.
	if got := a.Trim(c, 16); got != 16 {
		t.Fatalf("Trim(16) = %d", got)
	}
	if got := phys.Mapped(); got != base-16 {
		t.Fatalf("Mapped after Trim(16) = %d, want %d", got, base-16)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := a.Trim(c, -1); got != 24 {
		t.Fatalf("Trim(-1) = %d, want the remaining 24", got)
	}
	if got := phys.Mapped(); got != a.HeaderPages() {
		t.Fatalf("Mapped after full Trim = %d, want header floor", got)
	}
	st = a.Stats(c)
	if st.VM.PagesDecommit != 40 {
		t.Fatalf("PagesDecommit = %d, want 40", st.VM.PagesDecommit)
	}

	// Reallocating the trimmed region recommits it, and AllocZeroed
	// reads back zeros (the scrub pattern must not leak to callers).
	b2, err := a.AllocZeroed(c, 40*pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	if off, ok := a.mem.CheckFill(b2, 40*pageBytes, 0); !ok {
		t.Fatalf("recommitted span not zero at offset %d", off)
	}
	a.Free(c, b2, 40*pageBytes)
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestLazyCommitDecommitFallback drives the commit path into physical
// exhaustion while free spans still hold backing: the commit must strip
// those spans' frames in place and retry rather than fail or run the
// full reclaim path.
func TestLazyCommitDecommitFallback(t *testing.T) {
	m, a := lazyMachine(t, 64) // 8 header pages + 56 data frames
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes

	ba, err := a.Alloc(c, 24*pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := a.Alloc(c, 24*pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(c, ba, 24*pageBytes) // 24 resident frames parked on a free span
	phys := m.Phys()
	if got := phys.Mapped(); got != 56 {
		t.Fatalf("Mapped = %d, want 56", got)
	}

	// 32 fresh pages: only 8 frames are free, so the commit must claim
	// the parked 24 from the freed span and succeed on the retry.
	bc, err := a.Alloc(c, 32*pageBytes)
	if err != nil {
		t.Fatalf("commit fallback failed: %v", err)
	}
	if got := phys.Mapped(); got != 64 {
		t.Fatalf("Mapped = %d, want the full 64", got)
	}
	st := a.Stats(c)
	if st.VM.PagesDecommit != 24 {
		t.Fatalf("PagesDecommit = %d, want 24", st.VM.PagesDecommit)
	}
	if st.VM.MapFailures != 1 {
		t.Fatalf("MapFailures = %d, want exactly the one retried commit", st.VM.MapFailures)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	a.Free(c, bb, 24*pageBytes)
	a.Free(c, bc, 32*pageBytes)
	a.DrainAll(c)
	if got := phys.Mapped(); got != a.HeaderPages() {
		t.Fatalf("Mapped after DrainAll = %d, want header floor", got)
	}
}

// TestLazyScrubDetectsDirtyReadback checks the decommit scrub audit end
// to end: a write into a decommitted page is caught by CheckConsistency,
// and recommitting the page panics instead of handing the caller a page
// whose backing was silently resurrected with stale bytes.
func TestLazyScrubDetectsDirtyReadback(t *testing.T) {
	m, a := lazyMachine(t, 256)
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes

	b, err := a.Alloc(c, 16*pageBytes)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(c, b, 16*pageBytes)
	if got := a.Trim(c, -1); got != 16 {
		t.Fatalf("Trim = %d", got)
	}
	// Simulate a wild write through a dangling reference into the
	// decommitted page.
	a.mem.Store64(b+256, 0xdeadbeef)
	err = a.CheckConsistency()
	if err == nil || !strings.Contains(err.Error(), "dirty") {
		t.Fatalf("CheckConsistency = %v, want dirty-page report", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("recommit of dirtied page did not panic")
		}
		if !strings.Contains(r.(string), "dirtied") {
			t.Fatalf("panic = %v", r)
		}
	}()
	_, _ = a.Alloc(c, 16*pageBytes)
}

// TestLazyFragTriple checks the fragmentation triple's ordering and that
// the lazy model holds residency well under the reserved span during
// alloc/free churn.
func TestLazyFragTriple(t *testing.T) {
	m, a := lazyMachine(t, 512)
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes

	type held struct {
		b arena.Addr
		s uint64
	}
	var live []held
	sizes := []uint64{64, 256, 2048, 3 * pageBytes}
	for i := 0; i < 400; i++ {
		sz := sizes[i%len(sizes)]
		b, err := a.Alloc(c, sz)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, held{b, sz})
		if i%3 == 0 {
			j := (i * 7) % len(live)
			a.Free(c, live[j].b, live[j].s)
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats(c)
	if st.Frag.LiveBytes > st.Frag.ResidentBytes {
		t.Fatalf("live %d > resident %d", st.Frag.LiveBytes, st.Frag.ResidentBytes)
	}
	if st.Frag.ResidentBytes > st.Frag.ReservedBytes {
		t.Fatalf("resident %d > reserved %d", st.Frag.ResidentBytes, st.Frag.ReservedBytes)
	}
	if r := st.Frag.ResidentRatio(); r >= 1 {
		t.Fatalf("ResidentRatio = %v, want < 1 (over-reserved span)", r)
	}
	if u := st.Frag.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("Utilization = %v", u)
	}
}

// TestLazyVAQuotaError checks that exhausting the pool's VA quota
// surfaces as the typed ErrNoVA, distinct from physical exhaustion.
func TestLazyVAQuotaError(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 1
	cfg.MemBytes = 4 << 20
	cfg.PhysPages = 256
	m := machine.New(cfg)
	if err := m.Phys().SetVAQuota(512); err != nil { // half the 1024-page span
		t.Fatal(err)
	}
	a, err := New(m, Params{LazySpans: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Alloc(m.CPU(0), 64)
	if !errors.Is(err, ErrNoVA) {
		t.Fatalf("err = %v, want ErrNoVA", err)
	}
}
