package core

import (
	"fmt"
	"io"
)

// Dump writes a human-readable snapshot of every layer to w: per-class
// cache occupancy, global-pool contents, page-pool occupancy histograms,
// and the vmblk layer's span map. Like CheckConsistency, it must only be
// called on a quiescent allocator; it takes no locks and charges nothing.
func (a *Allocator) Dump(w io.Writer) {
	fmt.Fprintf(w, "kmem allocator: %d CPUs, %d size classes, page %d bytes, vmblk %d bytes\n",
		len(a.percpu), len(a.classes), a.m.Config().PageBytes, uint64(1)<<a.vmblkShift)

	for cls := range a.classes {
		cs := &a.classes[cls]
		fmt.Fprintf(w, "\nclass %d: size %d, target %d, gbltarget %d",
			cls, cs.size, cs.ctl.curTarget(), cs.ctl.curGblTarget())
		if cs.ctl.enabled {
			fmt.Fprintf(w, " (adaptive; initial %d/%d, %d grows, %d shrinks)",
				cs.target, cs.gbltarget,
				cs.ctl.grows.Load()+cs.ctl.gblGrows.Load(),
				cs.ctl.shrinks.Load()+cs.ctl.gblShrinks.Load())
		}
		fmt.Fprintln(w)
		for cpu := range a.percpu {
			pc := &a.percpu[cpu][cls]
			if pc.ev[EvAlloc] == 0 && pc.held() == 0 {
				continue
			}
			fmt.Fprintf(w, "  cpu %d: main %d + aux %d cached; %d allocs, %d frees, %d refills, %d spills\n",
				cpu, pc.main.Len(), pc.aux.Len(),
				pc.ev[EvAlloc], pc.ev[EvFree], pc.ev[EvCPURefill], pc.ev[EvCPUSpill])
		}
		for _, g := range cs.globals {
			label := "global"
			if a.nodes > 1 {
				label = fmt.Sprintf("global[node %d]", g.node)
			}
			fmt.Fprintf(w, "  %s: %d full lists + %d in bucket; %d gets (%d refills), %d puts (%d spills)",
				label, len(g.lists), g.bucket.Len(),
				g.ev[EvGlobalGet], g.ev[EvGlobalRefill], g.ev[EvGlobalPut], g.ev[EvGlobalSpill])
			if g.ev[EvRemoteFree]+g.ev[EvNodeSteal] > 0 {
				fmt.Fprintf(w, "; %d remote frees, %d stolen", g.ev[EvRemoteFree], g.ev[EvNodeSteal])
			}
			fmt.Fprintln(w)
		}

		var carved, released uint64
		blocksPerPage := cs.pages[0].blocksPerPage
		for _, p := range cs.pages {
			carved += p.ev[EvPageCarve]
			released += p.ev[EvPageFree]
		}
		fmt.Fprintf(w, "  pages: %d carved, %d released; split-page occupancy:", carved, released)
		// Histogram of free counts over split pages.
		counts := map[int]int{}
		for _, vb := range a.vm.dope {
			if vb == nil {
				continue
			}
			for i := vb.dataStart(); i < vb.end(); i++ {
				pd := &vb.pds[i-vb.firstPage]
				if pd.state == pdSplit && int(pd.class) == cls {
					counts[int(pd.nFree)]++
				}
			}
		}
		if len(counts) == 0 {
			fmt.Fprintf(w, " none\n")
		} else {
			fmt.Fprintln(w)
			for free := 0; free <= blocksPerPage; free++ {
				if n := counts[free]; n > 0 {
					fmt.Fprintf(w, "    %4d pages with %d/%d blocks free\n", n, free, blocksPerPage)
				}
			}
		}
	}

	fmt.Fprintf(w, "\nvmblk layer: %d vmblks, %d span allocs, %d span frees, %d large allocs\n",
		a.vm.ev[EvVmblkCreate], a.vm.ev[EvSpanAlloc], a.vm.ev[EvSpanFree], a.vm.ev[EvLargeAlloc])
	for idx, vb := range a.vm.dope {
		if vb == nil {
			continue
		}
		if a.nodes > 1 {
			fmt.Fprintf(w, "  vmblk %d @ %#x: node %d, %d header pages; map:", idx, vb.base, vb.home, vb.headerPages)
		} else {
			fmt.Fprintf(w, "  vmblk %d @ %#x: %d header pages; map:", idx, vb.base, vb.headerPages)
		}
		i := vb.dataStart()
		for i < vb.end() {
			pd := &vb.pds[i-vb.firstPage]
			switch pd.state {
			case pdFreeHead:
				n := int32(pd.spanPages)
				fmt.Fprintf(w, " free[%d]", n)
				i += n
			case pdAllocHead:
				n := int32(pd.spanPages)
				fmt.Fprintf(w, " alloc[%d]", n)
				i += n
			case pdSplit:
				run := int32(0)
				for i+run < vb.end() && vb.pds[i+run-vb.firstPage].state == pdSplit {
					run++
				}
				fmt.Fprintf(w, " split[%d]", run)
				i += run
			default:
				fmt.Fprintf(w, " %s[1]", pdStateName(pd.state))
				i++
			}
		}
		fmt.Fprintln(w)
	}
	ph := a.m.Phys().Stats()
	fmt.Fprintf(w, "physical: %d/%d pages mapped (high water %d), %d map failures, %d reclaims\n",
		ph.Mapped, ph.Capacity, ph.HighWater, ph.Failures, a.reclaims.Load())
}
