package core

// Planted-bug identifiers for the torture harness's mutation self-check.
// A correctness harness is only worth trusting if it demonstrably fails
// when the allocator is broken, so under the torturecheck build tag two
// historically-plausible bugs can be armed at runtime (see
// torturebug_on.go); in normal builds the hooks are constant-false
// branches the compiler deletes (torturebug_off.go).
const (
	// TortureBugSkipShardFlush makes DrainCPU drop its flush of the
	// staged remote-free shards: blocks parked for other nodes never
	// reach their home pools, so a drain leaks them and a fully-freed
	// heap never returns to its header-pages-only footprint.
	TortureBugSkipShardFlush = iota
	// TortureBugDropRightMerge makes freePagesLocked skip the rightward
	// boundary-tag coalesce, leaving adjacent free spans that the
	// consistency audit's coalescing invariant rejects.
	TortureBugDropRightMerge
	// TortureBugLFStackABA strips the lock-free global stack's ABA tag:
	// a contended pop (one whose CAS commit had to retry) installs the
	// stale next snapshot from before the retry, dropping the list
	// beneath the top — the lost update the tag/epoch scheme exists to
	// prevent. The leaked blocks keep their pages mapped forever, which
	// the torture end-audit's leak floor detects after a full drain.
	TortureBugLFStackABA

	numTortureBugs
)
