package core

import (
	"sync"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// TestShardStagingAndFlush walks the sharded remote-free path end to
// end: remote frees stage in the per-node shard under the IntrLock
// alone, the shard flushes to its home pool in one batched putList on
// reaching target, and the home memo answers repeat lookups.
func TestShardStagingAndFlush(t *testing.T) {
	a, m := numaAllocator(t, 4, 2, 1024, Params{RadixSort: true})
	c0, c2 := m.CPU(0), m.CPU(2)
	cls := a.classFor(64)
	target := a.Target(cls)

	var bs []arena.Addr
	for i := 0; i < target; i++ {
		b, err := a.Alloc(c0, 64)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	// Refills pre-stock the home pool; the flush assertions below are on
	// the deltas.
	held0 := a.classes[cls].globals[0].blocksHeld(c0)
	held1 := a.classes[cls].globals[1].blocksHeld(c0)

	// One short of target: everything stays staged, nothing reaches the
	// home pool, and main/aux stay empty (remote blocks never enter the
	// classic cache halves).
	for _, b := range bs[:target-1] {
		a.Free(c2, b, 64)
	}
	pc := &a.percpu[2][cls]
	if got := pc.remote[0].Len(); got != target-1 {
		t.Fatalf("shard holds %d blocks, want %d staged", got, target-1)
	}
	if !pc.main.Empty() || !pc.aux.Empty() {
		t.Fatal("remote frees leaked into main/aux")
	}
	st := a.Stats(c0).Classes[cls]
	if st.ShardFlushes != 0 || st.RemotePuts != 0 {
		t.Fatalf("premature flush: %d flushes, %d remote puts", st.ShardFlushes, st.RemotePuts)
	}
	checkOK(t, a)

	// The target-th free flushes the whole shard home in one putList.
	a.Free(c2, bs[target-1], 64)
	if got := pc.remote[0].Len(); got != 0 {
		t.Fatalf("shard holds %d blocks after flush", got)
	}
	st = a.Stats(c0).Classes[cls]
	if st.ShardFlushes != 1 {
		t.Fatalf("ShardFlushes = %d, want 1", st.ShardFlushes)
	}
	if st.RemotePuts != 1 {
		t.Fatalf("RemotePuts = %d, want exactly one batched trip", st.RemotePuts)
	}
	if st.RemoteFrees != uint64(target) {
		t.Fatalf("RemoteFrees = %d, want %d blocks carried", st.RemoteFrees, target)
	}
	// All frees after the first hit the 1-entry memo (same vmblk).
	if st.HomeMemoHits != uint64(target-1) {
		t.Fatalf("HomeMemoHits = %d, want %d", st.HomeMemoHits, target-1)
	}
	// Home-node invariant: the blocks are back in node 0's pool.
	if n := a.classes[cls].globals[0].blocksHeld(c0); n != held0+target {
		t.Fatalf("node 0 pool holds %d blocks, want %d", n, held0+target)
	}
	if n := a.classes[cls].globals[1].blocksHeld(c0); n != held1 {
		t.Fatalf("node 1 pool holds %d blocks, want %d", n, held1)
	}
	checkOK(t, a)
	a.DrainAll(c0)
	checkOK(t, a)
}

// TestShardBatchingReducesRemotePuts is the tentpole's acceptance
// criterion: at 8 CPUs / 4 nodes with all-to-all producer/consumer
// handoff, the shards must cut remote putList lock acquisitions by at
// least 4x versus per-spill routing.
func TestShardBatchingReducesRemotePuts(t *testing.T) {
	run := func(p Params) uint64 {
		a, m := numaAllocator(t, 8, 4, 2048, p)
		ck, err := a.GetCookie(128)
		if err != nil {
			t.Fatal(err)
		}
		// Each CPU allocates a burst well past its cache capacity; three
		// quarters of each burst is freed by the allocator's same-node
		// partner (local frees) and a quarter round-robin across all 8
		// CPUs. Every freeing CPU therefore sees a stream of blocks with
		// occasional remote homes scattered across all four nodes —
		// the worst case for per-spill routing, where every spilled list
		// fragments into a putList trip per distinct home node, while the
		// shards coalesce each node's remote blocks into whole batches.
		for r := 0; r < 40; r++ {
			free := make([][]arena.Addr, 8)
			// k outer, cpu inner: each freer's list interleaves blocks
			// from many producers, so consecutive frees carry different
			// home nodes (grouping by producer would let per-spill routing
			// see nearly single-home spills and dodge the fragmentation).
			for k := 0; k < 40; k++ {
				for cpu := 0; cpu < 8; cpu++ {
					b, err := a.AllocCookie(m.CPU(cpu), ck)
					if err != nil {
						t.Fatal(err)
					}
					freer := cpu ^ 1 // same-node partner
					if k%4 == 3 {
						freer = (cpu + k) % 8 // all-to-all
					}
					free[freer] = append(free[freer], b)
				}
			}
			for cpu := 0; cpu < 8; cpu++ {
				c := m.CPU(cpu)
				for _, b := range free[cpu] {
					a.FreeCookie(c, b, ck)
				}
			}
		}
		st := a.Stats(m.CPU(0)).Classes[a.classFor(128)]
		a.DrainAll(m.CPU(0))
		checkOK(t, a)
		return st.RemotePuts
	}

	routed := run(Params{RadixSort: true, DisableRemoteShards: true})
	sharded := run(Params{RadixSort: true})
	if routed == 0 || sharded == 0 {
		t.Fatalf("degenerate run: routed=%d sharded=%d remote puts", routed, sharded)
	}
	t.Logf("remote putList trips: per-spill routing=%d sharded=%d (%.1fx reduction)",
		routed, sharded, float64(routed)/float64(sharded))
	if sharded*4 > routed {
		t.Errorf("remote putList trips: sharded=%d routed=%d — want at least 4x reduction (got %.1fx)",
			sharded, routed, float64(routed)/float64(sharded))
	}
}

// TestShardPressureClampsFlushThreshold: under PressureLow the shard
// flush threshold follows effTarget, so staged remote blocks reach
// their home pools in half the time.
func TestShardPressureClampsFlushThreshold(t *testing.T) {
	var ec EventCounter
	a, m := numaAllocator(t, 4, 2, 1024, Params{
		RadixSort: true,
		Hook:      ec.Hook(),
		// LowPages just under capacity: the pool is under PressureLow from
		// the first vmblk map onward.
		Pressure: &PressureConfig{LowPages: 1020, MinPages: 1},
	})
	c0, c2 := m.CPU(0), m.CPU(2)
	cls := a.classFor(64)
	target := a.Target(cls)

	var bs []arena.Addr
	for i := 0; i < target; i++ {
		b, err := a.Alloc(c0, 64)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	if a.Pressure() != PressureLow {
		t.Fatalf("pressure level %v, want PressureLow", a.Pressure())
	}
	clamped := a.effTarget(target)
	if clamped >= target {
		t.Fatalf("effTarget %d not clamped below target %d", clamped, target)
	}
	for _, b := range bs[:clamped] {
		a.Free(c2, b, 64)
	}
	if got := ec.Count(EvShardFlush); got != uint64(clamped) {
		t.Fatalf("flushed %d blocks after %d clamped-threshold frees, want %d",
			got, clamped, clamped)
	}
	for _, b := range bs[clamped:] {
		a.Free(c2, b, 64)
	}
	a.DrainAll(c0)
	checkOK(t, a)
}

// TestShardDrainCPU: DrainCPU must flush partially-filled shards
// straight to their home pools, leaving nothing staged.
func TestShardDrainCPU(t *testing.T) {
	a, m := numaAllocator(t, 4, 2, 1024, Params{RadixSort: true})
	c0, c2 := m.CPU(0), m.CPU(2)
	cls := a.classFor(64)
	target := a.Target(cls)

	var bs []arena.Addr
	for i := 0; i < target-1; i++ {
		b, err := a.Alloc(c0, 64)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	for _, b := range bs {
		a.Free(c2, b, 64)
	}
	pc := &a.percpu[2][cls]
	if pc.remote[0].Empty() {
		t.Fatal("nothing staged before drain")
	}
	held0 := a.classes[cls].globals[0].blocksHeld(c0)
	a.DrainCPU(c2, 2)
	if !pc.remote[0].Empty() {
		t.Fatalf("shard still holds %d blocks after DrainCPU", pc.remote[0].Len())
	}
	if n := a.classes[cls].globals[0].blocksHeld(c0); n != held0+target-1 {
		t.Fatalf("node 0 pool holds %d blocks after drain, want %d", n, held0+target-1)
	}
	checkOK(t, a)
	a.DrainAll(c0)
	checkOK(t, a)
}

// TestShardReclaimFindsStagedBlocks: blocks staged in remote shards must
// be reachable by the low-memory reclaim path — a starving allocation
// must be able to get the last blocks even when they sit in another
// CPU's shard.
func TestShardReclaimFindsStagedBlocks(t *testing.T) {
	// Small physical memory: one vmblk's pages, nearly all consumed.
	a, m := numaAllocator(t, 4, 2, 48, Params{RadixSort: true})
	c0, c2 := m.CPU(0), m.CPU(2)

	// Consume pages from node 0 until the machine is nearly dry.
	var live []arena.Addr
	for {
		b, err := a.Alloc(c0, 4096)
		if err != nil {
			break
		}
		live = append(live, b)
	}
	if len(live) < 4 {
		t.Fatalf("only %d pages allocated before exhaustion", len(live))
	}
	// Free one block from CPU 2: it stages in the shard (target for 4096
	// is 2, so one free stays staged).
	a.Free(c2, live[len(live)-1], 4096)
	live = live[:len(live)-1]

	// A node-0 allocation with no free pages anywhere must reclaim —
	// which flushes CPU 2's shard home, frees the page, and lets the
	// retry carve it again — rather than fail.
	b, err := a.Alloc(c0, 4096)
	if err != nil {
		t.Fatalf("alloc after staged free failed: %v (reclaim did not reach the shard)", err)
	}
	a.Free(c0, b, 4096)
	for _, x := range live {
		a.Free(c0, x, 4096)
	}
	a.DrainAll(c0)
	checkOK(t, a)
}

// TestNativeShardRace drives the full sharded cross-node path under the
// race detector: producers on node 0, consumers on node 1, while a
// fifth CPU concurrently drains every CPU's caches (the IPI-like remote
// drain) and snapshots Stats. Quiesce, then audit.
func TestNativeShardRace(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.Native
	cfg.NumCPUs = 6
	cfg.Nodes = 2
	cfg.MemBytes = 32 << 20
	cfg.PhysPages = 4096
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := a.GetCookie(128)
	if err != nil {
		t.Fatal(err)
	}

	const perProducer = 4000
	chans := [2]chan arena.Addr{
		make(chan arena.Addr, 256),
		make(chan arena.Addr, 256),
	}
	var work sync.WaitGroup
	for p := 0; p < 2; p++ { // CPUs 0,1 = node 0
		work.Add(1)
		go func(c *machine.CPU, out chan<- arena.Addr) {
			defer work.Done()
			defer close(out)
			for i := 0; i < perProducer; i++ {
				b, err := a.AllocCookie(c, ck)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				out <- b
			}
		}(m.CPU(p), chans[p])
	}
	for q := 0; q < 2; q++ { // CPUs 3,4 = node 1
		work.Add(1)
		go func(c *machine.CPU, in <-chan arena.Addr) {
			defer work.Done()
			for b := range in {
				a.FreeCookie(c, b, ck)
			}
		}(m.CPU(3+q), chans[q])
	}
	done := make(chan struct{})
	drained := make(chan struct{})
	go func() { // CPU 5 = node 1: concurrent drains and snapshots
		defer close(drained)
		c := m.CPU(5)
		for {
			select {
			case <-done:
				return
			default:
			}
			for cpu := 0; cpu < 6; cpu++ {
				a.DrainCPU(c, cpu)
			}
			_ = a.Stats(c)
		}
	}()
	work.Wait()
	close(done)
	<-drained

	c := m.CPU(0)
	st := a.Stats(c).Classes[a.classFor(128)]
	if st.RemoteFrees == 0 {
		t.Fatal("no remote frees in a cross-node producer/consumer run")
	}
	a.DrainAll(c)
	checkOK(t, a)
}
