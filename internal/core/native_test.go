package core

import (
	"math/rand"
	"sync"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// scaledOps bounds a Native-mode stress loop: the full count normally,
// a tenth of it under -short. Every concurrent loop in these tests must
// be op-bounded — never wall-clock-bounded — so a slow host does the
// same work as a fast one and the race detector's schedule coverage is
// reproducible per run length.
func scaledOps(n int) int {
	if testing.Short() {
		if n >= 10 {
			return n / 10
		}
		return n
	}
	return n
}

// nativeAllocator builds an allocator in Native mode: real goroutines,
// real mutexes, no cost model. These tests are what the race detector
// sees.
func nativeAllocator(t *testing.T, ncpu int, physPages int64) (*Allocator, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.Native
	cfg.NumCPUs = ncpu
	cfg.MemBytes = 32 << 20
	cfg.PhysPages = physPages
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true})
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func TestNativeConcurrentSameCPUDiscipline(t *testing.T) {
	// One goroutine per CPU, each hammering its own handle.
	a, m := nativeAllocator(t, 8, 4096)
	var wg sync.WaitGroup
	for i := 0; i < m.NumCPUs(); i++ {
		wg.Add(1)
		go func(c *machine.CPU) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c.ID())))
			var held []arena.Addr
			var sizes []uint64
			for op := 0; op < scaledOps(20000); op++ {
				if len(held) == 0 || (rng.Intn(2) == 0 && len(held) < 64) {
					sz := uint64(16 << rng.Intn(8))
					b, err := a.Alloc(c, sz)
					if err != nil {
						t.Errorf("alloc: %v", err)
						return
					}
					held = append(held, b)
					sizes = append(sizes, sz)
				} else {
					i := rng.Intn(len(held))
					a.Free(c, held[i], sizes[i])
					held[i] = held[len(held)-1]
					sizes[i] = sizes[len(sizes)-1]
					held = held[:len(held)-1]
					sizes = sizes[:len(sizes)-1]
				}
			}
			for i, b := range held {
				a.Free(c, b, sizes[i])
			}
		}(m.CPU(i))
	}
	wg.Wait()
	a.DrainAll(m.CPU(0))
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestNativeProducerConsumer(t *testing.T) {
	// Blocks allocated on one CPU, freed on another, through a channel —
	// the traffic pattern the global layer exists for.
	a, m := nativeAllocator(t, 4, 4096)
	ck, err := a.GetCookie(128)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan arena.Addr, 256)
	perWorker := scaledOps(30000)
	var wg sync.WaitGroup

	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(c *machine.CPU) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				b, err := a.AllocCookie(c, ck)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				m.Mem().Store64(b+8, uint64(b))
				ch <- b
			}
		}(m.CPU(p))
	}
	for p := 2; p < 4; p++ {
		wg.Add(1)
		go func(c *machine.CPU) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				b := <-ch
				if got := m.Mem().Load64(b + 8); got != uint64(b) {
					t.Errorf("block %#x corrupted: %#x", b, got)
					return
				}
				a.FreeCookie(c, b, ck)
			}
		}(m.CPU(p))
	}
	wg.Wait()
	a.DrainAll(m.CPU(0))
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestNativeLowMemoryContention(t *testing.T) {
	// Tight physical memory with many CPUs: reclaim runs concurrently
	// with allocation on other CPUs.
	a, m := nativeAllocator(t, 8, 160)
	var wg sync.WaitGroup
	for i := 0; i < m.NumCPUs(); i++ {
		wg.Add(1)
		go func(c *machine.CPU) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(42 + c.ID())))
			var held []arena.Addr
			for op := 0; op < scaledOps(4000); op++ {
				if rng.Intn(3) != 0 && len(held) < 32 {
					b, err := a.Alloc(c, 2048)
					if err == nil {
						held = append(held, b)
					}
					// ErrNoMemory is expected here; what matters is that
					// nothing corrupts and frees still succeed.
				} else if len(held) > 0 {
					a.Free(c, held[len(held)-1], 2048)
					held = held[:len(held)-1]
				}
			}
			for _, b := range held {
				a.Free(c, b, 2048)
			}
		}(m.CPU(i))
	}
	wg.Wait()
	a.DrainAll(m.CPU(0))
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestNativeLargeAndSmallMix(t *testing.T) {
	a, m := nativeAllocator(t, 4, 4096)
	var wg sync.WaitGroup
	for i := 0; i < m.NumCPUs(); i++ {
		wg.Add(1)
		go func(c *machine.CPU) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7 * (c.ID() + 1))))
			for op := 0; op < scaledOps(3000); op++ {
				sz := uint64(1) << (4 + rng.Intn(12)) // 16B .. 32KB
				b, err := a.Alloc(c, sz)
				if err != nil {
					t.Errorf("alloc %d: %v", sz, err)
					return
				}
				a.Free(c, b, sz)
			}
		}(m.CPU(i))
	}
	wg.Wait()
	a.DrainAll(m.CPU(0))
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestNativeStatsDuringTraffic(t *testing.T) {
	// Stats snapshots must be safe while other CPUs allocate.
	a, m := nativeAllocator(t, 4, 4096)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(c *machine.CPU) {
			defer wg.Done()
			// Op-bounded even though stop normally ends the loop first: if
			// the snapshot loop below ever deadlocked, the workers must not
			// spin forever and mask it as a timeout of this goroutine.
			for op := 0; op < scaledOps(1_000_000); op++ {
				select {
				case <-stop:
					return
				default:
				}
				b, err := a.Alloc(c, 64)
				if err == nil {
					a.Free(c, b, 64)
				}
			}
		}(m.CPU(i))
	}
	c0 := m.CPU(0)
	for i := 0; i < 200; i++ {
		st := a.Stats(c0)
		if len(st.Classes) != len(DefaultClasses) {
			t.Fatalf("bad snapshot: %d classes", len(st.Classes))
		}
	}
	close(stop)
	wg.Wait()
}
