package core

import (
	"errors"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/blocklist"
	"kmem/internal/machine"
)

// pressureAllocator builds a Sim allocator with a tiny physical pool and
// explicit watermarks, sized so that 4096-byte allocations (one block
// per page — no partially-free pages muddying the accounting) walk the
// pool through ok → low → critical deterministically.
func pressureAllocator(t *testing.T, physPages int64, pc *PressureConfig, wc *WaitConfig) (*Allocator, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 2
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = physPages
	m := machine.New(cfg)
	a, err := New(m, Params{
		RadixSort:    true,
		TargetFor:    func(uint32) int { return 2 },
		GblTargetFor: func(uint32) int { return 1 },
		Pressure:     pc,
		Wait:         wc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func TestPressureLevelTransitionsAndEvents(t *testing.T) {
	// Capacity 24: one vmblk header takes 8 pages, leaving 16 data pages.
	var ec EventCounter
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 2
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 24
	m := machine.New(cfg)
	a, err := New(m, Params{
		RadixSort:    true,
		TargetFor:    func(uint32) int { return 2 },
		GblTargetFor: func(uint32) int { return 1 },
		Pressure:     &PressureConfig{LowPages: 8, MinPages: 4},
		Hook:         ec.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	if a.Pressure() != PressureOK {
		t.Fatalf("initial pressure %v", a.Pressure())
	}

	var held []arena.Addr
	alloc := func() {
		t.Helper()
		b, err := a.Alloc(c, 4096)
		if err != nil {
			t.Fatalf("alloc #%d: %v", len(held), err)
		}
		held = append(held, b)
	}
	// Header map (8) happens on the first allocation; drive mapped pages
	// up until free crosses the low then the min watermark.
	for a.Pressure() == PressureOK {
		alloc()
	}
	if a.Pressure() != PressureLow {
		t.Fatalf("pressure after crossing low = %v", a.Pressure())
	}
	free := a.m.Phys().Available()
	if free > 8 || free <= 4 {
		t.Fatalf("free pages %d outside (4, 8] at PressureLow", free)
	}
	for a.Pressure() == PressureLow {
		alloc()
	}
	if a.Pressure() != PressureCritical {
		t.Fatalf("pressure after crossing min = %v", a.Pressure())
	}
	if ec.Count(EvPressure) < 2 {
		t.Fatalf("EvPressure fired %d times, want >= 2", ec.Count(EvPressure))
	}

	// Free everything: pages unmap and the level returns to ok.
	for _, b := range held {
		a.Free(c, b, 4096)
	}
	a.DrainAll(c)
	if a.Pressure() != PressureOK {
		t.Fatalf("pressure after freeing all = %v (free=%d)", a.Pressure(), a.m.Phys().Available())
	}
	st := a.Stats(c)
	if st.Pressure.Level != PressureOK || st.Pressure.Transitions < 3 {
		t.Fatalf("pressure stats = %+v", st.Pressure)
	}
	if st.Phys.LowWater != 8 || st.Phys.MinWater != 4 {
		t.Fatalf("phys watermarks not plumbed: %+v", st.Phys)
	}
	checkOK(t, a)
}

func TestEffTargetClampsUnderPressure(t *testing.T) {
	a, _ := pressureAllocator(t, 1024, &PressureConfig{LowPages: 8, MinPages: 4}, nil)
	if got := a.effTarget(10); got != 10 {
		t.Fatalf("effTarget(10) at ok = %d", got)
	}
	a.pressure.Store(int32(PressureLow))
	if got := a.effTarget(10); got != 5 {
		t.Fatalf("effTarget(10) at low = %d", got)
	}
	if got := a.effTarget(1); got != 1 {
		t.Fatalf("effTarget(1) at low = %d", got)
	}
	a.pressure.Store(int32(PressureCritical))
	if got := a.effTarget(3); got != 1 {
		t.Fatalf("effTarget(3) at critical = %d", got)
	}
}

func TestGlobalPoolDropsSurplusUnderPressure(t *testing.T) {
	// Under PressureLow the global layer keeps at most gbltarget lists;
	// the normal path keeps up to 2*gbltarget. Use class 16 (target 2,
	// gbltarget 1 in this fixture) and feed the pool lists directly. No
	// PressureConfig: the level is set by hand so real watermark
	// transitions cannot overwrite it mid-test.
	a, m := pressureAllocator(t, 1024, nil, nil)
	c := m.CPU(0)
	g := a.classes[0].globals[0] // 16-byte class

	alloc8 := func() []arena.Addr {
		out := make([]arena.Addr, 8)
		for i := range out {
			b, err := a.Alloc(c, 16)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = b
		}
		return out
	}
	feed := func(bs []arena.Addr) {
		for _, b := range bs {
			g.putList(c, singleton(c, a, b))
		}
	}

	// Normal operation: 8 single-block puts regroup into 2-block lists;
	// the pool spills down only on exceeding 2*gbltarget = 2 lists, so it
	// retains 2 lists (4 blocks).
	feed(alloc8())
	if n := g.blocksHeld(c); n != 4 {
		t.Fatalf("pool holds %d blocks, want 4 (2*gbltarget lists)", n)
	}
	// Empty the pool without refilling (steals take only cached blocks),
	// then refeed under pressure: retention halves to gbltarget = 1 list.
	var stolen []arena.Addr
	for {
		l := g.stealList(c)
		if l.Empty() {
			break
		}
		for !l.Empty() {
			stolen = append(stolen, l.Pop(c, a.mem))
		}
	}
	a.pressure.Store(int32(PressureLow))
	feed(alloc8())
	if n := g.blocksHeld(c); n > 2 {
		t.Fatalf("pool holds %d blocks under pressure, capacity is gbltarget = 2", n)
	}
	a.pressure.Store(0)
	for _, b := range stolen {
		a.Free(c, b, 16)
	}
}

func TestCriticalUsesIncrementalReclaim(t *testing.T) {
	// Capacity 20 → 12 data pages after the header. Allocating 4096-byte
	// blocks to exhaustion crosses into PressureCritical before the first
	// refill failure, so every reclaim retry must take the incremental
	// path: ReclaimSteps grows, stop-the-world Reclaims stays 0, and
	// every last page is still allocated (design goal 5).
	a, m := pressureAllocator(t, 20, &PressureConfig{LowPages: 8, MinPages: 6}, nil)
	c0, c1 := m.CPU(0), m.CPU(1)

	var held []arena.Addr
	for {
		b, err := a.Alloc(c1, 4096)
		if err != nil {
			if !errors.Is(err, ErrNoMemory) {
				t.Fatalf("exhaustion error = %v, want ErrNoMemory", err)
			}
			break
		}
		held = append(held, b)
	}
	if len(held) != 12 {
		t.Fatalf("allocated %d of 12 data pages", len(held))
	}
	if a.Pressure() != PressureCritical {
		t.Fatalf("pressure at exhaustion = %v", a.Pressure())
	}
	if got := a.Reclaims(); got != 0 {
		t.Fatalf("stop-the-world reclaims = %d under critical pressure", got)
	}
	if got := a.ReclaimStepsDone(); got == 0 {
		t.Fatal("no incremental reclaim steps ran")
	}

	// Free two blocks on CPU 1: they lodge in its per-CPU cache. CPU 0's
	// next allocation finds the global and page layers dry and must
	// recover the cached blocks via incremental reclaim steps — "any
	// given CPU must be able to allocate the last remaining buffer".
	a.Free(c1, held[len(held)-1], 4096)
	a.Free(c1, held[len(held)-2], 4096)
	held = held[:len(held)-2]
	stepsBefore := a.ReclaimStepsDone()
	b, err := a.Alloc(c0, 4096)
	if err != nil {
		t.Fatalf("CPU 0 could not recover CPU 1's cached block: %v", err)
	}
	held = append(held, b)
	if a.ReclaimStepsDone() == stepsBefore {
		t.Fatal("recovery did not use incremental reclaim")
	}
	if got := a.Reclaims(); got != 0 {
		t.Fatalf("stop-the-world reclaims = %d, want 0", got)
	}

	for _, b := range held {
		a.Free(c0, b, 4096)
	}
	a.DrainAll(c0)
	checkOK(t, a)
	if a.Pressure() != PressureOK {
		t.Fatalf("pressure after release = %v", a.Pressure())
	}
	if mapped := m.Phys().Mapped(); mapped != 8 {
		t.Fatalf("mapped = %d after full release, want 8 header pages", mapped)
	}
}

func TestAllocWaitSimBoundedFailure(t *testing.T) {
	// With the pool exhausted and no other CPU freeing, AllocWait must
	// charge its bounded exponential backoff deterministically and then
	// fail with the typed error.
	a, m := pressureAllocator(t, 20, &PressureConfig{LowPages: 8, MinPages: 6},
		&WaitConfig{MaxWaits: 3, BaseBackoffCycles: 1000, MaxBackoffCycles: 4000})
	c := m.CPU(0)
	var held []arena.Addr
	for {
		b, err := a.Alloc(c, 4096)
		if err != nil {
			break
		}
		held = append(held, b)
	}

	start := c.Now()
	_, err := a.AllocWait(c, 4096)
	if !errors.Is(err, ErrNoMemory) {
		t.Fatalf("AllocWait on exhausted pool = %v, want ErrNoMemory", err)
	}
	// Three waits: 1000 + 2000 + 4000 cycles of idle backoff at minimum.
	if delta := c.Now() - start; delta < 7000 {
		t.Fatalf("AllocWait charged only %d cycles of backoff", delta)
	}
	st := a.Stats(c)
	if st.Pressure.Waits != 3 {
		t.Fatalf("waits = %d, want 3", st.Pressure.Waits)
	}

	// After a free the same call succeeds without exhausting its budget.
	a.Free(c, held[len(held)-1], 4096)
	held = held[:len(held)-1]
	b, err := a.AllocWait(c, 4096)
	if err != nil {
		t.Fatalf("AllocWait after free: %v", err)
	}
	held = append(held, b)

	for _, b := range held {
		a.Free(c, b, 4096)
	}
	a.DrainAll(c)
	checkOK(t, a)
}

func TestAllocWaitBadSize(t *testing.T) {
	a, _ := pressureAllocator(t, 1024, nil, nil)
	if _, err := a.AllocWait(a.m.CPU(0), 0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("AllocWait(0) = %v, want ErrBadSize", err)
	}
}

// singleton builds a one-block list.
func singleton(c *machine.CPU, a *Allocator, b arena.Addr) (l blocklist.List) {
	l.Push(c, a.mem, b)
	return l
}
