// Package core implements the paper's four-layer kernel memory allocator:
// a per-CPU caching layer over a global layer over a coalesce-to-page
// layer over a coalesce-to-vmblk layer, plus the cookie-based fast
// interface. See DESIGN.md for the layer-by-layer description.
package core

import (
	"fmt"
	"time"

	"kmem/internal/faultpoint"
	"kmem/internal/harden"
)

// DefaultClasses is the paper's "default set of nine power-of-two block
// sizes (16, 32, 64, 128, 256, 512, 1024, 2048, and 4096 bytes)".
var DefaultClasses = []uint32{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Params configures an Allocator.
type Params struct {
	// Classes lists the small-block sizes, ascending; each must be a
	// power of two, at least 16 (room for a link word), at most
	// PageBytes. Nil selects DefaultClasses.
	Classes []uint32

	// VmblkShift is log2 of the vmblk size. The paper's implementation
	// manages "large vmblks of virtual memory (4 megabytes in size for
	// the current implementation)"; 0 selects 22 (4 MB) — or, with
	// LazySpans on, the largest shift up to 26 (64 MB) whose span still
	// fits the arena, since over-reserved virtual spans want to be big.
	VmblkShift uint

	// LazySpans selects the virtual-span backing model for the vmblk
	// layer: each vmblk reserves its whole span of address space at
	// creation (VA only — no physical frames), pages are committed on
	// demand the first time a span containing them is carved
	// (EvPagesCommit), and freed spans keep their backing until an
	// explicit decommit pass (reclaim, incremental reclaim steps, Trim,
	// or commit-failure recovery) scrubs and releases it while leaving
	// the VA span and its boundary tags intact. False — the default —
	// keeps the eager backing of the paper's implementation: physical
	// memory is mapped at span allocation and unmapped at span free,
	// cycle-for-cycle identical to the pre-span code
	// (TestLazySpansOffCycleIdentity).
	LazySpans bool

	// SpanAgeTicks ages free lazy spans before their backing is
	// stripped: a span must have been free for at least this many
	// reclaim ticks (one tick per voluntary decommit pass — Trim,
	// incremental reclaim steps) before the pass releases its resident
	// pages, so bursty workloads stop paying the recommit zero-fill for
	// memory they are about to reuse. Paths that need frames to satisfy
	// an allocation — stop-the-world reclaim, DrainAll, and the
	// in-commit decommit-fallback retry — ignore the age. 0, the
	// default, preserves the age-blind decommit behavior exactly.
	// Meaningless without LazySpans.
	SpanAgeTicks uint64

	// TargetFor overrides the per-CPU cache target for a block size.
	// Nil selects DefaultTarget, the paper's heuristic ("ranges from 10
	// for 16-byte blocks to just 2 for 4096-byte blocks").
	TargetFor func(size uint32) int

	// GblTargetFor overrides the global-layer target (in units of
	// target-sized lists) for a block size. Nil selects
	// DefaultGblTarget (15 for small blocks, as in the paper's
	// miss-rate analysis).
	GblTargetFor func(size uint32) int

	// RadixSort selects the paper's radix-sorted page freelists (pages
	// with the fewest free blocks are allocated from first). When
	// false, a FIFO page list is used instead — the A3 ablation.
	RadixSort bool

	// Poison fills freed block payloads with a pattern so that
	// use-after-free shows up in tests.
	Poison bool

	// DebugOwnership panics when two goroutines drive the same CPU
	// handle concurrently — the misuse the per-CPU design forbids, which
	// Native mode's internal locking would otherwise hide.
	DebugOwnership bool

	// DisableSplitFreelist replaces the per-CPU split (main/aux)
	// freelist with a single freelist that exchanges blocks with the
	// global layer one at a time — the A2 ablation. The paper's design
	// is the default (false).
	DisableSplitFreelist bool

	// DisableRemoteShards turns off the per-CPU remote-free shards on
	// multi-node machines, restoring the per-spill routing of the first
	// NUMA implementation: every spilled list is partitioned by home via
	// per-block dope-vector lookups and each partition takes its own
	// putList lock trip. With shards enabled (the default on Nodes > 1)
	// a free whose block is homed on another node stages it in a per-CPU
	// per-class per-node shard under interrupt-disable only, and the
	// shard flushes to its home pool in one batched putList when it
	// reaches target blocks. Single-node machines never build shards, so
	// this flag has no effect there and the classic free path is
	// byte-for-byte unchanged.
	DisableRemoteShards bool

	// Adaptive enables the per-class adaptive target controller: a
	// windowed miss-rate estimator that grows and shrinks target and
	// gbltarget online to hold the observed miss rates near a setpoint
	// (see AdaptiveConfig). Nil keeps the paper's static targets; the
	// fast path is then byte-for-byte unchanged. TargetFor/GblTargetFor
	// still supply each class's initial values.
	Adaptive *AdaptiveConfig

	// Hook, when non-nil, receives every layer-boundary event (refills,
	// spills, page carves, vmblk creates, reclaims, adaptive decisions —
	// see LayerEvent). Hooks fire on slow paths only; a nil Hook adds no
	// work to the alloc/free fast path.
	Hook Hook

	// Pressure enables the memory-pressure model: physmem watermarks,
	// graceful degradation of cache targets under PressureLow, and
	// incremental (per-step) reclaim under PressureCritical. Nil keeps
	// the pre-pressure behavior exactly: no watermarks, full
	// stop-the-world reclaim on exhaustion, cycle-identical slow paths.
	Pressure *PressureConfig

	// Wait configures AllocWait's bounded blocking. Nil selects
	// DefaultWaitConfig when AllocWait is used; the no-sleep Alloc path
	// ignores it entirely.
	Wait *WaitConfig

	// Faults, when non-nil, arms deterministic fault injection at the
	// allocator's exhaustion seams (FaultPhysMap, FaultVmblkCarve,
	// FaultPagePoolRefill). Nil — the default — compiles the checks down
	// to a nil-receiver test on slow paths only.
	Faults *faultpoint.Set

	// Rseq replaces the per-CPU layer's interrupt-disable critical
	// sections with restartable sequences (machine.Rseq): the fast path
	// commits with a single store and is restarted — never blocked — when
	// preemption or a cross-CPU drain lands inside it. The cookie path
	// stays at 13 instructions (the begin/commit pair costs the same two
	// instructions as cli/sti) and saves IntrCycles-CommitCycles per
	// operation; foreign drains (DrainCPU, reclaim, stats assembly) abort
	// in-flight sequences through Rseq.Interfere instead of taking a
	// lock. False — the default — keeps the paper's interrupt-disable
	// protocol, cycle-for-cycle identical to the pre-rseq allocator
	// (TestOptimisticOffCycleIdentity).
	Rseq bool

	// LockFree rebuilds the global layer's per-node block stacks as
	// Treiber-style CAS freelists with an ABA-guarding tag, so getList,
	// putList, the shard-flush path and cross-node steals no longer take
	// the pool spinlock on the common path; the page layer keeps its lock
	// but gains a lock-free stack of parked fully-free pages that lets a
	// refill skip the vmblk span layer entirely. Uncommon paths (bucket
	// regrouping of odd-sized lists, drains, stats) keep the lock. The
	// CAS cost model is Sim-mode only: in Native mode the flag leaves the
	// locked paths in place, since real lock-free publication of the
	// simulator's Go-slice stacks is not what the model measures — rseq
	// is the Native-mode optimistic feature. False — the default — keeps
	// the spin-locked global layer cycle-for-cycle intact.
	LockFree bool

	// Harden, when non-nil, enables the corruption-hardening layer:
	// per-object redzones verified on free and on reclaim audit sweeps,
	// poison-on-free with verify-on-alloc, per-block owner slots (an
	// extension of the dope vector) feeding bounded per-CPU audit
	// rings, and — under the default quarantine policy — containment of
	// detected corruption by pulling the affected page from every
	// freelist while keeping it mapped for post-mortem. Hardened
	// requests map size to the class serving size+Redzone, so usable
	// cookie/small sizes shrink by the redzone width. Nil — the default
	// — keeps every path cycle-identical to the unhardened allocator
	// (TestHardenOffCycleIdentity). Harden supersedes Poison on the
	// class paths: its own poison/verify machinery runs instead.
	Harden *harden.Config

	// Latency arms the per-op latency recorder: every small-block class
	// allocation and free records its elapsed cycles (machine.CPU.Stamp
	// deltas spanning the whole operation, warm hit through reclaim)
	// into per-CPU fixed-bucket log-scale histograms (LatencyHist),
	// merged on demand by Allocator.LatencyStats. Recording is
	// observation-only — it charges no simulated instructions, cycles,
	// or memory traffic — so an armed run schedules byte-identically to
	// an unarmed one (TestLatencyArmedScheduleIdentical); with the flag
	// off (the default) each boundary pays a single nil test. Sim mode
	// yields real cycle deltas; Native-mode stamps are 0, collapsing
	// every sample into the zero bucket while still exercising the
	// recorder's snapshot discipline.
	Latency bool
}

// Names of the fault points compiled into the allocator's exhaustion
// paths. Arm them on Params.Faults to force the corresponding failure.
const (
	// FaultPhysMap fails physmem.Pool.Map with ErrNoPages — a physical
	// frame shortage, possibly mid-allocation after virtual space was
	// already carved.
	FaultPhysMap = "physmem.map"
	// FaultVmblkCarve fails vmblk creation with ErrNoVA — virtual
	// address-space exhaustion.
	FaultVmblkCarve = "vmblk.carve"
	// FaultPagePoolRefill fails the coalesce-to-page layer's page carve —
	// exhaustion seen from the middle of the stack.
	FaultPagePoolRefill = "pagepool.refill"
	// FaultPhysCommit fails physmem.Pool.Commit with ErrNoPages — a frame
	// shortage surfacing at the reserve/commit seam, e.g. an allocation
	// racing a decommit pass that has not yet returned enough frames.
	FaultPhysCommit = "physmem.commit"
)

// PressureConfig sets the free-page watermarks driving the pressure
// model. Zero values select fractions of physical capacity.
type PressureConfig struct {
	// LowPages is the free-page count at or below which the pool is
	// under PressureLow: per-CPU cache targets are halved and the global
	// layer stops retaining its gbltarget surplus. 0 selects capacity/8.
	LowPages int64
	// MinPages is the free-page count at or below which the pool is
	// under PressureCritical: allocation slow paths perform incremental
	// reclaim steps instead of failing into a stop-the-world flush.
	// 0 selects capacity/32 (at least 1).
	MinPages int64
}

func (pc *PressureConfig) watermarks(capacity int64) (low, min int64) {
	low, min = pc.LowPages, pc.MinPages
	if low == 0 {
		low = capacity / 8
	}
	if min == 0 {
		min = capacity / 32
	}
	if min < 1 {
		min = 1
	}
	if low < min {
		low = min
	}
	return low, min
}

// WaitConfig bounds AllocWait's blocking behavior.
type WaitConfig struct {
	// MaxWaits is the number of park/retry rounds before AllocWait gives
	// up with ErrNoMemory (or ErrNoVA). 0 selects 32.
	MaxWaits int
	// BaseBackoffCycles / MaxBackoffCycles bound the exponential backoff
	// charged to the waiting CPU in simulator mode. 0 selects 4096 and
	// 1<<18 respectively.
	BaseBackoffCycles int64
	MaxBackoffCycles  int64
	// BaseBackoff / MaxBackoff bound the real-time exponential backoff in
	// native mode (waiters also wake early on frees and reclaim
	// progress). 0 selects 50µs and 5ms respectively.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultWaitConfig is the WaitConfig used when Params.Wait is nil.
var DefaultWaitConfig = WaitConfig{
	MaxWaits:          32,
	BaseBackoffCycles: 4096,
	MaxBackoffCycles:  1 << 18,
	BaseBackoff:       50 * time.Microsecond,
	MaxBackoff:        5 * time.Millisecond,
}

func (w *WaitConfig) withDefaults() WaitConfig {
	out := DefaultWaitConfig
	if w == nil {
		return out
	}
	if w.MaxWaits > 0 {
		out.MaxWaits = w.MaxWaits
	}
	if w.BaseBackoffCycles > 0 {
		out.BaseBackoffCycles = w.BaseBackoffCycles
	}
	if w.MaxBackoffCycles > 0 {
		out.MaxBackoffCycles = w.MaxBackoffCycles
	}
	if w.BaseBackoff > 0 {
		out.BaseBackoff = w.BaseBackoff
	}
	if w.MaxBackoff > 0 {
		out.MaxBackoff = w.MaxBackoff
	}
	if out.MaxBackoffCycles < out.BaseBackoffCycles {
		out.MaxBackoffCycles = out.BaseBackoffCycles
	}
	if out.MaxBackoff < out.BaseBackoff {
		out.MaxBackoff = out.BaseBackoff
	}
	return out
}

// DefaultTarget is the paper's heuristic limiting the memory tied up in
// per-CPU caches: "This value ranges from 10 for 16-byte blocks to just 2
// for 4096-byte blocks."
func DefaultTarget(size uint32) int {
	t := int(8192 / size)
	if t > 10 {
		t = 10
	}
	if t < 2 {
		t = 2
	}
	return t
}

// DefaultGblTarget is the global-layer capacity parameter in units of
// target-sized lists. The paper's value of 15 for small blocks yields the
// 6.7% (=1/15) worst-case miss rate from the global layer to the
// coalescing layer.
func DefaultGblTarget(size uint32) int {
	g := DefaultTarget(size) * 3 / 2
	if g < 2 {
		g = 2
	}
	return g
}

func (p *Params) withDefaults() Params {
	out := *p
	if out.Classes == nil {
		out.Classes = DefaultClasses
	}
	if out.VmblkShift == 0 && !out.LazySpans {
		out.VmblkShift = 22
	}
	if out.TargetFor == nil {
		out.TargetFor = DefaultTarget
	}
	if out.GblTargetFor == nil {
		out.GblTargetFor = DefaultGblTarget
	}
	return out
}

func (p *Params) validate(pageBytes uint64, memBytes uint64) error {
	if len(p.Classes) == 0 {
		return fmt.Errorf("core: no size classes")
	}
	prev := uint32(0)
	for _, s := range p.Classes {
		if s < 16 || s&(s-1) != 0 {
			return fmt.Errorf("core: size class %d not a power of two >= 16", s)
		}
		if s <= prev {
			return fmt.Errorf("core: size classes not ascending at %d", s)
		}
		if uint64(s) > pageBytes {
			return fmt.Errorf("core: size class %d exceeds page size %d", s, pageBytes)
		}
		prev = s
	}
	vmblkBytes := uint64(1) << p.VmblkShift
	if vmblkBytes < 4*pageBytes {
		return fmt.Errorf("core: vmblk size %d too small for page size %d", vmblkBytes, pageBytes)
	}
	if memBytes < vmblkBytes {
		return fmt.Errorf("core: arena size %d smaller than one vmblk (%d)", memBytes, vmblkBytes)
	}
	return nil
}

// Instruction budgets, calibrated to the paper's Measurements section.
// Each fast path's total instruction count = the explicit memory accesses
// it performs (1 instruction each, charged by the access hooks) + the
// interrupt disable/enable pair (2) + the residual straight-line work
// charged here. The totals the simulator reports are asserted by
// TestInstructionCounts to match the paper: cookie alloc/free = 13 each,
// standard alloc = 35, standard free = 32.
const (
	// Cookie alloc: cli/sti (2) + read cache state (1) + pop link (1) +
	// write cache state (1) + residual 8 = 13.
	insnCookieAllocResidual = 8
	// Cookie free: cli/sti (2) + read cache state (1) + push link (1) +
	// write cache state (1) + residual 8 = 13.
	insnCookieFreeResidual = 8
	// Standard alloc adds the function call and the size-to-class table
	// lookup: +1 table read + 21 residual = 35 total.
	insnStdAllocExtra = 21
	// Standard free likewise: +1 table read + 18 residual = 32 total.
	insnStdFreeExtra = 18

	// Slow-path control-flow budgets (data movement is charged by the
	// access hooks as it happens).
	insnRefill    = 20 // per-CPU cache refill/spill bookkeeping
	insnGlobalOp  = 24 // global-layer list push/pop bookkeeping
	insnPageOp    = 28 // coalesce-to-page bookkeeping per block
	insnPageSetup = 40 // carving or releasing one page
	insnSpanOp    = 48 // span alloc/free incl. boundary-tag merge checks
	insnDopeLook  = 6  // two-level dope-vector address arithmetic
	insnHomeMemo  = 2  // vmblk-base compare against the per-CPU home memo
	insnLargeOp   = 32 // large-block path bookkeeping
	insnReclaim   = 400
	// One incremental reclaim step (flush one CPU cache or drain one
	// global pool) — the per-caller charge that replaces insnReclaim's
	// stop-the-world bill under PressureCritical.
	insnReclaimStep = 40
)
