package core

import (
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

func TestLatencyBucketEdges(t *testing.T) {
	cases := []struct {
		cycles int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{(1 << 26) - 1, 26}, {1 << 26, 27}, {1 << 40, 27},
	}
	for _, tc := range cases {
		if got := latencyBucket(tc.cycles); got != tc.bucket {
			t.Errorf("latencyBucket(%d) = %d, want %d", tc.cycles, got, tc.bucket)
		}
	}
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(3) != 7 {
		t.Errorf("BucketUpper edges wrong: %d %d %d", BucketUpper(0), BucketUpper(1), BucketUpper(3))
	}
}

func TestLatencyQuantiles(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram not zero")
	}
	// 900 samples at 3 cycles (bucket 2), 90 at 100 (bucket 7), 10 at
	// 5000 (bucket 13): nearest-rank p50 (rank 500) sits in bucket 2,
	// p99 (rank 990) in bucket 7, p999 (rank 999) in bucket 13.
	for i := 0; i < 900; i++ {
		h.Record(3)
	}
	for i := 0; i < 90; i++ {
		h.Record(100)
	}
	for i := 0; i < 10; i++ {
		h.Record(5000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.P50(); got != BucketUpper(2) {
		t.Errorf("p50 = %d, want %d", got, BucketUpper(2))
	}
	if got := h.P99(); got != BucketUpper(7) {
		t.Errorf("p99 = %d, want %d", got, BucketUpper(7))
	}
	if got := h.P999(); got != BucketUpper(13) {
		t.Errorf("p999 = %d, want %d", got, BucketUpper(13))
	}
	// Sub of a later snapshot against an earlier one isolates the window.
	before := h
	for i := 0; i < 10; i++ {
		h.Record(1 << 20)
	}
	win := h.Sub(before)
	if win.Count() != 10 || win.P50() != BucketUpper(21) {
		t.Errorf("window: count %d p50 %d", win.Count(), win.P50())
	}
}

// latencyWorkload drives a fixed churn mix — cookie pairs, standard
// allocs with held lifetimes, cross-CPU drains — and returns the
// schedule hash, the final per-CPU clocks and instruction totals, and
// the allocator for further inspection.
func latencyWorkload(t *testing.T, armed bool) (uint64, []int64, []uint64, *Allocator, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 4
	cfg.Nodes = 2
	m := machine.New(cfg)
	m.EnableSchedHash()
	a, err := New(m, Params{RadixSort: true, Latency: armed})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := a.GetCookie(128)
	if err != nil {
		t.Fatal(err)
	}
	type heldBlock struct {
		addr arena.Addr
		size uint64
	}
	ops := make([]int, cfg.NumCPUs)
	held := make([][]heldBlock, cfg.NumCPUs)
	m.Run(func(c *machine.CPU) bool {
		id := c.ID()
		if ops[id] >= 400 {
			return false
		}
		ops[id]++
		switch ops[id] % 8 {
		case 0:
			a.DrainCPU(c, (id+1)%cfg.NumCPUs)
		case 1, 2:
			size := uint64(64 + 128*(ops[id]%5))
			if b, err := a.Alloc(c, size); err == nil {
				held[id] = append(held[id], heldBlock{b, size})
			}
		case 3:
			if n := len(held[id]); n > 0 {
				h := held[id][0]
				held[id] = held[id][1:]
				a.Free(c, h.addr, h.size)
			}
		default:
			if b, err := a.AllocCookie(c, ck); err == nil {
				a.FreeCookie(c, b, ck)
			}
		}
		return true
	})
	// Release everything still held so the workload quiesces cleanly.
	c := m.CPU(0)
	for id := range held {
		for _, h := range held[id] {
			a.Free(c, h.addr, h.size)
		}
	}
	clocks := make([]int64, cfg.NumCPUs)
	insns := make([]uint64, cfg.NumCPUs)
	for i := range clocks {
		clocks[i] = m.CPU(i).Now()
		insns[i] = m.CPU(i).Stats().Instructions
	}
	return m.SchedHash(), clocks, insns, a, m
}

// TestLatencyArmedScheduleIdentical pins the observation-only contract:
// arming the recorder changes no clock, no instruction count, and no
// schedule hash — the armed run IS the unarmed run, plus histograms.
func TestLatencyArmedScheduleIdentical(t *testing.T) {
	offHash, offClocks, offInsns, offA, _ := latencyWorkload(t, false)
	onHash, onClocks, onInsns, onA, mOn := latencyWorkload(t, true)
	if offHash != onHash {
		t.Errorf("armed schedule hash %#x differs from unarmed %#x", onHash, offHash)
	}
	for i := range offClocks {
		if offClocks[i] != onClocks[i] {
			t.Errorf("cpu %d: armed clock %d differs from unarmed %d", i, onClocks[i], offClocks[i])
		}
		if offInsns[i] != onInsns[i] {
			t.Errorf("cpu %d: armed insns %d differ from unarmed %d", i, onInsns[i], offInsns[i])
		}
	}
	if st := offA.LatencyStats(); st.Alloc.Count() != 0 || st.Free.Count() != 0 {
		t.Errorf("unarmed recorder not empty: %d allocs, %d frees", st.Alloc.Count(), st.Free.Count())
	}

	// The armed histograms must account for exactly the class ops the
	// event spine counted: one alloc sample per EvAlloc, one free sample
	// per EvFree.
	lst := onA.LatencyStats()
	if lst.Alloc.Count() == 0 || lst.Free.Count() == 0 {
		t.Fatalf("armed recorder empty: %d allocs, %d frees", lst.Alloc.Count(), lst.Free.Count())
	}
	var allocs, frees uint64
	for _, cs := range onA.Stats(mOn.CPU(0)).Classes {
		allocs += cs.Allocs
		frees += cs.Frees
	}
	if lst.Alloc.Count() != allocs {
		t.Errorf("alloc samples %d != EvAlloc total %d", lst.Alloc.Count(), allocs)
	}
	if lst.Free.Count() != frees {
		t.Errorf("free samples %d != EvFree total %d", lst.Free.Count(), frees)
	}
	// Warm cookie hits dominate the mix, and in Sim mode every sample is
	// a real (nonzero) cycle delta: the zero bucket must stay empty and
	// the median must sit in a small bucket.
	if lst.Alloc.Buckets[0] != 0 {
		t.Errorf("%d alloc samples in the zero bucket on a Sim machine", lst.Alloc.Buckets[0])
	}
	if p50 := lst.Alloc.P50(); p50 <= 0 || p50 > 1<<10 {
		t.Errorf("alloc p50 %d cycles outside the warm-hit range", p50)
	}
	if p999, p50 := lst.Alloc.P999(), lst.Alloc.P50(); p999 < p50 {
		t.Errorf("p999 %d < p50 %d", p999, p50)
	}
}

// TestLatencySnapshotRace is the torn-snapshot regression test: in
// Native mode, LatencyStats merges per-CPU histograms while other CPUs'
// goroutines are mid-record. Each slot must be copied under the same
// lock the recorder writes under — dropping that discipline makes this
// test fail under -race and lets a merge observe torn bucket counts.
func TestLatencySnapshotRace(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.Native
	cfg.NumCPUs = 4
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, Latency: true})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := a.GetCookie(64)
	if err != nil {
		t.Fatal(err)
	}
	const opsPerCPU = 3000
	ops := make([]int, cfg.NumCPUs)
	m.Run(func(c *machine.CPU) bool {
		id := c.ID()
		if ops[id] >= opsPerCPU {
			return false
		}
		ops[id]++
		if id == 0 {
			// CPU 0 is the snapshot reader, racing the recorders. Counts
			// are monotone, so every merge must be at or above the last.
			if st := a.LatencyStats(); st.Alloc.Count() > uint64(3*opsPerCPU) {
				t.Errorf("merge overran: %d alloc samples", st.Alloc.Count())
				return false
			}
			return true
		}
		b, err := a.AllocCookie(c, ck)
		if err != nil {
			return true
		}
		a.FreeCookie(c, b, ck)
		return true
	})
	st := a.LatencyStats()
	want := uint64((cfg.NumCPUs - 1) * opsPerCPU)
	if st.Alloc.Count() > want || st.Free.Count() != st.Alloc.Count() {
		t.Fatalf("final snapshot inconsistent: %d allocs, %d frees, at most %d pairs ran",
			st.Alloc.Count(), st.Free.Count(), want)
	}
	// Native stamps are 0: everything lands in the zero bucket.
	if st.Alloc.Buckets[0] != st.Alloc.Count() {
		t.Errorf("native samples escaped the zero bucket: %d of %d", st.Alloc.Buckets[0], st.Alloc.Count())
	}
}
