package core

import (
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// shardGoldenCycles runs a fixed, deterministic mixed workload — standard
// and cookie alloc/free, cross-CPU (and on multi-node machines,
// cross-node) frees, the large path, a Stats snapshot, and a full drain —
// and returns each CPU's final virtual clock. The workload touches every
// path the remote-free shards change, so comparing its per-CPU cycle
// counts against recorded goldens proves bit-for-bit cycle identity.
func shardGoldenCycles(t *testing.T, nodes int, p Params) []int64 {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 4
	cfg.Nodes = nodes
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 1024
	m := machine.New(cfg)
	a, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}

	sizes := []uint64{16, 64, 128, 1024, 4096}
	type held struct {
		b arena.Addr
		s uint64
	}
	var live []held
	for i := 0; i < 600; i++ {
		c := m.CPU(i % 4)
		sz := sizes[i%len(sizes)]
		b, err := a.Alloc(c, sz)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, held{b, sz})
	}
	// Cross-CPU frees, shifted by two CPUs so every free is remote on the
	// 4-node machine and exercises the routing path.
	for i, h := range live {
		a.Free(m.CPU((i+2)%4), h.b, h.s)
	}
	live = live[:0]

	// Cookie churn with all-to-all handoff: each producer's blocks are
	// freed round-robin across every CPU, mixing home nodes in each
	// freeing CPU's cache exactly the way the shards are designed for.
	ck, err := a.GetCookie(128)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 40; r++ {
		var bs []arena.Addr
		for cpu := 0; cpu < 4; cpu++ {
			c := m.CPU(cpu)
			for k := 0; k < 25; k++ {
				b, err := a.AllocCookie(c, ck)
				if err != nil {
					t.Fatal(err)
				}
				bs = append(bs, b)
			}
		}
		for j, b := range bs {
			a.FreeCookie(m.CPU(j%4), b, ck)
		}
	}

	// Large path, freed from a neighbor CPU.
	for cpu := 0; cpu < 4; cpu++ {
		b, err := a.Alloc(m.CPU(cpu), 3*4096+100)
		if err != nil {
			t.Fatal(err)
		}
		a.Free(m.CPU((cpu+1)%4), b, 3*4096+100)
	}

	_ = a.Stats(m.CPU(0))
	a.DrainAll(m.CPU(0))
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	out := make([]int64, 4)
	for i := range out {
		out[i] = m.CPU(i).Now()
	}
	return out
}

// Golden per-CPU cycle counts captured at the PR 3 HEAD (before the
// remote-free shards existed), on the workload above. The shard code
// must not move a single cycle on a single-node machine, nor on a
// multi-node machine with Params.DisableRemoteShards — those
// configurations must execute the pre-shard free path instruction for
// instruction.
var (
	goldenCyclesNodes1        = []int64{1088286, 854282, 846702, 834108}
	goldenCyclesNodes4Routing = []int64{1869145, 985306, 961125, 996438}
)

func assertGolden(t *testing.T, name string, got, want []int64) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: cpu %d ran %d cycles, golden is %d (drift %+d)",
				name, i, got[i], want[i], got[i]-want[i])
		}
	}
}

// TestShardCycleIdentitySingleNode proves the shard code is invisible on
// single-node machines: the workload's per-CPU cycle counts match the
// pre-shard goldens exactly.
func TestShardCycleIdentitySingleNode(t *testing.T) {
	got := shardGoldenCycles(t, 1, Params{RadixSort: true})
	assertGolden(t, "nodes=1", got, goldenCyclesNodes1)
}

// TestShardCycleIdentityDisabled proves DisableRemoteShards restores the
// per-spill routing path bit for bit on a 4-node machine.
func TestShardCycleIdentityDisabled(t *testing.T) {
	got := shardGoldenCycles(t, 4, Params{RadixSort: true, DisableRemoteShards: true})
	assertGolden(t, "nodes=4 shards-off", got, goldenCyclesNodes4Routing)
}

// TestShardCycleDeterminism pins the sharded configuration's own cycle
// counts: two runs must agree exactly (the simulator is deterministic),
// and the sharded path must not be slower than per-spill routing on this
// remote-heavy workload.
func TestShardCycleDeterminism(t *testing.T) {
	a := shardGoldenCycles(t, 4, Params{RadixSort: true})
	b := shardGoldenCycles(t, 4, Params{RadixSort: true})
	assertGolden(t, "nodes=4 sharded repeat", b, a)
	var sharded, routed int64
	for i := range a {
		sharded += a[i]
		routed += goldenCyclesNodes4Routing[i]
	}
	if sharded >= routed {
		t.Errorf("sharded workload ran %d total cycles, per-spill routing golden is %d — shards should be cheaper", sharded, routed)
	}
}
