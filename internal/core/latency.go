package core

// Per-op alloc/free latency recording, armed by Params.Latency. The
// recorder sits at the EvAlloc/EvFree operation boundaries — around the
// whole of allocClass/freeClass, so a sample covers everything from the
// warm 13-instruction hit to a refill that fell through to reclaim —
// and is observation-only: it reads two cycle stamps (machine.CPU.Stamp)
// and touches nothing simulated, so an armed run schedules
// byte-identically to an unarmed one. With Params.Latency off the fast
// path pays exactly one nil pointer test, preserving the instruction
// budgets and every cycle golden.

import (
	"sync"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// Latency kinds index a latencySlot's histograms.
const (
	latAlloc = iota
	latFree
	numLatKinds
)

// latencySlot is one CPU's latency histograms. The mutex is host-side
// bookkeeping, not part of the simulated machine — taking it charges no
// instructions, cycles, or memory traffic. It exists for Native mode,
// where the recording CPU's goroutine races snapshot readers: each slot
// is written and copied as one consistent unit — the same
// one-lock-per-CPU discipline Stats uses for the per-CPU class counters
// — so a snapshot taken during an in-flight record or merge can never
// observe torn bucket counts (TestLatencySnapshotRace).
type latencySlot struct {
	mu   sync.Mutex
	hist [numLatKinds]LatencyHist
}

// latencyRecorder is the armed recorder: one slot per CPU, written by
// the owning CPU's instruction stream, merged on demand.
type latencyRecorder struct {
	slots []latencySlot
}

func newLatencyRecorder(ncpu int) *latencyRecorder {
	return &latencyRecorder{slots: make([]latencySlot, ncpu)}
}

func (lr *latencyRecorder) record(cpu, kind int, cycles int64) {
	s := &lr.slots[cpu]
	s.mu.Lock()
	s.hist[kind].Record(cycles)
	s.mu.Unlock()
}

// LatencyStats merges the per-CPU latency histograms into one snapshot;
// zero-valued with Params.Latency off. Each CPU's slot is copied under
// its recorder lock, so one CPU's alloc and free histograms are
// mutually consistent; the cross-CPU merge is relaxed exactly like
// Stats (monotone counters, exact when quiescent).
func (a *Allocator) LatencyStats() LatencyStats {
	var out LatencyStats
	if a.lat == nil {
		return out
	}
	for i := range a.lat.slots {
		s := &a.lat.slots[i]
		s.mu.Lock()
		h := s.hist
		s.mu.Unlock()
		out.Alloc.Add(&h[latAlloc])
		out.Free.Add(&h[latFree])
	}
	return out
}

// allocClass allocates one block of class cls on CPU c, stamping the
// operation's latency when the recorder is armed. Failed allocations
// are not samples — exhaustion is an outcome, not a latency.
func (a *Allocator) allocClass(c *machine.CPU, cls int) (arena.Addr, error) {
	if a.lat == nil {
		return a.allocClassOp(c, cls)
	}
	t0 := c.Stamp()
	b, err := a.allocClassOp(c, cls)
	if err == nil {
		a.lat.record(c.ID(), latAlloc, c.Stamp()-t0)
	}
	return b, err
}

// freeClass frees one block of class cls on CPU c, stamping the
// operation's latency when the recorder is armed.
func (a *Allocator) freeClass(c *machine.CPU, cls int, addr arena.Addr) {
	if a.lat == nil {
		a.freeClassOp(c, cls, addr)
		return
	}
	t0 := c.Stamp()
	a.freeClassOp(c, cls, addr)
	a.lat.record(c.ID(), latFree, c.Stamp()-t0)
}
