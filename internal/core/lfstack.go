package core

import "kmem/internal/machine"

// lfState is the Sim-mode cost model of one Treiber-style CAS freelist
// (Params.LockFree): the global layer's per-node stack of target-sized
// lists, and the page layer's stack of parked fully-free pages.
//
// The modeled protocol is the classic one. The stack head is a single
// word holding {top pointer, tag}; a push or pop
//
//  1. reads the head word (optimistic snapshot),
//  2. prepares its node link — a pop re-reads top's next pointer, a
//     push writes its own node's next pointer — and
//  3. commits with one bus-locked CAS of the head word, retrying from
//     step 1 when a concurrent commit got there first.
//
// The tag occupies the head word beside the pointer and is incremented
// by every successful commit, which is what defeats ABA: a pop whose
// snapshot is {A, t} cannot succeed after the stack went A -> B -> A,
// because the two intervening commits advanced the tag to t+2 even
// though the pointer returned to A. The simulator keeps its freelists
// as host slices, so ABA cannot corrupt them "for real"; the tag's
// observable effect here is that a contended commit retries instead of
// silently installing a stale next pointer. The torture harness's
// planted TortureBugLFStackABA removes exactly that protection to prove
// the end-audit would catch the resulting lost update.
//
// Contention is detected the same way the spinlock model detects
// overlapping holds: a bounded ring of recent commit points (CPU,
// virtual completion time). A commit attempt whose read-to-CAS window
// overlaps another CPU's recorded commit loses its CAS and retries,
// re-paying the read, the prep, and the CAS — the real cost shape of an
// optimistic loop, where the retry re-runs the whole short sequence
// rather than spinning on a flag. Because the simulator executes
// operations run-to-completion in host order, commits by other CPUs
// with later virtual times may already be in the ring when an earlier-
// clocked CPU commits; the overlap test is symmetric in virtual time,
// exactly as the spinlock's hold-interval chase is.
type lfState struct {
	line machine.Line
	tag  uint64

	hist [lfCommits]lfCommit
	n    int // next ring slot
}

// lfCommit is one recorded successful commit.
type lfCommit struct {
	cpu int
	at  int64 // virtual time the CAS completed
}

const (
	// lfCommits bounds the recent-commit ring. Commits further back
	// than the ring cannot conflict with a current attempt in any
	// plausible schedule: the window of one attempt is tens of cycles.
	lfCommits = 32

	// lfMaxRetries caps the modeled retries of one commit. The ring can
	// hold commits with virtual times well ahead of a lagging CPU's
	// clock; the cap keeps a pathological schedule from charging an
	// unbounded chase, mirroring the spinlock model's retry cap.
	lfMaxRetries = 8
)

func newLfState(m *machine.Machine, node int) lfState {
	return lfState{line: m.NewMetaLineOn(node)}
}

// commit charges one optimistic read-prep-CAS commit on CPU c and
// returns how many times it retried. prep, when non-nil, is charged on
// every attempt (the per-attempt node-link access described above).
// Only the Sim mode of the machine ever calls this — Params.LockFree
// keeps the locked paths in Native mode.
func (s *lfState) commit(c *machine.CPU, prep func()) int {
	retries := 0
	for {
		c.Read(s.line) // head-word snapshot: {top, tag}
		if prep != nil {
			prep()
		}
		start := c.Now()
		c.CAS(s.line)
		end := c.Now()
		conflict := false
		if retries < lfMaxRetries {
			for i := range s.hist {
				h := &s.hist[i]
				if h.cpu != c.ID() && h.at > start && h.at <= end {
					conflict = true
					break
				}
			}
		}
		if !conflict {
			s.tag++ // ABA guard: every successful commit bumps the tag
			s.hist[s.n] = lfCommit{cpu: c.ID(), at: end}
			s.n = (s.n + 1) % lfCommits
			return retries
		}
		retries++
		c.NoteCASRetry()
	}
}
