package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// Native-mode pressure tests: real goroutines and mutexes, run under the
// race detector. They cover the cross-CPU half of AllocWait that the
// simulator cannot (Sim executes one CPU's call to completion), plus
// reclaim racing allocation across NUMA nodes.

func TestPressureWaitNative(t *testing.T) {
	// Tight physical memory shared by 8 CPUs: 24 pages = 8 vmblk header
	// pages + 16 data pages = 32 blocks of 2048 bytes. Each goroutine
	// builds up to 4 blocks then frees them all, so a parked waiter holds
	// at most 3; even with all 8 parked, 24 blocks are live and 8 remain
	// recoverable via frees and reclaim. Every AllocWait must therefore
	// eventually succeed — an error here is a lost wakeup or a reclaim
	// that cannot reach another CPU's cache.
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.Native
	cfg.NumCPUs = 8
	cfg.MemBytes = 32 << 20
	cfg.PhysPages = 24
	m := machine.New(cfg)
	a, err := New(m, Params{
		RadixSort:    true,
		TargetFor:    func(uint32) int { return 2 },
		GblTargetFor: func(uint32) int { return 1 },
		Pressure:     &PressureConfig{LowPages: 8, MinPages: 4},
		Wait: &WaitConfig{
			MaxWaits:    100000,
			BaseBackoff: 20 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < m.NumCPUs(); i++ {
		wg.Add(1)
		go func(c *machine.CPU) {
			defer wg.Done()
			for round := 0; round < scaledOps(150); round++ {
				var held [4]arena.Addr
				for j := range held {
					b, err := a.AllocWait(c, 2048)
					if err != nil {
						t.Errorf("cpu %d round %d: AllocWait failed: %v", c.ID(), round, err)
						for _, h := range held[:j] {
							a.Free(c, h, 2048)
						}
						return
					}
					held[j] = b
				}
				for _, b := range held {
					a.Free(c, b, 2048)
				}
			}
		}(m.CPU(i))
	}
	wg.Wait()

	a.DrainAll(m.CPU(0))
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if mapped := m.Phys().Mapped(); mapped != 8 {
		t.Fatalf("mapped = %d after quiesce, want 8 header pages", mapped)
	}
	if a.Pressure() != PressureOK {
		t.Fatalf("pressure after quiesce = %v", a.Pressure())
	}
}

func TestConcurrentReclaimRace(t *testing.T) {
	// Two NUMA nodes, allocators and freers racing with explicit
	// DrainCPU and stop-the-world reclaim calls from other CPUs. The
	// assertion is pure safety: after quiesce and a full drain the
	// allocator is consistent and every data page has been returned.
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.Native
	cfg.NumCPUs = 8
	cfg.Nodes = 2
	cfg.MemBytes = 32 << 20
	cfg.PhysPages = 512
	m := machine.New(cfg)
	a, err := New(m, Params{
		RadixSort: true,
		Pressure:  &PressureConfig{LowPages: 64, MinPages: 16},
	})
	if err != nil {
		t.Fatal(err)
	}

	ch := make(chan arena.Addr, 512)
	var producers, consumers, maint sync.WaitGroup
	// CPUs 0-2 allocate (node 0), CPUs 4-6 free (node 1): every block
	// crosses the interconnect and lands back on its home pool while the
	// drain CPUs churn the caches underneath.
	for p := 0; p < 3; p++ {
		producers.Add(1)
		go func(c *machine.CPU) {
			defer producers.Done()
			for i := 0; i < scaledOps(10000); i++ {
				b, err := a.Alloc(c, 256)
				if err != nil {
					continue // exhaustion is fine; corruption is not
				}
				ch <- b
			}
		}(m.CPU(p))
	}
	for p := 4; p < 7; p++ {
		consumers.Add(1)
		go func(c *machine.CPU) {
			defer consumers.Done()
			for b := range ch {
				a.Free(c, b, 256)
			}
		}(m.CPU(p))
	}
	// CPUs 3 and 7: hostile maintenance — random cache drains and full
	// reclaims while traffic is in flight.
	stop := make(chan struct{})
	for _, p := range []int{3, 7} {
		maint.Add(1)
		go func(c *machine.CPU) {
			defer maint.Done()
			rng := rand.New(rand.NewSource(int64(c.ID())))
			// Op-bounded backstop: stop normally ends the loop, but if the
			// producers ever wedged, the maintenance CPUs must not spin
			// forever hammering reclaim.
			for op := 0; op < scaledOps(1_000_000); op++ {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(4) == 0 {
					a.reclaim(c)
				} else {
					a.DrainCPU(c, rng.Intn(m.NumCPUs()))
				}
			}
		}(m.CPU(p))
	}

	producers.Wait()
	close(ch) // consumers drain the channel and exit
	consumers.Wait()
	close(stop)
	maint.Wait()

	a.DrainAll(m.CPU(0))
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats(m.CPU(0))
	if got, want := uint64(m.Phys().Mapped()), 8*st.VM.VmblkCreates; got != want {
		t.Fatalf("mapped = %d after quiesce, want %d (headers of %d vmblks)",
			got, want, st.VM.VmblkCreates)
	}
}
