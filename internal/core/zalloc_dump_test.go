package core

import (
	"strings"
	"testing"
)

func TestAllocZeroed(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	// Dirty a block, free it, and demand a zeroed one: the returned
	// payload must be all zero regardless of history.
	b1, _ := a.Alloc(c, 64)
	m.Mem().Fill(b1, 64, 0xff)
	a.Free(c, b1, 64)

	for i := 0; i < 8; i++ {
		b, err := a.AllocZeroed(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		if off, ok := m.Mem().CheckFill(b, 64, 0); !ok {
			t.Fatalf("zeroed block dirty at +%d", off)
		}
		a.Free(c, b, 64)
	}
}

func TestAllocZeroedLarge(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	b, err := a.AllocZeroed(c, 3*4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Mem().CheckFill(b, 3*4096, 0); !ok {
		t.Fatal("large zeroed block dirty")
	}
	a.Free(c, b, 3*4096)
}

func TestAllocCookieZeroed(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	ck, _ := a.GetCookie(128)
	b, err := a.AllocCookieZeroed(c, ck)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Mem().CheckFill(b, 128, 0); !ok {
		t.Fatal("cookie-zeroed block dirty")
	}
	a.FreeCookie(c, b, ck)
}

func TestZeroingCostScalesWithSize(t *testing.T) {
	a, m := testAllocator(t, 1, 2048, Params{RadixSort: true})
	c := m.CPU(0)
	measure := func(size uint64) int64 {
		// Warm the class first.
		b, err := a.Alloc(c, size)
		if err != nil {
			t.Fatal(err)
		}
		a.Free(c, b, size)
		start := c.Now()
		b, err = a.AllocZeroed(c, size)
		if err != nil {
			t.Fatal(err)
		}
		cost := c.Now() - start
		a.Free(c, b, size)
		return cost
	}
	small := measure(64)
	big := measure(4096)
	if big < 4*small {
		t.Fatalf("zeroing 4096 (%d cycles) not much dearer than 64 (%d cycles)", big, small)
	}
}

func TestDumpShowsState(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	var held []uint64
	for i := 0; i < 100; i++ {
		b, _ := a.Alloc(c, 256)
		held = append(held, b)
	}
	bigBlock, _ := a.Alloc(c, 32768)

	var sb strings.Builder
	a.Dump(&sb)
	out := sb.String()
	for _, want := range []string{
		"kmem allocator:",
		"class 4: size 256",
		"global:",
		"blocks free",
		"vmblk layer: 1 vmblks",
		"alloc[8]", // the 32 KB large allocation
		"physical:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q\n%s", want, out)
		}
	}
	a.Free(c, bigBlock, 32768)
	for _, b := range held {
		a.Free(c, b, 256)
	}
}

func TestPoisonModeCatchesWrongCookieFree(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	ck64, _ := a.GetCookie(64)
	ck256, _ := a.GetCookie(256)
	b, err := a.AllocCookie(c, ck64)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-cookie free not detected")
		}
	}()
	a.FreeCookie(c, b, ck256) // wrong class: must panic in poison mode
}

func TestDumpOnFreshAllocator(t *testing.T) {
	a, _ := defaultTestAllocator(t)
	var sb strings.Builder
	a.Dump(&sb)
	if !strings.Contains(sb.String(), "0 vmblks") {
		t.Fatalf("fresh dump:\n%s", sb.String())
	}
}
