package core

import (
	"sync"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/blocklist"
	"kmem/internal/machine"
)

// numaAllocator builds a simulated allocator on a multi-node machine.
func numaAllocator(t *testing.T, ncpu, nodes int, physPages int64, p Params) (*Allocator, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = ncpu
	cfg.Nodes = nodes
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = physPages
	m := machine.New(cfg)
	a, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func TestRemoteFreeRoutesHome(t *testing.T) {
	// The paper's motivating pattern: CPU 0 (node 0) allocates, CPU 2
	// (node 1) frees. Every freed block must route back to its home
	// node's pool — never into the freeing CPU's node pool.
	a, m := numaAllocator(t, 4, 2, 1024, Params{RadixSort: true})
	c0, c2 := m.CPU(0), m.CPU(2)
	if c0.Node() != 0 || c2.Node() != 1 {
		t.Fatalf("node layout: cpu0 on %d, cpu2 on %d", c0.Node(), c2.Node())
	}

	var bs []arena.Addr
	for i := 0; i < 200; i++ {
		b, err := a.Alloc(c0, 64)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	for _, b := range bs {
		a.Free(c2, b, 64)
	}
	a.DrainCPU(c2, 2)

	cls := a.classFor(64)
	st := a.Stats(c0).Classes[cls]
	if st.RemoteFrees == 0 {
		t.Fatal("no remote frees recorded for a cross-node free storm")
	}
	if st.Interconnect == 0 {
		t.Fatal("no interconnect crossings recorded")
	}
	// Home-node invariant: node 1's pool holds nothing (all blocks are
	// homed on node 0), node 0's pool holds the returned blocks.
	if n := a.classes[cls].globals[1].blocksHeld(c0); n != 0 {
		t.Fatalf("node 1 pool holds %d foreign blocks", n)
	}
	if n := a.classes[cls].globals[0].blocksHeld(c0); n == 0 {
		t.Fatal("node 0 pool got nothing back")
	}
	checkOK(t, a)
	a.DrainAll(c0)
	checkOK(t, a)
}

func TestNodeStealWhenHomeDry(t *testing.T) {
	// Exhaust physical memory from node 0, then return a few blocks to
	// node 0's pool. An allocation on node 1 cannot carve a node-local
	// page (no physical pages left for a new vmblk), so it must steal
	// the cached blocks cross-node rather than fail.
	a, m := numaAllocator(t, 4, 2, 48, Params{RadixSort: true})
	c0, c2 := m.CPU(0), m.CPU(2)

	var live []arena.Addr
	for {
		b, err := a.Alloc(c0, 64)
		if err != nil {
			break // physical memory exhausted
		}
		live = append(live, b)
	}
	if len(live) < 64 {
		t.Fatalf("only %d blocks before exhaustion", len(live))
	}

	// Return a modest number on the owning node — few enough that the
	// global pool cannot overflow and release pages back to physmem.
	for _, b := range live[:16] {
		a.Free(c0, b, 64)
	}
	live = live[16:]
	a.DrainCPU(c0, 0)
	cls := a.classFor(64)
	if n := a.classes[cls].globals[0].blocksHeld(c0); n == 0 {
		t.Fatal("node 0 pool empty after frees")
	}

	b, err := a.Alloc(c2, 64)
	if err != nil {
		t.Fatalf("node 1 alloc failed despite cached blocks on node 0: %v", err)
	}
	st := a.Stats(c0).Classes[cls]
	if st.NodeSteals == 0 {
		t.Fatal("allocation succeeded without recording a node steal")
	}
	a.Free(c2, b, 64)
	for _, l := range live {
		a.Free(c0, l, 64)
	}
	a.DrainAll(c0)
	checkOK(t, a)
}

func TestBucketRegroupAfterRetune(t *testing.T) {
	// An adaptive retune changes target between exchanges: lists grouped
	// under the old target are odd-sized under the new one and must flow
	// through the bucket to be regrouped. The retune is simulated by
	// storing the new target directly, exactly what the controller does.
	a, m := testAllocator(t, 1, 1024, Params{RadixSort: true})
	c := m.CPU(0)
	cls := a.classFor(32)
	g := a.classes[cls].globals[0]
	oldTarget := g.ctl.curTarget()

	mkList := func(n int) (l blocklist.List) {
		for i := 0; i < n; i++ {
			b, err := a.Alloc(c, 32)
			if err != nil {
				t.Fatal(err)
			}
			l.Push(c, a.mem, b)
		}
		return l
	}
	// Build three lists grouped under the old target, then empty the pool
	// of the refill traffic the allocations caused, so it holds exactly
	// those three lists.
	lists := make([]blocklist.List, 3)
	for i := range lists {
		lists[i] = mkList(oldTarget)
	}
	a.DrainCPU(c, 0)
	g.drainAll(c)
	for _, l := range lists {
		g.putList(c, l)
	}
	g.lk.Acquire(c)
	nOld := len(g.lists)
	g.lk.Release(c)
	if nOld != 3 {
		t.Fatalf("%d full lists before retune, want 3", nOld)
	}

	newTarget := oldTarget + 3
	g.ctl.target.Store(int64(newTarget))

	// Exchange every cached list once: each comes out still grouped
	// under the old target, is odd-sized under the new one, and must
	// regroup through the bucket on its way back in.
	var cycled []blocklist.List
	for i := 0; i < nOld; i++ {
		l, err := g.getList(c)
		if err != nil {
			t.Fatal(err)
		}
		if l.Len() != oldTarget {
			t.Fatalf("exchange %d returned %d blocks, want the old grouping %d", i, l.Len(), oldTarget)
		}
		cycled = append(cycled, l)
	}
	for _, l := range cycled {
		g.putList(c, l)
	}

	g.lk.Acquire(c)
	total := g.bucket.Len()
	for i, l := range g.lists {
		if l.Len() != newTarget {
			t.Fatalf("list %d has %d blocks after retune, want %d", i, l.Len(), newTarget)
		}
		total += l.Len()
	}
	if g.bucket.Len() >= newTarget {
		t.Fatalf("bucket kept %d blocks, regroup threshold is %d", g.bucket.Len(), newTarget)
	}
	g.lk.Release(c)
	if total != 3*oldTarget {
		t.Fatalf("pool holds %d blocks, want %d conserved", total, 3*oldTarget)
	}
	a.DrainAll(c)
	checkOK(t, a)
}

func TestDopeVectorHomeConsistency(t *testing.T) {
	// Property: every address carved from a page resolves through the
	// dope vector to that page's descriptor and to the home node of the
	// vmblk the page belongs to, regardless of which CPU asks.
	a, m := numaAllocator(t, 4, 2, 2048, Params{RadixSort: true})
	type held struct {
		b    arena.Addr
		size uint64
	}
	var live []held
	sizes := []uint64{16, 48, 64, 200, 1024, 4096}
	for i := 0; i < 400; i++ {
		c := m.CPU(i % 4)
		sz := sizes[i%len(sizes)]
		b, err := a.Alloc(c, sz)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, held{b, sz})
	}
	// One large allocation per node exercises the span path too.
	for _, cpu := range []int{0, 2} {
		b, err := a.Alloc(m.CPU(cpu), 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, held{b, 64 << 10})
	}

	c := m.CPU(0)
	for _, h := range live {
		pg := int32(h.b >> a.pageShift)
		vb := a.vm.vmblkOf(pg)
		if vb == nil {
			t.Fatalf("block %#x has no vmblk", h.b)
		}
		if got := a.vm.nodeOfPage(pg); got != int(vb.home) {
			t.Fatalf("page %d: nodeOfPage %d, vmblk home %d", pg, got, vb.home)
		}
		for _, cpu := range []int{0, 3} { // ask from both nodes
			if got := a.vm.homeOf(m.CPU(cpu), h.b); got != int(vb.home) {
				t.Fatalf("homeOf(%#x) from cpu %d = %d, want %d", h.b, cpu, got, vb.home)
			}
		}
		pd, _ := a.vm.lookup(c, h.b)
		switch pd.state {
		case pdSplit:
			if h.size > uint64(a.classes[pd.class].size) {
				t.Fatalf("block %#x: class %d size %d < request %d",
					h.b, pd.class, a.classes[pd.class].size, h.size)
			}
		case pdAllocHead:
			if h.size <= uint64(a.maxSmall) {
				t.Fatalf("small block %#x resolved to a span head", h.b)
			}
		default:
			t.Fatalf("block %#x resolves to %s page", h.b, pdStateName(pd.state))
		}
	}
	for _, h := range live {
		a.Free(c, h.b, h.size)
	}
	a.DrainAll(c)
	checkOK(t, a)
}

func TestNativeCrossNodeFree(t *testing.T) {
	// Native mode with a topology: producers on node 0 allocate, consumers
	// on node 1 free, concurrently. The race detector sees the whole
	// remote-routing path (routeSpill's dope-vector reads in particular).
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.Native
	cfg.NumCPUs = 4
	cfg.Nodes = 2
	cfg.MemBytes = 32 << 20
	cfg.PhysPages = 4096
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := a.GetCookie(128)
	if err != nil {
		t.Fatal(err)
	}

	const perProducer = 5000
	chans := [2]chan arena.Addr{
		make(chan arena.Addr, 256),
		make(chan arena.Addr, 256),
	}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ { // CPUs 0,1 = node 0
		wg.Add(1)
		go func(c *machine.CPU, out chan<- arena.Addr) {
			defer wg.Done()
			defer close(out)
			for i := 0; i < perProducer; i++ {
				b, err := a.AllocCookie(c, ck)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				out <- b
			}
		}(m.CPU(p), chans[p])
	}
	for q := 0; q < 2; q++ { // CPUs 2,3 = node 1
		wg.Add(1)
		go func(c *machine.CPU, in <-chan arena.Addr) {
			defer wg.Done()
			for b := range in {
				a.FreeCookie(c, b, ck)
			}
		}(m.CPU(2+q), chans[q])
	}
	wg.Wait()

	c := m.CPU(0)
	st := a.Stats(c).Classes[a.classFor(128)]
	if st.RemoteFrees == 0 {
		t.Fatal("no remote frees in a cross-node producer/consumer run")
	}
	a.DrainAll(c)
	checkOK(t, a)
}
