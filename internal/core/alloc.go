package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"kmem/internal/arena"
	"kmem/internal/blocklist"
	"kmem/internal/machine"
)

// ErrBadSize is returned for zero-sized or absurd requests.
var ErrBadSize = errors.New("kmem: invalid allocation size")

// Allocator is the paper's four-layer kernel memory allocator. One
// Allocator manages one machine's kernel address space; per-CPU state is
// indexed by the machine.CPU handle passed to every operation, exactly as
// the kernel's per-CPU data is indexed by the executing processor.
type Allocator struct {
	m      *machine.Machine
	mem    *arena.Arena
	params Params

	pageShift          uint
	vmblkShift         uint
	pagesPerVmblkShift uint
	maxSmall           uint32

	// nodes is the machine's NUMA node count; 1 selects the classic
	// single-pool layout and keeps every routing branch off the old
	// code paths.
	nodes int

	// shards reports whether the per-CPU remote-free shards are active:
	// multi-node machine and not Params.DisableRemoteShards. When false
	// the free path is byte-for-byte the pre-shard code.
	shards bool

	classes       []classState
	sizeToClass   []int8
	sizeTableLine machine.Line

	vm     *vmblkLayer
	percpu [][]pcpu // [cpu][class]
	intr   []paddedIntrLock

	// rseq[cpu] is the CPU's restartable-sequence region guarding its
	// per-CPU caches across every class, exactly the scope intr[cpu]
	// guards; nil unless Params.Rseq. All access goes through pcpuRun
	// (owner) and pcpuInterfere (foreign drains, stats).
	rseq []*machine.Rseq

	// lockFree gates the Sim-mode Treiber fast paths of the global and
	// page layers: Params.LockFree and the machine is in Sim mode (the
	// CAS cost model is what the flag buys; Native keeps the locks).
	lockFree bool

	// spillScratch[cpu] is that CPU's reusable per-node partition buffer
	// for routeSpill, sized [nodes]. Each CPU handle is driven by one
	// goroutine at a time (the per-CPU contract), so no lock guards it,
	// and routeSpill leaves every entry empty — allocating it once in New
	// keeps the spill slow path free of per-call make garbage. Nil on
	// single-node machines, which never route.
	spillScratch [][]blocklist.List

	reclaims atomic.Uint64

	// Registered object-cache shed callbacks (cache.go). Nil until the
	// first RegisterCacheShed, so the reclaim paths of cache-free
	// allocators stay cycle-identical to the pre-objcache code.
	shedMu    sync.Mutex
	shedFns   []cacheShedEntry
	shedSeq   int
	shedQueue []int // ids pending in shedOne's current sweep

	// Memory-pressure machinery (pressure.go). pressure mirrors the
	// physmem pool's level (always 0 with Params.Pressure nil); waitqs
	// holds one AllocWait queue per class plus one for large requests.
	pressure            atomic.Int32
	waitqs              []waitq
	waitCfg             WaitConfig
	reclaimCursor       atomic.Uint32
	waits               atomic.Uint64
	wakes               atomic.Uint64
	faultsInjected      atomic.Uint64
	pressureTransitions atomic.Uint64
	reclaimStepsDone    atomic.Uint64

	// Corruption-hardening state (harden.go). Nil unless Params.Harden
	// is set, so every hardening hook is one nil test when off.
	hd *hardenState

	// Per-op latency recorder (latency.go). Nil unless Params.Latency,
	// so the alloc/free boundaries pay one nil test when off.
	lat *latencyRecorder
}

// classState groups one size class's parameters and upper layers. target
// and gbltarget are the configured initial values; the current values
// live in ctl (they coincide whenever adaptation is off). The global and
// coalesce-to-page layers are per NUMA node — one pool of each kind per
// node, each with its own spinlock — sharing the one class controller.
type classState struct {
	size      uint32
	target    int
	gbltarget int
	ctl       *classController
	globals   []*globalPool // [node]
	pages     []*pagePool   // [node]
}

// globalFor returns the class's global pool on CPU c's home node.
func (cs *classState) globalFor(c *machine.CPU) *globalPool { return cs.globals[c.Node()] }

// New builds an allocator over machine m with the given parameters.
func New(m *machine.Machine, params Params) (*Allocator, error) {
	p := params.withDefaults()
	cfg := m.Config()
	if p.VmblkShift == 0 {
		// Lazy spans over-reserve large virtual spans: default 64 MB per
		// vmblk, clamped so every NUMA node can still carve a span of its
		// own (reservation costs no frames, so bigger spans just mean
		// fewer dope-vector slots).
		shift := uint(26)
		maxSpan := cfg.MemBytes / uint64(m.NumNodes())
		for uint64(1)<<shift > maxSpan && shift > 12 {
			shift--
		}
		p.VmblkShift = shift
	}
	if err := p.validate(cfg.PageBytes, cfg.MemBytes); err != nil {
		return nil, err
	}
	if p.Harden != nil {
		// Harden supersedes the legacy Poison debug mode: its own
		// poison/verify machinery (distinct fill bytes, reports instead
		// of panics) runs on the same paths.
		p.Poison = false
	}
	if uint64(1)<<p.VmblkShift > cfg.MemBytes {
		return nil, fmt.Errorf("core: vmblk size exceeds arena")
	}

	a := &Allocator{
		m:          m,
		mem:        m.Mem(),
		params:     p,
		nodes:      m.NumNodes(),
		vmblkShift: p.VmblkShift,
		maxSmall:   p.Classes[len(p.Classes)-1],
	}
	a.pageShift = uint(bits.TrailingZeros64(cfg.PageBytes))
	a.pagesPerVmblkShift = a.vmblkShift - a.pageShift
	a.lockFree = p.LockFree && m.Sim()

	a.sizeToClass = make([]int8, a.maxSmall+1)
	cls := 0
	for s := uint32(0); s <= a.maxSmall; s++ {
		for uint32(s) > p.Classes[cls] {
			cls++
		}
		a.sizeToClass[s] = int8(cls)
	}
	a.sizeTableLine = m.NewMetaLine()

	a.vm = newVmblkLayer(a)

	a.classes = make([]classState, len(p.Classes))
	for i, size := range p.Classes {
		t := p.TargetFor(size)
		if t < 1 {
			return nil, fmt.Errorf("core: target %d for size %d", t, size)
		}
		gt := p.GblTargetFor(size)
		if gt < 1 {
			return nil, fmt.Errorf("core: gbltarget %d for size %d", gt, size)
		}
		ctl := newClassController(&p, t, gt)
		cs := classState{
			size:      size,
			target:    t,
			gbltarget: gt,
			ctl:       ctl,
			globals:   make([]*globalPool, a.nodes),
			pages:     make([]*pagePool, a.nodes),
		}
		for node := 0; node < a.nodes; node++ {
			cs.globals[node] = newGlobalPool(a, i, node, ctl)
			cs.pages[node] = newPagePool(a, i, node, size)
			cs.globals[node].pp = cs.pages[node]
		}
		a.classes[i] = cs
	}

	a.shards = a.nodes > 1 && !p.DisableRemoteShards
	n := m.NumCPUs()
	a.percpu = make([][]pcpu, n)
	a.intr = make([]paddedIntrLock, n)
	for cpu := 0; cpu < n; cpu++ {
		a.percpu[cpu] = make([]pcpu, len(p.Classes))
		for k := range a.percpu[cpu] {
			pc := &a.percpu[cpu][k]
			pc.line = m.NewMetaLineOn(m.NodeOf(cpu))
			pc.target = a.classes[k].ctl.curTarget()
			pc.memoVmblk = -1
			if a.shards {
				pc.remote = make([]blocklist.List, a.nodes)
			}
		}
	}
	if a.nodes > 1 {
		a.spillScratch = make([][]blocklist.List, n)
		for cpu := range a.spillScratch {
			a.spillScratch[cpu] = make([]blocklist.List, a.nodes)
		}
	}
	if p.Rseq {
		a.rseq = make([]*machine.Rseq, n)
		for cpu := 0; cpu < n; cpu++ {
			a.rseq[cpu] = machine.NewRseqOn(m, m.NodeOf(cpu))
		}
	}

	if p.Latency {
		a.lat = newLatencyRecorder(n)
	}

	a.waitCfg = p.Wait.withDefaults()
	a.waitqs = make([]waitq, len(p.Classes)+1)
	if p.Harden != nil {
		if rz := p.Harden.RedzoneBytes(); rz >= uint64(a.maxSmall) {
			// An absurd redzone would push every request onto the
			// large path.
			return nil, fmt.Errorf("core: redzone %d bytes leaves no small class usable", rz)
		}
		a.hd = newHardenState(a)
	}
	if err := a.initPressure(); err != nil {
		return nil, err
	}
	return a, nil
}

// Machine returns the machine this allocator serves.
func (a *Allocator) Machine() *machine.Machine { return a.m }

// NumClasses returns the number of small-block size classes.
func (a *Allocator) NumClasses() int { return len(a.classes) }

// ClassSize returns the block size of class cls.
func (a *Allocator) ClassSize(cls int) uint32 { return a.classes[cls].size }

// MaxSmall returns the largest small-block size; bigger requests take the
// large path through the coalesce-to-vmblk layer.
func (a *Allocator) MaxSmall() uint32 { return a.maxSmall }

// Target returns the current per-CPU cache target for class cls (the
// configured value, or the adaptive controller's latest choice).
func (a *Allocator) Target(cls int) int { return a.classes[cls].ctl.curTarget() }

// GblTarget returns the current global-layer capacity parameter for
// class cls, in units of target-sized lists.
func (a *Allocator) GblTarget(cls int) int { return a.classes[cls].ctl.curGblTarget() }

// classFor returns the size class index for a small request.
func (a *Allocator) classFor(size uint64) int {
	return int(a.sizeToClass[size])
}

// --- cookie interface ----------------------------------------------------

// Cookie encapsulates a request size translated ahead of time, "removing
// the need for the free operation to determine the block size given only
// its address". GetCookie corresponds to kmem_alloc_get_cookie; Alloc
// and Free with a Cookie correspond to the KMEM_ALLOC_COOKIE and
// KMEM_FREE_COOKIE macro expansions.
type Cookie struct {
	cls  int8
	size uint32
}

// Size returns the block size the cookie allocates.
func (ck Cookie) Size() uint32 { return ck.size }

// GetCookie translates a request size into a cookie. It fails for sizes
// that the small-block classes cannot serve; such requests must use the
// standard interface. With hardening on, the request maps to the class
// serving size+redzone and the cookie reports the usable capacity
// (class size minus the redzone), so callers never see canary bytes.
func (a *Allocator) GetCookie(size uint64) (Cookie, error) {
	if a.hd != nil {
		if size == 0 || size+a.hd.rz > uint64(a.maxSmall) {
			return Cookie{}, ErrBadSize
		}
		cls := a.classFor(size + a.hd.rz)
		return Cookie{cls: int8(cls), size: a.classes[cls].size - uint32(a.hd.rz)}, nil
	}
	if size == 0 || size > uint64(a.maxSmall) {
		return Cookie{}, ErrBadSize
	}
	cls := a.classFor(size)
	return Cookie{cls: int8(cls), size: a.classes[cls].size}, nil
}

// AllocCookie is the 13-instruction fast-path allocation.
func (a *Allocator) AllocCookie(c *machine.CPU, ck Cookie) (arena.Addr, error) {
	return a.allocClass(c, int(ck.cls))
}

// FreeCookie is the 13-instruction fast-path free.
func (a *Allocator) FreeCookie(c *machine.CPU, addr arena.Addr, ck Cookie) {
	a.freeClass(c, int(ck.cls), addr)
}

// --- standard System V interface ----------------------------------------

// Alloc is the standard kmem_alloc interface: any size, block located by
// the size-to-class table. The extra function-call and table-lookup work
// makes it 35 instructions on the fast path, versus the cookie's 13.
func (a *Allocator) Alloc(c *machine.CPU, size uint64) (arena.Addr, error) {
	if size == 0 {
		return arena.NilAddr, ErrBadSize
	}
	eff := size
	if a.hd != nil {
		eff += a.hd.rz
	}
	if eff > uint64(a.maxSmall) {
		return a.allocLargeWithReclaim(c, size)
	}
	c.Work(insnStdAllocExtra)
	c.Read(a.sizeTableLine)
	return a.allocClass(c, a.classFor(eff))
}

// Free is the standard kmem_free interface, taking the address and the
// original request size as System V does.
func (a *Allocator) Free(c *machine.CPU, addr arena.Addr, size uint64) {
	if size == 0 {
		panic("kmem: Free with size 0")
	}
	eff := size
	if a.hd != nil {
		eff += a.hd.rz
	}
	if eff > uint64(a.maxSmall) {
		a.vmFreeLarge(c, addr)
		return
	}
	c.Work(insnStdFreeExtra)
	c.Read(a.sizeTableLine)
	a.freeClass(c, a.classFor(eff), addr)
}

// FreeByAddr frees a block given only its address, locating the size via
// the dope vector and page descriptor. It costs a two-level lookup on
// every call and exists for callers that have lost the size.
func (a *Allocator) FreeByAddr(c *machine.CPU, addr arena.Addr) {
	pd, _ := a.vm.lookup(c, addr)
	switch pd.state {
	case pdSplit:
		a.freeClass(c, int(pd.class), addr)
	case pdAllocHead:
		a.vmFreeLarge(c, addr)
	default:
		panic(fmt.Sprintf("kmem: FreeByAddr(%#x) of %s page", addr, pdStateName(pd.state)))
	}
}

// --- per-CPU critical sections --------------------------------------------

// pcpuRun executes body as CPU cpu's per-CPU critical section — a
// restartable sequence under Params.Rseq, the interrupt-disable pair
// otherwise. Only the owning CPU's instruction stream may use it; body
// receives the number of aborted attempts so restart tallies land in
// state the section itself protects.
func (a *Allocator) pcpuRun(c *machine.CPU, cpu int, body func(restarts int)) {
	if a.rseq != nil {
		a.rseq[cpu].Run(c, body)
		return
	}
	il := &a.intr[cpu]
	il.Acquire(c)
	body(0)
	il.Release(c)
}

// pcpuInterfere executes body against CPU cpu's per-CPU caches from a
// (possibly) foreign instruction stream: under Params.Rseq it claims
// the victim's region and bumps its epoch so in-flight sequences abort
// and restart instead of racing; otherwise it takes the victim's
// IntrLock exactly as the pre-rseq drains did.
func (a *Allocator) pcpuInterfere(c *machine.CPU, cpu int, body func()) {
	if a.rseq != nil {
		a.rseq[cpu].Interfere(c, body)
		return
	}
	il := &a.intr[cpu]
	il.Acquire(c)
	body()
	il.Release(c)
}

// --- per-class operations -------------------------------------------------

// allocClassOp allocates one block of class cls on CPU c: per-CPU cache
// first, then the global layer, then the low-memory reclaim path. Under
// PressureCritical the reclaim retries are incremental — a budget of
// reclaimSteps() single-CPU/single-pool steps, each followed by a retry —
// instead of the one stop-the-world flush used otherwise. Callers go
// through allocClass (latency.go), which stamps the op when the latency
// recorder is armed.
func (a *Allocator) allocClassOp(c *machine.CPU, cls int) (arena.Addr, error) {
	if a.params.DebugOwnership {
		defer c.EndExclusive(c.BeginExclusive())
	}
	cpu := c.ID()
	pc := &a.percpu[cpu][cls]
	ctl := a.classes[cls].ctl
	single := a.params.DisableSplitFreelist
	reclaimBudget := -1 // -1: reclaim not yet attempted
	for {
		var b arena.Addr
		var ok bool
		a.pcpuRun(c, cpu, func(restarts int) {
			if restarts > 0 {
				pc.ev[EvRseqRestart] += uint64(restarts)
			}
			if single {
				b, ok = a.allocFastSingle(c, pc)
			} else {
				b, ok = a.allocFast(c, pc)
			}
		})
		if ok {
			if a.hd != nil {
				if !a.hardenAlloc(c, cls, b) {
					// Block swallowed into quarantine; retry.
					continue
				}
			} else if a.params.Poison {
				a.poisonCheck(b, a.classes[cls].size)
			}
			return b, nil
		}

		// Miss: replenish main from the global layer — a whole
		// target-sized list normally, a single block under the
		// no-split-freelist ablation. The home node's pool is tried
		// first (it refills from its node-local page pool); when it is
		// dry the other nodes' pools are tried in round-robin order,
		// taking only blocks they already cache.
		c.Work(insnRefill)
		home := a.classes[cls].globalFor(c)
		var lst blocklist.List
		var err error
		if single {
			lst, err = home.getOne(c)
		} else {
			lst, err = home.getList(c)
		}
		if lst.Empty() && a.nodes > 1 {
			for off := 1; off < a.nodes && lst.Empty(); off++ {
				victim := (home.node + off) % a.nodes
				lst = a.classes[cls].globals[victim].stealList(c)
			}
		}
		if !lst.Empty() {
			n := lst.Len()
			var delta uint64
			a.pcpuRun(c, cpu, func(restarts int) {
				if restarts > 0 {
					pc.ev[EvRseqRestart] += uint64(restarts)
				}
				pc.ev[EvCPURefill]++
				if ctl.enabled {
					// Requote the target and batch the fast-path ops since
					// the last report into the controller's window.
					ops := pc.ops()
					delta = ops - pc.notedOps
					pc.notedOps = ops
					pc.target = ctl.curTarget()
				}
				if pc.main.Empty() {
					pc.main = lst
				} else {
					// A drain cannot have added blocks (drains only
					// remove), but be robust: splice.
					pc.main.Append(c, a.mem, lst)
				}
			})
			a.emit(cls, EvCPURefill, n)
			if ctl.enabled {
				ctl.noteCPU(a, c, cls, delta, 1)
			}
			continue
		}
		if reclaimBudget == -1 {
			if a.pressureLevel() == PressureCritical {
				reclaimBudget = a.reclaimSteps()
			} else {
				reclaimBudget = 0
				a.reclaim(c)
				continue
			}
		}
		if reclaimBudget > 0 {
			reclaimBudget--
			a.reclaimStep(c)
			continue
		}
		return arena.NilAddr, exhaustErr(err)
	}
}

// freeClassOp frees one block of class cls on CPU c. Callers go through
// freeClass (latency.go), which stamps the op when the latency recorder
// is armed.
func (a *Allocator) freeClassOp(c *machine.CPU, cls int, addr arena.Addr) {
	if addr == arena.NilAddr {
		panic("kmem: free of nil address")
	}
	if a.params.DebugOwnership {
		defer c.EndExclusive(c.BeginExclusive())
	}
	if a.hd != nil {
		if !a.hardenFree(c, cls, addr) {
			// The free was swallowed: double free, quarantined page, or
			// a detection under PolicyQuarantine. The allocator keeps
			// serving; the block never re-enters circulation.
			return
		}
	} else if a.params.Poison {
		// Debug mode: a free through the wrong cookie would silently
		// thread the block onto the wrong class's freelists; catch it at
		// the source via the page descriptor.
		pd, _ := a.vm.lookup(c, addr)
		if pd.state != pdSplit || int(pd.class) != cls {
			panic(fmt.Sprintf("kmem: free of %#x as class %d (size %d) but page is %s/class %d",
				addr, cls, a.classes[cls].size, pdStateName(pd.state), pd.class))
		}
		a.poison(addr, a.classes[cls].size)
	}
	cpu := c.ID()
	pc := &a.percpu[cpu][cls]
	ctl := a.classes[cls].ctl

	var spill blocklist.List
	// flushHome is the destination node when spill is a full remote
	// shard; -1 marks a classic main/aux spill, which still routes by
	// per-block lookup (a cache may mix stolen blocks from any node).
	flushHome := -1
	var delta uint64
	noted := false
	a.pcpuRun(c, cpu, func(restarts int) {
		if restarts > 0 {
			pc.ev[EvRseqRestart] += uint64(restarts)
		}
		if a.shards {
			// Classify the block's home first: remote blocks stage in the
			// per-node shard and never enter main/aux, so a shard flush is
			// already wholly owned by one node. The 1-entry memo answers
			// repeat lookups within one vmblk with a compare instead of the
			// dope-vector charge; a vmblk's home never changes, so the memo
			// can never go stale.
			idx := int64(addr >> a.vmblkShift)
			var home int
			if pc.memoVmblk == idx {
				c.Work(insnHomeMemo)
				pc.ev[EvHomeMemoHit]++
				home = int(pc.memoHome)
			} else {
				home = a.vm.homeOf(c, addr)
				pc.memoVmblk = idx
				pc.memoHome = int8(home)
			}
			if home != c.Node() {
				spill = a.freeShard(c, pc, a.effTarget(pc.target), home, addr)
				flushHome = home
			} else if a.params.DisableSplitFreelist {
				spill = a.freeFastSingle(c, pc, a.effTarget(pc.target), addr)
			} else {
				spill = a.freeFast(c, pc, a.effTarget(pc.target), addr)
			}
		} else if a.params.DisableSplitFreelist {
			// Under pressure the cache's spill threshold is halved
			// (effTarget), so frees surrender surplus to the lower layers
			// sooner.
			spill = a.freeFastSingle(c, pc, a.effTarget(pc.target), addr)
		} else {
			spill = a.freeFast(c, pc, a.effTarget(pc.target), addr)
		}
		if ctl.enabled && !spill.Empty() {
			ops := pc.ops()
			delta = ops - pc.notedOps
			pc.notedOps = ops
			pc.target = ctl.curTarget()
			noted = true
		}
	})
	if !spill.Empty() {
		n := spill.Len()
		c.Work(insnRefill)
		switch {
		case flushHome >= 0:
			// A full remote shard: one batched putList straight to its
			// home pool — no per-block routing, one remote lock trip per
			// target remote frees.
			a.classes[cls].globals[flushHome].putList(c, spill)
			a.emit(cls, EvShardFlush, n)
		case a.nodes == 1:
			a.classes[cls].globals[0].putList(c, spill)
			a.emit(cls, EvCPUSpill, n)
		default:
			a.routeSpill(c, cls, spill)
			a.emit(cls, EvCPUSpill, n)
		}
	}
	if noted {
		ctl.noteCPU(a, c, cls, delta, 1)
	}
}

// routeSpill returns a spilled list's blocks to their home nodes' global
// pools: the dope vector answers "which node owns this block" for each
// block, the list is partitioned by home, and each partition is put to
// its node's pool. On a single-node machine the direct putList path is
// used instead and no per-block lookup happens. A CPU's cache may mix
// nodes (stolen blocks live beside local ones), so every spill routes.
// The partition buffer is the calling CPU's reusable spillScratch —
// taken empty, left empty — so this path allocates nothing per call.
func (a *Allocator) routeSpill(c *machine.CPU, cls int, spill blocklist.List) {
	per := a.spillScratch[c.ID()]
	for !spill.Empty() {
		b := spill.Pop(c, a.mem)
		per[a.vm.homeOf(c, b)].Push(c, a.mem, b)
	}
	for node := range per {
		if !per[node].Empty() {
			a.classes[cls].globals[node].putList(c, per[node].Take())
		}
	}
}

// allocLargeWithReclaim is the large path plus reclaim retries, so that
// multi-page allocations also benefit from low-memory recovery. As in
// allocClass, PressureCritical takes incremental steps with a retry
// after each, while the normal path keeps the single stop-the-world
// reclaim retry.
func (a *Allocator) allocLargeWithReclaim(c *machine.CPU, size uint64) (arena.Addr, error) {
	b, err := a.vmAllocLarge(c, size)
	if err == nil {
		return b, nil
	}
	if a.pressureLevel() == PressureCritical {
		for i := a.reclaimSteps(); i > 0; i-- {
			a.reclaimStep(c)
			if b, err = a.vmAllocLarge(c, size); err == nil {
				return b, nil
			}
		}
	} else {
		a.reclaim(c)
		if b, err = a.vmAllocLarge(c, size); err == nil {
			return b, nil
		}
	}
	return arena.NilAddr, exhaustErr(err)
}

// poison fills a freed block's payload (past the link word) with a
// pattern; poisonCheck verifies it on reallocation.
const poisonByte = 0xdb

func (a *Allocator) poison(addr arena.Addr, size uint32) {
	if size > 8 {
		a.mem.Fill(addr+8, uint64(size-8), poisonByte)
	}
}

func (a *Allocator) poisonCheck(addr arena.Addr, size uint32) {
	if size > 8 {
		if off, ok := a.mem.CheckFill(addr+8, uint64(size-8), poisonByte); !ok {
			panic(fmt.Sprintf("kmem: block %#x modified while free (offset %d)", addr, off+8))
		}
	}
}
