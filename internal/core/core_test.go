package core

import (
	"errors"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

func testAllocator(t *testing.T, ncpu int, physPages int64, p Params) (*Allocator, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = ncpu
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = physPages
	m := machine.New(cfg)
	if p.TargetFor == nil {
		p.RadixSort = true
	}
	a, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func defaultTestAllocator(t *testing.T) (*Allocator, *machine.Machine) {
	return testAllocator(t, 4, 1024, Params{RadixSort: true, Poison: true})
}

func checkOK(t *testing.T, a *Allocator) {
	t.Helper()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	b, err := a.Alloc(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b == arena.NilAddr {
		t.Fatal("nil block")
	}
	// Block must be usable: write the whole 128-byte class payload.
	m.Mem().Fill(b, 128, 0x5a)
	a.Free(c, b, 100)
	checkOK(t, a)
}

func TestDistinctBlocks(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	seen := map[arena.Addr]bool{}
	var got []arena.Addr
	for i := 0; i < 1000; i++ {
		b, err := a.Alloc(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[b] {
			t.Fatalf("block %#x handed out twice", b)
		}
		seen[b] = true
		got = append(got, b)
	}
	checkOK(t, a)
	for _, b := range got {
		a.Free(c, b, 64)
	}
	checkOK(t, a)
}

func TestWriteIntegrity(t *testing.T) {
	// Allocate many blocks, write a distinct pattern to each, verify all
	// patterns after the fact: overlapping blocks would corrupt them.
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	type alloc struct {
		addr arena.Addr
		pat  byte
		size uint64
	}
	var allocs []alloc
	sizes := []uint64{16, 24, 64, 100, 512, 2048}
	for i := 0; i < 600; i++ {
		sz := sizes[i%len(sizes)]
		b, err := a.Alloc(c, sz)
		if err != nil {
			t.Fatal(err)
		}
		pat := byte(i)
		m.Mem().Fill(b, sz, pat)
		allocs = append(allocs, alloc{b, pat, sz})
	}
	for _, al := range allocs {
		if off, ok := m.Mem().CheckFill(al.addr, al.size, al.pat); !ok {
			t.Fatalf("block %#x corrupted at offset %d", al.addr, off)
		}
		a.Free(c, al.addr, al.size)
	}
	checkOK(t, a)
}

func TestClassRounding(t *testing.T) {
	a, _ := defaultTestAllocator(t)
	cases := map[uint64]uint32{
		1: 16, 16: 16, 17: 32, 32: 32, 33: 64,
		64: 64, 100: 128, 4095: 4096, 4096: 4096,
	}
	for req, want := range cases {
		ck, err := a.GetCookie(req)
		if err != nil {
			t.Fatalf("GetCookie(%d): %v", req, err)
		}
		if ck.Size() != want {
			t.Fatalf("GetCookie(%d).Size = %d, want %d", req, ck.Size(), want)
		}
	}
}

func TestCookieInterface(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	ck, err := a.GetCookie(50)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Size() != 64 {
		t.Fatalf("cookie size %d", ck.Size())
	}
	b, err := a.AllocCookie(c, ck)
	if err != nil {
		t.Fatal(err)
	}
	a.FreeCookie(c, b, ck)
	checkOK(t, a)

	if _, err := a.GetCookie(0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("GetCookie(0) err = %v", err)
	}
	if _, err := a.GetCookie(5000); !errors.Is(err, ErrBadSize) {
		t.Fatalf("GetCookie(5000) err = %v", err)
	}
}

func TestBadSizes(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	if _, err := a.Alloc(c, 0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("Alloc(0) err = %v", err)
	}
}

func TestLargeAllocations(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	sizes := []uint64{4097, 8192, 16384, 65536, 1 << 20}
	var addrs []arena.Addr
	for _, sz := range sizes {
		b, err := a.Alloc(c, sz)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", sz, err)
		}
		m.Mem().Fill(b, sz, 0x77)
		addrs = append(addrs, b)
	}
	checkOK(t, a)
	for i, b := range addrs {
		a.Free(c, b, sizes[i])
	}
	checkOK(t, a)
	// After freeing, large spans must have been unmapped.
	st := a.Stats(c)
	if st.VM.LargeAllocs != uint64(len(sizes)) || st.VM.LargeFrees != uint64(len(sizes)) {
		t.Fatalf("large counters: %+v", st.VM)
	}
}

func TestFreeByAddr(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	b1, _ := a.Alloc(c, 64)
	b2, _ := a.Alloc(c, 8192)
	a.FreeByAddr(c, b1)
	a.FreeByAddr(c, b2)
	checkOK(t, a)
}

func TestDrainAllReturnsEverything(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	var addrs []arena.Addr
	for i := 0; i < 500; i++ {
		b, err := a.Alloc(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, b)
	}
	for _, b := range addrs {
		a.Free(c, b, 64)
	}
	a.DrainAll(c)
	checkOK(t, a)
	// Everything free: only vmblk headers remain mapped.
	st := a.Stats(c)
	if st.Phys.Mapped != int64(8*int(st.VM.VmblkCreates)) {
		t.Fatalf("after drain: %d pages mapped, %d vmblks", st.Phys.Mapped, st.VM.VmblkCreates)
	}
	if st.Classes[2].HeldPerCPU != 0 || st.Classes[2].HeldGlobal != 0 {
		t.Fatalf("blocks still cached: %+v", st.Classes[2])
	}
}

func TestCrossCPUAllocFree(t *testing.T) {
	// The global layer's purpose: CPU 0 allocates, CPU 1 frees, blocks
	// flow back without coalescing.
	a, m := defaultTestAllocator(t)
	c0, c1 := m.CPU(0), m.CPU(1)
	ck, _ := a.GetCookie(256)
	for round := 0; round < 200; round++ {
		var bs []arena.Addr
		for i := 0; i < 20; i++ {
			b, err := a.AllocCookie(c0, ck)
			if err != nil {
				t.Fatal(err)
			}
			bs = append(bs, b)
		}
		for _, b := range bs {
			a.FreeCookie(c1, b, ck)
		}
	}
	checkOK(t, a)
	st := a.Stats(c0)
	cs := st.Classes[4] // 256-byte class
	if cs.GlobalPuts == 0 {
		t.Fatal("cross-CPU traffic never reached the global layer")
	}
	// Coalescing must have been rare relative to global traffic.
	if cs.GlobalRefills+cs.GlobalSpills > (cs.GlobalGets+cs.GlobalPuts)/2 {
		t.Fatalf("global layer thrashing: %+v", cs)
	}
}

func TestPerCPUMissRateBound(t *testing.T) {
	// Best-case loop: after warmup, the per-CPU layer must satisfy all
	// operations (miss rate ~0); with a churning working set the miss
	// rate must stay below 1/target.
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	ck, _ := a.GetCookie(16)

	// Warm up.
	b, _ := a.AllocCookie(c, ck)
	a.FreeCookie(c, b, ck)
	pre := a.Stats(c).Classes[0]

	for i := 0; i < 10000; i++ {
		b, err := a.AllocCookie(c, ck)
		if err != nil {
			t.Fatal(err)
		}
		a.FreeCookie(c, b, ck)
	}
	post := a.Stats(c).Classes[0]
	refills := post.AllocRefills - pre.AllocRefills
	spills := post.FreeSpills - pre.FreeSpills
	if refills != 0 || spills != 0 {
		t.Fatalf("best-case loop left the per-CPU cache: refills=%d spills=%d", refills, spills)
	}
}

func TestMissRateBoundedByTarget(t *testing.T) {
	// A FIFO working set of depth > 2*target forces steady traffic; the
	// miss rates must still respect the 1/target bound.
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	ck, _ := a.GetCookie(128)
	cls := a.classFor(128)
	target := a.Target(cls)

	var fifo []arena.Addr
	for i := 0; i < 20000; i++ {
		b, err := a.AllocCookie(c, ck)
		if err != nil {
			t.Fatal(err)
		}
		fifo = append(fifo, b)
		if len(fifo) > 100 {
			a.FreeCookie(c, fifo[0], ck)
			fifo = fifo[1:]
		}
	}
	st := a.Stats(c).Classes[cls]
	if r := st.AllocMissRate(); r > 1.0/float64(target)+1e-9 {
		t.Fatalf("alloc miss rate %.4f exceeds 1/target=%.4f", r, 1.0/float64(target))
	}
	if r := st.FreeMissRate(); r > 1.0/float64(target)+1e-9 {
		t.Fatalf("free miss rate %.4f exceeds bound", r)
	}
}

func TestExhaustionAndRecovery(t *testing.T) {
	// Paper worst case: allocate until memory is exhausted, free all,
	// repeat with the next size — "an allocator that does no coalescing
	// would fail to complete this benchmark".
	a, m := testAllocator(t, 2, 256, Params{RadixSort: true})
	c := m.CPU(0)
	for _, size := range []uint64{16, 64, 256, 1024, 4096} {
		var addrs []arena.Addr
		for {
			b, err := a.Alloc(c, size)
			if err != nil {
				if !errors.Is(err, ErrNoMemory) {
					t.Fatalf("size %d: %v", size, err)
				}
				break
			}
			addrs = append(addrs, b)
		}
		if len(addrs) == 0 {
			t.Fatalf("size %d: nothing allocated", size)
		}
		for _, b := range addrs {
			a.Free(c, b, size)
		}
		checkOK(t, a)
	}
	// The final size must have been able to use nearly all memory even
	// though earlier sizes fragmented it — that is what online
	// coalescing buys.
	st := a.Stats(c)
	if st.Phys.HighWater < 200 {
		t.Fatalf("high water only %d of 256 pages", st.Phys.HighWater)
	}
}

func TestLastBufferAnyCPU(t *testing.T) {
	// Design goal 5: a CPU must be able to allocate the last remaining
	// buffer even when other CPUs' caches hold stranded blocks.
	a, m := testAllocator(t, 4, 64, Params{RadixSort: true})
	c0, c1 := m.CPU(0), m.CPU(1)

	// CPU 0 allocates everything, freeing a few blocks back into its own
	// cache so they are stranded there.
	var addrs []arena.Addr
	for {
		b, err := a.Alloc(c0, 512)
		if err != nil {
			break
		}
		addrs = append(addrs, b)
	}
	if len(addrs) < 8 {
		t.Fatalf("only %d allocations", len(addrs))
	}
	for _, b := range addrs[:6] {
		a.Free(c0, b, 512)
	}
	// CPU 1 must succeed now despite CPU 0's cache holding the free
	// blocks: the reclaim path drains them.
	b, err := a.Alloc(c1, 512)
	if err != nil {
		t.Fatalf("CPU 1 could not allocate the last buffers: %v", err)
	}
	a.Free(c1, b, 512)
	if a.Reclaims() == 0 {
		t.Fatal("reclaim path never ran")
	}
	for _, b := range addrs[6:] {
		a.Free(c0, b, 512)
	}
	a.DrainAll(c0)
	checkOK(t, a)
}

func TestSpanCoalescing(t *testing.T) {
	// Free adjacent large spans and verify they merge: after freeing
	// everything, one maximal span should be allocatable.
	a, m := testAllocator(t, 1, 2048, Params{RadixSort: true})
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes

	var spans []arena.Addr
	for i := 0; i < 16; i++ {
		b, err := a.Alloc(c, 4*pageBytes)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, b)
	}
	// Free in an interleaved order to exercise left/right/both merges.
	for _, i := range []int{1, 3, 5, 7, 9, 11, 13, 15, 0, 2, 4, 6, 8, 10, 12, 14} {
		a.Free(c, spans[i], 4*pageBytes)
	}
	checkOK(t, a)
	// All 64 pages must now form one span: a single 64-page allocation
	// must succeed without growing physical high water beyond one vmblk
	// worth of churn.
	b, err := a.Alloc(c, 64*pageBytes)
	if err != nil {
		t.Fatalf("coalesced span not available: %v", err)
	}
	a.Free(c, b, 64*pageBytes)
	checkOK(t, a)
	if st := a.Stats(c); st.VM.VmblkCreates != 1 {
		t.Fatalf("needed %d vmblks; spans did not coalesce", st.VM.VmblkCreates)
	}
}

func TestPageReleasedWhenAllBlocksFree(t *testing.T) {
	a, m := testAllocator(t, 1, 512, Params{RadixSort: true})
	c := m.CPU(0)
	ck, _ := a.GetCookie(1024)
	// Allocate 4 pages' worth, then free all and drain.
	var bs []arena.Addr
	for i := 0; i < 16; i++ {
		b, _ := a.AllocCookie(c, ck)
		bs = append(bs, b)
	}
	before := a.Stats(c).Phys.Mapped
	for _, b := range bs {
		a.FreeCookie(c, b, ck)
	}
	a.DrainAll(c)
	after := a.Stats(c).Phys.Mapped
	if after >= before {
		t.Fatalf("pages not released: %d -> %d", before, after)
	}
	st := a.Stats(c)
	if st.Classes[a.classFor(1024)].PageFrees == 0 {
		t.Fatal("no page was released")
	}
	checkOK(t, a)
}

func TestPoisonDetectsUseAfterFree(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	b, _ := a.Alloc(c, 64)
	a.Free(c, b, 64)
	// Scribble on the freed block past the link word.
	m.Mem().Store64(b+16, 0x41414141)
	defer func() {
		if recover() == nil {
			t.Fatal("use-after-free not detected")
		}
	}()
	// Drain the per-CPU cache back through global? Not needed: the same
	// block comes back on the next allocation from main.
	for i := 0; i < 32; i++ {
		nb, err := a.Alloc(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		if nb == b {
			return // poisonCheck should have panicked before this
		}
	}
	t.Fatal("freed block never reallocated")
}

func TestGblTargetBoundsGlobalMissRate(t *testing.T) {
	// Force sustained cross-CPU traffic and verify the global layer's
	// refill rate respects ~1/gbltarget.
	a, m := defaultTestAllocator(t)
	c0, c1 := m.CPU(0), m.CPU(1)
	ck, _ := a.GetCookie(64)
	cls := a.classFor(64)

	for round := 0; round < 3000; round++ {
		var bs []arena.Addr
		for i := 0; i < 12; i++ {
			b, err := a.AllocCookie(c0, ck)
			if err != nil {
				t.Fatal(err)
			}
			bs = append(bs, b)
		}
		for _, b := range bs {
			a.FreeCookie(c1, b, ck)
		}
	}
	st := a.Stats(c0).Classes[cls]
	gbl := a.classes[cls].gbltarget
	if st.GlobalGets == 0 {
		t.Fatal("no global traffic")
	}
	bound := 1.0/float64(gbl) + 0.02
	if r := st.GlobalGetMissRate(); r > bound {
		t.Fatalf("global get miss rate %.4f above ~1/gbltarget %.4f", r, bound)
	}
	if r := st.GlobalPutMissRate(); r > bound {
		t.Fatalf("global put miss rate %.4f above ~1/gbltarget %.4f", r, bound)
	}
}

func TestStatsSnapshot(t *testing.T) {
	a, m := defaultTestAllocator(t)
	c := m.CPU(0)
	for i := 0; i < 100; i++ {
		b, _ := a.Alloc(c, 32)
		a.Free(c, b, 32)
	}
	st := a.Stats(c)
	cs := st.Classes[a.classFor(32)]
	if cs.Allocs != 100 || cs.Frees != 100 {
		t.Fatalf("counts: %+v", cs)
	}
	if cs.Size != 32 {
		t.Fatalf("size: %+v", cs)
	}
}

func TestSplitFreelistGroupMoves(t *testing.T) {
	// Under sustained cross-CPU flow, the split main/aux freelist moves
	// blocks through the global layer in whole target-sized groups; the
	// single-list ablation moves them one at a time, multiplying the
	// global lock traffic roughly target-fold.
	run := func(disable bool) uint64 {
		a, m := testAllocator(t, 2, 1024, Params{RadixSort: true, DisableSplitFreelist: disable})
		c0, c1 := m.CPU(0), m.CPU(1)
		ck, _ := a.GetCookie(64)
		cls := a.classFor(64)
		for round := 0; round < 500; round++ {
			var bs []arena.Addr
			for i := 0; i < 10; i++ {
				b, err := a.AllocCookie(c0, ck)
				if err != nil {
					t.Fatal(err)
				}
				bs = append(bs, b)
			}
			for _, b := range bs {
				a.FreeCookie(c1, b, ck)
			}
		}
		st := a.Stats(c0).Classes[cls]
		return st.GlobalGets + st.GlobalPuts
	}
	split := run(false)
	single := run(true)
	if single < 5*split {
		t.Fatalf("split=%d single=%d: group moves not effective", split, single)
	}
}

func TestConfigurationErrors(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.MemBytes = 16 << 20
	m := machine.New(cfg)
	bad := []Params{
		{Classes: []uint32{15}},
		{Classes: []uint32{32, 16}},
		{Classes: []uint32{16, 48}},
		{Classes: []uint32{16, 8192}},
		{TargetFor: func(uint32) int { return 0 }},
	}
	for i, p := range bad {
		if _, err := New(m, p); err == nil {
			t.Errorf("params %d accepted", i)
		}
	}
}

func TestDeterministicSimulation(t *testing.T) {
	run := func() int64 {
		a, m := testAllocator(t, 8, 1024, Params{RadixSort: true})
		ck, _ := a.GetCookie(64)
		m.RunFor(0.002, func(c *machine.CPU) {
			b, err := a.AllocCookie(c, ck)
			if err == nil {
				a.FreeCookie(c, b, ck)
			}
		})
		var sum int64
		for i := 0; i < m.NumCPUs(); i++ {
			sum += m.CPU(i).Stats().Cycles
		}
		return sum
	}
	if run() != run() {
		t.Fatal("simulation not deterministic")
	}
}
