package core

import (
	"errors"
	"testing"

	"kmem/internal/arena"
)

// Layer-level unit tests: global pool list management, page-pool radix
// behaviour, and failure injection at each layer boundary.

func TestGlobalBucketRegroupsOddLists(t *testing.T) {
	a, m := testAllocator(t, 1, 1024, Params{RadixSort: true})
	c := m.CPU(0)
	cls := a.classFor(64)
	g := a.classes[cls].globals[0]
	target := a.classes[cls].target

	// Feed the global layer odd-sized lists (as low-memory cache flushes
	// do) and verify the bucket regroups them into exactly-target lists.
	feed := func(n int) {
		var l = make([]arena.Addr, 0, n)
		for i := 0; i < n; i++ {
			b, err := a.Alloc(c, 64)
			if err != nil {
				t.Fatal(err)
			}
			l = append(l, b)
		}
		// Drain the per-CPU cache so we can hand lists straight to the
		// global layer.
		a.DrainCPU(c, 0)
		_ = l
	}
	feed(3)
	feed(4)
	feed(6)

	g.lk.Acquire(c)
	for i, lst := range g.lists {
		if lst.Len() != target {
			t.Errorf("global list %d has %d blocks, want %d", i, lst.Len(), target)
		}
	}
	bucketLen := g.bucket.Len()
	g.lk.Release(c)
	if bucketLen >= target {
		t.Errorf("bucket holds %d >= target %d", bucketLen, target)
	}
	checkOK(t, a)
}

func TestGlobalSpillRespectsCapacity(t *testing.T) {
	a, m := testAllocator(t, 1, 2048, Params{RadixSort: true})
	c := m.CPU(0)
	cls := a.classFor(32)
	g := a.classes[cls].globals[0]
	target := a.classes[cls].target
	capBlocks := g.capacityLists() * target

	// Push far more blocks through the global layer than it may hold.
	var bs []arena.Addr
	for i := 0; i < capBlocks*4; i++ {
		b, err := a.Alloc(c, 32)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	for _, b := range bs {
		a.Free(c, b, 32)
	}
	a.DrainCPU(c, 0)

	held := g.blocksHeld(c)
	if held > capBlocks+target {
		t.Fatalf("global layer holds %d blocks, capacity %d", held, capBlocks)
	}
	st := a.Stats(c).Classes[cls]
	if st.GlobalSpills == 0 {
		t.Fatal("no spill happened despite overflow")
	}
	checkOK(t, a)
}

func TestRadixPrefersFullestPage(t *testing.T) {
	// Small targets so a refill moves exactly 2 blocks: the radix policy
	// must pull them from the pages with the fewest free blocks.
	a, m := testAllocator(t, 1, 2048, Params{
		RadixSort:    true,
		TargetFor:    func(uint32) int { return 2 },
		GblTargetFor: func(uint32) int { return 1 },
	})
	c := m.CPU(0)
	ck, _ := a.GetCookie(512) // 8 blocks per page

	pageOf := func(b arena.Addr) int32 { return int32(b >> a.pageShift) }
	byPage := map[int32][]arena.Addr{}
	for i := 0; i < 64; i++ {
		b, err := a.AllocCookie(c, ck)
		if err != nil {
			t.Fatal(err)
		}
		byPage[pageOf(b)] = append(byPage[pageOf(b)], b)
	}
	var full []int32
	for pg, bs := range byPage {
		if len(bs) == 8 {
			full = append(full, pg)
		}
	}
	if len(full) < 2 {
		t.Fatalf("only %d fully owned pages", len(full))
	}
	pgA, pgB := full[0], full[1]
	// Page A: 1 free (7 in use). Page B: 7 free (1 in use).
	a.FreeCookie(c, byPage[pgA][0], ck)
	for _, b := range byPage[pgB][:7] {
		a.FreeCookie(c, b, ck)
	}
	a.DrainAll(c)

	pdA, pdB := a.vm.pdOf(pgA), a.vm.pdOf(pgB)
	if pdA.nFree != 1 || pdB.nFree != 7 {
		t.Fatalf("occupancy: A=%d B=%d free", pdA.nFree, pdB.nFree)
	}
	// One allocation triggers a 2-block refill: the radix policy takes
	// page A's single free block first (fewest free), then one from the
	// next-fullest page.
	nb, err := a.AllocCookie(c, ck)
	if err != nil {
		t.Fatal(err)
	}
	if pdA.nFree != 0 {
		t.Fatalf("page A still has %d free: fullest page not drained first", pdA.nFree)
	}
	if pdB.nFree < 6 {
		t.Fatalf("page B drained too far: %d free", pdB.nFree)
	}

	// Clean up everything still held.
	a.FreeCookie(c, nb, ck)
	for pg, bs := range byPage {
		switch pg {
		case pgA:
			for _, b := range bs[1:] {
				a.FreeCookie(c, b, ck)
			}
		case pgB:
			a.FreeCookie(c, bs[7], ck)
		default:
			for _, b := range bs {
				a.FreeCookie(c, b, ck)
			}
		}
	}
	a.DrainAll(c)
	checkOK(t, a)
}

func TestFIFOAblationIgnoresOccupancy(t *testing.T) {
	a, m := testAllocator(t, 1, 2048, Params{RadixSort: false})
	c := m.CPU(0)
	ck, _ := a.GetCookie(512)
	// Just exercise the FIFO path end to end.
	var bs []arena.Addr
	for i := 0; i < 64; i++ {
		b, err := a.AllocCookie(c, ck)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	for i, b := range bs {
		if i%3 != 0 {
			a.FreeCookie(c, b, ck)
		}
	}
	a.DrainAll(c)
	checkOK(t, a)
	for i, b := range bs {
		if i%3 == 0 {
			a.FreeCookie(c, b, ck)
		}
	}
	a.DrainAll(c)
	checkOK(t, a)
}

func TestPhysExhaustionDuringCarve(t *testing.T) {
	// Exactly enough physical pages for the vmblk header and nothing
	// else: the first small allocation must fail cleanly through all
	// four layers.
	a, m := testAllocator(t, 1, 8, Params{RadixSort: true})
	c := m.CPU(0)
	if _, err := a.Alloc(c, 64); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
	// The failed attempt must not leak partial state.
	checkOK(t, a)
	if got := m.Phys().Mapped(); got != 8 {
		t.Fatalf("mapped %d pages after failure, want 8 (header only)", got)
	}
}

func TestPhysExhaustionHeaderUnmappable(t *testing.T) {
	// Fewer pages than even a vmblk header needs: creation itself fails.
	a, m := testAllocator(t, 1, 4, Params{RadixSort: true})
	c := m.CPU(0)
	if _, err := a.Alloc(c, 64); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
	if got := m.Phys().Mapped(); got != 0 {
		t.Fatalf("mapped %d pages after header failure", got)
	}
	checkOK(t, a)
}

func TestPartialRefillUnderPressure(t *testing.T) {
	// With memory for only a few pages, a refill that wants
	// gbltarget*target blocks must return what it can get rather than
	// failing outright.
	a, m := testAllocator(t, 1, 10, Params{RadixSort: true}) // 8 header + 2 data pages
	c := m.CPU(0)
	got := 0
	var bs []arena.Addr
	for {
		b, err := a.Alloc(c, 16) // 256 blocks per page
		if err != nil {
			break
		}
		bs = append(bs, b)
		got++
	}
	if got != 2*256 {
		t.Fatalf("allocated %d 16-byte blocks from 2 pages, want 512", got)
	}
	for _, b := range bs {
		a.Free(c, b, 16)
	}
	a.DrainAll(c)
	checkOK(t, a)
}

func TestReclaimRecoversOtherClassPages(t *testing.T) {
	// Exhaust memory with small blocks cached across CPUs, then ask for
	// a large block: reclaim must flush the small-block caches, release
	// their pages, and satisfy the large request.
	a, m := testAllocator(t, 4, 64, Params{RadixSort: true})
	c0 := m.CPU(0)

	// Fill and free small blocks on every CPU so caches + global pools
	// retain pages.
	for cpu := 0; cpu < 4; cpu++ {
		c := m.CPU(cpu)
		var bs []arena.Addr
		for i := 0; i < 200; i++ {
			b, err := a.Alloc(c, 128)
			if err != nil {
				break
			}
			bs = append(bs, b)
		}
		for _, b := range bs {
			a.Free(c, b, 128)
		}
	}
	avail := int64(m.Phys().Available())
	// Request more pages than are currently available (they are tied up
	// in caches): only reclaim can satisfy this.
	if avail <= 0 {
		t.Skip("nothing cached")
	}
	big := uint64(avail+10) * m.Config().PageBytes
	b, err := a.Alloc(c0, big)
	if err != nil {
		t.Fatalf("large alloc with reclaim failed (avail was %d pages): %v", avail, err)
	}
	if a.Reclaims() == 0 {
		t.Fatal("reclaim never ran")
	}
	a.Free(c0, b, big)
	a.DrainAll(c0)
	checkOK(t, a)
}

func TestStatsHeldCountsAccurate(t *testing.T) {
	a, m := testAllocator(t, 2, 1024, Params{RadixSort: true})
	c := m.CPU(0)
	ck, _ := a.GetCookie(64)
	cls := a.classFor(64)

	var bs []arena.Addr
	for i := 0; i < 25; i++ {
		b, _ := a.AllocCookie(c, ck)
		bs = append(bs, b)
	}
	for _, b := range bs {
		a.FreeCookie(c, b, ck)
	}
	st := a.Stats(c).Classes[cls]
	// Conservation: blocks carved from pages = cached + free-in-pages.
	carved := st.BlockGets // blocks handed up by the page layer
	returned := st.BlockPuts
	cached := uint64(st.HeldPerCPU + st.HeldGlobal)
	if carved-returned != cached {
		t.Fatalf("conservation: carved %d - returned %d != cached %d", carved, returned, cached)
	}
}
