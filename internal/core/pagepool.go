package core

import (
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/blocklist"
	"kmem/internal/machine"
)

// pagePool is one size class's coalesce-to-page layer on one NUMA node
// (one pool per class on a single-node machine). It gathers blocks of
// its size and coalesces them into pages: each split page's descriptor
// carries a per-page freelist and a count of free blocks, so the layer
// "can immediately determine when all of the blocks in a given page have
// been freed up" — no mark-and-sweep, no offline sorting. Pages with free
// blocks are kept on a radix-sorted freelist (indexed by free count) so
// that "pages with the fewest free blocks will be allocated from most
// frequently", giving nearly-free pages time to drain completely.
//
// Home-node invariant: every page in the pool is carved from a vmblk
// homed on the pool's node, so its radix-sorted freelists and the pages
// they thread through stay node-local.
type pagePool struct {
	al            *Allocator
	cls           int
	node          int
	size          uint32
	blocksPerPage int

	lk   *machine.SpinLock
	line machine.Line

	// buckets[k] lists split pages with exactly k free blocks
	// (1 <= k <= blocksPerPage). minHint accelerates the
	// fewest-free-first scan.
	buckets []pdList
	minHint int

	// fifo replaces buckets when Params.RadixSort is false (ablation A3).
	fifo pdList

	// stk is the lock-free stack of parked fully-free pages
	// (Params.LockFree): a page whose last block comes home is parked
	// here — split descriptor, in-page freelist and residency intact,
	// filed in no bucket — instead of round-tripping through the vmblk
	// layer's span lock, and the next refill reclaims it with one CAS
	// pop (stkLf is the commit model), skipping the span search, the
	// page map, the zero fill and the carve-link loop. Bounded to
	// lfPageStackCap pages; drains flush it (drainParked) and pressure
	// bypasses it, so the stack never delays memory the system needs.
	stk   []int32
	stkLf lfState

	// ev tallies this pool's slice of the event spine (EvBlockGet,
	// EvBlockPut, EvPageCarve, EvPageFree), written under lk.
	ev eventCounts
}

// lfPageStackCap bounds the parked-page stack: enough to absorb the
// carve/free flutter of a steady workload, small enough that the
// parked residency stays a rounding error against the heap.
const lfPageStackCap = 4

func newPagePool(a *Allocator, cls, node int, size uint32) *pagePool {
	p := &pagePool{
		al:            a,
		cls:           cls,
		node:          node,
		size:          size,
		blocksPerPage: int(a.m.Config().PageBytes / uint64(size)),
		lk:            machine.NewSpinLockOn(a.m, node),
		line:          a.m.NewMetaLineOn(node),
		fifo:          newPdList(),
	}
	p.buckets = make([]pdList, p.blocksPerPage+1)
	for i := range p.buckets {
		p.buckets[i] = newPdList()
	}
	p.minHint = p.blocksPerPage + 1
	if a.lockFree {
		p.stkLf = newLfState(a.m, node)
	}
	return p
}

// noteLockWait attributes the just-completed Acquire's spin cycles to
// the event spine (EvLockWait); see globalPool.noteLockWait.
func (p *pagePool) noteLockWait() {
	if w := p.lk.LastWait(); w > 0 {
		p.ev[EvLockWait] += uint64(w)
		p.al.emit(p.cls, EvLockWait, int(w))
	}
}

// pickPage returns a split page with free blocks — the one with the
// fewest free blocks under the paper's radix policy, or FIFO order under
// the ablation — or -1 when none exists.
func (p *pagePool) pickPage(c *machine.CPU) int32 {
	if !p.al.params.RadixSort {
		return p.fifo.head
	}
	for k := p.minHint; k <= p.blocksPerPage; k++ {
		c.Work(1)
		if !p.buckets[k].empty() {
			p.minHint = k
			return p.buckets[k].head
		}
	}
	p.minHint = p.blocksPerPage + 1
	return -1
}

// fileIn places page pg (with nFree free blocks) on the proper list.
func (p *pagePool) fileIn(c *machine.CPU, pg int32, nFree int) {
	if nFree <= 0 || nFree > p.blocksPerPage {
		panic(fmt.Sprintf("kmem: fileIn nFree=%d", nFree))
	}
	if p.al.params.RadixSort {
		p.al.vm.pdPush(c, &p.buckets[nFree], pg)
		if nFree < p.minHint {
			p.minHint = nFree
		}
	} else {
		p.al.vm.pdPush(c, &p.fifo, pg)
	}
}

// fileOut removes page pg (currently filed with nFree free blocks).
func (p *pagePool) fileOut(c *machine.CPU, pg int32, nFree int) {
	if p.al.params.RadixSort {
		p.al.vm.pdRemove(c, &p.buckets[nFree], pg)
	} else {
		p.al.vm.pdRemove(c, &p.fifo, pg)
	}
}

// refile moves page pg between radix buckets after its free count changed
// from oldFree to newFree. Under FIFO the page stays put.
func (p *pagePool) refile(c *machine.CPU, pg int32, oldFree, newFree int) {
	if !p.al.params.RadixSort {
		return
	}
	p.fileOut(c, pg, oldFree)
	p.fileIn(c, pg, newFree)
}

// carvePage obtains one page homed on the pool's node from the vmblk
// layer and splits it into blocks, building the per-page freelist inside
// the page itself.
func (p *pagePool) carvePage(c *machine.CPU) (int32, error) {
	if p.al.params.Faults.Should(FaultPagePoolRefill) {
		p.al.noteFault()
		return -1, ErrNoMemory
	}
	pg, err := p.al.vm.allocPages(c, 1, p.node)
	if err != nil {
		return -1, err
	}
	c.Work(insnPageSetup)
	pd := p.al.vm.pdOf(pg)
	pd.state = pdSplit
	pd.class = int8(p.cls)
	pd.spanPages = 1
	if p.al.hd != nil {
		p.al.hd.forgetPage(c, pg)
	}
	base := p.al.vm.pageAddr(pg)
	mem := p.al.mem
	// Link the blocks front-to-back so the freelist ascends through the
	// page, as carving code does.
	var head arena.Addr
	for i := p.blocksPerPage - 1; i >= 0; i-- {
		b := base + arena.Addr(i)*arena.Addr(p.size)
		mem.Store64(b, head)
		c.WriteAddr(b)
		if p.al.params.Poison {
			p.al.poison(b, p.size)
		}
		head = b
	}
	pd.freeHead = head
	pd.nFree = uint16(p.blocksPerPage)
	c.Write(pd.line)
	p.ev[EvPageCarve]++
	p.al.emit(p.cls, EvPageCarve, 1)
	p.fileIn(c, pg, p.blocksPerPage)
	return pg, nil
}

// getLists fills up to nLists lists of exactly target blocks each (the
// last may be partial when memory runs low), allocating fresh pages from
// the vmblk layer as needed. It returns the lists built; an empty result
// means no memory could be found at this layer.
func (p *pagePool) getLists(c *machine.CPU, nLists, target int) ([]blocklist.List, error) {
	p.lk.Acquire(c)
	p.noteLockWait()
	defer p.lk.Release(c)
	c.Read(p.line)

	var out []blocklist.List
	var cur blocklist.List
	var lastErr error
	want := nLists * target
	got := 0
	for got < want {
		pg := p.pickPage(c)
		if pg == -1 && p.al.lockFree {
			pg = p.popParked(c)
		}
		if pg == -1 {
			var err error
			pg, err = p.carvePage(c)
			if err != nil {
				lastErr = err
				break
			}
		}
		pd := p.al.vm.pdOf(pg)
		c.Read(pd.line)
		oldFree := int(pd.nFree)
		for pd.nFree > 0 && got < want {
			c.Work(insnPageOp)
			b := pd.freeHead
			pd.freeHead = p.al.mem.Load64(b)
			c.ReadAddr(b)
			pd.nFree--
			cur.Push(c, p.al.mem, b)
			got++
			p.ev[EvBlockGet]++
			if cur.Len() == target {
				out = append(out, cur.Take())
			}
		}
		c.Write(pd.line)
		if pd.nFree == 0 {
			p.fileOut(c, pg, oldFree)
		} else {
			p.refile(c, pg, oldFree, int(pd.nFree))
		}
	}
	if !cur.Empty() {
		out = append(out, cur.Take())
	}
	c.Write(p.line)
	p.al.emit(p.cls, EvBlockGet, got)
	if len(out) == 0 {
		if lastErr == nil {
			lastErr = ErrNoMemory
		}
		return nil, lastErr
	}
	return out, nil
}

// putBlocks returns blocks to their pages one at a time (each block must
// be looked up through the dope vector — the cost the paper notes makes
// worst-case frees of small blocks dearer than allocations). Pages whose
// free count reaches blocks-per-page are released to the vmblk layer
// immediately.
func (p *pagePool) putBlocks(c *machine.CPU, blocks blocklist.List) {
	n := blocks.Len()
	p.lk.Acquire(c)
	p.noteLockWait()
	defer p.lk.Release(c)
	c.Read(p.line)
	for !blocks.Empty() {
		b := blocks.Pop(c, p.al.mem)
		p.putBlockLocked(c, b)
	}
	c.Write(p.line)
	p.al.emit(p.cls, EvBlockPut, n)
}

func (p *pagePool) putBlockLocked(c *machine.CPU, b arena.Addr) {
	c.Work(insnPageOp)
	pd, pg := p.al.vm.lookup(c, b)
	if pd.state != pdSplit || int(pd.class) != p.cls {
		panic(fmt.Sprintf("kmem: block %#x returned to class %d but page is %s/class %d",
			b, p.cls, pdStateName(pd.state), pd.class))
	}
	if home := p.al.vm.nodeOfPage(pg); home != p.node {
		panic(fmt.Sprintf("kmem: block %#x homed on node %d returned to node %d pool",
			b, home, p.node))
	}
	if pd.flags&pdfQuarantined != 0 {
		// Quarantined page (harden.go): park the block on the page's own
		// freelist for post-mortem — never refile the page, never give
		// it back, even when every block has come home.
		p.al.mem.Store64(b, pd.freeHead)
		c.WriteAddr(b)
		pd.freeHead = b
		pd.nFree++
		c.Write(pd.line)
		p.al.hd.qObjects.Add(1)
		p.al.hd.qBytes.Add(uint64(p.size))
		return
	}
	oldFree := int(pd.nFree)
	p.al.mem.Store64(b, pd.freeHead)
	c.WriteAddr(b)
	pd.freeHead = b
	pd.nFree++
	c.Write(pd.line)
	p.ev[EvBlockPut]++
	if int(pd.nFree) == p.blocksPerPage {
		if p.al.lockFree && len(p.stk) < lfPageStackCap && p.al.pressureLevel() < PressureLow {
			// Park the fully-free page on the lock-free stack instead of
			// releasing its span: it keeps its split descriptor and
			// in-page freelist, is filed in no bucket, and the next
			// refill reclaims it with one CAS pop. Not under pressure —
			// then the system wants the frames, not a warm page.
			if oldFree > 0 {
				p.fileOut(c, pg, oldFree)
			}
			if r := p.stkLf.commit(c, func() { c.Write(pd.line) }); r > 0 {
				p.ev[EvCASRetry] += uint64(r)
			}
			p.stk = append(p.stk, pg)
			return
		}
		// Every block in the page is free: give the page back at once.
		c.Work(insnPageSetup)
		if oldFree > 0 {
			p.fileOut(c, pg, oldFree)
		}
		pd.freeHead = arena.NilAddr
		pd.nFree = 0
		pd.class = -1
		if p.al.hd != nil {
			// The page is leaving the split state; its owner slots
			// must not survive into the page's next life.
			p.al.hd.forgetPage(c, pg)
		}
		p.ev[EvPageFree]++
		p.al.emit(p.cls, EvPageFree, 1)
		p.al.vm.freePages(c, pg, 1)
		return
	}
	if oldFree == 0 {
		p.fileIn(c, pg, int(pd.nFree))
	} else {
		p.refile(c, pg, oldFree, int(pd.nFree))
	}
}

// popParked reclaims one parked fully-free page for the refill path
// (caller holds p.lk): one CAS pop, then the page is filed back in with
// its full freelist, ready for the pick loop. Returns -1 when nothing
// is parked. Against the span path it replaces — span search under the
// vmblk lock, PageMapCycles, PageZeroCycles, and the carve-link loop —
// the pop is the whole point of the stack.
func (p *pagePool) popParked(c *machine.CPU) int32 {
	if len(p.stk) == 0 {
		c.Read(p.stkLf.line)
		return -1
	}
	if r := p.stkLf.commit(c, nil); r > 0 {
		p.ev[EvCASRetry] += uint64(r)
	}
	pg := p.stk[len(p.stk)-1]
	p.stk = p.stk[:len(p.stk)-1]
	p.fileIn(c, pg, p.blocksPerPage)
	return pg
}

// drainParked releases every parked page to the vmblk layer. Every
// drain path (reclaim, DrainAll, incremental reclaim steps) reaches it
// through globalPool.drainAll, so parked pages never outlive a drain
// and the quiescent heap still collapses to its header-pages floor.
func (p *pagePool) drainParked(c *machine.CPU) {
	if len(p.stk) == 0 {
		return
	}
	p.lk.Acquire(c)
	p.noteLockWait()
	for len(p.stk) > 0 {
		pg := p.stk[len(p.stk)-1]
		p.stk = p.stk[:len(p.stk)-1]
		pd := p.al.vm.pdOf(pg)
		c.Work(insnPageSetup)
		pd.freeHead = arena.NilAddr
		pd.nFree = 0
		pd.class = -1
		if p.al.hd != nil {
			p.al.hd.forgetPage(c, pg)
		}
		p.ev[EvPageFree]++
		p.al.emit(p.cls, EvPageFree, 1)
		p.al.vm.freePages(c, pg, 1)
	}
	p.lk.Release(c)
}
