package core

import (
	"errors"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/faultpoint"
	"kmem/internal/machine"
)

// faultAllocator builds a Sim allocator with an armed fault set. Plenty
// of physical memory: these tests exercise injected failures, not real
// exhaustion.
func faultAllocator(t *testing.T, fs *faultpoint.Set) (*Allocator, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 2
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 4096
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, Faults: fs})
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func TestFaultVmblkCarveFailsTyped(t *testing.T) {
	// With vmblk carving failing unconditionally, the very first small
	// allocation cannot create address space: the error must be the typed
	// ErrNoVA (address-space exhaustion, not frame shortage), and no
	// physical pages may leak from the aborted attempt.
	fs := faultpoint.New(1)
	fs.Arm(FaultVmblkCarve, faultpoint.Spec{}) // fire every time
	a, m := faultAllocator(t, fs)
	c := m.CPU(0)

	_, err := a.Alloc(c, 64)
	if !errors.Is(err, ErrNoVA) {
		t.Fatalf("Alloc under carve fault = %v, want ErrNoVA", err)
	}
	if got := a.Stats(c).Pressure.FaultsInjected; got == 0 {
		t.Fatal("no injected faults recorded")
	}
	if mapped := m.Phys().Mapped(); mapped != 0 {
		t.Fatalf("%d pages leaked by failed carve", mapped)
	}

	fs.Disarm(FaultVmblkCarve)
	b, err := a.Alloc(c, 64)
	if err != nil {
		t.Fatalf("Alloc after disarm: %v", err)
	}
	a.Free(c, b, 64)
	a.DrainAll(c)
	checkOK(t, a)
}

func TestFaultPhysMapRecoversViaRetry(t *testing.T) {
	// One injected map failure: the header mapping of the first vmblk is
	// vetoed, the partial carve unwinds, and the allocator's reclaim+retry
	// path succeeds on the second attempt without caller-visible error.
	fs := faultpoint.New(1)
	fs.Arm(FaultPhysMap, faultpoint.Spec{Count: 1})
	a, m := faultAllocator(t, fs)
	c := m.CPU(0)

	b, err := a.Alloc(c, 64)
	if err != nil {
		t.Fatalf("Alloc did not recover from one map fault: %v", err)
	}
	st := a.Stats(c)
	if st.Pressure.FaultsInjected != 1 {
		t.Fatalf("faults injected = %d, want 1", st.Pressure.FaultsInjected)
	}
	if st.Phys.Failures == 0 {
		t.Fatal("physmem recorded no map failure")
	}
	if st.VM.MapFailures == 0 {
		t.Fatal("vmblk layer recorded no map failure")
	}
	a.Free(c, b, 64)
	a.DrainAll(c)
	checkOK(t, a)
	if mapped := m.Phys().Mapped(); mapped != 8 {
		t.Fatalf("mapped = %d after drain, want 8 header pages", mapped)
	}
}

func TestFaultPagePoolRefillFailsTyped(t *testing.T) {
	// Page-pool refill failing unconditionally starves the small-block
	// path before any page is carved: the caller sees ErrNoMemory and the
	// machine maps nothing.
	fs := faultpoint.New(1)
	fs.Arm(FaultPagePoolRefill, faultpoint.Spec{})
	a, m := faultAllocator(t, fs)
	c := m.CPU(0)

	_, err := a.Alloc(c, 64)
	if !errors.Is(err, ErrNoMemory) {
		t.Fatalf("Alloc under refill fault = %v, want ErrNoMemory", err)
	}
	if errors.Is(err, ErrNoVA) {
		t.Fatal("refill fault misreported as address-space exhaustion")
	}
	if mapped := m.Phys().Mapped(); mapped != 0 {
		t.Fatalf("%d pages mapped by failed refills", mapped)
	}

	fs.Disarm(FaultPagePoolRefill)
	b, err := a.Alloc(c, 64)
	if err != nil {
		t.Fatalf("Alloc after disarm: %v", err)
	}
	a.Free(c, b, 64)
	a.DrainAll(c)
	checkOK(t, a)
}

// lazyFaultAllocator mirrors faultAllocator with lazy spans on — the
// mode where FaultPhysCommit fires on data-page commits at carve and
// recommit time, not just on the header mapping.
func lazyFaultAllocator(t *testing.T, fs *faultpoint.Set) (*Allocator, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 2
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 4096
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, LazySpans: true, Faults: fs})
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func TestFaultPhysCommitRecoversViaRetry(t *testing.T) {
	// One injected commit failure under lazy spans: the header commit of
	// the first vmblk is vetoed, the carve unwinds (releasing the fresh
	// reservation), and the reclaim+retry path succeeds on the second
	// attempt without a caller-visible error.
	fs := faultpoint.New(1)
	fs.Arm(FaultPhysCommit, faultpoint.Spec{Count: 1})
	a, m := lazyFaultAllocator(t, fs)
	c := m.CPU(0)

	b, err := a.Alloc(c, 64)
	if err != nil {
		t.Fatalf("Alloc did not recover from one commit fault: %v", err)
	}
	st := a.Stats(c)
	if st.Pressure.FaultsInjected != 1 {
		t.Fatalf("faults injected = %d, want 1", st.Pressure.FaultsInjected)
	}
	if st.VM.MapFailures == 0 {
		t.Fatal("vmblk layer recorded no commit failure")
	}
	a.Free(c, b, 64)
	a.DrainAll(c)
	checkOK(t, a)
	if got := m.Phys().Mapped(); got != a.HeaderPages() {
		t.Fatalf("mapped = %d after drain, want header floor %d", got, a.HeaderPages())
	}
}

func TestFaultPhysCommitDuringTrimUnwind(t *testing.T) {
	// Allocation during decommit-in-progress: lazy spans, probabilistic
	// commit faults, and periodic trims stripping backing from free spans,
	// so allocations constantly recommit scrubbed pages while decommit is
	// in flight. Every injected failure must surface as a typed error or
	// be absorbed by the decommit-fallback retry; after disarm and full
	// release the allocator is consistent and holds only vmblk headers.
	fs := faultpoint.New(7)
	fs.Arm(FaultPhysCommit, faultpoint.Spec{Prob: 0.3})
	a, m := lazyFaultAllocator(t, fs)
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes

	type held struct {
		addr arena.Addr
		size uint64
	}
	var live []held
	sizes := []uint64{16, 64, 256, 4096, 2 * pageBytes, 5 * pageBytes}
	var failures int
	for i := 0; i < 400; i++ {
		if i%16 == 0 {
			a.Trim(c, 32)
		}
		sz := sizes[i%len(sizes)]
		b, err := a.Alloc(c, sz)
		if err != nil {
			if !errors.Is(err, ErrNoMemory) && !errors.Is(err, ErrNoVA) {
				t.Fatalf("iteration %d: untyped error %v", i, err)
			}
			failures++
			continue
		}
		live = append(live, held{b, sz})
		if len(live) > 40 {
			h := live[0]
			live = live[1:]
			a.Free(c, h.addr, h.size)
		}
	}
	fired := fs.Fired()
	if fired == 0 {
		t.Fatal("commit fault never fired")
	}

	fs.Disarm(FaultPhysCommit)
	for _, h := range live {
		a.Free(c, h.addr, h.size)
	}
	a.DrainAll(c)
	checkOK(t, a)
	if got := m.Phys().Mapped(); got != a.HeaderPages() {
		t.Fatalf("mapped = %d after full release, want header floor %d", got, a.HeaderPages())
	}
	if st := a.Stats(c); st.Pressure.FaultsInjected != fired {
		t.Fatalf("allocator counted %d faults, set fired %d",
			st.Pressure.FaultsInjected, fired)
	}
}

func TestFaultMidAllocationUnwind(t *testing.T) {
	// Probabilistic map faults under a mixed small/large workload:
	// whatever fails mid-allocation must unwind completely. After freeing
	// every successful allocation the allocator passes its full
	// consistency check and holds exactly the vmblk header pages — any
	// page leaked by a half-done carve or span allocation shows up here.
	fs := faultpoint.New(42)
	fs.Arm(FaultPhysMap, faultpoint.Spec{Prob: 0.3})
	a, m := faultAllocator(t, fs)
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes

	type held struct {
		addr arena.Addr
		size uint64
	}
	var live []held
	sizes := []uint64{16, 64, 256, 4096, 2 * pageBytes, 5 * pageBytes}
	var failures int
	for i := 0; i < 400; i++ {
		sz := sizes[i%len(sizes)]
		b, err := a.Alloc(c, sz)
		if err != nil {
			if !errors.Is(err, ErrNoMemory) && !errors.Is(err, ErrNoVA) {
				t.Fatalf("iteration %d: untyped error %v", i, err)
			}
			failures++
			continue
		}
		live = append(live, held{b, sz})
		// Free a stripe as we go so both paths' free sides run too.
		if len(live) > 40 {
			h := live[0]
			live = live[1:]
			a.Free(c, h.addr, h.size)
		}
	}
	fired := fs.Fired() // snapshot: Disarm discards the point's counters
	if failures == 0 || fired == 0 {
		t.Fatalf("fault injection never fired (failures=%d fired=%d)", failures, fired)
	}

	fs.Disarm(FaultPhysMap)
	for _, h := range live {
		a.Free(c, h.addr, h.size)
	}
	a.DrainAll(c)
	checkOK(t, a)
	st := a.Stats(c)
	if got, want := uint64(m.Phys().Mapped()), 8*st.VM.VmblkCreates; got != want {
		t.Fatalf("mapped = %d after full release, want %d (headers of %d vmblks)",
			got, want, st.VM.VmblkCreates)
	}
	if st.Pressure.FaultsInjected != fired {
		t.Fatalf("allocator counted %d faults, set fired %d",
			st.Pressure.FaultsInjected, fired)
	}
}
