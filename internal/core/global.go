package core

import (
	"kmem/internal/blocklist"
	"kmem/internal/machine"
)

// globalPool is one size class's global layer. Its only purpose is to
// support the case where "one CPU allocates buffers of a given size,
// which are then passed to other CPUs that free them": freed buffers can
// flow back to the allocating CPU without the expense of coalescing.
//
// Free blocks are kept as a stack of target-sized lists (gblfree in the
// paper's Figure 3), so whole lists move to and from the per-CPU layer
// with a constant number of operations. Odd-sized lists arriving during
// low-memory operation or cache flushes land on the bucket list, which
// regroups blocks into target-sized lists.
//
// target and gbltarget are read from the class controller on every
// exchange, so an adaptive retune takes effect on the next get or put:
// lists grouped under an old target are simply odd-sized under the new
// one and flow through the bucket to be regrouped.
type globalPool struct {
	al  *Allocator
	cls int
	ctl *classController

	lk   *machine.SpinLock
	line machine.Line

	lists  []blocklist.List
	bucket blocklist.List

	// ev tallies this pool's slice of the event spine (EvGlobalGet,
	// EvGlobalPut, EvGlobalRefill, EvGlobalSpill), written under lk.
	ev eventCounts
}

func newGlobalPool(a *Allocator, cls int, ctl *classController) *globalPool {
	return &globalPool{
		al:   a,
		cls:  cls,
		ctl:  ctl,
		lk:   machine.NewSpinLock(a.m),
		line: a.m.NewMetaLine(),
	}
}

// capacityLists is the high-water mark: beyond it, excess lists are sent
// to the coalesce-to-page layer ("the number of blocks in the global
// layer ranges up to twice gbltarget").
func (g *globalPool) capacityLists() int { return 2 * g.ctl.curGblTarget() }

// getList hands one list of up to target blocks to a per-CPU cache. When
// the pool is empty it refills with gbltarget lists from the
// coalesce-to-page layer, so only one in gbltarget global accesses incurs
// coalescing-layer overhead. An empty result means low memory.
func (g *globalPool) getList(c *machine.CPU) (blocklist.List, error) {
	target, gbltarget := g.ctl.curTarget(), g.ctl.curGblTarget()
	g.lk.Acquire(c)
	c.Work(insnGlobalOp)
	c.Read(g.line)
	g.ev[EvGlobalGet]++

	refilled := 0
	if len(g.lists) == 0 && g.bucket.Empty() {
		g.ev[EvGlobalRefill]++
		fresh, err := g.al.classes[g.cls].pages.getLists(c, gbltarget, target)
		if err != nil && len(fresh) == 0 {
			c.Write(g.line)
			g.lk.Release(c)
			g.al.emit(g.cls, EvGlobalGet, 1)
			g.noteGet(c, true)
			return blocklist.List{}, err
		}
		g.lists = append(g.lists, fresh...)
		for _, l := range fresh {
			refilled += l.Len()
		}
	}

	var out blocklist.List
	if n := len(g.lists); n > 0 {
		out = g.lists[n-1]
		g.lists = g.lists[:n-1]
	} else {
		// Low-memory operation: hand out the (odd-sized) bucket list.
		out = g.bucket.Take()
	}
	c.Write(g.line)
	g.lk.Release(c)
	g.al.emit(g.cls, EvGlobalGet, 1)
	if refilled > 0 {
		g.al.emit(g.cls, EvGlobalRefill, refilled)
	}
	g.noteGet(c, refilled > 0)
	if out.Empty() {
		return out, ErrNoMemory
	}
	return out, nil
}

// getOne hands a single block to a per-CPU cache — used only by the
// no-split-freelist ablation (A2), which exchanges blocks one at a time.
func (g *globalPool) getOne(c *machine.CPU) (blocklist.List, error) {
	target, gbltarget := g.ctl.curTarget(), g.ctl.curGblTarget()
	g.lk.Acquire(c)
	c.Work(insnGlobalOp)
	c.Read(g.line)
	g.ev[EvGlobalGet]++

	refilled := 0
	if len(g.lists) == 0 && g.bucket.Empty() {
		g.ev[EvGlobalRefill]++
		fresh, err := g.al.classes[g.cls].pages.getLists(c, gbltarget, target)
		if err != nil && len(fresh) == 0 {
			c.Write(g.line)
			g.lk.Release(c)
			g.al.emit(g.cls, EvGlobalGet, 1)
			g.noteGet(c, true)
			return blocklist.List{}, err
		}
		g.lists = append(g.lists, fresh...)
		for _, l := range fresh {
			refilled += l.Len()
		}
	}

	var out blocklist.List
	if !g.bucket.Empty() {
		out.Push(c, g.al.mem, g.bucket.Pop(c, g.al.mem))
	} else if n := len(g.lists); n > 0 {
		top := &g.lists[n-1]
		out.Push(c, g.al.mem, top.Pop(c, g.al.mem))
		if top.Empty() {
			g.lists = g.lists[:n-1]
		}
	}
	c.Write(g.line)
	g.lk.Release(c)
	g.al.emit(g.cls, EvGlobalGet, 1)
	if refilled > 0 {
		g.al.emit(g.cls, EvGlobalRefill, refilled)
	}
	g.noteGet(c, refilled > 0)
	if out.Empty() {
		return out, ErrNoMemory
	}
	return out, nil
}

// putList accepts a list of blocks from a per-CPU cache (normally exactly
// target blocks; odd sizes go to the bucket list and are regrouped).
// When the pool exceeds its capacity, gbltarget lists are pushed down to
// the coalesce-to-page layer.
func (g *globalPool) putList(c *machine.CPU, l blocklist.List) {
	if l.Empty() {
		return
	}
	target, gbltarget := g.ctl.curTarget(), g.ctl.curGblTarget()
	g.lk.Acquire(c)
	c.Work(insnGlobalOp)
	c.Read(g.line)
	g.ev[EvGlobalPut]++

	if l.Len() == target {
		g.lists = append(g.lists, l)
	} else {
		g.bucket.Append(c, g.al.mem, l)
		for g.bucket.Len() >= target {
			g.lists = append(g.lists, g.bucket.SplitOff(c, g.al.mem, target))
		}
	}

	var spill []blocklist.List
	if len(g.lists) > 2*gbltarget {
		g.ev[EvGlobalSpill]++
		n := gbltarget
		if n > len(g.lists) {
			n = len(g.lists)
		}
		spill = append(spill, g.lists[len(g.lists)-n:]...)
		g.lists = g.lists[:len(g.lists)-n]
	}
	c.Write(g.line)
	g.lk.Release(c)
	g.al.emit(g.cls, EvGlobalPut, 1)

	// Push the excess to the coalescing layer outside the global lock;
	// each block is examined individually there.
	spilled := 0
	for _, s := range spill {
		spilled += s.Len()
		g.al.classes[g.cls].pages.putBlocks(c, s)
	}
	if spilled > 0 {
		g.al.emit(g.cls, EvGlobalSpill, spilled)
	}
	g.notePut(c, spilled > 0)
}

// noteGet and notePut feed the controller's global-layer estimator.
func (g *globalPool) noteGet(c *machine.CPU, missed bool) {
	if !g.ctl.enabled {
		return
	}
	m := uint64(0)
	if missed {
		m = 1
	}
	g.ctl.noteGbl(g.al, c, g.cls, 1, m)
}

func (g *globalPool) notePut(c *machine.CPU, missed bool) {
	if !g.ctl.enabled {
		return
	}
	m := uint64(0)
	if missed {
		m = 1
	}
	g.ctl.noteGbl(g.al, c, g.cls, 1, m)
}

// drainAll pushes every block in the pool down to the coalesce-to-page
// layer. The low-memory reclaim path uses it to let fully-free pages be
// released for other sizes and for user processes.
func (g *globalPool) drainAll(c *machine.CPU) {
	g.lk.Acquire(c)
	c.Read(g.line)
	all := g.lists
	g.lists = nil
	bucket := g.bucket.Take()
	c.Write(g.line)
	g.lk.Release(c)

	for _, l := range all {
		g.al.classes[g.cls].pages.putBlocks(c, l)
	}
	if !bucket.Empty() {
		g.al.classes[g.cls].pages.putBlocks(c, bucket)
	}
}

// blocksHeld reports the number of blocks currently in the pool. Used by
// stats and tests.
func (g *globalPool) blocksHeld(c *machine.CPU) int {
	g.lk.Acquire(c)
	n := g.bucket.Len()
	for _, l := range g.lists {
		n += l.Len()
	}
	g.lk.Release(c)
	return n
}
