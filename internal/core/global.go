package core

import (
	"kmem/internal/blocklist"
	"kmem/internal/machine"
)

// globalPool is one size class's global layer on one NUMA node (one pool
// per class on a single-node machine). Its only purpose is to support
// the case where "one CPU allocates buffers of a given size, which are
// then passed to other CPUs that free them": freed buffers can flow back
// to the allocating CPU without the expense of coalescing.
//
// Free blocks are kept as a stack of target-sized lists (gblfree in the
// paper's Figure 3), so whole lists move to and from the per-CPU layer
// with a constant number of operations. Odd-sized lists arriving during
// low-memory operation or cache flushes land on the bucket list, which
// regroups blocks into target-sized lists.
//
// target and gbltarget are read from the class controller on every
// exchange, so an adaptive retune takes effect on the next get or put:
// lists grouped under an old target are simply odd-sized under the new
// one and flow through the bucket to be regrouped.
//
// Home-node invariant: a pool only ever holds blocks homed on its node.
// Frees route every spilled block to its home pool through the dope
// vector (routeSpill), refills come from the node-local page pool, and
// the cross-node steal path removes blocks from a victim pool rather
// than mixing them in. drainAll may therefore push straight to the
// node-local page pool, and the invariant is asserted both there
// (putBlockLocked) and by CheckConsistency.
type globalPool struct {
	al   *Allocator
	cls  int
	node int
	ctl  *classController

	// pp is the node-local coalesce-to-page pool this pool refills from
	// and spills to.
	pp *pagePool

	lk   *machine.SpinLock
	line machine.Line

	lists  []blocklist.List
	bucket blocklist.List

	// lf is the Treiber-stack commit model for lists (Params.LockFree,
	// Sim mode): the common getList/putList/stealList paths commit with
	// a tagged CAS on lf's head word instead of taking lk. The bucket,
	// drains, and stats stay behind lk — they are the uncommon paths
	// the paper's lock already served fine.
	lf lfState

	// ev tallies this pool's slice of the event spine (EvGlobalGet,
	// EvGlobalPut, EvGlobalRefill, EvGlobalSpill, plus the node-crossing
	// EvRemoteFree/EvNodeSteal/EvInterconnect), written under lk.
	ev eventCounts
}

func newGlobalPool(a *Allocator, cls, node int, ctl *classController) *globalPool {
	g := &globalPool{
		al:   a,
		cls:  cls,
		node: node,
		ctl:  ctl,
		lk:   machine.NewSpinLockOn(a.m, node),
		line: a.m.NewMetaLineOn(node),
	}
	if a.lockFree {
		g.lf = newLfState(a.m, node)
	}
	return g
}

// capacityLists is the high-water mark: beyond it, excess lists are sent
// to the coalesce-to-page layer ("the number of blocks in the global
// layer ranges up to twice gbltarget").
func (g *globalPool) capacityLists() int { return 2 * g.ctl.curGblTarget() }

// getList hands one list of up to target blocks to a per-CPU cache. When
// the pool is empty it refills with gbltarget lists from the
// coalesce-to-page layer, so only one in gbltarget global accesses incurs
// coalescing-layer overhead. An empty result means low memory.
func (g *globalPool) getList(c *machine.CPU) (blocklist.List, error) {
	if g.al.lockFree {
		return g.getListLF(c)
	}
	target, gbltarget := g.al.effTarget(g.ctl.curTarget()), g.ctl.curGblTarget()
	g.lk.Acquire(c)
	g.noteLockWait()
	c.Work(insnGlobalOp)
	c.Read(g.line)
	g.ev[EvGlobalGet]++

	refilled := 0
	if len(g.lists) == 0 && g.bucket.Empty() {
		g.ev[EvGlobalRefill]++
		fresh, err := g.pp.getLists(c, gbltarget, target)
		if err != nil && len(fresh) == 0 {
			c.Write(g.line)
			g.lk.Release(c)
			g.al.emit(g.cls, EvGlobalGet, 1)
			g.noteGet(c, true)
			return blocklist.List{}, err
		}
		g.lists = append(g.lists, fresh...)
		for _, l := range fresh {
			refilled += l.Len()
		}
	}

	var out blocklist.List
	if n := len(g.lists); n > 0 {
		out = g.lists[n-1]
		g.lists = g.lists[:n-1]
	} else {
		// Low-memory operation: hand out the (odd-sized) bucket list.
		out = g.bucket.Take()
	}
	c.Write(g.line)
	g.lk.Release(c)
	g.al.emit(g.cls, EvGlobalGet, 1)
	if refilled > 0 {
		g.al.emit(g.cls, EvGlobalRefill, refilled)
	}
	g.noteGet(c, refilled > 0)
	if out.Empty() {
		return out, ErrNoMemory
	}
	return out, nil
}

// --- lock-free fast paths (Params.LockFree, Sim mode) --------------------

// lfPush publishes one target-sized list on the Treiber stack: write
// the new top's next link, then one tagged CAS of the head word.
func (g *globalPool) lfPush(c *machine.CPU, l blocklist.List) {
	if r := g.lf.commit(c, func() { c.WriteAddr(l.Head()) }); r > 0 {
		g.ev[EvCASRetry] += uint64(r)
	}
	g.lists = append(g.lists, l)
}

// lfPop removes the top list with the pop side of the protocol: read
// the top node's next pointer, then CAS the head word from {top, tag}
// to {next, tag+1}. Returns false (charging only the empty-head read)
// when the stack is empty.
func (g *globalPool) lfPop(c *machine.CPU) (blocklist.List, bool) {
	if len(g.lists) == 0 {
		c.Read(g.lf.line)
		return blocklist.List{}, false
	}
	retries := g.lf.commit(c, func() {
		if n := len(g.lists); n > 0 {
			c.ReadAddr(g.lists[n-1].Head())
		}
	})
	if retries > 0 {
		g.ev[EvCASRetry] += uint64(retries)
		if tortureBug(TortureBugLFStackABA) && len(g.lists) >= 2 {
			// Armed ABA bug: the contended pop ignores the tag and
			// installs the stale next snapshot it read before its first
			// failed CAS — the classic lost update, dropping the list
			// beneath the top. The leaked blocks never return to their
			// pages, so the torture end-audit's mapped-pages leak floor
			// catches the theft after a full drain.
			g.lists = append(g.lists[:len(g.lists)-2], g.lists[len(g.lists)-1])
		}
	}
	n := len(g.lists)
	out := g.lists[n-1]
	g.lists = g.lists[:n-1]
	return out, true
}

// getListLF is getList's lock-free form: one CAS pop on the common
// path. The bucket (odd-sized lists) stays behind lk — low-memory
// operation only — and a refill carves from the page layer with no
// global-layer critical section at all, publishing the surplus lists
// one CAS push at a time.
func (g *globalPool) getListLF(c *machine.CPU) (blocklist.List, error) {
	target, gbltarget := g.al.effTarget(g.ctl.curTarget()), g.ctl.curGblTarget()
	c.Work(insnGlobalOp)
	g.ev[EvGlobalGet]++
	if out, ok := g.lfPop(c); ok {
		g.al.emit(g.cls, EvGlobalGet, 1)
		g.noteGet(c, false)
		return out, nil
	}
	if !g.bucket.Empty() {
		g.lk.Acquire(c)
		g.noteLockWait()
		c.Read(g.line)
		out := g.bucket.Take()
		c.Write(g.line)
		g.lk.Release(c)
		if !out.Empty() {
			g.al.emit(g.cls, EvGlobalGet, 1)
			g.noteGet(c, false)
			return out, nil
		}
	}
	g.ev[EvGlobalRefill]++
	fresh, err := g.pp.getLists(c, gbltarget, target)
	if len(fresh) == 0 {
		g.al.emit(g.cls, EvGlobalGet, 1)
		g.noteGet(c, true)
		if err == nil {
			err = ErrNoMemory
		}
		return blocklist.List{}, err
	}
	refilled := 0
	for _, l := range fresh {
		refilled += l.Len()
	}
	out := fresh[len(fresh)-1]
	for _, l := range fresh[:len(fresh)-1] {
		g.lfPush(c, l)
	}
	g.al.emit(g.cls, EvGlobalGet, 1)
	g.al.emit(g.cls, EvGlobalRefill, refilled)
	g.noteGet(c, true)
	return out, nil
}

// putListLF is putList's lock-free form: a target-sized list is one
// CAS push; odd sizes fall back to the locked bucket regroup (cache
// flushes and low-memory operation). The capacity check pops the
// surplus with the same CAS protocol and spills it outside any
// critical section.
func (g *globalPool) putListLF(c *machine.CPU, l blocklist.List) {
	target, gbltarget := g.ctl.curTarget(), g.ctl.curGblTarget()
	c.Work(insnGlobalOp)
	g.ev[EvGlobalPut]++
	remote := 0
	if c.Node() != g.node {
		remote = l.Len()
		g.ev[EvRemoteFree] += uint64(remote)
		g.ev[EvRemotePut]++
		g.ev[EvInterconnect]++
	}

	if l.Len() == target {
		g.lfPush(c, l)
	} else {
		g.lk.Acquire(c)
		g.noteLockWait()
		c.Read(g.line)
		g.bucket.Append(c, g.al.mem, l)
		var regrouped []blocklist.List
		for g.bucket.Len() >= target {
			regrouped = append(regrouped, g.bucket.SplitOff(c, g.al.mem, target))
		}
		c.Write(g.line)
		g.lk.Release(c)
		for _, r := range regrouped {
			g.lfPush(c, r)
		}
	}
	g.al.emit(g.cls, EvGlobalPut, 1)
	if remote > 0 {
		g.al.emit(g.cls, EvRemoteFree, remote)
		g.al.emit(g.cls, EvRemotePut, 1)
		g.al.emit(g.cls, EvInterconnect, 1)
	}

	// Same hysteresis as the locked path: spill on crossing 2*gbltarget
	// (gbltarget under pressure), popping the surplus list by list.
	limit, spillN := 2*gbltarget, gbltarget
	if g.al.pressureLevel() >= PressureLow {
		limit, spillN = gbltarget, len(g.lists)-gbltarget
	}
	spilled := 0
	if len(g.lists) > limit {
		g.ev[EvGlobalSpill]++
		for i := 0; i < spillN; i++ {
			s, ok := g.lfPop(c)
			if !ok {
				break
			}
			spilled += s.Len()
			g.pp.putBlocks(c, s)
		}
	}
	if spilled > 0 {
		g.al.emit(g.cls, EvGlobalSpill, spilled)
	}
	g.notePut(c, spilled > 0)
	g.al.wakeClass(g.cls)
}

// getOne hands a single block to a per-CPU cache — used only by the
// no-split-freelist ablation (A2), which exchanges blocks one at a time.
// It keeps the locked path even under Params.LockFree: the ablation
// exists to measure the paper's split-freelist design, not the
// optimistic layer.
func (g *globalPool) getOne(c *machine.CPU) (blocklist.List, error) {
	target, gbltarget := g.al.effTarget(g.ctl.curTarget()), g.ctl.curGblTarget()
	g.lk.Acquire(c)
	g.noteLockWait()
	c.Work(insnGlobalOp)
	c.Read(g.line)
	g.ev[EvGlobalGet]++

	refilled := 0
	if len(g.lists) == 0 && g.bucket.Empty() {
		g.ev[EvGlobalRefill]++
		fresh, err := g.pp.getLists(c, gbltarget, target)
		if err != nil && len(fresh) == 0 {
			c.Write(g.line)
			g.lk.Release(c)
			g.al.emit(g.cls, EvGlobalGet, 1)
			g.noteGet(c, true)
			return blocklist.List{}, err
		}
		g.lists = append(g.lists, fresh...)
		for _, l := range fresh {
			refilled += l.Len()
		}
	}

	var out blocklist.List
	if !g.bucket.Empty() {
		out.Push(c, g.al.mem, g.bucket.Pop(c, g.al.mem))
	} else if n := len(g.lists); n > 0 {
		top := &g.lists[n-1]
		out.Push(c, g.al.mem, top.Pop(c, g.al.mem))
		if top.Empty() {
			g.lists = g.lists[:n-1]
		}
	}
	c.Write(g.line)
	g.lk.Release(c)
	g.al.emit(g.cls, EvGlobalGet, 1)
	if refilled > 0 {
		g.al.emit(g.cls, EvGlobalRefill, refilled)
	}
	g.noteGet(c, refilled > 0)
	if out.Empty() {
		return out, ErrNoMemory
	}
	return out, nil
}

// putList accepts a list of blocks from a per-CPU cache (normally exactly
// target blocks; odd sizes go to the bucket list and are regrouped).
// When the pool exceeds its capacity, gbltarget lists are pushed down to
// the coalesce-to-page layer.
func (g *globalPool) putList(c *machine.CPU, l blocklist.List) {
	if l.Empty() {
		return
	}
	if g.al.lockFree {
		g.putListLF(c, l)
		return
	}
	target, gbltarget := g.ctl.curTarget(), g.ctl.curGblTarget()
	remote := 0
	g.lk.Acquire(c)
	g.noteLockWait()
	c.Work(insnGlobalOp)
	c.Read(g.line)
	g.ev[EvGlobalPut]++
	if c.Node() != g.node {
		// A block coming home: the freeing CPU lives on another node.
		// EvRemotePut counts the lock trip itself — the per-acquisition
		// cost the remote-free shards batch down — while EvRemoteFree
		// counts the blocks carried.
		remote = l.Len()
		g.ev[EvRemoteFree] += uint64(remote)
		g.ev[EvRemotePut]++
		g.ev[EvInterconnect]++
	}

	if l.Len() == target {
		g.lists = append(g.lists, l)
	} else {
		g.bucket.Append(c, g.al.mem, l)
		for g.bucket.Len() >= target {
			g.lists = append(g.lists, g.bucket.SplitOff(c, g.al.mem, target))
		}
	}

	// Under memory pressure the pool stops retaining its surplus: the
	// capacity drops from 2*gbltarget to gbltarget and everything above
	// it is pushed down, so fully-free pages surface at the coalescing
	// layer as fast as frees arrive. The normal path (no pressure) keeps
	// the paper's hysteresis: spill gbltarget lists on crossing
	// 2*gbltarget.
	var spill []blocklist.List
	limit, spillN := 2*gbltarget, gbltarget
	if g.al.pressureLevel() >= PressureLow {
		limit, spillN = gbltarget, len(g.lists)-gbltarget
	}
	if len(g.lists) > limit {
		g.ev[EvGlobalSpill]++
		n := spillN
		if n > len(g.lists) {
			n = len(g.lists)
		}
		spill = append(spill, g.lists[len(g.lists)-n:]...)
		g.lists = g.lists[:len(g.lists)-n]
	}
	c.Write(g.line)
	g.lk.Release(c)
	g.al.emit(g.cls, EvGlobalPut, 1)
	if remote > 0 {
		g.al.emit(g.cls, EvRemoteFree, remote)
		g.al.emit(g.cls, EvRemotePut, 1)
		g.al.emit(g.cls, EvInterconnect, 1)
	}

	// Push the excess to the coalescing layer outside the global lock;
	// each block is examined individually there.
	spilled := 0
	for _, s := range spill {
		spilled += s.Len()
		g.pp.putBlocks(c, s)
	}
	if spilled > 0 {
		g.al.emit(g.cls, EvGlobalSpill, spilled)
	}
	g.notePut(c, spilled > 0)
	// Blocks of this class just became reachable from the global layer:
	// release any parked AllocWait callers of the class.
	g.al.wakeClass(g.cls)
}

// noteLockWait attributes the cycles the just-completed Acquire spent
// spinning on this pool's lock to the event spine (EvLockWait). Called
// immediately after Acquire, while the lock is still held — LastWait is
// only meaningful there. Uncontended acquires (and Native mode, which
// does not model spin time) cost one predictable branch.
func (g *globalPool) noteLockWait() {
	if w := g.lk.LastWait(); w > 0 {
		g.ev[EvLockWait] += uint64(w)
		g.al.emit(g.cls, EvLockWait, int(w))
	}
}

// noteGet and notePut feed the controller's global-layer estimator.
func (g *globalPool) noteGet(c *machine.CPU, missed bool) {
	if !g.ctl.enabled {
		return
	}
	m := uint64(0)
	if missed {
		m = 1
	}
	g.ctl.noteGbl(g.al, c, g.cls, 1, m)
}

func (g *globalPool) notePut(c *machine.CPU, missed bool) {
	if !g.ctl.enabled {
		return
	}
	m := uint64(0)
	if missed {
		m = 1
	}
	g.ctl.noteGbl(g.al, c, g.cls, 1, m)
}

// stealList removes one cached list from this pool on behalf of a CPU
// whose own node's pool ran dry. Unlike getList it never refills from
// the page layer: a steal takes only blocks already cached here, so a
// dry machine still funnels through the reclaim path rather than
// carving remote pages. The stolen blocks keep this pool's home node —
// when the thief's CPU cache spills them later, routeSpill sends them
// back here.
func (g *globalPool) stealList(c *machine.CPU) blocklist.List {
	if g.al.lockFree {
		c.Work(insnGlobalOp)
		out, ok := g.lfPop(c)
		if !ok && !g.bucket.Empty() {
			g.lk.Acquire(c)
			g.noteLockWait()
			c.Read(g.line)
			out = g.bucket.Take()
			c.Write(g.line)
			g.lk.Release(c)
		}
		if stolen := out.Len(); stolen > 0 {
			g.ev[EvNodeSteal] += uint64(stolen)
			g.ev[EvInterconnect]++
			g.al.emit(g.cls, EvNodeSteal, stolen)
			g.al.emit(g.cls, EvInterconnect, 1)
		}
		return out
	}
	g.lk.Acquire(c)
	g.noteLockWait()
	c.Work(insnGlobalOp)
	c.Read(g.line)
	var out blocklist.List
	if n := len(g.lists); n > 0 {
		out = g.lists[n-1]
		g.lists = g.lists[:n-1]
	} else if !g.bucket.Empty() {
		out = g.bucket.Take()
	}
	stolen := out.Len()
	if stolen > 0 {
		g.ev[EvNodeSteal] += uint64(stolen)
		g.ev[EvInterconnect]++
	}
	c.Write(g.line)
	g.lk.Release(c)
	if stolen > 0 {
		g.al.emit(g.cls, EvNodeSteal, stolen)
		g.al.emit(g.cls, EvInterconnect, 1)
	}
	return out
}

// drainAll pushes every block in the pool down to the coalesce-to-page
// layer. The low-memory reclaim path uses it to let fully-free pages be
// released for other sizes and for user processes.
func (g *globalPool) drainAll(c *machine.CPU) {
	g.lk.Acquire(c)
	c.Read(g.line)
	all := g.lists
	g.lists = nil
	bucket := g.bucket.Take()
	c.Write(g.line)
	g.lk.Release(c)

	for _, l := range all {
		g.pp.putBlocks(c, l)
	}
	if !bucket.Empty() {
		g.pp.putBlocks(c, bucket)
	}
	if g.al.lockFree {
		// Parked fully-free pages (the page layer's lock-free refill
		// stack) must not survive a drain either: release them to the
		// vmblk layer so the heap returns to its floor footprint.
		g.pp.drainParked(c)
	}
}

// blocksHeld reports the number of blocks currently in the pool. Used by
// stats and tests.
func (g *globalPool) blocksHeld(c *machine.CPU) int {
	g.lk.Acquire(c)
	n := g.bucket.Len()
	for _, l := range g.lists {
		n += l.Len()
	}
	g.lk.Release(c)
	return n
}
