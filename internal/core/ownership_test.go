package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"kmem/internal/machine"
)

func TestDebugOwnershipCatchesSharedHandle(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.Native
	cfg.NumCPUs = 2
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 1024
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, DebugOwnership: true})
	if err != nil {
		t.Fatal(err)
	}
	// Two goroutines misuse the SAME CPU handle: the checker must catch
	// it (without it, the internal locks silently serialize the bug).
	// Catching requires the scheduler to actually overlap the two
	// goroutines inside an allocation; on a single-core host that can
	// take a while, so the budget is a generous op count — never a
	// wall-clock deadline, which would make the test's work depend on
	// host speed. (The primitive itself is tested deterministically in
	// internal/machine.)
	attempts := scaledOps(2_000_000)
	c := m.CPU(0)
	var caught atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					caught.Store(true)
				}
			}()
			for op := 0; op < attempts && !caught.Load(); op++ {
				b, err := a.Alloc(c, 64)
				if err != nil {
					return
				}
				a.Free(c, b, 64)
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
	if !caught.Load() {
		t.Skip("scheduler never overlapped the goroutines (single-core host); primitive covered in internal/machine")
	}
}

func TestDebugOwnershipAllowsCorrectUse(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.Native
	cfg.NumCPUs = 4
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 1024
	m := machine.New(cfg)
	a, err := New(m, Params{RadixSort: true, DebugOwnership: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(c *machine.CPU) {
			defer wg.Done()
			for i := 0; i < scaledOps(20000); i++ {
				b, err := a.Alloc(c, 64)
				if err != nil {
					t.Error(err)
					return
				}
				a.Free(c, b, 64)
			}
		}(m.CPU(g))
	}
	wg.Wait()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDebugOwnershipSimSingleGoroutine(t *testing.T) {
	// Sim mode drives all CPUs from one goroutine; the checker must not
	// misfire on that legitimate pattern (sections never overlap).
	a, m := testAllocator(t, 2, 1024, Params{RadixSort: true, DebugOwnership: true})
	for i := 0; i < 100; i++ {
		c := m.CPU(i % 2)
		b, err := a.Alloc(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		a.Free(c, b, 64)
	}
}
