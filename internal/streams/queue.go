package streams

import "kmem/internal/machine"

// Queue is a STREAMS message queue (a minimal queue_t): messages are
// linked through their b_next fields, protected by a spinlock, so one
// CPU's stream module can pass messages to another CPU's — the pattern
// that sends buffers allocated on one CPU to be freed on another.
type Queue struct {
	s    *Subsystem
	lk   *machine.SpinLock
	head Msg
	tail Msg
	n    int
}

// NewQueue returns an empty queue on s's machine.
func (s *Subsystem) NewQueue() *Queue {
	return &Queue{s: s, lk: machine.NewSpinLock(s.al.Machine())}
}

// Putq appends a message.
func (q *Queue) Putq(c *machine.CPU, m Msg) {
	q.s.put(c, m+mbNext, 0)
	q.lk.Acquire(c)
	if q.tail == 0 {
		q.head = m
	} else {
		q.s.put(c, q.tail+mbNext, m)
	}
	q.tail = m
	q.n++
	q.lk.Release(c)
}

// Getq removes and returns the first message, or 0 when empty.
func (q *Queue) Getq(c *machine.CPU) Msg {
	q.lk.Acquire(c)
	m := q.head
	if m != 0 {
		q.head = q.s.Next(c, m)
		if q.head == 0 {
			q.tail = 0
		}
		q.n--
		q.s.put(c, m+mbNext, 0)
	}
	q.lk.Release(c)
	return m
}

// Len returns the queued message count.
func (q *Queue) Len(c *machine.CPU) int {
	q.lk.Acquire(c)
	n := q.n
	q.lk.Release(c)
	return n
}
