package streams

import (
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

// esballoc: messages over externally supplied buffers. A driver that owns
// its own buffer memory (e.g. a DMA region) wraps it in a message without
// copying; when the last reference to the data block is freed, the
// caller-supplied free routine runs instead of kmem_free — the frtn_t
// mechanism of STREAMS.
//
// Only the message and data blocks come from kmem; the buffer stays the
// caller's. The free routine is Go state, keyed by the data block
// address while the block is live.

// FreeRtn is the caller's buffer release routine; it runs on the CPU that
// drops the last reference.
type FreeRtn func(c *machine.CPU)

// Esballoc wraps the external buffer [base, base+size) in a fresh
// message. The buffer must remain valid until frtn runs.
func (s *Subsystem) Esballoc(c *machine.CPU, base arena.Addr, size uint64, frtn FreeRtn) (Msg, error) {
	if size == 0 {
		return 0, fmt.Errorf("streams: esballoc of empty buffer")
	}
	if frtn == nil {
		return 0, fmt.Errorf("streams: esballoc without a free routine")
	}
	db, err := s.dblks.Get(c)
	if err != nil {
		return 0, ErrNoMemory
	}
	s.put(c, db+dbBase, base)
	s.put(c, db+dbLim, base+size)
	s.put(c, db+dbSize, 0) // external: this dblk owns no buffer memory
	s.put(c, db+dbKind, dbKindExternal)
	mb, err := s.newMblk(c, base, base, db)
	if err != nil {
		s.dblks.Put(c, db)
		return 0, ErrNoMemory
	}

	s.frtnMu.Lock()
	if s.frtns == nil {
		s.frtns = make(map[arena.Addr]FreeRtn)
	}
	s.frtns[db] = frtn
	s.frtnMu.Unlock()
	s.allocbs.Add(1)
	return mb, nil
}

// releaseExternal runs and clears the free routine for data block db.
// Returns false when db is not an external buffer.
func (s *Subsystem) releaseExternal(c *machine.CPU, db arena.Addr) bool {
	s.frtnMu.Lock()
	frtn, ok := s.frtns[db]
	if ok {
		delete(s.frtns, db)
	}
	s.frtnMu.Unlock()
	if !ok {
		return false
	}
	frtn(c)
	return true
}
