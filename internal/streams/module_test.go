package streams

import (
	"sync"
	"testing"

	"kmem/internal/machine"
)

func TestStreamPassThrough(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)

	// Counting driver at the end.
	var sunk int
	var sunkBytes uint64
	str, err := s.NewStream(
		Module{Name: "head"},
		Module{Name: "mid"},
		Module{Name: "driver", Put: func(c *machine.CPU, q *ModQueue, m Msg) {
			sunk++
			sunkBytes += s.Msgdsize(c, m)
			s.Freemsg(c, m)
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		msg, err := s.Allocb(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Write(c, msg, []byte("0123456789"))
		str.Write(c, msg)
	}
	str.Drain(c)
	if sunk != 100 || sunkBytes != 1000 {
		t.Fatalf("driver saw %d msgs, %d bytes", sunk, sunkBytes)
	}
	quiesce(t, s, al, m)
}

func TestFlowControlAssertsAndReleases(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)

	// Slow driver: consumes nothing until we let it.
	gate := false
	str, err := s.NewStream(
		Module{Name: "head", Hiwat: 512, Lowat: 128},
		Module{Name: "choke", Hiwat: 512, Lowat: 128,
			Put: func(c *machine.CPU, q *ModQueue, m Msg) { q.PutqMod(c, m) },
			Service: func(c *machine.CPU, q *ModQueue) {
				if !gate {
					return // congested: keep everything queued
				}
				for {
					m := q.GetqMod(c)
					if m == 0 {
						return
					}
					s.Freemsg(c, m)
				}
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	choke := str.Queue(1)

	// Stuff the choke queue past hiwat.
	for i := 0; i < 20; i++ {
		msg, _ := s.Allocb(c, 64)
		_ = s.Write(c, msg, make([]byte, 60))
		str.Write(c, msg)
		str.RunService(c, 4)
	}
	if choke.Canput(c) {
		t.Fatal("choke queue not flow-controlled past hiwat")
	}
	// With the downstream full, the head queue defers instead of
	// forwarding.
	msg, _ := s.Allocb(c, 64)
	_ = s.Write(c, msg, make([]byte, 60))
	str.Write(c, msg)
	if str.Queue(0).Len(c) == 0 {
		t.Fatal("head did not defer while downstream was full")
	}

	// Open the gate: everything drains, flow control releases.
	gate = true
	str.Drain(c)
	if !choke.Canput(c) {
		t.Fatal("flow control not released after drain")
	}
	quiesce(t, s, al, m)
}

func TestOrderingPreservedThroughDeferral(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)

	var got []byte
	str, err := s.NewStream(
		Module{Name: "head", Hiwat: 256, Lowat: 64},
		Module{Name: "driver", Put: func(c *machine.CPU, q *ModQueue, m Msg) {
			p := make([]byte, 1)
			if s.Read(c, m, p) == 1 {
				got = append(got, p[0])
			}
			s.Freemsg(c, m)
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave writes and partial service runs so some messages defer.
	for i := 0; i < 50; i++ {
		msg, _ := s.Allocb(c, 16)
		_ = s.Write(c, msg, []byte{byte(i)})
		str.Write(c, msg)
		if i%7 == 0 {
			str.RunService(c, 1)
		}
	}
	str.Drain(c)
	if len(got) != 50 {
		t.Fatalf("driver saw %d of 50", len(got))
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("order violated at %d: got %d", i, got[i])
		}
	}
	quiesce(t, s, al, m)
}

func TestModulePipelineTransforms(t *testing.T) {
	// A module that duplicates each message (dupb) and one that drops
	// every second — message-count algebra must hold.
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)

	sunk := 0
	parity := 0
	str, err := s.NewStream(
		Module{Name: "dup", Put: func(c *machine.CPU, q *ModQueue, m Msg) {
			d, err := s.Dupb(c, m)
			if err != nil {
				t.Fatal(err)
			}
			down := q.Down()
			down.put(c, down, m)
			down.put(c, down, d)
		}},
		Module{Name: "dropodd", Put: func(c *machine.CPU, q *ModQueue, m Msg) {
			parity++
			if parity%2 == 0 {
				s.Freemsg(c, m)
				return
			}
			down := q.Down()
			down.put(c, down, m)
		}},
		Module{Name: "driver", Put: func(c *machine.CPU, q *ModQueue, m Msg) {
			sunk++
			s.Freemsg(c, m)
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		msg, _ := s.Allocb(c, 32)
		_ = s.Write(c, msg, []byte("x"))
		str.Write(c, msg)
	}
	str.Drain(c)
	if sunk != 40 { // 40 in, 80 after dup, 40 after drop-odd
		t.Fatalf("driver saw %d, want 40", sunk)
	}
	quiesce(t, s, al, m)
}

func TestEmptyStreamRejected(t *testing.T) {
	s, _, _ := newTest(t, 1, machine.Sim)
	if _, err := s.NewStream(); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestNativeStreamConcurrent(t *testing.T) {
	// Two producer CPUs write, two service CPUs run RunService, under
	// the race detector.
	s, al, m := newTest(t, 4, machine.Native)
	var mu sync.Mutex
	var count int64
	str, err := s.NewStream(
		Module{Name: "head", Hiwat: 4096, Lowat: 512},
		Module{Name: "driver", Put: func(c *machine.CPU, q *ModQueue, m Msg) {
			mu.Lock()
			count++
			mu.Unlock()
			s.Freemsg(c, m)
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	const perProducer = 5000
	var producers, servicers sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 2; p++ {
		producers.Add(1)
		go func(c *machine.CPU) {
			defer producers.Done()
			for i := 0; i < perProducer; i++ {
				msg, err := s.Allocb(c, 64)
				if err != nil {
					t.Errorf("allocb: %v", err)
					return
				}
				_ = s.Write(c, msg, []byte("abcdefgh"))
				str.Write(c, msg)
				if i%16 == 0 {
					str.RunService(c, 4)
				}
			}
		}(m.CPU(p))
	}
	for p := 2; p < 4; p++ {
		servicers.Add(1)
		go func(c *machine.CPU) {
			defer servicers.Done()
			for {
				str.RunService(c, 8)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(m.CPU(p))
	}
	producers.Wait()
	close(stop)
	servicers.Wait()
	str.Drain(m.CPU(0))
	mu.Lock()
	got := count
	mu.Unlock()
	if got != 2*perProducer {
		t.Fatalf("driver saw %d of %d", got, 2*perProducer)
	}
	al.DrainAll(m.CPU(0))
	if err := al.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
