// Package streams reimplements the STREAMS buffer allocator whose
// behaviour opens the paper's Analysis section: allocb must "find a
// buffer capable of holding the specified number of bytes, allocate a
// message block and data block, and initialize them so that the message
// block points to the data block that points to the STREAMS buffer".
//
// As the paper describes for DYNIX ("special-purpose allocators such as
// allocb invoke the same functions as does the general-purpose kmem_alloc
// allocator" — reuse at the binary level), every structure here lives in
// arena memory obtained from the kernel memory allocator: message blocks
// and data blocks are fixed-size kmem blocks allocated through cookies,
// and data buffers come from the standard interface. The message-block /
// data-block split exists so a data block (and its buffer) can be shared
// by several messages via reference counting (dupb), e.g. to retain data
// for possible retransmission.
package streams

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/machine"
)

// ErrNoMemory is returned when the underlying allocator is exhausted.
var ErrNoMemory = errors.New("streams: out of buffers")

// Msg is a message block handle: the arena address of an mblk.
type Msg = arena.Addr

// mblk field offsets (the structure occupies one 64-byte kmem block).
const (
	mbNext   = 0  // b_next: next message on a queue
	mbCont   = 8  // b_cont: next block of this message
	mbRptr   = 16 // b_rptr: first unread byte
	mbWptr   = 24 // b_wptr: first unwritten byte
	mbDatap  = 32 // b_datap: the data block
	mblkSize = 64
)

// dblk field offsets (one 64-byte kmem block).
const (
	dbBase   = 0  // db_base: buffer start
	dbLim    = 8  // db_lim: buffer end
	dbRef    = 16 // db_ref: reference count
	dbSize   = 24 // original buffer request size (for kmem_free)
	dblkSize = 64
)

// Subsystem is one machine's STREAMS buffer allocator, layered on the
// kernel memory allocator.
type Subsystem struct {
	al  *core.Allocator
	mem *arena.Arena

	mblkCookie core.Cookie
	dblkCookie core.Cookie

	// refLocks guard dblk reference counts (standing in for the atomic
	// decrement of db_ref; in the simulator an acquisition charges the
	// bus-locked RMW this would be).
	refLocks [16]*machine.SpinLock

	// frtns maps live external data blocks (esballoc) to their
	// caller-supplied free routines.
	frtnMu sync.Mutex
	frtns  map[arena.Addr]FreeRtn

	allocbs, freebs, dupbs atomic.Uint64
}

// New builds a STREAMS subsystem over the given kernel allocator.
func New(al *core.Allocator) (*Subsystem, error) {
	s := &Subsystem{al: al, mem: al.Machine().Mem()}
	var err error
	if s.mblkCookie, err = al.GetCookie(mblkSize); err != nil {
		return nil, err
	}
	if s.dblkCookie, err = al.GetCookie(dblkSize); err != nil {
		return nil, err
	}
	for i := range s.refLocks {
		s.refLocks[i] = machine.NewSpinLock(al.Machine())
	}
	return s, nil
}

func (s *Subsystem) refLock(d arena.Addr) *machine.SpinLock {
	return s.refLocks[(d>>6)%uint64(len(s.refLocks))]
}

// --- field access ---------------------------------------------------------

func (s *Subsystem) get(c *machine.CPU, addr arena.Addr) arena.Addr {
	c.ReadAddr(addr)
	return s.mem.Load64(addr)
}

func (s *Subsystem) put(c *machine.CPU, addr arena.Addr, v uint64) {
	c.WriteAddr(addr)
	s.mem.Store64(addr, v)
}

// Cont returns the next block of the message (b_cont), or 0.
func (s *Subsystem) Cont(c *machine.CPU, m Msg) Msg { return s.get(c, m+mbCont) }

// Next returns the next message on a queue (b_next), or 0.
func (s *Subsystem) Next(c *machine.CPU, m Msg) Msg { return s.get(c, m+mbNext) }

// Rptr returns the message's read pointer.
func (s *Subsystem) Rptr(c *machine.CPU, m Msg) arena.Addr { return s.get(c, m+mbRptr) }

// Wptr returns the message's write pointer.
func (s *Subsystem) Wptr(c *machine.CPU, m Msg) arena.Addr { return s.get(c, m+mbWptr) }

// SetWptr advances the write pointer (after the caller filled data).
func (s *Subsystem) SetWptr(c *machine.CPU, m Msg, w arena.Addr) { s.put(c, m+mbWptr, w) }

// SetRptr advances the read pointer (after the caller consumed data).
func (s *Subsystem) SetRptr(c *machine.CPU, m Msg, r arena.Addr) { s.put(c, m+mbRptr, r) }

// Datap returns the message's data block address.
func (s *Subsystem) Datap(c *machine.CPU, m Msg) arena.Addr { return s.get(c, m+mbDatap) }

// Limit returns the end of the message's buffer (db_lim).
func (s *Subsystem) Limit(c *machine.CPU, m Msg) arena.Addr {
	return s.get(c, s.Datap(c, m)+dbLim)
}

// --- allocation -----------------------------------------------------------

// Allocb allocates a message: message block + data block + buffer of at
// least size bytes, linked together, with rptr = wptr = buffer base.
func (s *Subsystem) Allocb(c *machine.CPU, size uint64) (Msg, error) {
	if size == 0 {
		return 0, fmt.Errorf("streams: allocb(0)")
	}
	buf, err := s.al.Alloc(c, size)
	if err != nil {
		return 0, ErrNoMemory
	}
	db, err := s.al.AllocCookie(c, s.dblkCookie)
	if err != nil {
		s.al.Free(c, buf, size)
		return 0, ErrNoMemory
	}
	mb, err := s.al.AllocCookie(c, s.mblkCookie)
	if err != nil {
		s.al.FreeCookie(c, db, s.dblkCookie)
		s.al.Free(c, buf, size)
		return 0, ErrNoMemory
	}
	// Initialize the triple; this is the "nearly fixed code sequence"
	// whose cache misses the paper dissected.
	s.put(c, db+dbBase, buf)
	s.put(c, db+dbLim, buf+size)
	s.put(c, db+dbRef, 1)
	s.put(c, db+dbSize, size)
	s.put(c, mb+mbNext, 0)
	s.put(c, mb+mbCont, 0)
	s.put(c, mb+mbRptr, buf)
	s.put(c, mb+mbWptr, buf)
	s.put(c, mb+mbDatap, db)
	s.allocbs.Add(1)
	return mb, nil
}

// Dupb allocates a new message block referencing the same data block and
// buffer (db_ref is incremented); the new block gets its own rptr/wptr.
func (s *Subsystem) Dupb(c *machine.CPU, m Msg) (Msg, error) {
	db := s.Datap(c, m)
	mb, err := s.al.AllocCookie(c, s.mblkCookie)
	if err != nil {
		return 0, ErrNoMemory
	}
	lk := s.refLock(db)
	lk.Acquire(c)
	s.put(c, db+dbRef, s.get(c, db+dbRef)+1)
	lk.Release(c)

	s.put(c, mb+mbNext, 0)
	s.put(c, mb+mbCont, 0)
	s.put(c, mb+mbRptr, s.get(c, m+mbRptr))
	s.put(c, mb+mbWptr, s.get(c, m+mbWptr))
	s.put(c, mb+mbDatap, db)
	s.dupbs.Add(1)
	return mb, nil
}

// Freeb frees one message block; the data block and buffer are freed when
// the last reference drops.
func (s *Subsystem) Freeb(c *machine.CPU, m Msg) {
	db := s.Datap(c, m)
	s.al.FreeCookie(c, m, s.mblkCookie)

	lk := s.refLock(db)
	lk.Acquire(c)
	ref := s.get(c, db+dbRef) - 1
	s.put(c, db+dbRef, ref)
	lk.Release(c)
	if ref == 0 {
		base := s.get(c, db+dbBase)
		size := s.get(c, db+dbSize)
		if size == 0 {
			// External buffer (esballoc): run the caller's free routine
			// before the data block's address can be recycled.
			s.releaseExternal(c, db)
			s.al.FreeCookie(c, db, s.dblkCookie)
		} else {
			s.al.FreeCookie(c, db, s.dblkCookie)
			s.al.Free(c, base, size)
		}
	}
	s.freebs.Add(1)
}

// Freemsg frees every block of a segmented message (the b_cont chain);
// the paper's freeb trace was "a back-to-back pair of freebs invoked from
// freemsg".
func (s *Subsystem) Freemsg(c *machine.CPU, m Msg) {
	for m != 0 {
		next := s.Cont(c, m)
		s.Freeb(c, m)
		m = next
	}
}

// Linkb appends extra to the end of m's b_cont chain, forming a
// segmented message.
func (s *Subsystem) Linkb(c *machine.CPU, m, extra Msg) {
	for {
		next := s.Cont(c, m)
		if next == 0 {
			s.put(c, m+mbCont, extra)
			return
		}
		m = next
	}
}

// Msgdsize returns the number of data bytes in the message chain.
func (s *Subsystem) Msgdsize(c *machine.CPU, m Msg) uint64 {
	var n uint64
	for ; m != 0; m = s.Cont(c, m) {
		n += s.get(c, m+mbWptr) - s.get(c, m+mbRptr)
	}
	return n
}

// Write appends data to the message's buffer, advancing wptr. It fails
// if the buffer cannot hold the data.
func (s *Subsystem) Write(c *machine.CPU, m Msg, data []byte) error {
	w := s.Wptr(c, m)
	if w+uint64(len(data)) > s.Limit(c, m) {
		return fmt.Errorf("streams: buffer overflow")
	}
	copy(s.mem.Bytes(w, uint64(len(data))), data)
	c.WriteAddr(w)
	s.SetWptr(c, m, w+uint64(len(data)))
	return nil
}

// Read copies the message block's unread data into p, advancing rptr, and
// returns the byte count.
func (s *Subsystem) Read(c *machine.CPU, m Msg, p []byte) int {
	r, w := s.Rptr(c, m), s.Wptr(c, m)
	n := int(w - r)
	if n > len(p) {
		n = len(p)
	}
	if n > 0 {
		copy(p, s.mem.Bytes(r, uint64(n)))
		c.ReadAddr(r)
		s.SetRptr(c, m, r+uint64(n))
	}
	return n
}

// Copymsg allocates a fresh message chain with copies of the data (used
// when a writer must modify shared data).
func (s *Subsystem) Copymsg(c *machine.CPU, m Msg) (Msg, error) {
	var head, tail Msg
	for ; m != 0; m = s.Cont(c, m) {
		r, w := s.Rptr(c, m), s.Wptr(c, m)
		size := s.Limit(c, m) - s.get(c, s.Datap(c, m)+dbBase)
		nm, err := s.Allocb(c, size)
		if err != nil {
			if head != 0 {
				s.Freemsg(c, head)
			}
			return 0, err
		}
		if w > r {
			if err := s.Write(c, nm, s.mem.Bytes(r, w-r)); err != nil {
				s.Freemsg(c, head)
				s.Freeb(c, nm)
				return 0, err
			}
		}
		if head == 0 {
			head = nm
		} else {
			s.put(c, tail+mbCont, nm)
		}
		tail = nm
	}
	if head == 0 {
		return 0, fmt.Errorf("streams: copymsg of empty message")
	}
	return head, nil
}

// Pullupmsg concatenates the whole chain's data into a single new block,
// freeing the old chain (a simplified msgpullup/pullupmsg).
func (s *Subsystem) Pullupmsg(c *machine.CPU, m Msg) (Msg, error) {
	total := s.Msgdsize(c, m)
	if total == 0 {
		total = 1
	}
	nm, err := s.Allocb(c, total)
	if err != nil {
		return 0, err
	}
	for b := m; b != 0; b = s.Cont(c, b) {
		r, w := s.Rptr(c, b), s.Wptr(c, b)
		if w > r {
			if err := s.Write(c, nm, s.mem.Bytes(r, w-r)); err != nil {
				s.Freeb(c, nm)
				return 0, err
			}
		}
	}
	s.Freemsg(c, m)
	return nm, nil
}

// Stats reports subsystem counters.
type Stats struct {
	Allocbs uint64
	Freebs  uint64
	Dupbs   uint64
}

// Stats returns a snapshot (quiesce first or tolerate skew).
func (s *Subsystem) Stats() Stats {
	return Stats{Allocbs: s.allocbs.Load(), Freebs: s.freebs.Load(), Dupbs: s.dupbs.Load()}
}
