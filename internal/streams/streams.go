// Package streams reimplements the STREAMS buffer allocator whose
// behaviour opens the paper's Analysis section: allocb must "find a
// buffer capable of holding the specified number of bytes, allocate a
// message block and data block, and initialize them so that the message
// block points to the data block that points to the STREAMS buffer".
//
// As the paper describes for DYNIX ("special-purpose allocators such as
// allocb invoke the same functions as does the general-purpose kmem_alloc
// allocator" — reuse at the binary level), every structure here lives in
// arena memory obtained from the kernel memory allocator. Since the typed
// object-cache layer (internal/objcache) was added, the structures come
// from named caches over that allocator rather than raw cookie calls:
//
//   - "streams:mblk" holds message blocks whose b_next/b_cont are
//     constructed to zero, so allocb and dupb write only the three
//     per-message fields (rptr, wptr, datap) instead of all five.
//   - "streams:dblk<n>" caches fuse the data block and its buffer into
//     one backing allocation per power-of-two ladder size, the Solaris
//     refinement of the paper's split triple: a warm allocb performs two
//     magazine gets and four stores where the PR 6 code path performed
//     three allocator calls and nine stores. db_base, db_ref = 1,
//     db_size, and db_kind are constructed state; only db_lim (the
//     caller's requested capacity) is written per-allocation.
//   - "streams:dblk" holds bare data blocks for esballoc's external
//     buffers and for oversize requests whose buffer still comes from
//     the standard kmem interface.
//
// The message-block / data-block split continues to exist so a data
// block (and its buffer) can be shared by several messages via reference
// counting (dupb), e.g. to retain data for possible retransmission; the
// constructed db_ref = 1 also lets the common last-reference freeb skip
// the count writeback entirely.
package streams

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kmem/internal/allocif"
	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/machine"
	"kmem/internal/objcache"
)

// ErrNoMemory is returned when the underlying allocator is exhausted.
var ErrNoMemory = errors.New("streams: out of buffers")

// Msg is a message block handle: the arena address of an mblk.
type Msg = arena.Addr

// mblk field offsets. The 40-byte object rides in a 64-byte class block;
// the cache colors successive mblks across its slack.
const (
	mbNext      = 0  // b_next: next message on a queue
	mbCont      = 8  // b_cont: next block of this message
	mbRptr      = 16 // b_rptr: first unread byte
	mbWptr      = 24 // b_wptr: first unwritten byte
	mbDatap     = 32 // b_datap: the data block
	mblkObjSize = 40
)

// dblk field offsets.
const (
	dbBase      = 0  // db_base: buffer start
	dbLim       = 8  // db_lim: end of the caller's requested capacity
	dbRef       = 16 // db_ref: reference count (constructed to 1)
	dbSize      = 24 // buffer capacity owned by this dblk (0 = none)
	dbKind      = 32 // disposal route: which cache or path frees this dblk
	dblkObjSize = 40
	// dblkHdr is where an inline buffer starts within a fused
	// dblk+buffer object.
	dblkHdr = 64
)

// db_kind values. Kinds >= dbKindInline are inline-buffer cache indices
// biased by dbKindInline.
const (
	dbKindExternal = 0 // esballoc: buffer is the caller's, frtn frees it
	dbKindOversize = 1 // buffer separately allocated via the standard path
	dbKindInline   = 2
)

// inlineBufSizes is the buffer-capacity ladder of the fused dblk+buffer
// caches: each entry plus the dblkHdr header lands exactly on one of the
// allocator's power-of-two classes (128..4096), so the fusion wastes no
// slack beyond what the split design already lost to rounding.
var inlineBufSizes = []uint64{
	128 - dblkHdr,  // 64
	256 - dblkHdr,  // 192
	512 - dblkHdr,  // 448
	1024 - dblkHdr, // 960
	2048 - dblkHdr, // 1984
	4096 - dblkHdr, // 4032
}

// Subsystem is one machine's STREAMS buffer allocator, layered on the
// kernel memory allocator through typed object caches.
type Subsystem struct {
	al  *core.Allocator
	mem *arena.Arena

	mblks *objcache.Cache // "streams:mblk"
	dblks *objcache.Cache // "streams:dblk" (bare: esballoc / oversize)
	// inline[i] fuses a dblk with an inlineBufSizes[i]-byte buffer.
	inline []*objcache.Cache

	// refLocks guard dblk reference counts (standing in for the atomic
	// decrement of db_ref; in the simulator an acquisition charges the
	// bus-locked RMW this would be).
	refLocks [16]*machine.SpinLock

	// frtns maps live external data blocks (esballoc) to their
	// caller-supplied free routines.
	frtnMu sync.Mutex
	frtns  map[arena.Addr]FreeRtn

	allocbs, freebs, dupbs atomic.Uint64
}

// New builds a STREAMS subsystem over the given kernel allocator.
func New(al *core.Allocator) (*Subsystem, error) {
	s := &Subsystem{al: al, mem: al.Machine().Mem()}
	back := allocif.NewKMA{Allocator: al}
	m := al.Machine()
	var err error

	// Message blocks: next/cont constructed to zero. allocb writes only
	// rptr/wptr/datap; freeb restores next/cont before recycling.
	s.mblks, err = objcache.New(m, back, "streams:mblk", mblkObjSize, 8,
		func(c *machine.CPU, mem *arena.Arena, obj arena.Addr) {
			c.WriteAddr(obj + mbNext)
			mem.Store64(obj+mbNext, 0)
			c.WriteAddr(obj + mbCont)
			mem.Store64(obj+mbCont, 0)
		}, nil, objcache.Opts{})
	if err != nil {
		return nil, err
	}

	// Bare data blocks (external/oversize): only db_ref is constructed —
	// base, lim, size, and kind are per-use on these rare paths.
	s.dblks, err = objcache.New(m, back, "streams:dblk", dblkObjSize, 8,
		func(c *machine.CPU, mem *arena.Arena, obj arena.Addr) {
			c.WriteAddr(obj + dbRef)
			mem.Store64(obj+dbRef, 1)
		}, nil, objcache.Opts{})
	if err != nil {
		return nil, err
	}

	// Fused dblk+buffer caches, one per ladder size the allocator's
	// classes can hold. db_lim is deliberately not constructed: it
	// carries the caller's requested size, so Write still overflows at
	// exactly the bytes asked for, not at the fused capacity.
	for i, bufSize := range inlineBufSizes {
		if dblkHdr+bufSize > uint64(al.MaxSmall()) {
			break
		}
		kind := uint64(dbKindInline + i)
		k, err := objcache.New(m, back, fmt.Sprintf("streams:dblk%d", bufSize),
			dblkHdr+bufSize, 8,
			func(c *machine.CPU, mem *arena.Arena, obj arena.Addr) {
				c.WriteAddr(obj + dbBase)
				mem.Store64(obj+dbBase, uint64(obj+dblkHdr))
				c.WriteAddr(obj + dbRef)
				mem.Store64(obj+dbRef, 1)
				c.WriteAddr(obj + dbSize)
				mem.Store64(obj+dbSize, bufSize)
				c.WriteAddr(obj + dbKind)
				mem.Store64(obj+dbKind, kind)
			}, nil, objcache.Opts{})
		if err != nil {
			return nil, err
		}
		s.inline = append(s.inline, k)
	}

	for i := range s.refLocks {
		s.refLocks[i] = machine.NewSpinLock(m)
	}
	return s, nil
}

func (s *Subsystem) refLock(d arena.Addr) *machine.SpinLock {
	return s.refLocks[(d>>6)%uint64(len(s.refLocks))]
}

// --- field access ---------------------------------------------------------

func (s *Subsystem) get(c *machine.CPU, addr arena.Addr) arena.Addr {
	c.ReadAddr(addr)
	return s.mem.Load64(addr)
}

func (s *Subsystem) put(c *machine.CPU, addr arena.Addr, v uint64) {
	c.WriteAddr(addr)
	s.mem.Store64(addr, v)
}

// Cont returns the next block of the message (b_cont), or 0.
func (s *Subsystem) Cont(c *machine.CPU, m Msg) Msg { return s.get(c, m+mbCont) }

// Next returns the next message on a queue (b_next), or 0.
func (s *Subsystem) Next(c *machine.CPU, m Msg) Msg { return s.get(c, m+mbNext) }

// Rptr returns the message's read pointer.
func (s *Subsystem) Rptr(c *machine.CPU, m Msg) arena.Addr { return s.get(c, m+mbRptr) }

// Wptr returns the message's write pointer.
func (s *Subsystem) Wptr(c *machine.CPU, m Msg) arena.Addr { return s.get(c, m+mbWptr) }

// SetWptr advances the write pointer (after the caller filled data).
func (s *Subsystem) SetWptr(c *machine.CPU, m Msg, w arena.Addr) { s.put(c, m+mbWptr, w) }

// SetRptr advances the read pointer (after the caller consumed data).
func (s *Subsystem) SetRptr(c *machine.CPU, m Msg, r arena.Addr) { s.put(c, m+mbRptr, r) }

// Datap returns the message's data block address.
func (s *Subsystem) Datap(c *machine.CPU, m Msg) arena.Addr { return s.get(c, m+mbDatap) }

// Limit returns the end of the message's buffer (db_lim).
func (s *Subsystem) Limit(c *machine.CPU, m Msg) arena.Addr {
	return s.get(c, s.Datap(c, m)+dbLim)
}

// --- allocation -----------------------------------------------------------

// inlineFor returns the fused dblk+buffer cache serving size, or nil
// when size exceeds the ladder (the oversize path).
func (s *Subsystem) inlineFor(size uint64) *objcache.Cache {
	for i, bufSize := range inlineBufSizes[:len(s.inline)] {
		if size <= bufSize {
			return s.inline[i]
		}
	}
	return nil
}

// newMblk gets a constructed message block (next/cont already zero) and
// writes its three per-message fields.
func (s *Subsystem) newMblk(c *machine.CPU, rptr, wptr, db arena.Addr) (Msg, error) {
	mb, err := s.mblks.Get(c)
	if err != nil {
		return 0, ErrNoMemory
	}
	s.put(c, mb+mbRptr, uint64(rptr))
	s.put(c, mb+mbWptr, uint64(wptr))
	s.put(c, mb+mbDatap, uint64(db))
	return mb, nil
}

// Allocb allocates a message: message block + data block + buffer of at
// least size bytes, linked together, with rptr = wptr = buffer base.
// The common case is two magazine gets from constructed caches; only
// db_lim and the mblk's three pointers are written.
func (s *Subsystem) Allocb(c *machine.CPU, size uint64) (Msg, error) {
	if size == 0 {
		return 0, fmt.Errorf("streams: allocb(0)")
	}
	if k := s.inlineFor(size); k != nil {
		db, err := k.Get(c)
		if err != nil {
			return 0, ErrNoMemory
		}
		buf := db + dblkHdr
		s.put(c, db+dbLim, uint64(buf+arena.Addr(size)))
		mb, err := s.newMblk(c, buf, buf, db)
		if err != nil {
			k.Put(c, db)
			return 0, ErrNoMemory
		}
		s.allocbs.Add(1)
		return mb, nil
	}
	return s.allocbOversize(c, size)
}

// allocbOversize serves requests beyond the inline ladder: the buffer
// comes from the standard kmem interface and a bare dblk records how to
// free it.
func (s *Subsystem) allocbOversize(c *machine.CPU, size uint64) (Msg, error) {
	buf, err := s.al.Alloc(c, size)
	if err != nil {
		return 0, ErrNoMemory
	}
	db, err := s.dblks.Get(c)
	if err != nil {
		s.al.Free(c, buf, size)
		return 0, ErrNoMemory
	}
	s.put(c, db+dbBase, uint64(buf))
	s.put(c, db+dbLim, uint64(buf+arena.Addr(size)))
	s.put(c, db+dbSize, size)
	s.put(c, db+dbKind, dbKindOversize)
	mb, err := s.newMblk(c, buf, buf, db)
	if err != nil {
		s.dblks.Put(c, db)
		s.al.Free(c, buf, size)
		return 0, ErrNoMemory
	}
	s.allocbs.Add(1)
	return mb, nil
}

// Dupb allocates a new message block referencing the same data block and
// buffer (db_ref is incremented); the new block gets its own rptr/wptr.
func (s *Subsystem) Dupb(c *machine.CPU, m Msg) (Msg, error) {
	db := s.Datap(c, m)
	mb, err := s.newMblk(c, s.get(c, m+mbRptr), s.get(c, m+mbWptr), db)
	if err != nil {
		return 0, ErrNoMemory
	}
	lk := s.refLock(db)
	lk.Acquire(c)
	s.put(c, db+dbRef, s.get(c, db+dbRef)+1)
	lk.Release(c)
	s.dupbs.Add(1)
	return mb, nil
}

// Freeb frees one message block; the data block and buffer are recycled
// when the last reference drops. The mblk's next/cont are restored to
// their constructed zeros; the last-reference dblk keeps its constructed
// db_ref = 1, so the common freeb writes no dblk field at all.
func (s *Subsystem) Freeb(c *machine.CPU, m Msg) {
	db := s.Datap(c, m)
	s.put(c, m+mbNext, 0)
	s.put(c, m+mbCont, 0)
	s.mblks.Put(c, m)

	lk := s.refLock(db)
	lk.Acquire(c)
	ref := s.get(c, db+dbRef)
	if ref > 1 {
		s.put(c, db+dbRef, ref-1)
		lk.Release(c)
		s.freebs.Add(1)
		return
	}
	lk.Release(c)

	// Last reference: dispose by kind, constructed state intact.
	kind := s.get(c, db+dbKind)
	switch kind {
	case dbKindExternal:
		s.releaseExternal(c, db)
		s.dblks.Put(c, db)
	case dbKindOversize:
		base := s.get(c, db+dbBase)
		size := s.get(c, db+dbSize)
		s.dblks.Put(c, db)
		s.al.Free(c, base, size)
	default:
		s.inline[kind-dbKindInline].Put(c, db)
	}
	s.freebs.Add(1)
}

// Freemsg frees every block of a segmented message (the b_cont chain);
// the paper's freeb trace was "a back-to-back pair of freebs invoked from
// freemsg".
func (s *Subsystem) Freemsg(c *machine.CPU, m Msg) {
	for m != 0 {
		next := s.Cont(c, m)
		s.Freeb(c, m)
		m = next
	}
}

// Linkb appends extra to the end of m's b_cont chain, forming a
// segmented message.
func (s *Subsystem) Linkb(c *machine.CPU, m, extra Msg) {
	for {
		next := s.Cont(c, m)
		if next == 0 {
			s.put(c, m+mbCont, extra)
			return
		}
		m = next
	}
}

// Msgdsize returns the number of data bytes in the message chain.
func (s *Subsystem) Msgdsize(c *machine.CPU, m Msg) uint64 {
	var n uint64
	for ; m != 0; m = s.Cont(c, m) {
		n += s.get(c, m+mbWptr) - s.get(c, m+mbRptr)
	}
	return n
}

// Write appends data to the message's buffer, advancing wptr. It fails
// if the buffer cannot hold the data.
func (s *Subsystem) Write(c *machine.CPU, m Msg, data []byte) error {
	w := s.Wptr(c, m)
	if w+uint64(len(data)) > s.Limit(c, m) {
		return fmt.Errorf("streams: buffer overflow")
	}
	copy(s.mem.Bytes(w, uint64(len(data))), data)
	c.WriteAddr(w)
	s.SetWptr(c, m, w+uint64(len(data)))
	return nil
}

// Read copies the message block's unread data into p, advancing rptr, and
// returns the byte count.
func (s *Subsystem) Read(c *machine.CPU, m Msg, p []byte) int {
	r, w := s.Rptr(c, m), s.Wptr(c, m)
	n := int(w - r)
	if n > len(p) {
		n = len(p)
	}
	if n > 0 {
		copy(p, s.mem.Bytes(r, uint64(n)))
		c.ReadAddr(r)
		s.SetRptr(c, m, r+uint64(n))
	}
	return n
}

// Copymsg allocates a fresh message chain with copies of the data (used
// when a writer must modify shared data).
func (s *Subsystem) Copymsg(c *machine.CPU, m Msg) (Msg, error) {
	var head, tail Msg
	for ; m != 0; m = s.Cont(c, m) {
		r, w := s.Rptr(c, m), s.Wptr(c, m)
		size := s.Limit(c, m) - s.get(c, s.Datap(c, m)+dbBase)
		nm, err := s.Allocb(c, size)
		if err != nil {
			if head != 0 {
				s.Freemsg(c, head)
			}
			return 0, err
		}
		if w > r {
			if err := s.Write(c, nm, s.mem.Bytes(r, w-r)); err != nil {
				s.Freemsg(c, head)
				s.Freeb(c, nm)
				return 0, err
			}
		}
		if head == 0 {
			head = nm
		} else {
			s.put(c, tail+mbCont, nm)
		}
		tail = nm
	}
	if head == 0 {
		return 0, fmt.Errorf("streams: copymsg of empty message")
	}
	return head, nil
}

// Pullupmsg concatenates the whole chain's data into a single new block,
// freeing the old chain (a simplified msgpullup/pullupmsg).
func (s *Subsystem) Pullupmsg(c *machine.CPU, m Msg) (Msg, error) {
	total := s.Msgdsize(c, m)
	if total == 0 {
		total = 1
	}
	nm, err := s.Allocb(c, total)
	if err != nil {
		return 0, err
	}
	for b := m; b != 0; b = s.Cont(c, b) {
		r, w := s.Rptr(c, b), s.Wptr(c, b)
		if w > r {
			if err := s.Write(c, nm, s.mem.Bytes(r, w-r)); err != nil {
				s.Freeb(c, nm)
				return 0, err
			}
		}
	}
	s.Freemsg(c, m)
	return nm, nil
}

// Stats reports subsystem counters.
type Stats struct {
	Allocbs uint64
	Freebs  uint64
	Dupbs   uint64
	// CtorRuns/CtorSkips aggregate the subsystem's caches: how many
	// block initializations ran versus were inherited from constructed
	// state.
	CtorRuns  uint64
	CtorSkips uint64
}

// Stats returns a snapshot (quiesce first or tolerate skew).
func (s *Subsystem) Stats() Stats {
	st := Stats{Allocbs: s.allocbs.Load(), Freebs: s.freebs.Load(), Dupbs: s.dupbs.Load()}
	for _, k := range s.caches() {
		ks := k.Stats()
		st.CtorRuns += ks.CtorRuns
		st.CtorSkips += ks.CtorSkips
	}
	return st
}

// caches lists the subsystem's object caches (tests and benchmarks
// inspect their stats).
func (s *Subsystem) caches() []*objcache.Cache {
	out := []*objcache.Cache{s.mblks, s.dblks}
	return append(out, s.inline...)
}

// CacheStats returns per-cache statistics keyed by cache name.
func (s *Subsystem) CacheStats() map[string]objcache.Stats {
	out := make(map[string]objcache.Stats)
	for _, k := range s.caches() {
		out[k.Name()] = k.Stats()
	}
	return out
}
