package streams

import (
	"fmt"

	"kmem/internal/machine"
)

// The module framework: the half of Ritchie's STREAMS design that sits
// above the buffer allocator. A Stream is a chain of modules; each module
// has a read-side and a write-side ModQueue with a put procedure (called
// synchronously by the upstream module) and an optional service procedure
// (scheduled when a queue holds deferred messages). Queues carry high/low
// watermarks for flow control: a full downstream queue makes Canput
// false, and well-behaved put procedures then queue locally and let
// service procedures drain when the congestion clears — exactly the
// mechanism the kernel's networking used while hammering allocb/freeb.

// Put is a module's put procedure: it receives a message travelling in
// its queue's direction. It runs on the calling CPU.
type Put func(c *machine.CPU, q *ModQueue, m Msg)

// Service is a module's service procedure: it drains messages deferred
// with Putq when the scheduler runs the queue.
type Service func(c *machine.CPU, q *ModQueue)

// ModQueue is one direction of one module: a message queue plus its
// procedures and flow-control watermarks (a kernel queue_t).
type ModQueue struct {
	s    *Subsystem
	str  *Stream
	name string

	put Put
	svc Service

	lk      *machine.SpinLock
	head    Msg
	tail    Msg
	count   int // messages queued
	bytes   uint64
	hiwat   uint64 // flow control asserts when bytes exceed hiwat
	lowat   uint64 // and releases when bytes fall below lowat
	full    bool
	queued  bool // on the scheduler's run queue
	next    *ModQueue
	downIdx int // index of the downstream queue in the stream
}

// Name returns the queue's debug name.
func (q *ModQueue) Name() string { return q.name }

// Stream is a linear chain of queues: messages written at index 0 flow
// toward the last queue (the "driver" end).
type Stream struct {
	s      *Subsystem
	queues []*ModQueue

	// Scheduler: queues with deferred work, run by ScheduleRun.
	schedLk   *machine.SpinLock
	schedHead *ModQueue
	schedTail *ModQueue
}

// Module bundles the pieces a NewStream caller supplies per stage.
type Module struct {
	Name string
	// Put handles each arriving message; nil installs the default pass-
	// through put (forward when possible, defer under congestion).
	Put Put
	// Service drains deferred messages; nil installs the default service
	// (forward everything the downstream can accept).
	Service Service
	// Hiwat/Lowat are the flow-control watermarks in data bytes
	// (defaults 8192/2048).
	Hiwat, Lowat uint64
}

// NewStream builds a stream from the given modules. The final module is
// the driver: its put procedure consumes messages (the default driver
// frees them).
func (s *Subsystem) NewStream(modules ...Module) (*Stream, error) {
	if len(modules) == 0 {
		return nil, fmt.Errorf("streams: empty stream")
	}
	str := &Stream{s: s, schedLk: machine.NewSpinLock(s.al.Machine())}
	for i, mod := range modules {
		q := &ModQueue{
			s:       s,
			str:     str,
			name:    mod.Name,
			put:     mod.Put,
			svc:     mod.Service,
			lk:      machine.NewSpinLock(s.al.Machine()),
			hiwat:   mod.Hiwat,
			lowat:   mod.Lowat,
			downIdx: i + 1,
		}
		if q.hiwat == 0 {
			q.hiwat = 8192
		}
		if q.lowat == 0 {
			q.lowat = q.hiwat / 4
		}
		if q.put == nil {
			q.put = defaultPut
		}
		if q.svc == nil {
			q.svc = defaultService
		}
		str.queues = append(str.queues, q)
	}
	return str, nil
}

// Queue returns the i'th module queue.
func (str *Stream) Queue(i int) *ModQueue { return str.queues[i] }

// Down returns the queue downstream of q, or nil at the driver end.
func (q *ModQueue) Down() *ModQueue {
	if q.downIdx >= len(q.str.queues) {
		return nil
	}
	return q.str.queues[q.downIdx]
}

// Write injects a message at the head of the stream (the stream-head
// write, e.g. from a system call).
func (str *Stream) Write(c *machine.CPU, m Msg) {
	q := str.queues[0]
	q.put(c, q, m)
}

// Put invokes q's put procedure on m — how one module hands a message to
// the next (the putnext(9F) half).
func (q *ModQueue) Put(c *machine.CPU, m Msg) {
	q.put(c, q, m)
}

// Canput reports whether q can accept another message — false while the
// queue is flow-controlled (bytes above hiwat since the last drain below
// lowat).
func (q *ModQueue) Canput(c *machine.CPU) bool {
	q.lk.Acquire(c)
	ok := !q.full
	q.lk.Release(c)
	return ok
}

// PutqMod defers a message on q and schedules its service procedure —
// the queue half of putq(9F).
func (q *ModQueue) PutqMod(c *machine.CPU, m Msg) {
	size := q.s.Msgdsize(c, m)
	q.s.put(c, m+mbNext, 0)
	q.lk.Acquire(c)
	if q.tail == 0 {
		q.head = m
	} else {
		q.s.put(c, q.tail+mbNext, m)
	}
	q.tail = m
	q.count++
	q.bytes += size
	if q.bytes > q.hiwat {
		q.full = true
	}
	needSched := !q.queued
	if needSched {
		q.queued = true
	}
	q.lk.Release(c)
	if needSched {
		q.str.schedule(c, q)
	}
}

// GetqMod removes the first deferred message (0 when empty), releasing
// flow control when the queue drains below lowat.
func (q *ModQueue) GetqMod(c *machine.CPU) Msg {
	q.lk.Acquire(c)
	m := q.head
	if m != 0 {
		q.head = q.s.Next(c, m)
		if q.head == 0 {
			q.tail = 0
		}
		q.count--
		q.lk.Release(c)
		size := q.s.Msgdsize(c, m)
		q.s.put(c, m+mbNext, 0)
		q.lk.Acquire(c)
		if q.bytes >= size {
			q.bytes -= size
		} else {
			q.bytes = 0
		}
		if q.full && q.bytes < q.lowat {
			q.full = false
		}
	}
	q.lk.Release(c)
	return m
}

// Len returns the number of deferred messages.
func (q *ModQueue) Len(c *machine.CPU) int {
	q.lk.Acquire(c)
	n := q.count
	q.lk.Release(c)
	return n
}

// schedule appends q to the stream's run queue.
func (str *Stream) schedule(c *machine.CPU, q *ModQueue) {
	str.schedLk.Acquire(c)
	if str.schedTail == nil {
		str.schedHead = q
	} else {
		str.schedTail.next = q
	}
	str.schedTail = q
	q.next = nil
	str.schedLk.Release(c)
}

// RunService runs up to max pending service procedures on the calling
// CPU (the kernel's queuerun). It returns the number run; 0 means the
// stream is quiescent.
func (str *Stream) RunService(c *machine.CPU, max int) int {
	ran := 0
	for ran < max {
		str.schedLk.Acquire(c)
		q := str.schedHead
		if q != nil {
			str.schedHead = q.next
			if str.schedHead == nil {
				str.schedTail = nil
			}
			q.next = nil
		}
		str.schedLk.Release(c)
		if q == nil {
			break
		}
		q.lk.Acquire(c)
		q.queued = false
		q.lk.Release(c)
		q.svc(c, q)
		ran++
		// If the service left messages behind (still congested
		// downstream), it re-queues itself via PutqMod/reschedule.
		q.lk.Acquire(c)
		resched := q.count > 0 && !q.queued
		if resched {
			q.queued = true
		}
		q.lk.Release(c)
		if resched {
			str.schedule(c, q)
		}
	}
	return ran
}

// defaultPut forwards to the downstream queue when it can accept,
// deferring locally otherwise; the driver end frees the message.
func defaultPut(c *machine.CPU, q *ModQueue, m Msg) {
	down := q.Down()
	if down == nil {
		q.s.Freemsg(c, m) // default driver: sink
		return
	}
	q.lk.Acquire(c)
	hasBacklog := q.count > 0
	q.lk.Release(c)
	if hasBacklog || !down.Canput(c) {
		q.PutqMod(c, m) // preserve ordering behind deferred messages
		return
	}
	down.put(c, down, m)
}

// defaultService forwards deferred messages downstream until the queue
// empties or the downstream flow-controls.
func defaultService(c *machine.CPU, q *ModQueue) {
	down := q.Down()
	for {
		if down != nil && !down.Canput(c) {
			return // stay scheduled; RunService will requeue us
		}
		m := q.GetqMod(c)
		if m == 0 {
			return
		}
		if down == nil {
			q.s.Freemsg(c, m)
			continue
		}
		down.put(c, down, m)
	}
}

// Drain runs service procedures until the whole stream is empty (test
// and teardown helper). It panics if progress stalls with messages still
// queued (a module deadlock).
func (str *Stream) Drain(c *machine.CPU) {
	for i := 0; i < 1<<20; i++ {
		total := 0
		for _, q := range str.queues {
			total += q.Len(c)
		}
		if total == 0 {
			return
		}
		if str.RunService(c, 16) == 0 {
			// Nothing runnable but messages remain: re-schedule any
			// queue with backlog (e.g. flow control released without a
			// fresh Putq).
			for _, q := range str.queues {
				q.lk.Acquire(c)
				if q.count > 0 && !q.queued {
					q.queued = true
					q.lk.Release(c)
					str.schedule(c, q)
					continue
				}
				q.lk.Release(c)
			}
			if str.RunService(c, 16) == 0 {
				panic("streams: Drain stalled with messages queued")
			}
		}
	}
	panic("streams: Drain did not converge")
}
