package streams

import (
	"sync"
	"testing"

	"kmem/internal/arena"
	"kmem/internal/machine"
)

func TestEsballocBasic(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)

	// The "driver's DMA region": a large kmem block we manage ourselves.
	region, err := al.Alloc(c, 8192)
	if err != nil {
		t.Fatal(err)
	}
	released := 0
	msg, err := s.Esballoc(c, region, 8192, func(c *machine.CPU) { released++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(c, msg, []byte("dma payload")); err != nil {
		t.Fatal(err)
	}
	// The message data lives in the caller's region, not a kmem buffer.
	if got := s.Rptr(c, msg); got != region {
		t.Fatalf("rptr %#x, want region base %#x", got, region)
	}
	s.Freeb(c, msg)
	if released != 1 {
		t.Fatalf("free routine ran %d times", released)
	}
	al.Free(c, region, 8192)
	quiesce(t, s, al, m)
}

func TestEsballocDupDelaysRelease(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	region, _ := al.Alloc(c, 1024)
	released := 0
	msg, err := s.Esballoc(c, region, 1024, func(c *machine.CPU) { released++ })
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Dupb(c, msg)
	if err != nil {
		t.Fatal(err)
	}
	s.Freeb(c, msg)
	if released != 0 {
		t.Fatal("released while a dup was live")
	}
	s.Freeb(c, d)
	if released != 1 {
		t.Fatalf("free routine ran %d times", released)
	}
	al.Free(c, region, 1024)
	quiesce(t, s, al, m)
}

func TestEsballocErrors(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	region, _ := al.Alloc(c, 64)
	defer al.Free(c, region, 64)
	if _, err := s.Esballoc(c, region, 0, func(*machine.CPU) {}); err == nil {
		t.Fatal("zero-size accepted")
	}
	if _, err := s.Esballoc(c, region, 64, nil); err == nil {
		t.Fatal("nil free routine accepted")
	}
}

func TestEsballocNativeConcurrent(t *testing.T) {
	s, al, m := newTest(t, 4, machine.Native)
	var released sync.Map
	var wg sync.WaitGroup
	regions := make([]arena.Addr, 4)
	for i := range regions {
		r, err := al.Alloc(m.CPU(0), 4096)
		if err != nil {
			t.Fatal(err)
		}
		regions[i] = r
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(c *machine.CPU, region arena.Addr) {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				key := [2]uint64{uint64(c.ID()), uint64(j)}
				msg, err := s.Esballoc(c, region, 4096, func(c *machine.CPU) {
					released.Store(key, true)
				})
				if err != nil {
					t.Errorf("esballoc: %v", err)
					return
				}
				s.Freeb(c, msg)
				if _, ok := released.Load(key); !ok {
					t.Errorf("free routine %v did not run", key)
					return
				}
			}
		}(m.CPU(i), regions[i])
	}
	wg.Wait()
	for _, r := range regions {
		al.Free(m.CPU(0), r, 4096)
	}
	quiesce(t, s, al, m)
}
