package streams

import (
	"testing"

	"kmem/internal/machine"
)

// Edge-case tests for the message primitives.

func TestMsgdsizeEmptyChain(t *testing.T) {
	s, _, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	if got := s.Msgdsize(c, 0); got != 0 {
		t.Fatalf("Msgdsize(nil) = %d", got)
	}
}

func TestReadPartialAndDrainedBlock(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	msg, _ := s.Allocb(c, 64)
	_ = s.Write(c, msg, []byte("abcdef"))

	p := make([]byte, 4)
	if n := s.Read(c, msg, p); n != 4 || string(p[:n]) != "abcd" {
		t.Fatalf("first read: %d %q", n, p[:n])
	}
	if n := s.Read(c, msg, p); n != 2 || string(p[:n]) != "ef" {
		t.Fatalf("second read: %d %q", n, p[:n])
	}
	if n := s.Read(c, msg, p); n != 0 {
		t.Fatalf("drained read returned %d", n)
	}
	s.Freeb(c, msg)
	quiesce(t, s, al, m)
}

func TestWriteExactCapacity(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	msg, _ := s.Allocb(c, 16)
	if err := s.Write(c, msg, make([]byte, 16)); err != nil {
		t.Fatalf("exact-fit write rejected: %v", err)
	}
	if err := s.Write(c, msg, []byte{1}); err == nil {
		t.Fatal("over-capacity write accepted")
	}
	s.Freeb(c, msg)
	quiesce(t, s, al, m)
}

func TestAllocbZeroRejected(t *testing.T) {
	s, _, m := newTest(t, 1, machine.Sim)
	if _, err := s.Allocb(m.CPU(0), 0); err == nil {
		t.Fatal("allocb(0) accepted")
	}
}

func TestCopymsgEmptyBlocks(t *testing.T) {
	// Copying a chain that includes zero-data blocks must preserve the
	// chain length and total data.
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	head, _ := s.Allocb(c, 32) // left empty
	mid, _ := s.Allocb(c, 32)
	_ = s.Write(c, mid, []byte("data"))
	s.Linkb(c, head, mid)

	cp, err := s.Copymsg(c, head)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Msgdsize(c, cp); got != 4 {
		t.Fatalf("copied size = %d", got)
	}
	n := 0
	for b := cp; b != 0; b = s.Cont(c, b) {
		n++
	}
	if n != 2 {
		t.Fatalf("copied chain length = %d", n)
	}
	s.Freemsg(c, head)
	s.Freemsg(c, cp)
	quiesce(t, s, al, m)
}

func TestPullupSingleBlockNoOp(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	msg, _ := s.Allocb(c, 64)
	_ = s.Write(c, msg, []byte("only"))
	flat, err := s.Pullupmsg(c, msg)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 8)
	if n := s.Read(c, flat, p); string(p[:n]) != "only" {
		t.Fatalf("pullup data %q", p[:n])
	}
	s.Freeb(c, flat)
	quiesce(t, s, al, m)
}

func TestDupbOfDupb(t *testing.T) {
	// Reference counting through chained dups: data freed only at the
	// last release, in any order.
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	m1, _ := s.Allocb(c, 64)
	_ = s.Write(c, m1, []byte("shared"))
	m2, _ := s.Dupb(c, m1)
	m3, _ := s.Dupb(c, m2)

	s.Freeb(c, m2)
	s.Freeb(c, m1)
	p := make([]byte, 8)
	if n := s.Read(c, m3, p); string(p[:n]) != "shared" {
		t.Fatalf("data gone early: %q", p[:n])
	}
	s.Freeb(c, m3)
	quiesce(t, s, al, m)
}

func TestQueueLenTracksBytes(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	str, err := s.NewStream(
		Module{Name: "q", Hiwat: 100, Lowat: 20,
			Put: func(c *machine.CPU, q *ModQueue, m Msg) { q.PutqMod(c, m) }},
	)
	if err != nil {
		t.Fatal(err)
	}
	q := str.Queue(0)
	var msgs []Msg
	for i := 0; i < 3; i++ {
		msg, _ := s.Allocb(c, 64)
		_ = s.Write(c, msg, make([]byte, 50))
		str.Write(c, msg)
		msgs = append(msgs, msg)
	}
	if q.Len(c) != 3 {
		t.Fatalf("len = %d", q.Len(c))
	}
	if q.Canput(c) {
		t.Fatal("150 bytes > hiwat 100: should be full")
	}
	// Drain below lowat: flow control releases.
	for q.Len(c) > 0 {
		m := q.GetqMod(c)
		s.Freemsg(c, m)
	}
	if !q.Canput(c) {
		t.Fatal("flow control stuck after drain")
	}
	quiesce(t, s, al, m)
}
