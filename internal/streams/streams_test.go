package streams

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"kmem/internal/core"
	"kmem/internal/machine"
)

func newTest(t *testing.T, ncpu int, mode machine.Mode) (*Subsystem, *core.Allocator, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Mode = mode
	cfg.NumCPUs = ncpu
	cfg.MemBytes = 16 << 20
	cfg.PhysPages = 2048
	m := machine.New(cfg)
	al, err := core.New(m, core.Params{RadixSort: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(al)
	if err != nil {
		t.Fatal(err)
	}
	return s, al, m
}

func quiesce(t *testing.T, s *Subsystem, al *core.Allocator, m *machine.Machine) {
	t.Helper()
	al.DrainAll(m.CPU(0))
	if err := al.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocbFreeb(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	msg, err := s.Allocb(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Msgdsize(c, msg) != 0 {
		t.Fatal("fresh message not empty")
	}
	if err := s.Write(c, msg, []byte("hello, world")); err != nil {
		t.Fatal(err)
	}
	if got := s.Msgdsize(c, msg); got != 12 {
		t.Fatalf("msgdsize = %d", got)
	}
	p := make([]byte, 32)
	n := s.Read(c, msg, p)
	if string(p[:n]) != "hello, world" {
		t.Fatalf("read %q", p[:n])
	}
	s.Freeb(c, msg)
	quiesce(t, s, al, m)
}

func TestBufferOverflowRejected(t *testing.T) {
	s, _, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	msg, _ := s.Allocb(c, 16)
	if err := s.Write(c, msg, make([]byte, 17)); err == nil {
		t.Fatal("overflow accepted")
	}
	s.Freeb(c, msg)
}

func TestDupbSharesData(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	msg, _ := s.Allocb(c, 64)
	_ = s.Write(c, msg, []byte("retained"))
	dup, err := s.Dupb(c, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Freeing the original must keep the data alive for the dup.
	s.Freeb(c, msg)
	p := make([]byte, 16)
	n := s.Read(c, dup, p)
	if string(p[:n]) != "retained" {
		t.Fatalf("dup read %q", p[:n])
	}
	s.Freeb(c, dup)
	quiesce(t, s, al, m)
}

func TestFreemsgChains(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	head, _ := s.Allocb(c, 32)
	for i := 0; i < 5; i++ {
		extra, _ := s.Allocb(c, 32)
		_ = s.Write(c, extra, []byte{byte(i)})
		s.Linkb(c, head, extra)
	}
	if got := s.Msgdsize(c, head); got != 5 {
		t.Fatalf("msgdsize = %d", got)
	}
	s.Freemsg(c, head)
	quiesce(t, s, al, m)
}

func TestCopymsgIndependence(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	orig, _ := s.Allocb(c, 64)
	_ = s.Write(c, orig, []byte("original"))
	cp, err := s.Copymsg(c, orig)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the copy must not affect the original.
	w := s.Rptr(c, cp)
	copy(m.Mem().Bytes(w, 8), "CLOBBERD")
	p := make([]byte, 16)
	n := s.Read(c, orig, p)
	if string(p[:n]) != "original" {
		t.Fatalf("original corrupted: %q", p[:n])
	}
	s.Freeb(c, orig)
	s.Freemsg(c, cp)
	quiesce(t, s, al, m)
}

func TestPullupmsg(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	head, _ := s.Allocb(c, 16)
	_ = s.Write(c, head, []byte("seg1-"))
	for _, part := range []string{"seg2-", "seg3"} {
		b, _ := s.Allocb(c, 16)
		_ = s.Write(c, b, []byte(part))
		s.Linkb(c, head, b)
	}
	flat, err := s.Pullupmsg(c, head)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cont(c, flat) != 0 {
		t.Fatal("pullup left a chain")
	}
	p := make([]byte, 32)
	n := s.Read(c, flat, p)
	if string(p[:n]) != "seg1-seg2-seg3" {
		t.Fatalf("pullup data %q", p[:n])
	}
	s.Freeb(c, flat)
	quiesce(t, s, al, m)
}

func TestQueueFIFO(t *testing.T) {
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	q := s.NewQueue()
	var msgs []Msg
	for i := 0; i < 10; i++ {
		msg, _ := s.Allocb(c, 32)
		_ = s.Write(c, msg, []byte{byte(i)})
		q.Putq(c, msg)
		msgs = append(msgs, msg)
	}
	if q.Len(c) != 10 {
		t.Fatalf("len = %d", q.Len(c))
	}
	for i := 0; i < 10; i++ {
		msg := q.Getq(c)
		if msg != msgs[i] {
			t.Fatalf("dequeue %d: got %#x want %#x", i, msg, msgs[i])
		}
		s.Freeb(c, msg)
	}
	if q.Getq(c) != 0 {
		t.Fatal("empty queue returned a message")
	}
	quiesce(t, s, al, m)
}

func TestCrossCPUPipelineSim(t *testing.T) {
	// Producer on CPU 0, consumer on CPU 1, deterministic simulation.
	s, al, m := newTest(t, 2, machine.Sim)
	q := s.NewQueue()
	sent, recvd := 0, 0
	const total = 2000
	m.Run(func(c *machine.CPU) bool {
		switch c.ID() {
		case 0:
			if sent >= total {
				return false
			}
			msg, err := s.Allocb(c, 256)
			if err != nil {
				t.Fatalf("allocb: %v", err)
			}
			_ = s.Write(c, msg, []byte("payload"))
			q.Putq(c, msg)
			sent++
			return true
		default:
			msg := q.Getq(c)
			if msg != 0 {
				s.Freemsg(c, msg)
				recvd++
			} else {
				c.Work(50) // poll idle
			}
			return recvd < total
		}
	})
	if recvd != total {
		t.Fatalf("received %d of %d", recvd, total)
	}
	quiesce(t, s, al, m)
	// The producer/consumer split must have exercised the global layer.
	st := al.Stats(m.CPU(0))
	var gets uint64
	for _, cs := range st.Classes {
		gets += cs.GlobalGets
	}
	if gets == 0 {
		t.Fatal("pipeline never reached the global layer")
	}
}

func TestNativePipelineRace(t *testing.T) {
	// Real goroutines through the queue, for the race detector.
	s, al, m := newTest(t, 4, machine.Native)
	q := s.NewQueue()
	const perProducer = 5000
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(c *machine.CPU) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				msg, err := s.Allocb(c, 128)
				if err != nil {
					t.Errorf("allocb: %v", err)
					return
				}
				_ = s.Write(c, msg, []byte("x"))
				q.Putq(c, msg)
			}
		}(m.CPU(p))
	}
	var got sync.WaitGroup
	var mu sync.Mutex
	n := 0
	for p := 2; p < 4; p++ {
		got.Add(1)
		go func(c *machine.CPU) {
			defer got.Done()
			for {
				mu.Lock()
				if n >= 2*perProducer {
					mu.Unlock()
					return
				}
				mu.Unlock()
				if msg := q.Getq(c); msg != 0 {
					s.Freemsg(c, msg)
					mu.Lock()
					n++
					mu.Unlock()
				}
			}
		}(m.CPU(p))
	}
	wg.Wait()
	got.Wait()
	quiesce(t, s, al, m)
}

func TestQuickMessageOps(t *testing.T) {
	// Property: any sequence of allocb/dupb/linkb/freeb/freemsg leaves the
	// allocator consistent with zero outstanding memory after final frees.
	s, al, m := newTest(t, 1, machine.Sim)
	c := m.CPU(0)
	f := func(ops []uint8) bool {
		var live []Msg
		for _, op := range ops {
			switch {
			case op < 120 || len(live) == 0:
				msg, err := s.Allocb(c, uint64(op)*8+1)
				if err != nil {
					return false
				}
				live = append(live, msg)
			case op < 170:
				d, err := s.Dupb(c, live[int(op)%len(live)])
				if err != nil {
					return false
				}
				live = append(live, d)
			case op < 220 && len(live) >= 2:
				// Link the last message onto a random earlier one.
				i := int(op) % (len(live) - 1)
				s.Linkb(c, live[i], live[len(live)-1])
				live = live[:len(live)-1]
			default:
				i := int(op) % len(live)
				s.Freemsg(c, live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, msg := range live {
			s.Freemsg(c, msg)
		}
		al.DrainAll(c)
		return al.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDataSurvivesQueuePassage(t *testing.T) {
	s, al, m := newTest(t, 2, machine.Sim)
	c0, c1 := m.CPU(0), m.CPU(1)
	q := s.NewQueue()
	payload := bytes.Repeat([]byte{0xa5}, 200)
	msg, _ := s.Allocb(c0, 256)
	_ = s.Write(c0, msg, payload)
	q.Putq(c0, msg)

	got := q.Getq(c1)
	p := make([]byte, 256)
	n := s.Read(c1, got, p)
	if !bytes.Equal(p[:n], payload) {
		t.Fatal("payload corrupted crossing CPUs")
	}
	s.Freeb(c1, got)
	quiesce(t, s, al, m)
}
