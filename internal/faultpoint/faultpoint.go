// Package faultpoint is a deterministic fault-injection registry.
//
// The allocator's exhaustion paths — physical-page map failure, virtual
// address-space exhaustion, page-pool refill failure — are the hardest
// code in the system to reach from a test: provoking them for real means
// actually filling the heap, and provoking them *mid-operation* (after
// some resources of a multi-step allocation have been claimed) is nearly
// impossible on demand. A fault point is a named hook compiled into such
// a path; tests and the `kmembench pressure` harness arm points with a
// deterministic schedule (skip the first N hits, then fire M times, or
// fire with seeded probability p) and the path fails exactly as if the
// underlying resource were exhausted. Disarmed or unarmed points cost
// one mutex acquisition and a map lookup, and only on slow paths.
//
// Determinism: the probabilistic schedule draws from a rand.Rand seeded
// at Set construction, and every decision is serialized under the Set's
// mutex. On the single-goroutine simulator the full decision sequence is
// therefore reproducible from the seed alone; under native concurrency
// the per-point counters remain exact (the mutex makes Should atomic)
// even though goroutine interleaving chooses which caller sees a given
// firing.
package faultpoint

import (
	"fmt"
	"math/rand"
	"sync"
)

// Spec schedules one fault point's firings. The zero Spec fires on every
// hit while armed.
type Spec struct {
	// After skips the first After hits before the point may fire —
	// "let the allocator warm up, then fail the Nth map".
	After uint64
	// Count caps the number of firings; 0 means unlimited.
	Count uint64
	// Prob, when in (0,1), fires each eligible hit with this probability
	// using the Set's seeded source. 0 or >= 1 fires deterministically on
	// every eligible hit.
	Prob float64
}

// Stats is a snapshot of one fault point's counters.
type Stats struct {
	Hits  uint64 // times the point was evaluated while armed
	Fired uint64 // times it reported failure
}

type point struct {
	spec  Spec
	hits  uint64
	fired uint64
}

// Set is a registry of named fault points sharing one seeded random
// source. A nil *Set is valid and never fires, so production code may
// consult an optional Set without a guard.
type Set struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*point
}

// New returns an empty Set whose probabilistic schedules draw from the
// given seed.
func New(seed int64) *Set {
	return &Set{
		rng:    rand.New(rand.NewSource(seed)),
		points: make(map[string]*point),
	}
}

// Arm installs (or replaces) the named point's schedule and resets its
// counters.
func (s *Set) Arm(name string, spec Spec) {
	s.mu.Lock()
	s.points[name] = &point{spec: spec}
	s.mu.Unlock()
}

// Disarm removes the named point; subsequent Should calls return false
// and are not counted.
func (s *Set) Disarm(name string) {
	s.mu.Lock()
	delete(s.points, name)
	s.mu.Unlock()
}

// Should reports whether the named point fires on this hit. Unarmed
// points (and a nil Set) never fire.
func (s *Set) Should(name string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.points[name]
	if !ok {
		return false
	}
	p.hits++
	if p.hits <= p.spec.After {
		return false
	}
	if p.spec.Count > 0 && p.fired >= p.spec.Count {
		return false
	}
	if p.spec.Prob > 0 && p.spec.Prob < 1 && s.rng.Float64() >= p.spec.Prob {
		return false
	}
	p.fired++
	return true
}

// PointStats returns the named point's counters (zero if unarmed).
func (s *Set) PointStats(name string) Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.points[name]; ok {
		return Stats{Hits: p.hits, Fired: p.fired}
	}
	return Stats{}
}

// Fired returns the total firings across every armed point.
func (s *Set) Fired() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, p := range s.points {
		n += p.fired
	}
	return n
}

// String lists the armed points and their counters, for test failures.
func (s *Set) String() string {
	if s == nil {
		return "faultpoint.Set(nil)"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := "faultpoints{"
	first := true
	for name, p := range s.points {
		if !first {
			out += " "
		}
		first = false
		out += fmt.Sprintf("%s:%d/%d", name, p.fired, p.hits)
	}
	return out + "}"
}
