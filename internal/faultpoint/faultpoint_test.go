package faultpoint

import (
	"sync"
	"testing"
)

func TestNilSetNeverFires(t *testing.T) {
	var s *Set
	if s.Should("anything") {
		t.Fatal("nil set fired")
	}
	if s.Fired() != 0 {
		t.Fatal("nil set counted firings")
	}
	if got := s.PointStats("anything"); got != (Stats{}) {
		t.Fatalf("nil set stats = %+v", got)
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Should("not-armed") {
			t.Fatal("unarmed point fired")
		}
	}
	if st := s.PointStats("not-armed"); st.Hits != 0 {
		t.Fatalf("unarmed point counted %d hits", st.Hits)
	}
}

func TestAfterAndCount(t *testing.T) {
	s := New(1)
	s.Arm("p", Spec{After: 3, Count: 2})
	var fired []int
	for i := 0; i < 10; i++ {
		if s.Should("p") {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("fired at %v, want [3 4]", fired)
	}
	if st := s.PointStats("p"); st.Hits != 10 || st.Fired != 2 {
		t.Fatalf("stats = %+v, want 10 hits / 2 fired", st)
	}
}

func TestZeroSpecAlwaysFires(t *testing.T) {
	s := New(1)
	s.Arm("p", Spec{})
	for i := 0; i < 5; i++ {
		if !s.Should("p") {
			t.Fatalf("hit %d did not fire", i)
		}
	}
}

func TestProbDeterministicBySeed(t *testing.T) {
	run := func(seed int64) []bool {
		s := New(seed)
		s.Arm("p", Spec{Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = s.Should("p")
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	var fired int
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired < 30 || fired > 90 {
		t.Fatalf("prob 0.3 fired %d/200 times", fired)
	}
}

func TestDisarmStops(t *testing.T) {
	s := New(1)
	s.Arm("p", Spec{})
	if !s.Should("p") {
		t.Fatal("armed point did not fire")
	}
	s.Disarm("p")
	if s.Should("p") {
		t.Fatal("disarmed point fired")
	}
	if st := s.PointStats("p"); st != (Stats{}) {
		t.Fatalf("disarmed point kept stats %+v", st)
	}
}

func TestConcurrentShouldCountsExactly(t *testing.T) {
	s := New(7)
	s.Arm("p", Spec{Count: 50})
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	fired := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if s.Should("p") {
					fired[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range fired {
		total += n
	}
	if total != 50 {
		t.Fatalf("Count=50 fired %d times across goroutines", total)
	}
	if st := s.PointStats("p"); st.Hits != goroutines*per || st.Fired != 50 {
		t.Fatalf("stats = %+v", st)
	}
}
