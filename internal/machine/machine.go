// Package machine provides the shared-memory multiprocessor substrate the
// allocators run on.
//
// The paper's evaluation platform was a Sequent Symmetry 2000 — up to 26
// 50 MHz 80486 CPUs on a shared bus — instrumented with hardware monitors
// and a logic analyzer. Its results are driven by counts of instructions,
// cache-line transfers, atomic (bus-locking) operations and spinlock
// contention, not by anything host-specific. This package therefore models
// exactly those quantities:
//
//   - Each simulated CPU has its own virtual cycle clock and a
//     direct-mapped cache of configurable size.
//   - A coherence directory tracks line ownership; reads of lines owned
//     exclusively elsewhere and writes to lines not owned exclusively are
//     misses that cross the shared bus.
//   - The bus is a single resource with per-transaction occupancy, so
//     heavy miss or spin traffic from one CPU delays every other CPU —
//     the effect that flattens the lock-based allocators in Figures 7/8.
//   - Spinlocks model test-and-test-and-set acquisition: a contended
//     acquire waits for the holder's release and injects retry traffic
//     onto the bus.
//
// The simulation is entirely single-goroutine and deterministic: virtual
// CPUs are scheduled one operation at a time in increasing virtual-clock
// order (a conservative discrete-event model).
//
// The same package also offers a native mode in which every cost hook is a
// no-op and locks are real sync.Mutexes. The identical allocator code then
// runs as an ordinary concurrent Go library, which lets the test suite
// exercise it with real goroutines under the race detector.
package machine

import (
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/physmem"
)

// Mode selects between the deterministic simulator and native execution.
type Mode int

const (
	// Sim runs virtual CPUs under the discrete-event cost model.
	Sim Mode = iota
	// Native runs real goroutines with all cost hooks disabled.
	Native
)

// MaxCPUs is the largest supported CPU count (the coherence directory
// uses an 8-bit owner field; the paper's machine had 26 CPUs).
const MaxCPUs = 64

// Config describes the simulated machine. The defaults returned by
// DefaultConfig approximate the paper's Symmetry 2000.
type Config struct {
	Mode    Mode
	NumCPUs int

	// Nodes is the number of NUMA nodes. CPUs are assigned to nodes in
	// contiguous blocks (cpu*Nodes/NumCPUs); each node has its own local
	// bus, and the nodes are joined by an interconnect with its own
	// occupancy and latency. The default (0 or 1) is a single node whose
	// lone bus behaves exactly like the classic shared-bus Symmetry model.
	Nodes int

	// MemBytes is the size of the kernel virtual address arena.
	MemBytes uint64
	// PhysPages is the number of physical pages available for mapping.
	PhysPages int64
	// PageBytes is the machine page size.
	PageBytes uint64

	// HzMHz is the CPU clock rate in MHz, used only to convert cycle
	// counts to seconds when reporting results.
	HzMHz int64

	// LineShift is log2 of the cache line size (5 => 32-byte lines, as
	// on the i486 generation).
	LineShift uint
	// CacheLines is the number of lines in each CPU's direct-mapped
	// cache. Must be a power of two.
	CacheLines int

	// TLBEntries enables a direct-mapped per-CPU TLB over arena pages
	// when non-zero (must then be a power of two). The paper's footnote
	// notes "variations in the number of TLB misses" as a secondary
	// effect; the model is off by default to keep the calibrated
	// figures primary.
	TLBEntries int

	// Cycle costs.
	CyclesPerInsn  int64 // cost of one straight-line instruction
	HitCycles      int64 // extra cost of a cache hit (usually 0)
	MissCycles     int64 // stall cycles for a line transfer across the bus
	BusCycles      int64 // bus occupancy per transaction
	AtomicCycles   int64 // extra cost of a bus-locked read-modify-write
	TLBMissCycles  int64 // page-table walk cost when TLBEntries > 0
	IntrCycles     int64 // cost of an interrupt disable/enable pair
	SpinRetryGap   int64 // cycles between spin retries on a held lock
	PageMapCycles  int64 // VM-system cost to map one physical page
	PageZeroCycles int64 // cost to zero a freshly mapped page

	// Atomic-op cost model for the optimistic-concurrency fast paths
	// (restartable sequences, rseq.go, and the lock-free Treiber stacks
	// in the allocator's global layer). A CAS is the same bus-locked
	// read-modify-write transaction as AtomicCycles models; it gets its
	// own constant so the lock-free layer's commit instruction can be
	// calibrated independently of the spinlock's test-and-set. The
	// commit store of a restartable sequence is the cheap one: a plain
	// store to a line the CPU already owns, plus the abort-ip window
	// check — this is what replaces the IntrLock enter/exit charge
	// (2 insns + IntrCycles) on the per-CPU fast path.
	CASCycles     int64 // bus-locked compare-and-swap (lock-free stack commit)
	FenceCycles   int64 // store fence draining the write buffer
	CommitCycles  int64 // rseq commit: single store to an owned line + ip check
	RestartCycles int64 // rseq abort: vector to the abort handler + re-entry

	// NUMA cycle costs, used only when Nodes > 1.
	RemoteMissCycles   int64 // extra stall when a line transfer crosses nodes
	InterconnectCycles int64 // interconnect occupancy per remote transaction
}

// DefaultConfig returns a configuration approximating the paper's test
// machine: 50 MHz 80486 CPUs, 32-byte lines, a shared bus where a line
// transfer costs tens of CPU cycles, and a VM system whose page mapping
// cost dwarfs a fast-path allocation.
func DefaultConfig() Config {
	return Config{
		Mode:           Sim,
		NumCPUs:        1,
		Nodes:          1,
		MemBytes:       64 << 20,
		PhysPages:      2048,
		PageBytes:      4096,
		HzMHz:          50,
		LineShift:      5,
		CacheLines:     256, // 8 KB on-chip cache
		CyclesPerInsn:  1,
		HitCycles:      0,
		MissCycles:     40,
		BusCycles:      16,
		AtomicCycles:   40,
		TLBMissCycles:  28,
		IntrCycles:     8,
		SpinRetryGap:   50,
		PageMapCycles:  1600,
		PageZeroCycles: 1024,

		CASCycles:     40,
		FenceCycles:   12,
		CommitCycles:  2,
		RestartCycles: 80,

		RemoteMissCycles:   60,
		InterconnectCycles: 24,
	}
}

// Machine binds CPUs, memory, the coherence directory and the bus into
// one simulated system.
type Machine struct {
	cfg  Config
	mem  *arena.Arena
	phys *physmem.Pool
	cpus []CPU

	// Coherence directory: owner CPU per line, or ownerNone when the
	// line is unowned/shared. Arena lines are indexed directly; metadata
	// lines (for Go-struct allocator state) are indexed in metaDir.
	arenaDir []int8
	metaDir  []int8
	nextMeta uint64

	// Home node per line: metadata lines are homed where they are
	// created (metaHome, parallel to metaDir); arena lines inherit the
	// home of their page (pageHome, registered by the vmblk layer when a
	// vmblk is carved; unregistered pages default to node 0).
	metaHome []int8
	pageHome []int8

	// Per-node local buses plus the inter-node interconnect, each a ring
	// of recent occupancy intervals. Operations execute in virtual-clock
	// order but run to completion, so a logically earlier transaction may
	// be simulated after a later one; interval chasing (rather than a
	// single busy-until watermark) keeps arbitration causal. See busTxn.
	// With Nodes=1, buses[0] reproduces the classic single shared bus
	// cycle for cycle.
	buses []busState
	ic    busState

	// Optional per-line off-chip traffic attribution (see profile.go).
	profile   map[Line]*LineStats
	lineNames map[Line]string

	// Optional seeded schedule perturbation and schedule hashing
	// (see jitter.go). jit == nil means the scheduler is byte-identical
	// to the unjittered model.
	jit         *jitter
	schedHashOn bool
	schedHash   uint64
}

const ownerNone = int8(-1)

// Line identifies one cache line of simulated state. Arena lines are
// addr>>LineShift; metadata lines (Go-struct state such as freelist heads
// and lock words) are tagged with the high bit.
type Line uint64

const metaTag Line = 1 << 63

// New constructs a machine from cfg, validating it.
func New(cfg Config) *Machine {
	if cfg.NumCPUs < 1 || cfg.NumCPUs > MaxCPUs {
		panic(fmt.Sprintf("machine: NumCPUs %d out of range [1,%d]", cfg.NumCPUs, MaxCPUs))
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 1
	}
	if cfg.Nodes < 1 || cfg.Nodes > cfg.NumCPUs {
		panic(fmt.Sprintf("machine: Nodes %d out of range [1,%d]", cfg.Nodes, cfg.NumCPUs))
	}
	if cfg.CacheLines&(cfg.CacheLines-1) != 0 || cfg.CacheLines <= 0 {
		panic(fmt.Sprintf("machine: CacheLines %d not a power of two", cfg.CacheLines))
	}
	if cfg.TLBEntries < 0 || cfg.TLBEntries&(cfg.TLBEntries-1) != 0 {
		panic(fmt.Sprintf("machine: TLBEntries %d not a power of two", cfg.TLBEntries))
	}
	if cfg.PageBytes == 0 || cfg.PageBytes&(cfg.PageBytes-1) != 0 {
		panic(fmt.Sprintf("machine: PageBytes %d not a power of two", cfg.PageBytes))
	}
	if cfg.MemBytes%cfg.PageBytes != 0 {
		panic("machine: MemBytes not a multiple of PageBytes")
	}
	m := &Machine{
		cfg:  cfg,
		mem:  arena.New(cfg.MemBytes),
		phys: physmem.NewPool(cfg.PhysPages),
	}
	if cfg.Mode == Sim {
		nLines := cfg.MemBytes >> cfg.LineShift
		m.arenaDir = make([]int8, nLines)
		for i := range m.arenaDir {
			m.arenaDir[i] = ownerNone
		}
		m.pageHome = make([]int8, cfg.MemBytes/cfg.PageBytes)
	}
	m.buses = make([]busState, cfg.Nodes)
	m.cpus = make([]CPU, cfg.NumCPUs)
	for i := range m.cpus {
		c := &m.cpus[i]
		c.m = m
		c.id = i
		c.node = i * cfg.Nodes / cfg.NumCPUs
		if cfg.Mode == Sim {
			c.cache = make([]Line, cfg.CacheLines)
			for j := range c.cache {
				c.cache[j] = invalidLine
			}
			if cfg.TLBEntries > 0 {
				c.tlb = make([]uint64, cfg.TLBEntries)
				for j := range c.tlb {
					c.tlb[j] = ^uint64(0)
				}
			}
		}
	}
	return m
}

// invalidLine marks an empty direct-mapped cache slot. Line 0 of the
// arena is valid, so a distinct sentinel is required.
const invalidLine = Line(^uint64(0) >> 1)

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Mem returns the virtual-address arena.
func (m *Machine) Mem() *arena.Arena { return m.mem }

// Phys returns the physical page pool.
func (m *Machine) Phys() *physmem.Pool { return m.phys }

// NumCPUs returns the number of CPUs.
func (m *Machine) NumCPUs() int { return m.cfg.NumCPUs }

// NumNodes returns the number of NUMA nodes (1 for the classic
// single-bus machine).
func (m *Machine) NumNodes() int { return len(m.buses) }

// NodeOf returns the NUMA node CPU i belongs to. CPUs are assigned in
// contiguous blocks so CPUs of one node share a local bus.
func (m *Machine) NodeOf(cpu int) int { return cpu * len(m.buses) / m.cfg.NumCPUs }

// CPU returns the handle for CPU i.
func (m *Machine) CPU(i int) *CPU { return &m.cpus[i] }

// Sim reports whether the machine runs under the cost model.
func (m *Machine) Sim() bool { return m.cfg.Mode == Sim }

// NewMetaLine reserves a fresh metadata cache line for a piece of
// allocator state held in Go structs (a lock word, a freelist head, a
// counter). Each distinct piece of frequently written shared state should
// have its own line, mirroring the cache-line padding a kernel would use.
//
// NewMetaLine is meant for initialization time and is not safe for
// concurrent use.
func (m *Machine) NewMetaLine() Line { return m.NewMetaLineOn(0) }

// NewMetaLineOn reserves a fresh metadata cache line homed on the given
// NUMA node, so accesses from other nodes pay the interconnect. With a
// single node it is identical to NewMetaLine.
func (m *Machine) NewMetaLineOn(node int) Line {
	if node < 0 || node >= len(m.buses) {
		panic(fmt.Sprintf("machine: NewMetaLineOn node %d out of range [0,%d)", node, len(m.buses)))
	}
	id := m.nextMeta
	m.nextMeta++
	if m.cfg.Mode == Sim {
		m.metaDir = append(m.metaDir, ownerNone)
		m.metaHome = append(m.metaHome, int8(node))
	}
	return metaTag | Line(id)
}

// SetPageHomeRange assigns the home node of n consecutive arena pages
// starting at firstPage. The vmblk layer calls it when a vmblk is carved,
// so every line of the vmblk's pages is homed on the vmblk's node.
func (m *Machine) SetPageHomeRange(firstPage int64, n int64, node int) {
	if m.pageHome == nil {
		return
	}
	if node < 0 || node >= len(m.buses) {
		panic(fmt.Sprintf("machine: SetPageHomeRange node %d out of range [0,%d)", node, len(m.buses)))
	}
	for i := firstPage; i < firstPage+n; i++ {
		m.pageHome[i] = int8(node)
	}
}

// lineHome returns the home node of line l.
func (m *Machine) lineHome(l Line) int {
	if l&metaTag != 0 {
		return int(m.metaHome[l&^metaTag])
	}
	// Arena line: addr>>LineShift; its page is addr>>log2(PageBytes).
	page := (uint64(l) << m.cfg.LineShift) / m.cfg.PageBytes
	return int(m.pageHome[page])
}

// LineOf returns the cache line holding the arena address addr.
func (m *Machine) LineOf(addr arena.Addr) Line {
	return Line(addr >> m.cfg.LineShift)
}

// dirSlot returns a pointer to the directory entry for line l.
func (m *Machine) dirSlot(l Line) *int8 {
	if l&metaTag != 0 {
		return &m.metaDir[l&^metaTag]
	}
	return &m.arenaDir[l]
}

// busHistory bounds the remembered bus occupancy intervals; bus holds
// are BusCycles long, so only transactions from operations executing at
// nearby virtual times can overlap a new one.
const busHistory = 64

// busState is one arbitrated transfer resource — a node-local bus or the
// inter-node interconnect — remembered as a ring of occupancy intervals.
type busState struct {
	ring [busHistory]hold
	next int
	txns uint64
}

// chase returns the earliest time at or after t when the resource is
// free, queueing behind any recorded interval that overlaps.
func (b *busState) chase(t int64) int64 {
	for {
		next := int64(-1)
		for i := range b.ring {
			h := &b.ring[i]
			if h.start <= t && t < h.end && h.end > next {
				next = h.end
			}
		}
		if next < 0 {
			break
		}
		t = next
	}
	return t
}

// occupy records one occupancy interval in the ring.
func (b *busState) occupy(start, end int64) {
	b.ring[b.next] = hold{start: start, end: end}
	b.next = (b.next + 1) % busHistory
}

// busTxn performs one bus transaction for CPU c: the transaction starts
// when the CPU, its node's local bus and — for a remote transaction —
// the interconnect are all ready (chasing any recorded occupancy
// intervals, i.e. queueing behind them), occupies the local bus for
// BusCycles (and the interconnect for InterconnectCycles), and stalls
// the CPU for MissCycles (plus RemoteMissCycles when remote) in total.
func (m *Machine) busTxn(c *CPU, remote bool) int64 {
	b := &m.buses[c.node]
	start := b.chase(c.clock)
	if remote {
		start = m.ic.chase(start)
	}
	if start > c.clock {
		c.busWait += start - c.clock
	}
	b.occupy(start, start+m.cfg.BusCycles)
	b.txns++
	if remote {
		m.ic.occupy(start, start+m.cfg.InterconnectCycles)
		m.ic.txns++
		c.remoteMisses++
		return start + m.cfg.MissCycles + m.cfg.RemoteMissCycles
	}
	return start + m.cfg.MissCycles
}

// BusTransactions returns the cumulative number of bus transactions,
// summed over every node's local bus.
func (m *Machine) BusTransactions() uint64 {
	var n uint64
	for i := range m.buses {
		n += m.buses[i].txns
	}
	return n
}

// NodeBusTransactions returns the cumulative transactions on one node's
// local bus.
func (m *Machine) NodeBusTransactions(node int) uint64 { return m.buses[node].txns }

// InterconnectTransactions returns the cumulative transactions that
// crossed the inter-node interconnect (always 0 with a single node).
func (m *Machine) InterconnectTransactions() uint64 { return m.ic.txns }

// CyclesToSeconds converts a cycle count to seconds at the configured
// clock rate.
func (m *Machine) CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / (float64(m.cfg.HzMHz) * 1e6)
}

// SecondsToCycles converts seconds to cycles at the configured clock rate.
func (m *Machine) SecondsToCycles(sec float64) int64 {
	return int64(sec * float64(m.cfg.HzMHz) * 1e6)
}
