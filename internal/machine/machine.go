// Package machine provides the shared-memory multiprocessor substrate the
// allocators run on.
//
// The paper's evaluation platform was a Sequent Symmetry 2000 — up to 26
// 50 MHz 80486 CPUs on a shared bus — instrumented with hardware monitors
// and a logic analyzer. Its results are driven by counts of instructions,
// cache-line transfers, atomic (bus-locking) operations and spinlock
// contention, not by anything host-specific. This package therefore models
// exactly those quantities:
//
//   - Each simulated CPU has its own virtual cycle clock and a
//     direct-mapped cache of configurable size.
//   - A coherence directory tracks line ownership; reads of lines owned
//     exclusively elsewhere and writes to lines not owned exclusively are
//     misses that cross the shared bus.
//   - The bus is a single resource with per-transaction occupancy, so
//     heavy miss or spin traffic from one CPU delays every other CPU —
//     the effect that flattens the lock-based allocators in Figures 7/8.
//   - Spinlocks model test-and-test-and-set acquisition: a contended
//     acquire waits for the holder's release and injects retry traffic
//     onto the bus.
//
// The simulation is entirely single-goroutine and deterministic: virtual
// CPUs are scheduled one operation at a time in increasing virtual-clock
// order (a conservative discrete-event model).
//
// The same package also offers a native mode in which every cost hook is a
// no-op and locks are real sync.Mutexes. The identical allocator code then
// runs as an ordinary concurrent Go library, which lets the test suite
// exercise it with real goroutines under the race detector.
package machine

import (
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/physmem"
)

// Mode selects between the deterministic simulator and native execution.
type Mode int

const (
	// Sim runs virtual CPUs under the discrete-event cost model.
	Sim Mode = iota
	// Native runs real goroutines with all cost hooks disabled.
	Native
)

// MaxCPUs is the largest supported CPU count (the coherence directory
// uses an 8-bit owner field; the paper's machine had 26 CPUs).
const MaxCPUs = 64

// Config describes the simulated machine. The defaults returned by
// DefaultConfig approximate the paper's Symmetry 2000.
type Config struct {
	Mode    Mode
	NumCPUs int

	// MemBytes is the size of the kernel virtual address arena.
	MemBytes uint64
	// PhysPages is the number of physical pages available for mapping.
	PhysPages int64
	// PageBytes is the machine page size.
	PageBytes uint64

	// HzMHz is the CPU clock rate in MHz, used only to convert cycle
	// counts to seconds when reporting results.
	HzMHz int64

	// LineShift is log2 of the cache line size (5 => 32-byte lines, as
	// on the i486 generation).
	LineShift uint
	// CacheLines is the number of lines in each CPU's direct-mapped
	// cache. Must be a power of two.
	CacheLines int

	// TLBEntries enables a direct-mapped per-CPU TLB over arena pages
	// when non-zero (must then be a power of two). The paper's footnote
	// notes "variations in the number of TLB misses" as a secondary
	// effect; the model is off by default to keep the calibrated
	// figures primary.
	TLBEntries int

	// Cycle costs.
	CyclesPerInsn  int64 // cost of one straight-line instruction
	HitCycles      int64 // extra cost of a cache hit (usually 0)
	MissCycles     int64 // stall cycles for a line transfer across the bus
	BusCycles      int64 // bus occupancy per transaction
	AtomicCycles   int64 // extra cost of a bus-locked read-modify-write
	TLBMissCycles  int64 // page-table walk cost when TLBEntries > 0
	IntrCycles     int64 // cost of an interrupt disable/enable pair
	SpinRetryGap   int64 // cycles between spin retries on a held lock
	PageMapCycles  int64 // VM-system cost to map one physical page
	PageZeroCycles int64 // cost to zero a freshly mapped page
}

// DefaultConfig returns a configuration approximating the paper's test
// machine: 50 MHz 80486 CPUs, 32-byte lines, a shared bus where a line
// transfer costs tens of CPU cycles, and a VM system whose page mapping
// cost dwarfs a fast-path allocation.
func DefaultConfig() Config {
	return Config{
		Mode:           Sim,
		NumCPUs:        1,
		MemBytes:       64 << 20,
		PhysPages:      2048,
		PageBytes:      4096,
		HzMHz:          50,
		LineShift:      5,
		CacheLines:     256, // 8 KB on-chip cache
		CyclesPerInsn:  1,
		HitCycles:      0,
		MissCycles:     40,
		BusCycles:      16,
		AtomicCycles:   40,
		TLBMissCycles:  28,
		IntrCycles:     8,
		SpinRetryGap:   50,
		PageMapCycles:  1600,
		PageZeroCycles: 1024,
	}
}

// Machine binds CPUs, memory, the coherence directory and the bus into
// one simulated system.
type Machine struct {
	cfg  Config
	mem  *arena.Arena
	phys *physmem.Pool
	cpus []CPU

	// Coherence directory: owner CPU per line, or ownerNone when the
	// line is unowned/shared. Arena lines are indexed directly; metadata
	// lines (for Go-struct allocator state) are indexed in metaDir.
	arenaDir []int8
	metaDir  []int8
	nextMeta uint64

	// Shared bus: a ring of recent occupancy intervals. Operations
	// execute in virtual-clock order but run to completion, so a
	// logically earlier transaction may be simulated after a later one;
	// interval chasing (rather than a single busy-until watermark) keeps
	// arbitration causal. See busTxn.
	busRing [busHistory]hold
	busNext int
	busTxns uint64

	// Optional per-line off-chip traffic attribution (see profile.go).
	profile   map[Line]*LineStats
	lineNames map[Line]string
}

const ownerNone = int8(-1)

// Line identifies one cache line of simulated state. Arena lines are
// addr>>LineShift; metadata lines (Go-struct state such as freelist heads
// and lock words) are tagged with the high bit.
type Line uint64

const metaTag Line = 1 << 63

// New constructs a machine from cfg, validating it.
func New(cfg Config) *Machine {
	if cfg.NumCPUs < 1 || cfg.NumCPUs > MaxCPUs {
		panic(fmt.Sprintf("machine: NumCPUs %d out of range [1,%d]", cfg.NumCPUs, MaxCPUs))
	}
	if cfg.CacheLines&(cfg.CacheLines-1) != 0 || cfg.CacheLines <= 0 {
		panic(fmt.Sprintf("machine: CacheLines %d not a power of two", cfg.CacheLines))
	}
	if cfg.TLBEntries < 0 || cfg.TLBEntries&(cfg.TLBEntries-1) != 0 {
		panic(fmt.Sprintf("machine: TLBEntries %d not a power of two", cfg.TLBEntries))
	}
	if cfg.PageBytes == 0 || cfg.PageBytes&(cfg.PageBytes-1) != 0 {
		panic(fmt.Sprintf("machine: PageBytes %d not a power of two", cfg.PageBytes))
	}
	if cfg.MemBytes%cfg.PageBytes != 0 {
		panic("machine: MemBytes not a multiple of PageBytes")
	}
	m := &Machine{
		cfg:  cfg,
		mem:  arena.New(cfg.MemBytes),
		phys: physmem.NewPool(cfg.PhysPages),
	}
	if cfg.Mode == Sim {
		nLines := cfg.MemBytes >> cfg.LineShift
		m.arenaDir = make([]int8, nLines)
		for i := range m.arenaDir {
			m.arenaDir[i] = ownerNone
		}
	}
	m.cpus = make([]CPU, cfg.NumCPUs)
	for i := range m.cpus {
		c := &m.cpus[i]
		c.m = m
		c.id = i
		if cfg.Mode == Sim {
			c.cache = make([]Line, cfg.CacheLines)
			for j := range c.cache {
				c.cache[j] = invalidLine
			}
			if cfg.TLBEntries > 0 {
				c.tlb = make([]uint64, cfg.TLBEntries)
				for j := range c.tlb {
					c.tlb[j] = ^uint64(0)
				}
			}
		}
	}
	return m
}

// invalidLine marks an empty direct-mapped cache slot. Line 0 of the
// arena is valid, so a distinct sentinel is required.
const invalidLine = Line(^uint64(0) >> 1)

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Mem returns the virtual-address arena.
func (m *Machine) Mem() *arena.Arena { return m.mem }

// Phys returns the physical page pool.
func (m *Machine) Phys() *physmem.Pool { return m.phys }

// NumCPUs returns the number of CPUs.
func (m *Machine) NumCPUs() int { return m.cfg.NumCPUs }

// CPU returns the handle for CPU i.
func (m *Machine) CPU(i int) *CPU { return &m.cpus[i] }

// Sim reports whether the machine runs under the cost model.
func (m *Machine) Sim() bool { return m.cfg.Mode == Sim }

// NewMetaLine reserves a fresh metadata cache line for a piece of
// allocator state held in Go structs (a lock word, a freelist head, a
// counter). Each distinct piece of frequently written shared state should
// have its own line, mirroring the cache-line padding a kernel would use.
//
// NewMetaLine is meant for initialization time and is not safe for
// concurrent use.
func (m *Machine) NewMetaLine() Line {
	id := m.nextMeta
	m.nextMeta++
	if m.cfg.Mode == Sim {
		m.metaDir = append(m.metaDir, ownerNone)
	}
	return metaTag | Line(id)
}

// LineOf returns the cache line holding the arena address addr.
func (m *Machine) LineOf(addr arena.Addr) Line {
	return Line(addr >> m.cfg.LineShift)
}

// dirSlot returns a pointer to the directory entry for line l.
func (m *Machine) dirSlot(l Line) *int8 {
	if l&metaTag != 0 {
		return &m.metaDir[l&^metaTag]
	}
	return &m.arenaDir[l]
}

// busHistory bounds the remembered bus occupancy intervals; bus holds
// are BusCycles long, so only transactions from operations executing at
// nearby virtual times can overlap a new one.
const busHistory = 64

// busTxn performs one bus transaction for CPU c: the transaction starts
// when both the CPU and the bus are ready (chasing any recorded
// occupancy intervals that overlap, i.e. queueing behind them), occupies
// the bus for BusCycles, and stalls the CPU for MissCycles in total.
func (m *Machine) busTxn(c *CPU) int64 {
	start := c.clock
	for {
		next := int64(-1)
		for i := range m.busRing {
			h := &m.busRing[i]
			if h.start <= start && start < h.end && h.end > next {
				next = h.end
			}
		}
		if next < 0 {
			break
		}
		start = next
	}
	if start > c.clock {
		c.busWait += start - c.clock
	}
	m.busOccupy(start, start+m.cfg.BusCycles)
	m.busTxns++
	return start + m.cfg.MissCycles
}

// busOccupy records one occupancy interval in the ring.
func (m *Machine) busOccupy(start, end int64) {
	m.busRing[m.busNext] = hold{start: start, end: end}
	m.busNext = (m.busNext + 1) % busHistory
}

// BusTransactions returns the cumulative number of bus transactions.
func (m *Machine) BusTransactions() uint64 { return m.busTxns }

// CyclesToSeconds converts a cycle count to seconds at the configured
// clock rate.
func (m *Machine) CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / (float64(m.cfg.HzMHz) * 1e6)
}

// SecondsToCycles converts seconds to cycles at the configured clock rate.
func (m *Machine) SecondsToCycles(sec float64) int64 {
	return int64(sec * float64(m.cfg.HzMHz) * 1e6)
}
