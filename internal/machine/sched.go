package machine

import (
	"container/heap"
	"sync"
)

// Run drives all CPUs through repeated calls of body until body returns
// false for every CPU. body(c) should perform one short operation (for
// example one allocate/free pair) and return whether the CPU should keep
// running.
//
// In Sim mode, Run executes operations one at a time in increasing
// virtual-clock order — a conservative discrete-event schedule that keeps
// lock arbitration and bus contention causally consistent. The result is
// deterministic. In Native mode, Run starts one goroutine per CPU.
func (m *Machine) Run(body func(c *CPU) bool) {
	if m.cfg.Mode == Sim {
		m.runSim(body)
		return
	}
	var wg sync.WaitGroup
	for i := range m.cpus {
		wg.Add(1)
		go func(c *CPU) {
			defer wg.Done()
			for body(c) {
			}
		}(&m.cpus[i])
	}
	wg.Wait()
}

// cpuHeap orders CPUs by virtual clock. Ties go to the CPU's jitter tie
// priority — all zero unless schedule jitter is armed, in which case
// each CPU carries a seeded pseudo-random priority refreshed per op —
// and finally to the ID, so the order is always total and, without
// jitter, identical to the historical clock-then-id schedule.
type cpuHeap []*CPU

func (h cpuHeap) Len() int { return len(h) }
func (h cpuHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	if h[i].tiePri != h[j].tiePri {
		return h[i].tiePri < h[j].tiePri
	}
	return h[i].id < h[j].id
}
func (h cpuHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cpuHeap) Push(x any)   { *h = append(*h, x.(*CPU)) }
func (h *cpuHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

func (m *Machine) runSim(body func(c *CPU) bool) {
	h := make(cpuHeap, 0, len(m.cpus))
	for i := range m.cpus {
		h = append(h, &m.cpus[i])
	}
	heap.Init(&h)
	for h.Len() > 0 {
		c := h[0]
		if m.schedHashOn {
			m.schedHash = fnvMix(fnvMix(m.schedHash, uint64(c.id)), uint64(c.clock))
		}
		if body(c) {
			if j := m.jit; j != nil {
				// A seeded preemption point: after the op, the CPU may
				// lose the processor for a bounded random interval,
				// letting other CPUs' operations slide in front.
				if j.next()%uint64(j.cfg.PreemptEvery) == 0 {
					c.clock += j.delay(j.cfg.MaxPreemptCycles)
				}
				c.tiePri = j.next()
			}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
}

// RunFor drives all CPUs with body for the given number of virtual
// seconds and returns the number of body invocations completed per CPU.
// Clocks are first synchronized forward to the latest CPU's time (the
// moment "the benchmark starts", after any setup work), so lock and bus
// state from setup remains causally consistent. Sim mode only.
func (m *Machine) RunFor(seconds float64, body func(c *CPU)) []uint64 {
	if m.cfg.Mode != Sim {
		panic("machine: RunFor requires Sim mode")
	}
	base := m.SyncClocks()
	deadline := base + m.SecondsToCycles(seconds)
	ops := make([]uint64, len(m.cpus))
	m.Run(func(c *CPU) bool {
		if c.clock >= deadline {
			return false
		}
		body(c)
		ops[c.id]++
		return true
	})
	return ops
}

// SyncClocks advances every CPU's clock to the maximum across CPUs —
// the common origin of a measurement phase — and returns it. Virtual
// time never moves backwards, so spinlock release times and bus state
// stay consistent.
func (m *Machine) SyncClocks() int64 {
	var max int64
	for i := range m.cpus {
		if m.cpus[i].clock > max {
			max = m.cpus[i].clock
		}
	}
	for i := range m.cpus {
		m.cpus[i].clock = max
	}
	return max
}

// ResetStats zeroes the per-CPU and bus counters (not the clocks: virtual
// time must never move backwards once locks and the bus carry state).
func (m *Machine) ResetStats() {
	for i := range m.cpus {
		m.cpus[i].ResetStats()
	}
	for i := range m.buses {
		m.buses[i].txns = 0
	}
	m.ic.txns = 0
}
