package machine

import (
	"testing"
	"testing/quick"
)

// Property tests on the simulator's core invariants.

// TestQuickClockMonotonic: no sequence of operations ever moves a CPU's
// clock backwards.
func TestQuickClockMonotonic(t *testing.T) {
	f := func(ops []uint16) bool {
		m := simMachine(2)
		lk := NewSpinLock(m)
		last := []int64{0, 0}
		for _, op := range ops {
			c := m.CPU(int(op) % 2)
			switch (op >> 1) % 5 {
			case 0:
				c.Work(int64(op % 97))
			case 1:
				c.Read(Line(op % 512))
			case 2:
				c.Write(Line(op % 512))
			case 3:
				c.Atomic(Line(op % 64))
			case 4:
				lk.Acquire(c)
				c.Work(int64(op % 31))
				lk.Release(c)
			}
			if c.Now() < last[c.ID()] {
				t.Logf("clock moved backwards: %d -> %d", last[c.ID()], c.Now())
				return false
			}
			last[c.ID()] = c.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterministicReplay: identical op sequences produce identical
// clocks and stats.
func TestQuickDeterministicReplay(t *testing.T) {
	run := func(ops []uint16) [2]Stats {
		m := simMachine(2)
		lk := NewSpinLock(m)
		for _, op := range ops {
			c := m.CPU(int(op) % 2)
			switch (op >> 1) % 4 {
			case 0:
				c.Work(int64(op % 53))
			case 1:
				c.Read(Line(op % 256))
			case 2:
				c.Atomic(Line(op % 32))
			case 3:
				lk.Acquire(c)
				lk.Release(c)
			}
		}
		return [2]Stats{m.CPU(0).Stats(), m.CPU(1).Stats()}
	}
	f := func(ops []uint16) bool {
		a, b := run(ops), run(ops)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHitNeverCostsMoreThanMiss: for any access pattern, a CPU's
// total cycles are bounded by treating every access as a miss.
func TestQuickHitNeverCostsMoreThanMiss(t *testing.T) {
	f := func(lines []uint8) bool {
		m := simMachine(1)
		c := m.CPU(0)
		for _, l := range lines {
			c.Read(Line(l))
		}
		s := c.Stats()
		worst := int64(len(lines)) * (m.Config().MissCycles + m.Config().CyclesPerInsn)
		return s.Cycles <= worst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLockMutualExclusion: recorded hold intervals never overlap,
// for arbitrary interleavings of lock users.
func TestQuickLockMutualExclusion(t *testing.T) {
	f := func(ops []uint8) bool {
		m := simMachine(4)
		lk := NewSpinLock(m)
		type section struct{ start, end int64 }
		var sections []section
		for _, op := range ops {
			c := m.CPU(int(op) % 4)
			c.Work(int64(op % 17)) // desynchronize clocks
			lk.Acquire(c)
			s := c.Now()
			c.Work(int64(op%29) + 1)
			lk.Release(c)
			sections = append(sections, section{s, c.Now()})
		}
		for i := range sections {
			for j := i + 1; j < len(sections); j++ {
				a, b := sections[i], sections[j]
				if a.start < b.end && b.start < a.end {
					t.Logf("overlap: [%d,%d) and [%d,%d)", a.start, a.end, b.start, b.end)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
