package machine

import "testing"

func TestSyncClocksMovesForwardOnly(t *testing.T) {
	m := simMachine(3)
	m.CPU(0).Work(100)
	m.CPU(1).Work(700)
	m.CPU(2).Work(300)
	base := m.SyncClocks()
	if base != 700 {
		t.Fatalf("base = %d", base)
	}
	for i := 0; i < 3; i++ {
		if m.CPU(i).Now() != 700 {
			t.Fatalf("cpu %d at %d", i, m.CPU(i).Now())
		}
	}
}

func TestRunForMeasuresWindowAfterSetup(t *testing.T) {
	// Setup work on one CPU must not eat into the measured window or
	// confuse lock state (the bug behind an early version of the
	// best-case benchmark).
	m := simMachine(2)
	lk := NewSpinLock(m)

	// Setup: CPU 0 does heavy work holding the lock.
	c0 := m.CPU(0)
	lk.Acquire(c0)
	c0.Work(1_000_000)
	lk.Release(c0)

	ops := m.RunFor(0.001, func(c *CPU) {
		lk.Acquire(c)
		c.Work(10)
		lk.Release(c)
	})
	// 0.001s at 50 MHz = 50_000 cycles; with ~100+ cycles per locked op
	// shared by 2 CPUs, hundreds of ops must complete — not one or two
	// (which would indicate the stale-lock-time bug).
	total := ops[0] + ops[1]
	if total < 100 {
		t.Fatalf("only %d ops in the window: setup time leaked into measurement", total)
	}
}

func TestRunForWindowLength(t *testing.T) {
	m := simMachine(1)
	c := m.CPU(0)
	c.Work(12345) // arbitrary setup
	start := c.Now()
	m.RunFor(0.002, func(c *CPU) { c.Work(100) })
	elapsed := c.Now() - start
	want := m.SecondsToCycles(0.002)
	if elapsed < want || elapsed > want+200 {
		t.Fatalf("window = %d cycles, want ~%d", elapsed, want)
	}
}

func TestResetStatsKeepsClocks(t *testing.T) {
	m := simMachine(1)
	c := m.CPU(0)
	c.Work(500)
	c.Read(Line(1))
	m.ResetStats()
	if c.Now() == 0 {
		t.Fatal("ResetStats rewound the clock")
	}
	s := c.Stats()
	if s.Instructions != 0 || s.Misses != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
	if m.BusTransactions() != 0 {
		t.Fatal("bus txns not reset")
	}
}

func TestRunStopsPerCPU(t *testing.T) {
	m := simMachine(3)
	counts := make([]int, 3)
	m.Run(func(c *CPU) bool {
		counts[c.ID()]++
		c.Work(10)
		return counts[c.ID()] < (c.ID()+1)*10
	})
	for i, n := range counts {
		if n != (i+1)*10 {
			t.Fatalf("cpu %d ran %d ops, want %d", i, n, (i+1)*10)
		}
	}
}

func TestSpinLockThroughputSaturates(t *testing.T) {
	// A lock-bound workload saturates: once the lock's hold time is the
	// bottleneck (around 2 CPUs here, since acquisition latency overlaps
	// the previous holder's critical section), adding CPUs adds nothing.
	run := func(ncpu int) uint64 {
		m := simMachine(ncpu)
		lk := NewSpinLock(m)
		ops := m.RunFor(0.002, func(c *CPU) {
			lk.Acquire(c)
			c.Work(60)
			lk.Release(c)
		})
		var total uint64
		for _, n := range ops {
			total += n
		}
		return total
	}
	one, two, eight := run(1), run(2), run(8)
	if eight > two*11/10 {
		t.Fatalf("lock-bound workload kept scaling: 2cpu=%d 8cpu=%d", two, eight)
	}
	// The handoff period (winning test-and-set + critical section) bounds
	// throughput at roughly the single-CPU rate.
	if eight > one*3/2 {
		t.Fatalf("lock-bound ceiling too high: 1cpu=%d 8cpu=%d", one, eight)
	}
}

func TestIndependentWorkScalesLinearly(t *testing.T) {
	// CPU-local work (no shared lines, no locks) must scale ~linearly.
	run := func(ncpu int) uint64 {
		m := simMachine(ncpu)
		ops := m.RunFor(0.002, func(c *CPU) {
			c.Work(60)
		})
		var total uint64
		for _, n := range ops {
			total += n
		}
		return total
	}
	one, eight := run(1), run(8)
	if eight < one*7 {
		t.Fatalf("independent work did not scale: 1cpu=%d 8cpu=%d", one, eight)
	}
}

func TestSharedLinePingPong(t *testing.T) {
	// Two CPUs alternately writing one line must miss nearly every time.
	m := simMachine(2)
	l := m.NewMetaLine()
	for i := 0; i < 100; i++ {
		m.CPU(0).Write(l)
		m.CPU(1).Write(l)
	}
	s0, s1 := m.CPU(0).Stats(), m.CPU(1).Stats()
	if s0.Misses < 95 || s1.Misses < 95 {
		t.Fatalf("ping-pong misses: %d / %d of 100", s0.Misses, s1.Misses)
	}
}

func TestIntrLockSimCharges(t *testing.T) {
	m := simMachine(1)
	c := m.CPU(0)
	var il IntrLock
	before := c.Now()
	il.Acquire(c)
	il.Release(c)
	if c.Now()-before != m.Config().IntrCycles {
		t.Fatalf("intr cost = %d, want %d", c.Now()-before, m.Config().IntrCycles)
	}
}
