package machine

import "fmt"

// CPU is one simulated processor. In Sim mode every access and work charge
// advances its private virtual clock; in Native mode all hooks are no-ops
// and a CPU is merely a shard identity for the allocator's per-CPU state.
//
// A CPU handle must be driven by at most one goroutine at a time, exactly
// as a physical CPU executes one instruction stream.
type CPU struct {
	m    *Machine
	id   int
	node int

	clock int64

	// Seeded tie-break priority for the scheduler heap; 0 (compare by id)
	// unless schedule jitter is armed. See jitter.go.
	tiePri uint64

	// Direct-mapped cache: cache[line % CacheLines] holds the resident
	// line, or invalidLine.
	cache []Line
	// Optional direct-mapped TLB over arena pages (Config.TLBEntries).
	tlb []uint64

	// Statistics.
	insns        uint64
	hits         uint64
	misses       uint64
	atomics      uint64
	tlbMisses    uint64
	remoteMisses uint64
	busWait      int64
	spinWait     int64
	restarts     uint64 // rseq sequences aborted and re-run (rseq.go)
	casRetries   uint64 // lock-free CAS commits that had to retry

	// Optional per-access trace (Sim mode), used by the Analysis-section
	// experiment to show how the worst few off-chip accesses dominate
	// elapsed time.
	tracing bool
	trace   []TraceEvent

	// Exclusivity marker for ownership checking (see ownership.go).
	excl exclusive
}

// TraceEvent records the cost of a single memory access while tracing.
type TraceEvent struct {
	Line   Line
	Kind   AccessKind
	Cycles int64 // cycles this access cost (0 for a free hit)
}

// AccessKind classifies a memory access.
type AccessKind uint8

const (
	// ReadAccess is a plain load.
	ReadAccess AccessKind = iota
	// WriteAccess is a plain store.
	WriteAccess
	// AtomicAccess is a bus-locked read-modify-write.
	AtomicAccess
)

// String returns a short name for the access kind.
func (k AccessKind) String() string {
	switch k {
	case ReadAccess:
		return "read"
	case WriteAccess:
		return "write"
	case AtomicAccess:
		return "atomic"
	}
	return fmt.Sprintf("AccessKind(%d)", uint8(k))
}

// ID returns the CPU number.
func (c *CPU) ID() int { return c.id }

// Node returns the NUMA node this CPU belongs to (0 on a single-node
// machine).
func (c *CPU) Node() int { return c.node }

// Machine returns the machine this CPU belongs to.
func (c *CPU) Machine() *Machine { return c.m }

// Now returns the CPU's virtual clock in cycles (Sim mode only; always 0
// in Native mode).
func (c *CPU) Now() int64 { return c.clock }

// Stamp returns the CPU's cycle stamp for latency instrumentation: the
// virtual clock in Sim mode, always 0 in Native mode (which has no
// virtual time — Native-mode stamp deltas all collapse to the zero
// bucket, still exercising a recorder's merge discipline). Reading a
// stamp charges nothing — no instructions, no cycles, no memory traffic
// — so stamping an operation's entry and exit cannot perturb the
// schedule, the cycle goldens, or the instruction budgets.
func (c *CPU) Stamp() int64 { return c.clock }

// Work charges n straight-line instructions to the CPU. Allocator fast
// paths charge the instruction budgets the paper reports (13 instructions
// for a cookie allocation, 35 for a standard one, and so on).
func (c *CPU) Work(n int64) {
	if c.m.cfg.Mode != Sim {
		return
	}
	c.insns += uint64(n)
	c.clock += n * c.m.cfg.CyclesPerInsn
}

// Idle advances the CPU's clock by n cycles without charging instructions
// (used to model waiting).
func (c *CPU) Idle(n int64) {
	if c.m.cfg.Mode != Sim {
		return
	}
	c.clock += n
}

// DisableIntr charges the cost of an interrupt disable/enable pair, the
// only "synchronization" the per-CPU caching layer needs.
func (c *CPU) DisableIntr() {
	if c.m.cfg.Mode != Sim {
		return
	}
	c.insns += 2
	c.clock += c.m.cfg.IntrCycles
}

// tlbCheck charges a TLB fill when the arena page holding line l is not
// resident. Synthetic metadata lines are exempt (they stand for state the
// kernel maps globally).
func (c *CPU) tlbCheck(l Line) {
	if c.tlb == nil || l&metaTag != 0 {
		return
	}
	// Page number from the line id: lines are addr>>LineShift, pages are
	// addr>>12, so page = line >> (12 - LineShift).
	page := uint64(l) >> (12 - c.m.cfg.LineShift)
	slot := &c.tlb[page%uint64(len(c.tlb))]
	if *slot != page {
		*slot = page
		c.tlbMisses++
		c.clock += c.m.cfg.TLBMissCycles
	}
}

// remoteFor reports whether a transfer of line l by this CPU must cross
// the inter-node interconnect: the line's home memory is on another
// node, or its current exclusive owner is a CPU on another node.
func (c *CPU) remoteFor(l Line, dir int8) bool {
	m := c.m
	if len(m.buses) == 1 {
		return false
	}
	if m.lineHome(l) != c.node {
		return true
	}
	return dir != ownerNone && int(dir) != c.id && m.cpus[dir].node != c.node
}

// access performs the cache/coherence accounting for one access to line l.
func (c *CPU) access(l Line, kind AccessKind) {
	m := c.m
	c.tlbCheck(l)
	slot := &c.cache[uint64(l)%uint64(len(c.cache))]
	dir := m.dirSlot(l)
	present := *slot == l

	var cost int64
	switch kind {
	case ReadAccess:
		if present && (*dir == ownerNone || *dir == int8(c.id)) {
			c.hits++
			cost = m.cfg.HitCycles
			c.clock += cost
		} else {
			// Line transfer; if another CPU held it exclusively it is
			// downgraded to shared.
			c.misses++
			before := c.clock
			c.clock = m.busTxn(c, c.remoteFor(l, *dir))
			if *dir != ownerNone && *dir != int8(c.id) {
				*dir = ownerNone
			}
			*slot = l
			cost = c.clock - before
			if m.profile != nil {
				m.noteProfile(l, false)
			}
		}
	case WriteAccess, AtomicAccess:
		if kind == AtomicAccess {
			// Bus-locked RMW: always a bus transaction on this
			// generation of hardware, even when the line is owned.
			c.atomics++
			before := c.clock
			c.clock = m.busTxn(c, c.remoteFor(l, *dir))
			c.clock += m.cfg.AtomicCycles
			*dir = int8(c.id)
			*slot = l
			cost = c.clock - before
			if m.profile != nil {
				m.noteProfile(l, true)
			}
		} else if present && *dir == int8(c.id) {
			c.hits++
			cost = m.cfg.HitCycles
			c.clock += cost
		} else {
			// Read-for-ownership: fetch the line exclusively,
			// invalidating other copies.
			c.misses++
			before := c.clock
			c.clock = m.busTxn(c, c.remoteFor(l, *dir))
			*dir = int8(c.id)
			*slot = l
			cost = c.clock - before
			if m.profile != nil {
				m.noteProfile(l, false)
			}
		}
	}
	if c.tracing {
		c.trace = append(c.trace, TraceEvent{Line: l, Kind: kind, Cycles: cost})
	}
}

// Read charges a load of line l.
func (c *CPU) Read(l Line) {
	if c.m.cfg.Mode != Sim {
		return
	}
	c.insns++
	c.clock += c.m.cfg.CyclesPerInsn
	c.access(l, ReadAccess)
}

// Write charges a store to line l.
func (c *CPU) Write(l Line) {
	if c.m.cfg.Mode != Sim {
		return
	}
	c.insns++
	c.clock += c.m.cfg.CyclesPerInsn
	c.access(l, WriteAccess)
}

// Atomic charges a bus-locked read-modify-write of line l.
func (c *CPU) Atomic(l Line) {
	if c.m.cfg.Mode != Sim {
		return
	}
	c.insns++
	c.clock += c.m.cfg.CyclesPerInsn
	c.access(l, AtomicAccess)
}

// CAS charges a bus-locked compare-and-swap of line l — the commit
// instruction of the lock-free Treiber stacks. It is the same coherence
// transaction as Atomic (a locked RMW always crosses the bus on this
// generation of hardware, taking the line exclusive) but is charged at
// the CASCycles constant so the optimistic layer's cost model is
// calibrated independently of the spinlock's test-and-set.
func (c *CPU) CAS(l Line) {
	if c.m.cfg.Mode != Sim {
		return
	}
	c.insns++
	c.clock += c.m.cfg.CyclesPerInsn
	m := c.m
	c.tlbCheck(l)
	slot := &c.cache[uint64(l)%uint64(len(c.cache))]
	dir := m.dirSlot(l)
	c.atomics++
	before := c.clock
	c.clock = m.busTxn(c, c.remoteFor(l, *dir))
	c.clock += m.cfg.CASCycles
	*dir = int8(c.id)
	*slot = l
	if m.profile != nil {
		m.noteProfile(l, true)
	}
	if c.tracing {
		c.trace = append(c.trace, TraceEvent{Line: l, Kind: AtomicAccess, Cycles: c.clock - before})
	}
}

// NoteCASRetry counts one failed lock-free commit attempt (the caller
// charges the retry's traffic itself via CAS/Read).
func (c *CPU) NoteCASRetry() { c.casRetries++ }

// ReadAddr charges a load of the arena address addr.
func (c *CPU) ReadAddr(addr uint64) {
	if c.m.cfg.Mode != Sim {
		return
	}
	c.Read(c.m.LineOf(addr))
}

// WriteAddr charges a store to the arena address addr.
func (c *CPU) WriteAddr(addr uint64) {
	if c.m.cfg.Mode != Sim {
		return
	}
	c.Write(c.m.LineOf(addr))
}

// noteWait attributes a synchronization wait to the given line while
// tracing — the way a logic analyzer sees a spin: repeated accesses to
// the lock word accounting for the elapsed time.
func (c *CPU) noteWait(l Line, cycles int64) {
	if c.tracing && cycles > 0 {
		c.trace = append(c.trace, TraceEvent{Line: l, Kind: AtomicAccess, Cycles: cycles})
	}
}

// StartTrace begins recording per-access costs (Sim mode).
func (c *CPU) StartTrace() {
	c.tracing = true
	c.trace = c.trace[:0]
}

// StopTrace stops recording and returns the events captured since
// StartTrace. The returned slice is reused by the next StartTrace.
func (c *CPU) StopTrace() []TraceEvent {
	c.tracing = false
	return c.trace
}

// Stats is a snapshot of one CPU's counters.
type Stats struct {
	Cycles       int64
	Instructions uint64
	Hits         uint64
	Misses       uint64
	Atomics      uint64
	TLBMisses    uint64
	RemoteMisses uint64
	BusWait      int64
	SpinWait     int64
	Restarts     uint64
	CASRetries   uint64
}

// Stats returns the CPU's counters.
func (c *CPU) Stats() Stats {
	return Stats{
		Cycles:       c.clock,
		Instructions: c.insns,
		Hits:         c.hits,
		Misses:       c.misses,
		Atomics:      c.atomics,
		TLBMisses:    c.tlbMisses,
		RemoteMisses: c.remoteMisses,
		BusWait:      c.busWait,
		SpinWait:     c.spinWait,
		Restarts:     c.restarts,
		CASRetries:   c.casRetries,
	}
}

// ResetStats zeroes the CPU's counters but not its clock.
func (c *CPU) ResetStats() {
	c.insns, c.hits, c.misses, c.atomics, c.tlbMisses, c.remoteMisses = 0, 0, 0, 0, 0, 0
	c.busWait, c.spinWait = 0, 0
	c.restarts, c.casRetries = 0, 0
}
