package machine

import "testing"

func numaMachine(ncpu, nodes int) *Machine {
	cfg := DefaultConfig()
	cfg.NumCPUs = ncpu
	cfg.Nodes = nodes
	cfg.MemBytes = 8 << 20
	cfg.PhysPages = 512
	return New(cfg)
}

func TestNodeAssignmentContiguous(t *testing.T) {
	m := numaMachine(8, 4)
	if m.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", m.NumNodes())
	}
	for i := 0; i < 8; i++ {
		want := i / 2 // contiguous blocks of two CPUs per node
		if got := m.NodeOf(i); got != want {
			t.Fatalf("NodeOf(%d) = %d, want %d", i, got, want)
		}
		if got := m.CPU(i).Node(); got != want {
			t.Fatalf("CPU(%d).Node() = %d, want %d", i, got, want)
		}
	}
	// Uneven division still assigns every CPU a valid node, in order.
	m = numaMachine(6, 4)
	prev := 0
	for i := 0; i < 6; i++ {
		n := m.NodeOf(i)
		if n < prev || n >= 4 {
			t.Fatalf("NodeOf(%d) = %d (prev %d)", i, n, prev)
		}
		prev = n
	}
	if m.NodeOf(5) != 3 {
		t.Fatalf("last CPU on node %d, want 3", m.NodeOf(5))
	}
}

func TestNodesConfigValidation(t *testing.T) {
	for _, bad := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Nodes=%d with 4 CPUs accepted", bad)
				}
			}()
			cfg := DefaultConfig()
			cfg.NumCPUs = 4
			cfg.Nodes = bad
			cfg.MemBytes = 8 << 20
			New(cfg)
		}()
	}
	// Zero defaults to one node.
	cfg := DefaultConfig()
	cfg.NumCPUs = 2
	cfg.Nodes = 0
	cfg.MemBytes = 8 << 20
	if m := New(cfg); m.NumNodes() != 1 {
		t.Fatalf("Nodes=0 gave %d nodes", m.NumNodes())
	}
}

func TestRemoteMetaMissCostsMore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumCPUs = 2
	cfg.Nodes = 2
	cfg.MemBytes = 8 << 20
	m := New(cfg)
	c := m.CPU(0) // node 0

	local := m.NewMetaLineOn(0)
	remote := m.NewMetaLineOn(1)

	start := c.Now()
	c.Read(local)
	localCost := c.Now() - start

	start = c.Now()
	c.Read(remote)
	remoteCost := c.Now() - start

	if want := localCost + cfg.RemoteMissCycles; remoteCost != want {
		t.Fatalf("remote cold miss cost %d, local %d, want remote = local+%d",
			remoteCost, localCost, cfg.RemoteMissCycles)
	}
	if got := m.InterconnectTransactions(); got != 1 {
		t.Fatalf("interconnect transactions = %d, want 1 (remote miss only)", got)
	}
	if got := c.Stats().RemoteMisses; got != 1 {
		t.Fatalf("remote misses = %d, want 1", got)
	}
}

func TestSingleNodeNoInterconnectTraffic(t *testing.T) {
	m := numaMachine(2, 1)
	c0, c1 := m.CPU(0), m.CPU(1)
	l := m.LineOf(0x4000)
	// Ping-pong ownership: heavy bus traffic, but with one node none of
	// it can be remote.
	for i := 0; i < 32; i++ {
		c0.Write(l)
		c1.Write(l)
	}
	if got := m.InterconnectTransactions(); got != 0 {
		t.Fatalf("interconnect transactions = %d on a 1-node machine", got)
	}
	if got := c0.Stats().RemoteMisses + c1.Stats().RemoteMisses; got != 0 {
		t.Fatalf("remote misses = %d on a 1-node machine", got)
	}
}

func TestCrossNodeOwnershipTransferUsesInterconnect(t *testing.T) {
	m := numaMachine(4, 2)
	c0, c2 := m.CPU(0), m.CPU(2) // nodes 0 and 1
	l := m.NewMetaLineOn(0)

	c0.Write(l) // node-local cold miss
	icBefore := m.InterconnectTransactions()
	if icBefore != 0 {
		t.Fatalf("local miss crossed the interconnect (%d txns)", icBefore)
	}
	c2.Read(l) // home and exclusive owner both on node 0: remote
	if got := m.InterconnectTransactions(); got != 1 {
		t.Fatalf("interconnect transactions = %d after cross-node read, want 1", got)
	}
	if got := c2.Stats().RemoteMisses; got != 1 {
		t.Fatalf("c2 remote misses = %d, want 1", got)
	}
}

func TestPerNodeBusesSplitTraffic(t *testing.T) {
	m := numaMachine(4, 2)
	// Each node hammers a line homed on its own bus: both buses see
	// transactions, the interconnect sees none.
	l0 := m.NewMetaLineOn(0)
	l1 := m.NewMetaLineOn(1)
	for i := 0; i < 16; i++ {
		m.CPU(0).Write(l0)
		m.CPU(1).Write(l0)
		m.CPU(2).Write(l1)
		m.CPU(3).Write(l1)
	}
	if m.NodeBusTransactions(0) == 0 || m.NodeBusTransactions(1) == 0 {
		t.Fatalf("bus txns = %d/%d, want both nonzero",
			m.NodeBusTransactions(0), m.NodeBusTransactions(1))
	}
	if got := m.InterconnectTransactions(); got != 0 {
		t.Fatalf("interconnect transactions = %d for node-local traffic", got)
	}
	if sum := m.NodeBusTransactions(0) + m.NodeBusTransactions(1); sum != m.BusTransactions() {
		t.Fatalf("per-node sums %d != total %d", sum, m.BusTransactions())
	}
}
