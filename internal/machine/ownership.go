package machine

import (
	"fmt"
	"sync/atomic"
)

// Ownership checking. The paper's fast path is safe only because "CPUs
// are prohibited from accessing other CPUs' per-CPU caches": in this
// library that discipline is "one goroutine drives a CPU handle at a
// time". Violations in Native mode don't crash — the IntrLock mutex
// silently serializes them — so they hide real bugs in calling code.
// When checking is enabled, each CPU carries an exclusivity marker that
// panics on concurrent entry instead.

// exclusive is the marker; 0 = free, otherwise an opaque entrant token.
type exclusive struct {
	holder atomic.Int64
	tokens atomic.Int64
}

// BeginExclusive marks the CPU as driven by the caller and returns a
// token for EndExclusive. It panics if another goroutine is inside an
// exclusive section on the same CPU — the misuse the per-CPU design
// forbids.
func (c *CPU) BeginExclusive() int64 {
	tok := c.excl.tokens.Add(1)
	if !c.excl.holder.CompareAndSwap(0, tok) {
		panic(fmt.Sprintf(
			"machine: CPU %d entered concurrently by two goroutines; one goroutine must own a CPU handle at a time",
			c.id))
	}
	return tok
}

// EndExclusive releases the marker taken by BeginExclusive.
func (c *CPU) EndExclusive(tok int64) {
	if !c.excl.holder.CompareAndSwap(tok, 0) {
		panic(fmt.Sprintf("machine: CPU %d exclusive section corrupted", c.id))
	}
}
