package machine

import (
	"runtime"
	"sync/atomic"
)

// Rseq is a restartable per-CPU sequence region: the optimistic
// replacement for IntrLock on the per-CPU fast paths. A critical
// section entered through Run commits with a single store — no
// interrupt disable, no lock word, no bus-locked instruction on the
// fast path — and is *restarted* from the top, never blocked, when
// preemption or a remote interferer lands inside it.
//
// In Sim mode the cost model is the point. An undisturbed sequence
// charges:
//
//	begin:  1 insn   (arm the per-CPU critical-section descriptor)
//	body:   whatever the body charges
//	commit: 1 insn + CommitCycles (single store to an owned line,
//	        plus the abort-ip window check)
//
// versus IntrLock's 2 insns + IntrCycles for the cli/sti pair — the
// same instruction count, IntrCycles-CommitCycles fewer cycles, and no
// window with interrupts off. Aborts are injected from the machine's
// seeded jitter stream (JitterConfig.RestartEvery): an aborted attempt
// charges the adversarially chosen slice of wasted body work plus
// RestartCycles for the vector through the abort handler, then the
// sequence re-runs. The body's side effects must therefore be confined
// so that re-running it is harmless; the simulator models an aborted
// attempt as pure wasted work (the published state is untouched), which
// is exactly the contract a commit-store sequence provides.
//
// In Native mode Run is a real optimistic loop over atomics: the owner
// samples the region's epoch, claims the region word with a CAS, and
// re-checks the epoch — any interferer that got in between bumped it,
// aborting the attempt and restarting the sequence. Interfere is the
// remote side (cross-CPU drains): it claims the region word, bumps the
// epoch so concurrent owner attempts abort, and runs under the claim.
// The atomics give the race detector the happens-before edges the
// mutex used to provide.
type Rseq struct {
	// Sim mode: the per-CPU descriptor/epoch word's cache line. The
	// owner keeps it resident; interferers take it exclusive when they
	// bump the epoch, which is what makes interference visible.
	line Line

	// Native mode.
	claim    atomic.Int32  // 0 free, 1 owner, 2 interferer
	epoch    atomic.Uint64 // bumped by every interferer
	restarts atomic.Uint64 // aborted attempts (both modes)
}

// NewRseqOn returns a restartable-sequence region whose descriptor line
// is homed on the given NUMA node (the owning CPU's node, so the owner
// fast path stays node-local).
func NewRseqOn(m *Machine, node int) *Rseq {
	return &Rseq{line: m.NewMetaLineOn(node)}
}

// Run executes body as a restartable sequence on CPU c and returns the
// number of aborted attempts; the same count is passed to body, so
// callers can tally restarts into state the sequence itself protects
// (in Native mode, writing shared counters after Run returns would race
// with interferers). The body is invoked exactly once per call in Sim
// mode (aborted attempts are charged as wasted work, see the type
// comment); in Native mode it is invoked once the optimistic claim
// succeeds with an unchanged epoch.
func (q *Rseq) Run(c *CPU, body func(restarts int)) int {
	m := c.m
	aborted := 0
	if m.cfg.Mode == Sim {
		for {
			abort, wasted := m.rseqAbort(c)
			if !abort {
				break
			}
			aborted++
			q.restarts.Add(1)
			c.restarts++
			// The aborted attempt: begin, a jitter-chosen slice of the
			// body, then the vector through the abort handler back to
			// the sequence head.
			c.Work(1 + wasted)
			c.clock += m.cfg.RestartCycles
		}
		c.Work(1) // begin: arm the descriptor
		body(aborted)
		c.Work(1) // commit store
		c.clock += m.cfg.CommitCycles
		return aborted
	}
	for {
		e := q.epoch.Load()
		if !q.claim.CompareAndSwap(0, 1) {
			runtime.Gosched()
			continue
		}
		if q.epoch.Load() != e {
			// An interferer completed between the epoch sample and the
			// claim: abort and restart from the top.
			q.claim.Store(0)
			q.restarts.Add(1)
			aborted++
			continue
		}
		body(aborted)
		q.claim.Store(0)
		return aborted
	}
}

// Interfere executes body against the region's per-CPU state from a
// foreign CPU, aborting any sequence the owner starts meanwhile. In Sim
// mode it charges the epoch bump — a bus-locked RMW on the descriptor
// line (remote when the nodes differ) plus a fence to make the bump
// globally visible before the body's writes.
func (q *Rseq) Interfere(c *CPU, body func()) {
	m := c.m
	if m.cfg.Mode == Sim {
		c.Atomic(q.line)
		c.clock += m.cfg.FenceCycles
		body()
		return
	}
	for !q.claim.CompareAndSwap(0, 2) {
		runtime.Gosched()
	}
	q.epoch.Add(1)
	body()
	q.claim.Store(0)
}

// Restarts returns the number of aborted attempts so far.
func (q *Rseq) Restarts() uint64 { return q.restarts.Load() }
