package machine

import "sync"

// SpinLock is the mutual-exclusion primitive the lock-based allocators
// (and the new allocator's global layer) use.
//
// In Sim mode it models a test-and-test-and-set spinlock on the paper's
// hardware. The simulator executes whole operations in virtual-clock
// order, so a lock is represented by its recent *hold intervals*: an
// acquire at time t must wait past every recorded hold overlapping t
// (chasing the chain of back-to-back holds, exactly like spinning through
// consecutive owners), and each release records the new [acquire,release]
// interval. Modelling intervals rather than a single "free after" time
// keeps a short critical section short even when it sits inside an
// expensive operation. Contended acquires also inject retry traffic onto
// the shared bus, so heavy spinning degrades every CPU — the effect that
// flattens the lock-based allocators in Figures 7 and 8.
//
// In Native mode it is a plain sync.Mutex.
type SpinLock struct {
	mu sync.Mutex // Native mode

	// Sim mode state.
	line     Line
	holds    []hold // ring of recent hold intervals
	next     int    // ring cursor
	curStart int64  // acquire time of the hold currently executing

	acquisitions uint64
	contended    uint64
	spinCycles   int64 // total cycles spent waiting for the lock
	holdCycles   int64 // total cycles the lock was held
	lastWait     int64 // wait cycles of the most recent Acquire (0 if uncontended)
}

// hold is one completed critical section in virtual time.
type hold struct{ start, end int64 }

// holdHistory bounds the remembered intervals. Operations execute in
// start-clock order, so only holds from recently executed operations can
// overlap a new acquire; with at most 64 CPUs, 128 intervals is ample.
const holdHistory = 128

// NewSpinLock returns a lock whose lock word lives on its own cache line,
// homed on node 0.
func NewSpinLock(m *Machine) *SpinLock {
	return &SpinLock{line: m.NewMetaLine()}
}

// NewSpinLockOn returns a lock whose lock word lives on its own cache
// line homed on the given NUMA node, so remote acquirers pay the
// interconnect.
func NewSpinLockOn(m *Machine, node int) *SpinLock {
	return &SpinLock{line: m.NewMetaLineOn(node)}
}

// maxRetryCharge bounds the bus traffic charged for one contended
// acquisition, so that a pathological wait cannot make the bus model
// diverge.
const maxRetryCharge = 64

// Line returns the lock word's cache line (for profiling and naming).
func (l *SpinLock) Line() Line { return l.line }

// Acquire takes the lock on behalf of CPU c.
func (l *SpinLock) Acquire(c *CPU) {
	if c.m.cfg.Mode != Sim {
		l.mu.Lock()
		return
	}
	c.m.lockJitter(c)
	l.acquisitions++
	l.lastWait = 0
	// Initial test-and-set attempt. The successful test-and-set belongs
	// to the hold interval: between the winner's bus-locked RMW and its
	// release store, no other CPU can take the lock.
	tsStart := c.clock
	c.Atomic(l.line)

	// Chase the chain of holds overlapping the current time, re-checking
	// after each retry: the bus-locked retry itself advances the clock
	// and may land inside another recorded hold.
	wasContended := false
	for {
		t := c.clock
		for {
			next := int64(-1)
			for _, h := range l.holds {
				if h.start <= t && t < h.end && h.end > next {
					next = h.end
				}
			}
			if next < 0 {
				break
			}
			t = next
		}
		wait := t - c.clock
		if wait <= 0 {
			break
		}
		wasContended = true
		l.spinCycles += wait
		l.lastWait += wait
		c.spinWait += wait
		c.noteWait(l.line, wait)
		retries := wait / c.m.cfg.SpinRetryGap
		if retries > maxRetryCharge {
			retries = maxRetryCharge
		}
		// The spinning CPU's periodic test-and-set retries occupy its
		// node's bus across the wait window, degrading everyone sharing
		// it — and the interconnect too when the lock word is homed on
		// another node.
		if retries > 0 {
			b := &c.m.buses[c.node]
			b.occupy(c.clock, c.clock+retries*c.m.cfg.BusCycles)
			b.txns += uint64(retries)
			if len(c.m.buses) > 1 && c.m.lineHome(l.line) != c.node {
				c.m.ic.occupy(c.clock, c.clock+retries*c.m.cfg.InterconnectCycles)
				c.m.ic.txns += uint64(retries)
			}
		}
		c.clock = t
		// The winning test-and-set after the previous holder's release.
		tsStart = c.clock
		c.Atomic(l.line)
	}
	if wasContended {
		l.contended++
	}
	l.curStart = tsStart
}

// Release drops the lock, recording the completed hold interval. The
// release itself is a plain store to the (now owned) lock word.
func (l *SpinLock) Release(c *CPU) {
	if c.m.cfg.Mode != Sim {
		l.mu.Unlock()
		return
	}
	c.Write(l.line)
	h := hold{start: l.curStart, end: c.clock}
	if h.end == h.start {
		h.end++ // zero-length sections still exclude exact ties
	}
	l.holdCycles += h.end - h.start
	if len(l.holds) < holdHistory {
		l.holds = append(l.holds, h)
	} else {
		l.holds[l.next] = h
		l.next = (l.next + 1) % holdHistory
	}
}

// LastWait returns the cycles the most recent Acquire spent waiting for
// the lock (0 for an uncontended acquire, and always 0 in Native mode).
// The value is only meaningful while the caller still holds the lock —
// layers read it right after Acquire to attribute contention to the
// event spine (EvLockWait).
func (l *SpinLock) LastWait() int64 { return l.lastWait }

// LockStats is a snapshot of spinlock contention counters. SpinCycles is
// the accumulated wait time (cycles CPUs spent spinning for the lock);
// HoldCycles is the accumulated time the lock was held. Their ratio is
// the classic contention diagnostic: wait >> hold means the lock is the
// bottleneck, hold >> wait means the critical section is merely long.
type LockStats struct {
	Acquisitions uint64
	Contended    uint64
	SpinCycles   int64
	HoldCycles   int64
}

// Stats returns the lock's contention counters.
func (l *SpinLock) Stats() LockStats {
	return LockStats{
		Acquisitions: l.acquisitions,
		Contended:    l.contended,
		SpinCycles:   l.spinCycles,
		HoldCycles:   l.holdCycles,
	}
}

// IntrLock guards per-CPU state. On the paper's machine this protection is
// interrupt disabling — no bus traffic, no shared lock word. In Sim mode
// Acquire charges only the cli/sti cycle cost; in Native mode it is a real
// (uncontended in correct use) mutex so that the low-memory path's remote
// cache drains are race-free under the Go memory model.
type IntrLock struct {
	mu sync.Mutex
}

// Acquire enters the protected region on CPU c.
func (l *IntrLock) Acquire(c *CPU) {
	if c.m.cfg.Mode == Sim {
		c.m.lockJitter(c)
		c.DisableIntr()
		return
	}
	l.mu.Lock()
}

// Release leaves the protected region.
func (l *IntrLock) Release(c *CPU) {
	if c.m.cfg.Mode == Sim {
		return
	}
	l.mu.Unlock()
}
