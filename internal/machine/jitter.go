package machine

// Schedule jitter is the torture subsystem's lever on the simulator: an
// opt-in, seeded perturbation of the discrete-event schedule. The
// conservative scheduler in runSim always runs the lowest-clock CPU and
// breaks ties by CPU id, so one configuration explores exactly one
// interleaving. With jitter armed, three perturbations — all drawn from
// one xorshift64* stream, so a seed names an interleaving exactly:
//
//   - tie-breaking: each CPU carries a pseudo-random tie priority,
//     refreshed after every operation it executes, that orders CPUs
//     whose clocks are equal (id remains the final tie-break so the
//     order is still total);
//   - preemption points: after an operation completes, the CPU's clock
//     may jump forward a bounded random amount, modelling an interrupt
//     or preemption that lets other CPUs' operations slide in front;
//   - lock boundaries: an acquire (SpinLock or IntrLock) may be delayed
//     a bounded random amount before it contends, reordering lock
//     arbitration specifically.
//
// Everything is charged to virtual clocks, so a jittered run is exactly
// as replayable as a plain one: same seed, same config, same workload =>
// the same interleaving, cycle for cycle. With jitter disabled (nil
// config or Seed 0) every hook reduces to a nil check and the schedule
// is byte-identical to the unjittered simulator — pinned by the cycle
// goldens in internal/core's shard conformance tests.

// JitterConfig configures seeded schedule perturbation. The zero value
// of every field but Seed selects a sensible default; Seed 0 disables
// jitter entirely.
type JitterConfig struct {
	// Seed selects the interleaving. 0 disables jitter.
	Seed uint64
	// PreemptEvery is the mean number of operations between injected
	// preemption points (default 7).
	PreemptEvery int
	// MaxPreemptCycles bounds one injected preemption delay (default 1500).
	MaxPreemptCycles int64
	// LockEvery is the mean number of lock acquisitions between injected
	// lock-boundary delays (default 5).
	LockEvery int
	// MaxLockCycles bounds one injected lock-boundary delay (default 400).
	MaxLockCycles int64

	// RestartEvery is the mean number of restartable-sequence attempts
	// between injected aborts (default 9). A restart-storm config sets
	// this to 2 to abort sequences at a high rate; see Rseq.Run for how
	// each abort picks an adversarial abort point. Only consulted while
	// a sequence is running, so runs without Rseq enabled draw exactly
	// the same jitter stream as before the knob existed.
	RestartEvery int
	// MaxRestartWork bounds the wasted straight-line instructions charged
	// for one aborted attempt — the adversarial abort point is drawn in
	// [1, MaxRestartWork], so a sequence can be aborted anywhere from its
	// first instruction to just shy of its commit (default 16).
	MaxRestartWork int64
}

func (c JitterConfig) withDefaults() JitterConfig {
	if c.PreemptEvery <= 0 {
		c.PreemptEvery = 7
	}
	if c.MaxPreemptCycles <= 0 {
		c.MaxPreemptCycles = 1500
	}
	if c.LockEvery <= 0 {
		c.LockEvery = 5
	}
	if c.MaxLockCycles <= 0 {
		c.MaxLockCycles = 400
	}
	if c.RestartEvery <= 0 {
		c.RestartEvery = 9
	}
	if c.MaxRestartWork <= 0 {
		c.MaxRestartWork = 16
	}
	return c
}

// jitter holds the armed configuration and the PRNG stream.
type jitter struct {
	cfg   JitterConfig
	state uint64
}

// next steps the xorshift64* generator. The stream is consumed in
// schedule order, which is itself deterministic, so the whole run is a
// pure function of (seed, config, workload).
func (j *jitter) next() uint64 {
	x := j.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	j.state = x
	return x * 0x2545f4914f6cdd1d
}

// delay draws a delay in [1, max].
func (j *jitter) delay(max int64) int64 {
	return 1 + int64(j.next()%uint64(max))
}

// SetScheduleJitter arms (or, with a nil config or zero seed, disarms)
// seeded schedule perturbation. Sim mode only: Native scheduling belongs
// to the Go runtime. Call before Run; arming mid-run is not supported.
func (m *Machine) SetScheduleJitter(cfg *JitterConfig) {
	if cfg == nil || cfg.Seed == 0 {
		m.jit = nil
		for i := range m.cpus {
			m.cpus[i].tiePri = 0
		}
		return
	}
	if m.cfg.Mode != Sim {
		panic("machine: schedule jitter requires Sim mode")
	}
	m.jit = &jitter{cfg: cfg.withDefaults(), state: cfg.Seed}
	// Seed every CPU's tie priority up front so the very first tie is
	// already perturbed.
	for i := range m.cpus {
		m.cpus[i].tiePri = m.jit.next()
	}
}

// lockJitter possibly injects a bounded seeded delay at a lock boundary.
// Called from the Sim branches of SpinLock.Acquire and IntrLock.Acquire;
// with jitter disarmed it is a nil check.
func (m *Machine) lockJitter(c *CPU) {
	j := m.jit
	if j == nil {
		return
	}
	if j.next()%uint64(j.cfg.LockEvery) != 0 {
		return
	}
	c.clock += j.delay(j.cfg.MaxLockCycles)
}

// rseqAbort decides whether the next restartable-sequence attempt on c
// is aborted, and if so at which point: it returns the number of wasted
// straight-line instructions the aborted attempt executed before the
// preemption hit. With jitter disarmed sequences never abort in Sim —
// the conservative schedule has no preemption to restart from.
func (m *Machine) rseqAbort(c *CPU) (abort bool, wasted int64) {
	j := m.jit
	if j == nil {
		return false, 0
	}
	if j.next()%uint64(j.cfg.RestartEvery) != 0 {
		return false, 0
	}
	return true, j.delay(j.cfg.MaxRestartWork)
}

// --- schedule hashing ----------------------------------------------------

// FNV-1a over the scheduled (cpu, clock) pairs. The hash names an
// interleaving: two runs with the same hash scheduled the same CPUs at
// the same virtual times in the same order.
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// EnableSchedHash starts (re)accumulating the schedule hash: one FNV-1a
// update per scheduled operation, folding in the chosen CPU's id and
// clock. Hashing never touches virtual clocks, so it can be enabled in
// golden runs without perturbing them.
func (m *Machine) EnableSchedHash() {
	m.schedHashOn = true
	m.schedHash = fnvOffset
}

// SchedHash returns the accumulated schedule hash.
func (m *Machine) SchedHash() uint64 { return m.schedHash }
