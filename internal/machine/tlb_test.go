package machine

import "testing"

func tlbMachine(entries int) *Machine {
	cfg := DefaultConfig()
	cfg.MemBytes = 8 << 20
	cfg.PhysPages = 512
	cfg.TLBEntries = entries
	return New(cfg)
}

func TestTLBMissOnFirstTouch(t *testing.T) {
	m := tlbMachine(32)
	c := m.CPU(0)
	l := m.LineOf(0x5000)
	c.Read(l)
	if got := c.Stats().TLBMisses; got != 1 {
		t.Fatalf("TLB misses = %d", got)
	}
	// Same page, different line: no new TLB miss.
	c.Read(m.LineOf(0x5040))
	if got := c.Stats().TLBMisses; got != 1 {
		t.Fatalf("TLB misses after same-page access = %d", got)
	}
	// Different page: one more.
	c.Read(m.LineOf(0x9000))
	if got := c.Stats().TLBMisses; got != 2 {
		t.Fatalf("TLB misses after new page = %d", got)
	}
}

func TestTLBConflictEviction(t *testing.T) {
	m := tlbMachine(2) // tiny: pages 2 apart conflict
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes
	a := m.LineOf(1 * pageBytes)
	b := m.LineOf(3 * pageBytes) // same TLB slot as page 1 (1%2 == 3%2)
	c.Read(a)
	c.Read(b)
	c.Read(a) // evicted: miss again
	if got := c.Stats().TLBMisses; got != 3 {
		t.Fatalf("TLB misses = %d, want 3", got)
	}
}

func TestTLBMissChargesCycles(t *testing.T) {
	with := tlbMachine(32)
	without := tlbMachine(0)
	cw, co := with.CPU(0), without.CPU(0)
	cw.Read(Line(100))
	co.Read(Line(100))
	diff := cw.Now() - co.Now()
	if diff != with.Config().TLBMissCycles {
		t.Fatalf("TLB cost = %d, want %d", diff, with.Config().TLBMissCycles)
	}
}

func TestTLBMetaLinesExempt(t *testing.T) {
	m := tlbMachine(32)
	c := m.CPU(0)
	c.Read(m.NewMetaLine())
	if got := c.Stats().TLBMisses; got != 0 {
		t.Fatalf("meta line charged a TLB miss")
	}
}

func TestTLBDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TLBEntries != 0 {
		t.Fatal("TLB enabled by default; calibration figures assume it off")
	}
}

func TestTLBBadConfigPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLBEntries = 3
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two TLBEntries accepted")
		}
	}()
	New(cfg)
}
