package machine

import (
	"runtime"
	"sync"
	"testing"
)

// TestSpinLockWaitHoldAccounting pins the wait-vs-hold cycle split: an
// uncontended acquire records hold time and zero wait; a contended
// acquire records its spin as both SpinCycles and LastWait; and the next
// uncontended acquire resets LastWait.
func TestSpinLockWaitHoldAccounting(t *testing.T) {
	m := simMachine(2)
	c0, c1 := m.CPU(0), m.CPU(1)
	lk := NewSpinLock(m)

	lk.Acquire(c0)
	if w := lk.LastWait(); w != 0 {
		t.Fatalf("first acquire waited %d cycles", w)
	}
	c0.Work(1000)
	lk.Release(c0)
	ls := lk.Stats()
	if ls.HoldCycles < 1000 {
		t.Fatalf("hold of 1000 work cycles recorded as %d", ls.HoldCycles)
	}
	if ls.SpinCycles != 0 {
		t.Fatalf("uncontended history shows %d spin cycles", ls.SpinCycles)
	}

	// c1 starts near time 0 and must spin past c0's hold.
	lk.Acquire(c1)
	w := lk.LastWait()
	if w <= 0 {
		t.Fatal("contended acquire recorded no wait")
	}
	ls = lk.Stats()
	if ls.SpinCycles != w {
		t.Fatalf("SpinCycles %d != LastWait %d after one contended acquire", ls.SpinCycles, w)
	}
	if ls.HoldCycles < 1000 {
		t.Fatalf("HoldCycles %d lost the first hold", ls.HoldCycles)
	}
	c1.Work(10)
	lk.Release(c1)

	// A later, uncontended acquire must not inherit the old wait.
	c1.Work(100000)
	lk.Acquire(c1)
	if w := lk.LastWait(); w != 0 {
		t.Fatalf("uncontended reacquire reports stale wait %d", w)
	}
	lk.Release(c1)
	ls = lk.Stats()
	if ls.Acquisitions != 3 || ls.Contended != 1 {
		t.Fatalf("lock stats: %+v", ls)
	}
}

// TestSpinLockStatsNativeZeroWait: Native mode takes the sync.Mutex path
// and must never report simulated wait or hold cycles.
func TestSpinLockStatsNativeZeroWait(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Native
	cfg.NumCPUs = 2
	m := New(cfg)
	lk := NewSpinLock(m)
	c := m.CPU(0)
	lk.Acquire(c)
	if w := lk.LastWait(); w != 0 {
		t.Fatalf("native LastWait = %d", w)
	}
	lk.Release(c)
	if ls := lk.Stats(); ls.SpinCycles != 0 || ls.HoldCycles != 0 || ls.Acquisitions != 0 {
		t.Fatalf("native lock stats populated: %+v", ls)
	}
}

// paddedIntrLock pads an IntrLock to a full 64-byte cache line, the
// layout the allocator uses for its per-CPU lock array (core's
// paddedIntrLock). The benchmark below measures why: adjacent unpadded
// 8-byte mutexes in one slice share lines, and every Lock/Unlock
// invalidates the neighbours' lines.
type paddedIntrLock struct {
	IntrLock
	_ [56]byte
}

// benchIntrLocks hammers one lock per worker, each worker on its own
// CPU handle and its own lock — no shared data, so any slowdown between
// the two layouts is pure cache-line interference. Race-detector clean.
func benchIntrLocks(b *testing.B, lockFor func(w int) interface {
	Acquire(*CPU)
	Release(*CPU)
}, workers int, m *Machine) {
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := m.CPU(w)
			l := lockFor(w)
			for i := 0; i < b.N; i++ {
				l.Acquire(c)
				l.Release(c)
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkIntrLockFalseSharing compares adjacent unpadded IntrLocks
// against cache-line-padded ones under per-worker (uncontended) use in
// Native mode. Run with -race to verify the harness is race-free; run
// without -race for meaningful timings.
func BenchmarkIntrLockFalseSharing(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers < 2 || runtime.NumCPU() < 2 {
		// Time-slicing goroutines on one core cannot bounce a cache line
		// between caches; numbers there would only measure footprint.
		b.Skip("needs >= 2 hardware CPUs to exhibit line sharing")
	}
	newNative := func() *Machine {
		cfg := DefaultConfig()
		cfg.Mode = Native
		cfg.NumCPUs = workers
		return New(cfg)
	}
	b.Run("unpadded", func(b *testing.B) {
		m := newNative()
		locks := make([]IntrLock, workers)
		benchIntrLocks(b, func(w int) interface {
			Acquire(*CPU)
			Release(*CPU)
		} {
			return &locks[w]
		}, workers, m)
	})
	b.Run("padded", func(b *testing.B) {
		m := newNative()
		locks := make([]paddedIntrLock, workers)
		benchIntrLocks(b, func(w int) interface {
			Acquire(*CPU)
			Release(*CPU)
		} {
			return &locks[w]
		}, workers, m)
	})
}
