package machine

import "testing"

func TestLineProfileAttributesTraffic(t *testing.T) {
	m := simMachine(2)
	m.EnableLineProfile()
	hot := m.NewMetaLine()
	m.NameMetaLine(hot, "lock-word")
	cold := m.NewMetaLine()

	// Ping-pong the hot line; touch the cold one once.
	for i := 0; i < 50; i++ {
		m.CPU(0).Atomic(hot)
		m.CPU(1).Atomic(hot)
	}
	m.CPU(0).Read(cold)

	top := m.TopLines(2)
	if len(top) != 2 {
		t.Fatalf("%d lines profiled", len(top))
	}
	if top[0].Line != hot || top[0].Name != "lock-word" {
		t.Fatalf("hottest = %+v", top[0])
	}
	if top[0].Atomics != 100 {
		t.Fatalf("hot atomics = %d", top[0].Atomics)
	}
	if top[1].Misses != 1 {
		t.Fatalf("cold misses = %d", top[1].Misses)
	}
}

func TestLineProfileHitsNotCounted(t *testing.T) {
	m := simMachine(1)
	m.EnableLineProfile()
	l := Line(7)
	c := m.CPU(0)
	c.Read(l) // cold miss
	for i := 0; i < 10; i++ {
		c.Read(l) // hits
	}
	top := m.TopLines(10)
	if len(top) != 1 || top[0].Misses != 1 {
		t.Fatalf("profile = %+v", top)
	}
}

func TestLineProfileDisable(t *testing.T) {
	m := simMachine(1)
	m.EnableLineProfile()
	m.CPU(0).Read(Line(1))
	m.DisableLineProfile()
	if got := m.TopLines(5); len(got) != 0 {
		t.Fatalf("profile survived disable: %v", got)
	}
}

func TestLineProfileNativePanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Native
	m := New(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic in native mode")
		}
	}()
	m.EnableLineProfile()
}

func TestExclusiveMarkerDetectsOverlap(t *testing.T) {
	// Deterministic check of the ownership primitive itself: a second
	// Begin while one is outstanding must panic.
	m := simMachine(1)
	c := m.CPU(0)
	tok := c.BeginExclusive()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("overlapping BeginExclusive did not panic")
			}
		}()
		c.BeginExclusive()
	}()
	c.EndExclusive(tok)
	// After release, entry works again.
	tok2 := c.BeginExclusive()
	c.EndExclusive(tok2)
}

func TestExclusiveMarkerBadToken(t *testing.T) {
	m := simMachine(1)
	c := m.CPU(0)
	tok := c.BeginExclusive()
	defer func() {
		if recover() == nil {
			t.Fatal("bad token not detected")
		}
	}()
	c.EndExclusive(tok + 1)
}

func TestTopLinesDeterministicOrder(t *testing.T) {
	m := simMachine(1)
	m.EnableLineProfile()
	c := m.CPU(0)
	// Three lines, one miss each: order must be by line id.
	for _, l := range []Line{30, 10, 20} {
		c.Read(l)
	}
	top := m.TopLines(3)
	if top[0].Line != 10 || top[1].Line != 20 || top[2].Line != 30 {
		t.Fatalf("order: %v", top)
	}
}
