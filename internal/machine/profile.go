package machine

import "sort"

// Line profiling: the software equivalent of the paper's logic-analyzer
// sessions. When enabled, every miss and atomic access is attributed to
// its cache line, so an experiment can ask which lines' transfers
// dominated — lock words, freelist heads, or the blocks themselves.
// Sim mode, single-goroutine only.

// LineStats aggregates one line's off-chip traffic.
type LineStats struct {
	Line    Line
	Name    string // meta-line name if registered, else ""
	Misses  uint64
	Atomics uint64
}

// EnableLineProfile starts attributing misses and atomics per line.
func (m *Machine) EnableLineProfile() {
	if m.cfg.Mode != Sim {
		panic("machine: line profiling requires Sim mode")
	}
	m.profile = make(map[Line]*LineStats)
}

// DisableLineProfile stops profiling and discards the data.
func (m *Machine) DisableLineProfile() { m.profile = nil }

// NameMetaLine attaches a debug name to a meta line, shown in profiles.
func (m *Machine) NameMetaLine(l Line, name string) {
	if m.lineNames == nil {
		m.lineNames = make(map[Line]string)
	}
	m.lineNames[l] = name
}

// noteProfile records one off-chip event for line l.
func (m *Machine) noteProfile(l Line, atomic bool) {
	st := m.profile[l]
	if st == nil {
		st = &LineStats{Line: l, Name: m.lineNames[l]}
		m.profile[l] = st
	}
	if atomic {
		st.Atomics++
	} else {
		st.Misses++
	}
}

// TopLines returns the n lines with the most off-chip traffic
// (misses+atomics), hottest first. Ties break by line id so the result
// is deterministic.
func (m *Machine) TopLines(n int) []LineStats {
	out := make([]LineStats, 0, len(m.profile))
	for _, st := range m.profile {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].Misses + out[i].Atomics
		tj := out[j].Misses + out[j].Atomics
		if ti != tj {
			return ti > tj
		}
		return out[i].Line < out[j].Line
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
