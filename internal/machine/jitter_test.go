package machine

import "testing"

// jitterWorkload drives a fixed lock-heavy workload — IntrLock sections,
// a contended spinlock, shared-line traffic — and returns the final
// per-CPU clocks and the schedule hash. Everything the jitter hooks can
// perturb is exercised.
func jitterWorkload(t *testing.T, cpus int, cfg *JitterConfig) ([]int64, uint64) {
	t.Helper()
	mc := DefaultConfig()
	mc.NumCPUs = cpus
	if cpus >= 4 {
		mc.Nodes = 2
	}
	m := New(mc)
	m.SetScheduleJitter(cfg)
	m.EnableSchedHash()
	lk := NewSpinLock(m)
	var il IntrLock
	shared := m.NewMetaLine()
	ops := make([]int, cpus)
	m.Run(func(c *CPU) bool {
		if ops[c.ID()] >= 200 {
			return false
		}
		ops[c.ID()]++
		il.Acquire(c)
		c.Work(5)
		il.Release(c)
		lk.Acquire(c)
		c.Atomic(shared)
		c.Work(int64(3 + ops[c.ID()]%7))
		lk.Release(c)
		c.Write(shared)
		return true
	})
	clocks := make([]int64, cpus)
	for i := range clocks {
		clocks[i] = m.CPU(i).Now()
	}
	return clocks, m.SchedHash()
}

// TestJitterDisabledIsIdentical proves the no-jitter guarantee: a nil
// config and an explicit zero seed schedule byte-identically to a run
// that never touches the jitter API (same clocks, same schedule hash).
func TestJitterDisabledIsIdentical(t *testing.T) {
	for _, cpus := range []int{1, 2, 4, 8} {
		base, baseHash := jitterWorkload(t, cpus, nil)
		zero, zeroHash := jitterWorkload(t, cpus, &JitterConfig{Seed: 0})
		if baseHash != zeroHash {
			t.Errorf("cpus=%d: zero-seed schedule hash %#x differs from base %#x", cpus, zeroHash, baseHash)
		}
		for i := range base {
			if base[i] != zero[i] {
				t.Errorf("cpus=%d cpu=%d: zero-seed clock %d differs from base %d", cpus, i, zero[i], base[i])
			}
		}
	}
}

// TestJitterSameSeedReplays proves a seed names an interleaving exactly:
// two runs with the same seed produce identical clocks and schedule
// hashes, at every CPU count.
func TestJitterSameSeedReplays(t *testing.T) {
	for _, cpus := range []int{1, 2, 4, 8} {
		a, ah := jitterWorkload(t, cpus, &JitterConfig{Seed: 42})
		b, bh := jitterWorkload(t, cpus, &JitterConfig{Seed: 42})
		if ah != bh {
			t.Errorf("cpus=%d: same seed gave schedule hashes %#x and %#x", cpus, ah, bh)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("cpus=%d cpu=%d: same seed gave clocks %d and %d", cpus, i, a[i], b[i])
			}
		}
	}
}

// TestJitterSeedsDiverge proves seeds actually explore: different seeds
// produce different interleavings, and any jittered schedule differs
// from the unjittered one.
func TestJitterSeedsDiverge(t *testing.T) {
	_, base := jitterWorkload(t, 4, nil)
	hashes := map[uint64][]uint64{}
	for _, seed := range []uint64{1, 2, 3, 42, 12345} {
		_, h := jitterWorkload(t, 4, &JitterConfig{Seed: seed})
		if h == base {
			t.Errorf("seed %d: jittered schedule hash equals unjittered hash %#x", seed, h)
		}
		hashes[h] = append(hashes[h], seed)
	}
	if len(hashes) < 2 {
		t.Errorf("5 seeds produced only %d distinct schedules", len(hashes))
	}
}

// TestJitterNativePanics pins the Sim-only contract.
func TestJitterNativePanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Native
	m := New(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("SetScheduleJitter on a Native machine did not panic")
		}
	}()
	m.SetScheduleJitter(&JitterConfig{Seed: 1})
}
