package machine

import (
	"testing"
)

func simMachine(ncpu int) *Machine {
	cfg := DefaultConfig()
	cfg.NumCPUs = ncpu
	cfg.MemBytes = 8 << 20
	cfg.PhysPages = 512
	return New(cfg)
}

func TestColdMissThenHit(t *testing.T) {
	m := simMachine(1)
	c := m.CPU(0)
	l := m.LineOf(0x1000)

	c.Read(l)
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("first read: %+v", s)
	}
	c.Read(l)
	s = c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("second read: %+v", s)
	}
}

func TestWriteRequiresOwnership(t *testing.T) {
	m := simMachine(2)
	c0, c1 := m.CPU(0), m.CPU(1)
	l := m.LineOf(0x2000)

	c0.Write(l) // miss: cold
	c0.Write(l) // hit: owned
	s0 := c0.Stats()
	if s0.Misses != 1 || s0.Hits != 1 {
		t.Fatalf("c0: %+v", s0)
	}

	// c1 reads: must miss (line exclusive at c0) and downgrade it.
	c1.Read(l)
	if s1 := c1.Stats(); s1.Misses != 1 {
		t.Fatalf("c1 read should miss: %+v", s1)
	}
	// c0's next write must miss again (ownership was lost to shared).
	c0.Write(l)
	if s0 = c0.Stats(); s0.Misses != 2 {
		t.Fatalf("c0 write after downgrade should miss: %+v", s0)
	}
}

func TestReadSharingNoPingPong(t *testing.T) {
	m := simMachine(2)
	c0, c1 := m.CPU(0), m.CPU(1)
	l := m.LineOf(0x3000)
	c0.Read(l)
	c1.Read(l)
	c0.Read(l)
	c1.Read(l)
	if s := c0.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("c0: %+v", s)
	}
	if s := c1.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("c1: %+v", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	m := simMachine(1)
	c := m.CPU(0)
	nSets := uint64(m.Config().CacheLines)
	l1 := Line(3)
	l2 := Line(3 + nSets) // same set
	c.Read(l1)
	c.Read(l2) // evicts l1
	c.Read(l1) // conflict miss
	if s := c.Stats(); s.Misses != 3 {
		t.Fatalf("conflict misses: %+v", s)
	}
}

func TestAtomicAlwaysBus(t *testing.T) {
	m := simMachine(1)
	c := m.CPU(0)
	l := m.NewMetaLine()
	before := m.BusTransactions()
	c.Atomic(l)
	c.Atomic(l) // owned, but a locked RMW still crosses the bus
	if got := m.BusTransactions() - before; got != 2 {
		t.Fatalf("bus transactions = %d, want 2", got)
	}
	if s := c.Stats(); s.Atomics != 2 {
		t.Fatalf("atomics: %+v", s)
	}
}

func TestWorkAdvancesClock(t *testing.T) {
	m := simMachine(1)
	c := m.CPU(0)
	c.Work(100)
	if c.Now() != 100*m.Config().CyclesPerInsn {
		t.Fatalf("clock = %d", c.Now())
	}
	if s := c.Stats(); s.Instructions != 100 {
		t.Fatalf("insns = %d", s.Instructions)
	}
}

func TestBusContentionDelays(t *testing.T) {
	m := simMachine(2)
	c0, c1 := m.CPU(0), m.CPU(1)
	// Two cold misses at the same instant: the second must queue behind
	// the first's bus occupancy.
	c0.Read(Line(10))
	c1.Read(Line(20))
	if c1.Now() <= c0.Now() {
		t.Fatalf("no queuing: c0=%d c1=%d", c0.Now(), c1.Now())
	}
	if s := c1.Stats(); s.BusWait == 0 {
		t.Fatalf("c1 should have waited for the bus: %+v", s)
	}
}

func TestSpinLockSerializes(t *testing.T) {
	m := simMachine(2)
	c0, c1 := m.CPU(0), m.CPU(1)
	lk := NewSpinLock(m)

	lk.Acquire(c0)
	c0.Work(1000)
	release := c0.Now()
	lk.Release(c0)

	// c1, starting at time ~0, must not get the lock before c0's release.
	lk.Acquire(c1)
	if c1.Now() < release {
		t.Fatalf("c1 acquired at %d, before release at %d", c1.Now(), release)
	}
	ls := lk.Stats()
	if ls.Acquisitions != 2 || ls.Contended != 1 || ls.SpinCycles == 0 {
		t.Fatalf("lock stats: %+v", ls)
	}
	if s := c1.Stats(); s.SpinWait == 0 {
		t.Fatalf("c1 spin wait not recorded: %+v", s)
	}
}

func TestSpinLockUncontendedCheap(t *testing.T) {
	m := simMachine(1)
	c := m.CPU(0)
	lk := NewSpinLock(m)
	lk.Acquire(c)
	lk.Release(c)
	if s := lk.Stats(); s.Contended != 0 {
		t.Fatalf("uncontended lock shows contention: %+v", s)
	}
}

func TestRunSimDeterministic(t *testing.T) {
	run := func() []uint64 {
		m := simMachine(4)
		lk := NewSpinLock(m)
		return m.RunFor(0.001, func(c *CPU) {
			lk.Acquire(c)
			c.Work(50)
			lk.Release(c)
			c.Work(20)
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
	var total uint64
	for _, n := range a {
		total += n
	}
	if total == 0 {
		t.Fatal("no operations ran")
	}
}

func TestRunSimClockOrder(t *testing.T) {
	m := simMachine(3)
	var order []int
	steps := 0
	m.Run(func(c *CPU) bool {
		if steps >= 9 {
			return false
		}
		steps++
		order = append(order, c.ID())
		c.Work(int64(10 * (c.ID() + 1))) // CPU0 fast, CPU2 slow
		return true
	})
	// CPU 0 must run most often (its clock advances slowest).
	counts := map[int]int{}
	for _, id := range order {
		counts[id]++
	}
	if counts[0] < counts[2] {
		t.Fatalf("scheduler did not favour the slow clock: %v", counts)
	}
}

func TestTraceCapturesCosts(t *testing.T) {
	m := simMachine(1)
	c := m.CPU(0)
	c.StartTrace()
	c.Read(Line(1)) // miss
	c.Read(Line(1)) // hit
	c.Atomic(Line(2))
	tr := c.StopTrace()
	if len(tr) != 3 {
		t.Fatalf("trace length %d", len(tr))
	}
	if tr[0].Cycles == 0 || tr[1].Cycles != 0 || tr[2].Kind != AtomicAccess {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestNativeModeHooksAreNoOps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Native
	cfg.NumCPUs = 2
	cfg.MemBytes = 1 << 20
	m := New(cfg)
	c := m.CPU(0)
	c.Work(100)
	c.Read(Line(1))
	c.Atomic(m.NewMetaLine())
	if c.Now() != 0 {
		t.Fatalf("native clock advanced to %d", c.Now())
	}
	lk := NewSpinLock(m)
	lk.Acquire(c)
	lk.Release(c)
}

func TestNativeRunParallel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Native
	cfg.NumCPUs = 4
	cfg.MemBytes = 1 << 20
	m := New(cfg)
	lk := NewSpinLock(m)
	counts := make([]int, 4)
	total := 0
	m.Run(func(c *CPU) bool {
		lk.Acquire(c)
		done := total >= 1000
		if !done {
			total++
			counts[c.ID()]++
		}
		lk.Release(c)
		return !done
	})
	sum := 0
	for _, n := range counts {
		sum += n
	}
	if sum != 1000 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestCyclesSecondsConversion(t *testing.T) {
	m := simMachine(1)
	if got := m.CyclesToSeconds(50_000_000); got != 1.0 {
		t.Fatalf("CyclesToSeconds = %v", got)
	}
	if got := m.SecondsToCycles(0.5); got != 25_000_000 {
		t.Fatalf("SecondsToCycles = %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"cpus":  func(c *Config) { c.NumCPUs = 0 },
		"many":  func(c *Config) { c.NumCPUs = MaxCPUs + 1 },
		"cache": func(c *Config) { c.CacheLines = 100 },
		"page":  func(c *Config) { c.PageBytes = 1000 },
		"mem":   func(c *Config) { c.MemBytes = 4096*3 + 1 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMetaLinesDistinct(t *testing.T) {
	m := simMachine(1)
	a, b := m.NewMetaLine(), m.NewMetaLine()
	if a == b {
		t.Fatal("meta lines collide")
	}
	if a&metaTag == 0 || b&metaTag == 0 {
		t.Fatal("meta lines not tagged")
	}
}
