package machine

import "testing"

func TestBusIntervalQueueing(t *testing.T) {
	m := simMachine(3)
	// Three cold misses at the same virtual instant must serialize on
	// the bus: each starts after the previous transaction's occupancy.
	for i := 0; i < 3; i++ {
		m.CPU(i).Read(Line(uint64(100 + i)))
	}
	b := m.Config().BusCycles
	miss := m.Config().MissCycles
	want := []int64{1 + miss, 1 + b + miss, 1 + 2*b + miss}
	for i := 0; i < 3; i++ {
		if got := m.CPU(i).Now(); got != want[i] {
			t.Fatalf("cpu %d clock = %d, want %d", i, got, want[i])
		}
	}
}

func TestBusIntervalGapIsUsable(t *testing.T) {
	// A transaction far in the future must not block one in the past
	// (the artifact a busy-until watermark would create).
	m := simMachine(2)
	c0, c1 := m.CPU(0), m.CPU(1)
	c1.Work(100000)
	c1.Read(Line(50)) // occupies the bus around t=100000
	before := c0.Now()
	c0.Read(Line(60)) // at t~0: must not wait 100000 cycles
	if c0.Now()-before > m.Config().MissCycles+m.Config().BusCycles+10 {
		t.Fatalf("past transaction waited for a future one: %d cycles", c0.Now()-before)
	}
}

func TestShortLockInsideLongOpDoesNotSerializeOp(t *testing.T) {
	// The interval lock model: CPU 1 takes a brief lock then does huge
	// uncontended work; CPU 0's later acquire of the same lock must wait
	// only for the brief hold, not the whole operation.
	m := simMachine(2)
	lk := NewSpinLock(m)
	c0, c1 := m.CPU(0), m.CPU(1)

	lk.Acquire(c1)
	c1.Work(10)
	lk.Release(c1)
	c1.Work(1_000_000) // long non-critical work

	before := c0.Now()
	lk.Acquire(c0)
	lk.Release(c0)
	if c0.Now() > before+1000 {
		t.Fatalf("brief lock serialized behind a long op: waited %d cycles", c0.Now()-before)
	}
}

func TestLockHoldsExcludeOverlap(t *testing.T) {
	// Two CPUs with overlapping virtual-time critical sections must end
	// up serialized: the second's hold starts after the first's ends.
	m := simMachine(2)
	lk := NewSpinLock(m)
	c0, c1 := m.CPU(0), m.CPU(1)

	lk.Acquire(c0)
	start0 := c0.Now()
	c0.Work(500)
	lk.Release(c0)
	end0 := c0.Now()

	lk.Acquire(c1) // attempt at t≈0, must wait out [start0, end0]
	if c1.Now() < end0 {
		t.Fatalf("second hold started at %d, inside [%d, %d]", c1.Now(), start0, end0)
	}
	c1.Work(500)
	lk.Release(c1)
	if s := lk.Stats(); s.Contended != 1 {
		t.Fatalf("contended = %d", s.Contended)
	}
}
