package torture

// The config matrix: CPUs × nodes × pressure × faultpoints × shards ×
// adaptive × lazy spans × object caches × hardening × optimistic fast
// paths (rseq + lock-free global layer) × serving traces. The small matrix is
// the PR-smoke set — every dimension exercised at least once on a
// multi-node topology, plus one planted corruption per kind, cheap
// enough for every push. The full matrix is the nightly cross product
// (plants are directed single-shot scenarios, so they live in the small
// matrix only).

// MatrixSmall returns the PR-smoke configs. Seeds and op counts are the
// caller's to fill (tests pin them; kmemtorture sweeps them).
func MatrixSmall() []Config {
	return []Config{
		{CPUs: 1, Nodes: 1},
		{CPUs: 2, Nodes: 1},
		{CPUs: 4, Nodes: 2},
		{CPUs: 8, Nodes: 4},
		{CPUs: 4, Nodes: 2, Pressure: true},
		{CPUs: 4, Nodes: 2, Faults: true},
		{CPUs: 4, Nodes: 2, DisableShards: true},
		{CPUs: 4, Nodes: 2, Adaptive: true},
		{CPUs: 4, Nodes: 2, Lazy: true},
		{CPUs: 4, Nodes: 2, Lazy: true, Pressure: true, Faults: true},
		{CPUs: 8, Nodes: 4, Pressure: true, Faults: true, Adaptive: true},
		{CPUs: 8, Nodes: 4, Lazy: true, Pressure: true, Faults: true, Adaptive: true},
		{CPUs: 4, Nodes: 2, ObjCache: true},
		{CPUs: 4, Nodes: 2, ObjCache: true, Pressure: true},
		{CPUs: 8, Nodes: 4, ObjCache: true, Lazy: true, Pressure: true, Faults: true},
		// Hardening with panic policy: a clean workload must produce zero
		// detections across topologies, pressure, lazy spans and caches.
		{CPUs: 4, Nodes: 2, Harden: true},
		{CPUs: 4, Nodes: 2, Harden: true, Pressure: true},
		{CPUs: 8, Nodes: 4, Harden: true, Lazy: true, ObjCache: true},
		// Optimistic fast paths: restartable sequences (with the
		// restart-storm adversary aborting them at every other
		// opportunity) and the CAS-based lock-free global layer, alone
		// and stacked with pressure and caches.
		{CPUs: 4, Nodes: 2, Rseq: true},
		{CPUs: 4, Nodes: 2, Rseq: true, RestartStorm: true, ObjCache: true},
		{CPUs: 8, Nodes: 4, LockFree: true},
		{CPUs: 8, Nodes: 4, Rseq: true, LockFree: true, RestartStorm: true, Pressure: true},
		// Serving traces: session open/churn/close lifetimes instead of
		// uniform random ops, so skewed lifetimes concentrate cross-CPU
		// frees on the shard and depot paths.
		{CPUs: 4, Nodes: 2, Serve: true},
		{CPUs: 8, Nodes: 4, Serve: true, ObjCache: true, Pressure: true},
		// Planted corruptions: each kind must be detected, attributed to
		// the plant's site tags, and contained in quarantine.
		{CPUs: 4, Nodes: 2, Harden: true, Plant: "overrun"},
		{CPUs: 4, Nodes: 2, Harden: true, Plant: "doublefree"},
		{CPUs: 4, Nodes: 2, Harden: true, Plant: "latewrite"},
	}
}

// MatrixFull returns the nightly cross product: every topology against
// every combination of pressure, faults, shards and adaptive (shard
// disabling only exists on multi-node machines).
func MatrixFull() []Config {
	type topo struct{ cpus, nodes int }
	topos := []topo{{1, 1}, {2, 1}, {4, 2}, {8, 4}}
	var out []Config
	for _, tp := range topos {
		for _, pressure := range []bool{false, true} {
			for _, faults := range []bool{false, true} {
				for _, noShards := range []bool{false, true} {
					if noShards && tp.nodes == 1 {
						continue
					}
					for _, adaptive := range []bool{false, true} {
						for _, lazy := range []bool{false, true} {
							for _, objCache := range []bool{false, true} {
								for _, hard := range []bool{false, true} {
									// The optimistic dimension flips both fast
									// paths together (restart-storm is a
									// directed scenario; small matrix only).
									for _, opt := range []bool{false, true} {
										for _, serve := range []bool{false, true} {
											out = append(out, Config{
												CPUs: tp.cpus, Nodes: tp.nodes,
												Pressure: pressure, Faults: faults,
												DisableShards: noShards, Adaptive: adaptive,
												Lazy: lazy, ObjCache: objCache,
												Harden: hard,
												Rseq:   opt, LockFree: opt,
												Serve: serve,
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}
