package torture

// Seeded workload generation. An op sequence is materialized up front
// from the workload seed, then executed under whatever schedule the
// jitter seed selects — so the same ops can be replayed under many
// interleavings, and a failing (ops, seeds) pair is a complete repro.

// OpKind tags one torture operation.
type OpKind uint8

// Operation kinds. Free and Drain ops resolve their object at execution
// time (a free picks a live handle by index modulo the live count), so
// any subsequence of a generated op list is itself executable — the
// property delta-debugging depends on.
const (
	// OpAlloc allocates Size bytes on CPU (skipped at the working-set cap).
	OpAlloc OpKind = iota + 1
	// OpAllocWait is OpAlloc through the blocking KM_SLEEP-style path.
	OpAllocWait
	// OpFree frees live handle Arg%len(live) on CPU (skipped when none).
	OpFree
	// OpDrain flushes CPU Arg%CPUs' caches from CPU (self- and
	// cross-CPU drains both occur).
	OpDrain
	// OpCacheGet takes a constructed object from the typed object cache
	// (ObjCache configs only; skipped at the working-set cap).
	OpCacheGet
	// OpCachePut returns held cache object Arg%len(cached) after
	// restoring its constructed state (skipped when none held).
	OpCachePut
)

func (k OpKind) String() string {
	switch k {
	case OpAlloc:
		return "alloc"
	case OpAllocWait:
		return "allocwait"
	case OpFree:
		return "free"
	case OpDrain:
		return "drain"
	case OpCacheGet:
		return "cacheget"
	case OpCachePut:
		return "cacheput"
	}
	return "op?"
}

// Op is one materialized torture operation.
type Op struct {
	Kind OpKind `json:"k"`
	CPU  uint8  `json:"c"`
	Size uint32 `json:"s,omitempty"`
	Arg  uint32 `json:"a,omitempty"`
}

// rng is xorshift64*: tiny, seeded, and stable across Go versions —
// corpus artifacts must replay identically forever.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// smallSizes are the interesting small-request sizes: class boundaries,
// one past them, odd sizes, and the largest small class.
var smallSizes = []uint32{
	1, 8, 16, 17, 24, 32, 33, 40, 64, 65, 96, 128, 129,
	200, 256, 257, 512, 513, 1000, 1024, 1025, 2048, 2049, 4000, 4096,
}

// generate materializes cfg.Ops operations from cfg.Seed. The non-cache
// distribution is untouched when ObjCache is off, so existing seeds and
// committed repro artifacts keep drawing the identical RNG stream.
func generate(cfg Config) []Op {
	r := newRng(cfg.Seed)
	if cfg.Serve {
		// The serve dimension replaces the distribution wholesale; the
		// branch sits after rng creation so non-serve configs keep
		// drawing the identical stream they always have.
		return generateServe(cfg, r)
	}
	ops := make([]Op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		op := Op{CPU: uint8(r.intn(cfg.CPUs))}
		roll := r.intn(100)
		switch {
		case cfg.ObjCache && roll < 35:
			op.Kind = OpAlloc
			op.Size = genSize(r, cfg.MaxSize)
		case cfg.ObjCache && roll < 45:
			op.Kind = OpAllocWait
			op.Size = genSize(r, cfg.MaxSize)
		case cfg.ObjCache && roll < 60:
			op.Kind = OpCacheGet
		case cfg.ObjCache && roll < 72:
			op.Kind = OpCachePut
			op.Arg = uint32(r.next())
		case cfg.ObjCache && roll < 93:
			op.Kind = OpFree
			op.Arg = uint32(r.next())
		case cfg.ObjCache:
			op.Kind = OpDrain
			op.Arg = uint32(r.intn(cfg.CPUs))
		case roll < 50:
			op.Kind = OpAlloc
			op.Size = genSize(r, cfg.MaxSize)
		case roll < 60:
			op.Kind = OpAllocWait
			op.Size = genSize(r, cfg.MaxSize)
		case roll < 93:
			op.Kind = OpFree
			op.Arg = uint32(r.next())
		default:
			op.Kind = OpDrain
			op.Arg = uint32(r.intn(cfg.CPUs))
		}
		ops = append(ops, op)
	}
	return ops
}

// generateServe materializes session-lifetime traffic from the same op
// vocabulary: an open is a burst of allocations on one home CPU, a
// close is a burst of frees — one in four on a foreign CPU, and biased
// toward the oldest live handles so lifetime skew actually lands on
// remotely-allocated blocks — and the open-session population follows a
// two-cycle day/night wave. All ops still resolve handles at execution
// time, so any subsequence delta-debugs exactly like the uniform mix.
func generateServe(cfg Config, r *rng) []Op {
	type sess struct {
		home   uint8
		blocks int
	}
	var open []sess
	ops := make([]Op, 0, cfg.Ops)
	lo := 2 + cfg.WorkingSet/16
	hi := lo + 1 + cfg.WorkingSet/8
	for len(ops) < cfg.Ops {
		// Two triangle-wave day/night cycles across the run.
		pos := len(ops) * 4 % (2 * cfg.Ops)
		if pos > cfg.Ops {
			pos = 2*cfg.Ops - pos
		}
		tgt := lo + (hi-lo)*pos/cfg.Ops
		switch {
		case len(open) < tgt:
			// Session open: a burst of 3-8 allocations on the home CPU.
			home := uint8(r.intn(cfg.CPUs))
			n := 3 + r.intn(6)
			for j := 0; j < n && len(ops) < cfg.Ops; j++ {
				ops = append(ops, Op{Kind: OpAlloc, CPU: home, Size: genSize(r, cfg.MaxSize)})
			}
			open = append(open, sess{home: home, blocks: n})
		case len(open) > tgt:
			// Session close: free about as many blocks as it opened,
			// old-handle-biased, sometimes from a foreign CPU.
			i := r.intn(len(open))
			s := open[i]
			open[i] = open[len(open)-1]
			open = open[:len(open)-1]
			cpu := s.home
			if r.intn(4) == 0 {
				cpu = uint8(r.intn(cfg.CPUs))
			}
			for j := 0; j < s.blocks && len(ops) < cfg.Ops; j++ {
				ops = append(ops, Op{Kind: OpFree, CPU: cpu, Arg: uint32(r.intn(32))})
			}
		default:
			// Churn on a random open session's home CPU.
			cpu := open[r.intn(len(open))].home
			op := Op{CPU: cpu}
			roll := r.intn(100)
			switch {
			case cfg.ObjCache && roll < 20:
				op.Kind = OpCacheGet
			case cfg.ObjCache && roll < 35:
				op.Kind = OpCachePut
				op.Arg = uint32(r.next())
			case roll < 55:
				op.Kind = OpAlloc
				op.Size = genSize(r, cfg.MaxSize)
			case roll < 85:
				op.Kind = OpFree
				op.Arg = uint32(r.next())
			case roll < 92:
				op.Kind = OpAllocWait
				op.Size = genSize(r, cfg.MaxSize)
			default:
				op.Kind = OpDrain
				op.Arg = uint32(r.intn(cfg.CPUs))
			}
			ops = append(ops, op)
		}
	}
	return ops
}

// genSize draws a request size: mostly small-class sizes, some one-page
// neighborhood, a tail of multi-page large requests up to max.
func genSize(r *rng, max uint32) uint32 {
	var size uint32
	switch roll := r.intn(100); {
	case roll < 65:
		size = smallSizes[r.intn(len(smallSizes))]
	case roll < 90:
		size = 4097 + uint32(r.intn(8192))
	default:
		size = 1 + uint32(r.next()%uint64(max))
	}
	if size > max {
		size = max
	}
	if size == 0 {
		size = 1
	}
	return size
}
