package torture

import (
	"bytes"
	"path/filepath"
	"testing"

	"kmem/internal/workload"
)

// TestSmallMatrix drives the PR-smoke matrix with fixed seeds: every
// config must run its full op budget with a clean oracle, under both the
// conservative schedule and a jittered one.
func TestSmallMatrix(t *testing.T) {
	for i, cfg := range MatrixSmall() {
		cfg.Ops = 1200
		cfg.Seed = uint64(1000 + i)
		for _, jitter := range []uint64{0, uint64(7700 + i)} {
			cfg.JitterSeed = jitter
			r := New(cfg)
			t.Run(r.Config().Name()+jitterTag(jitter), func(t *testing.T) {
				rep, err := r.Run()
				if err != nil {
					t.Fatalf("seed %d jitter %d: %v", cfg.Seed, jitter, err)
				}
				if rep.Allocs == 0 || rep.Frees == 0 {
					t.Fatalf("degenerate run: %+v", rep)
				}
			})
		}
	}
}

func jitterTag(seed uint64) string {
	if seed == 0 {
		return ""
	}
	return "-jitter"
}

// TestGoldenDeterminism is the golden determinism test: the same seeds
// produce the identical interleaving (schedule hash) and identical op
// accounting across two runs, at every CPU count, jittered or not.
func TestGoldenDeterminism(t *testing.T) {
	for _, cpus := range []int{1, 2, 4, 8} {
		for _, jitter := range []uint64{0, 99} {
			cfg := Config{CPUs: cpus, Nodes: max(1, cpus/2), Ops: 800, Seed: 5, JitterSeed: jitter}
			repA, errA := New(cfg).Run()
			repB, errB := New(cfg).Run()
			if errA != nil || errB != nil {
				t.Fatalf("cpus=%d jitter=%d: %v / %v", cpus, jitter, errA, errB)
			}
			if repA != repB {
				t.Errorf("cpus=%d jitter=%d: reports diverged:\n  %+v\n  %+v", cpus, jitter, repA, repB)
			}
		}
	}
}

// TestJitterSeedsExplore proves distinct jitter seeds explore distinct
// interleavings of the same op sequence.
func TestJitterSeedsExplore(t *testing.T) {
	cfg := Config{CPUs: 4, Nodes: 2, Ops: 800, Seed: 5}
	hashes := map[uint64]bool{}
	for _, jitter := range []uint64{0, 1, 2, 3} {
		cfg.JitterSeed = jitter
		rep, err := New(cfg).Run()
		if err != nil {
			t.Fatalf("jitter %d: %v", jitter, err)
		}
		hashes[rep.SchedHash] = true
	}
	if len(hashes) < 3 {
		t.Errorf("4 jitter seeds explored only %d distinct schedules", len(hashes))
	}
}

// TestShrinkMechanics checks ddmin against a synthetic predicate: a
// repro "fails" while it keeps at least two large allocs, so the minimum
// is exactly two ops.
func TestShrinkMechanics(t *testing.T) {
	r := ReproOf(New(Config{CPUs: 4, Nodes: 2, Ops: 600, Seed: 11}))
	fails := func(r Repro) bool {
		n := 0
		for _, op := range r.Ops {
			if (op.Kind == OpAlloc || op.Kind == OpAllocWait) && op.Size >= 5000 {
				n++
			}
		}
		return n >= 2
	}
	if !fails(r) {
		t.Fatalf("seed workload lacks two large allocs; pick another seed")
	}
	shrunk := Shrink(r, fails)
	if !fails(shrunk) {
		t.Fatal("shrunk repro no longer fails the predicate")
	}
	if len(shrunk.Ops) != 2 {
		t.Errorf("ddmin left %d ops; minimum for the predicate is 2", len(shrunk.Ops))
	}
}

// TestShrinkHealthyIsIdentity pins that Shrink never touches a passing
// repro.
func TestShrinkHealthyIsIdentity(t *testing.T) {
	r := ReproOf(New(Config{CPUs: 2, Nodes: 1, Ops: 200, Seed: 3}))
	shrunk := ShrinkFailure(r)
	if len(shrunk.Ops) != len(r.Ops) {
		t.Errorf("Shrink modified a healthy repro: %d -> %d ops", len(r.Ops), len(shrunk.Ops))
	}
}

// TestReproRoundTrip pins the JSON artifact format: save, load, replay —
// identical ops, identical schedule hash.
func TestReproRoundTrip(t *testing.T) {
	r := ReproOf(New(Config{CPUs: 4, Nodes: 2, Ops: 400, Seed: 21, JitterSeed: 9}))
	path := t.TempDir() + "/case.torture.json"
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ops) != len(r.Ops) || back.Config != r.Config {
		t.Fatalf("round trip changed the repro: %+v vs %+v", back.Config, r.Config)
	}
	repA, errA := r.Runner().Run()
	repB, errB := back.Runner().Run()
	if errA != nil || errB != nil || repA.SchedHash != repB.SchedHash {
		t.Fatalf("replay diverged: %+v (%v) vs %+v (%v)", repA, errA, repB, errB)
	}
}

// TestCorpusEncodings checks both fuzz-corpus translations: the
// FuzzAllocatorOps bytes respect that harness's framing, and the trace
// bytes parse back into a valid workload.Trace.
func TestCorpusEncodings(t *testing.T) {
	r := ReproOf(New(Config{CPUs: 4, Nodes: 2, Ops: 500, Seed: 13}))
	fb := r.FuzzAllocatorOpsBytes()
	if len(fb) == 0 || len(fb)%2 != 0 || len(fb) > 2048 {
		t.Fatalf("fuzz bytes: bad framing, len %d", len(fb))
	}
	for i := 0; i < len(fb); i += 2 {
		if fb[i]&0x7f > 1 {
			t.Fatalf("fuzz byte %d encodes CPU %d; harness uses 2 CPUs", i, fb[i]&0x7f)
		}
	}
	tb, err := r.TraceBytes()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ReadTrace(bytes.NewReader(tb))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(4); err != nil {
		t.Fatalf("trace from repro is not well-formed: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("trace from repro is empty")
	}
}

// TestMatrixShapes pins the matrix dimensions: the small matrix touches
// every dimension, the full one is the cross product.
func TestMatrixShapes(t *testing.T) {
	small := MatrixSmall()
	var pressure, faults, noShards, adaptive, lazy, objCache, hardened, multiNode bool
	var rseq, lockFree, storm, serve bool
	plants := map[string]bool{}
	for _, c := range small {
		pressure = pressure || c.Pressure
		faults = faults || c.Faults
		noShards = noShards || c.DisableShards
		adaptive = adaptive || c.Adaptive
		lazy = lazy || c.Lazy
		objCache = objCache || c.ObjCache
		hardened = hardened || c.Harden
		multiNode = multiNode || c.Nodes > 1
		rseq = rseq || c.Rseq
		lockFree = lockFree || c.LockFree
		storm = storm || c.RestartStorm
		serve = serve || c.Serve
		if c.Plant != "" {
			plants[c.Plant] = true
		}
	}
	if !pressure || !faults || !noShards || !adaptive || !lazy || !objCache || !hardened || !multiNode {
		t.Errorf("small matrix misses a dimension: pressure=%v faults=%v noShards=%v adaptive=%v lazy=%v objCache=%v harden=%v multiNode=%v",
			pressure, faults, noShards, adaptive, lazy, objCache, hardened, multiNode)
	}
	if !rseq || !lockFree || !storm || !serve {
		t.Errorf("small matrix misses an optimistic or serve dimension: rseq=%v lockFree=%v storm=%v serve=%v",
			rseq, lockFree, storm, serve)
	}
	if !plants["overrun"] || !plants["doublefree"] || !plants["latewrite"] {
		t.Errorf("small matrix misses a planted corruption kind: have %v", plants)
	}
	// (2 single-node topologies x 64 flag combos + 2 multi-node x 128)
	// x 2 for the optimistic dimension x 2 for the serve dimension.
	if got, want := len(MatrixFull()), 1536; got != want {
		t.Errorf("full matrix has %d configs, want %d", got, want)
	}
}

// TestCommittedReprosReplayClean replays every committed repro artifact
// under testdata. On a healthy (untagged) build each must pass: the
// artifacts capture planted-bug failures, and the planted bugs are
// compiled out here. This pins the artifact format itself — a repro
// that no longer loads or executes is a dead artifact.
func TestCommittedReprosReplayClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.torture.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed repro artifacts under testdata")
	}
	for _, p := range paths {
		t.Run(filepath.Base(p), func(t *testing.T) {
			r, err := LoadRepro(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.Runner().Run(); err != nil {
				t.Fatalf("committed repro fails on a healthy build: %v", err)
			}
		})
	}
}
