// Package torture is the deterministic concurrency-torture harness, in
// the spirit of rcutorture: seeded workloads driven over the simulated
// multiprocessor under seeded schedule perturbation, with a differential
// shadow oracle checked after every operation and delta-debugged minimal
// repros on failure.
//
// Everything is a pure function of the Config: the workload seed
// materializes the op sequence, the jitter seed selects the interleaving
// (machine.JitterConfig), and the fault seed drives injection — so a
// failing run is named completely by its Config + ops, serialized as a
// Repro (repro.go) that `kmemtorture -replay` re-executes bit for bit.
package torture

import (
	"fmt"
	"strings"

	"kmem/internal/allocif"
	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/faultpoint"
	"kmem/internal/harden"
	"kmem/internal/machine"
	"kmem/internal/objcache"
)

// Config names one torture run exactly. The zero value of every field
// but the seeds selects a default (see withDefaults); the whole struct
// round-trips through JSON as part of a Repro.
type Config struct {
	CPUs  int `json:"cpus"`
	Nodes int `json:"nodes"`

	MemBytes  uint64 `json:"mem_bytes"`
	PhysPages int64  `json:"phys_pages"`

	// Ops is the number of operations to materialize from Seed.
	Ops  int    `json:"ops"`
	Seed uint64 `json:"seed"`
	// JitterSeed selects the schedule perturbation; 0 runs the
	// conservative (unjittered) schedule.
	JitterSeed uint64 `json:"jitter_seed,omitempty"`

	// Pressure enables the watermark/reclaim model (with a tight
	// physical-page budget so the watermarks are actually crossed).
	Pressure bool `json:"pressure,omitempty"`
	// Faults arms probabilistic fault injection at all three exhaustion
	// seams, driven by FaultSeed/FaultProb.
	Faults    bool    `json:"faults,omitempty"`
	FaultSeed int64   `json:"fault_seed,omitempty"`
	FaultProb float64 `json:"fault_prob,omitempty"`

	DisableShards bool `json:"disable_shards,omitempty"`
	Adaptive      bool `json:"adaptive,omitempty"`
	// Lazy selects the virtual-span backing model (core.Params.LazySpans):
	// spans keep VA reserved with physical frames committed on demand. The
	// oracle then also enforces the residency invariant chain
	// live ≤ resident ≤ reserved after every operation, and the end-of-run
	// audit recommits a decommitted span to prove scrubbed pages never
	// read back dirty.
	Lazy bool `json:"lazy,omitempty"`
	// ObjCache drives a typed object cache (internal/objcache) over the
	// allocator alongside the heap workload: OpCacheGet/OpCachePut ops
	// enter the mix, every Get is checked for constructed state, every
	// held object is mark-stamped against double hand-outs, and the
	// end-of-run audit destroys the cache and proves the destructor ran
	// for every buffer the cache ever released (carves == dtors ==
	// releases) before the leak check.
	ObjCache bool `json:"objcache,omitempty"`
	// Harden runs the allocator with the corruption-hardening layer on
	// (internal/harden: redzones, poison auditing, quarantine). With no
	// Plant the policy is panic, so any detection under the clean
	// workload is a false positive that aborts the run.
	Harden bool `json:"harden,omitempty"`
	// Plant arms one self-contained planted corruption — "overrun",
	// "doublefree" or "latewrite" — fired at the midpoint of the op
	// sequence. Requires Harden; the policy becomes
	// quarantine-and-continue and the end-of-run audit demands the plant
	// was detected, attributed to its "plant:" site tags, and contained
	// without leaking quarantined pages. The plant allocates its victim
	// directly (outside the shadow model and the workload RNG streams),
	// so the surrounding op sequence is byte-identical to the plant-free
	// run with the same seeds.
	Plant string `json:"plant,omitempty"`

	// Rseq runs the per-CPU layers (core and the torture object cache)
	// on restartable sequences instead of interrupt-disable sections
	// (core.Params.Rseq, objcache.Opts.Rseq).
	Rseq bool `json:"rseq,omitempty"`
	// LockFree rebuilds the global layer on CAS freelists with the
	// tagged ABA guard (core.Params.LockFree).
	LockFree bool `json:"lockfree,omitempty"`
	// RestartStorm arms the adversarial restart mode: with a nonzero
	// JitterSeed, restartable sequences abort at every other
	// opportunity (machine.JitterConfig.RestartEvery = 2), hammering
	// the retry paths instead of the happy ones.
	RestartStorm bool `json:"restart_storm,omitempty"`

	// Serve draws the op sequence from session-lifetime traces instead
	// of the uniform random mix: sessions open as a burst of allocations
	// on a home CPU, churn, and close as a burst of frees — often on a
	// different CPU and biased toward the oldest live handles — under a
	// day/night population wave. The lifetime skew concentrates frees of
	// remotely-allocated blocks, hammering the shard, depot, and
	// cross-CPU drain paths that uniform random traffic rarely lines up.
	Serve bool `json:"serve,omitempty"`

	// WorkingSet caps the live handles; allocs at the cap are skipped.
	WorkingSet int `json:"working_set,omitempty"`
	// MaxSize bounds request sizes (covers the large path when > 4096).
	MaxSize uint32 `json:"max_size,omitempty"`
	// CheckEvery runs the full consistency audit every N executed ops.
	CheckEvery int `json:"check_every,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.CPUs <= 0 {
		c.CPUs = 4
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.MemBytes == 0 {
		c.MemBytes = 32 << 20
	}
	if c.PhysPages == 0 {
		c.PhysPages = 2048
		if c.Pressure || c.Faults {
			// Tight budget: the watermarks and exhaustion paths must
			// actually be crossed, not just configured.
			c.PhysPages = 512
		}
	}
	if c.Ops <= 0 {
		c.Ops = 2000
	}
	if c.FaultProb == 0 {
		c.FaultProb = 0.02
	}
	if c.WorkingSet <= 0 {
		c.WorkingSet = 96
	}
	if c.MaxSize == 0 {
		c.MaxSize = 3*4096 + 100
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 128
	}
	return c
}

// Name returns a short human-readable tag for the config, used in test
// names and artifact filenames.
func (c Config) Name() string {
	n := fmt.Sprintf("c%dn%d", c.CPUs, c.Nodes)
	if c.Pressure {
		n += "-pressure"
	}
	if c.Faults {
		n += "-faults"
	}
	if c.DisableShards {
		n += "-noshards"
	}
	if c.Adaptive {
		n += "-adaptive"
	}
	if c.Lazy {
		n += "-lazy"
	}
	if c.ObjCache {
		n += "-objcache"
	}
	if c.Harden {
		n += "-harden"
	}
	if c.Rseq {
		n += "-rseq"
	}
	if c.LockFree {
		n += "-lockfree"
	}
	if c.RestartStorm {
		n += "-storm"
	}
	if c.Serve {
		n += "-serve"
	}
	if c.Plant != "" {
		n += "-plant-" + c.Plant
	}
	return n
}

// Failure is the oracle's verdict on a failing run.
type Failure struct {
	// OpIndex is the index into the materialized op list of the op whose
	// postcondition failed, or -1 for the end-of-run audit (full free,
	// drain, consistency, leak check).
	OpIndex int
	Msg     string
}

func (f *Failure) Error() string {
	if f.OpIndex < 0 {
		return fmt.Sprintf("torture: end-of-run audit: %s", f.Msg)
	}
	return fmt.Sprintf("torture: op %d: %s", f.OpIndex, f.Msg)
}

// Report summarizes a completed run (failing or not).
type Report struct {
	OpsExecuted int
	Allocs      uint64
	AllocFails  uint64
	Frees       uint64
	Drains      uint64
	Skipped     uint64
	CacheGets   uint64
	CachePuts   uint64
	// SchedHash is the machine's schedule hash: the identity of the
	// interleaving this run executed.
	SchedHash uint64
}

// Runner executes one materialized op sequence under one Config.
type Runner struct {
	cfg Config
	ops []Op
}

// New materializes cfg's op sequence from its workload seed.
func New(cfg Config) *Runner {
	cfg = cfg.withDefaults()
	return &Runner{cfg: cfg, ops: generate(cfg)}
}

// Replay wraps an explicit op sequence (a shrunk repro) under cfg.
func Replay(cfg Config, ops []Op) *Runner {
	return &Runner{cfg: cfg.withDefaults(), ops: ops}
}

// Config returns the runner's (defaulted) config.
func (r *Runner) Config() Config { return r.cfg }

// Ops returns the materialized op sequence.
func (r *Runner) Ops() []Op { return r.ops }

// Run executes the op sequence on a fresh simulated machine and checks
// the shadow oracle after every operation. The returned error, if any,
// is a *Failure. Sim mode only: the harness relies on the deterministic
// scheduler (Native concurrency is covered by the -race tests).
func (r *Runner) Run() (Report, error) {
	cfg := r.cfg
	mcfg := machine.DefaultConfig()
	mcfg.NumCPUs = cfg.CPUs
	mcfg.Nodes = cfg.Nodes
	mcfg.MemBytes = cfg.MemBytes
	mcfg.PhysPages = cfg.PhysPages
	m := machine.New(mcfg)
	if cfg.JitterSeed != 0 {
		jc := &machine.JitterConfig{Seed: cfg.JitterSeed}
		if cfg.RestartStorm {
			jc.RestartEvery = 2
		}
		m.SetScheduleJitter(jc)
	}
	m.EnableSchedHash()

	p := core.Params{
		RadixSort:           true,
		Poison:              true,
		LazySpans:           cfg.Lazy,
		DisableRemoteShards: cfg.DisableShards,
		Rseq:                cfg.Rseq,
		LockFree:            cfg.LockFree,
		// Keep blocked allocations cheap in virtual time: a few short
		// waits, then the typed error (a legal outcome for the oracle).
		Wait: &core.WaitConfig{MaxWaits: 3, BaseBackoffCycles: 512, MaxBackoffCycles: 8192},
	}
	if cfg.Pressure {
		p.Pressure = &core.PressureConfig{}
	}
	if cfg.Adaptive {
		p.Adaptive = &core.AdaptiveConfig{}
	}
	if cfg.Faults {
		fs := faultpoint.New(cfg.FaultSeed)
		spec := faultpoint.Spec{Prob: cfg.FaultProb}
		fs.Arm(core.FaultPhysMap, spec)
		fs.Arm(core.FaultVmblkCarve, spec)
		fs.Arm(core.FaultPagePoolRefill, spec)
		if cfg.Lazy {
			// The lazy model's fourth exhaustion seam: commit-on-carve.
			// Armed only for lazy configs so existing eager fault runs
			// draw the same fault-RNG stream as before.
			fs.Arm(core.FaultPhysCommit, spec)
		}
		p.Faults = fs
	}
	var planted []harden.Report
	if cfg.Harden {
		hcfg := &harden.Config{Policy: harden.PolicyPanic}
		if cfg.Plant != "" {
			hcfg.Policy = harden.PolicyQuarantine
			hcfg.OnReport = func(rep harden.Report) { planted = append(planted, rep) }
		}
		p.Harden = hcfg
	} else if cfg.Plant != "" {
		return Report{}, fmt.Errorf("torture: plant %q requires Harden", cfg.Plant)
	}
	a, err := core.New(m, p)
	if err != nil {
		return Report{}, fmt.Errorf("torture: allocator: %w", err)
	}

	ora := newOracle(m, a, cfg)
	ora.planted = &planted
	if cfg.ObjCache {
		// The torture cache: ctor constructs the pattern, dtor demands it
		// back. The dtor runs inside sheds and drains where no error can
		// surface, so violations latch into the oracle and fail the next
		// op's postcondition (or the end audit).
		ctor := func(c *machine.CPU, mem *arena.Arena, obj arena.Addr) {
			mem.Fill(obj, objCacheSize, objCachePattern)
		}
		dtor := func(c *machine.CPU, mem *arena.Arena, obj arena.Addr) {
			if off, ok := mem.CheckFill(obj, objCacheSize, objCachePattern); !ok && ora.dtorFail == "" {
				ora.dtorFail = fmt.Sprintf("dtor: object %#x byte %d not constructed at release", obj, off)
			}
		}
		kc, err := objcache.New(m, allocif.NewKMA{Allocator: a}, "torture:obj",
			objCacheSize, 8, ctor, dtor, objcache.Opts{Rseq: cfg.Rseq})
		if err != nil {
			return Report{}, fmt.Errorf("torture: objcache: %w", err)
		}
		ora.cache = kc
	}
	var rep Report

	// Split the op list by CPU; each simulated CPU walks its own
	// subsequence, and the scheduler (plus jitter) chooses the global
	// interleaving. The simulator is single-goroutine, so the shared
	// oracle state needs no locking.
	perCPU := make([][]int, cfg.CPUs)
	for i, op := range r.ops {
		cpu := int(op.CPU) % cfg.CPUs
		perCPU[cpu] = append(perCPU[cpu], i)
	}
	cursors := make([]int, cfg.CPUs)
	var failure *Failure
	m.Run(func(c *machine.CPU) bool {
		if failure != nil {
			return false
		}
		id := c.ID()
		if cursors[id] >= len(perCPU[id]) {
			return false
		}
		i := perCPU[id][cursors[id]]
		cursors[id]++
		failure = r.exec(c, a, ora, &rep, i)
		rep.OpsExecuted++
		if failure == nil && rep.OpsExecuted%cfg.CheckEvery == 0 {
			// Quiescent in the simulator: operations run to completion,
			// so between ops every structure is in a consistent state.
			if err := a.CheckConsistency(); err != nil {
				failure = &Failure{OpIndex: i, Msg: err.Error()}
			}
		}
		return failure == nil
	})

	if failure == nil {
		failure = r.endAudit(m, a, ora, &rep)
	}
	rep.SchedHash = m.SchedHash()
	if failure != nil {
		return rep, failure
	}
	return rep, nil
}

// exec runs one op and its oracle postconditions; nil means healthy.
func (r *Runner) exec(c *machine.CPU, a *core.Allocator, ora *oracle, rep *Report, i int) *Failure {
	if r.cfg.Plant != "" && !ora.plantDone && i == len(r.ops)/2 {
		ora.plantDone = true
		if msg := r.plant(c, a, ora); msg != "" {
			return &Failure{OpIndex: i, Msg: msg}
		}
	}
	op := r.ops[i]
	switch op.Kind {
	case OpAlloc, OpAllocWait:
		if len(ora.live) >= r.cfg.WorkingSet {
			rep.Skipped++
			return nil
		}
		size := uint64(op.Size)
		if size == 0 {
			size = 1
		}
		var (
			addr arena.Addr
			err  error
		)
		if op.Kind == OpAllocWait {
			addr, err = a.AllocWait(c, size)
		} else {
			addr, err = a.Alloc(c, size)
		}
		if err != nil {
			// Exhaustion (real or injected) is a legal outcome; the
			// oracle only demands the allocator stay consistent.
			rep.AllocFails++
			return nil
		}
		rep.Allocs++
		if msg := ora.onAlloc(addr, size, i); msg != "" {
			return &Failure{OpIndex: i, Msg: msg}
		}
	case OpFree:
		if len(ora.live) == 0 {
			rep.Skipped++
			return nil
		}
		j := int(op.Arg) % len(ora.live)
		h := ora.live[j]
		if msg := ora.beforeFree(h); msg != "" {
			return &Failure{OpIndex: i, Msg: msg}
		}
		a.Free(c, h.addr, h.size)
		ora.remove(j)
		rep.Frees++
	case OpDrain:
		a.DrainCPU(c, int(op.Arg)%r.cfg.CPUs)
		rep.Drains++
	case OpCacheGet:
		if ora.cache == nil || len(ora.cached) >= r.cfg.WorkingSet {
			rep.Skipped++
			return nil
		}
		obj, err := ora.cache.Get(c)
		if err != nil {
			// A failed carve under faults or exhaustion is legal.
			rep.AllocFails++
			return nil
		}
		rep.CacheGets++
		if msg := ora.onCacheGet(obj, i); msg != "" {
			return &Failure{OpIndex: i, Msg: msg}
		}
	case OpCachePut:
		if ora.cache == nil || len(ora.cached) == 0 {
			rep.Skipped++
			return nil
		}
		j := int(op.Arg) % len(ora.cached)
		co := ora.cached[j]
		if msg := ora.beforeCachePut(co); msg != "" {
			return &Failure{OpIndex: i, Msg: msg}
		}
		ora.cache.Put(c, co.obj)
		ora.removeCached(j)
		rep.CachePuts++
	default:
		return &Failure{OpIndex: i, Msg: fmt.Sprintf("unknown op kind %d", op.Kind)}
	}
	// Destructors fire inside sheds under pressure; surface the first
	// latched violation at the op that exposed it.
	if ora.dtorFail != "" {
		return &Failure{OpIndex: i, Msg: ora.dtorFail}
	}
	if msg := ora.residency(); msg != "" {
		return &Failure{OpIndex: i, Msg: msg}
	}
	return nil
}

// plant fires the armed corruption. The victim is allocated directly —
// never entering the shadow model or perturbing the workload RNG streams
// — and each step runs under a "plant:" site tag so the end-of-run audit
// can check the detection's provenance attribution.
func (r *Runner) plant(c *machine.CPU, a *core.Allocator, ora *oracle) string {
	const size = 256
	mem := ora.m.Mem()
	a.SetHardenSite(c, "plant:alloc")
	b, err := a.Alloc(c, size)
	a.SetHardenSite(c, "")
	if err != nil {
		return fmt.Sprintf("plant %s: victim alloc: %v", r.cfg.Plant, err)
	}
	switch r.cfg.Plant {
	case "overrun":
		// One byte past the usable capacity lands on the first canary
		// byte; the free must catch it.
		mem.Fill(b+arena.Addr(a.RoundedSize(size)), 1, 0x5a)
		a.SetHardenSite(c, "plant:free")
		a.Free(c, b, size)
		a.SetHardenSite(c, "")
	case "doublefree":
		a.Free(c, b, size)
		a.SetHardenSite(c, "plant:free")
		a.Free(c, b, size)
		a.SetHardenSite(c, "")
	case "latewrite":
		a.Free(c, b, size)
		// A write into the poison region after the free; the LIFO
		// reallocation below must detect it and serve a different block.
		mem.Fill(b+16, 4, 0x77)
		a.SetHardenSite(c, "plant:alloc")
		nb, err := a.Alloc(c, size)
		a.SetHardenSite(c, "")
		if err != nil {
			return fmt.Sprintf("plant latewrite: realloc: %v", err)
		}
		if nb == b {
			return fmt.Sprintf("plant latewrite: scribbled block %#x re-served", b)
		}
		a.Free(c, nb, size)
	default:
		return fmt.Sprintf("unknown plant %q", r.cfg.Plant)
	}
	return ""
}

// plantKinds maps a plant name to the corruption kind its detection must
// report.
var plantKinds = map[string]harden.Kind{
	"overrun":    harden.KindOverrun,
	"doublefree": harden.KindDoubleFree,
	"latewrite":  harden.KindUseAfterFree,
}

// auditPlant verifies the armed plant was detected, attributed, and
// contained; "" means all three hold.
func (r *Runner) auditPlant(ora *oracle, q core.QuarantineStats) string {
	want := plantKinds[r.cfg.Plant]
	var hit *harden.Report
	for i := range *ora.planted {
		if (*ora.planted)[i].Kind == want {
			hit = &(*ora.planted)[i]
			break
		}
	}
	if hit == nil {
		return fmt.Sprintf("plant %s: no %v report filed (%d reports total)",
			r.cfg.Plant, want, len(*ora.planted))
	}
	attributed := strings.HasPrefix(hit.Site, "plant:") ||
		strings.HasPrefix(hit.LastAlloc.Site, "plant:") ||
		strings.HasPrefix(hit.LastFree.Site, "plant:")
	if !attributed {
		return fmt.Sprintf("plant %s: detected but not attributed: %s", r.cfg.Plant, hit)
	}
	// Overrun and late-write victims must be contained in quarantine; a
	// swallowed double free leaves nothing to park.
	if r.cfg.Plant != "doublefree" && q.Pages == 0 {
		return fmt.Sprintf("plant %s: detected but nothing quarantined", r.cfg.Plant)
	}
	return ""
}

// endAudit frees everything still live (with the same per-block checks),
// drains every layer, and verifies the allocator returns to its
// header-pages-only physical footprint — the leak check that catches
// blocks stranded anywhere in the caching hierarchy.
func (r *Runner) endAudit(m *machine.Machine, a *core.Allocator, ora *oracle, rep *Report) *Failure {
	c := m.CPU(0)
	if ora.cache != nil {
		// Return every held object (same per-object checks as OpCachePut),
		// then destroy the cache: zero live, and the accounting must prove
		// a destructor ran for every buffer the cache ever released —
		// carves == dtors == releases. This precedes the DrainAll leak
		// check because cached buffers are live allocations until the
		// cache sheds them.
		for _, co := range ora.cached {
			if msg := ora.beforeCachePut(co); msg != "" {
				return &Failure{OpIndex: -1, Msg: msg}
			}
			ora.cache.Put(c, co.obj)
			rep.CachePuts++
		}
		ora.cached = nil
		if live := ora.cache.Destroy(c); live != 0 {
			return &Failure{OpIndex: -1, Msg: fmt.Sprintf(
				"objcache: %d objects live after quiescent destroy", live)}
		}
		st := ora.cache.Stats()
		if st.DtorRuns != st.Carves || st.Releases != st.Carves {
			return &Failure{OpIndex: -1, Msg: fmt.Sprintf(
				"objcache: carves %d, dtors %d, releases %d after destroy; a dtor must precede every release",
				st.Carves, st.DtorRuns, st.Releases)}
		}
		if ora.dtorFail != "" {
			return &Failure{OpIndex: -1, Msg: ora.dtorFail}
		}
	}
	for _, h := range ora.live {
		if msg := ora.beforeFree(h); msg != "" {
			return &Failure{OpIndex: -1, Msg: msg}
		}
		a.Free(c, h.addr, h.size)
		rep.Frees++
	}
	ora.live = ora.live[:0]
	ora.liveBytes = 0
	a.DrainAll(c)
	if err := a.CheckConsistency(); err != nil {
		return &Failure{OpIndex: -1, Msg: err.Error()}
	}
	st := a.Stats(c)
	// Quarantined pages stay mapped by design (post-mortem evidence);
	// anything above that raised floor is a genuine leak.
	floor := a.HeaderPages() + int64(st.Quarantine.Pages)
	if st.Phys.Mapped != floor {
		return &Failure{OpIndex: -1, Msg: fmt.Sprintf(
			"leak: %d pages mapped after full free and drain, floor is %d (%d header + %d quarantined)",
			st.Phys.Mapped, floor, a.HeaderPages(), st.Quarantine.Pages)}
	}
	if r.cfg.Plant != "" {
		if !ora.plantDone {
			return &Failure{OpIndex: -1, Msg: fmt.Sprintf("plant %s never fired", r.cfg.Plant)}
		}
		if msg := r.auditPlant(ora, st.Quarantine); msg != "" {
			return &Failure{OpIndex: -1, Msg: msg}
		}
	}
	if r.cfg.Lazy {
		// Decommit/recommit read-back audit. The drain just decommitted
		// every free span (the leak check above proved residency is back
		// to the header floor), scrub-filling each page. Recommitting a
		// span must verify the scrub intact — the allocator panics on a
		// dirty page — and hand back zero-filled memory: any workload
		// pattern byte surviving the round trip shows up here.
		pageBytes := m.Config().PageBytes
		span := 8 * pageBytes
		// Large allocations are node-local; a node whose vmblk slots went
		// to other nodes fails with ErrNoVA, so try each CPU until one
		// node's span serves the request.
		var (
			b   arena.Addr
			err error
		)
		for cpu := 0; cpu < r.cfg.CPUs; cpu++ {
			if b, err = a.Alloc(m.CPU(cpu), span); err == nil {
				c = m.CPU(cpu)
				break
			}
		}
		if err != nil {
			return &Failure{OpIndex: -1, Msg: fmt.Sprintf("recommit audit: alloc(%d): %v", span, err)}
		}
		if off, ok := m.Mem().CheckFill(b, span, 0); !ok {
			return &Failure{OpIndex: -1, Msg: fmt.Sprintf(
				"recommit audit: span %#x byte %d not zero after decommit/recommit", b, off)}
		}
		a.Free(c, b, span)
		rep.Allocs++
		rep.Frees++
	}
	return nil
}
