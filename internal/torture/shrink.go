package torture

// Delta-debugging (ddmin) over a failing repro. Free and drain ops
// resolve their objects at execution time, so every subsequence of an op
// list is executable — removing a chunk can change which blocks later
// frees hit, but never produces an invalid sequence. That property makes
// plain ddmin sound here.

// Shrink minimizes r's op sequence (and then tries dropping the jitter
// seed) while fails keeps returning true. fails must be deterministic —
// with this harness it is, because a Repro names its run completely.
// Returns r unchanged if it does not fail to begin with.
func Shrink(r Repro, fails func(Repro) bool) Repro {
	if !fails(r) {
		return r
	}
	ops := r.Ops
	n := 2
	for len(ops) > 1 && n <= len(ops) {
		chunk := (len(ops) + n - 1) / n
		reduced := false
		for start := 0; start < len(ops); start += chunk {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			cand := make([]Op, 0, len(ops)-(end-start))
			cand = append(cand, ops[:start]...)
			cand = append(cand, ops[end:]...)
			trial := r
			trial.Ops = cand
			if fails(trial) {
				ops = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(ops) {
				break
			}
			n *= 2
			if n > len(ops) {
				n = len(ops)
			}
		}
	}
	r.Ops = ops
	// A repro that still fails on the conservative schedule is simpler
	// than one needing jitter; prefer it.
	if r.Config.JitterSeed != 0 {
		trial := r
		trial.Config.JitterSeed = 0
		if fails(trial) {
			r = trial
		}
	}
	return r
}

// ShrinkFailure shrinks r against the harness itself: a candidate
// "fails" when replaying it produces any oracle failure.
func ShrinkFailure(r Repro) Repro {
	return Shrink(r, Repro.Fails)
}
