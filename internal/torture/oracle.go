package torture

import (
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/harden"
	"kmem/internal/machine"
	"kmem/internal/objcache"
)

// The differential shadow oracle: a map-based model of what the
// allocator has promised. Every live block is remembered with its
// class-rounded extent, its NUMA home, and a fill pattern; after every
// alloc the new block is checked against the whole model, and before
// every free the block's integrity and home stability are re-verified.
// The model is deliberately dumb — sorted facts and linear scans — so a
// disagreement always means the allocator is wrong, never the model.

// handle is one live block in the shadow model.
type handle struct {
	addr    arena.Addr
	size    uint64 // requested size (what Free must be passed)
	rounded uint64 // true reserved extent (class/page-rounded, + redzone when hardened)
	home    int    // NUMA home at allocation time
	pattern byte
	op      int // op index that allocated it (for failure messages)
}

// cachedObj is one object held out of the typed object cache. The mark
// byte plays the role of handle.pattern: each Get stamps its own mark,
// so a double hand-out or a scribble shows up at Put time.
type cachedObj struct {
	obj  arena.Addr
	mark byte
	op   int
}

type oracle struct {
	m    *machine.Machine
	a    *core.Allocator
	cfg  Config
	live []handle

	// liveBytes is the model's rounded-extent total across live handles,
	// the "live" leg of the residency invariant chain.
	liveBytes uint64

	// cache and cached exist only on ObjCache configs: the typed cache
	// under test and the objects currently held from it. dtorFail latches
	// the first destructor-side violation (destructors run inside sheds
	// and drains, where returning an error is impossible).
	cache    *objcache.Cache
	cached   []cachedObj
	dtorFail string

	// rz is the hardening redzone width (0 with Harden off): the gap
	// between a block's usable capacity (RoundedSize) and its true
	// footprint, which is what alignment and extents must be checked
	// against. planted collects the hardening layer's corruption
	// reports on Plant configs; plantDone latches the one-shot plant.
	rz        uint64
	planted   *[]harden.Report
	plantDone bool

	pageBytes uint64
	maxSmall  uint64
}

func newOracle(m *machine.Machine, a *core.Allocator, cfg Config) *oracle {
	o := &oracle{
		m:         m,
		a:         a,
		cfg:       cfg,
		pageBytes: m.Config().PageBytes,
		maxSmall:  uint64(a.MaxSmall()),
	}
	if cfg.Harden {
		// Torture always runs the default hardening geometry.
		o.rz = (&harden.Config{}).RedzoneBytes()
	}
	return o
}

// onAlloc checks a fresh allocation against the model and admits it.
// Returns a failure message, or "" when every postcondition holds.
func (o *oracle) onAlloc(addr arena.Addr, size uint64, op int) string {
	if addr == arena.NilAddr {
		return fmt.Sprintf("alloc(%d) returned the nil address without an error", size)
	}
	rounded := o.a.RoundedSize(size)
	if rounded < size {
		return fmt.Sprintf("alloc(%d): rounded size %d smaller than request", size, rounded)
	}
	// With hardening on, RoundedSize is the usable capacity; the true
	// footprint (what placement aligns to and what the extent occupies)
	// adds the trailing redzone.
	extent := rounded + o.rz
	if uint64(addr)+extent > o.m.Config().MemBytes {
		return fmt.Sprintf("alloc(%d) = %#x: extent %d overruns the arena", size, addr, extent)
	}
	// Placement: small blocks sit class-aligned inside one page; large
	// blocks are page-aligned spans. The hardened small/large split is
	// on size+redzone, mirroring the allocator's.
	off := uint64(addr) % o.pageBytes
	if size+o.rz <= o.maxSmall {
		if off%extent != 0 {
			return fmt.Sprintf("alloc(%d) = %#x: not aligned to its class size %d", size, addr, extent)
		}
		if off+extent > o.pageBytes {
			return fmt.Sprintf("alloc(%d) = %#x: class block straddles a page boundary", size, addr)
		}
	} else if off != 0 {
		return fmt.Sprintf("alloc(%d) = %#x: large block not page-aligned", size, addr)
	}
	// NUMA home per the dope vector: must name a real node.
	home := o.a.HomeOf(addr)
	if home < 0 || home >= o.cfg.Nodes {
		return fmt.Sprintf("alloc(%d) = %#x: dope vector homes it on node %d of %d", size, addr, home, o.cfg.Nodes)
	}
	// No live-block overlap against the entire model.
	for _, h := range o.live {
		if uint64(addr) < uint64(h.addr)+h.rounded && uint64(h.addr) < uint64(addr)+rounded {
			return fmt.Sprintf("alloc(%d) = %#x (extent %d) overlaps live block %#x (size %d, extent %d, from op %d)",
				size, addr, rounded, h.addr, h.size, h.rounded, h.op)
		}
	}
	h := handle{
		addr:    addr,
		size:    size,
		rounded: extent,
		home:    home,
		pattern: byte(0xA0 ^ op),
		op:      op,
	}
	// Write integrity: fill the requested bytes now, verify them intact
	// at free time. A block handed to two callers, or scribbled by
	// allocator metadata, breaks the pattern.
	o.m.Mem().Fill(addr, size, h.pattern)
	o.live = append(o.live, h)
	o.liveBytes += extent
	return ""
}

// residency checks the invariant chain of the virtual-span model after
// any operation: bytes promised to callers fit inside the resident
// frames, which fit inside the reserved address space. Blocks never
// overlap (onAlloc proves it), so the model's rounded total is a true
// lower bound on what must be physically backed. Holds in both backing
// modes; with lazy spans it is the property the whole redesign rests on.
func (o *oracle) residency() string {
	s := o.m.Phys().Stats()
	resident := uint64(s.Mapped) * o.pageBytes
	reserved := uint64(s.Reserved) * o.pageBytes
	if o.liveBytes > resident {
		return fmt.Sprintf("residency: %d live bytes exceed %d resident bytes (%d pages)",
			o.liveBytes, resident, s.Mapped)
	}
	if resident > reserved {
		return fmt.Sprintf("residency: %d resident bytes exceed %d reserved bytes (%d pages)",
			resident, reserved, s.Reserved)
	}
	return ""
}

// beforeFree re-verifies a block the instant before it is freed.
func (o *oracle) beforeFree(h handle) string {
	if off, ok := o.m.Mem().CheckFill(h.addr, h.size, h.pattern); !ok {
		return fmt.Sprintf("block %#x (size %d, from op %d): byte %d corrupted while live",
			h.addr, h.size, h.op, off)
	}
	if home := o.a.HomeOf(h.addr); home != h.home {
		return fmt.Sprintf("block %#x (from op %d): home moved from node %d to node %d while live",
			h.addr, h.op, h.home, home)
	}
	return ""
}

// remove drops live entry j (swap-remove; order is irrelevant to the
// model, and op.Arg indexes it modulo length, deterministically).
func (o *oracle) remove(j int) {
	o.liveBytes -= o.live[j].rounded
	o.live[j] = o.live[len(o.live)-1]
	o.live = o.live[:len(o.live)-1]
}

// objCacheSize and objCachePattern shape the torture cache: the object
// size leaves coloring slack inside its 128-byte class, and the pattern
// is what the constructor fills and the destructor demands back.
const (
	objCacheSize    = 96
	objCachePattern = 0x6b
)

// onCacheGet checks a freshly gotten cache object: it must carry the
// constructed pattern (whether it came from the ctor, a magazine, or the
// depot), must not alias another held object, and must not land inside
// any live heap block's extent. Then the object is dirtied with this
// op's mark, deliberately destroying the constructed state — the cache
// must never hand it to anyone else before Put restores it.
func (o *oracle) onCacheGet(obj arena.Addr, op int) string {
	if obj == arena.NilAddr {
		return "cache get returned the nil address without an error"
	}
	if off, ok := o.m.Mem().CheckFill(obj, objCacheSize, objCachePattern); !ok {
		return fmt.Sprintf("cache get %#x: byte %d not constructed", obj, off)
	}
	for _, co := range o.cached {
		if uint64(obj) < uint64(co.obj)+objCacheSize && uint64(co.obj) < uint64(obj)+objCacheSize {
			return fmt.Sprintf("cache get %#x overlaps held object %#x (from op %d)", obj, co.obj, co.op)
		}
	}
	for _, h := range o.live {
		if uint64(obj) < uint64(h.addr)+h.rounded && uint64(h.addr) < uint64(obj)+objCacheSize {
			return fmt.Sprintf("cache get %#x overlaps live heap block %#x (from op %d)", obj, h.addr, h.op)
		}
	}
	co := cachedObj{obj: obj, mark: byte(0xC0 ^ op), op: op}
	o.m.Mem().Fill(obj, objCacheSize, co.mark)
	o.cached = append(o.cached, co)
	return ""
}

// beforeCachePut re-verifies a held object's mark the instant before it
// goes back, then restores the constructed pattern — the caller-side
// half of the constructed-state contract.
func (o *oracle) beforeCachePut(co cachedObj) string {
	if off, ok := o.m.Mem().CheckFill(co.obj, objCacheSize, co.mark); !ok {
		return fmt.Sprintf("cache object %#x (from op %d): byte %d corrupted while held", co.obj, co.op, off)
	}
	o.m.Mem().Fill(co.obj, objCacheSize, objCachePattern)
	return ""
}

// removeCached drops held cache entry j (swap-remove, like remove).
func (o *oracle) removeCached(j int) {
	o.cached[j] = o.cached[len(o.cached)-1]
	o.cached = o.cached[:len(o.cached)-1]
}
