//go:build torturecheck

package torture

import (
	"path/filepath"
	"strings"
	"testing"

	"kmem/internal/core"
)

// The mutation self-check: prove the oracle has teeth by arming two
// planted bugs (see core/torturebug.go) and asserting the harness
// catches both from a fixed seed within one run's op budget. A torture
// harness that cannot catch known bugs is decoration.
//
// These tests mutate global allocator behavior, so the package's tests
// must not run in parallel with them (none are marked Parallel).

// mutationCfg is the fixed detection config: multi-node (so the shard
// path is live), large-heavy traffic (so span coalescing churns), one
// fixed workload seed and one fixed jitter seed. N = Ops = 2000 is the
// detection bound the satellite task asks for.
var mutationCfg = Config{CPUs: 4, Nodes: 2, Ops: 2000, Seed: 7, JitterSeed: 3}

func TestMutationShardFlushBugCaught(t *testing.T) {
	core.SetTortureBug(core.TortureBugSkipShardFlush, true)
	defer core.SetTortureBug(core.TortureBugSkipShardFlush, false)
	rep, err := New(mutationCfg).Run()
	if err == nil {
		t.Fatalf("planted shard-flush bug went undetected in %d ops", rep.OpsExecuted)
	}
	t.Logf("caught in %d ops: %v", rep.OpsExecuted, err)
	if !strings.Contains(err.Error(), "leak") && !strings.Contains(err.Error(), "shard") {
		t.Errorf("failure does not look like the planted leak: %v", err)
	}
}

func TestMutationDropRightMergeBugCaught(t *testing.T) {
	core.SetTortureBug(core.TortureBugDropRightMerge, true)
	defer core.SetTortureBug(core.TortureBugDropRightMerge, false)
	rep, err := New(mutationCfg).Run()
	if err == nil {
		t.Fatalf("planted right-merge bug went undetected in %d ops", rep.OpsExecuted)
	}
	t.Logf("caught in %d ops: %v", rep.OpsExecuted, err)
	if !strings.Contains(err.Error(), "coalesce") && !strings.Contains(err.Error(), "span") {
		t.Errorf("failure does not look like the planted missed merge: %v", err)
	}
}

// lfMutationCfg is the detection config for the lock-free stack's ABA
// plant: the bug only fires on a contended CAS pop (a commit that had to
// retry), so it needs many CPUs sharing one node's global pools, the
// lock-free layer on, and a jittered schedule to interleave the commit
// windows.
// The tight working set and small max size concentrate traffic in a few
// size classes, so global-pool commits overlap often enough for retried
// pops — the only ops the plant corrupts — to stack up inside N = 2000.
var lfMutationCfg = Config{
	CPUs: 8, Nodes: 1, Ops: 2000, Seed: 7,
	LockFree: true, WorkingSet: 384, MaxSize: 512,
}

func TestMutationLFStackABABugCaught(t *testing.T) {
	core.SetTortureBug(core.TortureBugLFStackABA, true)
	defer core.SetTortureBug(core.TortureBugLFStackABA, false)
	rep, err := New(lfMutationCfg).Run()
	if err == nil {
		t.Fatalf("planted lock-free ABA bug went undetected in %d ops", rep.OpsExecuted)
	}
	t.Logf("caught in %d ops: %v", rep.OpsExecuted, err)
	if !strings.Contains(err.Error(), "leak") && !strings.Contains(err.Error(), "consistency") &&
		!strings.Contains(err.Error(), "block") {
		t.Errorf("failure does not look like the planted lost update: %v", err)
	}
}

// TestMutationLFStackABAShrinks runs the failure pipeline on the ABA
// plant: catch, delta-debug, and confirm the shrunk repro still
// reproduces and is materially smaller.
func TestMutationLFStackABAShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking replays the harness many times")
	}
	core.SetTortureBug(core.TortureBugLFStackABA, true)
	defer core.SetTortureBug(core.TortureBugLFStackABA, false)
	r := ReproOf(New(lfMutationCfg))
	if !r.Fails() {
		t.Fatal("armed ABA bug did not fail the full repro")
	}
	shrunk := ShrinkFailure(r)
	if !shrunk.Fails() {
		t.Fatal("shrunk ABA repro no longer reproduces")
	}
	if len(shrunk.Ops) > len(r.Ops)/4 {
		t.Errorf("shrink only reached %d of %d ops", len(shrunk.Ops), len(r.Ops))
	}
	t.Logf("shrunk %d ops -> %d", len(r.Ops), len(shrunk.Ops))
}

// TestMutationShrinksToSmallRepro runs the full failure pipeline on a
// planted bug: catch it, delta-debug the op sequence, and confirm the
// shrunk repro still reproduces and is materially smaller.
func TestMutationShrinksToSmallRepro(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking replays the harness many times")
	}
	core.SetTortureBug(core.TortureBugDropRightMerge, true)
	defer core.SetTortureBug(core.TortureBugDropRightMerge, false)
	r := ReproOf(New(mutationCfg))
	if !r.Fails() {
		t.Fatal("armed bug did not fail the full repro")
	}
	shrunk := ShrinkFailure(r)
	if !shrunk.Fails() {
		t.Fatal("shrunk repro no longer reproduces")
	}
	if len(shrunk.Ops) > len(r.Ops)/4 {
		t.Errorf("shrink only reached %d of %d ops", len(shrunk.Ops), len(r.Ops))
	}
	t.Logf("shrunk %d ops -> %d", len(r.Ops), len(shrunk.Ops))
}

// TestMutationCleanWhenDisarmed pins that merely building with the
// torturecheck tag changes nothing: with both bugs disarmed the fixed
// seed runs clean.
func TestMutationCleanWhenDisarmed(t *testing.T) {
	if _, err := New(mutationCfg).Run(); err != nil {
		t.Fatalf("disarmed torturecheck build fails the fixed seed: %v", err)
	}
}

// TestCommittedReprosCatchPlantedBugs replays each committed artifact
// with its matching bug armed: the minimal repro must still reproduce
// the failure it was shrunk from. This keeps the testdata artifacts
// honest against allocator drift.
func TestCommittedReprosCatchPlantedBugs(t *testing.T) {
	cases := map[string]int{
		"shardflush": core.TortureBugSkipShardFlush,
		"rightmerge": core.TortureBugDropRightMerge,
		"lfstackaba": core.TortureBugLFStackABA,
	}
	for prefix, bug := range cases {
		paths, err := filepath.Glob(filepath.Join("testdata", prefix+"-*.torture.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatalf("no committed %s repro", prefix)
		}
		for _, p := range paths {
			t.Run(filepath.Base(p), func(t *testing.T) {
				r, err := LoadRepro(p)
				if err != nil {
					t.Fatal(err)
				}
				core.SetTortureBug(bug, true)
				defer core.SetTortureBug(bug, false)
				if !r.Fails() {
					t.Fatal("committed repro no longer reproduces with its bug armed")
				}
			})
		}
	}
}
