package torture

import (
	"encoding/json"
	"fmt"
	"os"
)

// Repro is a complete, self-contained failing (or previously-failing)
// torture case: the exact config (seeds included) and the materialized
// op sequence. Serialized as JSON under testdata/ and replayed by
// `kmemtorture -replay`; shrunk repros double as fuzz-corpus seeds
// (corpus.go).
type Repro struct {
	Config Config `json:"config"`
	Ops    []Op   `json:"ops"`
}

// ReproOf captures a runner's case as a Repro.
func ReproOf(r *Runner) Repro {
	ops := make([]Op, len(r.ops))
	copy(ops, r.ops)
	return Repro{Config: r.cfg, Ops: ops}
}

// Runner returns a runner that replays the repro exactly.
func (r Repro) Runner() *Runner { return Replay(r.Config, r.Ops) }

// Fails reports whether the repro still provokes a failure.
func (r Repro) Fails() bool {
	_, err := r.Runner().Run()
	return err != nil
}

// Save writes the repro as indented JSON.
func (r Repro) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads a repro written by Save.
func LoadRepro(path string) (Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Repro{}, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return Repro{}, fmt.Errorf("torture: %s: %w", path, err)
	}
	r.Config = r.Config.withDefaults()
	return r, nil
}
