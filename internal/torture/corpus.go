package torture

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"kmem/internal/workload"
)

// Shrunk torture repros double as fuzz-corpus seeds: the same op
// sequences that once provoked (planted or real) bugs are translated
// into the byte encodings of internal/core's FuzzAllocatorOps and
// internal/workload's FuzzReadTrace and committed under their
// testdata/fuzz directories, so every `go test` replays them and
// `go test -fuzz` explores outward from known-interesting inputs.

// FuzzAllocatorOpsBytes encodes the repro's ops in FuzzAllocatorOps'
// byte-pair format: alloc = (cpu&0x7f, (size-1)/40), free =
// (0x80|cpu, index). The fuzz harness resolves free indices against its
// own live list, exactly like the torture harness, so no handle
// translation is needed. Capped at the harness's 2048-byte limit.
func (r Repro) FuzzAllocatorOpsBytes() []byte {
	out := make([]byte, 0, 2*len(r.Ops))
	for _, op := range r.Ops {
		switch op.Kind {
		case OpAlloc, OpAllocWait:
			size := op.Size
			if size == 0 {
				size = 1
			}
			sb := (size - 1) / 40
			if sb > 255 {
				sb = 255
			}
			out = append(out, byte(op.CPU)%2, byte(sb))
		case OpFree:
			out = append(out, 0x80|byte(op.CPU)%2, byte(op.Arg))
		}
		if len(out) >= 2048 {
			break
		}
	}
	return out
}

// TraceBytes encodes the repro's alloc/free ops as a workload.Trace in
// its binary format — a valid, interesting input for FuzzReadTrace and
// for any trace-replay driver.
func (r Repro) TraceBytes() ([]byte, error) {
	rec := workload.NewRecorder()
	type liveH struct{ h uint32 }
	var live []liveH
	for _, op := range r.Ops {
		switch op.Kind {
		case OpAlloc, OpAllocWait:
			size := op.Size
			if size == 0 {
				size = 1
			}
			live = append(live, liveH{rec.Alloc(int(op.CPU), uint64(size))})
		case OpFree:
			if len(live) == 0 {
				continue
			}
			j := int(op.Arg) % len(live)
			rec.Free(int(op.CPU), live[j].h)
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	var buf bytes.Buffer
	if _, err := rec.Trace().WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteGoFuzzCorpusFile writes one Go fuzz seed-corpus entry (the
// "go test fuzz v1" format) holding a single []byte argument.
func WriteGoFuzzCorpusFile(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	return os.WriteFile(path, []byte(content), 0o644)
}
