package bench

import (
	"fmt"
	"math/rand"

	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/dlm"
	"kmem/internal/machine"
	"kmem/internal/workload"
)

// DLMConfig shapes the distributed-lock-manager benchmark.
type DLMConfig struct {
	CPUs       int
	OpsPerNode int     // lock requests each node issues
	Resources  uint64  // resource id space
	ZipfSkew   float64 // resource popularity skew (>1)
	Seed       int64
}

// DefaultDLMConfig matches the scale of the paper's OLTP lock traffic.
func DefaultDLMConfig() DLMConfig {
	return DLMConfig{
		CPUs:       4,
		OpsPerNode: 20000,
		Resources:  2000,
		ZipfSkew:   1.1,
		Seed:       1993,
	}
}

// DLMClassRow is one size class's measured miss rates, the quantities the
// paper reports for the DLM benchmark.
type DLMClassRow struct {
	Size              uint32
	Target            int
	GblTarget         int
	AllocMiss         float64 // per-CPU layer miss rate on allocation
	FreeMiss          float64 // per-CPU layer miss rate on free
	GlobalGetMiss     float64 // global layer -> coalesce layer, gets
	GlobalPutMiss     float64 // global layer -> coalesce layer, puts
	CombinedAllocMiss float64 // allocations reaching the coalesce layer
	CombinedFreeMiss  float64
	Allocs            uint64
	Frees             uint64
}

// DLMResult holds the measured rates plus workload volume.
type DLMResult struct {
	Config    DLMConfig
	Rows      []DLMClassRow
	Locks     uint64
	Unlocks   uint64
	Converts  uint64
	Waits     uint64
	Aborts    uint64
	Messages  uint64
	VirtualMS float64
}

// RunDLM reproduces the paper's distributed-lock-manager evaluation: OLTP
// clients on every CPU lock, convert and unlock Zipf-popular resources;
// lock/resource/message blocks all come from kmem_alloc; messages are
// freed on the receiving CPU. The per-layer miss rates of the classes the
// DLM allocates from are the result.
func RunDLM(cfg DLMConfig) (*DLMResult, error) {
	m := machine.New(MachineFor(cfg.CPUs, 64<<20, 8192))
	al, err := core.New(m, core.Params{RadixSort: true})
	if err != nil {
		return nil, err
	}
	cl, err := dlm.NewCluster(al, 256)
	if err != nil {
		return nil, err
	}

	type held struct {
		h   arena.Addr
		res uint64
	}
	type nodeState struct {
		rng       *rand.Rand
		zipf      *workload.Zipf
		held      []held
		waiting   map[arena.Addr]uint64 // handle -> resID
		issued    int
		steps     int
		txnSize   int
		waitTicks int
		converted bool
		releasing bool
		draining  bool
	}
	states := make([]*nodeState, cfg.CPUs)
	for i := range states {
		r := workload.NewRand(cfg.Seed + int64(i))
		states[i] = &nodeState{
			rng:     r,
			zipf:    workload.NewZipf(r, cfg.ZipfSkew, cfg.Resources),
			waiting: map[arena.Addr]uint64{},
			txnSize: 16,
		}
	}
	modeFor := func(r *rand.Rand) dlm.Mode {
		switch n := r.Intn(100); {
		case n < 30:
			return dlm.CR
		case n < 70:
			return dlm.PR
		case n < 85:
			return dlm.PW
		default:
			return dlm.EX
		}
	}

	idle := make([]int, cfg.CPUs)
	// A node may not stop while any other node is still working: it is
	// the master for a share of the resources and must keep servicing
	// its inbox until the whole cluster has drained.
	allDone := func() bool {
		for _, s := range states {
			if !s.draining || len(s.held) > 0 || len(s.waiting) > 0 {
				return false
			}
		}
		return true
	}
	m.Run(func(c *machine.CPU) bool {
		id := c.ID()
		st := states[id]
		n := cl.Node(id)

		processed := n.Step(c, 4)
		// Node 0 doubles as the deadlock-search coordinator, as the VMS
		// lock manager's timeout-driven search did.
		st.steps++
		if id == 0 && st.steps%256 == 0 {
			n.BreakDeadlocks(c)
		}
		for _, comp := range n.TakeCompletions() {
			switch comp.Kind {
			case dlm.LockDone:
				switch comp.St {
				case dlm.Granted:
					st.held = append(st.held, held{comp.Handle, comp.ResID})
				case dlm.Waiting:
					st.waiting[comp.Handle] = comp.ResID
				}
			case dlm.GrantDelivered:
				if res, ok := st.waiting[comp.Handle]; ok {
					delete(st.waiting, comp.Handle)
					st.held = append(st.held, held{comp.Handle, res})
				}
			case dlm.AbortDelivered:
				// The deadlock detector denied one of our waiting locks.
				delete(st.waiting, comp.Handle)
			case dlm.ConvertDone:
				// Converts complete in place; waiting conversions are
				// re-granted via GrantDelivered, but the handle is
				// already in held, so nothing to move.
			}
		}

		if !st.draining {
			// OLTP transactions: acquire a burst of locks, hold them for
			// the transaction body, then release them all. The bursts are
			// what exercises the allocator's layers; a perfectly smooth
			// alloc/free interleave would hide in the per-CPU caches.
			//
			// Incremental acquisition can deadlock (A holds r1 and waits
			// for r2 while B holds r2 and waits for r1), so, like any
			// OLTP system, a transaction that waits too long aborts:
			// it releases its held locks, which breaks the cycle; its
			// waiting locks are granted eventually and released during
			// the releasing state.
			switch {
			case st.releasing && len(st.held) > 0:
				h := st.held[len(st.held)-1]
				st.held = st.held[:len(st.held)-1]
				n.Unlock(c, h.h, h.res)
			case st.releasing && len(st.waiting) == 0:
				st.releasing = false
				st.waitTicks = 0
				st.converted = false
				st.txnSize = 4 + st.rng.Intn(29)
				if st.issued >= cfg.OpsPerNode {
					st.draining = true
				}
			case st.releasing:
				c.Work(40) // waiting for straggler grants to release
				st.waitTicks++
			case st.issued < cfg.OpsPerNode && len(st.held)+len(st.waiting) < st.txnSize:
				n.Lock(c, st.zipf.Next(), modeFor(st.rng))
				st.issued++
			default:
				if len(st.waiting) > 0 {
					c.Work(40) // waiting on grants before the txn body
					st.waitTicks++
					if st.waitTicks > 300 {
						// Deadlock suspicion: abort the transaction.
						st.releasing = true
						st.waitTicks = 0
					}
					break
				}
				if !st.converted && len(st.held) > 0 && st.rng.Intn(4) == 0 {
					// Lock conversion partway through the transaction
					// (e.g. read lock upgraded before a write).
					st.converted = true
					i := st.rng.Intn(len(st.held))
					n.Convert(c, st.held[i].h, st.held[i].res, modeFor(st.rng))
					break
				}
				c.Work(200) // transaction body
				st.releasing = true
				st.waitTicks = 0
			}
			return true
		}

		// Drain: release everything, then keep servicing the inbox until
		// the whole cluster is quiet.
		if len(st.held) > 0 {
			h := st.held[len(st.held)-1]
			st.held = st.held[:len(st.held)-1]
			n.Unlock(c, h.h, h.res)
			return true
		}
		if processed > 0 || !allDone() {
			idle[id] = 0
			c.Work(40)
			return true
		}
		idle[id]++
		c.Work(40)
		return idle[id] < 50
	})

	// Post-run audit.
	if err := al.CheckConsistency(); err != nil {
		return nil, fmt.Errorf("bench: post-DLM consistency: %w", err)
	}

	res := &DLMResult{Config: cfg}
	stats := al.Stats(m.CPU(0))
	for _, cs := range stats.Classes {
		if cs.Allocs == 0 {
			continue
		}
		res.Rows = append(res.Rows, DLMClassRow{
			Size:              cs.Size,
			Target:            cs.Target,
			GblTarget:         cs.GblTarget,
			AllocMiss:         cs.AllocMissRate(),
			FreeMiss:          cs.FreeMissRate(),
			GlobalGetMiss:     cs.GlobalGetMissRate(),
			GlobalPutMiss:     cs.GlobalPutMissRate(),
			CombinedAllocMiss: cs.CombinedAllocMissRate(),
			CombinedFreeMiss:  cs.CombinedFreeMissRate(),
			Allocs:            cs.Allocs,
			Frees:             cs.Frees,
		})
	}
	ms := cl.Manager().Stats()
	res.Locks, res.Unlocks, res.Converts, res.Waits = ms.Locks, ms.Unlocks, ms.Converts, ms.Waits
	res.Aborts = ms.Aborts
	for i := 0; i < cfg.CPUs; i++ {
		res.Messages += cl.Node(i).Stats().MsgsSent
	}
	var maxClock int64
	for i := 0; i < cfg.CPUs; i++ {
		if t := m.CPU(i).Now(); t > maxClock {
			maxClock = t
		}
	}
	res.VirtualMS = m.CyclesToSeconds(maxClock) * 1e3
	return res, nil
}

// DLMScaleRow is one cluster size's throughput.
type DLMScaleRow struct {
	Nodes       int
	LocksPerSec float64
	MsgsPerSec  float64
	VirtualMS   float64
	Aborts      uint64
}

// RunDLMScaling sweeps the cluster size: the lock manager is built
// entirely on kmem_alloc, so near-linear growth in lock throughput shows
// the allocator staying off the critical path as CPUs are added — the
// production property the paper's DLM benchmark stands in for.
func RunDLMScaling(cpuCounts []int, opsPerNode int) ([]DLMScaleRow, error) {
	var rows []DLMScaleRow
	for _, n := range cpuCounts {
		cfg := DefaultDLMConfig()
		cfg.CPUs = n
		cfg.OpsPerNode = opsPerNode
		// Scale the resource space with the cluster so lock conflict
		// rates stay comparable.
		cfg.Resources = uint64(500 * n)
		res, err := RunDLM(cfg)
		if err != nil {
			return nil, err
		}
		sec := res.VirtualMS / 1e3
		rows = append(rows, DLMScaleRow{
			Nodes:       n,
			LocksPerSec: float64(res.Locks) / sec,
			MsgsPerSec:  float64(res.Messages) / sec,
			VirtualMS:   res.VirtualMS,
			Aborts:      res.Aborts,
		})
	}
	return rows, nil
}

// DLMScaleTable renders the sweep.
func DLMScaleTable(rows []DLMScaleRow) *Table {
	t := &Table{
		Title:   "DLM cluster scaling (lock manager built entirely on kmem_alloc)",
		Headers: []string{"nodes", "locks/sec", "msgs/sec", "per-node locks/sec", "deadlock aborts"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%.0f", r.LocksPerSec),
			fmt.Sprintf("%.0f", r.MsgsPerSec),
			fmt.Sprintf("%.0f", r.LocksPerSec/float64(r.Nodes)),
			fmt.Sprintf("%d", r.Aborts))
	}
	return t
}

// Table renders the miss rates alongside the paper's worst-case bounds
// (1/target, 1/gbltarget, and their product).
func (r *DLMResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf(
			"DLM benchmark: %d CPUs, %d locks, %d unlocks, %d converts, %d waits, %d deadlock aborts, %d messages (%.1f virtual ms)",
			r.Config.CPUs, r.Locks, r.Unlocks, r.Converts, r.Waits, r.Aborts, r.Messages, r.VirtualMS),
		Headers: []string{
			"size", "allocs", "percpu-miss%", "bound%",
			"global-miss%", "bound%", "combined%", "bound%",
		},
	}
	for _, row := range r.Rows {
		percpu := maxf(row.AllocMiss, row.FreeMiss)
		global := maxf(row.GlobalGetMiss, row.GlobalPutMiss)
		combined := maxf(row.CombinedAllocMiss, row.CombinedFreeMiss)
		t.AddRow(
			fmt.Sprintf("%d", row.Size),
			fmt.Sprintf("%d", row.Allocs),
			fmt.Sprintf("%.2f", percpu*100),
			fmt.Sprintf("%.2f", 100.0/float64(row.Target)),
			fmt.Sprintf("%.2f", global*100),
			fmt.Sprintf("%.2f", 100.0/float64(row.GblTarget)),
			fmt.Sprintf("%.4f", combined*100),
			fmt.Sprintf("%.4f", 100.0/float64(row.Target*row.GblTarget)),
		)
	}
	return t
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
