package bench

import (
	"fmt"

	"kmem/internal/allocif"
	"kmem/internal/arena"
	"kmem/internal/machine"
	"kmem/internal/workload"
)

// loopOverheadInsns models the benchmark loop around each
// kmem_alloc/kmem_free pair; the paper notes "this overhead amounts to as
// much as 40% for the faster algorithms".
const loopOverheadInsns = 17

// BestCasePoint is one (allocator, CPU count) measurement.
type BestCasePoint struct {
	Allocator     string
	CPUs          int
	Pairs         uint64
	PairsPerSec   float64
	LockContended uint64
	BusTxns       uint64
}

// BestCaseResult holds the Figure 7/8 sweep.
type BestCaseResult struct {
	CPUCounts []int
	BlockSize uint64
	Seconds   float64
	Points    map[string][]BestCasePoint // by allocator, indexed like CPUCounts
}

// RunBestCase reproduces the paper's best-case benchmark: on each CPU, a
// loop that allocates a block and immediately frees it, for a fixed
// virtual duration; the score is alloc/free pairs per second summed over
// CPUs (Figures 7 and 8).
func RunBestCase(names []string, cpuCounts []int, blockSize uint64, seconds float64) (*BestCaseResult, error) {
	return RunBestCaseCfg(names, cpuCounts, blockSize, seconds, nil)
}

// RunBestCaseCfg is RunBestCase with a machine-configuration hook, used
// by ablations that vary the hardware model (e.g. the TLB).
func RunBestCaseCfg(names []string, cpuCounts []int, blockSize uint64, seconds float64, mutate func(*machine.Config)) (*BestCaseResult, error) {
	res := &BestCaseResult{
		CPUCounts: cpuCounts,
		BlockSize: blockSize,
		Seconds:   seconds,
		Points:    map[string][]BestCasePoint{},
	}
	for _, name := range names {
		for _, ncpu := range cpuCounts {
			cfg := MachineFor(ncpu, 32<<20, 4096)
			if mutate != nil {
				mutate(&cfg)
			}
			m := machine.New(cfg)
			a, err := BuildAllocator(m, name)
			if err != nil {
				return nil, err
			}
			// Pre-fragment the heap with a background live set, as on the
			// live kernel the paper measured: a global allocator's free
			// structures become large and scattered, while the per-CPU
			// allocator's fast path is unaffected.
			prefragment(m, a)
			// Warm up each CPU's path once so cold construction cost is
			// not measured.
			for i := 0; i < ncpu; i++ {
				c := m.CPU(i)
				if b, err := a.Alloc(c, blockSize); err == nil {
					a.Free(c, b, blockSize)
				}
			}
			m.ResetStats()

			ops := m.RunFor(seconds, func(c *machine.CPU) {
				c.Work(loopOverheadInsns)
				b, err := a.Alloc(c, blockSize)
				if err == nil {
					a.Free(c, b, blockSize)
				}
			})
			var pairs uint64
			for _, n := range ops {
				pairs += n
			}
			res.Points[name] = append(res.Points[name], BestCasePoint{
				Allocator:   name,
				CPUs:        ncpu,
				Pairs:       pairs,
				PairsPerSec: float64(pairs) / seconds,
				BusTxns:     m.BusTransactions(),
			})
		}
	}
	return res, nil
}

// Figure renders the sweep as the paper's Figure 7 (linear) or Figure 8
// (semilog).
func (r *BestCaseResult) Figure(logY bool) *Figure {
	f := &Figure{
		XLabel: "Number of CPUs",
		YLabel: "alloc/free pairs per second",
		LogY:   logY,
	}
	if logY {
		f.Title = "Figure 8: Performance of New kmem_alloc and kmem_free (semilog)"
	} else {
		f.Title = "Figure 7: Performance of New kmem_alloc and kmem_free"
	}
	for _, x := range r.CPUCounts {
		f.Xs = append(f.Xs, float64(x))
	}
	for _, name := range AllocatorNames {
		pts, ok := r.Points[name]
		if !ok {
			continue
		}
		s := Series{Name: name}
		for _, p := range pts {
			s.Ys = append(s.Ys, p.PairsPerSec)
		}
		f.Series = append(f.Series, s)
	}
	// Any extra allocators beyond the canonical four.
	for name, pts := range r.Points {
		if contains(AllocatorNames, name) {
			continue
		}
		s := Series{Name: name}
		for _, p := range pts {
			s.Ys = append(s.Ys, p.PairsPerSec)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// prefragment populates the allocator with a long-lived mixed-size
// working set, freeing a third of it: the steady state of a live kernel.
func prefragment(m *machine.Machine, a allocif.Allocator) {
	c := m.CPU(0)
	rng := workload.NewRand(1959)
	type rec struct {
		b    arena.Addr
		size uint64
	}
	var live []rec
	for i := 0; i < 1200; i++ {
		// Continuous size spread: a long-running kernel's free blocks
		// take near-arbitrary sizes once splitting and coalescing mix.
		size := uint64(32 + rng.Intn(2048))
		b, err := a.Alloc(c, size)
		if err != nil {
			break
		}
		live = append(live, rec{b, size})
	}
	for i := 0; i < len(live); i += 3 {
		a.Free(c, live[i].b, live[i].size)
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// SpeedupTable derives each allocator's scaling from the sweep: speedup
// from 1 CPU to the largest count, and parallel efficiency
// (speedup / CPUs). The paper's headline is the top trace's near-linear
// speedup ("exhibits linear speedup on shared-memory multiprocessors").
func (r *BestCaseResult) SpeedupTable() *Table {
	last := len(r.CPUCounts) - 1
	t := &Table{
		Title: fmt.Sprintf("Speedup and parallel efficiency, 1 -> %d CPUs", r.CPUCounts[last]),
		Headers: []string{
			"allocator",
			fmt.Sprintf("pairs/s @1"),
			fmt.Sprintf("pairs/s @%d", r.CPUCounts[last]),
			"speedup", "efficiency",
		},
	}
	for _, name := range AllocatorNames {
		pts, ok := r.Points[name]
		if !ok || len(pts) <= last || pts[0].PairsPerSec == 0 {
			continue
		}
		sp := pts[last].PairsPerSec / pts[0].PairsPerSec
		eff := sp / float64(r.CPUCounts[last]) * 100
		t.AddRow(name,
			fmt.Sprintf("%.3g", pts[0].PairsPerSec),
			fmt.Sprintf("%.3g", pts[last].PairsPerSec),
			fmt.Sprintf("%.2fx", sp),
			fmt.Sprintf("%.1f%%", eff))
	}
	return t
}

// Ratio returns the throughput ratio a/b at the given CPU-count index
// (e.g. cookie/oldkma at 1 CPU ≈ 15 in the paper).
func (r *BestCaseResult) Ratio(a, b string, idx int) (float64, error) {
	pa, ok := r.Points[a]
	if !ok || idx >= len(pa) {
		return 0, fmt.Errorf("bench: no points for %q", a)
	}
	pb, ok := r.Points[b]
	if !ok || idx >= len(pb) {
		return 0, fmt.Errorf("bench: no points for %q", b)
	}
	if pb[idx].PairsPerSec == 0 {
		return 0, fmt.Errorf("bench: %q has zero throughput", b)
	}
	return pa[idx].PairsPerSec / pb[idx].PairsPerSec, nil
}
