package bench

import (
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/machine"
)

// TopologyPoint is one measured topology configuration of the
// producer/consumer cross-CPU-free workload.
type TopologyPoint struct {
	Nodes int
	CPUs  int

	Pairs       uint64  // alloc-on-one-CPU, free-on-another round trips completed
	PairsPerSec float64 // throughput in round trips per simulated second

	BusTxnsPerBus    float64 // mean transactions per node-local bus
	BusOccupancy     float64 // mean fraction of each bus's cycles spent occupied
	InterconnectTxns uint64  // transactions that crossed the node interconnect

	RemoteFrees uint64 // blocks routed to a non-local node's global pool
	NodeSteals  uint64 // blocks stolen cross-node by dry refills
}

// TopologyResult sweeps the same workload across node counts at a fixed
// total CPU count, isolating the effect of partitioning the machine.
type TopologyResult struct {
	BlockSize uint64
	Seconds   float64
	Pairing   string
	Points    []TopologyPoint
}

// queueCap bounds each producer/consumer handoff queue; a full queue
// makes the producer idle, a drained one makes the consumer idle, so
// neither side free-runs.
const queueCap = 64

// RunTopology runs the paper's motivating cross-CPU-free pattern — "one
// CPU allocates buffers of a given size, which are then passed to other
// CPUs that free them" — on the same CPU count under each topology in
// nodes. Half the CPUs produce (allocate and enqueue), half consume
// (dequeue and free). Pairing "near" mates each producer with the next
// CPU (same node whenever CPUs divide evenly into nodes), so partitioning
// splits both the pool locks and the coherence traffic across node
// buses; pairing "cross" mates producer i with consumer i+ncpu/2,
// forcing every handoff across nodes to exercise the remote-free and
// steal paths. interconnect overrides Config.InterconnectCycles when
// positive.
func RunTopology(ncpu int, nodes []int, blockSize uint64, seconds float64, pairing string, interconnect int64) (*TopologyResult, error) {
	if ncpu < 2 || ncpu%2 != 0 {
		return nil, fmt.Errorf("bench: topology needs an even CPU count >= 2, got %d", ncpu)
	}
	if pairing != "near" && pairing != "cross" {
		return nil, fmt.Errorf("bench: topology pairing %q (want near or cross)", pairing)
	}
	res := &TopologyResult{BlockSize: blockSize, Seconds: seconds, Pairing: pairing}
	for _, n := range nodes {
		if n < 1 || n > ncpu {
			return nil, fmt.Errorf("bench: topology with %d nodes on %d CPUs", n, ncpu)
		}
		pt, err := runTopologyPoint(ncpu, n, blockSize, seconds, pairing, interconnect)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func runTopologyPoint(ncpu, nnodes int, blockSize uint64, seconds float64, pairing string, interconnect int64) (TopologyPoint, error) {
	cfg := MachineFor(ncpu, 32<<20, 8192)
	cfg.Nodes = nnodes
	if interconnect > 0 {
		cfg.InterconnectCycles = interconnect
	}
	m := machine.New(cfg)
	a, err := core.New(m, core.Params{RadixSort: true})
	if err != nil {
		return TopologyPoint{}, err
	}
	ck, err := a.GetCookie(blockSize)
	if err != nil {
		return TopologyPoint{}, err
	}

	// consumerOf[p] for producers; producers are the even CPUs under
	// "near" pairing and the first half under "cross".
	consumerOf := make([]int, ncpu)
	isProducer := make([]bool, ncpu)
	for i := 0; i < ncpu; i++ {
		if pairing == "near" {
			if i%2 == 0 {
				isProducer[i] = true
				consumerOf[i] = i + 1
			}
		} else {
			if i < ncpu/2 {
				isProducer[i] = true
				consumerOf[i] = i + ncpu/2
			}
		}
	}

	queues := make([][]arena.Addr, ncpu) // indexed by consumer CPU
	pairs := make([]uint64, ncpu)
	body := func(c *machine.CPU) {
		id := c.ID()
		if isProducer[id] {
			q := &queues[consumerOf[id]]
			if len(*q) >= queueCap {
				c.Idle(100)
				return
			}
			b, err := a.AllocCookie(c, ck)
			if err != nil {
				c.Idle(100)
				return
			}
			*q = append(*q, b)
			return
		}
		q := &queues[id]
		if len(*q) == 0 {
			c.Idle(100)
			return
		}
		b := (*q)[0]
		*q = (*q)[1:]
		a.FreeCookie(c, b, ck)
		pairs[id]++
	}

	// Warm up past the carve-heavy start, then measure a clean window.
	m.RunFor(seconds/4, body)
	m.ResetStats()
	for i := range pairs {
		pairs[i] = 0
	}
	m.RunFor(seconds, body)

	pt := TopologyPoint{Nodes: nnodes, CPUs: ncpu}
	for _, p := range pairs {
		pt.Pairs += p
	}
	pt.PairsPerSec = float64(pt.Pairs) / seconds
	busTxns := m.BusTransactions()
	pt.BusTxnsPerBus = float64(busTxns) / float64(nnodes)
	windowCycles := float64(m.SecondsToCycles(seconds))
	pt.BusOccupancy = pt.BusTxnsPerBus * float64(cfg.BusCycles) / windowCycles
	pt.InterconnectTxns = m.InterconnectTransactions()

	st := a.Stats(m.CPU(0))
	for _, cs := range st.Classes {
		pt.RemoteFrees += cs.RemoteFrees
		pt.NodeSteals += cs.NodeSteals
	}
	return pt, nil
}

// Table renders the sweep.
func (r *TopologyResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Producer/consumer cross-CPU frees: %d-byte blocks, %s pairing, topology sweep",
			r.BlockSize, r.Pairing),
		Headers: []string{"nodes", "cpus", "pairs/s", "txns/bus", "bus occ", "ic txns", "remote frees", "steals"},
	}
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%d", p.CPUs),
			fmt.Sprintf("%.0f", p.PairsPerSec),
			fmt.Sprintf("%.0f", p.BusTxnsPerBus),
			fmt.Sprintf("%.1f%%", 100*p.BusOccupancy),
			fmt.Sprintf("%d", p.InterconnectTxns),
			fmt.Sprintf("%d", p.RemoteFrees),
			fmt.Sprintf("%d", p.NodeSteals),
		)
	}
	return t
}
