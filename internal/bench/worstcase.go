package bench

import (
	"errors"
	"fmt"
	"math"

	"kmem/internal/allocif"
	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/machine"
)

// WorstCasePoint is one block size's worst-case measurement.
type WorstCasePoint struct {
	BlockSize   uint64
	Blocks      uint64  // blocks allocated before exhaustion
	AllocPerSec float64 // allocations per second during the fill
	FreePerSec  float64 // frees per second during the drain
	PairsPerSec float64 // combined score, as plotted in Figure 9
}

// WorstCaseResult holds the Figure 9 sweep.
type WorstCaseResult struct {
	Points []WorstCasePoint
}

// RunWorstCase reproduces the paper's worst-case benchmark: "allocating
// blocks of a given size until memory is exhausted, freeing them all,
// then repeating the process with the next-larger size" — all on one
// system with no reboot and no sleep between sizes, which only works
// because the allocator coalesces online. An allocator that cannot
// coalesce fails partway (see mk's conformance tests).
func RunWorstCase(sizes []uint64, physPages int64) (*WorstCaseResult, error) {
	return RunWorstCaseCfg(sizes, physPages, nil)
}

// RunWorstCaseCfg is RunWorstCase with a machine-configuration hook.
func RunWorstCaseCfg(sizes []uint64, physPages int64, mutate func(*machine.Config)) (*WorstCaseResult, error) {
	cfg := MachineFor(1, 256<<20, physPages)
	if mutate != nil {
		mutate(&cfg)
	}
	m := machine.New(cfg)
	al, err := core.New(m, core.Params{RadixSort: true})
	if err != nil {
		return nil, err
	}
	a := allocif.NewKMA{Allocator: al}
	c := m.CPU(0)

	res := &WorstCaseResult{}
	// The kernel list head that syscall_kma chains blocks on: we chain
	// them through their own first words, as the benchmark system calls
	// did.
	for _, size := range sizes {
		var head arena.Addr
		var count uint64
		startFill := c.Now()
		for {
			b, err := a.Alloc(c, size)
			if err != nil {
				if !errors.Is(err, core.ErrNoMemory) {
					return nil, fmt.Errorf("size %d: %w", size, err)
				}
				break
			}
			m.Mem().Store64(b, head)
			c.WriteAddr(b)
			head = b
			count++
		}
		endFill := c.Now()
		if count == 0 {
			return nil, fmt.Errorf("size %d: nothing allocated", size)
		}
		for head != arena.NilAddr {
			next := m.Mem().Load64(head)
			c.ReadAddr(head)
			a.Free(c, head, size)
			head = next
		}
		endDrain := c.Now()

		fillSec := m.CyclesToSeconds(endFill - startFill)
		drainSec := m.CyclesToSeconds(endDrain - endFill)
		res.Points = append(res.Points, WorstCasePoint{
			BlockSize:   size,
			Blocks:      count,
			AllocPerSec: float64(count) / fillSec,
			FreePerSec:  float64(count) / drainSec,
			PairsPerSec: float64(count) / (fillSec + drainSec),
		})
	}
	return res, nil
}

// WorstCaseAnyRow reports one size's outcome for an arbitrary allocator.
type WorstCaseAnyRow struct {
	BlockSize uint64
	Blocks    uint64
	Completed bool // allocated a meaningful share of memory at this size
}

// RunWorstCaseAny runs the worst-case script against any allocator,
// reporting per-size outcomes instead of assuming success. The paper:
// "an allocator that does no coalescing would fail to complete this
// benchmark, having permanently fragmented all available memory into the
// smallest possible blocks" — run with name "mk" to watch exactly that.
func RunWorstCaseAny(name string, sizes []uint64, physPages int64) ([]WorstCaseAnyRow, error) {
	m := machine.New(MachineFor(1, 256<<20, physPages))
	a, err := BuildAllocator(m, name)
	if err != nil {
		return nil, err
	}
	c := m.CPU(0)
	var rows []WorstCaseAnyRow
	for _, size := range sizes {
		var held []arena.Addr
		for {
			b, err := a.Alloc(c, size)
			if err != nil {
				break
			}
			held = append(held, b)
		}
		for _, b := range held {
			a.Free(c, b, size)
		}
		if d, ok := a.(allocif.Coalescer); ok {
			d.DrainAll(c)
		}
		// "Completed" means this size could use at least a quarter of
		// physical memory; a wedged allocator gets (almost) nothing.
		bytesGot := uint64(len(held)) * size
		quarter := uint64(physPages) * m.Config().PageBytes / 4
		rows = append(rows, WorstCaseAnyRow{
			BlockSize: size,
			Blocks:    uint64(len(held)),
			Completed: bytesGot >= quarter,
		})
	}
	return rows, nil
}

// WorstCaseAnyTable renders the per-size outcomes.
func WorstCaseAnyTable(name string, rows []WorstCaseAnyRow) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Worst-case script on %q (paper: a non-coalescing allocator fails to complete)", name),
		Headers: []string{"block size", "blocks allocated", "status"},
	}
	for _, r := range rows {
		status := "ok"
		if !r.Completed {
			status = "WEDGED (memory fragmented by a previous size)"
		}
		t.AddRow(fmt.Sprintf("%d", r.BlockSize), fmt.Sprintf("%d", r.Blocks), status)
	}
	return t
}

// Figure renders the sweep as the paper's Figure 9 (block size on the
// x-axis, log scale to cover 16..16384).
func (r *WorstCaseResult) Figure() *Figure {
	f := &Figure{
		Title:  "Figure 9: Worst-Case Performance",
		XLabel: "Block Size (log10 bytes)",
		YLabel: "alloc/free pairs per second",
	}
	var alloc, free, pairs Series
	alloc.Name, free.Name, pairs.Name = "allocs/sec", "frees/sec", "pairs/sec"
	for _, p := range r.Points {
		f.Xs = append(f.Xs, math.Log10(float64(p.BlockSize)))
		alloc.Ys = append(alloc.Ys, p.AllocPerSec)
		free.Ys = append(free.Ys, p.FreePerSec)
		pairs.Ys = append(pairs.Ys, p.PairsPerSec)
	}
	f.Series = []Series{pairs, alloc, free}
	return f
}
