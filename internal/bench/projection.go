package bench

import (
	"fmt"

	"kmem/internal/machine"
)

// The paper's closing prediction: "Hardware monitors indicate that the
// common case of the two fast algorithms are free from the cache-thrashing
// that accounted for so much of the original algorithm's execution time.
// We therefore expect that the allocator will continue to scale well with
// increasing processor speeds." — and its motivation: "the speed of
// synchronization primitives (such as spinlocks) has not increased as
// rapidly as the speed of other instructions."
//
// This experiment replays the best-case benchmark under successive
// hardware generations in which instruction execution gets faster while
// bus transfers and locked operations do not keep pace (i.e. their
// relative cost in CPU cycles grows). The per-CPU allocator's advantage
// must widen, exactly as predicted.

// Era is one hardware generation's cost ratios.
type Era struct {
	Name         string
	MissCycles   int64
	BusCycles    int64
	AtomicCycles int64
}

// Eras is the default progression: the paper's Symmetry (1990s), a
// late-90s SMP, and a 2000s-style machine where a cache miss costs
// hundreds of instruction slots.
var Eras = []Era{
	{Name: "1993 (paper)", MissCycles: 40, BusCycles: 16, AtomicCycles: 40},
	{Name: "late 1990s", MissCycles: 100, BusCycles: 40, AtomicCycles: 100},
	{Name: "2000s", MissCycles: 300, BusCycles: 120, AtomicCycles: 250},
}

// ProjectionRow is one era's measurement.
type ProjectionRow struct {
	Era            string
	CookiePerCPU   float64 // pairs/s/CPU at 8 CPUs
	OldKMATotal    float64 // pairs/s at 8 CPUs (lock-bound, does not scale)
	Advantage      float64 // cookie total / oldkma total at 8 CPUs
	CookieSpeedup8 float64 // cookie 8-CPU speedup over its own 1-CPU rate
}

// RunProjection measures each era.
func RunProjection(seconds float64) ([]ProjectionRow, error) {
	var rows []ProjectionRow
	for _, era := range Eras {
		e := era
		res, err := RunBestCaseCfg([]string{"cookie", "oldkma"}, []int{1, 8}, 128, seconds,
			func(cfg *machine.Config) {
				cfg.MissCycles = e.MissCycles
				cfg.BusCycles = e.BusCycles
				cfg.AtomicCycles = e.AtomicCycles
			})
		if err != nil {
			return nil, err
		}
		ck1 := res.Points["cookie"][0].PairsPerSec
		ck8 := res.Points["cookie"][1].PairsPerSec
		old8 := res.Points["oldkma"][1].PairsPerSec
		rows = append(rows, ProjectionRow{
			Era:            era.Name,
			CookiePerCPU:   ck8 / 8,
			OldKMATotal:    old8,
			Advantage:      ck8 / old8,
			CookieSpeedup8: ck8 / ck1,
		})
	}
	return rows, nil
}

// ProjectionTable renders the eras.
func ProjectionTable(rows []ProjectionRow) *Table {
	t := &Table{
		Title: "Projection: widening CPU/memory gap (paper: the allocator " +
			"\"will continue to scale well with increasing processor speeds\")",
		Headers: []string{"era", "cookie pairs/s/cpu", "cookie 8-cpu speedup", "oldkma pairs/s (8 cpu)", "advantage"},
	}
	for _, r := range rows {
		t.AddRow(r.Era,
			fmt.Sprintf("%.3g", r.CookiePerCPU),
			fmt.Sprintf("%.2fx", r.CookieSpeedup8),
			fmt.Sprintf("%.3g", r.OldKMATotal),
			fmt.Sprintf("%.0fx", r.Advantage))
	}
	return t
}
