package bench

// The serving-simulation sweep (EXPERIMENTS.md E17): one seeded
// three-phase trace — diurnal steady state, a flash-crowd spike, a
// pressure wave — executed at a fixed CPU count across node counts,
// with the optimistic fast paths (rseq + lock-free global layer) off
// and on. Per phase it reports the alloc/free latency quantiles from
// the core event spine's histograms; CI gates p999 per phase against
// the committed baseline.

import (
	"fmt"

	"kmem/internal/core"
	"kmem/internal/machine"
	"kmem/internal/serve"
)

// ServePoint is one (nodes, lockfree) cell of the serving sweep.
type ServePoint struct {
	CPUs     int
	Nodes    int
	LockFree bool

	// SchedHash is the run's schedule hash in hex — the determinism
	// fingerprint CI compares against the committed baseline.
	SchedHash string

	TotalOps  int
	TotalOpen int
	Drops     int

	Phases []serve.PhaseResult
}

// ServeResult is the full sweep.
type ServeResult struct {
	Seed        uint64
	CPUs        int
	Sessions    int
	OpsPerPhase int
	Points      []ServePoint
}

// ServeDefaults returns the committed-baseline sweep configuration.
func ServeDefaults() serve.GenConfig {
	return serve.GenConfig{Seed: 10, CPUs: 8, Sessions: 1024, OpsPerPhase: 34000}
}

// RunServe executes the serving sweep: the trace from cfg, replayed on
// machines of 1, 2 and 4 nodes with the optimistic fast paths off and
// on. The same trace bytes drive every point, so cells differ only in
// machine shape and allocator configuration.
func RunServe(cfg serve.GenConfig, nodeCounts []int) (*ServeResult, error) {
	tr := serve.Generate(cfg)
	res := &ServeResult{
		Seed:        cfg.Seed,
		CPUs:        cfg.CPUs,
		Sessions:    cfg.Sessions,
		OpsPerPhase: cfg.OpsPerPhase,
	}
	for _, nodes := range nodeCounts {
		for _, lockfree := range []bool{false, true} {
			// 16 MB of physical memory against the pressure phase's hold
			// wave: the watermarks are actually crossed, so the pressure
			// window's tail includes degraded targets and reclaim.
			mcfg := MachineFor(cfg.CPUs, 64<<20, 4096)
			mcfg.Nodes = nodes
			m := machine.New(mcfg)
			m.EnableSchedHash()
			a, err := core.New(m, core.Params{
				RadixSort: true,
				Latency:   true,
				Rseq:      lockfree,
				LockFree:  lockfree,
				Pressure:  &core.PressureConfig{},
			})
			if err != nil {
				return nil, err
			}
			r, err := serve.Run(m, a, tr)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, ServePoint{
				CPUs:      cfg.CPUs,
				Nodes:     nodes,
				LockFree:  lockfree,
				SchedHash: fmt.Sprintf("%016x", r.SchedHash),
				TotalOps:  r.TotalOps,
				TotalOpen: r.TotalOpen,
				Drops:     r.Drops,
				Phases:    r.Phases,
			})
		}
	}
	return res, nil
}

// Table renders the sweep: one row per (nodes, lockfree, phase) with
// throughput and the alloc/free latency quantiles in cycles.
func (r *ServeResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("serving simulation: %d CPUs, %d sessions, %d ops/phase, seed %d",
			r.CPUs, r.Sessions, r.OpsPerPhase, r.Seed),
		Headers: []string{"nodes", "fastpath", "phase", "ops/sec", "drops",
			"alloc p50/p99/p999", "free p50/p99/p999"},
	}
	for _, p := range r.Points {
		fp := "locked"
		if p.LockFree {
			fp = "rseq+lf"
		}
		for _, ph := range p.Phases {
			t.AddRow(
				fmt.Sprintf("%d", p.Nodes),
				fp,
				ph.Phase,
				fmt.Sprintf("%.0f", ph.OpsPerSec),
				fmt.Sprintf("%d", ph.Drops),
				fmt.Sprintf("%d/%d/%d", ph.AllocP50, ph.AllocP99, ph.AllocP999),
				fmt.Sprintf("%d/%d/%d", ph.FreeP50, ph.FreeP99, ph.FreeP999),
			)
		}
	}
	return t
}
