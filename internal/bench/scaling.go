package bench

import (
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/machine"
)

// ScalingPoint is one measured (CPUs, nodes, workload, shards)
// configuration of the scaling sweep. Throughput and every counter
// cover the same clean measurement window after warmup (counters are
// deltas of two Stats snapshots), so remote puts, flushes, and lock
// cycles can be compared per completed pair across configurations.
type ScalingPoint struct {
	CPUs     int
	Nodes    int
	Workload string // "allocfree" (local churn) or "prodcons" (cross-CPU handoff)
	Shards   bool   // remote-free shards enabled
	LockFree bool   // optimistic fast paths (Params.Rseq + Params.LockFree)

	Pairs       uint64  // alloc+free round trips completed in the window
	PairsPerSec float64 // throughput in round trips per simulated second

	// Cross-node traffic and shard activity (zero on one node).
	RemoteFrees  uint64 // blocks that reached a non-local node's global pool
	RemotePuts   uint64 // putList lock trips taken against a non-local pool
	ShardFlushes uint64 // batched shard flushes (zero with shards off)
	HomeMemoHits uint64 // per-CPU home-memo hits (zero with shards off)
	NodeSteals   uint64 // blocks stolen cross-node by dry refills

	InterconnectTxns uint64  // memory transactions that crossed the interconnect
	BusOccupancy     float64 // mean fraction of each bus's window spent occupied

	// Slow-path lock economics, summed over every pool lock plus the
	// vmblk-layer lock (Sim mode only; all zero in Native mode).
	LockAcqs       uint64 // acquisitions
	LockContended  uint64 // acquisitions that had to spin
	LockWaitCycles uint64 // cycles spent spinning (the EvLockWait spine sum)
	LockHoldCycles int64  // cycles locks were held

	// Optimistic fast-path activity (zero with LockFree off).
	RseqRestarts uint64 // per-CPU sequences aborted and re-run
	CASRetries   uint64 // lock-free commits that lost their CAS and re-ran
}

// ScalingResult is the full sweep.
type ScalingResult struct {
	BlockSize uint64
	Seconds   float64
	Points    []ScalingPoint
}

// ScalingWorkloads lists the sweep's workload names.
var ScalingWorkloads = []string{"allocfree", "prodcons"}

// RunScaling sweeps CPU count x node count x workload x shards on/off.
// Combinations where the node count exceeds or does not divide the CPU
// count are skipped. Workload "allocfree" is same-CPU churn — every
// block is freed where it was allocated, so it bounds what the shards
// may cost when they have nothing to do. Workload "prodcons" is the
// paper's motivating handoff pattern with a cross-node sprinkle: even
// CPUs allocate, odd CPUs free; a producer hands two of every three
// blocks to its same-node partner and deals the third round-robin
// across all consumers, so every consumer frees a stream of
// mostly-local blocks with remote homes interleaved — exactly the
// pattern the remote-free shards batch.
func RunScaling(cpuCounts, nodeCounts []int, blockSize uint64, seconds float64) (*ScalingResult, error) {
	if seconds <= 0 {
		return nil, fmt.Errorf("bench: scaling needs a positive window, got %v", seconds)
	}
	res := &ScalingResult{BlockSize: blockSize, Seconds: seconds}
	for _, ncpu := range cpuCounts {
		if ncpu < 2 || ncpu%2 != 0 {
			return nil, fmt.Errorf("bench: scaling needs even CPU counts >= 2, got %d", ncpu)
		}
		for _, nn := range nodeCounts {
			if nn < 1 {
				return nil, fmt.Errorf("bench: scaling with %d nodes", nn)
			}
			if nn > ncpu || ncpu%nn != 0 {
				continue
			}
			for _, wl := range ScalingWorkloads {
				for _, shards := range []bool{false, true} {
					pt, err := runScalingPoint(ncpu, nn, wl, shards, false, blockSize, seconds)
					if err != nil {
						return nil, err
					}
					res.Points = append(res.Points, pt)
				}
			}
		}
	}
	return res, nil
}

// RunScalingLockFree sweeps the optimistic axis: every (CPUs, nodes,
// workload) point with remote-free shards on — the production
// configuration — measured once with the classical interrupt-masked and
// spin-locked paths and once with the restartable per-CPU sequences and
// the CAS-based global layer (Params.Rseq + Params.LockFree together).
// The pairing isolates what going lock-free buys: the workload, the
// topology, and the shard batching are held identical.
func RunScalingLockFree(cpuCounts, nodeCounts []int, blockSize uint64, seconds float64) (*ScalingResult, error) {
	if seconds <= 0 {
		return nil, fmt.Errorf("bench: scaling needs a positive window, got %v", seconds)
	}
	res := &ScalingResult{BlockSize: blockSize, Seconds: seconds}
	for _, ncpu := range cpuCounts {
		if ncpu < 2 || ncpu%2 != 0 {
			return nil, fmt.Errorf("bench: scaling needs even CPU counts >= 2, got %d", ncpu)
		}
		for _, nn := range nodeCounts {
			if nn < 1 {
				return nil, fmt.Errorf("bench: scaling with %d nodes", nn)
			}
			if nn > ncpu || ncpu%nn != 0 {
				continue
			}
			for _, wl := range ScalingWorkloads {
				for _, lockFree := range []bool{false, true} {
					pt, err := runScalingPoint(ncpu, nn, wl, true, lockFree, blockSize, seconds)
					if err != nil {
						return nil, err
					}
					res.Points = append(res.Points, pt)
				}
			}
		}
	}
	return res, nil
}

func runScalingPoint(ncpu, nnodes int, workload string, shards, lockFree bool, blockSize uint64, seconds float64) (ScalingPoint, error) {
	cfg := MachineFor(ncpu, 32<<20, 8192)
	cfg.Nodes = nnodes
	m := machine.New(cfg)
	a, err := core.New(m, core.Params{
		RadixSort:           true,
		DisableRemoteShards: !shards,
		Rseq:                lockFree,
		LockFree:            lockFree,
	})
	if err != nil {
		return ScalingPoint{}, err
	}
	ck, err := a.GetCookie(blockSize)
	if err != nil {
		return ScalingPoint{}, err
	}

	pairs := make([]uint64, ncpu)
	var body func(c *machine.CPU)
	switch workload {
	case "allocfree":
		body = func(c *machine.CPU) {
			b, err := a.AllocCookie(c, ck)
			if err != nil {
				c.Idle(100)
				return
			}
			a.FreeCookie(c, b, ck)
			pairs[c.ID()]++
		}
	case "prodcons":
		queues := make([][]arena.Addr, ncpu) // indexed by consumer CPU
		dealt := make([]int, ncpu)           // per-producer deal counter
		body = func(c *machine.CPU) {
			id := c.ID()
			if id%2 == 0 { // producer
				to := id + 1 // same-node partner (two of every three blocks)
				d := dealt[id]
				dealt[id] = d + 1
				if d%3 == 2 {
					// Every third block is dealt round-robin across all
					// consumers, interleaving remote homes into each
					// consumer's free stream.
					to = ((d/3)%(ncpu/2))*2 + 1
				}
				q := &queues[to]
				if len(*q) >= queueCap {
					c.Idle(100)
					return
				}
				b, err := a.AllocCookie(c, ck)
				if err != nil {
					c.Idle(100)
					return
				}
				*q = append(*q, b)
				return
			}
			q := &queues[id]
			if len(*q) == 0 {
				c.Idle(100)
				return
			}
			b := (*q)[0]
			*q = (*q)[1:]
			a.FreeCookie(c, b, ck)
			pairs[id]++
		}
	default:
		return ScalingPoint{}, fmt.Errorf("bench: scaling workload %q (want allocfree or prodcons)", workload)
	}

	// Warm up past the carve-heavy start, then measure a clean window.
	// The allocator's counters only ever grow, so the window's activity is
	// the delta between a snapshot taken here and one taken at the end.
	m.RunFor(seconds/4, body)
	m.ResetStats()
	for i := range pairs {
		pairs[i] = 0
	}
	before := collectCounters(a.Stats(m.CPU(0)))
	m.RunFor(seconds, body)

	pt := ScalingPoint{CPUs: ncpu, Nodes: nnodes, Workload: workload, Shards: shards, LockFree: lockFree}
	for _, p := range pairs {
		pt.Pairs += p
	}
	pt.PairsPerSec = float64(pt.Pairs) / seconds
	busTxns := m.BusTransactions()
	windowCycles := float64(m.SecondsToCycles(seconds))
	pt.BusOccupancy = float64(busTxns) / float64(nnodes) * float64(cfg.BusCycles) / windowCycles
	pt.InterconnectTxns = m.InterconnectTransactions()

	after := collectCounters(a.Stats(m.CPU(0)))
	pt.RemoteFrees = after.RemoteFrees - before.RemoteFrees
	pt.RemotePuts = after.RemotePuts - before.RemotePuts
	pt.ShardFlushes = after.ShardFlushes - before.ShardFlushes
	pt.HomeMemoHits = after.HomeMemoHits - before.HomeMemoHits
	pt.NodeSteals = after.NodeSteals - before.NodeSteals
	pt.LockWaitCycles = after.LockWaitCycles - before.LockWaitCycles
	pt.LockAcqs = after.LockAcqs - before.LockAcqs
	pt.LockContended = after.LockContended - before.LockContended
	pt.LockHoldCycles = after.LockHoldCycles - before.LockHoldCycles
	pt.RseqRestarts = after.RseqRestarts - before.RseqRestarts
	pt.CASRetries = after.CASRetries - before.CASRetries
	return pt, nil
}

// collectCounters flattens one Stats snapshot into the sweep's counter
// set, summing every class's pools plus the vmblk layer.
func collectCounters(st core.Stats) ScalingPoint {
	var pt ScalingPoint
	for _, cs := range st.Classes {
		pt.RemoteFrees += cs.RemoteFrees
		pt.RemotePuts += cs.RemotePuts
		pt.ShardFlushes += cs.ShardFlushes
		pt.HomeMemoHits += cs.HomeMemoHits
		pt.NodeSteals += cs.NodeSteals
		pt.LockWaitCycles += cs.LockWaitCycles
		pt.RseqRestarts += cs.RseqRestarts
		pt.CASRetries += cs.CASRetries
		for _, ls := range []machine.LockStats{cs.GlobalLock, cs.PageLock} {
			pt.LockAcqs += ls.Acquisitions
			pt.LockContended += ls.Contended
			pt.LockHoldCycles += ls.HoldCycles
		}
	}
	pt.LockWaitCycles += st.VM.LockWaitCycles
	pt.LockAcqs += st.VM.Lock.Acquisitions
	pt.LockContended += st.VM.Lock.Contended
	pt.LockHoldCycles += st.VM.Lock.HoldCycles
	return pt
}

// Point returns the sweep's point for one exact configuration, or nil.
func (r *ScalingResult) Point(cpus, nodes int, workload string, shards bool) *ScalingPoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.CPUs == cpus && p.Nodes == nodes && p.Workload == workload && p.Shards == shards {
			return p
		}
	}
	return nil
}

// PointLF returns the lock-free sweep's point for one exact
// configuration (shards are always on there), or nil.
func (r *ScalingResult) PointLF(cpus, nodes int, workload string, lockFree bool) *ScalingPoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.CPUs == cpus && p.Nodes == nodes && p.Workload == workload && p.LockFree == lockFree {
			return p
		}
	}
	return nil
}

// Table renders the sweep.
func (r *ScalingResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Scaling sweep: %d-byte blocks, %.3fs window, remote-free shards on/off",
			r.BlockSize, r.Seconds),
		Headers: []string{"cpus", "nodes", "workload", "shards", "pairs/s",
			"remote puts", "flushes", "memo hits", "lock wait", "lock hold", "bus occ"},
	}
	onoff := map[bool]string{false: "off", true: "on"}
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.CPUs),
			fmt.Sprintf("%d", p.Nodes),
			p.Workload,
			onoff[p.Shards],
			fmt.Sprintf("%.0f", p.PairsPerSec),
			fmt.Sprintf("%d", p.RemotePuts),
			fmt.Sprintf("%d", p.ShardFlushes),
			fmt.Sprintf("%d", p.HomeMemoHits),
			fmt.Sprintf("%d", p.LockWaitCycles),
			fmt.Sprintf("%d", p.LockHoldCycles),
			fmt.Sprintf("%.1f%%", 100*p.BusOccupancy),
		)
	}
	return t
}

// LockFreeTable renders the optimistic sweep: locked vs lock-free fast
// paths, per point, with the restart/retry counters that price the
// optimism.
func (r *ScalingResult) LockFreeTable() *Table {
	t := &Table{
		Title: fmt.Sprintf("Lock-free sweep: %d-byte blocks, %.3fs window, shards on, locked vs rseq+CAS paths",
			r.BlockSize, r.Seconds),
		Headers: []string{"cpus", "nodes", "workload", "lockfree", "pairs/s",
			"lock wait", "lock hold", "restarts", "cas retries"},
	}
	onoff := map[bool]string{false: "off", true: "on"}
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.CPUs),
			fmt.Sprintf("%d", p.Nodes),
			p.Workload,
			onoff[p.LockFree],
			fmt.Sprintf("%.0f", p.PairsPerSec),
			fmt.Sprintf("%d", p.LockWaitCycles),
			fmt.Sprintf("%d", p.LockHoldCycles),
			fmt.Sprintf("%d", p.RseqRestarts),
			fmt.Sprintf("%d", p.CASRetries),
		)
	}
	return t
}
