package bench

import (
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/machine"
	"kmem/internal/workload"
)

// The fragmentation sweep measures the virtual-span redesign's triple —
// reserved, resident, live — through repeated grow/churn/shrink/trim
// cycles, in both backing modes. Eager backing maps pages as spans are
// carved and unmaps them as spans coalesce, so resident tracks live
// closely; lazy backing over-reserves virtual spans, commits frames at
// first carve, and keeps the backing of freed spans until a trim strips
// it, so resident decays in steps at each trim. The committed baseline
// (BENCH_6.json) lets CI flag any change that inflates the resident
// footprint at equal live bytes.

// FragPoint is one sample of the fragmentation triple.
type FragPoint struct {
	Mode  string // "eager" or "lazy"
	Cycle int
	Phase string // grow | churn | shrink | trim | final
	Live  int    // live blocks at sample time

	ReservedBytes uint64
	ResidentBytes uint64
	LiveBytes     uint64
	ResidentRatio float64 // resident/reserved
	Utilization   float64 // live/resident

	PagesCommit   uint64 // cumulative on-demand commits (lazy only)
	PagesDecommit uint64 // cumulative free-span decommits (lazy only)
	Failures      int    // cumulative allocation failures in this mode
}

// FragResult is the full sweep: both modes over the same seeded workload.
type FragResult struct {
	Cycles    int
	PhysPages int64
	Points    []FragPoint
}

// RunFrag runs the grow/churn/shrink/trim workload once per backing mode
// and samples the fragmentation triple after every phase.
func RunFrag(cycles int, physPages int64) (*FragResult, error) {
	res := &FragResult{Cycles: cycles, PhysPages: physPages}
	for _, mode := range []string{"eager", "lazy"} {
		if err := res.runMode(mode); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (res *FragResult) runMode(mode string) error {
	m := machine.New(MachineFor(1, 64<<20, res.PhysPages))
	al, err := core.New(m, core.Params{RadixSort: true, LazySpans: mode == "lazy"})
	if err != nil {
		return err
	}
	c := m.CPU(0)
	pageBytes := m.Config().PageBytes
	rng := workload.NewRand(1993)
	sizes := workload.NewChoice(
		[]uint64{32, 128, 512, 2048, 4096, 3 * pageBytes, 6 * pageBytes},
		[]int{8, 8, 6, 4, 3, 2, 1})

	type block struct {
		addr arena.Addr
		size uint64
	}
	var live []block
	failures := 0
	alloc := func() {
		size := sizes.Next(rng)
		b, err := al.Alloc(c, size)
		if err != nil {
			failures++
			return
		}
		live = append(live, block{b, size})
	}
	freeOne := func() {
		i := rng.Intn(len(live))
		al.Free(c, live[i].addr, live[i].size)
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	sample := func(cycle int, phase string) {
		st := al.Stats(c)
		res.Points = append(res.Points, FragPoint{
			Mode:          mode,
			Cycle:         cycle,
			Phase:         phase,
			Live:          len(live),
			ReservedBytes: st.Frag.ReservedBytes,
			ResidentBytes: st.Frag.ResidentBytes,
			LiveBytes:     st.Frag.LiveBytes,
			ResidentRatio: st.Frag.ResidentRatio(),
			Utilization:   st.Frag.Utilization(),
			PagesCommit:   st.VM.PagesCommit,
			PagesDecommit: st.VM.PagesDecommit,
			Failures:      failures,
		})
	}

	const wsHigh, wsLow = 1200, 80
	for cycle := 1; cycle <= res.Cycles; cycle++ {
		stalls := 0
		for len(live) < wsHigh {
			n := len(live)
			alloc()
			if len(live) == n {
				if stalls++; stalls > 1000 {
					return fmt.Errorf("bench: frag grow phase starved at %d blocks (%s mode)", n, mode)
				}
			} else {
				stalls = 0
			}
		}
		sample(cycle, "grow")
		for op := 0; op < 4000; op++ {
			if rng.Intn(2) == 0 && len(live) > 0 {
				freeOne()
			} else {
				alloc()
			}
		}
		sample(cycle, "churn")
		for len(live) > wsLow {
			freeOne()
		}
		sample(cycle, "shrink")
		// The kswapd moment: flush every cache so free memory coalesces,
		// and (lazy mode) strip the backing of the coalesced spans.
		al.DrainAll(c)
		sample(cycle, "trim")
	}
	for _, b := range live {
		al.Free(c, b.addr, b.size)
	}
	live = live[:0]
	al.DrainAll(c)
	if err := al.CheckConsistency(); err != nil {
		return fmt.Errorf("bench: post-frag consistency (%s): %w", mode, err)
	}
	// Steady state: nothing live, everything coalesced and trimmed; the
	// resident footprint is the vmblk-header floor.
	sample(res.Cycles, "final")
	return nil
}

// Table renders the sweep.
func (r *FragResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf(
			"Fragmentation triple over %d grow/churn/shrink/trim cycles (%d physical pages)",
			r.Cycles, r.PhysPages),
		Headers: []string{"mode", "cycle", "phase", "live blks",
			"reserved KB", "resident KB", "live KB", "res/rsv", "live/res",
			"commits", "decommits", "failures"},
	}
	for _, p := range r.Points {
		t.AddRow(
			p.Mode,
			fmt.Sprintf("%d", p.Cycle),
			p.Phase,
			fmt.Sprintf("%d", p.Live),
			fmt.Sprintf("%d", p.ReservedBytes>>10),
			fmt.Sprintf("%d", p.ResidentBytes>>10),
			fmt.Sprintf("%d", p.LiveBytes>>10),
			fmt.Sprintf("%.3f", p.ResidentRatio),
			fmt.Sprintf("%.3f", p.Utilization),
			fmt.Sprintf("%d", p.PagesCommit),
			fmt.Sprintf("%d", p.PagesDecommit),
			fmt.Sprintf("%d", p.Failures))
	}
	return t
}
