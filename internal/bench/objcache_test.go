package bench

import "testing"

// TestObjCacheSweep pins the tentpole claim: the STREAMS triple pair on
// named object caches beats the frozen cookie baseline by at least 30%
// simulated instructions per pair, with the constructor skipped on
// effectively every warm Get, and the whole sweep is deterministic.
func TestObjCacheSweep(t *testing.T) {
	res, err := RunObjCache([]uint64{64, 256}, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.WinPct < 30 {
			t.Errorf("buf %d: objcache win %.1f%% (cookie %.1f, objcache %.1f insns/pair), want >= 30%%",
				p.BufSize, p.WinPct, p.CookieInsns, p.ObjCacheInsns)
		}
		if p.SkipRatio < 0.9 {
			t.Errorf("buf %d: ctor skip ratio %.3f (%d runs, %d skips), want >= 0.9",
				p.BufSize, p.SkipRatio, p.CtorRuns, p.CtorSkips)
		}
		if p.CtorRuns == 0 {
			t.Errorf("buf %d: no ctor runs recorded; the event spine is disconnected", p.BufSize)
		}
	}
	again, err := RunObjCache([]uint64{64, 256}, 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		if res.Points[i] != again.Points[i] {
			t.Errorf("sweep not deterministic at point %d:\n  %+v\n  %+v", i, res.Points[i], again.Points[i])
		}
	}
}
