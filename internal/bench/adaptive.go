package bench

import (
	"fmt"

	"kmem/internal/arena"
	"kmem/internal/core"
	"kmem/internal/machine"
	"kmem/internal/physmem"
)

// AdaptiveRow is one variant's measurement on the oscillating workload.
type AdaptiveRow struct {
	Variant         string  `json:"variant"`
	FinalTarget     int     `json:"finalTarget"`
	FinalGblTarget  int     `json:"finalGblTarget"`
	PairsPerSec     float64 `json:"pairsPerSec"`
	PerCPUMissRate  float64 `json:"perCPUMissRate"`
	GlobalMissRate  float64 `json:"globalMissRate"`
	CombinedMiss    float64 `json:"combinedMissRate"`
	GlobalOps       uint64  `json:"globalOps"`
	CachedBlocks    int     `json:"cachedBlocks"`
	RefillBlocks    uint64  `json:"refillBlocks"` // blocks refilled, via the event-spine Hook
	SpillBlocks     uint64  `json:"spillBlocks"`  // blocks spilled, via the event-spine Hook
	TargetGrows     uint64  `json:"targetGrows"`
	TargetShrinks   uint64  `json:"targetShrinks"`
	GblTargetGrows  uint64  `json:"gblTargetGrows"`
	GblTargetShrink uint64  `json:"gblTargetShrinks"`
}

// AdaptiveResult holds the fixed-vs-adaptive comparison plus the final
// Stats snapshot of each run (for -json recording).
type AdaptiveResult struct {
	Bursts    int           `json:"bursts"`
	BurstSize int           `json:"burstSize"`
	BlockSize uint64        `json:"blockSize"`
	Fixed     AdaptiveRow   `json:"fixed"`
	Adaptive  AdaptiveRow   `json:"adaptive"`
	FixedSt   StatsSnapshot `json:"fixedStats"`
	AdaptSt   StatsSnapshot `json:"adaptiveStats"`
}

// RunAdaptive contrasts the paper's static target heuristic with the
// adaptive controller on the oscillating worst-case workload: repeated
// bursts of burstSize allocations followed by burstSize frees of one
// block size. With an amplitude beyond the static configuration's whole
// cached capacity (2*target per CPU plus 2*gbltarget target-sized lists
// in the global pool), every burst forces the fixed allocator through
// the coalesce-to-page layer — the expensive radix-sorted boundary the
// combined 1/(target*gbltarget) bound is supposed to keep rare. The
// adaptive allocator instead grows its targets until the oscillation is
// absorbed by the upper layers and the combined miss rate collapses.
// Both runs execute a deterministic instruction stream on the simulated
// machine, so results are exactly reproducible. The event-spine Hook
// feeds the refill/spill columns (block counts, since those events carry
// the list length) — the bench harness is a spine consumer just like
// Stats.
func RunAdaptive(bursts, burstSize int, blockSize uint64) (*AdaptiveResult, error) {
	res := &AdaptiveResult{Bursts: bursts, BurstSize: burstSize, BlockSize: blockSize}
	for _, adaptive := range []bool{false, true} {
		var events core.EventCounter
		params := core.Params{RadixSort: true, Hook: events.Hook()}
		if adaptive {
			params.Adaptive = &core.AdaptiveConfig{}
		}
		m := machine.New(MachineFor(1, 64<<20, 8192))
		al, err := core.New(m, params)
		if err != nil {
			return nil, err
		}
		ck, err := al.GetCookie(blockSize)
		if err != nil {
			return nil, err
		}
		cls := -1
		for i := 0; i < al.NumClasses(); i++ {
			if al.ClassSize(i) == ck.Size() {
				cls = i
			}
		}
		c := m.CPU(0)

		held := make([]arena.Addr, 0, burstSize)
		start := c.Now()
		for b := 0; b < bursts; b++ {
			for i := 0; i < burstSize; i++ {
				blk, err := al.AllocCookie(c, ck)
				if err != nil {
					return nil, fmt.Errorf("burst %d: %w", b, err)
				}
				held = append(held, blk)
			}
			for _, blk := range held {
				al.FreeCookie(c, blk, ck)
			}
			held = held[:0]
		}
		elapsed := m.CyclesToSeconds(c.Now() - start)

		st := al.Stats(c)
		cst := st.Classes[cls]
		row := AdaptiveRow{
			Variant:         "fixed heuristic (paper)",
			FinalTarget:     cst.Target,
			FinalGblTarget:  cst.GblTarget,
			PairsPerSec:     float64(bursts*burstSize) / elapsed,
			PerCPUMissRate:  maxf(cst.AllocMissRate(), cst.FreeMissRate()),
			GlobalMissRate:  maxf(cst.GlobalGetMissRate(), cst.GlobalPutMissRate()),
			CombinedMiss:    maxf(cst.CombinedAllocMissRate(), cst.CombinedFreeMissRate()),
			GlobalOps:       cst.GlobalGets + cst.GlobalPuts,
			CachedBlocks:    cst.HeldPerCPU + cst.HeldGlobal,
			RefillBlocks:    events.Count(core.EvCPURefill),
			SpillBlocks:     events.Count(core.EvCPUSpill),
			TargetGrows:     cst.TargetGrows,
			TargetShrinks:   cst.TargetShrinks,
			GblTargetGrows:  cst.GblTargetGrows,
			GblTargetShrink: cst.GblTargetShrinks,
		}
		if adaptive {
			row.Variant = "adaptive controller"
			res.Adaptive = row
			res.AdaptSt = NewStatsSnapshot(st)
		} else {
			res.Fixed = row
			res.FixedSt = NewStatsSnapshot(st)
		}
	}
	return res, nil
}

// Table renders the comparison.
func (r *AdaptiveResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Adaptive targets vs fixed heuristic (oscillating worst case: "+
			"%d bursts of %d x %d-byte alloc/free)", r.Bursts, r.BurstSize, r.BlockSize),
		Headers: []string{"variant", "target", "gbltarget", "pairs/sec",
			"percpu miss%", "combined miss%", "global ops", "cached", "grows/shrinks"},
	}
	for _, row := range []AdaptiveRow{r.Fixed, r.Adaptive} {
		t.AddRow(row.Variant,
			fmt.Sprintf("%d", row.FinalTarget),
			fmt.Sprintf("%d", row.FinalGblTarget),
			fmt.Sprintf("%.0f", row.PairsPerSec),
			fmt.Sprintf("%.2f", row.PerCPUMissRate*100),
			fmt.Sprintf("%.3f", row.CombinedMiss*100),
			fmt.Sprintf("%d", row.GlobalOps),
			fmt.Sprintf("%d", row.CachedBlocks),
			fmt.Sprintf("%d/%d", row.TargetGrows+row.GblTargetGrows,
				row.TargetShrinks+row.GblTargetShrink))
	}
	return t
}

// --- JSON-friendly Stats snapshot -------------------------------------------

// ClassStatsSnapshot is core.ClassStats plus its derived miss rates as
// plain fields, so a marshalled snapshot carries everything a trajectory
// plot needs (methods don't survive encoding/json).
type ClassStatsSnapshot struct {
	core.ClassStats
	AllocMissRate         float64 `json:"allocMissRate"`
	FreeMissRate          float64 `json:"freeMissRate"`
	GlobalGetMissRate     float64 `json:"globalGetMissRate"`
	GlobalPutMissRate     float64 `json:"globalPutMissRate"`
	CombinedAllocMissRate float64 `json:"combinedAllocMissRate"`
	CombinedFreeMissRate  float64 `json:"combinedFreeMissRate"`
}

// StatsSnapshot is a JSON-friendly core.Stats.
type StatsSnapshot struct {
	Classes  []ClassStatsSnapshot `json:"classes"`
	VM       core.VMStats         `json:"vm"`
	Phys     physmem.Stats        `json:"phys"`
	Reclaims uint64               `json:"reclaims"`
}

// NewStatsSnapshot converts a core.Stats, materializing the miss rates.
func NewStatsSnapshot(st core.Stats) StatsSnapshot {
	out := StatsSnapshot{VM: st.VM, Phys: st.Phys, Reclaims: st.Reclaims}
	for _, cs := range st.Classes {
		out.Classes = append(out.Classes, ClassStatsSnapshot{
			ClassStats:            cs,
			AllocMissRate:         cs.AllocMissRate(),
			FreeMissRate:          cs.FreeMissRate(),
			GlobalGetMissRate:     cs.GlobalGetMissRate(),
			GlobalPutMissRate:     cs.GlobalPutMissRate(),
			CombinedAllocMissRate: cs.CombinedAllocMissRate(),
			CombinedFreeMissRate:  cs.CombinedFreeMissRate(),
		})
	}
	return out
}
