package bench

import "testing"

// TestScalingShardsCutRemotePuts pins the PR's acceptance criterion: at
// 8 CPUs / 4 nodes on the prodcons handoff workload, batching remote
// frees in per-CPU shards must cut remote putList lock trips at least
// 4x versus per-spill routing, without losing throughput.
func TestScalingShardsCutRemotePuts(t *testing.T) {
	res, err := RunScaling([]int{8}, []int{4}, 128, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	routed := res.Point(8, 4, "prodcons", false)
	sharded := res.Point(8, 4, "prodcons", true)
	if routed == nil || sharded == nil {
		t.Fatal("sweep missing the 8-CPU/4-node prodcons points")
	}
	if routed.RemotePuts == 0 {
		t.Fatal("routed baseline recorded no remote puts")
	}
	// The workload is closed-loop — the sharded configuration completes
	// more pairs in the same window — so compare remote putList trips per
	// completed pair, not raw counts.
	perPair := func(p *ScalingPoint) float64 { return float64(p.RemotePuts) / float64(p.Pairs) }
	ratio := perPair(routed) / perPair(sharded)
	t.Logf("remote puts/pair: routed=%.4f (%d/%d) sharded=%.4f (%d/%d) — %.1fx; pairs/s routed=%.0f sharded=%.0f; lock wait routed=%d sharded=%d",
		perPair(routed), routed.RemotePuts, routed.Pairs,
		perPair(sharded), sharded.RemotePuts, sharded.Pairs, ratio,
		routed.PairsPerSec, sharded.PairsPerSec,
		routed.LockWaitCycles, sharded.LockWaitCycles)
	if ratio < 4 {
		t.Errorf("remote putList trips per pair only cut %.1fx, want >= 4x", ratio)
	}
	if sharded.PairsPerSec < routed.PairsPerSec {
		t.Errorf("shards lost throughput: %.0f pairs/s vs %.0f routed",
			sharded.PairsPerSec, routed.PairsPerSec)
	}
	if sharded.ShardFlushes == 0 || sharded.HomeMemoHits == 0 {
		t.Errorf("shard counters dead: flushes=%d memo hits=%d",
			sharded.ShardFlushes, sharded.HomeMemoHits)
	}
	if routed.ShardFlushes != 0 || routed.HomeMemoHits != 0 {
		t.Errorf("shards-off point shows shard activity: flushes=%d memo hits=%d",
			routed.ShardFlushes, routed.HomeMemoHits)
	}
}

// TestScalingLocalWorkloadNearlyFree: on the same-CPU churn workload
// the shards have nothing to stage; the only cost left is the per-free
// home classification (a memo hit), which must stay under 10% of
// throughput and must never flush or route anything.
func TestScalingLocalWorkloadNearlyFree(t *testing.T) {
	res, err := RunScaling([]int{4}, []int{2}, 128, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	off := res.Point(4, 2, "allocfree", false)
	on := res.Point(4, 2, "allocfree", true)
	if off == nil || on == nil {
		t.Fatal("sweep missing the 4-CPU/2-node allocfree points")
	}
	if float64(on.Pairs) < 0.9*float64(off.Pairs) {
		t.Errorf("home classification cost too high: %d pairs with shards, %d without", on.Pairs, off.Pairs)
	}
	if on.ShardFlushes != 0 || on.RemoteFrees != 0 {
		t.Errorf("local churn crossed nodes: flushes=%d remote frees=%d", on.ShardFlushes, on.RemoteFrees)
	}
	if on.HomeMemoHits == 0 {
		t.Error("local churn with shards never hit the home memo")
	}
}

// TestScalingSweepShapeAndLockAccounting checks the sweep skips invalid
// node counts and that the lock cycle accounting is populated.
func TestScalingSweepShapeAndLockAccounting(t *testing.T) {
	res, err := RunScaling([]int{2, 4}, []int{1, 2, 4}, 128, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	// 2 CPUs: nodes 1,2. 4 CPUs: nodes 1,2,4. Each x 2 workloads x 2 shard
	// settings.
	if want := (2 + 3) * 2 * 2; len(res.Points) != want {
		t.Fatalf("sweep has %d points, want %d", len(res.Points), want)
	}
	if res.Point(2, 4, "prodcons", true) != nil {
		t.Fatal("sweep kept a 2-CPU/4-node point")
	}
	for _, p := range res.Points {
		if p.Pairs == 0 {
			t.Errorf("%d CPUs/%d nodes %s shards=%v completed no pairs", p.CPUs, p.Nodes, p.Workload, p.Shards)
		}
		if p.LockAcqs == 0 || p.LockHoldCycles == 0 {
			t.Errorf("%d CPUs/%d nodes %s shards=%v: lock accounting dead (acqs=%d hold=%d)",
				p.CPUs, p.Nodes, p.Workload, p.Shards, p.LockAcqs, p.LockHoldCycles)
		}
		if p.Nodes == 1 && (p.RemoteFrees != 0 || p.RemotePuts != 0 || p.ShardFlushes != 0) {
			t.Errorf("single-node point shows remote traffic: %+v", p)
		}
	}
	if _, err := RunScaling([]int{3}, []int{1}, 128, 0.001); err == nil {
		t.Fatal("odd CPU count accepted")
	}
	if _, err := RunScaling([]int{4}, []int{1}, 128, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}
