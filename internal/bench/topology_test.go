package bench

import "testing"

func TestTopologyPartitioningWins(t *testing.T) {
	// The tentpole acceptance criterion: at a fixed CPU count high enough
	// to saturate one bus, splitting the machine into nodes must raise
	// producer/consumer throughput and lower per-bus occupancy when the
	// traffic partitions with the nodes.
	res, err := RunTopology(8, []int{1, 4}, 128, 0.005, "near", 0)
	if err != nil {
		t.Fatal(err)
	}
	one, two := res.Points[0], res.Points[1]
	if two.PairsPerSec <= one.PairsPerSec {
		t.Fatalf("2 nodes: %.0f pairs/s, 1 node: %.0f — partitioning did not help",
			two.PairsPerSec, one.PairsPerSec)
	}
	if two.BusOccupancy >= one.BusOccupancy {
		t.Fatalf("2 nodes: %.2f bus occupancy, 1 node: %.2f — per-bus load did not drop",
			two.BusOccupancy, one.BusOccupancy)
	}
	// Near pairing keeps each producer/consumer pair on one node: the
	// interconnect must stay out of the fast paths entirely.
	if two.RemoteFrees != 0 {
		t.Fatalf("near pairing produced %d remote frees", two.RemoteFrees)
	}
}

func TestTopologyCrossPairingExercisesRemotePath(t *testing.T) {
	res, err := RunTopology(4, []int{2}, 128, 0.005, "cross", 0)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.RemoteFrees == 0 {
		t.Fatal("cross pairing recorded no remote frees")
	}
	if pt.InterconnectTxns == 0 {
		t.Fatal("cross pairing never crossed the interconnect")
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := RunTopology(3, []int{1}, 128, 0.001, "near", 0); err == nil {
		t.Fatal("odd CPU count accepted")
	}
	if _, err := RunTopology(4, []int{1}, 128, 0.001, "diagonal", 0); err == nil {
		t.Fatal("unknown pairing accepted")
	}
	if _, err := RunTopology(4, []int{8}, 128, 0.001, "near", 0); err == nil {
		t.Fatal("more nodes than CPUs accepted")
	}
}
