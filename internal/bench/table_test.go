package bench

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := Table{
		Title:   "title",
		Headers: []string{"a", "long-header", "c"},
	}
	tbl.AddRow("xxxxxxxx", "1", "2")
	tbl.AddRow("y", "22", "333")
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// Column starts must align between header and rows.
	hdr := lines[1]
	col2 := strings.Index(hdr, "long-header")
	if !strings.HasPrefix(lines[3][col2:], "1") || !strings.HasPrefix(lines[4][col2:], "22") {
		t.Fatalf("misaligned columns:\n%s", out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("no rule line:\n%s", out)
	}
}

func TestFigureRendersAllSeries(t *testing.T) {
	f := Figure{
		Title:  "test figure",
		XLabel: "x",
		YLabel: "y",
		Xs:     []float64{1, 2, 3, 4},
		Series: []Series{
			{Name: "up", Ys: []float64{1, 2, 3, 4}},
			{Name: "down", Ys: []float64{4, 3, 2, 1}},
		},
	}
	var sb strings.Builder
	f.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"test figure", "* = up", "+ = down", "linear scale", "x", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("no plotted markers")
	}
}

func TestFigureLogScale(t *testing.T) {
	f := Figure{
		Title: "log",
		Xs:    []float64{1, 2},
		Series: []Series{
			{Name: "s", Ys: []float64{10, 100000}},
		},
		LogY: true,
	}
	var sb strings.Builder
	f.Fprint(&sb)
	if !strings.Contains(sb.String(), "log10 scale") {
		t.Fatal("log scale not labelled")
	}
}

func TestFigureWriteCSV(t *testing.T) {
	f := Figure{
		XLabel: "cpus",
		Xs:     []float64{1, 2},
		Series: []Series{
			{Name: "a", Ys: []float64{10, 20}},
			{Name: "b", Ys: []float64{30}},
		},
	}
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "cpus,a,b\n1,10,30\n2,20,\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestFigureEmptyData(t *testing.T) {
	f := Figure{Title: "empty"}
	var sb strings.Builder
	f.Fprint(&sb)
	if !strings.Contains(sb.String(), "(no data)") {
		t.Fatal("empty figure not handled")
	}
}

func TestFigureZeroValuesOnLogScale(t *testing.T) {
	// Zero/negative values cannot be plotted on a log axis and must be
	// skipped without panicking.
	f := Figure{
		Title: "zeros",
		Xs:    []float64{1, 2, 3},
		Series: []Series{
			{Name: "s", Ys: []float64{0, 10, 1000}},
		},
		LogY: true,
	}
	var sb strings.Builder
	f.Fprint(&sb)
	if len(sb.String()) == 0 {
		t.Fatal("nothing rendered")
	}
}
