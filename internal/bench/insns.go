package bench

import (
	"fmt"

	"kmem/internal/core"
	"kmem/internal/machine"
)

// InsnRow is one interface's measured instruction counts on the warmed
// common path.
type InsnRow struct {
	Interface  string
	AllocInsns uint64
	FreeInsns  uint64
	PaperAlloc string // the paper's reported figure, for the table
	PaperFree  string
}

// RunInsnCounts reproduces the paper's Instruction Counts discussion:
// "The efficient 'cookie' version of the allocator executes thirteen
// 80x86 instructions each for the allocation and free operations... The
// less efficient but standard interface executes 35 instructions for
// allocation and 32 instructions for freeing." Counts are measured by
// running one warmed operation under the simulator and reading the
// instruction counter delta.
func RunInsnCounts() ([]InsnRow, error) {
	var rows []InsnRow

	measureCore := func(cookie bool) (uint64, uint64, error) {
		m := machine.New(MachineFor(1, 16<<20, 1024))
		al, err := core.New(m, core.Params{RadixSort: true})
		if err != nil {
			return 0, 0, err
		}
		c := m.CPU(0)
		ck, err := al.GetCookie(128)
		if err != nil {
			return 0, 0, err
		}
		// Warm: fill the per-CPU cache so the measured op stays on the
		// 13-instruction path.
		b, err := al.AllocCookie(c, ck)
		if err != nil {
			return 0, 0, err
		}
		al.FreeCookie(c, b, ck)
		b, _ = al.AllocCookie(c, ck)
		al.FreeCookie(c, b, ck)

		before := c.Stats().Instructions
		if cookie {
			b, _ = al.AllocCookie(c, ck)
		} else {
			b, _ = al.Alloc(c, 128)
		}
		mid := c.Stats().Instructions
		if cookie {
			al.FreeCookie(c, b, ck)
		} else {
			al.Free(c, b, 128)
		}
		after := c.Stats().Instructions
		return mid - before, after - mid, nil
	}

	ai, fi, err := measureCore(true)
	if err != nil {
		return nil, err
	}
	rows = append(rows, InsnRow{
		Interface:  "cookie (KMEM_ALLOC_COOKIE/KMEM_FREE_COOKIE)",
		AllocInsns: ai, FreeInsns: fi,
		PaperAlloc: "13", PaperFree: "13",
	})

	ai, fi, err = measureCore(false)
	if err != nil {
		return nil, err
	}
	rows = append(rows, InsnRow{
		Interface:  "standard (kmem_alloc/kmem_free)",
		AllocInsns: ai, FreeInsns: fi,
		PaperAlloc: "35", PaperFree: "32",
	})

	measureBaseline := func(name string) (uint64, uint64, error) {
		m := machine.New(MachineFor(1, 16<<20, 1024))
		a, err := BuildAllocator(m, name)
		if err != nil {
			return 0, 0, err
		}
		c := m.CPU(0)
		b, err := a.Alloc(c, 128)
		if err != nil {
			return 0, 0, err
		}
		a.Free(c, b, 128)
		before := c.Stats().Instructions
		b, _ = a.Alloc(c, 128)
		mid := c.Stats().Instructions
		a.Free(c, b, 128)
		after := c.Stats().Instructions
		return mid - before, after - mid, nil
	}

	ai, fi, err = measureBaseline("mk")
	if err != nil {
		return nil, err
	}
	rows = append(rows, InsnRow{
		Interface:  "McKusick-Karels + global lock",
		AllocInsns: ai, FreeInsns: fi,
		PaperAlloc: "16 (VAX)", PaperFree: "16 (VAX)",
	})

	ai, fi, err = measureBaseline("oldkma")
	if err != nil {
		return nil, err
	}
	rows = append(rows, InsnRow{
		Interface:  "oldkma (fast fits + global lock)",
		AllocInsns: ai, FreeInsns: fi,
		PaperAlloc: "-", PaperFree: "-",
	})
	return rows, nil
}

// InsnTable renders the instruction-count comparison.
func InsnTable(rows []InsnRow) *Table {
	t := &Table{
		Title:   "Instruction counts, warmed common path (simulated 80x86 instructions)",
		Headers: []string{"interface", "alloc", "paper", "free", "paper"},
	}
	for _, r := range rows {
		t.AddRow(r.Interface,
			fmt.Sprintf("%d", r.AllocInsns), r.PaperAlloc,
			fmt.Sprintf("%d", r.FreeInsns), r.PaperFree)
	}
	return t
}
