package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestAdaptiveBeatsFixed is the bench-level acceptance check: on the
// oscillating worst case the adaptive controller must beat the paper's
// fixed heuristic on combined miss rate — and, because every avoided
// coalesce-layer round trip is radix-sort work saved, on throughput too.
// The simulator is deterministic, so the margins are exact, not
// statistical.
func TestAdaptiveBeatsFixed(t *testing.T) {
	res, err := RunAdaptive(200, 400, 128)
	if err != nil {
		t.Fatal(err)
	}
	f, ad := res.Fixed, res.Adaptive
	if f.CombinedMiss == 0 {
		t.Fatal("workload does not overrun the fixed configuration; the comparison is vacuous")
	}
	if ad.CombinedMiss >= f.CombinedMiss/4 {
		t.Errorf("combined miss rate: adaptive %.5f not well below fixed %.5f",
			ad.CombinedMiss, f.CombinedMiss)
	}
	if ad.PerCPUMissRate >= f.PerCPUMissRate {
		t.Errorf("per-CPU miss rate: adaptive %.4f not below fixed %.4f",
			ad.PerCPUMissRate, f.PerCPUMissRate)
	}
	if ad.PairsPerSec <= f.PairsPerSec {
		t.Errorf("throughput: adaptive %.0f not above fixed %.0f", ad.PairsPerSec, f.PairsPerSec)
	}
	if ad.TargetGrows == 0 {
		t.Error("controller never grew the target")
	}
	if f.TargetGrows+f.TargetShrinks+f.GblTargetGrows+f.GblTargetShrink != 0 {
		t.Error("fixed run recorded controller decisions")
	}

	// Determinism: the same parameters reproduce the same numbers.
	res2, err := RunAdaptive(200, 400, 128)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fixed != res.Fixed || res2.Adaptive != res.Adaptive {
		t.Errorf("not deterministic:\n%+v\n%+v", res.Adaptive, res2.Adaptive)
	}
}

// TestAdaptiveJSON checks the -json payload round-trips and carries the
// derived miss rates as plain fields.
func TestAdaptiveJSON(t *testing.T) {
	res, err := RunAdaptive(50, 400, 128)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"fixed"`, `"adaptive"`, `"fixedStats"`, `"adaptiveStats"`,
		`"combinedMissRate"`, `"allocMissRate"`, `"TargetGrows"`, `"classes"`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON payload missing %s", key)
		}
	}
	var back AdaptiveResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Adaptive.FinalTarget != res.Adaptive.FinalTarget {
		t.Errorf("round trip lost FinalTarget: %d vs %d",
			back.Adaptive.FinalTarget, res.Adaptive.FinalTarget)
	}

	// The rendered table must include both variants.
	var sb strings.Builder
	res.Table().Fprint(&sb)
	if !strings.Contains(sb.String(), "adaptive controller") ||
		!strings.Contains(sb.String(), "fixed heuristic") {
		t.Errorf("table missing variants:\n%s", sb.String())
	}
}
