package bench

import (
	"testing"

	"kmem/internal/workload"
)

func TestReplayAllAllocators(t *testing.T) {
	tr := workload.Synthesize(3, 4, 20000, 150, workload.Uniform{Lo: 16, Hi: 2048})
	var results []*ReplayResult
	for _, name := range append(append([]string{}, AllocatorNames...), "lazybuddy") {
		res, err := Replay(tr, name, 4, 8192)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Failures != 0 {
			t.Errorf("%s: %d failures with ample memory", name, res.Failures)
		}
		results = append(results, res)
	}
	// The per-CPU allocator must beat every lock-based baseline on the
	// identical operation sequence.
	cookie := results[0]
	for _, r := range results[2:] { // skip newkma (same allocator, std iface)
		if cookie.OpsPerSec <= r.OpsPerSec {
			t.Errorf("cookie (%.0f ops/s) did not beat %s (%.0f ops/s)",
				cookie.OpsPerSec, r.Allocator, r.OpsPerSec)
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	tr := workload.Synthesize(9, 2, 5000, 80, workload.Fixed(256))
	a, err := Replay(tr, "cookie", 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(tr, "cookie", 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if a.VirtualSec != b.VirtualSec || a.OpsPerSec != b.OpsPerSec {
		t.Fatalf("replay not deterministic: %+v vs %+v", a, b)
	}
}

func TestReplayCrossCPUHandles(t *testing.T) {
	// Alloc on CPU 0, free on CPU 1 with handle reuse: exercises the
	// stall-and-retry paths.
	rec := workload.NewRecorder()
	for i := 0; i < 200; i++ {
		h := rec.Alloc(0, 128)
		rec.Free(1, h) // recorder reuses the handle immediately
	}
	tr := rec.Trace()
	if err := tr.Validate(2); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(tr, "newkma", 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("%d failures", res.Failures)
	}
}

func TestReplayRejectsBadTrace(t *testing.T) {
	tr := &workload.Trace{Events: []workload.Event{{Kind: workload.EvFree, Handle: 3}}}
	if _, err := Replay(tr, "cookie", 1, 128); err == nil {
		t.Fatal("invalid trace accepted")
	}
}
