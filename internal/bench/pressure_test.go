package bench

import "testing"

func TestPressureSweepExercisesMachinery(t *testing.T) {
	res, err := RunPressure(4, []int{1}, []int64{32}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (nosleep + wait)", len(res.Rows))
	}
	nosleep, wait := res.Rows[0], res.Rows[1]
	if nosleep.Mode != "nosleep" || wait.Mode != "wait" {
		t.Fatalf("row order: %s, %s", nosleep.Mode, wait.Mode)
	}
	// Both modes run the same deterministic churn, so the allocation
	// outcomes match; the wait rows additionally pay for their parking.
	if nosleep.Allocs == 0 || nosleep.ReclaimSteps == 0 || nosleep.Transitions == 0 {
		t.Fatalf("nosleep row shows no pressure activity: %+v", nosleep)
	}
	if wait.Waits == 0 {
		t.Fatalf("wait row recorded no waits: %+v", wait)
	}
	if wait.VirtualMS <= nosleep.VirtualMS {
		t.Fatalf("wait backoff charged no virtual time: %.1f vs %.1f",
			wait.VirtualMS, nosleep.VirtualMS)
	}
	// Incremental reclaim carries the whole sweep: the stop-the-world
	// path must never run once the pool is at its critical watermark.
	if nosleep.Reclaims != 0 || wait.Reclaims != 0 {
		t.Fatalf("stop-the-world reclaims ran: %d/%d", nosleep.Reclaims, wait.Reclaims)
	}
}

func TestPressureSweepDeterministic(t *testing.T) {
	a, err := RunPressure(2, []int{1}, []int64{32}, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPressure(2, []int{1}, []int64{32}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs between identical runs:\n%+v\n%+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
